examples/federation.mli:

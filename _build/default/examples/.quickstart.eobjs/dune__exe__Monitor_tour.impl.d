examples/monitor_tour.ml: Format List Rm_cluster Rm_engine Rm_monitor Rm_stats Rm_workload

examples/monitor_tour.mli:

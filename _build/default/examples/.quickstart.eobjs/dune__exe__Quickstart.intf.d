examples/quickstart.mli:

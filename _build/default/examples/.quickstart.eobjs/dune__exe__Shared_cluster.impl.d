examples/shared_cluster.ml: Format List Rm_apps Rm_cluster Rm_core Rm_engine Rm_monitor Rm_sched Rm_stats Rm_workload

examples/shared_cluster.mli:

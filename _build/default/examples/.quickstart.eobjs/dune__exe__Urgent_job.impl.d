examples/urgent_job.ml: Format Rm_apps Rm_cluster Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_stats Rm_workload

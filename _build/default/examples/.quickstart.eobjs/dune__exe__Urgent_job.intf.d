examples/urgent_job.mli:

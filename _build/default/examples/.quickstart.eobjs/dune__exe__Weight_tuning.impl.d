examples/weight_tuning.ml: Format List Rm_apps Rm_cluster Rm_core Rm_mpisim Rm_workload

(* A tour of the Resource Monitor's fault tolerance (§4): daemons crash
   and get relaunched by the Central Monitor; the master dies and the
   slave promotes itself; both die and the fleet keeps sampling but
   loses self-healing — every behaviour the paper describes.

     dune exec examples/monitor_tour.exe *)

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Central = Rm_monitor.Central
module Daemon = Rm_monitor.Daemon
module Snapshot = Rm_monitor.Snapshot

let status sim sys world =
  let now = Sim.now sim in
  let central = System.central sys in
  let alive =
    List.length (List.filter Daemon.is_alive (System.daemons sys))
  in
  let snap = System.snapshot sys ~time:now in
  Format.printf
    "t+%6.0fs  daemons alive %2d/%d  central instances %d  usable nodes %2d  max staleness %4.0fs@."
    now alive
    (List.length (System.daemons sys))
    (Central.instance_count central)
    (List.length (Snapshot.usable snap))
    (Snapshot.max_staleness snap);
  ignore world

let () =
  let cluster =
    Cluster.homogeneous ~prefix:"csews" ~cores:12 ~freq_ghz:3.4
      ~nodes_per_switch:[ 5; 5 ] ()
  in
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed:5 in
  let rng = Rm_stats.Rng.create 11 in
  let sys = System.start ~sim ~world ~rng ~until:20_000.0 () in

  Format.printf "--- warm-up ---@.";
  Sim.run_until sim 1000.0;
  status sim sys world;

  Format.printf "@.--- crash three NodeStateD daemons ---@.";
  (match System.daemons sys with
  | a :: b :: c :: _ -> List.iter Daemon.crash [ a; b; c ]
  | _ -> ());
  status sim sys world;
  Sim.run_until sim 1100.0;
  Format.printf "after one central-monitor sweep:@.";
  status sim sys world;
  Format.printf "relaunches performed so far: %d@."
    (Central.relaunches (System.central sys));

  Format.printf "@.--- a node goes down ---@.";
  World.set_down world ~node:3;
  Sim.run_until sim 1300.0;
  status sim sys world;
  World.set_up world ~node:3;
  Sim.run_until sim 1500.0;
  Format.printf "node 3 restored:@.";
  status sim sys world;

  Format.printf "@.--- master dies; slave must promote ---@.";
  Central.crash_master (System.central sys);
  status sim sys world;
  Sim.run_until sim 1700.0;
  status sim sys world;

  Format.printf "@.--- both central instances die ---@.";
  Central.crash_master (System.central sys);
  Central.crash_slave (System.central sys);
  Sim.run_until sim 2000.0;
  status sim sys world;
  Format.printf
    "daemons keep writing (sampling continues), but a further daemon crash@.";
  Format.printf "would now be permanent - exactly the failure mode of section 4.@."

(* Quickstart: stand up a simulated shared cluster with its resource
   monitor, ask the broker for nodes, and run miniMD on them.

     dune exec examples/quickstart.exe *)

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Executor = Rm_mpisim.Executor

let () =
  (* 1. The cluster of the paper's evaluation: 60 nodes, 4 switches. *)
  let cluster = Cluster.iitk_reference () in
  Format.printf "cluster: %a@." Cluster.pp cluster;

  (* 2. A world with background users and traffic, plus the monitor. *)
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed:42 in
  let rng = Rm_stats.Rng.create 7 in
  let monitor = System.start ~sim ~world ~rng ~until:7200.0 () in

  (* 3. Let the daemons gather data (bandwidth probes run every 5 min). *)
  let warm = System.warm_up_s System.default_cadence in
  Sim.run_until sim warm;
  Format.printf "monitor warm after %.0f simulated seconds@." warm;

  (* 4. Ask the broker for 32 processes at 4 per node, communication-
        heavy job (beta = 0.7, the paper's miniMD setting). *)
  let snapshot = System.snapshot monitor ~time:(Sim.now sim) in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  Format.printf "request: %a@." Request.pp request;
  (match
     Broker.decide ~config:Broker.default_config ~snapshot ~request ~rng
   with
  | Error err -> Format.printf "allocation failed: %a@." Allocation.pp_error err
  | Ok (Broker.Wait _ as d) -> Format.printf "broker: %a@." Broker.pp_decision d
  | Ok (Broker.Allocated allocation) ->
    Format.printf "allocated: %a@." Allocation.pp allocation;
    List.iter
      (fun id ->
        Format.printf "  %a@." Rm_cluster.Node.pp (Cluster.node cluster id))
      (Allocation.node_ids allocation);

    (* 5. Run miniMD (16K atoms) on the allocation. *)
    let app =
      Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:16) ~ranks:32
    in
    let stats = Executor.run ~world ~allocation ~app () in
    Format.printf "run: %a@." Executor.pp_stats stats)

(* A day on a shared cluster: students submit MPI jobs through the batch
   scheduler, which places them with the network-and-load-aware broker.
   The same arrival trace is then replayed with a random-placement
   broker to show what placement quality buys at the queue level.

     dune exec examples/shared_cluster.exe *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Broker = Rm_core.Broker
module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Scheduler = Rm_sched.Scheduler

let day = 6.0 *. 3600.0 (* a working afternoon *)

let job_mix =
  (* (name, procs, ppn, alpha, app size, submit hour) *)
  [
    ("md-small", 16, 4, 0.3, `Md 16, 0.3);
    ("fe-medium", 32, 4, 0.4, `Fe 96, 0.8);
    ("md-large", 32, 4, 0.3, `Md 32, 1.2);
    ("fe-small", 8, 4, 0.4, `Fe 48, 1.7);
    ("md-medium", 24, 4, 0.3, `Md 24, 2.1);
    ("fe-large", 48, 4, 0.4, `Fe 144, 2.6);
    ("md-rush", 64, 4, 0.3, `Md 24, 3.0);
    ("fe-rush", 32, 4, 0.4, `Fe 96, 3.2);
  ]

let app_of_kind kind ~ranks =
  match kind with
  | `Md s -> Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s) ~ranks
  | `Fe nx -> Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx) ~ranks

let run_day ~policy ~seed =
  let sim = Sim.create () in
  let world =
    World.create ~cluster:(Cluster.iitk_reference ()) ~scenario:Scenario.normal
      ~seed
  in
  let rng = Rng.create (seed + 1) in
  let horizon = day +. 7200.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.broker = { Broker.default_config with Broker.policy };
    }
  in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let warm = System.warm_up_s System.default_cadence in
  List.iter
    (fun (name, procs, ppn, alpha, kind, hour) ->
      ignore
        (Scheduler.submit sched ~name
           ~at:(warm +. (hour *. 3600.0))
           ~request:(Request.make ~ppn ~alpha ~procs ())
           ~app_of:(app_of_kind kind) ()))
    job_mix;
  Sim.run_until sim horizon;
  World.advance world ~now:horizon;
  sched

let report label sched =
  Format.printf "@.=== %s ===@." label;
  List.iter
    (fun (o : Scheduler.outcome) ->
      Format.printf
        "  %-10s submitted t+%5.0fs  waited %5.0fs  ran %6.1fs on %d nodes@."
        o.Scheduler.name o.Scheduler.submitted_at
        (o.Scheduler.started_at -. o.Scheduler.submitted_at)
        (o.Scheduler.finished_at -. o.Scheduler.started_at)
        (List.length o.Scheduler.nodes))
    (Scheduler.finished sched);
  let s = Scheduler.summary sched in
  Format.printf
    "  finished %d jobs; mean wait %.0fs, max wait %.0fs, mean turnaround %.0fs@."
    s.Scheduler.jobs_finished s.Scheduler.mean_wait_s s.Scheduler.max_wait_s
    s.Scheduler.mean_turnaround_s;
  print_string (Scheduler.render_timeline sched ());
  s

let () =
  let ours = report "network-and-load-aware broker" (run_day ~policy:Policies.Network_load_aware ~seed:2024) in
  let random = report "random-placement broker" (run_day ~policy:Policies.Random ~seed:2024) in
  Format.printf
    "@.placement quality at the queue level: mean turnaround %.0fs vs %.0fs (%.0f%% better)@."
    ours.Scheduler.mean_turnaround_s random.Scheduler.mean_turnaround_s
    (Rm_stats.Descriptive.percent_gain
       ~baseline:random.Scheduler.mean_turnaround_s
       ~ours:ours.Scheduler.mean_turnaround_s)

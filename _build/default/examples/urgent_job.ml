(* Urgent on-demand computing (the paper's §1 motivation: epidemic or
   wildfire modeling that cannot wait in a supercomputer queue, §6's
   "recommend waiting" extension).

   An urgent 48-process job arrives during a deadline-week crunch. With
   a wait threshold configured, the broker declines while the cluster is
   saturated and allocates as soon as load recedes; the example polls
   until it gets nodes, then runs the job.

     dune exec examples/urgent_job.exe *)

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Executor = Rm_mpisim.Executor

(* The epidemic model is a stencil-heavy iterative code; miniFE's
   communication structure is a good stand-in. *)
let app ~ranks =
  Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:96) ~ranks

let () =
  let cluster = Cluster.iitk_reference () in
  let sim = Sim.create () in
  (* Deadline week: heavily loaded cluster. *)
  let world = World.create ~cluster ~scenario:Scenario.busy ~seed:17 in
  let rng = Rm_stats.Rng.create 3 in
  let horizon = 48.0 *. 3600.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  (* The urgent job lands mid-afternoon, when the crunch is at its
     worst; the broker should hold it until a dip. *)
  Sim.run_until sim 21_600.0;
  World.advance world ~now:(Sim.now sim);

  let threshold = 0.7 in
  let config =
    { Broker.default_config with Broker.wait_threshold = Some threshold }
  in
  let request = Request.make ~ppn:4 ~alpha:0.4 ~procs:48 () in
  Format.printf "urgent request: %a (wait threshold %.2f load/core)@."
    Request.pp request threshold;

  (* The busy scenario's own variability (sessions ending, diurnal
     swing) eventually opens a window below the threshold; poll until
     it does, like a user hitting retry. *)
  let poll_every = 1800.0 in
  let rec poll attempt =
    let now = Sim.now sim in
    let snapshot = System.snapshot monitor ~time:now in
    match Broker.decide ~config ~snapshot ~request ~rng with
    | Error err ->
      Format.printf "t+%6.0fs allocation error: %a@." now Allocation.pp_error err
    | Ok (Broker.Wait _ as d) ->
      Format.printf "t+%6.0fs broker: %a@." now Broker.pp_decision d;
      if now +. poll_every < horizon then begin
        Sim.run_until sim (now +. poll_every);
        World.advance world ~now:(Sim.now sim);
        poll (attempt + 1)
      end
      else Format.printf "gave up before the cluster quieted down@."
    | Ok (Broker.Allocated allocation) ->
      Format.printf "t+%6.0fs allocated after %d polls: %a@." now attempt
        Allocation.pp allocation;
      let stats =
        Executor.run ~world ~allocation ~app:(app ~ranks:(Allocation.total_procs allocation)) ()
      in
      Format.printf "urgent job done: %a@." Executor.pp_stats stats
  in
  poll 0

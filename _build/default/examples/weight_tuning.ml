(* Profiling-driven weight selection (§5 / §6).

   The paper sets alpha = 0.3 for miniMD and alpha = 0.4 for miniFE
   "empirically", after observing 40-80% vs 25-60% communication time.
   This example runs the profiler on both apps, prints the measured
   fractions and the alpha/beta and w_lt/w_bw it derives, and checks the
   result against the paper's hand-tuned values.

     dune exec examples/weight_tuning.exe *)

module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module Allocation = Rm_core.Allocation
module Weights = Rm_core.Weights
module Profiler = Rm_mpisim.Profiler

(* Reference placement for profiling: 8 quiet nodes, 4 ranks each. *)
let reference_allocation () =
  Allocation.make ~policy:"profiling"
    ~entries:(List.init 8 (fun i -> { Allocation.node = i; procs = 4 }))

let show name (p : Profiler.profile) ~paper_alpha =
  Format.printf
    "%-22s comm %4.0f%%  (latency share of comm %4.0f%%)@." name
    (100.0 *. p.Profiler.comm_fraction)
    (100.0 *. p.Profiler.latency_fraction_of_comm);
  Format.printf
    "%-22s suggested alpha=%.2f beta=%.2f   (paper used alpha=%.2f)@." ""
    p.Profiler.suggested_alpha
    (1.0 -. p.Profiler.suggested_alpha)
    paper_alpha;
  Format.printf "%-22s suggested w_lt=%.2f w_bw=%.2f (paper used 0.25/0.75)@."
    "" p.Profiler.suggested_w_lt p.Profiler.suggested_w_bw

let () =
  let cluster = Cluster.iitk_reference () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed:33 in
  World.advance world ~now:3600.0;
  let allocation = reference_allocation () in

  Format.printf "=== profiling on 32 ranks over 8 nodes ===@.@.";
  let md =
    Profiler.profile ~world ~allocation
      ~app:(Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:16) ~ranks:32)
      ()
  in
  show "miniMD (s=16)" md ~paper_alpha:0.3;
  Format.printf "@.";
  let fe =
    Profiler.profile ~world ~allocation
      ~app:(Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:144) ~ranks:32)
      ()
  in
  show "miniFE (nx=144)" fe ~paper_alpha:0.4;

  Format.printf "@.=== derived weight sets ===@.";
  let wmd = Profiler.weights_for md ~base:Weights.paper_default in
  let wfe = Profiler.weights_for fe ~base:Weights.paper_default in
  Format.printf "miniMD network weights: w_lt=%.2f w_bw=%.2f@."
    wmd.Weights.w_lt wmd.Weights.w_bw;
  Format.printf "miniFE network weights: w_lt=%.2f w_bw=%.2f@."
    wfe.Weights.w_lt wfe.Weights.w_bw;
  Format.printf
    "@.ordering check: miniMD should profile more communication-bound than miniFE: %b@."
    (md.Profiler.comm_fraction > fe.Profiler.comm_fraction)

lib/apps/minife.ml: List Printf Rm_mpisim

lib/apps/minife.mli: Rm_mpisim

lib/apps/minimd.ml: List Printf Rm_mpisim

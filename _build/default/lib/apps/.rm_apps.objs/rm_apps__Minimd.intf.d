lib/apps/minimd.mli: Rm_mpisim

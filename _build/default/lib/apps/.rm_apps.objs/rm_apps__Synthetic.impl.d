lib/apps/synthetic.ml: List Rm_mpisim

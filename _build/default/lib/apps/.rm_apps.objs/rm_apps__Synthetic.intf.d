lib/apps/synthetic.mli: Rm_mpisim

module App = Rm_mpisim.App
module Decomp3d = Rm_mpisim.Decomp3d

type config = { nx : int; cg_iterations : int }

let default_config ~nx = { nx; cg_iterations = 200 }

let rows config =
  let n = config.nx + 1 in
  n * n * n

(* 27-point stencil SpMV: 2 flops per nonzero; 3 AXPYs and 2 dots add
   ~10 flops/row. Matrix assembly (first step) is roughly 120 flops/row.
   A halo face ships one double per boundary row. *)
let spmv_flops_per_row = 2.0 *. 27.0
let vector_flops_per_row = 10.0
let assembly_flops_per_row = 120.0
let bytes_per_face_row = 8.0

let name config ~ranks = Printf.sprintf "miniFE(nx=%d,p=%d)" config.nx ranks

let app ~config ~ranks =
  if config.nx <= 0 then invalid_arg "Minife.app: non-positive nx";
  if config.cg_iterations <= 0 then
    invalid_arg "Minife.app: non-positive iteration count";
  let grid = Decomp3d.create ~ranks in
  let rows_per_rank = float_of_int (rows config) /. float_of_int ranks in
  let face_rows = rows_per_rank ** (2.0 /. 3.0) in
  let halo =
    List.concat
      (List.init ranks (fun rank ->
           List.map
             (fun (neighbor, faces) ->
               (rank, neighbor, float_of_int faces *. face_rows *. bytes_per_face_row))
             (Decomp3d.face_counts grid ~rank)))
  in
  let phase ~iter =
    let assembling = iter = 0 in
    let flops =
      rows_per_rank
      *. (spmv_flops_per_row +. vector_flops_per_row
         +. (if assembling then assembly_flops_per_row else 0.0))
    in
    {
      App.flops_per_rank = (fun _rank -> flops);
      messages = (if assembling then [] else halo);
      (* Two 8-byte dot-product reductions per CG iteration. *)
      allreduce_bytes = (if assembling then 0.0 else 16.0);
    }
  in
  App.make ~name:(name config ~ranks) ~ranks
    ~iterations:(config.cg_iterations + 1) ~phase
    ~description:
      (Printf.sprintf "CG solve on a %d^3-element brick (%d rows), %d iterations"
         config.nx (rows config) config.cg_iterations)
    ()

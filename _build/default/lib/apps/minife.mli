(** miniFE proxy: unstructured implicit finite elements (Mantevo).

    Sets up a brick-shaped hexahedral domain of nx×ny×nz elements and
    runs a conjugate-gradient solve on the resulting 27-point sparse
    system. Per CG iteration: one SpMV (halo exchange with the 6 face
    neighbours), two dot products (tiny allreduces) and three AXPYs.
    More compute-bound than miniMD — the paper profiles 25–60 %
    communication time. *)

type config = {
  nx : int;  (** global elements per dimension (ny = nz = nx, §5.2) *)
  cg_iterations : int;  (** the paper uses the default 200 *)
}

val default_config : nx:int -> config

val rows : config -> int
(** (nx+1)³ degrees of freedom. *)

val app : config:config -> ranks:int -> Rm_mpisim.App.t
val name : config -> ranks:int -> string

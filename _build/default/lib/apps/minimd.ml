module App = Rm_mpisim.App
module Decomp3d = Rm_mpisim.Decomp3d

type config = {
  s : int;
  steps : int;
  reneigh_every : int;
  thermo_every : int;
}

let default_config ~s = { s; steps = 100; reneigh_every = 20; thermo_every = 10 }

let atoms config = 4 * config.s * config.s * config.s

(* Cost constants (reduced LJ units, cutoff 2.5σ):
   ~76 neighbours/atom, half lists → ~1850 flops of force work per atom
   per step plus integration; a neighbour-list rebuild is ~2500 extra
   flops per atom. A ghosted atom ships position + force contributions,
   ~40 bytes; the ghost shell is ~2 atom layers deep. *)
let force_flops_per_atom = 1850.0
let integrate_flops_per_atom = 60.0
let rebuild_flops_per_atom = 2500.0
let bytes_per_ghost_atom = 40.0
let ghost_layers = 2.0

let name config ~ranks = Printf.sprintf "miniMD(s=%d,p=%d)" config.s ranks

let app ~config ~ranks =
  if config.s <= 0 then invalid_arg "Minimd.app: non-positive s";
  if config.steps <= 0 then invalid_arg "Minimd.app: non-positive steps";
  if config.reneigh_every <= 0 || config.thermo_every <= 0 then
    invalid_arg "Minimd.app: non-positive cadence";
  let grid = Decomp3d.create ~ranks in
  let atoms_per_rank = float_of_int (atoms config) /. float_of_int ranks in
  let face_atoms = ghost_layers *. (atoms_per_rank ** (2.0 /. 3.0)) in
  let halo_messages ~scale =
    List.concat
      (List.init ranks (fun rank ->
           List.map
             (fun (neighbor, faces) ->
               ( rank,
                 neighbor,
                 scale *. float_of_int faces *. face_atoms *. bytes_per_ghost_atom ))
             (Decomp3d.face_counts grid ~rank)))
  in
  let steady = halo_messages ~scale:1.0 in
  let rebuild = halo_messages ~scale:3.0 in
  let phase ~iter =
    let rebuilding = iter mod config.reneigh_every = 0 in
    let flops =
      atoms_per_rank
      *. (force_flops_per_atom +. integrate_flops_per_atom
         +. (if rebuilding then rebuild_flops_per_atom else 0.0))
    in
    {
      App.flops_per_rank = (fun _rank -> flops);
      messages = (if rebuilding then rebuild else steady);
      allreduce_bytes = (if iter mod config.thermo_every = 0 then 48.0 else 0.0);
    }
  in
  App.make ~name:(name config ~ranks) ~ranks ~iterations:config.steps ~phase
    ~description:
      (Printf.sprintf
         "LJ molecular dynamics, %d atoms on a %s grid, %d timesteps"
         (atoms config)
         (let x, y, z = Decomp3d.dims grid in
          Printf.sprintf "%dx%dx%d" x y z)
         config.steps)
    ()

(** miniMD proxy: parallel Lennard-Jones molecular dynamics (Mantevo).

    Spatial decomposition over a 3-D process grid. The box is s×s×s FCC
    unit cells (4 atoms each: "2K–442K atoms" for s = 8..48, §5.1).
    Every timestep each rank computes LJ forces over its atoms and
    exchanges ghost-atom positions with its 6 face neighbours; every
    [reneigh_every] steps the neighbour lists rebuild (a heavier border
    exchange); every [thermo_every] steps a small allreduce computes
    thermodynamic output. Communication-heavy by design — the paper
    profiles 40–80 % communication time. *)

type config = {
  s : int;  (** box edge in unit cells (problem size of Fig. 4) *)
  steps : int;  (** timesteps; the paper runs the default 100 *)
  reneigh_every : int;
  thermo_every : int;
}

val default_config : s:int -> config
(** steps = 100, reneigh_every = 20, thermo_every = 10. *)

val atoms : config -> int
(** 4·s³. *)

val app : config:config -> ranks:int -> Rm_mpisim.App.t
(** Requires ranks > 0 and s > 0. *)

val name : config -> ranks:int -> string

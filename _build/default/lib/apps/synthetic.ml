module App = Rm_mpisim.App

let constant_phase ~flops ~messages ~allreduce_bytes : App.phase =
  { App.flops_per_rank = (fun _ -> flops); messages; allreduce_bytes }

let make ~name ~ranks ~iterations ~flops ~messages ~allreduce_bytes =
  let phase = constant_phase ~flops ~messages ~allreduce_bytes in
  App.make ~name ~ranks ~iterations ~phase:(fun ~iter:_ -> phase) ()

let ring ~ranks ~iterations ?(flops_per_rank = 1e5) ?(bytes = 65536.0)
    ?(allreduce_bytes = 0.0) () =
  let messages =
    if ranks < 2 then []
    else List.init ranks (fun r -> (r, (r + 1) mod ranks, bytes))
  in
  make ~name:"synthetic-ring" ~ranks ~iterations ~flops:flops_per_rank
    ~messages ~allreduce_bytes

let nearest_neighbor ~ranks ~iterations ?(flops_per_rank = 1e5)
    ?(bytes = 256.0) () =
  let messages =
    if ranks < 2 then []
    else
      List.concat
        (List.init ranks (fun r ->
             [ (r, (r + 1) mod ranks, bytes);
               (r, (r + ranks - 1) mod ranks, bytes) ]))
  in
  make ~name:"synthetic-neighbors" ~ranks ~iterations ~flops:flops_per_rank
    ~messages ~allreduce_bytes:8.0

let stencil2d ~ranks ~iterations ?(flops_per_cell = 10.0)
    ?(cells_per_rank = 250_000) ?(bytes_per_cell = 8.0) () =
  if cells_per_rank <= 0 then invalid_arg "Synthetic.stencil2d: no cells";
  (* Most square px x py grid. *)
  let px =
    let best = ref 1 in
    for d = 1 to ranks do
      if ranks mod d = 0 && d <= ranks / d then best := d
    done;
    !best
  in
  let py = ranks / px in
  let face = sqrt (float_of_int cells_per_rank) *. bytes_per_cell in
  let coord r = (r mod px, r / px) in
  let rank_of (x, y) = (((x + px) mod px) + (((y + py) mod py) * px) : int) in
  let messages =
    if ranks < 2 then []
    else
      List.concat
        (List.init ranks (fun r ->
             let x, y = coord r in
             [ rank_of (x - 1, y); rank_of (x + 1, y); rank_of (x, y - 1);
               rank_of (x, y + 1) ]
             |> List.sort_uniq compare
             |> List.filter (fun n -> n <> r)
             |> List.map (fun n -> (r, n, face))))
  in
  make ~name:"synthetic-stencil2d" ~ranks ~iterations
    ~flops:(flops_per_cell *. float_of_int cells_per_rank)
    ~messages ~allreduce_bytes:8.0

let alltoall ~ranks ~iterations ?(flops_per_rank = 1e5)
    ?(bytes_per_pair = 4096.0) () =
  let messages =
    List.concat
      (List.init ranks (fun r ->
           List.filter_map
             (fun d -> if d = r then None else Some (r, d, bytes_per_pair))
             (List.init ranks (fun d -> d))))
  in
  make ~name:"synthetic-alltoall" ~ranks ~iterations ~flops:flops_per_rank
    ~messages ~allreduce_bytes:0.0

let compute_only ~ranks ~iterations ?(flops_per_rank = 1e8) () =
  make ~name:"synthetic-compute" ~ranks ~iterations ~flops:flops_per_rank
    ~messages:[] ~allreduce_bytes:0.0

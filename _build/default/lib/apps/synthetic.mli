(** Synthetic MPI workloads with controlled communication patterns.

    The evaluation apps (miniMD, miniFE) fix their pattern; these
    generators isolate one dimension at a time — message size, fan-out,
    collective pressure — for calibration, ablations (§3.2.2's
    latency-vs-bandwidth discussion) and tests. *)

val ring :
  ranks:int ->
  iterations:int ->
  ?flops_per_rank:float ->
  ?bytes:float ->
  ?allreduce_bytes:float ->
  unit ->
  Rm_mpisim.App.t
(** Each rank sends [bytes] to its successor each step (one directed
    ring). Defaults: 1e5 flops, 64 KiB messages, no collective. *)

val nearest_neighbor :
  ranks:int ->
  iterations:int ->
  ?flops_per_rank:float ->
  ?bytes:float ->
  unit ->
  Rm_mpisim.App.t
(** Bidirectional ring (both neighbours each step) — the chatty,
    latency-bound shape of §3.2.2's discussion when [bytes] is small. *)

val stencil2d :
  ranks:int ->
  iterations:int ->
  ?flops_per_cell:float ->
  ?cells_per_rank:int ->
  ?bytes_per_cell:float ->
  unit ->
  Rm_mpisim.App.t
(** 2-D halo exchange over the most square process grid: 4 face
    neighbours with wrap-around, face size = √cells. An epidemic/
    wildfire-style urgent workload (§1). *)

val alltoall :
  ranks:int ->
  iterations:int ->
  ?flops_per_rank:float ->
  ?bytes_per_pair:float ->
  unit ->
  Rm_mpisim.App.t
(** Dense personalized exchange — the worst case for a poorly-connected
    allocation. *)

val compute_only :
  ranks:int -> iterations:int -> ?flops_per_rank:float -> unit -> Rm_mpisim.App.t
(** No communication at all: a pure CPU job (α = 1 territory). *)

lib/cluster/cluster.ml: Array Format Hashtbl List Node Printf Topology

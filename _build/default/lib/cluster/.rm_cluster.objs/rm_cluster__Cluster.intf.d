lib/cluster/cluster.mli: Format Node Topology

lib/cluster/node.ml: Format

lib/cluster/node.mli: Format

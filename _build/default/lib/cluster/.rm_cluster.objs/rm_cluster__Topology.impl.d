lib/cluster/topology.ml: Array List Printf

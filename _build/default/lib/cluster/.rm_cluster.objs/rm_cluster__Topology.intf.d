lib/cluster/topology.mli:

type t = { nodes : Node.t array; topology : Topology.t }

let make ~nodes ~topology =
  let nodes = Array.of_list nodes in
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Cluster.make: no nodes";
  if Topology.node_count topology <> n then
    invalid_arg "Cluster.make: topology/node count mismatch";
  let seen = Hashtbl.create n in
  Array.iteri
    (fun i (node : Node.t) ->
      if node.id <> i then invalid_arg "Cluster.make: node ids must be dense";
      if Hashtbl.mem seen node.hostname then
        invalid_arg ("Cluster.make: duplicate hostname " ^ node.hostname);
      Hashtbl.add seen node.hostname ();
      if Topology.switch_of_node topology i <> node.switch then
        invalid_arg "Cluster.make: node switch disagrees with topology")
    nodes;
  { nodes; topology }

let node_count t = Array.length t.nodes
let nodes t = t.nodes

let node t i =
  if i < 0 || i >= node_count t then invalid_arg "Cluster.node: bad index";
  t.nodes.(i)

let topology t = t.topology

let find_by_hostname t hostname =
  Array.find_opt (fun (n : Node.t) -> n.hostname = hostname) t.nodes

let total_cores t =
  Array.fold_left (fun acc (n : Node.t) -> acc + n.cores) 0 t.nodes

let pp ppf t =
  Format.fprintf ppf "cluster<%d nodes, %d switches, %d cores>" (node_count t)
    (Topology.switch_count t.topology) (total_cores t)

let homogeneous ?(prefix = "node") ?(cores = 8) ?(freq_ghz = 3.0)
    ?(mem_gb = 16.0) ~nodes_per_switch () =
  if nodes_per_switch = [] then invalid_arg "Cluster.homogeneous: no switches";
  List.iter
    (fun k -> if k <= 0 then invalid_arg "Cluster.homogeneous: empty switch")
    nodes_per_switch;
  let switches = List.length nodes_per_switch in
  let assignment =
    List.concat (List.mapi (fun s k -> List.init k (fun _ -> s)) nodes_per_switch)
  in
  let node_switch = Array.of_list assignment in
  let topology = Topology.create ~node_switch ~switches () in
  let nodes =
    List.mapi
      (fun i switch ->
        Node.make ~id:i
          ~hostname:(Printf.sprintf "%s%d" prefix (i + 1))
          ~cores ~freq_ghz ~mem_gb ~switch)
      assignment
  in
  make ~nodes ~topology

let federated ?(cores = 8) ?(freq_ghz = 3.0) ?(mem_gb = 16.0) ?wan_mb_s
    ?wan_latency_us ~sites () =
  if sites = [] then invalid_arg "Cluster.federated: no sites";
  List.iter
    (fun (_, per_switch) ->
      if per_switch = [] then invalid_arg "Cluster.federated: empty site";
      List.iter
        (fun k -> if k <= 0 then invalid_arg "Cluster.federated: empty switch")
        per_switch)
    sites;
  (* Flatten: switches are numbered site by site; each switch remembers
     its site; nodes are numbered switch by switch. *)
  let switch_site =
    Array.of_list
      (List.concat
         (List.mapi
            (fun site (_, per_switch) -> List.map (fun _ -> site) per_switch)
            sites))
  in
  let node_switch =
    let next_switch = ref 0 in
    Array.of_list
      (List.concat_map
         (fun (_, per_switch) ->
           List.concat_map
             (fun k ->
               let s = !next_switch in
               incr next_switch;
               List.init k (fun _ -> s))
             per_switch)
         sites)
  in
  let topology =
    Topology.create ?wan_mb_s ?wan_latency_us ~switch_site ~node_switch
      ~switches:(Array.length switch_site) ()
  in
  (* Hostnames: <prefix><k> within each site. *)
  let node_site i = Topology.site_of_node topology i in
  let prefixes = Array.of_list (List.map fst sites) in
  let counters = Array.make (Array.length prefixes) 0 in
  let nodes =
    List.init (Array.length node_switch) (fun i ->
        let site = node_site i in
        counters.(site) <- counters.(site) + 1;
        Node.make ~id:i
          ~hostname:(Printf.sprintf "%s%d" prefixes.(site) counters.(site))
          ~cores ~freq_ghz ~mem_gb
          ~switch:(Topology.switch_of_node topology i))
  in
  make ~nodes ~topology

(* §5: 40 × 12-core @ 4.6 GHz and 20 × 8-core @ 2.8 GHz over 4 switches.
   We place 15 nodes per switch, the last 5 of each being the 8-core
   machines, so every switch mixes both hardware kinds. *)
let iitk_reference () =
  let switches = 4 and per_switch = 15 in
  let node_switch = Array.init (switches * per_switch) (fun i -> i / per_switch) in
  let topology = Topology.create ~node_switch ~switches () in
  let nodes =
    List.init (switches * per_switch) (fun i ->
        let within = i mod per_switch in
        let big = within < 10 in
        Node.make ~id:i
          ~hostname:(Printf.sprintf "csews%d" (i + 1))
          ~cores:(if big then 12 else 8)
          ~freq_ghz:(if big then 4.6 else 2.8)
          ~mem_gb:16.0 ~switch:(i / per_switch))
  in
  make ~nodes ~topology

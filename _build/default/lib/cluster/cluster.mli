(** A cluster: typed nodes plus the switch topology connecting them.

    Provides the IIT-Kanpur-like reference cluster the paper evaluates on
    (§5) and small synthetic builders for tests and the brute-force
    optimality study. *)

type t

val make : nodes:Node.t list -> topology:Topology.t -> t
(** Validates that node ids are dense (0..n-1 in order), hostnames are
    unique, and each node's [switch] matches the topology. *)

val node_count : t -> int
val nodes : t -> Node.t array
val node : t -> int -> Node.t
val topology : t -> Topology.t
val find_by_hostname : t -> string -> Node.t option
val total_cores : t -> int

val pp : Format.formatter -> t -> unit

(** {2 Builders} *)

val homogeneous :
  ?prefix:string ->
  ?cores:int ->
  ?freq_ghz:float ->
  ?mem_gb:float ->
  nodes_per_switch:int list ->
  unit ->
  t
(** One switch per list element, with the given number of identical nodes
    on each; hostnames [prefix1], [prefix2], ... in switch order. *)

val federated :
  ?cores:int ->
  ?freq_ghz:float ->
  ?mem_gb:float ->
  ?wan_mb_s:float ->
  ?wan_latency_us:float ->
  sites:(string * int list) list ->
  unit ->
  t
(** Multi-cluster federation (§6): each site is (hostname prefix,
    nodes per switch); sites are joined over a shared campus backbone
    with the given WAN capacity/latency. Nodes are identical across
    sites (heterogeneity can be layered with {!make}). *)

val iitk_reference : unit -> t
(** The paper's experimental setup (§5): 60 nodes on 4 switches (15
    each), Gigabit Ethernet; 40 nodes with 12 logical cores at 4.6 GHz
    and 20 nodes with 8 logical cores at 2.8 GHz, 16 GB each, hostnames
    csews1..csews60. The 8-core nodes are the last five of each switch,
    mirroring a mixed lab. *)

type t = {
  id : int;
  hostname : string;
  cores : int;
  freq_ghz : float;
  mem_gb : float;
  switch : int;
}

let make ~id ~hostname ~cores ~freq_ghz ~mem_gb ~switch =
  if id < 0 then invalid_arg "Node.make: negative id";
  if cores <= 0 then invalid_arg "Node.make: non-positive core count";
  if freq_ghz <= 0.0 then invalid_arg "Node.make: non-positive frequency";
  if mem_gb <= 0.0 then invalid_arg "Node.make: non-positive memory";
  if switch < 0 then invalid_arg "Node.make: negative switch";
  { id; hostname; cores; freq_ghz; mem_gb; switch }

(* 4 flops/cycle/core: arbitrary but consistent scale for the simulator. *)
let flops_per_sec t = float_of_int t.cores *. t.freq_ghz *. 1e9 *. 4.0

let pp ppf t =
  Format.fprintf ppf "%s(#%d %dc @%.1fGHz %.0fGB sw%d)" t.hostname t.id t.cores
    t.freq_ghz t.mem_gb t.switch

(** Static description of one compute node.

    These are the static attributes of Table 1 (core count, CPU frequency,
    total memory); everything dynamic lives in the workload models and the
    monitor. *)

type t = {
  id : int;  (** dense index in the cluster, 0-based *)
  hostname : string;  (** e.g. "csews12" *)
  cores : int;  (** logical core count *)
  freq_ghz : float;  (** nominal clock speed *)
  mem_gb : float;  (** total physical memory *)
  switch : int;  (** edge switch the node hangs off *)
}

val make :
  id:int ->
  hostname:string ->
  cores:int ->
  freq_ghz:float ->
  mem_gb:float ->
  switch:int ->
  t
(** Validates positivity of all capacities. *)

val flops_per_sec : t -> float
(** Crude peak rate used by the MPI cost model: cores × freq × a fixed
    per-cycle throughput. Only relative magnitudes matter. *)

val pp : Format.formatter -> t -> unit

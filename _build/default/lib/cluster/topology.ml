type link = { link_id : int; capacity_mb_s : float; label : string }

type t = {
  node_switch : int array;
  switches : int;
  switch_site : int array;
  sites : int;
  links : link array;
      (** access links for nodes 0..n-1, then uplinks per switch, then
          one WAN link per site (multi-site topologies only) *)
  by_switch : int list array;
  wan_latency_us : float;
}

let create ?(access_mb_s = 118.0) ?(uplink_mb_s = 118.0) ?switch_site
    ?(wan_mb_s = 60.0) ?(wan_latency_us = 900.0) ~node_switch ~switches () =
  if switches <= 0 then invalid_arg "Topology.create: no switches";
  if Array.length node_switch = 0 then invalid_arg "Topology.create: no nodes";
  Array.iter
    (fun s ->
      if s < 0 || s >= switches then
        invalid_arg "Topology.create: switch index out of range")
    node_switch;
  if access_mb_s <= 0.0 || uplink_mb_s <= 0.0 || wan_mb_s <= 0.0 then
    invalid_arg "Topology.create: non-positive capacity";
  if wan_latency_us < 0.0 then invalid_arg "Topology.create: negative latency";
  let switch_site =
    match switch_site with
    | None -> Array.make switches 0
    | Some a ->
      if Array.length a <> switches then
        invalid_arg "Topology.create: switch_site length mismatch";
      a
  in
  let sites = 1 + Array.fold_left max 0 switch_site in
  Array.iter
    (fun s ->
      if s < 0 || s >= sites then
        invalid_arg "Topology.create: site index out of range")
    switch_site;
  (* Every site in [0, sites) must own at least one switch. *)
  let seen = Array.make sites false in
  Array.iter (fun s -> seen.(s) <- true) switch_site;
  if Array.exists not seen then
    invalid_arg "Topology.create: sites must be contiguous from 0";
  let n = Array.length node_switch in
  let wan_links = if sites > 1 then sites else 0 in
  let links =
    Array.init (n + switches + wan_links) (fun i ->
        if i < n then
          {
            link_id = i;
            capacity_mb_s = access_mb_s;
            label = Printf.sprintf "access-n%d" i;
          }
        else if i < n + switches then
          {
            link_id = i;
            capacity_mb_s = uplink_mb_s;
            label = Printf.sprintf "uplink-s%d" (i - n);
          }
        else
          {
            link_id = i;
            capacity_mb_s = wan_mb_s;
            label = Printf.sprintf "wan-site%d" (i - n - switches);
          })
  in
  let by_switch = Array.make switches [] in
  for i = n - 1 downto 0 do
    by_switch.(node_switch.(i)) <- i :: by_switch.(node_switch.(i))
  done;
  { node_switch; switches; switch_site; sites; links; by_switch; wan_latency_us }

let node_count t = Array.length t.node_switch
let switch_count t = t.switches

let switch_of_node t i =
  if i < 0 || i >= node_count t then
    invalid_arg "Topology.switch_of_node: bad node";
  t.node_switch.(i)

let nodes_of_switch t s =
  if s < 0 || s >= t.switches then
    invalid_arg "Topology.nodes_of_switch: bad switch";
  t.by_switch.(s)

let link_count t = Array.length t.links

let link t i =
  if i < 0 || i >= link_count t then invalid_arg "Topology.link: bad id";
  t.links.(i)

let access_link t ~node =
  if node < 0 || node >= node_count t then
    invalid_arg "Topology.access_link: bad node";
  t.links.(node)

let uplink t ~switch =
  if switch < 0 || switch >= t.switches then
    invalid_arg "Topology.uplink: bad switch";
  t.links.(node_count t + switch)

let site_count t = t.sites

let site_of_switch t s =
  if s < 0 || s >= t.switches then
    invalid_arg "Topology.site_of_switch: bad switch";
  t.switch_site.(s)

let site_of_node t i = site_of_switch t (switch_of_node t i)
let same_switch t u v = switch_of_node t u = switch_of_node t v
let same_site t u v = site_of_node t u = site_of_node t v

let wan_link t ~site =
  if t.sites <= 1 then invalid_arg "Topology.wan_link: single-site topology";
  if site < 0 || site >= t.sites then invalid_arg "Topology.wan_link: bad site";
  t.links.(node_count t + t.switches + site)

let path t u v =
  if u = v then []
  else begin
    let su = switch_of_node t u and sv = switch_of_node t v in
    if su = sv then [ access_link t ~node:u; access_link t ~node:v ]
    else begin
      let site_u = site_of_switch t su and site_v = site_of_switch t sv in
      if site_u = site_v then
        [
          access_link t ~node:u;
          uplink t ~switch:su;
          uplink t ~switch:sv;
          access_link t ~node:v;
        ]
      else
        [
          access_link t ~node:u;
          uplink t ~switch:su;
          wan_link t ~site:site_u;
          wan_link t ~site:site_v;
          uplink t ~switch:sv;
          access_link t ~node:v;
        ]
    end
  end

let hops t u v = List.length (path t u v)

(* GbE-ish figures: ~25 us per link traversal, ~20 us per switch. *)
let per_link_us = 25.0
let per_switch_us = 20.0

let base_latency_us t u v =
  if u = v then 0.0
  else begin
    let links = float_of_int (hops t u v) in
    let switches =
      if same_switch t u v then 1.0 else if same_site t u v then 3.0 else 4.0
    in
    let wan = if same_site t u v then 0.0 else 2.0 *. t.wan_latency_us in
    (links *. per_link_us) +. (switches *. per_switch_us) +. wan
  end

(** Tree network topology: edge switches connected through a root
    switch, optionally federated across sites.

    Matches the evaluation cluster of §5: "a tree-like hierarchical
    topology with 4 switches. Each switch connects 10–15 nodes using
    Gigabit Ethernet." Each node has one access link to its edge switch;
    each edge switch has one uplink to its site's root. The path between
    two nodes on the same switch crosses 2 links, otherwise 4 links
    (their access links plus both uplinks).

    For the §6 multi-cluster extension, switches may be assigned to
    {e sites} (separate clusters joined by a campus/WAN backbone): a
    cross-site path additionally crosses both sites' WAN links (6 links
    total) and pays a large extra base latency. The default is a single
    site, which reproduces the flat behaviour exactly. *)

type link = {
  link_id : int;
  capacity_mb_s : float;  (** payload capacity in MB/s *)
  label : string;
}

type t

val create :
  ?access_mb_s:float ->
  ?uplink_mb_s:float ->
  ?switch_site:int array ->
  ?wan_mb_s:float ->
  ?wan_latency_us:float ->
  node_switch:int array ->
  switches:int ->
  unit ->
  t
(** [node_switch.(i)] is the edge switch of node [i]; switch indices must
    be in [0, switches). Default capacities model Gigabit Ethernet:
    118 MB/s of goodput on access links and uplinks.

    [switch_site.(s)] assigns switch [s] to a site (default: all on site
    0). Sites must be contiguous starting at 0. [wan_mb_s] (default 60,
    a shared campus backbone) and [wan_latency_us] (default 900) apply
    per crossed WAN link. *)

val node_count : t -> int
val switch_count : t -> int
val switch_of_node : t -> int -> int
val nodes_of_switch : t -> int -> int list

val link_count : t -> int
val link : t -> int -> link
val access_link : t -> node:int -> link
val uplink : t -> switch:int -> link

val path : t -> int -> int -> link list
(** Links crossed between two distinct nodes, in order. Empty for a node
    with itself. *)

val hops : t -> int -> int -> int
(** Number of links on {!path}: 0, 2, 4, or 6 (cross-site). *)

val same_switch : t -> int -> int -> bool

(** {2 Sites (multi-cluster federation)} *)

val site_count : t -> int
val site_of_switch : t -> int -> int
val site_of_node : t -> int -> int
val same_site : t -> int -> int -> bool
val wan_link : t -> site:int -> link
(** Raises [Invalid_argument] for a single-site topology. *)

val base_latency_us : t -> int -> int -> float
(** Unloaded one-way latency estimate: a per-link store-and-forward cost
    plus a per-switch forwarding cost. Zero for a node with itself. *)

lib/core/allocation.ml: Format Hashtbl List Printf String

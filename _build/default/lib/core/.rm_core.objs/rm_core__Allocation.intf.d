lib/core/allocation.mli: Format

lib/core/broker.ml: Allocation Compute_load Format List Policies Result Rm_cluster Rm_monitor Weights

lib/core/broker.mli: Allocation Format Policies Request Rm_monitor Rm_stats Weights

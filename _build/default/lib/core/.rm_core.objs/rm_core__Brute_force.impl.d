lib/core/brute_force.ml: Array Compute_load Network_load Request

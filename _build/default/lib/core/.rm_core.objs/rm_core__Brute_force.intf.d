lib/core/brute_force.mli: Compute_load Network_load Request

lib/core/candidate.ml: Array Compute_load Float List Network_load Request

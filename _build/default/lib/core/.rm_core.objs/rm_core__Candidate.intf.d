lib/core/candidate.mli: Compute_load Network_load Request

lib/core/compute_load.ml: Array Format Hashtbl List Madm Rm_cluster Rm_monitor Rm_stats Saw Weights

lib/core/compute_load.mli: Format Madm Rm_monitor Weights

lib/core/effective_procs.ml: Compute_load Float List Rm_cluster Rm_monitor

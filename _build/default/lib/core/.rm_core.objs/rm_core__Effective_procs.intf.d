lib/core/effective_procs.mli: Compute_load Rm_monitor

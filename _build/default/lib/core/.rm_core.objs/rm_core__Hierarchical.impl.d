lib/core/hierarchical.ml: Allocation Array Candidate Compute_load Effective_procs Float Hashtbl List Network_load Option Request Rm_cluster Rm_monitor Select

lib/core/hierarchical.mli: Allocation Compute_load Network_load Request Rm_monitor Weights

lib/core/hostfile.ml: Allocation List Printf Rm_cluster String

lib/core/hostfile.mli: Allocation Rm_cluster

lib/core/madm.ml: Array Float List Saw

lib/core/madm.mli: Saw

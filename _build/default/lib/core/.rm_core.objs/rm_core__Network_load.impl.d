lib/core/network_load.ml: Array Float Hashtbl List Rm_monitor Rm_stats Weights

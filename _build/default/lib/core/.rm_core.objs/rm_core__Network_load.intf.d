lib/core/network_load.mli: Rm_monitor Weights

lib/core/policies.ml: Allocation Array Candidate Compute_load Effective_procs Float Hierarchical List Network_load Request Rm_monitor Rm_stats Select

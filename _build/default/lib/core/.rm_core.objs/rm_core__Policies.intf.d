lib/core/policies.mli: Allocation Request Rm_monitor Rm_stats Weights

lib/core/request.ml: Format Printf

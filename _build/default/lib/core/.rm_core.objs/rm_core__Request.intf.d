lib/core/request.mli: Format

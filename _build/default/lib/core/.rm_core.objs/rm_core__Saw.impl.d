lib/core/saw.ml: Array Float List Printf

lib/core/saw.mli:

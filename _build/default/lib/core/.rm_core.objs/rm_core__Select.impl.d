lib/core/select.ml: Candidate Compute_load List Network_load Request

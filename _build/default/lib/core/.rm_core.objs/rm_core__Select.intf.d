lib/core/select.mli: Candidate Compute_load Network_load Request

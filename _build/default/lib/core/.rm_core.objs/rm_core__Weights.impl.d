lib/core/weights.ml: Float

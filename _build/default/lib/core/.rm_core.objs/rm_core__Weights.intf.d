lib/core/weights.mli:

type entry = { node : int; procs : int }

type t = { policy : string; entries : entry list }

let make ~policy ~entries =
  if entries = [] then invalid_arg "Allocation.make: empty allocation";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.procs <= 0 then invalid_arg "Allocation.make: non-positive procs";
      if Hashtbl.mem seen e.node then
        invalid_arg "Allocation.make: duplicate node";
      Hashtbl.add seen e.node ())
    entries;
  { policy; entries }

let total_procs t = List.fold_left (fun acc e -> acc + e.procs) 0 t.entries
let node_ids t = List.map (fun e -> e.node) t.entries
let node_count t = List.length t.entries

let procs_on t ~node =
  match List.find_opt (fun e -> e.node = node) t.entries with
  | Some e -> e.procs
  | None -> 0

let pp ppf t =
  Format.fprintf ppf "%s:[%s]" t.policy
    (String.concat "; "
       (List.map (fun e -> Printf.sprintf "n%d×%d" e.node e.procs) t.entries))

type error =
  | Insufficient_capacity of { requested : int; available : int }
  | No_usable_nodes

let pp_error ppf = function
  | Insufficient_capacity { requested; available } ->
    Format.fprintf ppf "insufficient capacity: requested %d, available %d"
      requested available
  | No_usable_nodes -> Format.fprintf ppf "no usable nodes"

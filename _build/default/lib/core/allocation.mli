(** The result of node allocation: which nodes, how many processes each. *)

type entry = { node : int; procs : int }

type t = private {
  policy : string;  (** allocating policy name, for reporting *)
  entries : entry list;  (** in placement order; procs > 0 each *)
}

val make : policy:string -> entries:entry list -> t
(** Validates: non-empty, positive process counts, distinct nodes. *)

val total_procs : t -> int
val node_ids : t -> int list
val node_count : t -> int
val procs_on : t -> node:int -> int
(** 0 when the node is not part of the allocation. *)

val pp : Format.formatter -> t -> unit

type error =
  | Insufficient_capacity of { requested : int; available : int }
  | No_usable_nodes

val pp_error : Format.formatter -> error -> unit

let objective ~loads ~net ~request ~nodes =
  (request.Request.alpha *. Compute_load.total loads ~nodes)
  +. (request.Request.beta *. Network_load.total_edges net ~nodes)

let best_subset ~loads ~net ~capacity ~request ~max_nodes =
  let usable = Array.of_list (Compute_load.usable loads) in
  let v = Array.length usable in
  if v > 20 then invalid_arg "Brute_force.best_subset: too many nodes";
  let caps = Array.map (fun u -> max 1 (capacity u)) usable in
  let needed = request.Request.procs in
  let best = ref None in
  (* Enumerate subsets as bitmasks. *)
  for mask = 1 to (1 lsl v) - 1 do
    let size = ref 0 and cap = ref 0 and nodes = ref [] in
    for i = v - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        cap := !cap + caps.(i);
        nodes := usable.(i) :: !nodes
      end
    done;
    if !size <= max_nodes && !cap >= needed then begin
      let score = objective ~loads ~net ~request ~nodes:!nodes in
      match !best with
      | Some (_, s) when s <= score -> ()
      | Some _ | None -> best := Some (!nodes, score)
    end
  done;
  !best

(** Exhaustive sub-graph search — the optimum the greedy heuristic
    approximates (§3.3.1 notes brute force "would not scale well";
    we use it on small clusters to measure the optimality gap). *)

val best_subset :
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  max_nodes:int ->
  (int list * float) option
(** Enumerate every subset of usable nodes whose capacity covers the
    request, score it with Eq. 4's un-normalized objective
    α·C + β·N (normalization is rank-preserving across a fixed subset
    universe only when sums are shared, so the raw objective is the
    honest comparator) and return the minimizing node set with its
    objective. [None] when no subset of at most [max_nodes] covers the
    request. Cost is O(2^V) — guarded to V ≤ 20. *)

val objective :
  loads:Compute_load.t ->
  net:Network_load.t ->
  request:Request.t ->
  nodes:int list ->
  float
(** α·ΣCL + β·ΣNL for a node set (un-normalized Eq. 4). *)

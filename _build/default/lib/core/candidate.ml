type t = {
  start : int;
  nodes : int list;
  assignment : (int * int) list;
}

let addition_cost ~loads ~net ~request ~start u =
  if u = start then 0.0
  else begin
    let alpha = request.Request.alpha and beta = request.Request.beta in
    (alpha *. Compute_load.get loads ~node:u) +. (beta *. Network_load.get net ~u:start ~v:u)
  end

let generate ~start ~loads ~net ~capacity ~request =
  let usable = Compute_load.usable loads in
  if not (List.mem start usable) then
    invalid_arg "Candidate.generate: start node not usable";
  let ranked =
    (* Start node first (cost 0), others by ascending addition cost;
       ties break on node id for determinism. *)
    List.sort
      (fun (a, ca) (b, cb) ->
        match Float.compare ca cb with 0 -> compare a b | c -> c)
      (List.map (fun u -> (u, addition_cost ~loads ~net ~request ~start u)) usable)
  in
  let n = request.Request.procs in
  let rec take acc allocated = function
    | [] -> (List.rev acc, allocated)
    | (u, _) :: rest ->
      if allocated >= n then (List.rev acc, allocated)
      else begin
        let cap = max 1 (capacity u) in
        let procs = min cap (n - allocated) in
        take ((u, procs) :: acc) (allocated + procs) rest
      end
  in
  let assignment, allocated = take [] 0 ranked in
  let assignment =
    if allocated >= n then assignment
    else begin
      (* All nodes in, request still unsatisfied: deal the remaining
         processes round-robin over the selected nodes. *)
      let arr = Array.of_list assignment in
      let k = Array.length arr in
      let remaining = ref (n - allocated) in
      let i = ref 0 in
      while !remaining > 0 do
        let node, procs = arr.(!i) in
        arr.(!i) <- (node, procs + 1);
        decr remaining;
        i := (!i + 1) mod k
      done;
      Array.to_list arr
    end
  in
  { start; nodes = List.map fst assignment; assignment }

let total_procs t = List.fold_left (fun acc (_, p) -> acc + p) 0 t.assignment

let generate_all ~loads ~net ~capacity ~request =
  List.map
    (fun start -> generate ~start ~loads ~net ~capacity ~request)
    (Compute_load.usable loads)

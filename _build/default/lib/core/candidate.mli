(** Candidate sub-graph generation — Algorithm 1.

    Starting from a node v, other nodes u are ranked by the addition
    cost A_v(u) = α·CL(u) + β·NL(v,u) (the starting node itself costs
    0) and greedily added until the requested process count is covered
    by the nodes' capacities. If every node is in and the request is
    still unsatisfied, the remaining processes are dealt round-robin
    over the selected nodes (oversubscription), as in lines 12–13. *)

type t = {
  start : int;
  nodes : int list;  (** in addition order, [start] first *)
  assignment : (int * int) list;  (** (node, procs), same order *)
}

val generate :
  start:int ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  t
(** [capacity node] is ppn when pinned, else pc_v (Eq. 3). The start
    node must be usable. Runs in O(V log V). *)

val addition_cost :
  loads:Compute_load.t ->
  net:Network_load.t ->
  request:Request.t ->
  start:int ->
  int ->
  float
(** A_v(u); 0 when [u = start]. Exposed for tests. *)

val total_procs : t -> int

val generate_all :
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  t list
(** One candidate per usable start node — the set C of §3.3.2,
    O(V² log V) total. *)

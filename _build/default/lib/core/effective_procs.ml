module Snapshot = Rm_monitor.Snapshot

let of_load ~cores ~load =
  if cores <= 0 then invalid_arg "Effective_procs.of_load: no cores";
  if load < 0.0 then invalid_arg "Effective_procs.of_load: negative load";
  cores - (int_of_float (Float.ceil load) mod cores)

let of_snapshot snapshot ~loads =
  List.map
    (fun node ->
      let info =
        match Snapshot.node_info snapshot node with
        | Some i -> i
        | None -> assert false
      in
      let cores = info.Snapshot.static.Rm_cluster.Node.cores in
      let load = Compute_load.cpu_load_1m loads ~node in
      (node, of_load ~cores ~load))
    (Compute_load.usable loads)

(** Effective processor count pc_v — Eq. 3.

    pc_v = coreCount_v − ⌈Load_v⌉ mod coreCount_v: the processes worth
    of capacity left after discounting the runnable processes other
    users already keep busy. The paper's formula uses the modulo, so a
    node loaded beyond its core count wraps — we reproduce it verbatim
    (and test the consequences). Result is always in [1, coreCount]. *)

val of_load : cores:int -> load:float -> int
(** Requires [cores > 0] and [load >= 0]. *)

val of_snapshot :
  Rm_monitor.Snapshot.t -> loads:Compute_load.t -> (int * int) list
(** [(node, pc_v)] for every usable node, using the 1-minute load mean
    (what `uptime` reports first). *)

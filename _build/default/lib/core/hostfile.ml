module Cluster = Rm_cluster.Cluster

let hostname ~cluster node =
  if node < 0 || node >= Cluster.node_count cluster then
    invalid_arg "Hostfile: node not in cluster";
  (Cluster.node cluster node).Rm_cluster.Node.hostname

let machinefile ~allocation ~cluster =
  String.concat ""
    (List.map
       (fun (e : Allocation.entry) ->
         Printf.sprintf "%s slots=%d\n" (hostname ~cluster e.node) e.procs)
       allocation.Allocation.entries)

let hydra_hosts ~allocation ~cluster =
  String.concat ","
    (List.map
       (fun (e : Allocation.entry) ->
         Printf.sprintf "%s:%d" (hostname ~cluster e.node) e.procs)
       allocation.Allocation.entries)

let mpirun_command ~allocation ~cluster ~program =
  Printf.sprintf "mpiexec -np %d -hosts %s %s"
    (Allocation.total_procs allocation)
    (hydra_hosts ~allocation ~cluster)
    program

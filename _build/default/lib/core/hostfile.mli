(** Render an allocation in the formats MPI launchers consume.

    The paper's broker ultimately hands the user "a list of hostnames"
    for mpiexec (§1); these helpers produce that list in the common
    dialects. All raise [Invalid_argument] if an allocated node id is
    not part of the cluster. *)

val machinefile :
  allocation:Allocation.t -> cluster:Rm_cluster.Cluster.t -> string
(** OpenMPI/MPICH machinefile: one "hostname slots=k" line per node, in
    placement order, newline-terminated. *)

val hydra_hosts :
  allocation:Allocation.t -> cluster:Rm_cluster.Cluster.t -> string
(** Hydra / mpiexec [-hosts] argument: ["h1:4,h2:4,…"]. *)

val mpirun_command :
  allocation:Allocation.t ->
  cluster:Rm_cluster.Cluster.t ->
  program:string ->
  string
(** A ready-to-paste command line:
    ["mpiexec -np N -hosts h1:4,h2:4 program"]. *)

type column = {
  name : string;
  criterion : Saw.criterion;
  weight : float;
  values : float array;
}

let validate_columns columns =
  match columns with
  | [] -> invalid_arg "Madm: no columns"
  | first :: _ ->
    let n = Array.length first.values in
    if n = 0 then invalid_arg "Madm: empty columns";
    let wsum = ref 0.0 in
    List.iter
      (fun c ->
        if Array.length c.values <> n then invalid_arg "Madm: ragged columns";
        if c.weight < 0.0 then invalid_arg "Madm: negative weight";
        wsum := !wsum +. c.weight;
        Array.iter
          (fun v ->
            if not (Float.is_finite v) then invalid_arg "Madm: non-finite value")
          c.values)
      columns;
    if !wsum <= 0.0 then invalid_arg "Madm: zero weights";
    n

let saw_scores columns =
  ignore (validate_columns columns);
  Saw.combine
    (List.map (fun c -> (c.weight, Saw.prepare c.criterion c.values)) columns)

(* PROMETHEE-II with the usual criterion: alternative i is preferred to
   j on column c when its value is strictly better in c's direction. *)
let promethee_net_flows columns =
  let n = validate_columns columns in
  let wsum = List.fold_left (fun acc c -> acc +. c.weight) 0.0 columns in
  let better c i j =
    match c.criterion with
    | Saw.Maximize -> c.values.(i) > c.values.(j)
    | Saw.Minimize -> c.values.(i) < c.values.(j)
  in
  let pi i j =
    List.fold_left
      (fun acc c -> if better c i j then acc +. c.weight else acc)
      0.0 columns
    /. wsum
  in
  if n = 1 then [| 0.0 |]
  else
    Array.init n (fun i ->
        let plus = ref 0.0 and minus = ref 0.0 in
        for j = 0 to n - 1 do
          if j <> i then begin
            plus := !plus +. pi i j;
            minus := !minus +. pi j i
          end
        done;
        (!plus -. !minus) /. float_of_int (n - 1))

let ranking ~scores ~higher_is_better =
  let idx = List.init (Array.length scores) (fun i -> i) in
  List.sort
    (fun a b ->
      let c =
        if higher_is_better then Float.compare scores.(b) scores.(a)
        else Float.compare scores.(a) scores.(b)
      in
      if c <> 0 then c else compare a b)
    idx

let check_comparisons m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Madm.ahp: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Madm.ahp: not square")
    m;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if m.(i).(j) <= 0.0 then invalid_arg "Madm.ahp: non-positive entry";
      let recip = 1.0 /. m.(j).(i) in
      if Float.abs (m.(i).(j) -. recip) > 0.05 *. m.(i).(j) then
        invalid_arg "Madm.ahp: not reciprocal"
    done
  done;
  n

let ahp_priorities m =
  let n = check_comparisons m in
  let geo =
    Array.map
      (fun row ->
        exp (Array.fold_left (fun acc v -> acc +. log v) 0.0 row /. float_of_int n))
      m
  in
  let total = Array.fold_left ( +. ) 0.0 geo in
  Array.map (fun g -> g /. total) geo

(* Saaty random-consistency indices for n = 1..10. *)
let random_index = [| 0.0; 0.0; 0.58; 0.9; 1.12; 1.24; 1.32; 1.41; 1.45; 1.49 |]

let ahp_consistency_ratio m =
  let n = check_comparisons m in
  if n <= 2 then 0.0
  else begin
    let w = ahp_priorities m in
    (* lambda_max estimated from (Mw)_i / w_i. *)
    let lambda =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let mw = ref 0.0 in
        for j = 0 to n - 1 do
          mw := !mw +. (m.(i).(j) *. w.(j))
        done;
        acc := !acc +. (!mw /. w.(i))
      done;
      !acc /. float_of_int n
    in
    let ci = (lambda -. float_of_int n) /. float_of_int (n - 1) in
    let ri =
      if n - 1 < Array.length random_index then random_index.(n - 1) else 1.49
    in
    if ri <= 0.0 then 0.0 else ci /. ri
  end

let ahp_scores ~comparisons ~columns =
  let k = List.length columns in
  if Array.length comparisons <> k then
    invalid_arg "Madm.ahp_scores: one comparison row per column required";
  let priorities = ahp_priorities comparisons in
  saw_scores
    (List.mapi (fun i c -> { c with weight = priorities.(i) }) columns)

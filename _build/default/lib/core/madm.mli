(** Alternative multi-attribute decision methods.

    The paper's compute load uses Simple Additive Weights; its related
    work (Kaur et al. [12]) ranks resources with PROMETHEE-II and AHP
    instead. This module implements both so the choice of MADM method
    can be ablated against SAW on identical attribute columns.

    Conventions: a column carries raw (non-normalized) attribute values
    per alternative plus its optimization direction; weights need not
    sum to 1 (normalized internally). *)

type column = {
  name : string;
  criterion : Saw.criterion;
  weight : float;
  values : float array;
}

val validate_columns : column list -> int
(** Returns the number of alternatives; raises [Invalid_argument] on an
    empty list, ragged columns, negative weights, all-zero weights, or
    non-finite values. *)

(** {2 SAW (the paper's method, for reference)} *)

val saw_scores : column list -> float array
(** Per-alternative cost via the paper's pipeline; {e lower is
    better}. *)

(** {2 PROMETHEE-II} *)

val promethee_net_flows : column list -> float array
(** Net outranking flow φ = φ⁺ − φ⁻ per alternative using the usual
    (strict) preference function; {e higher is better}; values lie in
    [-1, 1]. *)

val ranking : scores:float array -> higher_is_better:bool -> int list
(** Alternative indices, best first; ties break on index. *)

(** {2 AHP} *)

val ahp_priorities : float array array -> float array
(** Priority vector of a pairwise-comparison matrix (geometric-mean
    method), normalized to sum 1. Requires a square, positive,
    reciprocal matrix (a.(i).(j) ≈ 1 / a.(j).(i), checked within 5 %). *)

val ahp_consistency_ratio : float array array -> float
(** Saaty's CR = CI / RI; below ~0.1 is conventionally acceptable.
    Returns 0 for 1x1 and 2x2 matrices (always consistent). *)

val ahp_scores : comparisons:float array array -> columns:column list -> float array
(** SAW over the same columns but with weights replaced by the priority
    vector of [comparisons] (one row/column per attribute, in column
    list order); lower is better. *)

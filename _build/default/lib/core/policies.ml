module Snapshot = Rm_monitor.Snapshot
module Rng = Rm_stats.Rng

type policy =
  | Random
  | Sequential
  | Load_aware
  | Network_load_aware
  | Hierarchical

let name = function
  | Random -> "random"
  | Sequential -> "sequential"
  | Load_aware -> "load-aware"
  | Network_load_aware -> "network-load-aware"
  | Hierarchical -> "hierarchical"

let all = [ Random; Sequential; Load_aware; Network_load_aware ]

let of_name = function
  | "random" -> Some Random
  | "sequential" -> Some Sequential
  | "load-aware" -> Some Load_aware
  | "network-load-aware" -> Some Network_load_aware
  | "hierarchical" -> Some Hierarchical
  | _ -> None

(* Fill an ordered node list with processes: each node takes up to its
   capacity; leftover demand is dealt round-robin (matching Algorithm 1's
   overflow behaviour so all policies remain comparable). *)
let fill ~ordered ~capacity ~procs =
  let rec take acc allocated = function
    | [] -> (List.rev acc, allocated)
    | u :: rest ->
      if allocated >= procs then (List.rev acc, allocated)
      else begin
        let cap = max 1 (capacity u) in
        let p = min cap (procs - allocated) in
        take ((u, p) :: acc) (allocated + p) rest
      end
  in
  let assignment, allocated = take [] 0 ordered in
  if allocated >= procs then assignment
  else begin
    let arr = Array.of_list assignment in
    let k = Array.length arr in
    let remaining = ref (procs - allocated) in
    let i = ref 0 in
    while !remaining > 0 do
      let node, p = arr.(!i) in
      arr.(!i) <- (node, p + 1);
      decr remaining;
      i := (!i + 1) mod k
    done;
    Array.to_list arr
  end

let to_allocation ~policy assignment =
  Allocation.make ~policy:(name policy)
    ~entries:(List.map (fun (node, procs) -> { Allocation.node; procs }) assignment)

let allocate ~policy ~snapshot ~weights ~request ~rng =
  let loads = Compute_load.of_snapshot snapshot ~weights in
  let usable = Compute_load.usable loads in
  if usable = [] then Error Allocation.No_usable_nodes
  else begin
    let pc = Effective_procs.of_snapshot snapshot ~loads in
    let capacity node =
      let effective =
        match List.assoc_opt node pc with Some e -> e | None -> 1
      in
      Request.capacity_of request ~effective
    in
    let procs = request.Request.procs in
    match policy with
    | Random ->
      let arr = Array.of_list usable in
      Rng.shuffle rng arr;
      Ok (to_allocation ~policy (fill ~ordered:(Array.to_list arr) ~capacity ~procs))
    | Sequential ->
      (* Random start, then ids in ascending order with wrap-around:
         hostname numbering tracks physical proximity (§1). *)
      let arr = Array.of_list usable in
      let k = Array.length arr in
      let start = Rng.int rng k in
      let ordered = List.init k (fun i -> arr.((start + i) mod k)) in
      Ok (to_allocation ~policy (fill ~ordered ~capacity ~procs))
    | Load_aware ->
      let ordered =
        List.sort
          (fun a b ->
            match
              Float.compare (Compute_load.get loads ~node:a)
                (Compute_load.get loads ~node:b)
            with
            | 0 -> compare a b
            | c -> c)
          usable
      in
      Ok (to_allocation ~policy (fill ~ordered ~capacity ~procs))
    | Network_load_aware ->
      let net = Network_load.of_snapshot snapshot ~weights in
      let candidates = Candidate.generate_all ~loads ~net ~capacity ~request in
      let best = Select.best ~candidates ~loads ~net ~request in
      Ok (to_allocation ~policy best.Select.candidate.Candidate.assignment)
    | Hierarchical -> Hierarchical.allocate ~snapshot ~weights ~request
  end

type t = { procs : int; ppn : int option; alpha : float; beta : float }

let make ?ppn ?(alpha = 0.5) ~procs () =
  if procs <= 0 then invalid_arg "Request.make: procs must be positive";
  (match ppn with
  | Some p when p <= 0 -> invalid_arg "Request.make: ppn must be positive"
  | Some _ | None -> ());
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Request.make: alpha must be in [0, 1]";
  { procs; ppn; alpha; beta = 1.0 -. alpha }

let capacity_of t ~effective =
  match t.ppn with Some p -> p | None -> effective

let pp ppf t =
  Format.fprintf ppf "request<%d procs%s α=%.2f β=%.2f>" t.procs
    (match t.ppn with Some p -> Printf.sprintf " @%d/node" p | None -> "")
    t.alpha t.beta

(** A node-allocation request for an MPI job (§3.3).

    The user specifies the total process count, optionally processes per
    node, and the compute/communication balance α, β of Eq. 4 (α high
    for compute-bound jobs, β high for communication-bound ones;
    α + β = 1). *)

type t = private {
  procs : int;
  ppn : int option;
  alpha : float;
  beta : float;
}

val make : ?ppn:int -> ?alpha:float -> procs:int -> unit -> t
(** [alpha] defaults to 0.5; [beta] is always [1 - alpha]. Raises
    [Invalid_argument] unless [procs > 0], [ppn > 0] when given, and
    [0 <= alpha <= 1]. *)

val capacity_of : t -> effective:int -> int
(** Per-node capacity the request sees: [ppn] when the user pinned it,
    otherwise the node's effective processor count (Eq. 3). *)

val pp : Format.formatter -> t -> unit

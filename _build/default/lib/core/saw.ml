type criterion = Maximize | Minimize

(* Rounding slack: sliding-window sums can drift a few ulps below zero
   after many evictions; treat those as zero but reject real negatives. *)
let negative_slack = 1e-9

let normalize col =
  let col =
    Array.map
      (fun x ->
        if not (Float.is_finite x) || x < -.negative_slack then
          invalid_arg
            (Printf.sprintf
               "Saw.normalize: values must be finite and non-negative (got %g)"
               x)
        else Float.max 0.0 x)
      col
  in
  let sum = Array.fold_left ( +. ) 0.0 col in
  if sum <= 0.0 then Array.map (fun _ -> 0.0) col
  else Array.map (fun x -> x /. sum) col

let directionalize criterion col =
  match criterion with
  | Minimize -> Array.copy col
  | Maximize ->
    if Array.length col = 0 then [||]
    else begin
      let m = Array.fold_left Float.max col.(0) col in
      Array.map (fun x -> m -. x) col
    end

let prepare criterion col = directionalize criterion (normalize col)

let combine columns =
  match columns with
  | [] -> invalid_arg "Saw.combine: no columns"
  | (_, first) :: _ ->
    let n = Array.length first in
    List.iter
      (fun (w, col) ->
        if w < 0.0 then invalid_arg "Saw.combine: negative weight";
        if Array.length col <> n then invalid_arg "Saw.combine: ragged columns")
      columns;
    Array.init n (fun i ->
        List.fold_left (fun acc (w, col) -> acc +. (w *. col.(i))) 0.0 columns)

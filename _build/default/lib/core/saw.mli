(** Simple Additive Weights machinery (§3.2.1).

    The paper's recipe, applied per attribute column over the candidate
    node set:
    + normalize by dividing each value by the column sum;
    + make every attribute minimization-directed by complementing
      maximization attributes with respect to the column maximum;
    + combine columns as a weighted sum.

    A column whose sum is zero (all nodes identical at 0) normalizes to
    all-zeros; a constant column contributes equally to every node, so
    it never changes the ranking — both behaviours are tested. *)

type criterion = Maximize | Minimize

val normalize : float array -> float array
(** Divide by the column sum. All values must be finite and >= 0. *)

val directionalize : criterion -> float array -> float array
(** [Minimize] is the identity; [Maximize] maps x to (max - x). *)

val prepare : criterion -> float array -> float array
(** {!normalize} then {!directionalize}. *)

val combine : (float * float array) list -> float array
(** [combine [(w_a, col_a); ...]] is the per-row weighted sum
    Σ_a w_a · col_a (Eq. 1). All columns must share a length; weights
    must be >= 0. *)

type t = {
  w_core_count : float;
  w_freq : float;
  w_total_mem : float;
  w_users : float;
  w_load : float;
  w_util : float;
  w_nic : float;
  w_mem_avail : float;
  blend_m1 : float;
  blend_m5 : float;
  blend_m15 : float;
  w_lt : float;
  w_bw : float;
}

let paper_default =
  {
    w_core_count = 0.1;
    w_freq = 0.05;
    w_total_mem = 0.05;
    w_users = 0.0;
    w_load = 0.3;
    w_util = 0.2;
    w_nic = 0.2;
    w_mem_avail = 0.1;
    blend_m1 = 0.6;
    blend_m5 = 0.3;
    blend_m15 = 0.1;
    w_lt = 0.25;
    w_bw = 0.75;
  }

let compute_intensive =
  { paper_default with w_load = 0.4; w_util = 0.3; w_nic = 0.05; w_mem_avail = 0.05 }

let network_intensive =
  { paper_default with w_load = 0.2; w_util = 0.1; w_nic = 0.35; w_mem_avail = 0.15 }

let latency_sensitive = { paper_default with w_lt = 0.75; w_bw = 0.25 }

let attribute_weight_sum t =
  t.w_core_count +. t.w_freq +. t.w_total_mem +. t.w_users +. t.w_load
  +. t.w_util +. t.w_nic +. t.w_mem_avail

let validate t =
  let check name w =
    if w < 0.0 || not (Float.is_finite w) then
      invalid_arg ("Weights.validate: bad weight " ^ name)
  in
  check "core_count" t.w_core_count;
  check "freq" t.w_freq;
  check "total_mem" t.w_total_mem;
  check "users" t.w_users;
  check "load" t.w_load;
  check "util" t.w_util;
  check "nic" t.w_nic;
  check "mem_avail" t.w_mem_avail;
  check "blend_m1" t.blend_m1;
  check "blend_m5" t.blend_m5;
  check "blend_m15" t.blend_m15;
  check "lt" t.w_lt;
  check "bw" t.w_bw;
  if t.blend_m1 +. t.blend_m5 +. t.blend_m15 <= 0.0 then
    invalid_arg "Weights.validate: zero blend";
  if attribute_weight_sum t <= 0.0 then
    invalid_arg "Weights.validate: zero attribute weights";
  if t.w_lt +. t.w_bw <= 0.0 then invalid_arg "Weights.validate: zero net weights"

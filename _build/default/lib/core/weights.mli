(** Relative weights for node attributes and network terms.

    The attribute weights feed Eq. 1 (compute load), [w_lt]/[w_bw] feed
    Eq. 2 (network load), and the 1/5/15-minute blend collapses each
    running-mean triple into the scalar the SAW step consumes. *)

type t = {
  (* Eq. 1 — attribute weights (Table 1 order) *)
  w_core_count : float;
  w_freq : float;
  w_total_mem : float;
  w_users : float;
  w_load : float;
  w_util : float;
  w_nic : float;
  w_mem_avail : float;
  (* running-mean blend over (1 min, 5 min, 15 min) *)
  blend_m1 : float;
  blend_m5 : float;
  blend_m15 : float;
  (* Eq. 2 — network-load weights *)
  w_lt : float;
  w_bw : float;
}

val paper_default : t
(** §5's empirical setting: 0.3 CPU load, 0.2 CPU utilization, 0.2 node
    data-flow rate, 0.1 available memory, 0.1 logical core count, 0.05
    clock speed, 0.05 total memory (current-users weight 0);
    [w_lt = 0.25], [w_bw = 0.75]; blend favouring the 1-minute mean. *)

val compute_intensive : t
(** Higher weight on CPU load/utilization (§3.2.1). *)

val network_intensive : t
(** Higher weight on node data-flow rate and available memory. *)

val latency_sensitive : t
(** [paper_default] with [w_lt] dominating — for chatty jobs with small
    messages (§3.2.2 discussion). *)

val attribute_weight_sum : t -> float
val validate : t -> unit
(** Raises [Invalid_argument] on a negative weight or an all-zero blend. *)

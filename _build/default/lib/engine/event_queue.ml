type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable dead : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live = 0 }
let is_empty t = t.live = 0
let length t = t.live

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && before t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && before t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload; dead = false } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then begin
    (* Grow, seeding fresh cells with the new entry so no dummy escapes. *)
    let cap = Stdlib.max 16 (2 * Array.length t.heap) in
    let heap = Array.make cap entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  H entry

let cancel t (H entry) =
  if not entry.dead then begin
    entry.dead <- true;
    (* [live] only tracks entries still in this queue's heap; a handle from
       another queue decrementing us would corrupt the count, but handles
       are opaque and queues are not mixed in practice. *)
    if t.live > 0 then t.live <- t.live - 1
  end

let cancelled _t (H entry) = entry.dead

let pop_raw t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some top
  end

let rec pop t =
  match pop_raw t with
  | None -> None
  | Some entry ->
    if entry.dead then pop t
    else begin
      entry.dead <- true;
      (* mark popped so late [cancel] is a no-op *)
      t.live <- t.live - 1;
      Some (entry.time, entry.payload)
    end

let rec peek_time t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    if top.dead then begin
      ignore (pop_raw t);
      peek_time t
    end
    else Some top.time
  end

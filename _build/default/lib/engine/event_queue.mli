(** Priority queue of timed events for the discrete-event simulator.

    A binary min-heap ordered by (time, sequence number): events at equal
    times pop in insertion order, which keeps simulations deterministic.
    Events can be cancelled in O(1) (lazy deletion: cancelled entries are
    skipped at pop time). *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:float -> 'a -> handle
val cancel : 'a t -> handle -> unit
(** Cancelling twice, or cancelling an already-popped event, is a no-op. *)

val cancelled : 'a t -> handle -> bool

val peek_time : 'a t -> float option
(** Time of the earliest live event. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live event. *)

type t = { mutable clock : float; queue : task Event_queue.t }
and task = t -> unit

let create ?(start = 0.0) () = { clock = start; queue = Event_queue.create () }
let now t = t.clock

let schedule_at t ~time task =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.push t.queue ~time task

let schedule_after t ~delay task =
  if delay < 0.0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t ~time:(t.clock +. delay) task

let cancel t handle = Event_queue.cancel t.queue handle

let every t ?jitter ~period ~until task =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let next_delay () =
    match jitter with None -> period | Some j -> Float.max 1e-9 (period +. j ())
  in
  let rec tick sim =
    if now sim <= until then begin
      task sim;
      let delay = next_delay () in
      if now sim +. delay <= until then ignore (schedule_after sim ~delay tick)
    end
  in
  ignore (schedule_after t ~delay:0.0 tick)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, task) ->
    t.clock <- time;
    task t;
    true

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon

let pending t = Event_queue.length t.queue

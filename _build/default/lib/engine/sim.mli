(** Discrete-event simulation driver: a virtual clock plus an event queue.

    All time is in simulated seconds from the simulation epoch. Callbacks
    scheduled at the same instant run in scheduling order. The cluster
    world, monitor daemons and MPI executor all advance on one shared
    [t]. *)

type t

type task = t -> unit
(** A callback receiving the simulation (so it can reschedule itself). *)

val create : ?start:float -> unit -> t
val now : t -> float

val schedule_at : t -> time:float -> task -> Event_queue.handle
(** Raises [Invalid_argument] when [time] is in the past. *)

val schedule_after : t -> delay:float -> task -> Event_queue.handle
(** Requires [delay >= 0]. *)

val cancel : t -> Event_queue.handle -> unit

val every :
  t -> ?jitter:(unit -> float) -> period:float -> until:float -> task -> unit
(** Run [task] now-ish and then once per [period] until the clock passes
    [until]. [jitter], when given, is added to each period (e.g. to model
    daemons that sample "every 3–10 seconds"). Requires [period > 0]. *)

val run_until : t -> float -> unit
(** Process events in time order until the queue is empty or the next
    event is after the given horizon; the clock ends at the horizon or
    the last event time, whichever is later-bounded by the horizon. *)

val step : t -> bool
(** Process a single event. Returns false when the queue is empty. *)

val pending : t -> int

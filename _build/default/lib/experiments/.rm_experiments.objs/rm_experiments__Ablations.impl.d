lib/experiments/ablations.ml: Array Float Harness List Option Printf Render Rm_apps Rm_cluster Rm_core Rm_forecast Rm_monitor Rm_mpisim Rm_stats Rm_workload Unix

lib/experiments/ablations.mli:

lib/experiments/bandwidth_map.ml: Array Buffer Float List Printf Render Rm_cluster Rm_netsim Rm_stats Rm_workload

lib/experiments/bandwidth_map.mli: Rm_stats

lib/experiments/case_study.ml: Array Buffer Harness List Printf Render Rm_apps Rm_cluster Rm_core Rm_mpisim Rm_stats Rm_workload Seq String

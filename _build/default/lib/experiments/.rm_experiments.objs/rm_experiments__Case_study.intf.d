lib/experiments/case_study.mli: Rm_core Rm_stats

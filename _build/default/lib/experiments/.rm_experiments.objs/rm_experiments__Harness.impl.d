lib/experiments/harness.ml: Float Fmt Format List Option Rm_cluster Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_stats Rm_workload

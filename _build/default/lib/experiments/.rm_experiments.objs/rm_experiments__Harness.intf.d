lib/experiments/harness.mli: Format Rm_cluster Rm_core Rm_monitor Rm_mpisim Rm_stats Rm_workload

lib/experiments/minife_sweep.ml: Rm_apps Rm_core Rm_workload Sweep

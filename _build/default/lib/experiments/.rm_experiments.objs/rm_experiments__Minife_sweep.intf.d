lib/experiments/minife_sweep.mli: Sweep

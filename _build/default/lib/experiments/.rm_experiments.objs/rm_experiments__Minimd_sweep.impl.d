lib/experiments/minimd_sweep.ml: Rm_apps Rm_core Rm_workload Sweep

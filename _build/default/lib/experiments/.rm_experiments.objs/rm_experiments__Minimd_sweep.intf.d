lib/experiments/minimd_sweep.mli: Sweep

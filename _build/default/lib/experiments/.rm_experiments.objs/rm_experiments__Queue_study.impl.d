lib/experiments/queue_study.ml: Array Float Harness List Printf Render Rm_apps Rm_cluster Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_netsim Rm_sched Rm_stats Rm_workload

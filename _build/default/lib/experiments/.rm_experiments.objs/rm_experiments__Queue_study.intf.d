lib/experiments/queue_study.mli: Rm_core Rm_sched

lib/experiments/render.ml: Array Buffer Float List Printf Rm_stats String

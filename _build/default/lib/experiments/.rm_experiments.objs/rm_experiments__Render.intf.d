lib/experiments/render.mli: Buffer Rm_stats

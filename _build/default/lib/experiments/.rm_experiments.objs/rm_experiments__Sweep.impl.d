lib/experiments/sweep.ml: Array Buffer Harness List Printf Render Rm_core Rm_mpisim Rm_stats Rm_workload

lib/experiments/sweep.mli: Harness Rm_core Rm_mpisim Rm_workload

lib/experiments/traces.ml: Buffer List Printf Render Rm_cluster Rm_stats Rm_workload

lib/experiments/traces.mli: Rm_stats

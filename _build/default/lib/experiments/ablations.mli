(** Ablation studies for the design choices DESIGN.md calls out.

    These go beyond the paper's tables: they probe the knobs the paper
    sets "empirically" (α/β, w_lt/w_bw), the monitoring cadence (§4's
    1-min/5-min probe intervals), and the greedy heuristic's distance
    from the brute-force optimum (§3.3.1). *)

val alpha_sweep :
  ?seed:int -> ?alphas:float list -> ?reps:int -> unit -> (float * float) list
(** miniMD (32 procs, s = 16) mean execution time as a function of α
    (β = 1 − α). Returns (alpha, mean time). *)

val render_alpha_sweep : (float * float) list -> string

type net_weight_point = {
  w_lt : float;
  w_bw : float;
  chatty_time_s : float;  (** latency-bound synthetic app *)
  bulky_time_s : float;  (** bandwidth-bound synthetic app *)
}

val net_weight_sweep : ?seed:int -> ?reps:int -> unit -> net_weight_point list
(** §3.2.2's flexibility claim: a latency-dominated job should do best
    with high [w_lt], a bulky job with high [w_bw]. *)

val render_net_weight_sweep : net_weight_point list -> string

val staleness_sweep :
  ?seed:int -> ?periods:float list -> ?reps:int -> unit -> (float * float) list
(** Gain of network-and-load-aware over random for miniMD (32 procs,
    s = 16) as the bandwidth-probe period grows (monitor data ages).
    Returns (probe period s, mean % gain). *)

val render_staleness_sweep : (float * float) list -> string

type hierarchy_point = {
  nodes : int;
  flat_ms : float;  (** wall-clock of one flat allocation *)
  hier_ms : float;  (** wall-clock of one hierarchical allocation *)
  flat_time_s : float;  (** miniMD execution time on the flat choice *)
  hier_time_s : float;  (** … on the hierarchical choice *)
}

val hierarchical_sweep :
  ?seed:int -> ?cluster_sizes:int list -> unit -> hierarchy_point list
(** §3.3.2's scalability adaptation: group-level allocation should cost
    far less wall-clock on big clusters while choosing nodes of
    comparable quality. Cluster sizes default to 60, 120, 240 (nodes
    split over size/15 switches). *)

val render_hierarchical_sweep : hierarchy_point list -> string

type multicluster_point = {
  policy : string;
  spans_sites : bool;  (** did the allocation cross the WAN? *)
  time_s : float;
}

val multicluster :
  ?seed:int -> ?reps:int -> unit -> multicluster_point list
(** §6's federation scenario: two 16-node sites joined by a slow campus
    backbone; a 32-process miniMD fits in either site. The aware
    allocator should confine the job to one site; random/sequential
    placements that span the WAN should pay dearly. One entry per
    policy (spans_sites true if any repetition spanned; time is the
    mean). *)

val render_multicluster : multicluster_point list -> string

val predictive :
  ?seed:int -> ?reps:int -> unit -> (string * float) list
(** Forecast-enhanced allocation (§1/§2's statistical-modelling hint):
    the allocator sees predicted next-step loads instead of the last
    measurement. Returns [("reactive", mean time); ("predictive", mean
    time)] for miniMD (32 procs) on a spiky cluster. *)

val render_predictive : (string * float) list -> string

type mapping_point = {
  app : string;
  default_mb_per_iter : float;
  mapped_mb_per_iter : float;
  default_time_s : float;
  mapped_time_s : float;
}

val rank_mapping : ?seed:int -> unit -> mapping_point list
(** Treematch-style rank mapping ([11] in the paper's related work) on
    top of the aware allocation: inter-node traffic per iteration and
    execution time, block vs affinity-packed placement, for miniMD and
    miniFE. *)

val render_rank_mapping : mapping_point list -> string

type madm_point = {
  method_name : string;
  spearman_vs_saw : float;  (** rank correlation with SAW's node ranking *)
  top8_overlap : int;  (** of the 8 best nodes, how many SAW also picks *)
  minimd_time_s : float;  (** runtime when allocating from this ranking *)
}

val madm_methods : ?seed:int -> unit -> madm_point list
(** Related work [12] ranks resources with PROMETHEE-II/AHP instead of
    SAW: compare the three methods' node rankings on one snapshot and
    the resulting load-aware-style allocations. *)

val render_madm : madm_point list -> string

val monitor_fidelity :
  ?seed:int -> ?reps:int -> unit -> (string * float) list
(** How much do sampling noise, probe staleness and running-mean lag
    cost? Allocate from the real monitor snapshot vs an oracle snapshot
    taken directly from ground truth, run miniMD on both. Returns
    [("monitor", t); ("oracle", t)]. *)

val render_monitor_fidelity : (string * float) list -> string

type optimality = {
  trials : int;
  mean_ratio : float;  (** greedy objective / optimal objective, ≥ 1 *)
  max_ratio : float;
  optimal_found : int;  (** trials where greedy matched the optimum *)
}

val optimality_gap : ?seed:int -> ?trials:int -> unit -> optimality
(** 8-node clusters, brute force vs Algorithm 1+2 on Eq. 4's raw
    objective. *)

val render_optimality : optimality -> string

module Matrix = Rm_stats.Matrix
module Rng = Rm_stats.Rng
module Timeseries = Rm_stats.Timeseries
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module Network = Rm_netsim.Network
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario

type result = {
  nodes : int;
  heat : Matrix.t;
  same_switch_mean : float;
  cross_switch_mean : float;
  pair_series : ((int * int) * Timeseries.t) list;
}

let measure rng network ~src ~dst =
  let truth = Network.available_bandwidth_mb_s network ~src ~dst in
  Float.max 0.1 (truth *. (1.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.03))

let run ?(nodes = 30) ?(sweeps = 10) ?(hours = 24.0) ~seed () =
  if nodes < 4 then invalid_arg "Bandwidth_map.run: need at least 4 nodes";
  let third = nodes / 3 in
  let cluster =
    Cluster.homogeneous ~prefix:"csews" ~cores:12 ~freq_ghz:3.4
      ~nodes_per_switch:[ third; third; nodes - (2 * third) ]
      ()
  in
  let world =
    World.create ~cluster ~scenario:(Scenario.hotspot ~switch:1) ~seed
  in
  let rng = Rng.create (seed + 13) in
  let network = World.network world in
  let topo = Cluster.topology cluster in
  (* (a) ten sweeps, 5 minutes apart, averaged. *)
  let acc = Matrix.square nodes ~init:0.0 in
  for sweep = 0 to sweeps - 1 do
    World.advance world ~now:(float_of_int sweep *. 300.0);
    for i = 0 to nodes - 1 do
      for j = i + 1 to nodes - 1 do
        let bw = measure rng network ~src:i ~dst:j in
        Matrix.update acc i j ~f:(fun v -> v +. bw);
        Matrix.update acc j i ~f:(fun v -> v +. bw)
      done
    done
  done;
  let heat = Matrix.map acc ~f:(fun v -> v /. float_of_int sweeps) in
  for i = 0 to nodes - 1 do
    Matrix.set heat i i nan
  done;
  let same = ref (0.0, 0) and cross = ref (0.0, 0) in
  Matrix.iteri heat ~f:(fun ~row ~col v ->
      if row < col then begin
        let bucket = if Topology.same_switch topo row col then same else cross in
        let sum, n = !bucket in
        bucket := (sum +. v, n + 1)
      end);
  let mean (sum, n) = if n = 0 then 0.0 else sum /. float_of_int n in
  (* (b) three fixed pairs over a day: same-switch, into the hotspot
     switch, and between the two quiet switches. *)
  let quiet_far = min (nodes - 1) ((2 * third) + (4 mod (nodes - (2 * third)))) in
  let pairs = [ (1, 3); (2, third + 2); (4, quiet_far) ] in
  let series = List.map (fun p -> (p, Timeseries.create ())) pairs in
  let t = ref (float_of_int sweeps *. 300.0) in
  let horizon = !t +. (hours *. 3600.0) in
  while !t <= horizon do
    World.advance world ~now:!t;
    List.iter
      (fun ((src, dst), ts) ->
        Timeseries.append ts ~time:!t ~value:(measure rng network ~src ~dst))
      series;
    t := !t +. 300.0
  done;
  {
    nodes;
    heat;
    same_switch_mean = mean !same;
    cross_switch_mean = mean !cross;
    pair_series = series;
  }

let to_csv r =
  let rows = ref [] in
  Matrix.iteri r.heat ~f:(fun ~row ~col v ->
      if row < col then
        rows :=
          [ string_of_int (row + 1); string_of_int (col + 1);
            Printf.sprintf "%.2f" v ]
          :: !rows);
  Render.csv ~header:[ "src"; "dst"; "mean_bandwidth_mb_s" ] ~rows:(List.rev !rows)

let render r =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "Figure 2(a) — mean measured P2P bandwidth (MB/s); light = low here, so\n\
     read the scale: higher value = higher available bandwidth\n\n";
  let labels = Array.init r.nodes (fun i -> string_of_int (i + 1)) in
  Render.heatmap ~row_labels:labels ~col_labels:labels ~values:r.heat buf;
  Buffer.add_string buf
    (Printf.sprintf
       "\nproximity effect: same-switch mean %.1f MB/s vs cross-switch mean %.1f MB/s\n"
       r.same_switch_mean r.cross_switch_mean);
  Buffer.add_string buf "\nFigure 2(b) — P2P bandwidth of three pairs across time\n";
  List.iter
    (fun ((a, b), ts) ->
      let s = Timeseries.value_summary ts in
      Buffer.add_string buf
        (Printf.sprintf "pair (%2d,%2d) [%s] mean=%.1f sd=%.1f MB/s\n" (a + 1)
           (b + 1)
           (Render.sparkline (Timeseries.values ts))
           s.Rm_stats.Descriptive.mean s.Rm_stats.Descriptive.stddev))
    r.pair_series;
  Buffer.contents buf

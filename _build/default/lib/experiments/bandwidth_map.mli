(** Figure 2 — P2P bandwidth variation across node pairs and time.

    (a) a 30×30 heatmap of measured P2P bandwidth averaged over 10
    probe sweeps (§1: light = high available bandwidth; same-switch
    blocks are visibly lighter); (b) bandwidth of three fixed pairs
    sampled over a day, fluctuating around their topology-determined
    base values. *)

type result = {
  nodes : int;
  heat : Rm_stats.Matrix.t;  (** mean measured bandwidth, MB/s *)
  same_switch_mean : float;
  cross_switch_mean : float;
  pair_series : ((int * int) * Rm_stats.Timeseries.t) list;
}

val run :
  ?nodes:int -> ?sweeps:int -> ?hours:float -> seed:int -> unit -> result
(** Defaults: 30 nodes, 10 sweeps for the heatmap, 24 h for the pair
    series. *)

val render : result -> string

val to_csv : result -> string
(** The Fig. 2(a) matrix in long form: src, dst, mean bandwidth MB/s. *)

module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Allocation = Rm_core.Allocation
module Network_load = Rm_core.Network_load
module Compute_load = Rm_core.Compute_load
module Matrix = Rm_stats.Matrix
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology

type row = {
  policy : Policies.policy;
  time_s : float;
  group_load : float;
  group_bw_complement : float;
  group_latency_us : float;
  nodes : int list;
}

type result = {
  rows : row list;
  heat_nodes : int list;
  bw_complement : Matrix.t;
  cpu_load : float list;
  hostnames : string list;
  switch_of : int list;
}

let run ?(seed = 42) ?(procs = 32) ?(s = 16) () =
  let env =
    Harness.make_env ~scenario:(Rm_workload.Scenario.hotspot ~switch:1) ~seed
      ~horizon:100_000.0 ()
  in
  Harness.warm env;
  let weights = Weights.paper_default in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs () in
  (* Freeze the Fig. 7 panel from the snapshot the first allocation saw. *)
  let snap0 = Harness.snapshot env in
  let loads0 = Compute_load.of_snapshot snap0 ~weights in
  let net0 = Network_load.of_snapshot snap0 ~weights in
  let cluster = Harness.cluster env in
  let topo = Cluster.topology cluster in
  let heat_nodes =
    List.filter (fun n -> Topology.switch_of_node topo n < 3)
      (Compute_load.usable loads0)
    |> List.filteri (fun i _ -> i mod 2 = 0)
    (* every other node keeps the panel readable, like the paper's 18 *)
  in
  let k = List.length heat_nodes in
  let bw_complement = Matrix.square (max k 1) ~init:nan in
  List.iteri
    (fun i u ->
      List.iteri
        (fun j v ->
          if i <> j then
            Matrix.set bw_complement i j (Network_load.bw_complement_mb_s net0 ~u ~v))
        heat_nodes)
    heat_nodes;
  let cpu_load =
    List.map (fun n -> Compute_load.cpu_load_1m loads0 ~node:n) heat_nodes
  in
  let hostnames =
    List.map (fun n -> (Cluster.node cluster n).Rm_cluster.Node.hostname) heat_nodes
  in
  let switch_of = List.map (Topology.switch_of_node topo) heat_nodes in
  let app_of ~ranks =
    Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s) ~ranks
  in
  let runs = Harness.compare_policies env ~weights ~request ~app_of () in
  let rows =
    List.map
      (fun (policy, (r : Harness.run_result)) ->
        {
          policy;
          time_s = r.Harness.stats.Rm_mpisim.Executor.total_time_s;
          group_load = r.Harness.group_load;
          group_bw_complement = r.Harness.group_bw_complement;
          group_latency_us = r.Harness.group_latency_us;
          nodes = Allocation.node_ids r.Harness.allocation;
        })
      runs
  in
  { rows; heat_nodes; bw_complement; cpu_load; hostnames; switch_of }

let render_table4 r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 4 — state of the allocated group at allocation time (miniMD, 32\n\
     procs, s=16) plus the resulting execution time\n\
     (paper: random 1.242/17.07/546.46, sequential 1.262/10.72/304.25,\n\
     load-aware 0.453/18.64/354.51, ours 0.633/5.36/82.90; times 27.6/24.9/12.3/4.4 s)\n\n";
  let header =
    [ "Algorithm"; "Avg CPU load"; "Avg BW-complement"; "Avg latency (us)"; "Time (s)" ]
  in
  let rows =
    List.map
      (fun row ->
        [
          Policies.name row.policy;
          Render.f2 row.group_load;
          Render.f2 row.group_bw_complement;
          Render.f1 row.group_latency_us;
          Render.f2 row.time_s;
        ])
      r.rows
  in
  Render.table ~header ~rows buf;
  Buffer.contents buf

let render_fig7 r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 7 — P2P bandwidth complement (dark = low available bandwidth)\n\
     over sampled nodes of the first three switches, the nodes each policy\n\
     selected, and per-node CPU load at allocation time\n\n";
  let labels = Array.of_list r.hostnames in
  let short =
    Array.map
      (fun h ->
        (* csews12 -> "12" *)
        let digits = String.to_seq h |> Seq.filter (fun c -> c >= '0' && c <= '9') in
        String.of_seq digits)
      labels
  in
  Render.heatmap ~row_labels:short ~col_labels:short ~values:r.bw_complement buf;
  Buffer.add_string buf "\nswitch:    ";
  List.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%2d" s)) r.switch_of;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (Printf.sprintf "%-19s" (Policies.name row.policy));
      List.iter
        (fun n ->
          Buffer.add_string buf (if List.mem n row.nodes then " X" else " ."))
        r.heat_nodes;
      Buffer.add_string buf
        (Printf.sprintf "   (+%d nodes off-panel)\n"
           (List.length (List.filter (fun n -> not (List.mem n r.heat_nodes)) row.nodes))))
    r.rows;
  Buffer.add_string buf "CPU load:  ";
  List.iter
    (fun l ->
      let c = if l >= 4.0 then '#' else if l >= 1.5 then '+' else if l >= 0.5 then '.' else ' ' in
      Buffer.add_string buf (Printf.sprintf " %c" c))
    r.cpu_load;
  Buffer.add_string buf "\n           (' '<0.5  '.'<1.5  '+'<4  '#'>=4)\n";
  Buffer.contents buf

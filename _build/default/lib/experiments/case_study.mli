(** Table 4 and Figure 7 — resource-allocation analysis (§5.3).

    A single miniMD configuration (32 processes, 4/node, s = 16 → 16K
    atoms) run on nodes allocated by all four policies, with the state
    of each chosen group recorded at allocation time: average CPU load,
    average complement of available bandwidth and average latency over
    the group's P2P links — plus the Fig. 7 panel: the bandwidth-
    complement heatmap over the first switches, which nodes each policy
    picked, and the per-node CPU load row. *)

type row = {
  policy : Rm_core.Policies.policy;
  time_s : float;
  group_load : float;
  group_bw_complement : float;
  group_latency_us : float;
  nodes : int list;
}

type result = {
  rows : row list;  (** paper order: random, sequential, load-aware, ours *)
  heat_nodes : int list;  (** nodes shown in the Fig. 7 heatmap *)
  bw_complement : Rm_stats.Matrix.t;  (** over [heat_nodes] *)
  cpu_load : float list;  (** per heat node, at allocation time *)
  hostnames : string list;
  switch_of : int list;  (** switch of each heat node *)
}

val run : ?seed:int -> ?procs:int -> ?s:int -> unit -> result
val render_table4 : result -> string
val render_fig7 : result -> string

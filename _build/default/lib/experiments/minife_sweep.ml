let spec ?(quick = false) ~seed () =
  {
    Sweep.label = "miniFE";
    size_label = "nx";
    procs_list = (if quick then [ 8; 32 ] else [ 8; 16; 32; 48 ]);
    sizes = (if quick then [ 96; 256 ] else [ 48; 96; 144; 256; 384 ]);
    reps = (if quick then 2 else 5);
    ppn = 4;
    alpha = 0.4;
    weights = Rm_core.Weights.paper_default;
    scenario = Rm_workload.Scenario.normal;
    seed;
    app_of =
      (fun ~size ~ranks ->
        Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:size) ~ranks);
  }

let run ?quick ~seed () = Sweep.run (spec ?quick ~seed ())

let render_fig6 result =
  Sweep.render_times result
    ~title:
      "Figure 6 — miniFE execution time by allocation policy (4 procs/node,\n\
       mean of repetitions; problem is an nx^3-element brick)"

let render_table3 result =
  Sweep.render_gains result
    ~title:
      "Table 3 — % gain of network-and-load-aware allocation, miniFE\n\
       (paper: random 47.9/50.4/92.1, sequential 31.1/28.0/80.4,\n\
       load-aware 34.8/38.7/91.0; CoV 0.05 vs 0.08 load-aware, 0.11 sequential)"

(** Figure 6 and Table 3 — miniFE strong scaling (§5.2).

    8–48 processes at 4 processes/node, nx = ny = nz from 48 to 384,
    α = 0.4 / β = 0.6, five repetitions per configuration. *)

val spec : ?quick:bool -> seed:int -> unit -> Sweep.spec
val run : ?quick:bool -> seed:int -> unit -> Sweep.result
val render_fig6 : Sweep.result -> string
val render_table3 : Sweep.result -> string

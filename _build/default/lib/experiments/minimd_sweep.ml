let spec ?(quick = false) ~seed () =
  {
    Sweep.label = "miniMD";
    size_label = "s";
    procs_list = (if quick then [ 8; 32 ] else [ 8; 16; 32; 64 ]);
    sizes = (if quick then [ 16; 32 ] else [ 8; 16; 24; 32; 40; 48 ]);
    reps = (if quick then 2 else 5);
    ppn = 4;
    alpha = 0.3;
    weights = Rm_core.Weights.paper_default;
    scenario = Rm_workload.Scenario.normal;
    seed;
    app_of =
      (fun ~size ~ranks ->
        Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:size) ~ranks);
  }

let run ?quick ~seed () = Sweep.run (spec ?quick ~seed ())

let render_fig4 result =
  Sweep.render_times result
    ~title:
      "Figure 4 — miniMD execution time by allocation policy (4 procs/node,\n\
       mean of repetitions; s is the box edge in unit cells, atoms = 4s^3)"

let render_table2 result =
  Sweep.render_gains result
    ~title:
      "Table 2 — % gain of network-and-load-aware allocation, miniMD\n\
       (paper: random 49.9/50.7/87.8, sequential 43.1/42.1/84.5,\n\
       load-aware 32.4/29.8/87.7; CoV 0.07 vs 0.13 load-aware, 0.27 sequential)"

let render_fig5 result =
  Sweep.render_load_per_core result
    ~title:
      "Figure 5 — average CPU load per logical core on allocated nodes, miniMD\n\
       (paper: network-and-load-aware 0.43, load-aware 0.31, sequential 0.68,\n\
       random 0.72)"

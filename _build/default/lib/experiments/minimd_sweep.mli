(** Figure 4, Table 2 and Figure 5 — miniMD strong scaling (§5.1).

    8–64 processes at 4 processes/node, problem size s from 8 to 48 in
    steps of 8 (2K–442K atoms), α = 0.3 / β = 0.7, five repetitions per
    configuration. *)

val spec : ?quick:bool -> seed:int -> unit -> Sweep.spec
(** [quick] trims sizes/reps for CI-speed runs. *)

val run : ?quick:bool -> seed:int -> unit -> Sweep.result
val render_fig4 : Sweep.result -> string
val render_table2 : Sweep.result -> string
val render_fig5 : Sweep.result -> string

module Matrix = Rm_stats.Matrix

let f2 v = Printf.sprintf "%.2f" v
let f1 v = Printf.sprintf "%.1f" v
let pct v = Printf.sprintf "%.1f%%" v

let table ~header ~rows buf =
  let ncols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Render.table: ragged row")
    rows;
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  Buffer.add_string buf
    (String.make (Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows

let table_str ~header ~rows =
  let buf = Buffer.create 256 in
  table ~header ~rows buf;
  Buffer.contents buf

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv ~header ~rows =
  let ncols = List.length header in
  List.iter
    (fun r -> if List.length r <> ncols then invalid_arg "Render.csv: ragged row")
    rows;
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let ramp = " .:-=+*#%@"

let shade ~lo ~hi v =
  if not (Float.is_finite v) then ' '
  else if hi <= lo then ramp.[0]
  else begin
    let t = (v -. lo) /. (hi -. lo) in
    let idx = int_of_float (t *. float_of_int (String.length ramp - 1)) in
    ramp.[max 0 (min (String.length ramp - 1) idx)]
  end

let finite_range m =
  let lo = ref infinity and hi = ref neg_infinity in
  Matrix.iteri m ~f:(fun ~row:_ ~col:_ v ->
      if Float.is_finite v then begin
        if v < !lo then lo := v;
        if v > !hi then hi := v
      end);
  (!lo, !hi)

let heatmap ?row_labels ?col_labels ~values ?(low_is_light = true) buf =
  let lo, hi = finite_range values in
  let label_width =
    match row_labels with
    | None -> 0
    | Some ls -> Array.fold_left (fun acc l -> max acc (String.length l)) 0 ls
  in
  (match col_labels with
  | None -> ()
  | Some ls ->
    Buffer.add_string buf (String.make (label_width + 1) ' ');
    Array.iter
      (fun l ->
        Buffer.add_string buf
          (if String.length l >= 2 then String.sub l (String.length l - 2) 2
           else Printf.sprintf "%2s" l))
      ls;
    Buffer.add_char buf '\n');
  for i = 0 to Matrix.rows values - 1 do
    (match row_labels with
    | Some ls when i < Array.length ls ->
      Buffer.add_string buf (Printf.sprintf "%*s " label_width ls.(i))
    | Some _ | None -> if label_width > 0 then
        Buffer.add_string buf (String.make (label_width + 1) ' '));
    for j = 0 to Matrix.cols values - 1 do
      let v = Matrix.get values i j in
      let v' = if low_is_light || not (Float.is_finite v) then v else lo +. hi -. v in
      Buffer.add_char buf (shade ~lo ~hi v');
      Buffer.add_char buf (shade ~lo ~hi v')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Printf.sprintf "scale: '%c'=%.3g .. '%c'=%.3g\n" ramp.[0] lo
       ramp.[String.length ramp - 1] hi)

let heatmap_str ?row_labels ?col_labels ~values () =
  let buf = Buffer.create 1024 in
  heatmap ?row_labels ?col_labels ~values buf;
  Buffer.contents buf

let sparkline values =
  if Array.length values = 0 then ""
  else begin
    let lo = Array.fold_left Float.min values.(0) values in
    let hi = Array.fold_left Float.max values.(0) values in
    String.init (Array.length values) (fun i -> shade ~lo ~hi values.(i))
  end

let series ~name ~times ~values ?(max_points = 24) buf =
  let n = Array.length values in
  if n <> Array.length times then invalid_arg "Render.series: length mismatch";
  Buffer.add_string buf (Printf.sprintf "%s  [%s]\n" name (sparkline values));
  if n > 0 then begin
    let step = max 1 (n / max_points) in
    let i = ref 0 in
    while !i < n do
      Buffer.add_string buf
        (Printf.sprintf "  t=%-10.0f %s=%.3f\n" times.(!i) name values.(!i));
      i := !i + step
    done
  end

(** Plain-text rendering for experiment output: aligned tables, ASCII
    heatmaps and downsampled series — the textual equivalents of the
    paper's figures, printed by [bench/main.exe]. *)

val table :
  header:string list -> rows:string list list -> Buffer.t -> unit
(** Column-aligned table with a rule under the header. Ragged rows are
    rejected. *)

val table_str : header:string list -> rows:string list list -> string

val heatmap :
  ?row_labels:string array ->
  ?col_labels:string array ->
  values:Rm_stats.Matrix.t ->
  ?low_is_light:bool ->
  Buffer.t ->
  unit
(** Shade each cell by its value within the matrix's finite range using
    the ramp [" .:-=+*#%@"] (dark = high unless [low_is_light] is
    false... i.e. by default light chars = low values). Infinite cells
    print as ["  "]. *)

val heatmap_str :
  ?row_labels:string array ->
  ?col_labels:string array ->
  values:Rm_stats.Matrix.t ->
  unit ->
  string

val series :
  name:string ->
  times:float array ->
  values:float array ->
  ?max_points:int ->
  Buffer.t ->
  unit
(** One "t=… v=…" row per (down-sampled) point plus a sparkline. *)

val sparkline : float array -> string
(** Unicode-free sparkline using the heatmap ramp. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180-ish CSV: fields containing commas, quotes or newlines are
    quoted, quotes doubled. Ragged rows are rejected. *)

val f2 : float -> string
(** Two-decimal float. *)

val f1 : float -> string

val pct : float -> string
(** One-decimal percentage with a '%' suffix. *)

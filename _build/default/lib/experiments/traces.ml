module Timeseries = Rm_stats.Timeseries
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario

type result = {
  hours : float;
  node_a : int;
  node_b : int;
  load_a : Timeseries.t;
  load_b : Timeseries.t;
  load_avg : Timeseries.t;
  nic_a : Timeseries.t;
  nic_b : Timeseries.t;
  nic_avg : Timeseries.t;
  util_avg : Timeseries.t;
  mem_used_pct_avg : Timeseries.t;
}

let run ?(hours = 48.0) ?(sample_period_s = 300.0) ?(nodes = 20) ~seed () =
  if nodes < 2 then invalid_arg "Traces.run: need at least 2 nodes";
  (* 6-core hyperthreaded i7s (12 logical cores), like Fig. 1's nodes. *)
  let cluster =
    Cluster.homogeneous ~prefix:"csews" ~cores:12 ~freq_ghz:3.4 ~mem_gb:16.0
      ~nodes_per_switch:[ (nodes + 1) / 2; nodes / 2 ]
      ()
  in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed in
  let node_a = 0 and node_b = min 7 (nodes - 1) in
  let mk name = Timeseries.create ~name () in
  let r =
    {
      hours;
      node_a;
      node_b;
      load_a = mk "load(A)";
      load_b = mk "load(B)";
      load_avg = mk "load(avg)";
      nic_a = mk "nic(A)";
      nic_b = mk "nic(B)";
      nic_avg = mk "nic(avg)";
      util_avg = mk "util(avg)";
      mem_used_pct_avg = mk "mem%(avg)";
    }
  in
  let horizon = hours *. 3600.0 in
  let t = ref 0.0 in
  while !t <= horizon do
    World.advance world ~now:!t;
    let mean f =
      let acc = ref 0.0 in
      for node = 0 to nodes - 1 do
        acc := !acc +. f node
      done;
      !acc /. float_of_int nodes
    in
    let app ts v = Timeseries.append ts ~time:!t ~value:v in
    app r.load_a (World.cpu_load world ~node:node_a);
    app r.load_b (World.cpu_load world ~node:node_b);
    app r.load_avg (mean (fun n -> World.cpu_load world ~node:n));
    app r.nic_a (World.nic_rate_mb_s world ~node:node_a);
    app r.nic_b (World.nic_rate_mb_s world ~node:node_b);
    app r.nic_avg (mean (fun n -> World.nic_rate_mb_s world ~node:n));
    app r.util_avg (mean (fun n -> World.cpu_util_pct world ~node:n));
    app r.mem_used_pct_avg
      (mean (fun n ->
           let total = (Cluster.node cluster n).Rm_cluster.Node.mem_gb in
           100.0 *. World.mem_used_gb world ~node:n /. total));
    t := !t +. sample_period_s
  done;
  r

let to_csv r =
  let series =
    [ r.load_a; r.load_b; r.load_avg; r.nic_a; r.nic_b; r.nic_avg; r.util_avg;
      r.mem_used_pct_avg ]
  in
  let header = "time_s" :: List.map Timeseries.name series in
  let n = Timeseries.length r.load_a in
  let rows =
    List.init n (fun i ->
        let time, _ = Timeseries.get r.load_a i in
        Printf.sprintf "%.0f" time
        :: List.map
             (fun ts ->
               let _, v = Timeseries.get ts i in
               Printf.sprintf "%.4f" v)
             series)
  in
  Render.csv ~header ~rows

let render r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 1 — node resource usage over %.0f h (nodes A=%d, B=%d)\n\n"
       r.hours r.node_a r.node_b);
  let show ts =
    let s = Timeseries.value_summary ts in
    Buffer.add_string buf
      (Printf.sprintf "%-11s [%s] mean=%.2f max=%.2f\n" (Timeseries.name ts)
         (Render.sparkline (Timeseries.values ts))
         s.Rm_stats.Descriptive.mean s.Rm_stats.Descriptive.max)
  in
  Buffer.add_string buf "(a) CPU load\n";
  show r.load_a;
  show r.load_b;
  show r.load_avg;
  Buffer.add_string buf "\n(b) network I/O (MB/s at the NIC)\n";
  show r.nic_a;
  show r.nic_b;
  show r.nic_avg;
  Buffer.add_string buf "\n(c) CPU utilization (%) and memory usage (%)\n";
  show r.util_avg;
  show r.mem_used_pct_avg;
  let util = Timeseries.value_summary r.util_avg in
  Buffer.add_string buf
    (Printf.sprintf
       "\npaper check: avg utilization stayed in ~20-35%% (here %.1f-%.1f%%, mean %.1f%%)\n"
       util.Rm_stats.Descriptive.min util.Rm_stats.Descriptive.max
       util.Rm_stats.Descriptive.mean);
  Buffer.contents buf

(** Figure 1 — resource-usage variation in a shared cluster.

    Records two days of ground truth on a 20-node cluster at 5-minute
    samples: (a) CPU load of two fixed nodes (A, B) and the 20-node
    average; (b) NIC data-flow rate of the same nodes and the average;
    (c) cluster-average CPU utilization and memory usage. The rendered
    summary checks the paper's envelopes (load mostly low with
    occasional spikes; utilization 20–35 %). *)

type result = {
  hours : float;
  node_a : int;
  node_b : int;
  load_a : Rm_stats.Timeseries.t;
  load_b : Rm_stats.Timeseries.t;
  load_avg : Rm_stats.Timeseries.t;
  nic_a : Rm_stats.Timeseries.t;
  nic_b : Rm_stats.Timeseries.t;
  nic_avg : Rm_stats.Timeseries.t;
  util_avg : Rm_stats.Timeseries.t;
  mem_used_pct_avg : Rm_stats.Timeseries.t;
}

val run :
  ?hours:float -> ?sample_period_s:float -> ?nodes:int -> seed:int -> unit ->
  result
(** Defaults: 48 h, 300 s sampling, 20 nodes. *)

val render : result -> string

val to_csv : result -> string
(** time_s plus every Fig. 1 series, one sample per row. *)

lib/forecast/forecaster.ml: Array Float List Option Predictor

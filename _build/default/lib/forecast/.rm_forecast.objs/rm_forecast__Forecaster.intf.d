lib/forecast/forecaster.mli: Predictor

lib/forecast/monitor_forecast.ml: Array Float Forecaster List Option Rm_monitor Rm_stats

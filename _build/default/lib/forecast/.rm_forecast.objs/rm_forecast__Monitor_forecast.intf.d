lib/forecast/monitor_forecast.mli: Rm_monitor

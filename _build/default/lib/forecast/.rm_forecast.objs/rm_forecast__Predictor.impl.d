lib/forecast/predictor.ml: Array Printf Rm_stats

lib/forecast/predictor.mli:

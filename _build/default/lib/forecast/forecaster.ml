type model_state = {
  model : Predictor.t;
  mutable pending : float option;  (** prediction awaiting its truth *)
  mutable abs_error_sum : float;
  mutable scored : int;
}

type t = {
  capacity : int;
  mutable history : float array;  (** oldest first *)
  mutable len : int;
  models : model_state array;
}

let create ?(family = Predictor.default_family) ?(capacity = 128) () =
  if family = [] then invalid_arg "Forecaster.create: empty family";
  if capacity < 2 then invalid_arg "Forecaster.create: capacity too small";
  List.iter Predictor.validate family;
  {
    capacity;
    history = Array.make capacity 0.0;
    len = 0;
    models =
      Array.of_list
        (List.map
           (fun model -> { model; pending = None; abs_error_sum = 0.0; scored = 0 })
           family);
  }

let current_history t = Array.sub t.history 0 t.len

let push_history t y =
  if t.len = t.capacity then begin
    Array.blit t.history 1 t.history 0 (t.capacity - 1);
    t.history.(t.capacity - 1) <- y
  end
  else begin
    t.history.(t.len) <- y;
    t.len <- t.len + 1
  end

let observe t y =
  (* Score the predictions made last round, then refresh them. *)
  Array.iter
    (fun ms ->
      match ms.pending with
      | Some p ->
        ms.abs_error_sum <- ms.abs_error_sum +. Float.abs (p -. y);
        ms.scored <- ms.scored + 1
      | None -> ())
    t.models;
  push_history t y;
  let history = current_history t in
  Array.iter
    (fun ms -> ms.pending <- Predictor.predict ms.model ~history)
    t.models

let mae ms =
  if ms.scored = 0 then infinity
  else ms.abs_error_sum /. float_of_int ms.scored

let best_state t =
  if t.len = 0 then None
  else begin
    let best = ref t.models.(0) in
    Array.iter (fun ms -> if mae ms < mae !best then best := ms) t.models;
    if (mae !best) = infinity then None else Some !best
  end

let best_model t = Option.map (fun ms -> ms.model) (best_state t)

let predict t =
  if t.len = 0 then None
  else begin
    match best_state t with
    | Some ms -> ms.pending
    | None ->
      (* No model scored yet (single observation): fall back to the
         family's first model. *)
      t.models.(0).pending
  end

let errors t =
  Array.to_list t.models
  |> List.filter_map (fun ms ->
         if ms.scored = 0 then None else Some (ms.model, mae ms))

let history_length t = t.len

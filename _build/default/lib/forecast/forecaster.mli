(** Adaptive forecaster: NWS's "use the method with the smallest
    prediction error for the next forecast" (§2).

    Maintains a bounded history of one signal, keeps every model of the
    family predicting in parallel, scores each by mean absolute error on
    the observations it predicted, and answers with the current
    best-scoring model's forecast. *)

type t

val create : ?family:Predictor.t list -> ?capacity:int -> unit -> t
(** [capacity] bounds the retained history (default 128 samples).
    Requires a non-empty family. *)

val observe : t -> float -> unit
(** Append the next observation (fixed sampling cadence is assumed, as
    in NWS). Each model's running error is updated against the
    prediction it made before this observation arrived. *)

val predict : t -> float option
(** Forecast of the next observation; [None] before any data. *)

val best_model : t -> Predictor.t option
(** Model currently winning on MAE; [None] before two observations. *)

val errors : t -> (Predictor.t * float) list
(** Current mean absolute error per model (only models that have made
    at least one scored prediction). *)

val history_length : t -> int

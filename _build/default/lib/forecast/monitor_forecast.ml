module Snapshot = Rm_monitor.Snapshot
module Running_means = Rm_stats.Running_means

type t = {
  forecasters : Forecaster.t array;
  mutable observations : int;
}

let create ~node_count =
  if node_count <= 0 then invalid_arg "Monitor_forecast.create: no nodes";
  {
    forecasters = Array.init node_count (fun _ -> Forecaster.create ());
    observations = 0;
  }

let observe t snapshot =
  List.iter
    (fun node ->
      match Snapshot.node_info snapshot node with
      | Some info ->
        if node < Array.length t.forecasters then
          Forecaster.observe t.forecasters.(node)
            info.Snapshot.load.Running_means.m1
      | None -> ())
    (Snapshot.usable snapshot);
  t.observations <- t.observations + 1

let observations t = t.observations

let predicted_load t ~node =
  if node < 0 || node >= Array.length t.forecasters then None
  else
    Option.map (Float.max 0.0) (Forecaster.predict t.forecasters.(node))

let predict_snapshot t snapshot =
  let nodes =
    Array.mapi
      (fun node info ->
        match info with
        | None -> None
        | Some info ->
          (match predicted_load t ~node with
          | None -> Some info
          | Some load ->
            let view : Running_means.view =
              { instant = load; m1 = load; m5 = load; m15 = load }
            in
            Some { info with Snapshot.load = view }))
      snapshot.Snapshot.nodes
  in
  { snapshot with Snapshot.nodes }

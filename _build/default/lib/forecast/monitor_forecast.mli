(** Forecast-enhanced monitoring: predict node load one sampling step
    ahead instead of reacting to the last measurement.

    §1 suggests "statistical methods can be used to model variations in
    system parameters" and §2 adopts NWS's forecasting discipline; this
    module closes the loop: it watches successive {!Rm_monitor.Snapshot}s,
    maintains one adaptive {!Forecaster} per node over the 1-minute load
    mean, and can rewrite a snapshot so the allocator sees the
    *predicted* next load rather than the stale last one. *)

type t

val create : node_count:int -> t

val observe : t -> Rm_monitor.Snapshot.t -> unit
(** Feed each usable node's current 1-minute load mean to its
    forecaster. Call at a fixed cadence (e.g. each monitor sweep). *)

val observations : t -> int
(** Number of {!observe} calls so far. *)

val predicted_load : t -> node:int -> float option
(** One-step-ahead load forecast for the node, clamped at 0. *)

val predict_snapshot : t -> Rm_monitor.Snapshot.t -> Rm_monitor.Snapshot.t
(** A copy of the snapshot where every usable node's load view is
    replaced (uniformly across the 1/5/15-minute horizons) by its
    forecast; nodes without enough history keep their measured view. *)

type t =
  | Last_value
  | Running_mean of int
  | Sliding_median of int
  | Exponential_smoothing of float
  | Ar1

let name = function
  | Last_value -> "last-value"
  | Running_mean k -> Printf.sprintf "mean-%d" k
  | Sliding_median k -> Printf.sprintf "median-%d" k
  | Exponential_smoothing g -> Printf.sprintf "expsmooth-%.2f" g
  | Ar1 -> "ar1"

let default_family =
  [
    Last_value;
    Running_mean 5;
    Running_mean 20;
    Sliding_median 5;
    Sliding_median 20;
    Exponential_smoothing 0.3;
    Exponential_smoothing 0.7;
    Ar1;
  ]

let validate = function
  | Last_value | Ar1 -> ()
  | Running_mean k | Sliding_median k ->
    if k <= 0 then invalid_arg "Predictor: window must be positive"
  | Exponential_smoothing g ->
    if g <= 0.0 || g > 1.0 then
      invalid_arg "Predictor: gamma must be in (0, 1]"

let tail history k =
  let n = Array.length history in
  let k = min k n in
  Array.sub history (n - k) k

(* Least-squares fit of y_{t+1} = a·y_t + b over the window; falls back
   to persistence when the window is degenerate (constant series). *)
let ar1_predict history =
  let n = Array.length history in
  if n < 3 then history.(n - 1)
  else begin
    let xs = Array.sub history 0 (n - 1) in
    let ys = Array.sub history 1 (n - 1) in
    let m = float_of_int (n - 1) in
    let mx = Array.fold_left ( +. ) 0.0 xs /. m in
    let my = Array.fold_left ( +. ) 0.0 ys /. m in
    let sxx = ref 0.0 and sxy = ref 0.0 in
    Array.iteri
      (fun i x ->
        let dx = x -. mx in
        sxx := !sxx +. (dx *. dx);
        sxy := !sxy +. (dx *. (ys.(i) -. my)))
      xs;
    if !sxx < 1e-12 then history.(n - 1)
    else begin
      let a = !sxy /. !sxx in
      let b = my -. (a *. mx) in
      (a *. history.(n - 1)) +. b
    end
  end

let predict t ~history =
  validate t;
  let n = Array.length history in
  if n = 0 then None
  else
    Some
      (match t with
      | Last_value -> history.(n - 1)
      | Running_mean k -> Rm_stats.Descriptive.mean (tail history k)
      | Sliding_median k -> Rm_stats.Descriptive.median (tail history k)
      | Exponential_smoothing g ->
        Array.fold_left
          (fun acc y -> (g *. y) +. ((1.0 -. g) *. acc))
          history.(0) history
      | Ar1 -> ar1_predict history)

(** Single-series forecasting models, in the style of the Network
    Weather Service the paper builds on (§2): each model predicts the
    next observation of a resource signal (CPU load, available
    bandwidth) from its history.

    All predictors are pure functions of the trailing history window
    (most recent last). An empty history yields [None]. *)

type t =
  | Last_value  (** persistence: ŷ = y_t *)
  | Running_mean of int  (** mean of the last k observations *)
  | Sliding_median of int  (** median of the last k observations *)
  | Exponential_smoothing of float
      (** ŷ_{t+1} = γ·y_t + (1−γ)·ŷ_t, γ in (0, 1] *)
  | Ar1
      (** first-order autoregression, coefficients refit on the window *)

val name : t -> string

val default_family : t list
(** The mix NWS runs: persistence, means/medians at two horizons,
    smoothing at two gammas, and AR(1). *)

val predict : t -> history:float array -> float option
(** [history] is ordered oldest → newest. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (k <= 0, γ
    outside (0, 1]). *)

lib/monitor/central.ml: Array Daemon List Option Printf Rm_engine Rm_stats Rm_workload

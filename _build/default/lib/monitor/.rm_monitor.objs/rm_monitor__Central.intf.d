lib/monitor/central.mli: Daemon Rm_engine Rm_stats Rm_workload

lib/monitor/daemon.ml: Float Rm_engine

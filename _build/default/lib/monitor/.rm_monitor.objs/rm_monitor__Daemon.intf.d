lib/monitor/daemon.mli: Rm_engine

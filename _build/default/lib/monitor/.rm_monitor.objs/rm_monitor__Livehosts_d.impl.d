lib/monitor/livehosts_d.ml: Daemon Printf Rm_engine Rm_workload Store

lib/monitor/livehosts_d.mli: Daemon Rm_engine Rm_workload Store

lib/monitor/node_state_d.ml: Daemon Float Printf Rm_cluster Rm_engine Rm_stats Rm_workload Store

lib/monitor/node_state_d.mli: Daemon Rm_engine Rm_stats Rm_workload Store

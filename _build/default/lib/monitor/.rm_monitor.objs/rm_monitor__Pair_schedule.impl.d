lib/monitor/pair_schedule.ml: Array Hashtbl List

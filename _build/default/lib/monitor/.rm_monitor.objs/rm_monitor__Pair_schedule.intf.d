lib/monitor/pair_schedule.mli:

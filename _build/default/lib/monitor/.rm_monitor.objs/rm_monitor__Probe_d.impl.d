lib/monitor/probe_d.ml: Array Daemon Float List Pair_schedule Printf Rm_engine Rm_netsim Rm_stats Rm_workload Store

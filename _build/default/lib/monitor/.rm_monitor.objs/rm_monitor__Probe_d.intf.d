lib/monitor/probe_d.mli: Daemon Rm_engine Rm_stats Rm_workload Store

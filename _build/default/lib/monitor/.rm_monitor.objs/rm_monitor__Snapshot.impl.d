lib/monitor/snapshot.ml: Array Float List Rm_cluster Rm_netsim Rm_stats Rm_workload Store

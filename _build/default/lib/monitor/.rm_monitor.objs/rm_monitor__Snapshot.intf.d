lib/monitor/snapshot.mli: Rm_cluster Rm_stats Rm_workload Store

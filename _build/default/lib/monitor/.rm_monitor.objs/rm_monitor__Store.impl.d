lib/monitor/store.ml: Array Buffer List Printf Rm_stats String

lib/monitor/store.mli: Rm_stats

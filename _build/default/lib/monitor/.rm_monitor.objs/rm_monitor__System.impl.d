lib/monitor/system.ml: Central Daemon Float List Livehosts_d Node_state_d Probe_d Rm_cluster Rm_stats Rm_workload Snapshot Store

lib/monitor/system.mli: Central Daemon Rm_engine Rm_stats Rm_workload Snapshot Store

(** Central Monitor: master/slave supervision of the daemon fleet (§4).

    The master instance periodically checks every supervised daemon and
    relaunches crashed ones on a live node; it also revives a dead
    slave. The slave instance watches the master and *promotes itself*
    when the master dies, then grows a fresh slave on its next check.
    If both die simultaneously, the remaining daemons keep running but
    are no longer restarted — exactly the failure semantics described
    in the paper. *)

type t

val launch :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  rng:Rm_stats.Rng.t ->
  supervised:Daemon.t list ->
  ?period:float ->
  until:float ->
  unit ->
  t
(** [period] defaults to 15 s. Master and slave start on two distinct
    live nodes. *)

val master : t -> Daemon.t option
(** The currently-alive master instance, if any. *)

val slave : t -> Daemon.t option
val instance_count : t -> int
(** Live central-monitor instances (0, 1, or 2). *)

val crash_master : t -> unit
(** Failure injection for tests/examples; no-op when already dead. *)

val crash_slave : t -> unit

val relaunches : t -> int
(** Total number of daemon relaunches performed so far. *)

(** Periodic monitoring daemon with crash/relaunch semantics.

    A daemon executes its action on its own cadence (with optional
    per-tick jitter, like the paper's "every 3–10 seconds" NodeStateD).
    It can {!crash} — ticks stop until some supervisor {!relaunch}es it,
    possibly on a different node. A daemon hosted on a node that is
    currently down skips its ticks but stays alive (the host being
    unreachable is the LivehostsD's problem, not the daemon's). *)

type t

val launch :
  sim:Rm_engine.Sim.t ->
  name:string ->
  node:int ->
  period:float ->
  ?jitter:(unit -> float) ->
  ?host_up:(int -> bool) ->
  until:float ->
  action:(Rm_engine.Sim.t -> unit) ->
  unit ->
  t
(** Starts ticking immediately. [host_up] defaults to always-up. *)

val name : t -> string
val node : t -> int
(** Node currently hosting the daemon. *)

val is_alive : t -> bool
val crash : t -> unit
val relaunch : t -> sim:Rm_engine.Sim.t -> node:int -> unit
(** No-op if already alive. *)

val tick_count : t -> int
(** Number of executed actions — used by tests and the central monitor's
    health accounting. *)

module Sim = Rm_engine.Sim
module World = Rm_workload.World

let launch ~sim ~world ~store ~node ?(period = 10.0) ~until () =
  let action sim =
    let now = Sim.now sim in
    World.advance world ~now;
    Store.write_livehosts store ~time:now ~nodes:(World.up_nodes world)
  in
  Daemon.launch ~sim
    ~name:(Printf.sprintf "livehosts-%d" node)
    ~node ~period
    ~host_up:(fun n -> World.is_up world ~node:n)
    ~until ~action ()

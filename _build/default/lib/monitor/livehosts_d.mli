(** LivehostsD: periodically pings every node and records which are up.

    §4 runs "this daemon on a few selected nodes at different
    frequencies … to ensure fault tolerance"; launch several instances
    with distinct periods for the same effect. The most recent write
    wins, exactly as on the shared filesystem. *)

val launch :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  store:Store.t ->
  node:int ->
  ?period:float ->
  until:float ->
  unit ->
  Daemon.t
(** [period] defaults to 10 s. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Running_means = Rm_stats.Running_means
module World = Rm_workload.World
module Cluster = Rm_cluster.Cluster

let noisy rng value ~rel =
  Float.max 0.0 (value *. (1.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:rel))

let launch ~sim ~world ~store ~rng ~node ?(period = 6.0) ~until () =
  let rng = Rng.split rng in
  let load = Running_means.create () in
  let util = Running_means.create () in
  let nic = Running_means.create () in
  let mem_avail = Running_means.create () in
  let total_mem = (Cluster.node (World.cluster world) node).Rm_cluster.Node.mem_gb in
  let action sim =
    let now = Sim.now sim in
    World.advance world ~now;
    Running_means.push load ~time:now
      ~value:(noisy rng (World.cpu_load world ~node) ~rel:0.02);
    Running_means.push util ~time:now
      ~value:(Float.min 100.0 (noisy rng (World.cpu_util_pct world ~node) ~rel:0.02));
    Running_means.push nic ~time:now
      ~value:(noisy rng (World.nic_rate_mb_s world ~node) ~rel:0.05);
    let avail = Float.max 0.0 (total_mem -. World.mem_used_gb world ~node) in
    Running_means.push mem_avail ~time:now ~value:(noisy rng avail ~rel:0.01);
    match
      ( Running_means.view load,
        Running_means.view util,
        Running_means.view nic,
        Running_means.view mem_avail )
    with
    | Some load, Some util_pct, Some nic_mb_s, Some mem_avail_gb ->
      Store.write_node store
        {
          Store.node;
          written_at = now;
          users = World.users world ~node;
          load;
          util_pct;
          nic_mb_s;
          mem_avail_gb;
        }
    | None, _, _, _ | _, None, _, _ | _, _, None, _ | _, _, _, None -> ()
  in
  let jitter () = Rng.uniform rng ~lo:(-3.0) ~hi:3.0 in
  Daemon.launch ~sim
    ~name:(Printf.sprintf "nodestate-%d" node)
    ~node ~period ~jitter
    ~host_up:(fun n -> World.is_up world ~node:n)
    ~until ~action ()

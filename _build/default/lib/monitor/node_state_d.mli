(** NodeStateD: per-node daemon sampling dynamic attributes.

    Mirrors §4: runs on each livehost every 3–10 seconds, reads CPU
    load, CPU utilization, NIC data flow rate, available memory and
    user count from the node (our {!Rm_workload.World} ground truth plus
    sensor noise), maintains the 1/5/15-minute running means, and writes
    a {!Store.node_record}. *)

val launch :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  store:Store.t ->
  rng:Rm_stats.Rng.t ->
  node:int ->
  ?period:float ->
  until:float ->
  unit ->
  Daemon.t
(** [period] defaults to 6 s with ±3 s jitter ("every 3-10 seconds").
    The daemon skips ticks while its node is down. *)

(* Circle method: fix element 0, rotate the rest. With odd n a virtual
   "bye" (-1) is added and pairs touching it are dropped. *)
let rounds nodes =
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  if n < 2 then invalid_arg "Pair_schedule.rounds: need at least 2 nodes";
  let padded = if n mod 2 = 0 then Array.copy arr else Array.append arr [| -1 |] in
  let m = Array.length padded in
  let rounds = ref [] in
  let ring = Array.sub padded 1 (m - 1) in
  for _round = 0 to m - 2 do
    let pairs = ref [] in
    (* Pair the fixed head with the current first ring element. *)
    let pair a b = if a >= 0 && b >= 0 then pairs := (min a b, max a b) :: !pairs in
    pair padded.(0) ring.(m - 2);
    for k = 0 to (m / 2) - 2 do
      pair ring.(k) ring.(m - 3 - k)
    done;
    rounds := List.rev !pairs :: !rounds;
    (* Rotate the ring. *)
    let last = ring.(m - 2) in
    Array.blit ring 0 ring 1 (m - 2);
    ring.(0) <- last
  done;
  List.rev !rounds

let all_pairs_covered nodes =
  let rs = rounds nodes in
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun round ->
      let in_round = Hashtbl.create 16 in
      List.iter
        (fun (a, b) ->
          if Hashtbl.mem seen (a, b) then ok := false;
          Hashtbl.add seen (a, b) ();
          if Hashtbl.mem in_round a || Hashtbl.mem in_round b then ok := false;
          Hashtbl.add in_round a ();
          Hashtbl.add in_round b ())
        round)
    rs;
  let expected =
    let n = List.length nodes in
    n * (n - 1) / 2
  in
  !ok && Hashtbl.length seen = expected

(** Round-robin tournament schedule for pairwise P2P probes.

    The paper schedules P2P bandwidth/latency measurements "in a few
    rounds such that one node communicates with only one other node in
    each round (n/2 distinct pairs of nodes communicate at a time).
    There are n−1 such rounds" (§4). This is the classic circle-method
    tournament schedule; with odd n a bye is inserted. *)

val rounds : int list -> (int * int) list list
(** [rounds nodes] partitions all unordered pairs of [nodes] into
    rounds; each node appears at most once per round. For [n] nodes
    there are [n-1] rounds ([n] when [n] is odd), each with ⌊n/2⌋
    pairs. Raises [Invalid_argument] when fewer than 2 nodes. *)

val all_pairs_covered : int list -> bool
(** Self-check used by tests: every unordered pair appears exactly
    once across all rounds. *)

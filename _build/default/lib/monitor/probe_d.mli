(** BandwidthD and LatencyD: distributed P2P probing daemons.

    Every tick the daemon probes all pairs of currently-live nodes using
    the round-robin schedule of {!Pair_schedule}: in each round n/2
    disjoint pairs measure concurrently (so probe flows of the same
    round contend on shared uplinks, as they would in the real cluster),
    and results land in the {!Store}. The paper runs latency probes
    every 1 minute and bandwidth probes every 5 minutes (§4). *)

val launch_bandwidth :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  store:Store.t ->
  rng:Rm_stats.Rng.t ->
  node:int ->
  ?period:float ->
  until:float ->
  unit ->
  Daemon.t
(** [period] defaults to 300 s. Measured value: the probe pair's max-min
    fair rate among its round's probes plus background traffic, with 3 %
    multiplicative sensor noise. *)

val launch_latency :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  store:Store.t ->
  rng:Rm_stats.Rng.t ->
  node:int ->
  ?period:float ->
  until:float ->
  unit ->
  Daemon.t
(** [period] defaults to 60 s. Measured value: current path latency with
    5 % multiplicative noise. *)

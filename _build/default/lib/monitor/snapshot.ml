module Matrix = Rm_stats.Matrix
module Running_means = Rm_stats.Running_means
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module Network = Rm_netsim.Network
module World = Rm_workload.World

type node_info = {
  static : Rm_cluster.Node.t;
  users : int;
  load : Running_means.view;
  util_pct : Running_means.view;
  nic_mb_s : Running_means.view;
  mem_avail_gb : Running_means.view;
  written_at : float;
}

type t = {
  time : float;
  cluster : Cluster.t;
  live : int list;
  nodes : node_info option array;
  bw_mb_s : Matrix.t;
  peak_bw_mb_s : Matrix.t;
  lat_us : Matrix.t;
}

let peak_matrix cluster =
  let topo = Cluster.topology cluster in
  let n = Cluster.node_count cluster in
  let m = Matrix.square n ~init:infinity in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let cap =
          List.fold_left
            (fun acc (l : Topology.link) -> Float.min acc l.capacity_mb_s)
            infinity (Topology.path topo i j)
        in
        Matrix.set m i j cap
      end
    done
  done;
  m

let base_latency_matrix cluster =
  let topo = Cluster.topology cluster in
  let n = Cluster.node_count cluster in
  let m = Matrix.square n ~init:0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then Matrix.set m i j (Topology.base_latency_us topo i j)
    done
  done;
  m

let capture ~time ~cluster ~store =
  let n = Cluster.node_count cluster in
  if Store.node_count store <> n then
    invalid_arg "Snapshot.capture: store/cluster size mismatch";
  let live =
    match Store.read_livehosts store with
    | Some (_, nodes) -> nodes
    | None -> List.init n (fun i -> i)
  in
  let nodes =
    Array.init n (fun i ->
        match Store.read_node store ~node:i with
        | None -> None
        | Some (r : Store.node_record) ->
          Some
            {
              static = Cluster.node cluster i;
              users = r.users;
              load = r.load;
              util_pct = r.util_pct;
              nic_mb_s = r.nic_mb_s;
              mem_avail_gb = r.mem_avail_gb;
              written_at = r.written_at;
            })
  in
  let peak = peak_matrix cluster in
  let bw = Matrix.copy peak in
  let lat = base_latency_matrix cluster in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (match Store.read_bandwidth store ~src:i ~dst:j with
      | Some (_, mb_s) ->
        Matrix.set bw i j mb_s;
        Matrix.set bw j i mb_s
      | None -> ());
      match Store.read_latency store ~src:i ~dst:j with
      | Some (_, us) ->
        Matrix.set lat i j us;
        Matrix.set lat j i us
      | None -> ()
    done
  done;
  { time; cluster; live; nodes; bw_mb_s = bw; peak_bw_mb_s = peak; lat_us = lat }

let usable t =
  List.filter (fun i -> t.nodes.(i) <> None) (List.sort compare t.live)

let restrict t ~exclude =
  { t with live = List.filter (fun n -> not (List.mem n exclude)) t.live }

let node_info t i =
  if i < 0 || i >= Array.length t.nodes then None else t.nodes.(i)

let max_staleness t =
  List.fold_left
    (fun acc i ->
      match t.nodes.(i) with
      | Some info -> Float.max acc (t.time -. info.written_at)
      | None -> acc)
    0.0 (usable t)

let flat value : Running_means.view =
  { instant = value; m1 = value; m5 = value; m15 = value }

let of_truth ~time ~world =
  let cluster = World.cluster world in
  let network = World.network world in
  let n = Cluster.node_count cluster in
  let nodes =
    Array.init n (fun i ->
        if not (World.is_up world ~node:i) then None
        else begin
          let static = Cluster.node cluster i in
          let mem_avail =
            Float.max 0.0
              (static.Rm_cluster.Node.mem_gb -. World.mem_used_gb world ~node:i)
          in
          Some
            {
              static;
              users = World.users world ~node:i;
              load = flat (World.cpu_load world ~node:i);
              util_pct = flat (World.cpu_util_pct world ~node:i);
              nic_mb_s = flat (World.nic_rate_mb_s world ~node:i);
              mem_avail_gb = flat mem_avail;
              written_at = time;
            }
        end)
  in
  let peak = peak_matrix cluster in
  let bw = Matrix.square n ~init:infinity in
  let lat = Matrix.square n ~init:0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        Matrix.set bw i j (Network.available_bandwidth_mb_s network ~src:i ~dst:j);
        Matrix.set lat i j (Network.latency_us network ~src:i ~dst:j)
      end
    done
  done;
  Matrix.symmetrize bw;
  Matrix.symmetrize lat;
  {
    time;
    cluster;
    live = World.up_nodes world;
    nodes;
    bw_mb_s = bw;
    peak_bw_mb_s = peak;
    lat_us = lat;
  }

(** The allocator-facing view of monitored data.

    A snapshot is what the Node Allocator reads at request time: the
    latest livehosts list, per-node attribute records (with 1/5/15-min
    running means) and the measured P2P bandwidth/latency matrices.
    Pairs never probed fall back to topology-derived defaults (peak
    bandwidth / base latency), and nodes without a record are excluded
    from {!usable}. *)

type node_info = {
  static : Rm_cluster.Node.t;
  users : int;
  load : Rm_stats.Running_means.view;
  util_pct : Rm_stats.Running_means.view;
  nic_mb_s : Rm_stats.Running_means.view;
  mem_avail_gb : Rm_stats.Running_means.view;
  written_at : float;
}

type t = {
  time : float;
  cluster : Rm_cluster.Cluster.t;
  live : int list;
  nodes : node_info option array;
  bw_mb_s : Rm_stats.Matrix.t;  (** measured available bandwidth *)
  peak_bw_mb_s : Rm_stats.Matrix.t;  (** path capacity (for Eq. 2's complement) *)
  lat_us : Rm_stats.Matrix.t;
}

val capture :
  time:float -> cluster:Rm_cluster.Cluster.t -> store:Store.t -> t

val usable : t -> int list
(** Live nodes with a node record — the allocator's vertex set 𝒱. *)

val restrict : t -> exclude:int list -> t
(** The same snapshot with the given nodes removed from the live set —
    how a scheduler keeps already-occupied nodes away from the
    allocator in exclusive mode. *)

val node_info : t -> int -> node_info option

val max_staleness : t -> float
(** Age of the oldest usable node record — used by the staleness
    ablation. 0 when nothing is usable. *)

val of_truth :
  time:float -> world:Rm_workload.World.t -> t
(** An oracle snapshot taken directly from ground truth (no daemons, no
    noise, running means collapsed to the instantaneous value). Used by
    tests and by the monitor-fidelity ablation. *)

(** Convenience wiring of the whole Resource Monitor (Figure 3).

    Starts a NodeStateD per node, two LivehostsD instances at different
    frequencies, one BandwidthD and one LatencyD (which fan the probe
    work across node pairs), and the master/slave Central Monitor
    supervising them all. *)

type cadence = {
  node_state_period : float;  (** default 6 s (±3 s jitter) *)
  livehosts_periods : float * float;  (** default 5 s and 13 s *)
  latency_period : float;  (** default 60 s — "1 minute" (§4) *)
  bandwidth_period : float;  (** default 300 s — "5 minutes" (§4) *)
}

val default_cadence : cadence

type t

val start :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  rng:Rm_stats.Rng.t ->
  ?cadence:cadence ->
  until:float ->
  unit ->
  t

val store : t -> Store.t
val central : t -> Central.t
val daemons : t -> Daemon.t list

val snapshot : t -> time:float -> Snapshot.t
(** Capture the allocator's view at the given time. *)

val warm_up_s : cadence -> float
(** Simulated seconds needed before every store field has real data
    (one bandwidth round plus the 15-minute mean horizon). *)

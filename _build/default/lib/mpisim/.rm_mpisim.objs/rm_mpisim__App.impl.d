lib/mpisim/app.ml: List

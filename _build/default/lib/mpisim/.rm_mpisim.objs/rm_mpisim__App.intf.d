lib/mpisim/app.mli:

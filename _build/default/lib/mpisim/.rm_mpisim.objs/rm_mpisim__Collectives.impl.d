lib/mpisim/collectives.ml: Cost_model Float List Placement

lib/mpisim/collectives.mli: Placement

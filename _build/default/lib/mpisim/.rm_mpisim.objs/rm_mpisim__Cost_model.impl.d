lib/mpisim/cost_model.ml: Float Rm_cluster

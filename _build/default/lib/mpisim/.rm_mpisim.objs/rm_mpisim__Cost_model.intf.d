lib/mpisim/cost_model.mli: Rm_cluster

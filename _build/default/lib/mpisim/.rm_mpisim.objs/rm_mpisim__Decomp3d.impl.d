lib/mpisim/decomp3d.ml: Hashtbl List Option

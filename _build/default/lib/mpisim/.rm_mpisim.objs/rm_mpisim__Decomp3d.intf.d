lib/mpisim/decomp3d.mli:

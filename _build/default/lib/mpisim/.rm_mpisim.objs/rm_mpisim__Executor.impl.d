lib/mpisim/executor.ml: App Array Collectives Cost_model Float Format Hashtbl List Option Placement Rm_cluster Rm_core Rm_netsim Rm_workload

lib/mpisim/executor.mli: App Format Placement Rm_core Rm_workload

lib/mpisim/mapping.ml: App Array Float Hashtbl List Option Placement Rm_core

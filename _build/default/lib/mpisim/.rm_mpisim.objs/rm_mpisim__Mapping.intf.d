lib/mpisim/mapping.mli: App Placement Rm_core

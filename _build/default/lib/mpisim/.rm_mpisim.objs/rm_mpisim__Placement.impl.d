lib/mpisim/placement.ml: Array Hashtbl List Option Rm_core

lib/mpisim/placement.mli: Rm_core

lib/mpisim/profiler.ml: App Collectives Cost_model Float Hashtbl List Option Placement Rm_cluster Rm_core Rm_netsim Rm_workload

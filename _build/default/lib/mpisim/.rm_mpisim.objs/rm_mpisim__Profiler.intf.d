lib/mpisim/profiler.mli: App Rm_core Rm_workload

type phase = {
  flops_per_rank : int -> float;
  messages : (int * int * float) list;
  allreduce_bytes : float;
}

type t = {
  name : string;
  ranks : int;
  iterations : int;
  phase : iter:int -> phase;
  description : string;
}

let make ~name ~ranks ~iterations ~phase ?(description = "") () =
  if ranks <= 0 then invalid_arg "App.make: non-positive ranks";
  if iterations <= 0 then invalid_arg "App.make: non-positive iterations";
  { name; ranks; iterations; phase; description }

let validate_phase t phase =
  if phase.allreduce_bytes < 0.0 then
    invalid_arg "App.validate_phase: negative allreduce size";
  List.iter
    (fun (src, dst, bytes) ->
      if src < 0 || src >= t.ranks || dst < 0 || dst >= t.ranks then
        invalid_arg "App.validate_phase: rank out of range";
      if src = dst then invalid_arg "App.validate_phase: self message";
      if bytes < 0.0 then invalid_arg "App.validate_phase: negative bytes")
    phase.messages

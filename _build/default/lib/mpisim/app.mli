(** Abstraction of an iterative MPI application.

    An app is a fixed number of ranks executing [iterations] BSP
    super-steps; each step contributes per-rank computation, point-to-
    point messages (rank to rank, in bytes) and at most one allreduce.
    miniMD and miniFE instantiate this in {!Rm_apps}. *)

type phase = {
  flops_per_rank : int -> float;  (** rank -> useful flops this step *)
  messages : (int * int * float) list;
      (** (src_rank, dst_rank, bytes); direction matters only for node
          mapping — costs are symmetric *)
  allreduce_bytes : float;  (** 0 when the step has no collective *)
}

type t = {
  name : string;
  ranks : int;
  iterations : int;
  phase : iter:int -> phase;
  description : string;
}

val make :
  name:string ->
  ranks:int ->
  iterations:int ->
  phase:(iter:int -> phase) ->
  ?description:string ->
  unit ->
  t
(** Validates positive ranks/iterations. *)

val validate_phase : t -> phase -> unit
(** Checks rank indices and non-negative byte counts; used by tests and
    by the executor in debug runs. *)

type link_view = {
  latency_us : src:int -> dst:int -> float;
  bandwidth_mb_s : src:int -> dst:int -> float;
}

let log2_ceil p =
  let rec go acc v = if v >= p then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Worst latency / tightest bandwidth among distinct node pairs of the
   allocation — the stage cost of a placement-oblivious collective. *)
let worst_pair ~placement ~view =
  let nodes = Placement.nodes placement in
  let rec pairs acc = function
    | [] -> acc
    | u :: rest ->
      pairs (List.fold_left (fun acc v -> (u, v) :: acc) acc rest) rest
  in
  match pairs [] nodes with
  | [] -> None
  | ps ->
    let lat =
      List.fold_left
        (fun acc (u, v) -> Float.max acc (view.latency_us ~src:u ~dst:v))
        0.0 ps
    in
    let bw =
      List.fold_left
        (fun acc (u, v) -> Float.min acc (view.bandwidth_mb_s ~src:u ~dst:v))
        infinity ps
    in
    Some (lat, bw)

let stage_time ~placement ~view ~bytes =
  match worst_pair ~placement ~view with
  | None -> Cost_model.intra_node_time_s ~bytes
  | Some (lat, bw) ->
    Cost_model.message_time_s ~latency_us:lat ~bandwidth_mb_s:bw ~bytes

let allreduce_recursive_doubling_s ~placement ~view ~bytes =
  if bytes < 0.0 then
    invalid_arg "Collectives.allreduce_recursive_doubling_s: negative bytes";
  let p = Placement.ranks placement in
  if p <= 1 then 0.0
  else begin
    let stages = log2_ceil p in
    (* Each stage sends and receives the full [bytes]. *)
    float_of_int stages *. stage_time ~placement ~view ~bytes *. 2.0
  end

let allreduce_ring_s ~placement ~view ~bytes =
  if bytes < 0.0 then invalid_arg "Collectives.allreduce_ring_s: negative bytes";
  let p = Placement.ranks placement in
  if p <= 1 then 0.0
  else begin
    (* Reduce-scatter + allgather: 2(p-1) steps of bytes/p each. *)
    let steps = 2 * (p - 1) in
    let chunk = bytes /. float_of_int p in
    float_of_int steps *. stage_time ~placement ~view ~bytes:chunk
  end

let allreduce_time_s ~placement ~view ~bytes =
  if bytes < 0.0 then invalid_arg "Collectives.allreduce_time_s: negative bytes";
  Float.min
    (allreduce_recursive_doubling_s ~placement ~view ~bytes)
    (allreduce_ring_s ~placement ~view ~bytes)

let barrier_time_s ~placement ~view =
  allreduce_time_s ~placement ~view ~bytes:8.0

let bcast_time_s ~placement ~view ~bytes =
  if bytes < 0.0 then invalid_arg "Collectives.bcast_time_s: negative bytes";
  let p = Placement.ranks placement in
  if p <= 1 then 0.0
  else float_of_int (log2_ceil p) *. stage_time ~placement ~view ~bytes

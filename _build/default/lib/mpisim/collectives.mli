(** Cost models for MPI collectives over a concrete placement.

    Allreduce uses the recursive-doubling estimate: ⌈log₂ p⌉ stages of
    exchange + reduce, each stage paying the worst current inter-node
    latency and the tightest available inter-node bandwidth among the
    allocation's node pairs (pessimistic but placement-sensitive: a
    poorly connected node set pays in every stage). All-on-one-node
    jobs pay only shared-memory costs. *)

type link_view = {
  latency_us : src:int -> dst:int -> float;
  bandwidth_mb_s : src:int -> dst:int -> float;
}
(** How the collective sees the network; the executor feeds it the
    current simulated state. *)

val allreduce_recursive_doubling_s :
  placement:Placement.t -> view:link_view -> bytes:float -> float
(** ⌈log₂ p⌉ stages of pairwise exchange — latency-optimal, each stage
    moves the full payload. *)

val allreduce_ring_s :
  placement:Placement.t -> view:link_view -> bytes:float -> float
(** 2(p−1) steps moving bytes/p each — bandwidth-optimal for large
    payloads. *)

val allreduce_time_s :
  placement:Placement.t -> view:link_view -> bytes:float -> float
(** What a tuned MPI picks: the cheaper of recursive doubling and ring
    under the current link view. 0-rank-safe: a single-rank
    "collective" costs nothing. *)

val barrier_time_s : placement:Placement.t -> view:link_view -> float
(** An allreduce of 8 bytes. *)

val bcast_time_s :
  placement:Placement.t -> view:link_view -> bytes:float -> float
(** Binomial tree: ⌈log₂ p⌉ stages of one message each. *)

let intra_node_bandwidth_mb_s = 5000.0
let intra_node_latency_us = 1.0

(* Per-core useful rate: ~1 flop/cycle. Peak is 4+ flops/cycle, but the
   kernels we model (LJ force gather, 27-point SpMV) are memory-bound
   with effective IPC around 1; using peak would understate compute and
   overstate the communication fraction vs the paper's profiles. *)
let per_core_flops (node : Rm_cluster.Node.t) = node.freq_ghz *. 1e9

(* Logical (hyperthreaded) cores do not scale linearly: beyond ~75 % of
   the logical core count, runnable processes contend for physical
   execution resources. The evaluation cluster's "12-core" nodes are
   6-core/12-thread i7s, so this discount is what makes a load of ~6
   hurt, as the paper's Fig. 5/7 discussion implies. *)
let ht_efficiency = 0.6

let oversubscription_factor ~background_load ~job_ranks_on_node ~cores =
  if cores <= 0 then invalid_arg "Cost_model.oversubscription_factor: no cores";
  if background_load < 0.0 then
    invalid_arg "Cost_model.oversubscription_factor: negative load";
  if job_ranks_on_node < 0 then
    invalid_arg "Cost_model.oversubscription_factor: negative ranks";
  let runnable = background_load +. float_of_int job_ranks_on_node in
  Float.max 1.0 (runnable /. (ht_efficiency *. float_of_int cores))

let compute_time_s ~node ~background_load ~job_ranks_on_node ~flops =
  if flops < 0.0 then invalid_arg "Cost_model.compute_time_s: negative flops";
  let factor =
    oversubscription_factor ~background_load ~job_ranks_on_node
      ~cores:node.Rm_cluster.Node.cores
  in
  flops /. per_core_flops node *. factor

let message_time_s ~latency_us ~bandwidth_mb_s ~bytes =
  if bytes < 0.0 then invalid_arg "Cost_model.message_time_s: negative bytes";
  if bandwidth_mb_s <= 0.0 then
    invalid_arg "Cost_model.message_time_s: non-positive bandwidth";
  (latency_us *. 1e-6) +. (bytes /. (bandwidth_mb_s *. 1e6))

let intra_node_time_s ~bytes =
  message_time_s ~latency_us:intra_node_latency_us
    ~bandwidth_mb_s:intra_node_bandwidth_mb_s ~bytes

(** Execution cost primitives for the simulated MPI runtime.

    Compute: a rank's step time is its flops divided by the per-core
    rate of its node, inflated by a time-sharing factor when the node's
    runnable processes (background load + the job's own ranks on that
    node) exceed its logical cores. Communication: the Hockney model
    (latency + bytes/bandwidth); intra-node messages go through shared
    memory. These are exactly the levers the paper's allocator pulls:
    loaded nodes slow compute, contended links slow messages. *)

val intra_node_bandwidth_mb_s : float
(** Shared-memory transport rate (≈ 5 GB/s). *)

val intra_node_latency_us : float

val ht_efficiency : float
(** Fraction of the logical core count that scales linearly (0.6):
    hyperthreaded siblings share physical execution resources. *)

val oversubscription_factor :
  background_load:float -> job_ranks_on_node:int -> cores:int -> float
(** max(1, (load + ranks) / (ht_efficiency · cores)): the OS time-shares
    runnable processes over (effectively fewer than logical) cores.
    Requires cores > 0, others >= 0. *)

val compute_time_s :
  node:Rm_cluster.Node.t ->
  background_load:float ->
  job_ranks_on_node:int ->
  flops:float ->
  float
(** Time one rank needs for [flops] on its (possibly crowded) node. *)

val message_time_s : latency_us:float -> bandwidth_mb_s:float -> bytes:float -> float
(** Hockney: latency + bytes/bandwidth. Zero-byte messages still pay
    latency. *)

val intra_node_time_s : bytes:float -> float

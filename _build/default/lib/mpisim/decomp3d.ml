type t = { px : int; py : int; pz : int }

(* Most-cubic factorization: enumerate all (px, py, pz) with
   px <= py <= pz and px py pz = n, keep the one minimizing pz - px
   (then pz). n is a process count, tiny, so O(n^(2/3)) is nothing. *)
let create ~ranks =
  if ranks <= 0 then invalid_arg "Decomp3d.create: non-positive ranks";
  let best = ref (1, 1, ranks) in
  let score (a, _, c) = (c - a, c) in
  for px = 1 to ranks do
    if ranks mod px = 0 then begin
      let rest = ranks / px in
      for py = px to rest do
        if rest mod py = 0 then begin
          let pz = rest / py in
          if pz >= py && score (px, py, pz) < score !best then
            best := (px, py, pz)
        end
      done
    end
  done;
  let px, py, pz = !best in
  { px; py; pz }

let dims t = (t.px, t.py, t.pz)
let ranks t = t.px * t.py * t.pz

let coords t ~rank =
  if rank < 0 || rank >= ranks t then invalid_arg "Decomp3d.coords: bad rank";
  let x = rank / (t.py * t.pz) in
  let rem = rank mod (t.py * t.pz) in
  (x, rem / t.pz, rem mod t.pz)

let rank_of t ~coords:(x, y, z) =
  if x < 0 || x >= t.px || y < 0 || y >= t.py || z < 0 || z >= t.pz then
    invalid_arg "Decomp3d.rank_of: bad coords";
  (x * t.py * t.pz) + (y * t.pz) + z

let wrap v n = ((v mod n) + n) mod n

let face_neighbors t ~rank =
  let x, y, z = coords t ~rank in
  [
    rank_of t ~coords:(wrap (x - 1) t.px, y, z);
    rank_of t ~coords:(wrap (x + 1) t.px, y, z);
    rank_of t ~coords:(x, wrap (y - 1) t.py, z);
    rank_of t ~coords:(x, wrap (y + 1) t.py, z);
    rank_of t ~coords:(x, y, wrap (z - 1) t.pz);
    rank_of t ~coords:(x, y, wrap (z + 1) t.pz);
  ]

let face_counts t ~rank =
  let counts = Hashtbl.create 6 in
  List.iter
    (fun n ->
      if n <> rank then
        Hashtbl.replace counts n (1 + Option.value (Hashtbl.find_opt counts n) ~default:0))
    (face_neighbors t ~rank);
  Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts []
  |> List.sort compare

let neighbors t ~rank = List.map fst (face_counts t ~rank)

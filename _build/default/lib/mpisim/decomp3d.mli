(** 3-D Cartesian process decomposition (MPI_Dims_create flavour).

    Both miniMD (spatial decomposition of the simulation box) and miniFE
    (brick-shaped problem domain) split their domain over a px×py×pz
    process grid; this module picks the most cubic factorization and
    answers neighbour queries with periodic boundaries. *)

type t

val create : ranks:int -> t
(** Requires [ranks > 0]. Chooses (px, py, pz) with px·py·pz = ranks
    minimizing the spread between dimensions (surface-minimizing for a
    cubic domain). *)

val dims : t -> int * int * int
val ranks : t -> int

val coords : t -> rank:int -> int * int * int
(** Row-major: rank = x·py·pz + y·pz + z. *)

val rank_of : t -> coords:(int * int * int) -> int

val neighbors : t -> rank:int -> int list
(** The up-to-6 face neighbours (±x, ±y, ±z) with periodic wrap-around,
    deduplicated and excluding the rank itself (dimensions of size 1 or
    2 produce fewer distinct neighbours). *)

val face_counts : t -> rank:int -> (int * int) list
(** [(neighbor_rank, faces)] — how many of the six faces point at each
    distinct neighbour (wrapping can make one neighbour receive two
    faces); used to size halo messages. *)

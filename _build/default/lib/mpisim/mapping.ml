module Allocation = Rm_core.Allocation

type result = {
  placement : Placement.t;
  default_inter_bytes : float;
  mapped_inter_bytes : float;
}

let traffic ~app ?sample_iterations () =
  let sample =
    match sample_iterations with
    | Some k when k > 0 -> min k app.App.iterations
    | Some _ -> invalid_arg "Mapping.traffic: bad sample"
    | None -> min 64 app.App.iterations
  in
  let totals = Hashtbl.create 64 in
  for iter = 0 to sample - 1 do
    List.iter
      (fun (src, dst, bytes) ->
        if src <> dst then begin
          let key = (min src dst, max src dst) in
          Hashtbl.replace totals key
            (bytes +. Option.value (Hashtbl.find_opt totals key) ~default:0.0)
        end)
      (app.App.phase ~iter).App.messages
  done;
  Hashtbl.fold
    (fun key bytes acc -> (key, bytes /. float_of_int sample) :: acc)
    totals []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let inter_bytes ~node_of ~pairs =
  List.fold_left
    (fun acc ((a, b), bytes) ->
      if node_of.(a) <> node_of.(b) then acc +. bytes else acc)
    0.0 pairs

let optimize ~app ~allocation =
  let ranks = app.App.ranks in
  if Allocation.total_procs allocation <> ranks then
    invalid_arg "Mapping.optimize: allocation/app rank mismatch";
  let pairs = traffic ~app () in
  (* Default block placement for comparison. *)
  let block = Placement.of_allocation allocation in
  let block_node_of =
    Array.init ranks (fun rank -> Placement.node_of_rank block ~rank)
  in
  let default_inter_bytes = inter_bytes ~node_of:block_node_of ~pairs in
  (* Greedy affinity packing into node bins. *)
  let bins = Array.of_list allocation.Allocation.entries in
  let free = Array.map (fun (e : Allocation.entry) -> e.Allocation.procs) bins in
  let assigned = Array.make ranks (-1) in
  let bin_with_most_free () =
    let best = ref 0 in
    Array.iteri (fun i f -> if f > free.(!best) then best := i) free;
    if free.(!best) > 0 then Some !best else None
  in
  let place rank bin =
    assigned.(rank) <- bin;
    free.(bin) <- free.(bin) - 1
  in
  List.iter
    (fun ((a, b), _) ->
      match (assigned.(a), assigned.(b)) with
      | -1, -1 ->
        (* Seed a fresh pair in the roomiest bin (needs 2 slots). *)
        (match bin_with_most_free () with
        | Some bin when free.(bin) >= 2 ->
          place a bin;
          place b bin
        | Some _ | None -> ())
      | bin, -1 -> if free.(bin) > 0 then place b bin
      | -1, bin -> if free.(bin) > 0 then place a bin
      | _, _ -> ())
    pairs;
  (* Leftover ranks (no traffic, or bins were tight) fill free slots. *)
  let next_bin = ref 0 in
  Array.iteri
    (fun rank bin ->
      if bin = -1 then begin
        while free.(!next_bin) = 0 do
          incr next_bin
        done;
        place rank !next_bin
      end)
    assigned;
  let node_of =
    Array.map (fun bin -> bins.(bin).Allocation.node) assigned
  in
  let mapped = inter_bytes ~node_of ~pairs in
  if mapped < default_inter_bytes then
    {
      placement = Placement.custom ~allocation ~node_of_rank:node_of;
      default_inter_bytes;
      mapped_inter_bytes = mapped;
    }
  else
    {
      placement = block;
      default_inter_bytes;
      mapped_inter_bytes = default_inter_bytes;
    }

(** Topology-aware rank-to-node mapping (Treematch-flavoured).

    The paper's related work (Georgiou et al. [11]) "gathers affinity
    between the processes … then uses the Treematch algorithm for
    mapping"; this module adds the same capability on top of the
    allocator: given the application's rank-to-rank traffic, co-locate
    heavily-communicating ranks on the same node so fewer bytes cross
    the network at all. The allocator decides *which* nodes; the mapper
    decides *who goes where* within them. *)

type result = {
  placement : Placement.t;
  default_inter_bytes : float;
      (** bytes/iteration crossing nodes under block placement *)
  mapped_inter_bytes : float;  (** … under the optimized mapping *)
}

val traffic : app:App.t -> ?sample_iterations:int -> unit -> ((int * int) * float) list
(** Mean per-iteration traffic per unordered rank pair, from the first
    sampled iterations (default: min 64). *)

val optimize : app:App.t -> allocation:Rm_core.Allocation.t -> result
(** Greedy affinity packing: rank pairs are visited by descending
    traffic and co-located when a node has room; leftovers fill free
    slots in rank order. Never worse than block placement in total
    inter-node bytes is {e not} guaranteed by greedy packing, so the
    result falls back to block placement when it does not improve. *)

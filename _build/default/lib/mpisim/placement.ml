module Allocation = Rm_core.Allocation

type t = { node_of : int array; nodes : int list; per_node : (int, int) Hashtbl.t }

let of_allocation allocation =
  let entries = allocation.Allocation.entries in
  let total = Allocation.total_procs allocation in
  let node_of = Array.make total 0 in
  let per_node = Hashtbl.create 16 in
  let rank = ref 0 in
  List.iter
    (fun (e : Allocation.entry) ->
      Hashtbl.replace per_node e.node e.procs;
      for _ = 1 to e.procs do
        node_of.(!rank) <- e.node;
        incr rank
      done)
    entries;
  { node_of; nodes = Allocation.node_ids allocation; per_node }

let custom ~allocation ~node_of_rank =
  let entries = allocation.Allocation.entries in
  let total = Allocation.total_procs allocation in
  if Array.length node_of_rank <> total then
    invalid_arg "Placement.custom: rank count mismatch";
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun node ->
      Hashtbl.replace counts node
        (1 + Option.value (Hashtbl.find_opt counts node) ~default:0))
    node_of_rank;
  let per_node = Hashtbl.create 16 in
  List.iter
    (fun (e : Allocation.entry) ->
      if Option.value (Hashtbl.find_opt counts e.node) ~default:0 <> e.procs
      then invalid_arg "Placement.custom: per-node count mismatch";
      Hashtbl.replace per_node e.node e.procs)
    entries;
  if Hashtbl.length counts <> List.length entries then
    invalid_arg "Placement.custom: ranks on unallocated nodes";
  { node_of = Array.copy node_of_rank; nodes = Allocation.node_ids allocation;
    per_node }

let ranks t = Array.length t.node_of

let node_of_rank t ~rank =
  if rank < 0 || rank >= ranks t then
    invalid_arg "Placement.node_of_rank: rank out of range";
  t.node_of.(rank)

let nodes t = t.nodes

let ranks_on t ~node =
  match Hashtbl.find_opt t.per_node node with Some k -> k | None -> 0

let same_node t a b = node_of_rank t ~rank:a = node_of_rank t ~rank:b

(** Rank-to-node placement derived from an allocation.

    Ranks are laid out block-wise over the allocation's entries, in
    order — MPI's default host-file semantics: entry (node, procs)
    receives the next [procs] consecutive ranks. *)

type t

val of_allocation : Rm_core.Allocation.t -> t
(** Block placement: entry (node, procs) receives the next [procs]
    consecutive ranks. *)

val custom : allocation:Rm_core.Allocation.t -> node_of_rank:int array -> t
(** Explicit rank→node map (e.g. from {!Mapping}); validates that each
    allocated node receives exactly its allocation's process count. *)

val ranks : t -> int
val node_of_rank : t -> rank:int -> int
val nodes : t -> int list
(** Distinct nodes, in placement order. *)

val ranks_on : t -> node:int -> int
(** Number of ranks placed on the node. *)

val same_node : t -> int -> int -> bool

module World = Rm_workload.World
module Network = Rm_netsim.Network
module Cluster = Rm_cluster.Cluster

type profile = {
  compute_fraction : float;
  comm_fraction : float;
  latency_fraction_of_comm : float;
  suggested_alpha : float;
  suggested_w_lt : float;
  suggested_w_bw : float;
}

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Re-cost the phases the way the executor would, but split the comm
   critical path into a latency part and a byte-transfer part. *)
let profile ~world ~allocation ~app ?sample_iterations () =
  let placement = Placement.of_allocation allocation in
  if Placement.ranks placement <> app.App.ranks then
    invalid_arg "Profiler.profile: allocation/app rank mismatch";
  let cluster = World.cluster world in
  let network = World.network world in
  let sample =
    match sample_iterations with
    | Some k when k > 0 -> min k app.App.iterations
    | Some _ -> invalid_arg "Profiler.profile: bad sample"
    | None -> min 64 app.App.iterations
  in
  let compute = ref 0.0 and comm = ref 0.0 and latency_part = ref 0.0 in
  for iter = 0 to sample - 1 do
    let phase = app.App.phase ~iter in
    (* Compute critical path. *)
    let t_comp = ref 0.0 in
    for rank = 0 to Placement.ranks placement - 1 do
      let node_id = Placement.node_of_rank placement ~rank in
      let node = Cluster.node cluster node_id in
      let t =
        Cost_model.compute_time_s ~node
          ~background_load:(World.cpu_load world ~node:node_id)
          ~job_ranks_on_node:(Placement.ranks_on placement ~node:node_id)
          ~flops:(phase.App.flops_per_rank rank)
      in
      if t > !t_comp then t_comp := t
    done;
    (* Communication: cost each inter-node pair, recording how much of
       the per-pair time is latency. *)
    let per_pair = Hashtbl.create 8 in
    List.iter
      (fun (src, dst, bytes) ->
        let a = Placement.node_of_rank placement ~rank:src in
        let b = Placement.node_of_rank placement ~rank:dst in
        if a <> b then begin
          let key = (min a b, max a b) in
          Hashtbl.replace per_pair key
            (bytes +. Option.value (Hashtbl.find_opt per_pair key) ~default:0.0)
        end)
      phase.App.messages;
    let t_comm = ref 0.0 and t_lat = ref 0.0 in
    Hashtbl.iter
      (fun (u, v) bytes ->
        let lat_s = Network.latency_us network ~src:u ~dst:v *. 1e-6 in
        let bw =
          Float.max 0.1 (Network.available_bandwidth_mb_s network ~src:u ~dst:v)
        in
        let total = lat_s +. (bytes /. (bw *. 1e6)) in
        if total > !t_comm then begin
          t_comm := total;
          t_lat := lat_s
        end)
      per_pair;
    (* Collectives are latency-dominated at the sizes apps reduce. *)
    let t_coll =
      if phase.App.allreduce_bytes > 0.0 then
        Collectives.allreduce_time_s ~placement
          ~view:
            {
              Collectives.latency_us =
                (fun ~src ~dst -> Network.latency_us network ~src ~dst);
              bandwidth_mb_s =
                (fun ~src ~dst ->
                  Float.max 0.1
                    (Float.min 1e6
                       (Network.available_bandwidth_mb_s network ~src ~dst)));
            }
          ~bytes:phase.App.allreduce_bytes
      else 0.0
    in
    compute := !compute +. !t_comp;
    comm := !comm +. !t_comm +. t_coll;
    latency_part := !latency_part +. !t_lat +. t_coll
  done;
  let total = !compute +. !comm in
  let comm_fraction = if total > 0.0 then !comm /. total else 0.0 in
  let latency_fraction_of_comm =
    if !comm > 0.0 then clamp 0.0 1.0 (!latency_part /. !comm) else 0.0
  in
  {
    compute_fraction = 1.0 -. comm_fraction;
    comm_fraction;
    latency_fraction_of_comm;
    suggested_alpha = clamp 0.1 0.9 (1.0 -. comm_fraction);
    suggested_w_lt = clamp 0.1 0.9 latency_fraction_of_comm;
    suggested_w_bw = clamp 0.1 0.9 (1.0 -. latency_fraction_of_comm);
  }

let weights_for p ~base =
  { base with Rm_core.Weights.w_lt = p.suggested_w_lt; w_bw = p.suggested_w_bw }

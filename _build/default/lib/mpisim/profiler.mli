(** Application profiling for weight selection.

    §5 sets α/β "empirically … by profiling an application and deciding
    the relative weights on the basis of the computation and
    communication times"; §6 plans better profiling tools. This module
    does exactly that: cost a few iterations of the app on a reference
    placement, split the critical path into compute vs communication,
    and map the communication fraction to Eq. 4's α (and to a w_lt/w_bw
    split based on how latency-bound the messages are). *)

type profile = {
  compute_fraction : float;
  comm_fraction : float;
  latency_fraction_of_comm : float;
      (** share of communication time attributable to per-message
          latency rather than byte transfer *)
  suggested_alpha : float;  (** for Eq. 4; β = 1 − α *)
  suggested_w_lt : float;  (** for Eq. 2 *)
  suggested_w_bw : float;
}

val profile :
  world:Rm_workload.World.t ->
  allocation:Rm_core.Allocation.t ->
  app:App.t ->
  ?sample_iterations:int ->
  unit ->
  profile
(** Pure (does not advance the world). The paper's calibration acts as
    the reference: miniMD profiles at 40–80 % communication and gets
    α = 0.3; miniFE at 25–60 % gets α = 0.4. [suggested_alpha] is
    1 − comm_fraction clamped to [0.1, 0.9], which reproduces both. *)

val weights_for : profile -> base:Rm_core.Weights.t -> Rm_core.Weights.t
(** [base] with w_lt/w_bw replaced by the profile's suggestion. *)

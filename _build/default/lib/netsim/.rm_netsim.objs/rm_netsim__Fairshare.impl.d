lib/netsim/fairshare.ml: Array Float

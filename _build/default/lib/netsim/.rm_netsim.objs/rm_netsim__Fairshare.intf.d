lib/netsim/fairshare.mli:

lib/netsim/flow.ml: Format

lib/netsim/flow.mli: Format

lib/netsim/network.ml: Array Fairshare Float Flow List Rm_cluster Routing

lib/netsim/network.mli: Flow Rm_cluster

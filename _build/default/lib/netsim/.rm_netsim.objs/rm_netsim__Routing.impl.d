lib/netsim/routing.ml: Array Flow List Rm_cluster

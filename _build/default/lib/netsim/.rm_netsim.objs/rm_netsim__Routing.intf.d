lib/netsim/routing.mli: Flow Rm_cluster

type demand = { path : int array; demand_mb_s : float }

let validate ~capacities ~demands =
  Array.iter
    (fun c -> if c <= 0.0 then invalid_arg "Fairshare: non-positive capacity")
    capacities;
  Array.iter
    (fun d ->
      Array.iter
        (fun l ->
          if l < 0 || l >= Array.length capacities then
            invalid_arg "Fairshare: link id out of range")
        d.path;
      if d.demand_mb_s <= 0.0 then
        invalid_arg "Fairshare: non-positive demand")
    demands

(* Progressive filling. Each round computes the smallest equal share any
   still-active flow could get; flows whose demand fits below that share
   freeze at their demand, otherwise the flows crossing the bottleneck
   link(s) freeze at the fair share. At least one flow freezes per round,
   so the loop runs at most [n] times. *)
let compute ~capacities ~demands =
  validate ~capacities ~demands;
  let n = Array.length demands in
  let nl = Array.length capacities in
  let rates = Array.make n 0.0 in
  let frozen = Array.make n false in
  let remaining = Array.copy capacities in
  let active_on = Array.make nl 0 in
  Array.iter (fun d -> Array.iter (fun l -> active_on.(l) <- active_on.(l) + 1) d.path) demands;
  let freeze i rate =
    frozen.(i) <- true;
    rates.(i) <- rate;
    Array.iter
      (fun l ->
        active_on.(l) <- active_on.(l) - 1;
        remaining.(l) <- Float.max 0.0 (remaining.(l) -. rate))
      demands.(i).path
  in
  (* Flows that cross no link are only bounded by their demand. *)
  Array.iteri
    (fun i d -> if Array.length d.path = 0 then freeze i d.demand_mb_s)
    demands;
  let active_left () =
    let k = ref 0 in
    Array.iter (fun f -> if not f then incr k) frozen;
    !k
  in
  while active_left () > 0 do
    (* Fair share at the tightest link crossed by an active flow. *)
    let fair = ref infinity in
    for l = 0 to nl - 1 do
      if active_on.(l) > 0 then begin
        let share = remaining.(l) /. float_of_int active_on.(l) in
        if share < !fair then fair := share
      end
    done;
    let fair = !fair in
    (* Freeze demand-limited flows first. *)
    let froze_any = ref false in
    Array.iteri
      (fun i d ->
        if (not frozen.(i)) && d.demand_mb_s <= fair then begin
          freeze i d.demand_mb_s;
          froze_any := true
        end)
      demands;
    if not !froze_any then begin
      (* Freeze flows crossing a bottleneck link at the fair share. *)
      let eps = 1e-9 +. (1e-9 *. Float.abs fair) in
      let bottleneck = Array.make nl false in
      for l = 0 to nl - 1 do
        if active_on.(l) > 0 then begin
          let share = remaining.(l) /. float_of_int active_on.(l) in
          if share <= fair +. eps then bottleneck.(l) <- true
        end
      done;
      Array.iteri
        (fun i d ->
          if (not frozen.(i)) && Array.exists (fun l -> bottleneck.(l)) d.path
          then freeze i fair)
        demands
    end
  done;
  rates

let link_loads ~capacities ~demands ~rates =
  let loads = Array.make (Array.length capacities) 0.0 in
  Array.iteri
    (fun i d -> Array.iter (fun l -> loads.(l) <- loads.(l) +. rates.(i)) d.path)
    demands;
  loads

let probe_rate ~capacities ~demands ~probe_path =
  if Array.length probe_path = 0 then infinity
  else begin
    let probe = { path = probe_path; demand_mb_s = infinity } in
    let all = Array.append demands [| probe |] in
    let rates = compute ~capacities ~demands:all in
    rates.(Array.length all - 1)
  end

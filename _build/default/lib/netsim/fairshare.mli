(** Max-min fair bandwidth allocation with demand caps.

    This is the contention model behind the paper's observation that P2P
    bandwidth "fluctuates around a base value … due to shared network
    switches and links" (§1, Fig. 2b): every flow crossing a link shares
    it, and the classic progressive-filling algorithm yields the max-min
    fair rates.

    Properties (tested): no link is over-subscribed; no flow exceeds its
    demand; a flow below its demand is bottlenecked on some saturated
    link where no other flow gets a larger rate (max-min fairness). *)

type demand = {
  path : int array;  (** link ids crossed; an empty path gets [infinity] *)
  demand_mb_s : float;  (** may be [infinity] for greedy flows *)
}

val compute : capacities:float array -> demands:demand array -> float array
(** [compute ~capacities ~demands] returns the fair rate of each demand,
    positionally. Runs in O(iterations × total path length); iterations
    are bounded by the number of links + flows. Raises [Invalid_argument]
    on a non-positive capacity or an out-of-range link id. *)

val link_loads :
  capacities:float array -> demands:demand array -> rates:float array ->
  float array
(** Total allocated rate per link under the given rates. *)

val probe_rate :
  capacities:float array -> demands:demand array -> probe_path:int array ->
  float
(** Fair rate a new greedy flow on [probe_path] would obtain when added
    to the existing demand set — the "available bandwidth" a new MPI
    connection or a bandwidth probe measures. Returns [infinity] for an
    empty probe path (same node). *)

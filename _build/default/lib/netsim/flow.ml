type endpoint = Node of int | External

type t = { id : int; src : int; dst : endpoint; demand_mb_s : float }

let make ~id ~src ~dst ~demand_mb_s =
  if src < 0 then invalid_arg "Flow.make: negative src";
  if demand_mb_s <= 0.0 then invalid_arg "Flow.make: non-positive demand";
  (match dst with
  | Node d ->
    if d < 0 then invalid_arg "Flow.make: negative dst";
    if d = src then invalid_arg "Flow.make: self-loop"
  | External -> ());
  { id; src; dst; demand_mb_s }

let is_external t = match t.dst with External -> true | Node _ -> false
let touches_node t n = t.src = n || (match t.dst with Node d -> d = n | External -> false)

let pp ppf t =
  match t.dst with
  | Node d ->
    Format.fprintf ppf "flow#%d n%d->n%d %.1fMB/s" t.id t.src d t.demand_mb_s
  | External -> Format.fprintf ppf "flow#%d n%d->ext %.1fMB/s" t.id t.src t.demand_mb_s

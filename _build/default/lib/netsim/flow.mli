(** A network flow: a bandwidth demand between two endpoints.

    Background traffic (other users' jobs, video lectures, backups) and
    the MPI job's own messages are both expressed as flows; the fair-share
    model then decides what everyone actually gets. *)

type endpoint =
  | Node of int  (** another cluster node *)
  | External  (** traffic leaving the cluster (internet, campus) *)

type t = {
  id : int;
  src : int;  (** source node id *)
  dst : endpoint;
  demand_mb_s : float;  (** offered load; [infinity] = greedy (TCP-like) *)
}

val make : id:int -> src:int -> dst:endpoint -> demand_mb_s:float -> t
(** Validates [src >= 0], [demand_mb_s > 0], and that a node flow is not a
    self-loop. *)

val is_external : t -> bool
val touches_node : t -> int -> bool
val pp : Format.formatter -> t -> unit

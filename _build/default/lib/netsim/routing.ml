module Topology = Rm_cluster.Topology

let p2p_path topo ~src ~dst =
  Array.of_list
    (List.map (fun (l : Topology.link) -> l.link_id) (Topology.path topo src dst))

let flow_path topo (flow : Flow.t) =
  match flow.dst with
  | Flow.Node d -> p2p_path topo ~src:flow.src ~dst:d
  | Flow.External ->
    let access = Topology.access_link topo ~node:flow.src in
    let uplink = Topology.uplink topo ~switch:(Topology.switch_of_node topo flow.src) in
    [| access.link_id; uplink.link_id |]

let capacities topo =
  Array.init (Topology.link_count topo) (fun i ->
      (Topology.link topo i).capacity_mb_s)

(** Deterministic shortest-path routing over the switch tree.

    Paths are returned as arrays of link ids into the topology's link
    table (access links first, then uplinks, as defined by
    {!Rm_cluster.Topology}). *)

val p2p_path : Rm_cluster.Topology.t -> src:int -> dst:int -> int array
(** Links crossed between two nodes; empty when [src = dst]. *)

val flow_path : Rm_cluster.Topology.t -> Flow.t -> int array
(** An external flow crosses its source's access link and the source
    switch's uplink (the campus gateway hangs off the root, which we do
    not model as a bottleneck). *)

val capacities : Rm_cluster.Topology.t -> float array
(** Capacity (MB/s) per link id, indexable by the ids in paths. *)

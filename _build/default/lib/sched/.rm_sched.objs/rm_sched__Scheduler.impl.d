lib/sched/scheduler.ml: Buffer Bytes Float Hashtbl List Printf Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_netsim Rm_stats Rm_workload

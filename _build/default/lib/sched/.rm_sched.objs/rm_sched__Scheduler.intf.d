lib/sched/scheduler.mli: Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_stats Rm_workload

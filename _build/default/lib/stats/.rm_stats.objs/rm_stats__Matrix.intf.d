lib/stats/matrix.mli:

lib/stats/rng.mli:

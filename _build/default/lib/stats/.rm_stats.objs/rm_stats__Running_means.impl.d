lib/stats/running_means.ml: Window

lib/stats/running_means.mli:

lib/stats/timeseries.ml: Array Descriptive Float List

lib/stats/timeseries.mli: Descriptive

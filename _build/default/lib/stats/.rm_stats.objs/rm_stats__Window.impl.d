lib/stats/window.ml: Option Queue

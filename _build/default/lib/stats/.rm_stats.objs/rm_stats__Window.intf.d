lib/stats/window.mli:

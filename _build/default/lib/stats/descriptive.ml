let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty input")

let sum a = Array.fold_left ( +. ) 0.0 a

let mean a =
  check_nonempty "Descriptive.mean" a;
  sum a /. float_of_int (Array.length a)

let mean_list l =
  if l = [] then invalid_arg "Descriptive.mean_list: empty input";
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let variance a =
  check_nonempty "Descriptive.variance" a;
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let coefficient_of_variation a =
  let m = mean a in
  if Float.abs m < 1e-12 then
    invalid_arg "Descriptive.coefficient_of_variation: zero mean";
  stddev a /. m

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let percentile a ~p =
  check_nonempty "Descriptive.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  if n = 1 then b.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    b.(lo) +. (frac *. (b.(hi) -. b.(lo)))
  end

let median a = percentile a ~p:50.0

let min a =
  check_nonempty "Descriptive.min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  check_nonempty "Descriptive.max" a;
  Array.fold_left Float.max a.(0) a

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
}

let summarize a =
  check_nonempty "Descriptive.summarize" a;
  let m = mean a in
  let sd = stddev a in
  {
    n = Array.length a;
    mean = m;
    median = median a;
    stddev = sd;
    cv = (if Float.abs m < 1e-12 then 0.0 else sd /. m);
    min = min a;
    max = max a;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g median=%.4g sd=%.4g cv=%.3f min=%.4g max=%.4g" s.n s.mean
    s.median s.stddev s.cv s.min s.max

(* Average ranks for ties, then Pearson on the ranks. *)
let ranks a =
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(i) a.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(order.(!j + 1)) = a.(order.(!i)) do
      incr j
    done;
    (* positions !i..!j share the same value; average their ranks *)
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Descriptive.spearman: length mismatch";
  if n < 2 then invalid_arg "Descriptive.spearman: need at least 2 points";
  let ra = ranks a and rb = ranks b in
  let ma = mean ra and mb = mean rb in
  let num = ref 0.0 and da = ref 0.0 and db = ref 0.0 in
  for i = 0 to n - 1 do
    let xa = ra.(i) -. ma and xb = rb.(i) -. mb in
    num := !num +. (xa *. xb);
    da := !da +. (xa *. xa);
    db := !db +. (xb *. xb)
  done;
  if !da <= 0.0 || !db <= 0.0 then 0.0 else !num /. sqrt (!da *. !db)

let percent_gain ~baseline ~ours =
  if Float.abs baseline < 1e-12 then
    invalid_arg "Descriptive.percent_gain: zero baseline";
  (baseline -. ours) /. baseline *. 100.0

(** Descriptive statistics over float arrays and lists.

    Used throughout the experiment harness to reproduce the paper's
    summary rows (average / median / maximum gain, coefficient of
    variation). All functions raise [Invalid_argument] on empty input
    unless documented otherwise. *)

val mean : float array -> float
val mean_list : float list -> float

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val coefficient_of_variation : float array -> float
(** stddev / mean — the paper's run-stability metric (§5.1, §5.2).
    Requires a non-zero mean. *)

val median : float array -> float
(** Median of a copy of the input (input is not modified). *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [0, 100]. *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  cv : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

val spearman : float array -> float array -> float
(** Spearman rank-correlation coefficient (ties get average ranks).
    Requires equal lengths >= 2; returns a value in [-1, 1]. *)

val percent_gain : baseline:float -> ours:float -> float
(** [(baseline - ours) / baseline * 100] — the paper's "% gain in
    performance" of the proposed allocator over a baseline. *)

type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols ~init =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { rows; cols; data = Array.make (rows * cols) init }

let square n ~init = create ~rows:n ~cols:n ~init
let rows t = t.rows
let cols t = t.cols

let index t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Matrix: index out of bounds";
  (i * t.cols) + j

let get t i j = t.data.(index t i j)
let set t i j v = t.data.(index t i j) <- v
let update t i j ~f = set t i j (f (get t i j))
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let copy t = { t with data = Array.copy t.data }
let map t ~f = { t with data = Array.map f t.data }

let iteri t ~f =
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      f ~row:i ~col:j (get t i j)
    done
  done

let off_diagonal_mean t =
  if t.rows < 2 || t.cols < 2 then
    invalid_arg "Matrix.off_diagonal_mean: matrix too small";
  let acc = ref 0.0 and n = ref 0 in
  iteri t ~f:(fun ~row ~col v ->
      if row <> col then begin
        acc := !acc +. v;
        incr n
      end);
  !acc /. float_of_int !n

let symmetrize t =
  if t.rows <> t.cols then invalid_arg "Matrix.symmetrize: not square";
  for i = 0 to t.rows - 1 do
    for j = i + 1 to t.cols - 1 do
      let m = (get t i j +. get t j i) /. 2.0 in
      set t i j m;
      set t j i m
    done
  done

let max_value t = Array.fold_left Float.max t.data.(0) t.data
let min_value t = Array.fold_left Float.min t.data.(0) t.data

let submatrix t ~indices =
  let idx = Array.of_list indices in
  let n = Array.length idx in
  if n = 0 then invalid_arg "Matrix.submatrix: empty index list";
  let out = create ~rows:n ~cols:n ~init:0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      set out i j (get t idx.(i) idx.(j))
    done
  done;
  out

let add_pointwise a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix.add_pointwise: shape mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale t k = map t ~f:(fun x -> x *. k)

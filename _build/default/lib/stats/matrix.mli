(** Dense float matrices for P2P bandwidth/latency tables and heatmaps. *)

type t

val create : rows:int -> cols:int -> init:float -> t
val square : int -> init:float -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> f:(float -> float) -> unit
val fill : t -> float -> unit
val copy : t -> t
val map : t -> f:(float -> float) -> t
val iteri : t -> f:(row:int -> col:int -> float -> unit) -> unit

val off_diagonal_mean : t -> float
(** Mean of all entries with [row <> col] — the paper's "average of
    network load between all pairs of nodes" (§3.2.2). Requires at least
    a 2x2 matrix. *)

val symmetrize : t -> unit
(** Overwrite each (i,j),(j,i) pair with their mean, in place. Requires a
    square matrix. *)

val max_value : t -> float
val min_value : t -> float

val submatrix : t -> indices:int list -> t
(** Square selection of the given row/column indices, in order. *)

val add_pointwise : t -> t -> t
val scale : t -> float -> t

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = int64 g in
  { state = seed }

(* 53 random bits scaled into [0, 1). *)
let float g =
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform g ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float g)

let int g n =
  assert (n > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (int64 g) mask) in
  v mod n

let bool g = Int64.logand (int64 g) 1L = 1L
let bernoulli g ~p = float g < p

let gaussian g ~mu ~sigma =
  (* Box–Muller; guard against log 0. *)
  let u1 = max (float g) 1e-300 in
  let u2 = float g in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential g ~rate =
  assert (rate > 0.0);
  let u = max (float g) 1e-300 in
  -.log u /. rate

let pareto g ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  let u = max (float g) 1e-300 in
  scale /. (u ** (1.0 /. shape))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let sample_without_replacement g ~k ~n =
  assert (0 <= k && k <= n);
  let idx = Array.init n (fun i -> i) in
  shuffle g idx;
  Array.to_list (Array.sub idx 0 k)

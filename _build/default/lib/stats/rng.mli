(** Deterministic, splittable pseudo-random number generator.

    All stochastic components of the simulator draw from an explicit [t]
    value so that every experiment is reproducible from a single integer
    seed. The generator is splitmix64 at the core with independent streams
    obtained by {!split}, which is important when many per-node workload
    models must evolve independently of the order in which they are
    stepped. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Streams of [g] and the result do not overlap in practice. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is true with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. Requires [rate > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate; heavy-tailed, used for flow sizes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement g ~k ~n] draws [k] distinct indices from
    [0..n-1], in random order. Requires [0 <= k <= n]. *)

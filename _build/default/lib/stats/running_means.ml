type t = {
  w1 : Window.t;
  w5 : Window.t;
  w15 : Window.t;
  mutable last : float option;
}

type view = { instant : float; m1 : float; m5 : float; m15 : float }

let create_spans ~m1 ~m5 ~m15 =
  { w1 = Window.create ~span:m1;
    w5 = Window.create ~span:m5;
    w15 = Window.create ~span:m15;
    last = None }

let create () = create_spans ~m1:60.0 ~m5:300.0 ~m15:900.0

let push t ~time ~value =
  Window.push t.w1 ~time ~value;
  Window.push t.w5 ~time ~value;
  Window.push t.w15 ~time ~value;
  t.last <- Some value

let view t =
  match t.last with
  | None -> None
  | Some instant ->
    Some
      {
        instant;
        m1 = Window.mean_default t.w1 ~default:instant;
        m5 = Window.mean_default t.w5 ~default:instant;
        m15 = Window.mean_default t.w15 ~default:instant;
      }

let view_default t ~default =
  match view t with
  | Some v -> v
  | None -> { instant = default; m1 = default; m5 = default; m15 = default }

let blend v ~w1 ~w5 ~w15 =
  let total = w1 +. w5 +. w15 in
  if total <= 0.0 then invalid_arg "Running_means.blend: non-positive weights";
  ((w1 *. v.m1) +. (w5 *. v.m5) +. (w15 *. v.m15)) /. total

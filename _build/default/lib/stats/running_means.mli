(** The 1/5/15-minute running-mean triple used by the monitor.

    Mirrors the Unix load-average convention the paper leans on: every
    dynamic node attribute is reported together with its trailing 1, 5
    and 15 minute means (Table 1). *)

type t

type view = {
  instant : float;  (** most recent sample *)
  m1 : float;  (** 1-minute mean *)
  m5 : float;  (** 5-minute mean *)
  m15 : float;  (** 15-minute mean *)
}

val create : unit -> t

val create_spans : m1:float -> m5:float -> m15:float -> t
(** Non-standard spans, used in tests and cadence ablations. *)

val push : t -> time:float -> value:float -> unit

val view : t -> view option
(** [None] until the first sample has been pushed. *)

val view_default : t -> default:float -> view

val blend : view -> w1:float -> w5:float -> w15:float -> float
(** Weighted combination of the three horizons; weights need not sum
    to 1 (they are normalized internally). Used when a single scalar per
    attribute is needed by the allocator. *)

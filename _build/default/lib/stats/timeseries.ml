type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(name = "") () =
  { name; times = Array.make 16 0.0; values = Array.make 16 0.0; len = 0 }

let name t = t.name
let length t = t.len

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let cap = 2 * Array.length t.times in
    let times = Array.make cap 0.0 and values = Array.make cap 0.0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let append t ~time ~value =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Timeseries.append: time went backwards";
  ensure_capacity t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let times t = Array.sub t.times 0 t.len
let values t = Array.sub t.values 0 t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Timeseries.get: index out of bounds";
  (t.times.(i), t.values.(i))

let value_summary t =
  if t.len = 0 then invalid_arg "Timeseries.value_summary: empty series";
  Descriptive.summarize (values t)

let iter t ~f =
  for i = 0 to t.len - 1 do
    f ~time:t.times.(i) ~value:t.values.(i)
  done

let resample t ~period =
  if period <= 0.0 then invalid_arg "Timeseries.resample: period must be positive";
  let out = create ~name:t.name () in
  if t.len = 0 then out
  else begin
    let origin = t.times.(0) in
    let bucket_of time = int_of_float ((time -. origin) /. period) in
    let current = ref (bucket_of t.times.(0)) in
    let acc = ref 0.0 and count = ref 0 in
    let flush () =
      if !count > 0 then begin
        let mid = origin +. ((float_of_int !current +. 0.5) *. period) in
        append out ~time:mid ~value:(!acc /. float_of_int !count)
      end
    in
    for i = 0 to t.len - 1 do
      let b = bucket_of t.times.(i) in
      if b <> !current then begin
        flush ();
        current := b;
        acc := 0.0;
        count := 0
      end;
      acc := !acc +. t.values.(i);
      incr count
    done;
    flush ();
    out
  end

let map_values t ~f =
  let out = create ~name:t.name () in
  iter t ~f:(fun ~time ~value -> append out ~time ~value:(f value));
  out

let average series =
  match series with
  | [] -> invalid_arg "Timeseries.average: empty list"
  | first :: rest ->
    let n = length first in
    List.iter
      (fun s ->
        if length s <> n then invalid_arg "Timeseries.average: length mismatch")
      rest;
    let out = create ~name:"average" () in
    for i = 0 to n - 1 do
      let t0, v0 = get first i in
      let sum =
        List.fold_left
          (fun acc s ->
            let ti, vi = get s i in
            if Float.abs (ti -. t0) > 1e-9 then
              invalid_arg "Timeseries.average: time-axis mismatch";
            acc +. vi)
          v0 rest
      in
      append out ~time:t0 ~value:(sum /. float_of_int (List.length series))
    done;
    out

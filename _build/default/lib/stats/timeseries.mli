(** Append-only time series used for trace recording (Figures 1 and 2).

    A series is a growing vector of (time, value) points with helpers to
    resample and summarize. Times must be appended in non-decreasing
    order. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val append : t -> time:float -> value:float -> unit
val length : t -> int
val times : t -> float array
val values : t -> float array
val get : t -> int -> float * float

val value_summary : t -> Descriptive.summary
(** Raises [Invalid_argument] on an empty series. *)

val resample : t -> period:float -> t
(** Average into buckets of [period] seconds starting at the first
    sample's time; empty buckets are skipped. *)

val map_values : t -> f:(float -> float) -> t

val average : t list -> t
(** Pointwise average of series with identical time axes (the paper's
    "average across 20 nodes" curves). Raises [Invalid_argument] on
    length/time mismatch or empty list. *)

val iter : t -> f:(time:float -> value:float -> unit) -> unit

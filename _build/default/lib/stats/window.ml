type t = {
  span : float;
  samples : (float * float) Queue.t; (* (time, value), oldest first *)
  mutable sum : float;
  mutable last_time : float;
}

let create ~span =
  if span <= 0.0 then invalid_arg "Window.create: span must be positive";
  { span; samples = Queue.create (); sum = 0.0; last_time = neg_infinity }

let span t = t.span

let evict t ~now =
  let cutoff = now -. t.span in
  let continue = ref true in
  while !continue && not (Queue.is_empty t.samples) do
    let time, value = Queue.peek t.samples in
    if time <= cutoff then begin
      ignore (Queue.pop t.samples);
      t.sum <- t.sum -. value
    end
    else continue := false
  done

let push t ~time ~value =
  if time < t.last_time then invalid_arg "Window.push: time went backwards";
  t.last_time <- time;
  Queue.push (time, value) t.samples;
  t.sum <- t.sum +. value;
  evict t ~now:time

let length t = Queue.length t.samples

let mean t =
  let n = Queue.length t.samples in
  if n = 0 then None else Some (t.sum /. float_of_int n)

let mean_default t ~default = Option.value (mean t) ~default

let latest t =
  if Queue.is_empty t.samples then None
  else begin
    (* Queue has no peek-back; fold to the last element. *)
    let last = Queue.fold (fun _ x -> Some x) None t.samples in
    last
  end

let clear t =
  Queue.clear t.samples;
  t.sum <- 0.0;
  t.last_time <- neg_infinity

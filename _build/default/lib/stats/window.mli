(** Sliding time-window average of a sampled signal.

    The paper's monitor keeps "the running mean of the last 1, 5, and 15
    minutes" of each dynamic attribute (§3.2.1, §4). A [t] stores
    time-stamped samples and answers the mean over the trailing window,
    evicting anything older. Times are in simulated seconds and must be
    pushed in non-decreasing order. *)

type t

val create : span:float -> t
(** [create ~span] keeps samples from the last [span] seconds.
    Requires [span > 0]. *)

val span : t -> float

val push : t -> time:float -> value:float -> unit
(** Record a sample. Raises [Invalid_argument] if [time] is earlier than
    the latest pushed time. *)

val mean : t -> float option
(** Mean of the samples currently inside the window, or [None] if the
    window holds no samples. Eviction happens on {!push}; [mean] reflects
    the window as of the latest pushed sample. *)

val mean_default : t -> default:float -> float

val length : t -> int
(** Number of retained samples. *)

val latest : t -> (float * float) option
(** Most recent (time, value), if any. *)

val clear : t -> unit

lib/workload/flow_gen.ml: Float List Rm_netsim Rm_stats

lib/workload/flow_gen.mli: Rm_netsim Rm_stats

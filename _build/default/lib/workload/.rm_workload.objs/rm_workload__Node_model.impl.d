lib/workload/node_model.ml: Float Format Ou_process Rm_cluster Rm_stats Spike_train Stdlib Trace_replay

lib/workload/node_model.mli: Format Rm_cluster Rm_stats Trace_replay

lib/workload/ou_process.ml: Float Option Rm_stats

lib/workload/ou_process.mli: Rm_stats

lib/workload/scenario.ml: Flow_gen Node_model Printf Rm_cluster Rm_stats

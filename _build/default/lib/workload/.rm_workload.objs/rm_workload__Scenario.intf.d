lib/workload/scenario.mli: Flow_gen Node_model Rm_cluster Rm_stats

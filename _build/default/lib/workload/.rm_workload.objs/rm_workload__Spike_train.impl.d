lib/workload/spike_train.ml: List Rm_stats

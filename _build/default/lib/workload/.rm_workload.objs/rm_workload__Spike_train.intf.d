lib/workload/spike_train.mli: Rm_stats

lib/workload/trace_replay.ml: Array Buffer Hashtbl List Option Printf String

lib/workload/trace_replay.mli:

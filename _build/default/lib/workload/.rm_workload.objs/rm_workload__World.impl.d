lib/workload/world.ml: Array Float Flow_gen List Node_model Rm_cluster Rm_engine Rm_netsim Rm_stats Scenario Trace_replay

lib/workload/world.mli: Flow_gen Rm_cluster Rm_engine Rm_netsim Scenario Trace_replay

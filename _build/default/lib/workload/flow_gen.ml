module Rng = Rm_stats.Rng
module Flow = Rm_netsim.Flow

type params = {
  arrival_rate_per_s : float;
  p_external : float;
  p_same_switch : float;
  demand_pareto_shape : float;
  demand_pareto_scale_mb_s : float;
  demand_cap_mb_s : float;
  p_elephant : float;
  short_mean_duration_s : float;
  elephant_mean_duration_s : float;
  hotspot : (int * float) option;
}

let default =
  {
    arrival_rate_per_s = 0.09;
    p_external = 0.35;
    p_same_switch = 0.55;
    demand_pareto_shape = 1.3;
    demand_pareto_scale_mb_s = 6.0;
    demand_cap_mb_s = 110.0;
    p_elephant = 0.2;
    short_mean_duration_s = 45.0;
    elephant_mean_duration_s = 900.0;
    hotspot = None;
  }

type live = { flow : Flow.t; expires : float }

type t = {
  rng : Rng.t;
  node_count : int;
  params : params;
  mutable next_arrival : float;
  mutable next_id : int;
  mutable live : live list;
  mutable last_now : float;
}

let draw_gap t =
  if t.params.arrival_rate_per_s <= 0.0 then infinity
  else Rng.exponential t.rng ~rate:t.params.arrival_rate_per_s

let create ~rng ~node_count ~params =
  if node_count < 2 then invalid_arg "Flow_gen.create: need at least 2 nodes";
  if params.p_external < 0.0 || params.p_external > 1.0 then
    invalid_arg "Flow_gen.create: p_external out of range";
  let t =
    { rng; node_count; params; next_arrival = 0.0; next_id = 0; live = [];
      last_now = 0.0 }
  in
  t.next_arrival <- draw_gap t;
  t

let pick_source t ~switch_of_node =
  match t.params.hotspot with
  | Some (switch, boost) when Rng.bernoulli t.rng ~p:boost ->
    (* Rejection-sample a node on the hotspot switch. *)
    let rec go attempts =
      let n = Rng.int t.rng t.node_count in
      if switch_of_node n = switch || attempts > 50 then n else go (attempts + 1)
    in
    go 0
  | Some _ | None -> Rng.int t.rng t.node_count

let spawn t ~start ~switch_of_node =
  let p = t.params in
  let src = pick_source t ~switch_of_node in
  let dst =
    if Rng.bernoulli t.rng ~p:p.p_external then Flow.External
    else begin
      let rec other () =
        let d = Rng.int t.rng t.node_count in
        if d = src then other () else d
      in
      (* Lab traffic is partly switch-local (nearby workstations, local
         file servers); rejection-sample a same-switch peer when asked. *)
      if Rng.bernoulli t.rng ~p:p.p_same_switch then begin
        let rec local attempts =
          let d = other () in
          if switch_of_node d = switch_of_node src || attempts > 50 then d
          else local (attempts + 1)
        in
        Flow.Node (local 0)
      end
      else Flow.Node (other ())
    end
  in
  let demand =
    Float.min p.demand_cap_mb_s
      (Rng.pareto t.rng ~shape:p.demand_pareto_shape
         ~scale:p.demand_pareto_scale_mb_s)
  in
  let mean_duration =
    if Rng.bernoulli t.rng ~p:p.p_elephant then p.elephant_mean_duration_s
    else p.short_mean_duration_s
  in
  let duration = Rng.exponential t.rng ~rate:(1.0 /. mean_duration) in
  let flow = Flow.make ~id:t.next_id ~src ~dst ~demand_mb_s:demand in
  t.next_id <- t.next_id + 1;
  { flow; expires = start +. duration }

let advance t ~now ~switch_of_node =
  if now < t.last_now then invalid_arg "Flow_gen.advance: time went backwards";
  t.last_now <- now;
  while t.next_arrival <= now do
    let start = t.next_arrival in
    let live = spawn t ~start ~switch_of_node in
    if live.expires > now then t.live <- live :: t.live;
    t.next_arrival <- start +. draw_gap t
  done;
  t.live <- List.filter (fun l -> l.expires > now) t.live

let active_flows t = List.map (fun l -> l.flow) t.live
let active_count t = List.length t.live

(** Background network traffic generator.

    A birth–death population of flows: arrivals are Poisson over the
    whole cluster, each flow picks a random source node, goes either to
    another node or out of the cluster, demands a heavy-tailed rate, and
    lives for an exponential duration (with a slow "elephant" class for
    backups / video sessions). The live population is handed to
    {!Rm_netsim.Network} as the contention the paper attributes to
    "other network-intensive jobs". *)

type params = {
  arrival_rate_per_s : float;  (** cluster-wide flow arrivals *)
  p_external : float;  (** probability a flow leaves the cluster *)
  p_same_switch : float;
      (** probability an internal flow stays on its source's switch
          (lab-local traffic) *)
  demand_pareto_shape : float;
  demand_pareto_scale_mb_s : float;
  demand_cap_mb_s : float;
  p_elephant : float;
  short_mean_duration_s : float;
  elephant_mean_duration_s : float;
  hotspot : (int * float) option;
      (** [(switch, boost)]: fraction [boost] of arrivals are forced onto
          nodes of [switch], creating the dark patches of Fig. 2a. *)
}

val default : params
(** A moderately busy teaching cluster. *)

type t

val create : rng:Rm_stats.Rng.t -> node_count:int -> params:params -> t
(** Requires at least 2 nodes. *)

val advance : t -> now:float -> switch_of_node:(int -> int) -> unit
(** Process arrivals/expiries up to absolute time [now] (non-decreasing).
    [switch_of_node] is needed for hotspot targeting. *)

val active_flows : t -> Rm_netsim.Flow.t list
val active_count : t -> int

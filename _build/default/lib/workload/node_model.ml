module Rng = Rm_stats.Rng
module Node = Rm_cluster.Node

type profile = {
  load_mu : float;
  load_tau : float;
  load_sigma : float;
  spike_rate_per_s : float;
  spike_magnitude_lo : float;
  spike_magnitude_hi : float;
  spike_mean_duration_s : float;
  diurnal_amplitude : float;
  diurnal_phase_s : float;
  util_base_pct : float;
  util_sigma_pct : float;
  mem_used_frac_mu : float;
  users_mu : float;
}

type stochastic = {
  profile : profile;
  base_load : Ou_process.t;
  spikes : Spike_train.t;
  util_base : Ou_process.t;
  mem_used : Ou_process.t;
  users_level : Ou_process.t;
  mutable spike_level : float;
}

type source = Stochastic of stochastic | Replay of Trace_replay.node_trace

type t = { node : Node.t; source : source; mutable now : float }

let day_s = 86_400.0

let create ~rng ~(node : Node.t) ~profile =
  let sub () = Rng.split rng in
  let base_load =
    Ou_process.create ~rng:(sub ()) ~mu:profile.load_mu ~tau:profile.load_tau
      ~sigma:profile.load_sigma ~lo:0.0 ()
  in
  let magnitude g =
    Rng.uniform g ~lo:profile.spike_magnitude_lo ~hi:profile.spike_magnitude_hi
  in
  let spikes =
    Spike_train.create ~rng:(sub ()) ~rate_per_s:profile.spike_rate_per_s
      ~magnitude ~mean_duration_s:profile.spike_mean_duration_s ()
  in
  let util_base =
    Ou_process.create ~rng:(sub ()) ~mu:profile.util_base_pct ~tau:1800.0
      ~sigma:profile.util_sigma_pct ~lo:0.0 ~hi:100.0 ()
  in
  let mem_used =
    Ou_process.create ~rng:(sub ()) ~mu:(profile.mem_used_frac_mu *. node.mem_gb)
      ~tau:3600.0
      ~sigma:(0.05 *. node.mem_gb)
      ~lo:(0.05 *. node.mem_gb)
      ~hi:(0.95 *. node.mem_gb)
      ()
  in
  let users_level =
    Ou_process.create ~rng:(sub ()) ~mu:profile.users_mu ~tau:2400.0
      ~sigma:(0.6 *. Float.max 0.5 profile.users_mu)
      ~lo:0.0 ()
  in
  {
    node;
    source =
      Stochastic
        { profile; base_load; spikes; util_base; mem_used; users_level;
          spike_level = 0.0 };
    now = 0.0;
  }

let create_replay ~(node : Node.t) ~trace =
  { node; source = Replay trace; now = 0.0 }

let node t = t.node

let diurnal_mu p ~now =
  let phase = 2.0 *. Float.pi *. ((now +. p.diurnal_phase_s) /. day_s) in
  Float.max 0.0 (p.load_mu *. (1.0 +. (p.diurnal_amplitude *. sin phase)))

let advance t ~now =
  if now < t.now then invalid_arg "Node_model.advance: time went backwards";
  let dt = now -. t.now in
  t.now <- now;
  match t.source with
  | Replay _ -> ()
  | Stochastic s ->
    let mu = diurnal_mu s.profile ~now in
    ignore (Ou_process.step s.base_load ~dt ~mu ());
    s.spike_level <- Spike_train.advance s.spikes ~now;
    ignore (Ou_process.step s.util_base ~dt ());
    ignore (Ou_process.step s.mem_used ~dt ());
    ignore (Ou_process.step s.users_level ~dt ())

let cpu_load t =
  match t.source with
  | Stochastic s -> Ou_process.value s.base_load +. s.spike_level
  | Replay trace -> Trace_replay.value_at trace.Trace_replay.load t.now

(* Utilization couples interactive activity with the running-process
   load. The coupling is sub-linear (0.55): runnable processes are not
   pinned at 100 % of a core each (I/O waits, scheduler overheads),
   which keeps the cluster-average utilization in Fig. 1c's 20-35 %
   band even when load spikes. *)
let cpu_util_pct t =
  match t.source with
  | Stochastic s ->
    let cores = float_of_int t.node.cores in
    let from_load = 55.0 *. Float.min 1.0 (cpu_load t /. cores) in
    Float.min 100.0 (Ou_process.value s.util_base +. from_load)
  | Replay trace ->
    Float.min 100.0
      (Float.max 0.0 (Trace_replay.value_at trace.Trace_replay.util_pct t.now))

let mem_used_gb t =
  match t.source with
  | Stochastic s -> Ou_process.value s.mem_used
  | Replay trace ->
    Float.min t.node.mem_gb
      (Float.max 0.0 (Trace_replay.value_at trace.Trace_replay.mem_used_gb t.now))

let users t =
  match t.source with
  | Stochastic s ->
    int_of_float (Float.round (Ou_process.value s.users_level))
  | Replay trace ->
    Stdlib.max 0
      (int_of_float
         (Float.round (Trace_replay.value_at trace.Trace_replay.users t.now)))

let pp ppf t =
  Format.fprintf ppf "%s load=%.2f util=%.1f%% mem=%.1fGB users=%d"
    t.node.hostname (cpu_load t) (cpu_util_pct t) (mem_used_gb t) (users t)

(** Ground-truth dynamic state of a single shared-cluster node.

    Combines a mean-reverting baseline, Poisson spike sessions and an
    optional diurnal swing into the CPU load; derives CPU utilization
    (coupled to load plus independent interactive activity), memory
    usage and logged-in user count. This is the truth the paper's
    NodeStateD daemon samples. *)

type profile = {
  load_mu : float;  (** baseline CPU load (runnable processes) *)
  load_tau : float;  (** load reversion time constant, seconds *)
  load_sigma : float;
  spike_rate_per_s : float;
  spike_magnitude_lo : float;
  spike_magnitude_hi : float;
  spike_mean_duration_s : float;
  diurnal_amplitude : float;  (** fraction of [load_mu], 0 = flat *)
  diurnal_phase_s : float;
  util_base_pct : float;  (** interactive-use utilization floor *)
  util_sigma_pct : float;
  mem_used_frac_mu : float;  (** mean used fraction of total memory *)
  users_mu : float;
}

type t

val create :
  rng:Rm_stats.Rng.t -> node:Rm_cluster.Node.t -> profile:profile -> t

val create_replay : node:Rm_cluster.Node.t -> trace:Trace_replay.node_trace -> t
(** A model driven by recorded data instead of the stochastic
    generators: {!advance} just moves the clock and reads the trace
    (clamped to the node's physical limits where applicable). *)

val node : t -> Rm_cluster.Node.t
val advance : t -> now:float -> unit
(** Move ground truth to absolute time [now] (non-decreasing). *)

val cpu_load : t -> float
(** Current load (runnable process count), >= 0, continuous. *)

val cpu_util_pct : t -> float
(** Current CPU utilization in [0, 100]. *)

val mem_used_gb : t -> float
val users : t -> int

val pp : Format.formatter -> t -> unit

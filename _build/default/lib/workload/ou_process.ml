module Rng = Rm_stats.Rng

type t = {
  rng : Rng.t;
  mu : float;
  tau : float;
  sigma : float;
  lo : float;
  hi : float;
  mutable value : float;
}

let create ~rng ~mu ~tau ~sigma ?(lo = neg_infinity) ?(hi = infinity) ?init () =
  if tau <= 0.0 then invalid_arg "Ou_process.create: tau must be positive";
  if sigma < 0.0 then invalid_arg "Ou_process.create: negative sigma";
  if lo > hi then invalid_arg "Ou_process.create: lo > hi";
  let init =
    match init with
    | Some v -> v
    | None -> Rng.gaussian rng ~mu ~sigma:(sigma /. 2.0)
  in
  let value = Float.min hi (Float.max lo init) in
  { rng; mu; tau; sigma; lo; hi; value }

let value t = t.value

(* Exact OU discretization: x' = mu + (x - mu) e^{-dt/tau} + sigma
   sqrt(1 - e^{-2 dt/tau}) N(0,1). *)
let step t ~dt ?mu () =
  if dt < 0.0 then invalid_arg "Ou_process.step: negative dt";
  let mu = Option.value mu ~default:t.mu in
  if dt > 0.0 then begin
    let decay = exp (-.dt /. t.tau) in
    let noise_scale = t.sigma *. sqrt (1.0 -. (decay *. decay)) in
    let noise = Rng.gaussian t.rng ~mu:0.0 ~sigma:1.0 in
    let v = mu +. ((t.value -. mu) *. decay) +. (noise_scale *. noise) in
    t.value <- Float.min t.hi (Float.max t.lo v)
  end;
  t.value

(** Mean-reverting Ornstein–Uhlenbeck process with a time-varying mean.

    The workhorse behind every slowly-varying node attribute (baseline
    CPU load, CPU utilization, memory usage): values wander around a
    mean, revert with time constant [tau], and can be stepped with
    irregular time increments (exact discretization, so step size does
    not change the distribution). *)

type t

val create :
  rng:Rm_stats.Rng.t ->
  mu:float ->
  tau:float ->
  sigma:float ->
  ?lo:float ->
  ?hi:float ->
  ?init:float ->
  unit ->
  t
(** [mu] stationary mean, [tau] reversion time constant in seconds,
    [sigma] stationary standard deviation, [lo]/[hi] clamps (defaults
    -inf/+inf), [init] starting value (defaults to a draw around [mu]).
    Requires [tau > 0] and [sigma >= 0]. *)

val value : t -> float

val step : t -> dt:float -> ?mu:float -> unit -> float
(** Advance by [dt] seconds (>= 0), optionally overriding the mean for
    this step (diurnal modulation); returns the new value. *)

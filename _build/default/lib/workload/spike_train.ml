module Rng = Rm_stats.Rng

type session = { magnitude : float; expires : float }

type t = {
  rng : Rng.t;
  rate_per_s : float;
  magnitude : Rng.t -> float;
  mean_duration_s : float;
  mutable next_arrival : float;
  mutable sessions : session list;
  mutable last_now : float;
}

let draw_gap t =
  if t.rate_per_s <= 0.0 then infinity
  else Rng.exponential t.rng ~rate:t.rate_per_s

let create ~rng ~rate_per_s ~magnitude ~mean_duration_s () =
  if rate_per_s < 0.0 then invalid_arg "Spike_train.create: negative rate";
  if mean_duration_s <= 0.0 then
    invalid_arg "Spike_train.create: non-positive duration";
  let t =
    {
      rng;
      rate_per_s;
      magnitude;
      mean_duration_s;
      next_arrival = 0.0;
      sessions = [];
      last_now = 0.0;
    }
  in
  t.next_arrival <- draw_gap t;
  t

let advance t ~now =
  if now < t.last_now then invalid_arg "Spike_train.advance: time went backwards";
  t.last_now <- now;
  while t.next_arrival <= now do
    let start = t.next_arrival in
    let duration = Rng.exponential t.rng ~rate:(1.0 /. t.mean_duration_s) in
    let magnitude = t.magnitude t.rng in
    (* Only keep it if it is still alive by [now]; either way the arrival
       consumed randomness, keeping streams stable across tick rates. *)
    if start +. duration > now then
      t.sessions <- { magnitude; expires = start +. duration } :: t.sessions;
    t.next_arrival <- start +. draw_gap t
  done;
  t.sessions <- List.filter (fun s -> s.expires > now) t.sessions;
  List.fold_left (fun acc (s : session) -> acc +. s.magnitude) 0.0 t.sessions

let active t = List.length t.sessions

(** Poisson bursts layered on top of a baseline process.

    Models the occasional CPU-load spikes of Fig. 1a (lab sessions,
    assignment deadlines): sessions arrive as a Poisson process, each
    adding a constant magnitude for an exponential duration; the train's
    value is the sum of active sessions. *)

type t

val create :
  rng:Rm_stats.Rng.t ->
  rate_per_s:float ->
  magnitude:(Rm_stats.Rng.t -> float) ->
  mean_duration_s:float ->
  unit ->
  t
(** [rate_per_s >= 0]; [rate_per_s = 0] gives a permanently-zero train.
    [mean_duration_s > 0]. *)

val advance : t -> now:float -> float
(** Move the train to absolute time [now] (non-decreasing across calls),
    processing arrivals and expiries, and return the current sum of
    active spike magnitudes. *)

val active : t -> int
(** Number of live sessions after the last [advance]. *)

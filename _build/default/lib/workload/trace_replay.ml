type series = { times : float array; values : float array }

let series ~times ~values =
  let n = Array.length times in
  if n = 0 then invalid_arg "Trace_replay.series: empty";
  if Array.length values <> n then
    invalid_arg "Trace_replay.series: length mismatch";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Trace_replay.series: times must be strictly increasing"
  done;
  { times = Array.copy times; values = Array.copy values }

(* Largest index with times.(i) <= t, or 0 when t precedes the trace. *)
let value_at s t =
  let n = Array.length s.times in
  if t <= s.times.(0) then s.values.(0)
  else if t >= s.times.(n - 1) then s.values.(n - 1)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if s.times.(mid) <= t then lo := mid else hi := mid
    done;
    s.values.(!lo)
  end

let duration s = s.times.(Array.length s.times - 1)

type node_trace = {
  load : series;
  util_pct : series;
  mem_used_gb : series;
  users : series;
}

let make_node ~times ~load ~util_pct ~mem_used_gb ~users =
  {
    load = series ~times ~values:load;
    util_pct = series ~times ~values:util_pct;
    mem_used_gb = series ~times ~values:mem_used_gb;
    users = series ~times ~values:users;
  }

let to_csv traces =
  if traces = [] then invalid_arg "Trace_replay.to_csv: no traces";
  let times = (List.hd traces).load.times in
  List.iter
    (fun tr ->
      if tr.load.times <> times then
        invalid_arg "Trace_replay.to_csv: traces must share a time axis")
    traces;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time_s,node,load,util_pct,mem_used_gb,users\n";
  Array.iter
    (fun t ->
      List.iteri
        (fun node tr ->
          Buffer.add_string buf
            (Printf.sprintf "%.3f,%d,%.4f,%.4f,%.4f,%.1f\n" t node
               (value_at tr.load t) (value_at tr.util_pct t)
               (value_at tr.mem_used_gb t) (value_at tr.users t)))
        traces)
    times;
  Buffer.contents buf

let of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> failwith "Trace_replay.of_csv: empty input"
  | header :: rows ->
    if String.trim header <> "time_s,node,load,util_pct,mem_used_gb,users" then
      failwith "Trace_replay.of_csv: unexpected header";
    (* node -> (time, load, util, mem, users) in input order *)
    let per_node = Hashtbl.create 16 in
    List.iteri
      (fun lineno row ->
        match String.split_on_char ',' row with
        | [ t; node; load; util; mem; users ] ->
          (try
             let node = int_of_string (String.trim node) in
             let tup =
               ( float_of_string t, float_of_string load,
                 float_of_string util, float_of_string mem,
                 float_of_string users )
             in
             Hashtbl.replace per_node node
               (tup :: Option.value (Hashtbl.find_opt per_node node) ~default:[])
           with Failure _ ->
             failwith
               (Printf.sprintf "Trace_replay.of_csv: bad number on line %d"
                  (lineno + 2)))
        | _ ->
          failwith
            (Printf.sprintf "Trace_replay.of_csv: bad row on line %d" (lineno + 2)))
      rows;
    let node_count = Hashtbl.length per_node in
    List.init node_count (fun node ->
        match Hashtbl.find_opt per_node node with
        | None ->
          failwith
            (Printf.sprintf "Trace_replay.of_csv: missing node %d" node)
        | Some rows ->
          let rows = Array.of_list (List.rev rows) in
          let col f = Array.map f rows in
          make_node
            ~times:(col (fun (t, _, _, _, _) -> t))
            ~load:(col (fun (_, l, _, _, _) -> l))
            ~util_pct:(col (fun (_, _, u, _, _) -> u))
            ~mem_used_gb:(col (fun (_, _, _, m, _) -> m))
            ~users:(col (fun (_, _, _, _, us) -> us)))

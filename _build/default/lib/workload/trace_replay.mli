(** Recorded node-attribute traces and their replay.

    The paper's Fig. 1 characterizes two days of *measured* cluster
    behaviour; this module lets the simulator run against such recorded
    data instead of the stochastic models: capture a trace (from a live
    {!World} via [World.record_traces], or from a real cluster exported
    as CSV) and build a replay world from it. Series are step functions
    — a query returns the most recent sample at or before the query
    time (the first sample before that). *)

type series

val series : times:float array -> values:float array -> series
(** Requires equal non-zero lengths and strictly increasing times. *)

val value_at : series -> float -> float
val duration : series -> float
(** Time of the last sample. *)

type node_trace = {
  load : series;
  util_pct : series;
  mem_used_gb : series;
  users : series;
}

val make_node :
  times:float array ->
  load:float array ->
  util_pct:float array ->
  mem_used_gb:float array ->
  users:float array ->
  node_trace
(** All attributes share one time axis. *)

(** {2 CSV round-trip}

    Long form with header [time_s,node,load,util_pct,mem_used_gb,users];
    rows must be grouped by time (all nodes for t₀, then t₁, …) as
    {!to_csv} produces. *)

val to_csv : node_trace list -> string
val of_csv : string -> node_trace list
(** Raises [Failure] with a line number on malformed input. *)

test/main.mli:

test/test_apps.ml: Alcotest Hashtbl List Option Rm_apps Rm_mpisim

test/test_cluster.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rm_cluster

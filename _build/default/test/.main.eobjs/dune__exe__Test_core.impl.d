test/test_core.ml: Alcotest Array Float List Option Printf QCheck QCheck_alcotest Rm_cluster Rm_core Rm_monitor Rm_stats

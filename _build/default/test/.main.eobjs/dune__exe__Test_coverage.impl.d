test/test_coverage.ml: Alcotest Array Buffer Format List Rm_apps Rm_cluster Rm_core Rm_experiments Rm_mpisim Rm_stats Rm_workload String

test/test_edge.ml: Alcotest Array Float List Rm_apps Rm_cluster Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_netsim Rm_stats Rm_workload

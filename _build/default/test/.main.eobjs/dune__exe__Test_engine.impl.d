test/test_engine.ml: Alcotest Gen List QCheck QCheck_alcotest Rm_engine

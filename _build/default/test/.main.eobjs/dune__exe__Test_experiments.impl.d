test/test_experiments.ml: Alcotest Array Float List Rm_apps Rm_cluster Rm_core Rm_experiments Rm_monitor Rm_mpisim Rm_sched Rm_stats Rm_workload String

test/test_forecast.ml: Alcotest Array Float List Rm_cluster Rm_forecast Rm_monitor Rm_stats Rm_workload

test/test_madm.ml: Alcotest Array List Rm_cluster Rm_core Rm_monitor Rm_stats Rm_workload

test/test_mpisim.ml: Alcotest Float Gen List QCheck QCheck_alcotest Rm_cluster Rm_core Rm_mpisim Rm_workload

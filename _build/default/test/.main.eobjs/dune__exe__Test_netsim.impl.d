test/test_netsim.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rm_cluster Rm_netsim

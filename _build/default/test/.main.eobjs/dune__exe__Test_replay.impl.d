test/test_replay.ml: Alcotest List Printf Rm_cluster Rm_core Rm_monitor Rm_stats Rm_workload

test/test_sched.ml: Alcotest Float List QCheck QCheck_alcotest Rm_apps Rm_cluster Rm_core Rm_engine Rm_monitor Rm_mpisim Rm_netsim Rm_sched Rm_stats Rm_workload String

test/test_synthetic.ml: Alcotest Float Hashtbl List Option Rm_apps Rm_cluster Rm_core Rm_experiments Rm_mpisim Rm_workload String

test/test_workload.ml: Alcotest Array Float List Rm_cluster Rm_engine Rm_netsim Rm_stats Rm_workload

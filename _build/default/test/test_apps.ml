(* Tests for rm_apps: miniMD and miniFE proxy models. *)

module App = Rm_mpisim.App
module Minimd = Rm_apps.Minimd
module Minife = Rm_apps.Minife

let phase_bytes (phase : App.phase) =
  List.fold_left (fun acc (_, _, b) -> acc +. b) 0.0 phase.App.messages

(* --- miniMD -------------------------------------------------------------- *)

let test_minimd_atom_count () =
  (* §5.1: s = 8..48 gives 2K–442K atoms. *)
  Alcotest.(check int) "s=8" 2048 (Minimd.atoms (Minimd.default_config ~s:8));
  Alcotest.(check int) "s=48" 442368 (Minimd.atoms (Minimd.default_config ~s:48))

let test_minimd_app_shape () =
  let app = Minimd.app ~config:(Minimd.default_config ~s:16) ~ranks:8 in
  Alcotest.(check int) "ranks" 8 app.App.ranks;
  Alcotest.(check int) "100 steps" 100 app.App.iterations;
  App.validate_phase app (app.App.phase ~iter:0);
  App.validate_phase app (app.App.phase ~iter:1)

let test_minimd_rebuild_steps_heavier () =
  let app = Minimd.app ~config:(Minimd.default_config ~s:16) ~ranks:8 in
  let rebuild = app.App.phase ~iter:0 in
  let steady = app.App.phase ~iter:1 in
  Alcotest.(check bool) "rebuild ships more bytes" true
    (phase_bytes rebuild > phase_bytes steady);
  Alcotest.(check bool) "rebuild costs more flops" true
    (rebuild.App.flops_per_rank 0 > steady.App.flops_per_rank 0)

let test_minimd_thermo_allreduce_cadence () =
  let app = Minimd.app ~config:(Minimd.default_config ~s:16) ~ranks:8 in
  let p0 = app.App.phase ~iter:0 in
  let p5 = app.App.phase ~iter:5 in
  let p10 = app.App.phase ~iter:10 in
  Alcotest.(check bool) "thermo at 0" true (p0.App.allreduce_bytes > 0.0);
  Alcotest.(check (float 1e-9)) "none at 5" 0.0 p5.App.allreduce_bytes;
  Alcotest.(check bool) "thermo at 10" true (p10.App.allreduce_bytes > 0.0)

let test_minimd_bigger_problem_more_work () =
  let app_of s = Minimd.app ~config:(Minimd.default_config ~s) ~ranks:8 in
  let f s = ((app_of s).App.phase ~iter:1).App.flops_per_rank 0 in
  Alcotest.(check bool) "flops grow with s" true (f 32 > f 16);
  let b s = phase_bytes ((app_of s).App.phase ~iter:1) in
  Alcotest.(check bool) "halo grows with s" true (b 32 > b 16);
  (* Surface-to-volume: bytes grow slower than flops. *)
  Alcotest.(check bool) "surface scaling" true (b 32 /. b 16 < f 32 /. f 16)

let test_minimd_strong_scaling_splits_work () =
  let f ranks =
    let app = Minimd.app ~config:(Minimd.default_config ~s:32) ~ranks in
    (app.App.phase ~iter:1).App.flops_per_rank 0
  in
  Alcotest.(check (float 1.0)) "4x ranks = 1/4 flops" (f 8 /. 4.0) (f 32)

let test_minimd_messages_match_grid () =
  let app = Minimd.app ~config:(Minimd.default_config ~s:16) ~ranks:8 in
  let phase = app.App.phase ~iter:1 in
  (* 2x2x2 grid: every rank has exactly 3 distinct neighbours (each
     direction wraps onto the same neighbour). *)
  let per_rank = Hashtbl.create 8 in
  List.iter
    (fun (src, _, _) ->
      Hashtbl.replace per_rank src (1 + Option.value (Hashtbl.find_opt per_rank src) ~default:0))
    phase.App.messages;
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "3 neighbours" 3 n) per_rank;
  Alcotest.(check int) "all ranks send" 8 (Hashtbl.length per_rank)

let test_minimd_validation () =
  Alcotest.(check bool) "bad s" true
    (try ignore (Minimd.app ~config:(Minimd.default_config ~s:0) ~ranks:4); false
     with Invalid_argument _ -> true)

(* --- miniFE -------------------------------------------------------------- *)

let test_minife_rows () =
  Alcotest.(check int) "nx=48" (49 * 49 * 49) (Minife.rows (Minife.default_config ~nx:48))

let test_minife_app_shape () =
  let app = Minife.app ~config:(Minife.default_config ~nx:96) ~ranks:8 in
  Alcotest.(check int) "ranks" 8 app.App.ranks;
  Alcotest.(check int) "201 steps (assembly + 200 CG)" 201 app.App.iterations;
  App.validate_phase app (app.App.phase ~iter:0);
  App.validate_phase app (app.App.phase ~iter:1)

let test_minife_assembly_no_comm () =
  let app = Minife.app ~config:(Minife.default_config ~nx:96) ~ranks:8 in
  let assembly = app.App.phase ~iter:0 in
  let cg = app.App.phase ~iter:1 in
  Alcotest.(check int) "assembly: no messages" 0 (List.length assembly.App.messages);
  Alcotest.(check (float 1e-9)) "assembly: no allreduce" 0.0 assembly.App.allreduce_bytes;
  Alcotest.(check bool) "assembly heavier than CG" true
    (assembly.App.flops_per_rank 0 > cg.App.flops_per_rank 0);
  Alcotest.(check bool) "CG has halo" true (List.length cg.App.messages > 0);
  Alcotest.(check (float 1e-9)) "CG dot products" 16.0 cg.App.allreduce_bytes

let test_minife_scaling () =
  let f nx =
    let app = Minife.app ~config:(Minife.default_config ~nx) ~ranks:8 in
    (app.App.phase ~iter:1).App.flops_per_rank 0
  in
  Alcotest.(check bool) "work grows ~cubically" true (f 96 /. f 48 > 6.0)

let test_minife_comm_lighter_than_minimd () =
  (* The paper profiles miniFE at 25-60% comm vs miniMD 40-80%: per unit
     of compute, miniFE ships fewer bytes. *)
  (* At the paper's configurations miniFE problems carry far more
     elements per rank than miniMD (117k-57M rows vs 2k-442k atoms), so
     its surface-to-volume ratio is better despite a chattier kernel. *)
  let md = Minimd.app ~config:(Minimd.default_config ~s:16) ~ranks:8 in
  let fe = Minife.app ~config:(Minife.default_config ~nx:144) ~ranks:8 in
  let ratio app iter =
    let p = app.App.phase ~iter in
    phase_bytes p /. p.App.flops_per_rank 0
  in
  Alcotest.(check bool) "bytes per flop lower for miniFE" true
    (ratio fe 1 < ratio md 1)

let test_minife_names () =
  Alcotest.(check string) "name" "miniFE(nx=96,p=8)"
    (Minife.name (Minife.default_config ~nx:96) ~ranks:8);
  Alcotest.(check string) "md name" "miniMD(s=16,p=32)"
    (Minimd.name (Minimd.default_config ~s:16) ~ranks:32)

let suites =
  [
    ( "apps.minimd",
      [
        Alcotest.test_case "atom count" `Quick test_minimd_atom_count;
        Alcotest.test_case "app shape" `Quick test_minimd_app_shape;
        Alcotest.test_case "rebuild heavier" `Quick test_minimd_rebuild_steps_heavier;
        Alcotest.test_case "thermo cadence" `Quick test_minimd_thermo_allreduce_cadence;
        Alcotest.test_case "bigger problem" `Quick test_minimd_bigger_problem_more_work;
        Alcotest.test_case "strong scaling" `Quick test_minimd_strong_scaling_splits_work;
        Alcotest.test_case "messages match grid" `Quick test_minimd_messages_match_grid;
        Alcotest.test_case "validation" `Quick test_minimd_validation;
      ] );
    ( "apps.minife",
      [
        Alcotest.test_case "rows" `Quick test_minife_rows;
        Alcotest.test_case "app shape" `Quick test_minife_app_shape;
        Alcotest.test_case "assembly no comm" `Quick test_minife_assembly_no_comm;
        Alcotest.test_case "scaling" `Quick test_minife_scaling;
        Alcotest.test_case "lighter comm than miniMD" `Quick
          test_minife_comm_lighter_than_minimd;
        Alcotest.test_case "names" `Quick test_minife_names;
      ] );
  ]

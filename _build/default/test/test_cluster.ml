(* Tests for rm_cluster: nodes, topology paths, cluster builders. *)

module Node = Rm_cluster.Node
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster

let check_float = Alcotest.(check (float 1e-9))

let small_topo () =
  (* 2 switches: nodes 0,1 on switch 0; nodes 2,3,4 on switch 1. *)
  Topology.create ~node_switch:[| 0; 0; 1; 1; 1 |] ~switches:2 ()

(* --- Node ----------------------------------------------------------------- *)

let test_node_make_valid () =
  let n = Node.make ~id:3 ~hostname:"x" ~cores:8 ~freq_ghz:2.5 ~mem_gb:16.0 ~switch:1 in
  Alcotest.(check int) "id" 3 n.Node.id;
  Alcotest.(check bool) "flops positive" true (Node.flops_per_sec n > 0.0)

let test_node_make_invalid () =
  Alcotest.check_raises "zero cores"
    (Invalid_argument "Node.make: non-positive core count") (fun () ->
      ignore (Node.make ~id:0 ~hostname:"x" ~cores:0 ~freq_ghz:1.0 ~mem_gb:1.0 ~switch:0))

(* --- Topology --------------------------------------------------------------- *)

let test_topology_counts () =
  let t = small_topo () in
  Alcotest.(check int) "nodes" 5 (Topology.node_count t);
  Alcotest.(check int) "switches" 2 (Topology.switch_count t);
  (* 5 access links + 2 uplinks. *)
  Alcotest.(check int) "links" 7 (Topology.link_count t)

let test_topology_switch_membership () =
  let t = small_topo () in
  Alcotest.(check (list int)) "switch 0" [ 0; 1 ] (Topology.nodes_of_switch t 0);
  Alcotest.(check (list int)) "switch 1" [ 2; 3; 4 ] (Topology.nodes_of_switch t 1);
  Alcotest.(check int) "node 3 on switch 1" 1 (Topology.switch_of_node t 3)

let test_topology_same_switch_path () =
  let t = small_topo () in
  let path = Topology.path t 0 1 in
  Alcotest.(check int) "2 links" 2 (List.length path);
  Alcotest.(check int) "2 hops" 2 (Topology.hops t 0 1)

let test_topology_cross_switch_path () =
  let t = small_topo () in
  let path = Topology.path t 0 4 in
  Alcotest.(check int) "4 links" 4 (List.length path);
  (* access(0), uplink(0), uplink(1), access(4) in order. *)
  let ids = List.map (fun (l : Topology.link) -> l.Topology.link_id) path in
  Alcotest.(check (list int)) "link ids" [ 0; 5; 6; 4 ] ids

let test_topology_self_path () =
  let t = small_topo () in
  Alcotest.(check int) "empty" 0 (List.length (Topology.path t 2 2));
  check_float "zero latency" 0.0 (Topology.base_latency_us t 2 2)

let test_topology_latency_monotone () =
  let t = small_topo () in
  let same = Topology.base_latency_us t 0 1 in
  let cross = Topology.base_latency_us t 0 2 in
  Alcotest.(check bool) "cross > same" true (cross > same);
  Alcotest.(check bool) "positive" true (same > 0.0)

let test_topology_path_symmetric_length () =
  let t = small_topo () in
  Alcotest.(check int) "symmetric hops" (Topology.hops t 1 4) (Topology.hops t 4 1)

let test_topology_validation () =
  Alcotest.check_raises "bad switch index"
    (Invalid_argument "Topology.create: switch index out of range") (fun () ->
      ignore (Topology.create ~node_switch:[| 0; 5 |] ~switches:2 ()))

let test_topology_custom_capacity () =
  let t =
    Topology.create ~access_mb_s:50.0 ~uplink_mb_s:200.0
      ~node_switch:[| 0; 0 |] ~switches:1 ()
  in
  check_float "access" 50.0 (Topology.access_link t ~node:0).Topology.capacity_mb_s;
  check_float "uplink" 200.0 (Topology.uplink t ~switch:0).Topology.capacity_mb_s

(* --- Cluster ------------------------------------------------------------------ *)

let test_cluster_homogeneous () =
  let c = Cluster.homogeneous ~cores:4 ~nodes_per_switch:[ 2; 3 ] () in
  Alcotest.(check int) "5 nodes" 5 (Cluster.node_count c);
  Alcotest.(check int) "20 cores" 20 (Cluster.total_cores c);
  Alcotest.(check int) "switch of node 4" 1 (Cluster.node c 4).Node.switch

let test_cluster_iitk_shape () =
  let c = Cluster.iitk_reference () in
  Alcotest.(check int) "60 nodes" 60 (Cluster.node_count c);
  Alcotest.(check int) "4 switches" 4
    (Topology.switch_count (Cluster.topology c));
  let nodes = Cluster.nodes c in
  let big = Array.to_list nodes |> List.filter (fun n -> n.Node.cores = 12) in
  let small = Array.to_list nodes |> List.filter (fun n -> n.Node.cores = 8) in
  Alcotest.(check int) "40 big nodes" 40 (List.length big);
  Alcotest.(check int) "20 small nodes" 20 (List.length small);
  List.iter (fun n -> check_float "big freq" 4.6 n.Node.freq_ghz) big;
  List.iter (fun n -> check_float "small freq" 2.8 n.Node.freq_ghz) small;
  (* §5: total = 40*12 + 20*8 = 640 cores. *)
  Alcotest.(check int) "640 cores" 640 (Cluster.total_cores c)

let test_cluster_iitk_hostnames () =
  let c = Cluster.iitk_reference () in
  Alcotest.(check string) "first" "csews1" (Cluster.node c 0).Node.hostname;
  Alcotest.(check string) "last" "csews60" (Cluster.node c 59).Node.hostname;
  (match Cluster.find_by_hostname c "csews17" with
  | Some n -> Alcotest.(check int) "lookup" 16 n.Node.id
  | None -> Alcotest.fail "csews17 missing");
  Alcotest.(check bool) "unknown host" true
    (Cluster.find_by_hostname c "nope" = None)

let test_cluster_every_switch_mixed () =
  (* Each switch should host both 12-core and 8-core machines. *)
  let c = Cluster.iitk_reference () in
  let topo = Cluster.topology c in
  for s = 0 to 3 do
    let members = Topology.nodes_of_switch topo s in
    let cores = List.map (fun i -> (Cluster.node c i).Node.cores) members in
    Alcotest.(check bool)
      (Printf.sprintf "switch %d has 12-core" s)
      true (List.mem 12 cores);
    Alcotest.(check bool)
      (Printf.sprintf "switch %d has 8-core" s)
      true (List.mem 8 cores)
  done

(* --- Sites / federation (§6 extension) ----------------------------------- *)

let fed () =
  Cluster.federated ~cores:8 ~sites:[ ("a", [ 2; 2 ]); ("b", [ 3 ]) ] ()

let test_federated_shape () =
  let c = fed () in
  Alcotest.(check int) "7 nodes" 7 (Cluster.node_count c);
  let t = Cluster.topology c in
  Alcotest.(check int) "3 switches" 3 (Topology.switch_count t);
  Alcotest.(check int) "2 sites" 2 (Topology.site_count t);
  Alcotest.(check int) "switch 2 on site 1" 1 (Topology.site_of_switch t 2);
  Alcotest.(check string) "site-a host" "a1" (Cluster.node c 0).Node.hostname;
  Alcotest.(check string) "site-b host" "b1" (Cluster.node c 4).Node.hostname

let test_federated_paths () =
  let t = Cluster.topology (fed ()) in
  (* same switch: 2; same site, cross switch: 4; cross site: 6. *)
  Alcotest.(check int) "same switch" 2 (Topology.hops t 0 1);
  Alcotest.(check int) "same site" 4 (Topology.hops t 0 2);
  Alcotest.(check int) "cross site" 6 (Topology.hops t 0 5);
  Alcotest.(check bool) "same site check" true (Topology.same_site t 0 2);
  Alcotest.(check bool) "cross site check" false (Topology.same_site t 0 5)

let test_federated_wan_latency () =
  let t = Cluster.topology (fed ()) in
  let intra = Topology.base_latency_us t 0 2 in
  let inter = Topology.base_latency_us t 0 5 in
  Alcotest.(check bool) "WAN dominates" true (inter > intra +. 1000.0)

let test_federated_wan_link () =
  let t = Cluster.topology (fed ()) in
  let w = Topology.wan_link t ~site:0 in
  check_float "wan capacity" 60.0 w.Topology.capacity_mb_s;
  let path = Topology.path t 1 6 in
  Alcotest.(check bool) "path crosses wan" true
    (List.exists (fun (l : Topology.link) -> l.Topology.link_id = w.Topology.link_id) path)

let test_single_site_has_no_wan () =
  let t = small_topo () in
  Alcotest.(check int) "one site" 1 (Topology.site_count t);
  Alcotest.check_raises "no wan"
    (Invalid_argument "Topology.wan_link: single-site topology") (fun () ->
      ignore (Topology.wan_link t ~site:0))

let test_site_validation () =
  Alcotest.check_raises "non-contiguous sites"
    (Invalid_argument "Topology.create: sites must be contiguous from 0")
    (fun () ->
      ignore
        (Topology.create ~switch_site:[| 0; 2 |] ~node_switch:[| 0; 1 |]
           ~switches:2 ()))

let test_cluster_validation () =
  let topo = Topology.create ~node_switch:[| 0 |] ~switches:1 () in
  let bad =
    [ Node.make ~id:0 ~hostname:"a" ~cores:1 ~freq_ghz:1.0 ~mem_gb:1.0 ~switch:0;
      Node.make ~id:1 ~hostname:"b" ~cores:1 ~freq_ghz:1.0 ~mem_gb:1.0 ~switch:0 ]
  in
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Cluster.make: topology/node count mismatch") (fun () ->
      ignore (Cluster.make ~nodes:bad ~topology:topo))

let qcheck = QCheck_alcotest.to_alcotest

let prop_hops_zero_two_or_four =
  QCheck.Test.make ~name:"hops are 0, 2 or 4" ~count:100
    QCheck.(pair (int_bound 59) (int_bound 59))
    (fun (u, v) ->
      let c = Cluster.iitk_reference () in
      let h = Topology.hops (Cluster.topology c) u v in
      if u = v then h = 0 else h = 2 || h = 4)

let suites =
  [
    ( "cluster.node",
      [
        Alcotest.test_case "make valid" `Quick test_node_make_valid;
        Alcotest.test_case "make invalid" `Quick test_node_make_invalid;
      ] );
    ( "cluster.topology",
      [
        Alcotest.test_case "counts" `Quick test_topology_counts;
        Alcotest.test_case "switch membership" `Quick test_topology_switch_membership;
        Alcotest.test_case "same-switch path" `Quick test_topology_same_switch_path;
        Alcotest.test_case "cross-switch path" `Quick test_topology_cross_switch_path;
        Alcotest.test_case "self path" `Quick test_topology_self_path;
        Alcotest.test_case "latency monotone" `Quick test_topology_latency_monotone;
        Alcotest.test_case "path symmetric" `Quick test_topology_path_symmetric_length;
        Alcotest.test_case "validation" `Quick test_topology_validation;
        Alcotest.test_case "custom capacity" `Quick test_topology_custom_capacity;
        qcheck prop_hops_zero_two_or_four;
      ] );
    ( "cluster.federation",
      [
        Alcotest.test_case "shape" `Quick test_federated_shape;
        Alcotest.test_case "paths" `Quick test_federated_paths;
        Alcotest.test_case "wan latency" `Quick test_federated_wan_latency;
        Alcotest.test_case "wan link" `Quick test_federated_wan_link;
        Alcotest.test_case "single site" `Quick test_single_site_has_no_wan;
        Alcotest.test_case "site validation" `Quick test_site_validation;
      ] );
    ( "cluster.cluster",
      [
        Alcotest.test_case "homogeneous" `Quick test_cluster_homogeneous;
        Alcotest.test_case "iitk shape" `Quick test_cluster_iitk_shape;
        Alcotest.test_case "iitk hostnames" `Quick test_cluster_iitk_hostnames;
        Alcotest.test_case "switches mixed" `Quick test_cluster_every_switch_mixed;
        Alcotest.test_case "validation" `Quick test_cluster_validation;
      ] );
  ]

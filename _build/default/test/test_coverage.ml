(* Smoke coverage for rendering/pretty-printing surfaces and the
   experiment generators not exercised elsewhere. *)

module Render = Rm_experiments.Render
module Timeseries = Rm_stats.Timeseries
module Window = Rm_stats.Window

let fmt_str pp v = Format.asprintf "%a" pp v

let test_pp_surfaces () =
  let node =
    Rm_cluster.Node.make ~id:3 ~hostname:"csews4" ~cores:12 ~freq_ghz:4.6
      ~mem_gb:16.0 ~switch:0
  in
  Alcotest.(check bool) "node pp mentions host" true
    (String.length (fmt_str Rm_cluster.Node.pp node) > 0);
  let a =
    Rm_core.Allocation.make ~policy:"x"
      ~entries:[ { Rm_core.Allocation.node = 1; procs = 4 } ]
  in
  Alcotest.(check string) "allocation pp" "x:[n1×4]"
    (fmt_str Rm_core.Allocation.pp a);
  let req = Rm_core.Request.make ~ppn:4 ~alpha:0.25 ~procs:16 () in
  Alcotest.(check bool) "request pp" true
    (String.length (fmt_str Rm_core.Request.pp req) > 0);
  Alcotest.(check bool) "error pp" true
    (String.length (fmt_str Rm_core.Allocation.pp_error Rm_core.Allocation.No_usable_nodes) > 0)

let test_render_series () =
  let buf = Buffer.create 256 in
  Render.series ~name:"x" ~times:(Array.init 100 float_of_int)
    ~values:(Array.init 100 (fun i -> float_of_int (i mod 7)))
    ~max_points:5 buf;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has sparkline" true (String.length s > 100);
  Alcotest.(check bool) "downsampled" true
    (List.length (String.split_on_char '\n' s) < 20)

let test_render_series_mismatch () =
  let buf = Buffer.create 16 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Render.series: length mismatch") (fun () ->
      Render.series ~name:"x" ~times:[| 1.0 |] ~values:[| 1.0; 2.0 |] buf)

let test_timeseries_map_values () =
  let ts = Timeseries.create ~name:"t" () in
  Timeseries.append ts ~time:0.0 ~value:2.0;
  Timeseries.append ts ~time:1.0 ~value:4.0;
  let doubled = Timeseries.map_values ts ~f:(fun v -> v *. 2.0) in
  let _, v = Timeseries.get doubled 1 in
  Alcotest.(check (float 1e-9)) "mapped" 8.0 v;
  Alcotest.(check string) "name preserved" "t" (Timeseries.name doubled)

let test_window_span () =
  Alcotest.(check (float 1e-9)) "span" 42.0 (Window.span (Window.create ~span:42.0))

let test_executor_pp_stats () =
  let w =
    Rm_workload.World.create
      ~cluster:(Rm_cluster.Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 2 ] ())
      ~scenario:Rm_workload.Scenario.quiet ~seed:1
  in
  let a =
    Rm_core.Allocation.make ~policy:"t"
      ~entries:[ { Rm_core.Allocation.node = 0; procs = 2 } ]
  in
  let app = Rm_apps.Synthetic.compute_only ~ranks:2 ~iterations:2 () in
  let stats = Rm_mpisim.Executor.run ~world:w ~allocation:a ~app () in
  Alcotest.(check bool) "stats pp" true
    (String.length (fmt_str Rm_mpisim.Executor.pp_stats stats) > 0)

let test_descriptive_pp_summary () =
  let s = Rm_stats.Descriptive.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "summary pp" true
    (String.length (fmt_str Rm_stats.Descriptive.pp_summary s) > 0)

(* --- experiment generators (trimmed, Slow) -------------------------------- *)

let test_case_study_smoke () =
  let r = Rm_experiments.Case_study.run ~seed:11 ~procs:16 ~s:8 () in
  Alcotest.(check int) "four rows" 4 (List.length r.Rm_experiments.Case_study.rows);
  let t4 = Rm_experiments.Case_study.render_table4 r in
  let f7 = Rm_experiments.Case_study.render_fig7 r in
  Alcotest.(check bool) "table renders" true (String.length t4 > 100);
  Alcotest.(check bool) "fig renders" true (String.length f7 > 100);
  List.iter
    (fun (row : Rm_experiments.Case_study.row) ->
      Alcotest.(check bool) "time positive" true
        (row.Rm_experiments.Case_study.time_s > 0.0))
    r.Rm_experiments.Case_study.rows

let test_minimd_quick_spec () =
  let spec = Rm_experiments.Minimd_sweep.spec ~quick:true ~seed:1 () in
  Alcotest.(check bool) "quick trims" true
    (List.length spec.Rm_experiments.Sweep.sizes < 6
    && spec.Rm_experiments.Sweep.reps < 5);
  Alcotest.(check (float 1e-9)) "alpha 0.3" 0.3 spec.Rm_experiments.Sweep.alpha;
  let fe = Rm_experiments.Minife_sweep.spec ~quick:true ~seed:1 () in
  Alcotest.(check (float 1e-9)) "miniFE alpha 0.4" 0.4
    fe.Rm_experiments.Sweep.alpha

let suites =
  [
    ( "coverage.pp",
      [
        Alcotest.test_case "pp surfaces" `Quick test_pp_surfaces;
        Alcotest.test_case "render series" `Quick test_render_series;
        Alcotest.test_case "render series mismatch" `Quick test_render_series_mismatch;
        Alcotest.test_case "timeseries map" `Quick test_timeseries_map_values;
        Alcotest.test_case "window span" `Quick test_window_span;
        Alcotest.test_case "executor pp" `Quick test_executor_pp_stats;
        Alcotest.test_case "summary pp" `Quick test_descriptive_pp_summary;
      ] );
    ( "coverage.experiments",
      [
        Alcotest.test_case "case study" `Slow test_case_study_smoke;
        Alcotest.test_case "sweep specs" `Quick test_minimd_quick_spec;
      ] );
  ]

(* Tests for rm_engine: event queue ordering/cancellation, sim clock. *)

module Eq = Rm_engine.Event_queue
module Sim = Rm_engine.Sim

let check_float = Alcotest.(check (float 1e-9))

(* --- Event_queue ---------------------------------------------------------- *)

let test_queue_orders_by_time () =
  let q = Eq.create () in
  ignore (Eq.push q ~time:3.0 "c");
  ignore (Eq.push q ~time:1.0 "a");
  ignore (Eq.push q ~time:2.0 "b");
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_queue_fifo_at_equal_times () =
  let q = Eq.create () in
  ignore (Eq.push q ~time:1.0 "first");
  ignore (Eq.push q ~time:1.0 "second");
  ignore (Eq.push q ~time:1.0 "third");
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> "?" in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ]
    [ a; b; c ]

let test_queue_cancel () =
  let q = Eq.create () in
  let _a = Eq.push q ~time:1.0 "a" in
  let b = Eq.push q ~time:2.0 "b" in
  ignore (Eq.push q ~time:3.0 "c");
  Eq.cancel q b;
  Alcotest.(check int) "two live" 2 (Eq.length q);
  let pop () = match Eq.pop q with Some (_, x) -> x | None -> "?" in
  let x = pop () in
  let y = pop () in
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ] [ x; y ];
  Alcotest.(check bool) "now empty" true (Eq.is_empty q)

let test_queue_cancel_idempotent () =
  let q = Eq.create () in
  let h = Eq.push q ~time:1.0 () in
  Eq.cancel q h;
  Eq.cancel q h;
  Alcotest.(check int) "still zero" 0 (Eq.length q)

let test_queue_peek_skips_dead () =
  let q = Eq.create () in
  let h = Eq.push q ~time:1.0 "dead" in
  ignore (Eq.push q ~time:2.0 "live");
  Eq.cancel q h;
  Alcotest.(check (option (float 1e-9))) "peek live" (Some 2.0) (Eq.peek_time q)

let test_queue_many_events () =
  let q = Eq.create () in
  let n = 2000 in
  (* Push in a scrambled but deterministic order. *)
  for i = 0 to n - 1 do
    let t = float_of_int ((i * 7919) mod n) in
    ignore (Eq.push q ~time:t ())
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Eq.pop q with
    | None -> ()
    | Some (t, ()) ->
      Alcotest.(check bool) "non-decreasing" true (t >= !last);
      last := t;
      incr count;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" n !count

(* --- Sim -------------------------------------------------------------------- *)

let test_sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:2.0 (fun _ -> log := 2 :: !log));
  ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> log := 1 :: !log));
  Sim.run_until sim 10.0;
  Alcotest.(check (list int)) "in time order" [ 1; 2 ] (List.rev !log);
  check_float "clock at horizon" 10.0 (Sim.now sim)

let test_sim_past_rejected () =
  let sim = Sim.create ~start:5.0 () in
  Alcotest.check_raises "past" (Invalid_argument "Sim.schedule_at: time in the past")
    (fun () -> ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> ())))

let test_sim_horizon_stops () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule_at sim ~time:20.0 (fun _ -> fired := true));
  Sim.run_until sim 10.0;
  Alcotest.(check bool) "not yet" false !fired;
  Sim.run_until sim 30.0;
  Alcotest.(check bool) "now fired" true !fired

let test_sim_reschedule_during_run () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick s =
    incr count;
    if !count < 5 then ignore (Sim.schedule_after s ~delay:1.0 tick)
  in
  ignore (Sim.schedule_after sim ~delay:0.0 tick);
  Sim.run_until sim 100.0;
  Alcotest.(check int) "self-rescheduling chain" 5 !count

let test_sim_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.every sim ~period:10.0 ~until:35.0 (fun _ -> incr count);
  Sim.run_until sim 100.0;
  (* Fires at 0, 10, 20, 30. *)
  Alcotest.(check int) "4 ticks" 4 !count

let test_sim_every_with_jitter () =
  let sim = Sim.create () in
  let times = ref [] in
  Sim.every sim
    ~jitter:(fun () -> 2.5)
    ~period:10.0 ~until:40.0
    (fun s -> times := Sim.now s :: !times);
  Sim.run_until sim 100.0;
  (* Fires at 0, 12.5, 25, 37.5. *)
  Alcotest.(check int) "jittered ticks" 4 (List.length !times)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:5.0 (fun _ -> fired := true) in
  Sim.cancel sim h;
  Sim.run_until sim 10.0;
  Alcotest.(check bool) "cancelled" false !fired

let test_sim_clock_during_callback () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  ignore (Sim.schedule_at sim ~time:7.0 (fun s -> seen := Sim.now s));
  Sim.run_until sim 10.0;
  check_float "clock is event time inside callback" 7.0 !seen

let test_sim_pending () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1.0 (fun _ -> ()));
  ignore (Sim.schedule_at sim ~time:2.0 (fun _ -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.pending sim);
  ignore (Sim.step sim);
  Alcotest.(check int) "one pending" 1 (Sim.pending sim)

let qcheck = QCheck_alcotest.to_alcotest

let prop_queue_pops_sorted =
  QCheck.Test.make ~name:"event queue pops in non-decreasing time order"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 100) (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> ignore (Eq.push q ~time:t ())) times;
      let rec drain last n =
        match Eq.pop q with
        | None -> n = List.length times
        | Some (t, ()) -> t >= last && drain t (n + 1)
      in
      drain neg_infinity 0)

let suites =
  [
    ( "engine.event_queue",
      [
        Alcotest.test_case "orders by time" `Quick test_queue_orders_by_time;
        Alcotest.test_case "fifo at equal times" `Quick
          test_queue_fifo_at_equal_times;
        Alcotest.test_case "cancel" `Quick test_queue_cancel;
        Alcotest.test_case "cancel idempotent" `Quick test_queue_cancel_idempotent;
        Alcotest.test_case "peek skips dead" `Quick test_queue_peek_skips_dead;
        Alcotest.test_case "many events" `Quick test_queue_many_events;
        qcheck prop_queue_pops_sorted;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "schedule order" `Quick test_sim_schedule_order;
        Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
        Alcotest.test_case "horizon stops" `Quick test_sim_horizon_stops;
        Alcotest.test_case "reschedule during run" `Quick
          test_sim_reschedule_during_run;
        Alcotest.test_case "every" `Quick test_sim_every;
        Alcotest.test_case "every with jitter" `Quick test_sim_every_with_jitter;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "clock during callback" `Quick
          test_sim_clock_during_callback;
        Alcotest.test_case "pending" `Quick test_sim_pending;
      ] );
  ]

(* Tests for rm_forecast: predictors and the adaptive forecaster. *)

module P = Rm_forecast.Predictor
module F = Rm_forecast.Forecaster
module Rng = Rm_stats.Rng

let check_float = Alcotest.(check (float 1e-9))

let predict_exn model history =
  match P.predict model ~history with
  | Some v -> v
  | None -> Alcotest.fail "expected prediction"

let test_empty_history () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (P.name m) true (P.predict m ~history:[||] = None))
    P.default_family

let test_last_value () =
  check_float "persistence" 7.0 (predict_exn P.Last_value [| 1.0; 7.0 |])

let test_running_mean () =
  check_float "mean-2 over tail" 5.0
    (predict_exn (P.Running_mean 2) [| 100.0; 4.0; 6.0 |]);
  check_float "window larger than history" 4.0
    (predict_exn (P.Running_mean 10) [| 2.0; 6.0 |])

let test_sliding_median () =
  check_float "median-3" 5.0
    (predict_exn (P.Sliding_median 3) [| 0.0; 4.0; 5.0; 90.0 |])

let test_exponential_smoothing () =
  (* gamma=1: pure persistence. *)
  check_float "gamma 1" 3.0
    (predict_exn (P.Exponential_smoothing 1.0) [| 9.0; 3.0 |]);
  (* constant series: prediction equals the constant. *)
  check_float "constant" 2.0
    (predict_exn (P.Exponential_smoothing 0.4) [| 2.0; 2.0; 2.0 |])

let test_ar1_linear_trend () =
  (* y_{t+1} = y_t + 1 is exactly AR(1) with a=1, b=1. *)
  let history = Array.init 10 (fun i -> float_of_int i) in
  check_float "extends trend" 10.0 (predict_exn P.Ar1 history)

let test_ar1_constant_fallback () =
  check_float "constant series" 5.0 (predict_exn P.Ar1 [| 5.0; 5.0; 5.0; 5.0 |])

let test_validate () =
  Alcotest.(check bool) "bad window" true
    (try P.validate (P.Running_mean 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad gamma" true
    (try P.validate (P.Exponential_smoothing 1.5); false
     with Invalid_argument _ -> true)

(* --- Forecaster ----------------------------------------------------------- *)

let test_forecaster_empty () =
  let f = F.create () in
  Alcotest.(check bool) "no prediction" true (F.predict f = None);
  Alcotest.(check bool) "no best model" true (F.best_model f = None)

let test_forecaster_predicts_after_data () =
  let f = F.create () in
  F.observe f 1.0;
  Alcotest.(check bool) "prediction available" true (F.predict f <> None)

let test_forecaster_constant_signal_exact () =
  let f = F.create () in
  for _ = 1 to 30 do
    F.observe f 4.2
  done;
  match F.predict f with
  | Some p -> check_float "constant predicted exactly" 4.2 p
  | None -> Alcotest.fail "no prediction"

let test_forecaster_picks_persistence_for_trend () =
  (* On a steep linear ramp, AR(1) (which extrapolates) must beat the
     wide-window means. *)
  let f = F.create () in
  for i = 1 to 60 do
    F.observe f (float_of_int i *. 2.0)
  done;
  match F.best_model f with
  | Some m ->
    Alcotest.(check bool)
      ("winner suits a ramp: " ^ P.name m)
      true
      (match m with
      | P.Ar1 | P.Last_value | P.Exponential_smoothing _ -> true
      | P.Running_mean k | P.Sliding_median k -> k <= 5)
  | None -> Alcotest.fail "no winner"

let test_forecaster_adaptive_beats_worst_model () =
  (* On a noisy mean-reverting signal, the adaptive choice must be at
     least as good as the worst family member. *)
  let rng = Rng.create 5 in
  let f = F.create () in
  let adaptive_err = ref 0.0 and n = ref 0 in
  let signal () = 2.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.5 in
  for _ = 1 to 200 do
    let y = signal () in
    (match F.predict f with
    | Some p ->
      adaptive_err := !adaptive_err +. Float.abs (p -. y);
      incr n
    | None -> ());
    F.observe f y
  done;
  let adaptive_mae = !adaptive_err /. float_of_int !n in
  let worst =
    List.fold_left (fun acc (_, e) -> Float.max acc e) 0.0 (F.errors f)
  in
  Alcotest.(check bool) "adaptive <= worst" true (adaptive_mae <= worst +. 1e-9)

let test_forecaster_history_bounded () =
  let f = F.create ~capacity:16 () in
  for i = 1 to 100 do
    F.observe f (float_of_int i)
  done;
  Alcotest.(check int) "bounded" 16 (F.history_length f)

let test_forecaster_errors_populated () =
  let f = F.create () in
  for i = 1 to 10 do
    F.observe f (float_of_int (i mod 3))
  done;
  Alcotest.(check int) "every model scored" (List.length P.default_family)
    (List.length (F.errors f))

(* --- Monitor_forecast -------------------------------------------------------- *)

module MF = Rm_forecast.Monitor_forecast
module World = Rm_workload.World
module Snapshot = Rm_monitor.Snapshot

let mf_world () =
  World.create
    ~cluster:(Rm_cluster.Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] ())
    ~scenario:Rm_workload.Scenario.normal ~seed:21

let test_mf_predicts_after_training () =
  let w = mf_world () in
  let mf = MF.create ~node_count:6 in
  for i = 1 to 20 do
    World.advance w ~now:(float_of_int i *. 60.0);
    MF.observe mf (Snapshot.of_truth ~time:(World.now w) ~world:w)
  done;
  Alcotest.(check int) "20 observations" 20 (MF.observations mf);
  for node = 0 to 5 do
    match MF.predicted_load mf ~node with
    | Some p -> Alcotest.(check bool) "non-negative" true (p >= 0.0)
    | None -> Alcotest.fail "no prediction after training"
  done

let test_mf_predict_snapshot_rewrites_load () =
  let w = mf_world () in
  let mf = MF.create ~node_count:6 in
  for i = 1 to 20 do
    World.advance w ~now:(float_of_int i *. 60.0);
    MF.observe mf (Snapshot.of_truth ~time:(World.now w) ~world:w)
  done;
  let snap = Snapshot.of_truth ~time:(World.now w) ~world:w in
  let predicted = MF.predict_snapshot mf snap in
  Alcotest.(check int) "same usable set"
    (List.length (Snapshot.usable snap))
    (List.length (Snapshot.usable predicted));
  List.iter
    (fun node ->
      match (Snapshot.node_info predicted node, MF.predicted_load mf ~node) with
      | Some info, Some p ->
        Alcotest.(check (float 1e-9)) "load replaced by forecast" p
          info.Snapshot.load.Rm_stats.Running_means.m1
      | _ -> Alcotest.fail "missing info/prediction")
    (Snapshot.usable predicted)

let test_mf_untrained_keeps_measured () =
  let w = mf_world () in
  World.advance w ~now:60.0;
  let mf = MF.create ~node_count:6 in
  let snap = Snapshot.of_truth ~time:60.0 ~world:w in
  let predicted = MF.predict_snapshot mf snap in
  List.iter
    (fun node ->
      match (Snapshot.node_info snap node, Snapshot.node_info predicted node) with
      | Some a, Some b ->
        Alcotest.(check (float 1e-12)) "unchanged"
          a.Snapshot.load.Rm_stats.Running_means.m1
          b.Snapshot.load.Rm_stats.Running_means.m1
      | _ -> Alcotest.fail "missing info")
    (Snapshot.usable snap)

let suites =
  [
    ( "forecast.predictor",
      [
        Alcotest.test_case "empty history" `Quick test_empty_history;
        Alcotest.test_case "last value" `Quick test_last_value;
        Alcotest.test_case "running mean" `Quick test_running_mean;
        Alcotest.test_case "sliding median" `Quick test_sliding_median;
        Alcotest.test_case "exponential smoothing" `Quick test_exponential_smoothing;
        Alcotest.test_case "ar1 trend" `Quick test_ar1_linear_trend;
        Alcotest.test_case "ar1 constant" `Quick test_ar1_constant_fallback;
        Alcotest.test_case "validate" `Quick test_validate;
      ] );
    ( "forecast.forecaster",
      [
        Alcotest.test_case "empty" `Quick test_forecaster_empty;
        Alcotest.test_case "predicts after data" `Quick
          test_forecaster_predicts_after_data;
        Alcotest.test_case "constant exact" `Quick
          test_forecaster_constant_signal_exact;
        Alcotest.test_case "ramp picks extrapolator" `Quick
          test_forecaster_picks_persistence_for_trend;
        Alcotest.test_case "adaptive beats worst" `Quick
          test_forecaster_adaptive_beats_worst_model;
        Alcotest.test_case "history bounded" `Quick test_forecaster_history_bounded;
        Alcotest.test_case "errors populated" `Quick test_forecaster_errors_populated;
      ] );
    ( "forecast.monitor",
      [
        Alcotest.test_case "predicts after training" `Quick
          test_mf_predicts_after_training;
        Alcotest.test_case "predict_snapshot rewrites load" `Quick
          test_mf_predict_snapshot_rewrites_load;
        Alcotest.test_case "untrained keeps measured" `Quick
          test_mf_untrained_keeps_measured;
      ] );
  ]

(* Tests for rm_core.Madm: PROMETHEE-II, AHP, rankings, plus Spearman. *)

module Madm = Rm_core.Madm
module Saw = Rm_core.Saw
module D = Rm_stats.Descriptive

let check_float = Alcotest.(check (float 1e-9))

let col ?(name = "c") ?(criterion = Saw.Minimize) ?(weight = 1.0) values =
  { Madm.name; criterion; weight; values }

(* --- Spearman ------------------------------------------------------------- *)

let test_spearman_perfect () =
  check_float "identical order" 1.0
    (D.spearman [| 1.0; 2.0; 3.0 |] [| 10.0; 20.0; 30.0 |]);
  check_float "reversed order" (-1.0)
    (D.spearman [| 1.0; 2.0; 3.0 |] [| 3.0; 2.0; 1.0 |])

let test_spearman_ties () =
  (* With ties the coefficient stays within [-1, 1] and is symmetric. *)
  let a = [| 1.0; 1.0; 2.0; 3.0 |] and b = [| 2.0; 1.0; 1.0; 3.0 |] in
  let r1 = D.spearman a b and r2 = D.spearman b a in
  check_float "symmetric" r1 r2;
  Alcotest.(check bool) "bounded" true (r1 >= -1.0 && r1 <= 1.0)

let test_spearman_validation () =
  Alcotest.check_raises "length"
    (Invalid_argument "Descriptive.spearman: length mismatch") (fun () ->
      ignore (D.spearman [| 1.0 |] [| 1.0; 2.0 |]))

(* --- SAW vs PROMETHEE consistency ------------------------------------------ *)

let test_promethee_single_column_order () =
  (* One minimize column: net flows must rank exactly like the values. *)
  let values = [| 3.0; 1.0; 2.0 |] in
  let flows = Madm.promethee_net_flows [ col values ] in
  let rank = Madm.ranking ~scores:flows ~higher_is_better:true in
  Alcotest.(check (list int)) "best is lowest value" [ 1; 2; 0 ] rank

let test_promethee_flows_sum_zero () =
  let flows =
    Madm.promethee_net_flows
      [ col [| 3.0; 1.0; 2.0; 5.0 |];
        col ~criterion:Saw.Maximize ~weight:2.0 [| 1.0; 9.0; 4.0; 2.0 |] ]
  in
  check_float "net flows sum to 0" 0.0 (Array.fold_left ( +. ) 0.0 flows);
  Array.iter
    (fun f -> Alcotest.(check bool) "bounded" true (f >= -1.0 && f <= 1.0))
    flows

let test_promethee_dominated_alternative_last () =
  (* Alternative 0 is worst on every column: it must rank last. *)
  let flows =
    Madm.promethee_net_flows
      [ col [| 9.0; 1.0; 2.0 |]; col ~weight:0.5 [| 9.0; 3.0; 1.0 |] ]
  in
  let rank = Madm.ranking ~scores:flows ~higher_is_better:true in
  Alcotest.(check int) "dominated is last" 0 (List.nth rank 2)

let test_saw_vs_promethee_agree_on_clear_data () =
  (* Widely separated alternatives: both methods give the same order. *)
  let columns =
    [ col ~weight:0.6 [| 10.0; 1.0; 5.0 |];
      col ~criterion:Saw.Maximize ~weight:0.4 [| 1.0; 10.0; 5.0 |] ]
  in
  let saw = Madm.ranking ~scores:(Madm.saw_scores columns) ~higher_is_better:false in
  let pro =
    Madm.ranking ~scores:(Madm.promethee_net_flows columns) ~higher_is_better:true
  in
  Alcotest.(check (list int)) "same ranking" saw pro

let test_single_alternative () =
  let flows = Madm.promethee_net_flows [ col [| 5.0 |] ] in
  check_float "lone alternative has zero flow" 0.0 flows.(0)

(* --- AHP --------------------------------------------------------------------- *)

let test_ahp_identity_uniform () =
  let m = Array.make_matrix 3 3 1.0 in
  let p = Madm.ahp_priorities m in
  Array.iter (fun v -> check_float "uniform" (1.0 /. 3.0) v) p;
  check_float "perfectly consistent" 0.0 (Madm.ahp_consistency_ratio m)

let test_ahp_known_matrix () =
  (* A consistent matrix built from w = (0.6, 0.3, 0.1). *)
  let w = [| 0.6; 0.3; 0.1 |] in
  let m = Array.init 3 (fun i -> Array.init 3 (fun j -> w.(i) /. w.(j))) in
  let p = Madm.ahp_priorities m in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-6)) "recovers weights" w.(i) v)
    p;
  Alcotest.(check bool) "CR ~ 0" true (Madm.ahp_consistency_ratio m < 1e-6)

let test_ahp_inconsistent_has_cr () =
  (* Classic mildly-inconsistent 3x3. *)
  let m =
    [| [| 1.0; 2.0; 6.0 |]; [| 0.5; 1.0; 2.0 |]; [| 1.0 /. 6.0; 0.5; 1.0 |] |]
  in
  let cr = Madm.ahp_consistency_ratio m in
  Alcotest.(check bool) "positive CR" true (cr > 0.0);
  Alcotest.(check bool) "acceptably consistent" true (cr < 0.1)

let test_ahp_rejects_non_reciprocal () =
  let m = [| [| 1.0; 3.0 |]; [| 3.0; 1.0 |] |] in
  Alcotest.check_raises "reciprocal check"
    (Invalid_argument "Madm.ahp: not reciprocal") (fun () ->
      ignore (Madm.ahp_priorities m))

let test_ahp_scores_use_priorities () =
  let columns = [ col [| 1.0; 2.0 |]; col ~criterion:Saw.Maximize [| 1.0; 2.0 |] ] in
  (* Comparisons say column 0 is 9x more important. *)
  let comparisons = [| [| 1.0; 9.0 |]; [| 1.0 /. 9.0; 1.0 |] |] in
  let scores = Madm.ahp_scores ~comparisons ~columns in
  (* Column 0 (minimize) prefers alternative 0, so it must win. *)
  Alcotest.(check bool) "weighted winner" true (scores.(0) < scores.(1))

let test_madm_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Madm: ragged columns")
    (fun () ->
      ignore (Madm.saw_scores [ col [| 1.0 |]; col [| 1.0; 2.0 |] ]));
  Alcotest.check_raises "no columns" (Invalid_argument "Madm: no columns")
    (fun () -> ignore (Madm.saw_scores []))

(* --- Compute_load.columns bridge ------------------------------------------------ *)

let test_compute_load_columns_shape () =
  let cluster =
    Rm_cluster.Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] ()
  in
  let world =
    Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.normal ~seed:2
  in
  Rm_workload.World.advance world ~now:600.0;
  let snap = Rm_monitor.Snapshot.of_truth ~time:600.0 ~world in
  let columns =
    Rm_core.Compute_load.columns snap ~weights:Rm_core.Weights.paper_default
  in
  Alcotest.(check int) "8 attributes (Table 1)" 8 (List.length columns);
  List.iter
    (fun (c : Madm.column) ->
      Alcotest.(check int) "6 nodes" 6 (Array.length c.Madm.values))
    columns;
  (* SAW over the exposed columns equals Compute_load itself. *)
  let cl = Rm_core.Compute_load.of_snapshot snap ~weights:Rm_core.Weights.paper_default in
  let scores = Madm.saw_scores columns in
  List.iteri
    (fun i node ->
      Alcotest.(check (float 1e-12)) "consistent with Compute_load"
        (Rm_core.Compute_load.get cl ~node) scores.(i))
    (Rm_core.Compute_load.usable cl)

let suites =
  [
    ( "stats.spearman",
      [
        Alcotest.test_case "perfect" `Quick test_spearman_perfect;
        Alcotest.test_case "ties" `Quick test_spearman_ties;
        Alcotest.test_case "validation" `Quick test_spearman_validation;
      ] );
    ( "core.madm.promethee",
      [
        Alcotest.test_case "single column order" `Quick
          test_promethee_single_column_order;
        Alcotest.test_case "flows sum zero" `Quick test_promethee_flows_sum_zero;
        Alcotest.test_case "dominated last" `Quick
          test_promethee_dominated_alternative_last;
        Alcotest.test_case "agrees with SAW on clear data" `Quick
          test_saw_vs_promethee_agree_on_clear_data;
        Alcotest.test_case "single alternative" `Quick test_single_alternative;
      ] );
    ( "core.madm.ahp",
      [
        Alcotest.test_case "uniform" `Quick test_ahp_identity_uniform;
        Alcotest.test_case "known matrix" `Quick test_ahp_known_matrix;
        Alcotest.test_case "inconsistent CR" `Quick test_ahp_inconsistent_has_cr;
        Alcotest.test_case "rejects non-reciprocal" `Quick
          test_ahp_rejects_non_reciprocal;
        Alcotest.test_case "scores use priorities" `Quick
          test_ahp_scores_use_priorities;
        Alcotest.test_case "validation" `Quick test_madm_validation;
      ] );
    ( "core.madm.bridge",
      [
        Alcotest.test_case "compute_load columns" `Quick
          test_compute_load_columns_shape;
      ] );
  ]

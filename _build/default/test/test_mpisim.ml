(* Tests for rm_mpisim: placement, 3-D decomposition, cost model,
   collectives, executor. *)

module Allocation = Rm_core.Allocation
module Placement = Rm_mpisim.Placement
module Decomp3d = Rm_mpisim.Decomp3d
module Cost_model = Rm_mpisim.Cost_model
module Collectives = Rm_mpisim.Collectives
module App = Rm_mpisim.App
module Executor = Rm_mpisim.Executor
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario

let check_float = Alcotest.(check (float 1e-9))

let alloc entries =
  Allocation.make ~policy:"test"
    ~entries:(List.map (fun (node, procs) -> { Allocation.node; procs }) entries)

(* --- Placement ----------------------------------------------------------- *)

let test_placement_block_layout () =
  let p = Placement.of_allocation (alloc [ (5, 2); (3, 3) ]) in
  Alcotest.(check int) "ranks" 5 (Placement.ranks p);
  Alcotest.(check int) "rank 0" 5 (Placement.node_of_rank p ~rank:0);
  Alcotest.(check int) "rank 1" 5 (Placement.node_of_rank p ~rank:1);
  Alcotest.(check int) "rank 2" 3 (Placement.node_of_rank p ~rank:2);
  Alcotest.(check int) "rank 4" 3 (Placement.node_of_rank p ~rank:4);
  Alcotest.(check (list int)) "nodes in order" [ 5; 3 ] (Placement.nodes p);
  Alcotest.(check int) "ranks_on 3" 3 (Placement.ranks_on p ~node:3);
  Alcotest.(check int) "ranks_on absent" 0 (Placement.ranks_on p ~node:7);
  Alcotest.(check bool) "same node" true (Placement.same_node p 0 1);
  Alcotest.(check bool) "different nodes" false (Placement.same_node p 1 2)

let test_placement_bounds () =
  let p = Placement.of_allocation (alloc [ (0, 2) ]) in
  Alcotest.check_raises "oob"
    (Invalid_argument "Placement.node_of_rank: rank out of range") (fun () ->
      ignore (Placement.node_of_rank p ~rank:2))

(* --- Decomp3d --------------------------------------------------------------- *)

let test_decomp_cubic () =
  let g = Decomp3d.create ~ranks:8 in
  Alcotest.(check (triple int int int)) "2x2x2" (2, 2, 2) (Decomp3d.dims g);
  let g64 = Decomp3d.create ~ranks:64 in
  Alcotest.(check (triple int int int)) "4x4x4" (4, 4, 4) (Decomp3d.dims g64)

let test_decomp_nontrivial () =
  let g = Decomp3d.create ~ranks:12 in
  let x, y, z = Decomp3d.dims g in
  Alcotest.(check int) "product" 12 (x * y * z);
  Alcotest.(check bool) "sorted" true (x <= y && y <= z);
  Alcotest.(check (triple int int int)) "2x2x3" (2, 2, 3) (x, y, z)

let test_decomp_prime () =
  let g = Decomp3d.create ~ranks:7 in
  Alcotest.(check (triple int int int)) "1x1x7" (1, 1, 7) (Decomp3d.dims g)

let test_decomp_coords_roundtrip () =
  let g = Decomp3d.create ~ranks:24 in
  for rank = 0 to 23 do
    let c = Decomp3d.coords g ~rank in
    Alcotest.(check int) "roundtrip" rank (Decomp3d.rank_of g ~coords:c)
  done

let test_decomp_neighbors_valid () =
  let g = Decomp3d.create ~ranks:16 in
  for rank = 0 to 15 do
    let ns = Decomp3d.neighbors g ~rank in
    Alcotest.(check bool) "no self" false (List.mem rank ns);
    Alcotest.(check bool) "at most 6" true (List.length ns <= 6);
    List.iter
      (fun n -> Alcotest.(check bool) "in range" true (n >= 0 && n < 16))
      ns
  done

let test_decomp_neighbors_symmetric () =
  let g = Decomp3d.create ~ranks:27 in
  for rank = 0 to 26 do
    List.iter
      (fun n ->
        Alcotest.(check bool) "symmetric" true
          (List.mem rank (Decomp3d.neighbors g ~rank:n)))
      (Decomp3d.neighbors g ~rank)
  done

let test_decomp_face_counts_sum_to_six () =
  let g = Decomp3d.create ~ranks:8 in
  for rank = 0 to 7 do
    let total =
      List.fold_left (fun acc (_, c) -> acc + c) 0 (Decomp3d.face_counts g ~rank)
    in
    Alcotest.(check int) "six faces" 6 total
  done

let test_decomp_single_rank () =
  let g = Decomp3d.create ~ranks:1 in
  Alcotest.(check (list int)) "no neighbors" [] (Decomp3d.neighbors g ~rank:0)

(* --- Cost_model ----------------------------------------------------------------- *)

let node ?(cores = 12) ?(freq = 3.0) () =
  Rm_cluster.Node.make ~id:0 ~hostname:"n" ~cores ~freq_ghz:freq ~mem_gb:16.0
    ~switch:0

let test_oversubscription_floor () =
  check_float "idle node, small job" 1.0
    (Cost_model.oversubscription_factor ~background_load:0.0
       ~job_ranks_on_node:4 ~cores:12)

let test_oversubscription_grows () =
  let f =
    Cost_model.oversubscription_factor ~background_load:10.0
      ~job_ranks_on_node:4 ~cores:12
  in
  Alcotest.(check bool) "above 1" true (f > 1.0);
  check_float "formula" (14.0 /. (Cost_model.ht_efficiency *. 12.0)) f

let test_compute_time_scales () =
  let t1 =
    Cost_model.compute_time_s ~node:(node ()) ~background_load:0.0
      ~job_ranks_on_node:1 ~flops:3e9
  in
  check_float "1 second at 3 GHz x 1 flop/cycle" 1.0 t1;
  let t2 =
    Cost_model.compute_time_s ~node:(node ~freq:6.0 ()) ~background_load:0.0
      ~job_ranks_on_node:1 ~flops:3e9
  in
  check_float "faster clock halves time" 0.5 t2

let test_compute_time_loaded_slower () =
  let quiet =
    Cost_model.compute_time_s ~node:(node ()) ~background_load:0.0
      ~job_ranks_on_node:4 ~flops:1e9
  in
  let loaded =
    Cost_model.compute_time_s ~node:(node ()) ~background_load:10.0
      ~job_ranks_on_node:4 ~flops:1e9
  in
  Alcotest.(check bool) "loaded slower" true (loaded > quiet)

let test_message_time () =
  check_float "latency only" 200e-6
    (Cost_model.message_time_s ~latency_us:200.0 ~bandwidth_mb_s:100.0 ~bytes:0.0);
  check_float "1MB at 100MB/s + latency" (0.01 +. 200e-6)
    (Cost_model.message_time_s ~latency_us:200.0 ~bandwidth_mb_s:100.0 ~bytes:1e6)

let test_intra_node_fast () =
  let inter =
    Cost_model.message_time_s ~latency_us:200.0 ~bandwidth_mb_s:100.0 ~bytes:1e6
  in
  let intra = Cost_model.intra_node_time_s ~bytes:1e6 in
  Alcotest.(check bool) "shared memory much faster" true (intra < inter /. 10.0)

(* --- Collectives ------------------------------------------------------------------ *)

let uniform_view ~lat ~bw : Collectives.link_view =
  {
    Collectives.latency_us = (fun ~src:_ ~dst:_ -> lat);
    bandwidth_mb_s = (fun ~src:_ ~dst:_ -> bw);
  }

let test_allreduce_single_rank_free () =
  let p = Placement.of_allocation (alloc [ (0, 1) ]) in
  check_float "free" 0.0
    (Collectives.allreduce_time_s ~placement:p
       ~view:(uniform_view ~lat:100.0 ~bw:100.0)
       ~bytes:8.0)

let test_allreduce_log_stages () =
  let mk ranks =
    (* ranks spread 1/node over [ranks] nodes *)
    Placement.of_allocation (alloc (List.init ranks (fun i -> (i, 1))))
  in
  let view = uniform_view ~lat:100.0 ~bw:100.0 in
  let t8 = Collectives.allreduce_time_s ~placement:(mk 8) ~view ~bytes:8.0 in
  let t16 = Collectives.allreduce_time_s ~placement:(mk 16) ~view ~bytes:8.0 in
  check_float "log2 growth" (4.0 /. 3.0) (t16 /. t8)

let test_allreduce_worse_on_slow_links () =
  let p = Placement.of_allocation (alloc [ (0, 2); (1, 2) ]) in
  let fast =
    Collectives.allreduce_time_s ~placement:p
      ~view:(uniform_view ~lat:70.0 ~bw:118.0) ~bytes:1e5
  in
  let slow =
    Collectives.allreduce_time_s ~placement:p
      ~view:(uniform_view ~lat:500.0 ~bw:10.0) ~bytes:1e5
  in
  Alcotest.(check bool) "slow links cost more" true (slow > fast)

let test_allreduce_single_node_cheap () =
  let together = Placement.of_allocation (alloc [ (0, 8) ]) in
  let spread = Placement.of_allocation (alloc (List.init 8 (fun i -> (i, 1)))) in
  let view = uniform_view ~lat:200.0 ~bw:50.0 in
  let t_together = Collectives.allreduce_time_s ~placement:together ~view ~bytes:8.0 in
  let t_spread = Collectives.allreduce_time_s ~placement:spread ~view ~bytes:8.0 in
  Alcotest.(check bool) "shared memory wins" true (t_together < t_spread)

let test_allreduce_algorithm_switch () =
  (* Tiny payloads: recursive doubling (fewer latency terms) wins; huge
     payloads: ring (bytes/p per step) wins; the dispatcher picks min. *)
  let p = Placement.of_allocation (alloc (List.init 8 (fun i -> (i, 1)))) in
  let view = uniform_view ~lat:200.0 ~bw:100.0 in
  let small = 8.0 and big = 1e8 in
  let rd b = Collectives.allreduce_recursive_doubling_s ~placement:p ~view ~bytes:b in
  let ring b = Collectives.allreduce_ring_s ~placement:p ~view ~bytes:b in
  Alcotest.(check bool) "small: recdbl wins" true (rd small < ring small);
  Alcotest.(check bool) "big: ring wins" true (ring big < rd big);
  check_float "dispatcher small" (rd small)
    (Collectives.allreduce_time_s ~placement:p ~view ~bytes:small);
  check_float "dispatcher big" (ring big)
    (Collectives.allreduce_time_s ~placement:p ~view ~bytes:big)

let test_barrier_and_bcast () =
  let p = Placement.of_allocation (alloc [ (0, 2); (1, 2) ]) in
  let view = uniform_view ~lat:100.0 ~bw:100.0 in
  Alcotest.(check bool) "barrier positive" true
    (Collectives.barrier_time_s ~placement:p ~view > 0.0);
  let b1 = Collectives.bcast_time_s ~placement:p ~view ~bytes:1e3 in
  let b2 = Collectives.bcast_time_s ~placement:p ~view ~bytes:1e6 in
  Alcotest.(check bool) "bigger bcast slower" true (b2 > b1)

(* --- Mapping -------------------------------------------------------------------- *)

module Mapping = Rm_mpisim.Mapping

(* Ranks talk in disjoint heavy pairs (r, r + ranks/2): block placement
   over two nodes severs every pair; the optimum severs none. *)
let paired_app ~ranks =
  let half = ranks / 2 in
  App.make ~name:"paired" ~ranks ~iterations:10
    ~phase:(fun ~iter:_ ->
      {
        App.flops_per_rank = (fun _ -> 1e5);
        messages = List.init half (fun r -> (r, r + half, 1e6));
        allreduce_bytes = 0.0;
      })
    ()

let test_mapping_traffic () =
  let app = paired_app ~ranks:4 in
  let pairs = Mapping.traffic ~app () in
  Alcotest.(check int) "two pairs" 2 (List.length pairs);
  List.iter
    (fun ((a, b), bytes) ->
      Alcotest.(check int) "pair structure" (a + 2) b;
      Alcotest.(check (float 1e-6)) "mean per-iteration bytes" 1e6 bytes)
    pairs

let test_mapping_colocates_heavy_pairs () =
  let app = paired_app ~ranks:8 in
  let allocation = alloc [ (0, 4); (1, 4) ] in
  let r = Mapping.optimize ~app ~allocation in
  Alcotest.(check (float 1e-6)) "block severs all pairs" 4e6
    r.Mapping.default_inter_bytes;
  Alcotest.(check (float 1e-6)) "mapping severs none" 0.0
    r.Mapping.mapped_inter_bytes;
  (* Each pair ends on one node. *)
  for rank = 0 to 3 do
    Alcotest.(check bool) "pair co-located" true
      (Placement.same_node r.Mapping.placement rank (rank + 4))
  done

let test_mapping_fallback_when_block_optimal () =
  (* All traffic already intra-node under block placement. *)
  let app =
    App.make ~name:"local" ~ranks:8 ~iterations:5
      ~phase:(fun ~iter:_ ->
        {
          App.flops_per_rank = (fun _ -> 1e5);
          messages = [ (0, 1, 1e6); (4, 5, 1e6) ];
          allreduce_bytes = 0.0;
        })
      ()
  in
  let allocation = alloc [ (0, 4); (1, 4) ] in
  let r = Mapping.optimize ~app ~allocation in
  Alcotest.(check (float 1e-9)) "block already optimal" 0.0
    r.Mapping.default_inter_bytes;
  Alcotest.(check (float 1e-9)) "no regression" 0.0 r.Mapping.mapped_inter_bytes

let test_mapping_speeds_up_execution () =
  let app = paired_app ~ranks:8 in
  let allocation = alloc [ (0, 4); (1, 4) ] in
  let r = Mapping.optimize ~app ~allocation in
  let run placement =
    let cluster =
      Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 3; 3 ] ()
    in
    let w = World.create ~cluster ~scenario:Scenario.quiet ~seed:7 in
    (Executor.run ~world:w ~allocation ~app ?placement ()).Executor.total_time_s
  in
  let block = run None in
  let mapped = run (Some r.Mapping.placement) in
  Alcotest.(check bool) "mapped faster" true (mapped < block)

let test_placement_custom_validation () =
  let allocation = alloc [ (0, 2); (1, 2) ] in
  Alcotest.(check bool) "wrong counts rejected" true
    (try
       ignore (Placement.custom ~allocation ~node_of_rank:[| 0; 0; 0; 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "foreign node rejected" true
    (try
       ignore (Placement.custom ~allocation ~node_of_rank:[| 0; 0; 7; 7 |]);
       false
     with Invalid_argument _ -> true);
  let p = Placement.custom ~allocation ~node_of_rank:[| 1; 0; 1; 0 |] in
  Alcotest.(check int) "custom honoured" 1 (Placement.node_of_rank p ~rank:0)

let qcheck = QCheck_alcotest.to_alcotest

(* Random sparse communication patterns: the mapper must never do worse
   than block placement (it falls back when packing does not help). *)
let prop_mapping_never_worse =
  QCheck.Test.make ~name:"mapping never increases inter-node bytes" ~count:60
    QCheck.(list_of_size Gen.(1 -- 15)
              (triple (int_bound 7) (int_bound 7) (float_range 1.0 1e6)))
    (fun msgs ->
      let messages =
        List.filter_map
          (fun (a, b, bytes) -> if a = b then None else Some (a, b, bytes))
          msgs
      in
      QCheck.assume (messages <> []);
      let app =
        App.make ~name:"rand" ~ranks:8 ~iterations:4
          ~phase:(fun ~iter:_ ->
            { App.flops_per_rank = (fun _ -> 1.0); messages; allreduce_bytes = 0.0 })
          ()
      in
      let allocation = alloc [ (0, 4); (1, 4) ] in
      let r = Mapping.optimize ~app ~allocation in
      r.Mapping.mapped_inter_bytes <= r.Mapping.default_inter_bytes +. 1e-6)

(* --- Executor --------------------------------------------------------------------- *)

let world () =
  let cluster = Cluster.homogeneous ~cores:8 ~freq_ghz:3.0 ~nodes_per_switch:[ 3; 3 ] () in
  World.create ~cluster ~scenario:Scenario.quiet ~seed:7

let simple_app ~ranks ~iterations ~flops ~bytes =
  App.make ~name:"t" ~ranks ~iterations
    ~phase:(fun ~iter:_ ->
      {
        App.flops_per_rank = (fun _ -> flops);
        messages =
          (if ranks < 2 then []
           else List.init ranks (fun r -> (r, (r + 1) mod ranks, bytes)));
        allreduce_bytes = 8.0;
      })
    ()

let test_executor_rank_mismatch () =
  let w = world () in
  let a = alloc [ (0, 2) ] in
  let app = simple_app ~ranks:4 ~iterations:1 ~flops:1e6 ~bytes:1e3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Executor.run: allocation size does not match app ranks")
    (fun () -> ignore (Executor.run ~world:w ~allocation:a ~app ()))

let test_executor_accounts_time () =
  let w = world () in
  let a = alloc [ (0, 2); (1, 2) ] in
  let app = simple_app ~ranks:4 ~iterations:10 ~flops:1e7 ~bytes:1e4 in
  let before = World.now w in
  let stats = Executor.run ~world:w ~allocation:a ~app () in
  Alcotest.(check bool) "positive time" true (stats.Executor.total_time_s > 0.0);
  Alcotest.(check bool) "world advanced" true
    (World.now w > before +. stats.Executor.total_time_s -. 1e-9);
  Alcotest.(check int) "iterations" 10 stats.Executor.iterations;
  Alcotest.(check bool) "components sum" true
    (Float.abs
       (stats.Executor.compute_time_s +. stats.Executor.comm_time_s
       -. stats.Executor.total_time_s)
    < 1e-6);
  Alcotest.(check bool) "comm fraction in [0,1]" true
    (stats.Executor.comm_fraction >= 0.0 && stats.Executor.comm_fraction <= 1.0)

let test_executor_more_flops_longer () =
  let run flops =
    let w = world () in
    let a = alloc [ (0, 2); (1, 2) ] in
    let app = simple_app ~ranks:4 ~iterations:5 ~flops ~bytes:1e3 in
    (Executor.run ~world:w ~allocation:a ~app ()).Executor.total_time_s
  in
  Alcotest.(check bool) "10x flops longer" true (run 1e8 > run 1e7)

let test_executor_intra_node_cheaper () =
  let run entries =
    let w = world () in
    let app = simple_app ~ranks:4 ~iterations:20 ~flops:1e5 ~bytes:1e5 in
    (Executor.run ~world:w ~allocation:(alloc entries) ~app ()).Executor.total_time_s
  in
  let together = run [ (0, 4) ] in
  let spread = run [ (0, 1); (1, 1); (2, 1); (3, 1) ] in
  Alcotest.(check bool) "one node beats four" true (together < spread)

let test_executor_same_switch_cheaper () =
  let run entries =
    let w = world () in
    let app = simple_app ~ranks:4 ~iterations:20 ~flops:1e5 ~bytes:2e5 in
    (Executor.run ~world:w ~allocation:(alloc entries) ~app ()).Executor.total_time_s
  in
  (* Background is quiet, so the cross-switch penalty is pure latency. *)
  let same_switch = run [ (0, 2); (1, 2) ] in
  let cross_switch = run [ (0, 2); (3, 2) ] in
  Alcotest.(check bool) "same switch no slower" true
    (same_switch <= cross_switch +. 1e-9)

let test_executor_contended_slower () =
  (* Inject a fat background flow crossing the job's link. *)
  let cluster = Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 3; 3 ] () in
  let quiet_world = World.create ~cluster ~scenario:Scenario.quiet ~seed:1 in
  let app = simple_app ~ranks:4 ~iterations:20 ~flops:1e5 ~bytes:5e5 in
  let a = alloc [ (0, 2); (3, 2) ] in
  let t_quiet =
    (Executor.run ~world:quiet_world ~allocation:a ~app ()).Executor.total_time_s
  in
  let busy_world = World.create ~cluster ~scenario:Scenario.busy ~seed:1 in
  World.advance busy_world ~now:3600.0;
  let t_busy =
    (Executor.run ~world:busy_world ~allocation:a ~app ()).Executor.total_time_s
  in
  Alcotest.(check bool) "busy cluster slower" true (t_busy > t_quiet)

let test_executor_load_metric () =
  let w = world () in
  let a = alloc [ (0, 4) ] in
  let app = simple_app ~ranks:4 ~iterations:3 ~flops:1e6 ~bytes:0.0 in
  let stats = Executor.run ~world:w ~allocation:a ~app () in
  (* Quiet cluster: at least the job's own 4 ranks / 8 cores. *)
  Alcotest.(check bool) "load/core >= 0.5" true
    (stats.Executor.mean_load_per_core >= 0.5 -. 1e-9)

let suites =
  [
    ( "mpisim.placement",
      [
        Alcotest.test_case "block layout" `Quick test_placement_block_layout;
        Alcotest.test_case "bounds" `Quick test_placement_bounds;
      ] );
    ( "mpisim.decomp3d",
      [
        Alcotest.test_case "cubic" `Quick test_decomp_cubic;
        Alcotest.test_case "non-trivial" `Quick test_decomp_nontrivial;
        Alcotest.test_case "prime" `Quick test_decomp_prime;
        Alcotest.test_case "coords roundtrip" `Quick test_decomp_coords_roundtrip;
        Alcotest.test_case "neighbors valid" `Quick test_decomp_neighbors_valid;
        Alcotest.test_case "neighbors symmetric" `Quick test_decomp_neighbors_symmetric;
        Alcotest.test_case "face counts" `Quick test_decomp_face_counts_sum_to_six;
        Alcotest.test_case "single rank" `Quick test_decomp_single_rank;
      ] );
    ( "mpisim.cost_model",
      [
        Alcotest.test_case "oversubscription floor" `Quick test_oversubscription_floor;
        Alcotest.test_case "oversubscription grows" `Quick test_oversubscription_grows;
        Alcotest.test_case "compute time scales" `Quick test_compute_time_scales;
        Alcotest.test_case "loaded slower" `Quick test_compute_time_loaded_slower;
        Alcotest.test_case "message time" `Quick test_message_time;
        Alcotest.test_case "intra-node fast" `Quick test_intra_node_fast;
      ] );
    ( "mpisim.collectives",
      [
        Alcotest.test_case "single rank free" `Quick test_allreduce_single_rank_free;
        Alcotest.test_case "log stages" `Quick test_allreduce_log_stages;
        Alcotest.test_case "slow links" `Quick test_allreduce_worse_on_slow_links;
        Alcotest.test_case "single node cheap" `Quick test_allreduce_single_node_cheap;
        Alcotest.test_case "algorithm switch" `Quick test_allreduce_algorithm_switch;
        Alcotest.test_case "barrier and bcast" `Quick test_barrier_and_bcast;
      ] );
    ( "mpisim.mapping",
      [
        Alcotest.test_case "traffic" `Quick test_mapping_traffic;
        Alcotest.test_case "co-locates heavy pairs" `Quick
          test_mapping_colocates_heavy_pairs;
        Alcotest.test_case "fallback" `Quick test_mapping_fallback_when_block_optimal;
        Alcotest.test_case "speeds up execution" `Quick
          test_mapping_speeds_up_execution;
        Alcotest.test_case "custom placement validation" `Quick
          test_placement_custom_validation;
        qcheck prop_mapping_never_worse;
      ] );
    ( "mpisim.executor",
      [
        Alcotest.test_case "rank mismatch" `Quick test_executor_rank_mismatch;
        Alcotest.test_case "accounts time" `Quick test_executor_accounts_time;
        Alcotest.test_case "more flops longer" `Quick test_executor_more_flops_longer;
        Alcotest.test_case "intra-node cheaper" `Quick test_executor_intra_node_cheaper;
        Alcotest.test_case "same switch cheaper" `Quick test_executor_same_switch_cheaper;
        Alcotest.test_case "contended slower" `Quick test_executor_contended_slower;
        Alcotest.test_case "load metric" `Quick test_executor_load_metric;
      ] );
  ]

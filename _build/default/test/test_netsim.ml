(* Tests for rm_netsim: flows, routing, max-min fairness, network view. *)

module Flow = Rm_netsim.Flow
module Routing = Rm_netsim.Routing
module Fairshare = Rm_netsim.Fairshare
module Network = Rm_netsim.Network
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster

let check_float = Alcotest.(check (float 1e-6))

let topo () = Topology.create ~node_switch:[| 0; 0; 1; 1 |] ~switches:2 ()

(* --- Flow -------------------------------------------------------------- *)

let test_flow_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Flow.make: self-loop")
    (fun () -> ignore (Flow.make ~id:0 ~src:1 ~dst:(Flow.Node 1) ~demand_mb_s:1.0));
  Alcotest.check_raises "bad demand"
    (Invalid_argument "Flow.make: non-positive demand") (fun () ->
      ignore (Flow.make ~id:0 ~src:1 ~dst:Flow.External ~demand_mb_s:0.0))

let test_flow_touches () =
  let f = Flow.make ~id:0 ~src:1 ~dst:(Flow.Node 3) ~demand_mb_s:1.0 in
  Alcotest.(check bool) "touches src" true (Flow.touches_node f 1);
  Alcotest.(check bool) "touches dst" true (Flow.touches_node f 3);
  Alcotest.(check bool) "not others" false (Flow.touches_node f 2);
  Alcotest.(check bool) "not external" false (Flow.is_external f)

(* --- Routing ------------------------------------------------------------- *)

let test_routing_p2p () =
  let t = topo () in
  Alcotest.(check int) "same switch: 2 links" 2
    (Array.length (Routing.p2p_path t ~src:0 ~dst:1));
  Alcotest.(check int) "cross switch: 4 links" 4
    (Array.length (Routing.p2p_path t ~src:0 ~dst:3));
  Alcotest.(check int) "self: empty" 0
    (Array.length (Routing.p2p_path t ~src:2 ~dst:2))

let test_routing_external () =
  let t = topo () in
  let f = Flow.make ~id:0 ~src:2 ~dst:Flow.External ~demand_mb_s:1.0 in
  let path = Routing.flow_path t f in
  (* access(2)=2, uplink(switch 1)=4+1=5. *)
  Alcotest.(check (array int)) "access+uplink" [| 2; 5 |] path

let test_routing_capacities () =
  let t = topo () in
  let caps = Routing.capacities t in
  Alcotest.(check int) "one per link" (Topology.link_count t) (Array.length caps);
  Array.iter (fun c -> Alcotest.(check bool) "positive" true (c > 0.0)) caps

(* --- Fairshare ------------------------------------------------------------ *)

let demand path demand_mb_s : Fairshare.demand = { Fairshare.path; demand_mb_s }

let test_fairshare_single_flow_demand_capped () =
  let rates =
    Fairshare.compute ~capacities:[| 100.0 |] ~demands:[| demand [| 0 |] 30.0 |]
  in
  check_float "capped at demand" 30.0 rates.(0)

let test_fairshare_single_flow_capacity_capped () =
  let rates =
    Fairshare.compute ~capacities:[| 100.0 |]
      ~demands:[| demand [| 0 |] infinity |]
  in
  check_float "capped at capacity" 100.0 rates.(0)

let test_fairshare_equal_split () =
  let rates =
    Fairshare.compute ~capacities:[| 90.0 |]
      ~demands:[| demand [| 0 |] infinity; demand [| 0 |] infinity; demand [| 0 |] infinity |]
  in
  Array.iter (fun r -> check_float "30 each" 30.0 r) rates

let test_fairshare_demand_capped_redistributes () =
  (* One small flow frees capacity for the greedy one. *)
  let rates =
    Fairshare.compute ~capacities:[| 100.0 |]
      ~demands:[| demand [| 0 |] 10.0; demand [| 0 |] infinity |]
  in
  check_float "small keeps demand" 10.0 rates.(0);
  check_float "greedy gets rest" 90.0 rates.(1)

let test_fairshare_multilink_bottleneck () =
  (* Flow 0 crosses both links; flow 1 only the fat one. The thin link
     bottlenecks flow 0; flow 1 takes what remains of the fat link. *)
  let rates =
    Fairshare.compute
      ~capacities:[| 10.0; 100.0 |]
      ~demands:[| demand [| 0; 1 |] infinity; demand [| 1 |] infinity |]
  in
  check_float "thin-link flow" 10.0 rates.(0);
  check_float "fat-link flow" 90.0 rates.(1)

let test_fairshare_classic_three_flows () =
  (* The textbook example: two unit links; flow A spans both, flows B
     and C take one link each. Max-min: A=50, B=C=50 … actually with
     capacities 100: A and B share link 0 (50 each), then C gets
     100-50=50 on link 1? No: A also crosses link 1, so link 1 hosts A
     and C. All three end at 50. *)
  let rates =
    Fairshare.compute
      ~capacities:[| 100.0; 100.0 |]
      ~demands:
        [| demand [| 0; 1 |] infinity; demand [| 0 |] infinity; demand [| 1 |] infinity |]
  in
  Array.iter (fun r -> check_float "50 each" 50.0 r) rates

let test_fairshare_empty_path () =
  let rates =
    Fairshare.compute ~capacities:[| 10.0 |] ~demands:[| demand [||] 7.0 |]
  in
  check_float "unconstrained = demand" 7.0 rates.(0)

let test_fairshare_no_oversubscription () =
  let capacities = [| 50.0; 80.0; 120.0 |] in
  let demands =
    [|
      demand [| 0; 1 |] 40.0;
      demand [| 1; 2 |] infinity;
      demand [| 0 |] 40.0;
      demand [| 2 |] 90.0;
    |]
  in
  let rates = Fairshare.compute ~capacities ~demands in
  let loads = Fairshare.link_loads ~capacities ~demands ~rates in
  Array.iteri
    (fun l load ->
      Alcotest.(check bool)
        (Printf.sprintf "link %d within capacity" l)
        true
        (load <= capacities.(l) +. 1e-6))
    loads

let test_fairshare_probe_rate () =
  let capacities = [| 100.0 |] in
  let demands = [| demand [| 0 |] infinity |] in
  let p = Fairshare.probe_rate ~capacities ~demands ~probe_path:[| 0 |] in
  check_float "probe shares with greedy flow" 50.0 p;
  check_float "empty probe" infinity
    (Fairshare.probe_rate ~capacities ~demands ~probe_path:[||])

let test_fairshare_validation () =
  Alcotest.check_raises "bad link id"
    (Invalid_argument "Fairshare: link id out of range") (fun () ->
      ignore
        (Fairshare.compute ~capacities:[| 1.0 |] ~demands:[| demand [| 3 |] 1.0 |]))

(* --- Network ----------------------------------------------------------------- *)

let network () =
  let t = topo () in
  Network.create t

let test_network_idle () =
  let n = network () in
  check_float "idle same-switch bw" 118.0
    (Network.available_bandwidth_mb_s n ~src:0 ~dst:1);
  check_float "idle cross-switch bw" 118.0
    (Network.available_bandwidth_mb_s n ~src:0 ~dst:3);
  check_float "self infinite" infinity
    (Network.available_bandwidth_mb_s n ~src:0 ~dst:0);
  check_float "nic idle" 0.0 (Network.nic_rate_mb_s n ~node:0)

let test_network_contention () =
  let n = network () in
  (* A greedy flow leaving node 0 saturates access(0) and uplink(0). *)
  Network.set_flows n
    [ Flow.make ~id:0 ~src:0 ~dst:Flow.External ~demand_mb_s:infinity ];
  let bw = Network.available_bandwidth_mb_s n ~src:1 ~dst:3 in
  (* Probe 1->3 shares uplink(0) with the greedy flow. *)
  check_float "halved on the shared uplink" 59.0 bw;
  Alcotest.(check bool) "same-switch pair unaffected" true
    (Network.available_bandwidth_mb_s n ~src:2 ~dst:3 > 100.0)

let test_network_latency_increases_with_load () =
  let n = network () in
  let idle = Network.latency_us n ~src:0 ~dst:3 in
  Network.set_flows n
    [ Flow.make ~id:0 ~src:0 ~dst:(Flow.Node 3) ~demand_mb_s:110.0 ];
  let loaded = Network.latency_us n ~src:0 ~dst:3 in
  Alcotest.(check bool) "loaded > idle" true (loaded > idle);
  check_float "self latency" 0.0 (Network.latency_us n ~src:1 ~dst:1)

let test_network_nic_rate () =
  let n = network () in
  Network.set_flows n
    [
      Flow.make ~id:0 ~src:0 ~dst:(Flow.Node 2) ~demand_mb_s:20.0;
      Flow.make ~id:1 ~src:3 ~dst:(Flow.Node 0) ~demand_mb_s:10.0;
      Flow.make ~id:2 ~src:1 ~dst:Flow.External ~demand_mb_s:5.0;
    ];
  check_float "node 0 sums src+dst flows" 30.0 (Network.nic_rate_mb_s n ~node:0);
  check_float "node 1 external only" 5.0 (Network.nic_rate_mb_s n ~node:1)

let test_network_peak () =
  let n = network () in
  check_float "peak is min capacity" 118.0
    (Network.peak_bandwidth_mb_s n ~src:0 ~dst:3)

let test_network_rates_with_extra_contend () =
  let n = network () in
  (* Two extra greedy flows across the same uplinks split the path. *)
  let rates = Network.rates_with_extra n ~extra:[| (0, 2); (1, 3) |] in
  check_float "share uplink" 59.0 rates.(0);
  check_float "share uplink (2)" 59.0 rates.(1);
  let solo = Network.rates_with_extra n ~extra:[| (0, 2) |] in
  check_float "alone gets full" 118.0 solo.(0)

let test_network_link_utilization () =
  let n = network () in
  Network.set_flows n
    [ Flow.make ~id:0 ~src:0 ~dst:Flow.External ~demand_mb_s:59.0 ];
  check_float "access link half used" 0.5 (Network.link_utilization n ~link_id:0);
  check_float "other access idle" 0.0 (Network.link_utilization n ~link_id:1)

let qcheck = QCheck_alcotest.to_alcotest

(* Random flow populations: fairness invariants always hold. *)
let flow_population_gen =
  QCheck.Gen.(
    list_size (1 -- 25)
      (triple (0 -- 3) (0 -- 4) (float_range 0.5 150.0)))

let prop_fairshare_feasible_and_demand_bounded =
  QCheck.Test.make ~name:"fair rates: feasible and demand-bounded" ~count:200
    (QCheck.make flow_population_gen)
    (fun specs ->
      let t = topo () in
      let capacities = Routing.capacities t in
      let demands =
        Array.of_list
          (List.map
             (fun (s, d, dem) ->
               (* d = 4 or d = s means "external". *)
               let path =
                 if d = 4 || d = s then
                   Routing.flow_path t
                     (Flow.make ~id:0 ~src:s ~dst:Flow.External ~demand_mb_s:dem)
                 else Routing.p2p_path t ~src:s ~dst:d
               in
               { Fairshare.path; demand_mb_s = dem })
             specs)
      in
      let rates = Fairshare.compute ~capacities ~demands in
      let loads = Fairshare.link_loads ~capacities ~demands ~rates in
      let feasible =
        Array.for_all2 (fun load cap -> load <= cap +. 1e-6) loads capacities
      in
      let bounded =
        Array.for_all2
          (fun rate (d : Fairshare.demand) ->
            rate <= d.Fairshare.demand_mb_s +. 1e-6 && rate >= 0.0)
          rates demands
      in
      feasible && bounded)

(* Max-min optimality: every flow held below its demand must cross a
   saturated link on which it already receives the largest rate — i.e.
   nobody can be raised without lowering someone no better off. *)
let prop_fairshare_bottleneck_condition =
  QCheck.Test.make ~name:"max-min bottleneck condition" ~count:200
    (QCheck.make flow_population_gen)
    (fun specs ->
      let t = topo () in
      let capacities = Routing.capacities t in
      let demands =
        Array.of_list
          (List.map
             (fun (s, d, dem) ->
               let path =
                 if d = 4 || d = s then
                   Routing.flow_path t
                     (Flow.make ~id:0 ~src:s ~dst:Flow.External ~demand_mb_s:dem)
                 else Routing.p2p_path t ~src:s ~dst:d
               in
               { Fairshare.path; demand_mb_s = dem })
             specs)
      in
      let rates = Fairshare.compute ~capacities ~demands in
      let loads = Fairshare.link_loads ~capacities ~demands ~rates in
      let eps = 1e-6 in
      Array.to_list demands
      |> List.mapi (fun i d -> (i, d))
      |> List.for_all (fun (i, (d : Fairshare.demand)) ->
             rates.(i) >= d.Fairshare.demand_mb_s -. eps
             || Array.exists
                  (fun l ->
                    loads.(l) >= capacities.(l) -. eps
                    && Array.to_list demands
                       |> List.mapi (fun j d2 -> (j, d2))
                       |> List.for_all (fun (j, (d2 : Fairshare.demand)) ->
                              (not (Array.mem l d2.Fairshare.path))
                              || rates.(j) <= rates.(i) +. eps))
                  d.Fairshare.path))

let prop_probe_positive =
  QCheck.Test.make ~name:"probe rate is positive on any population" ~count:100
    (QCheck.make flow_population_gen)
    (fun specs ->
      let t = topo () in
      let n = Network.create t in
      let flows =
        List.mapi
          (fun i (s, d, dem) ->
            let dst = if d = 4 || d = s then Flow.External else Flow.Node d in
            Flow.make ~id:i ~src:s ~dst ~demand_mb_s:dem)
          specs
      in
      Network.set_flows n flows;
      let bw = Network.available_bandwidth_mb_s n ~src:0 ~dst:3 in
      bw > 0.0)

let suites =
  [
    ( "netsim.flow",
      [
        Alcotest.test_case "validation" `Quick test_flow_validation;
        Alcotest.test_case "touches" `Quick test_flow_touches;
      ] );
    ( "netsim.routing",
      [
        Alcotest.test_case "p2p" `Quick test_routing_p2p;
        Alcotest.test_case "external" `Quick test_routing_external;
        Alcotest.test_case "capacities" `Quick test_routing_capacities;
      ] );
    ( "netsim.fairshare",
      [
        Alcotest.test_case "single demand-capped" `Quick
          test_fairshare_single_flow_demand_capped;
        Alcotest.test_case "single capacity-capped" `Quick
          test_fairshare_single_flow_capacity_capped;
        Alcotest.test_case "equal split" `Quick test_fairshare_equal_split;
        Alcotest.test_case "demand-capped redistributes" `Quick
          test_fairshare_demand_capped_redistributes;
        Alcotest.test_case "multilink bottleneck" `Quick
          test_fairshare_multilink_bottleneck;
        Alcotest.test_case "classic three flows" `Quick
          test_fairshare_classic_three_flows;
        Alcotest.test_case "empty path" `Quick test_fairshare_empty_path;
        Alcotest.test_case "no oversubscription" `Quick
          test_fairshare_no_oversubscription;
        Alcotest.test_case "probe rate" `Quick test_fairshare_probe_rate;
        Alcotest.test_case "validation" `Quick test_fairshare_validation;
        qcheck prop_fairshare_feasible_and_demand_bounded;
        qcheck prop_fairshare_bottleneck_condition;
      ] );
    ( "netsim.network",
      [
        Alcotest.test_case "idle" `Quick test_network_idle;
        Alcotest.test_case "contention" `Quick test_network_contention;
        Alcotest.test_case "latency under load" `Quick
          test_network_latency_increases_with_load;
        Alcotest.test_case "nic rate" `Quick test_network_nic_rate;
        Alcotest.test_case "peak" `Quick test_network_peak;
        Alcotest.test_case "rates with extra" `Quick
          test_network_rates_with_extra_contend;
        Alcotest.test_case "link utilization" `Quick test_network_link_utilization;
        qcheck prop_probe_positive;
      ] );
  ]

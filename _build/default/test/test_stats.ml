(* Tests for rm_stats: PRNG, descriptive statistics, windows, running
   means, time series, matrices. *)

module Rng = Rm_stats.Rng
module D = Rm_stats.Descriptive
module Window = Rm_stats.Window
module Running_means = Rm_stats.Running_means
module Timeseries = Rm_stats.Timeseries
module Matrix = Rm_stats.Matrix

let check_float = Alcotest.(check (float 1e-9))
let check_close msg expected actual = Alcotest.(check (float 1e-6)) msg expected actual

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_split_independence () =
  let g = Rng.create 7 in
  let child = Rng.split g in
  let x = Rng.int64 child and y = Rng.int64 g in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_float_range () =
  let g = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_float_mean () =
  let g = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_int_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int g 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_gaussian_moments () =
  let g = Rng.create 13 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian g ~mu:3.0 ~sigma:2.0) in
  let s = D.summarize xs in
  Alcotest.(check bool) "mean ~3" true (Float.abs (s.D.mean -. 3.0) < 0.05);
  Alcotest.(check bool) "sd ~2" true (Float.abs (s.D.stddev -. 2.0) < 0.05)

let test_rng_exponential_mean () =
  let g = Rng.create 17 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.exponential g ~rate:0.5) in
  Alcotest.(check bool) "mean ~2" true (Float.abs (D.mean xs -. 2.0) < 0.1)

let test_rng_bernoulli () =
  let g = Rng.create 19 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli g ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p ~0.3" true (Float.abs (f -. 0.3) < 0.02)

let test_rng_shuffle_permutation () =
  let g = Rng.create 23 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let g = Rng.create 29 in
  let sample = Rng.sample_without_replacement g ~k:10 ~n:20 in
  Alcotest.(check int) "k elements" 10 (List.length sample);
  Alcotest.(check int) "distinct" 10
    (List.length (List.sort_uniq compare sample));
  List.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 20))
    sample

let test_rng_pareto_positive () =
  let g = Rng.create 31 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "pareto >= scale" true
      (Rng.pareto g ~shape:1.5 ~scale:2.0 >= 2.0)
  done

(* --- Descriptive --------------------------------------------------------- *)

let test_mean () = check_float "mean" 2.5 (D.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_median_odd () = check_float "median odd" 3.0 (D.median [| 5.0; 1.0; 3.0 |])

let test_median_even () =
  check_float "median even" 2.5 (D.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_variance () =
  (* Population variance: ((-2)^2 + 0 + 2^2) / 3. *)
  check_float "variance" (8.0 /. 3.0) (D.variance [| 1.0; 3.0; 5.0 |])

let test_stddev_constant () = check_float "sd of constant" 0.0 (D.stddev [| 7.0; 7.0 |])

let test_cov () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "cv" (2.0 /. 5.0) (D.coefficient_of_variation xs)

let test_percentile_interpolation () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (D.percentile xs ~p:0.0);
  check_float "p100" 40.0 (D.percentile xs ~p:100.0);
  check_float "p50" 25.0 (D.percentile xs ~p:50.0)

let test_percent_gain () =
  check_float "gain" 50.0 (D.percent_gain ~baseline:10.0 ~ours:5.0);
  check_float "negative gain" (-100.0) (D.percent_gain ~baseline:5.0 ~ours:10.0)

let test_empty_inputs_raise () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Descriptive.mean: empty input") (fun () ->
      ignore (D.mean [||]))

let test_summary () =
  let s = D.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.D.n;
  check_float "min" 1.0 s.D.min;
  check_float "max" 3.0 s.D.max;
  check_float "mean" 2.0 s.D.mean

(* --- Window -------------------------------------------------------------- *)

let test_window_basic_mean () =
  let w = Window.create ~span:10.0 in
  Window.push w ~time:0.0 ~value:1.0;
  Window.push w ~time:1.0 ~value:3.0;
  Alcotest.(check (option (float 1e-9))) "mean" (Some 2.0) (Window.mean w)

let test_window_eviction () =
  let w = Window.create ~span:10.0 in
  Window.push w ~time:0.0 ~value:100.0;
  Window.push w ~time:20.0 ~value:2.0;
  Alcotest.(check (option (float 1e-9))) "old sample evicted" (Some 2.0)
    (Window.mean w);
  Alcotest.(check int) "one sample left" 1 (Window.length w)

let test_window_boundary_eviction () =
  let w = Window.create ~span:10.0 in
  Window.push w ~time:0.0 ~value:1.0;
  Window.push w ~time:10.0 ~value:3.0;
  (* Sample at exactly t - span is evicted (strictly trailing window). *)
  Alcotest.(check int) "boundary evicted" 1 (Window.length w)

let test_window_empty () =
  let w = Window.create ~span:5.0 in
  Alcotest.(check (option (float 1e-9))) "empty mean" None (Window.mean w);
  check_float "default" 42.0 (Window.mean_default w ~default:42.0)

let test_window_monotonic_time () =
  let w = Window.create ~span:5.0 in
  Window.push w ~time:10.0 ~value:1.0;
  Alcotest.check_raises "time backwards"
    (Invalid_argument "Window.push: time went backwards") (fun () ->
      Window.push w ~time:9.0 ~value:1.0)

let test_window_clear () =
  let w = Window.create ~span:5.0 in
  Window.push w ~time:1.0 ~value:1.0;
  Window.clear w;
  Alcotest.(check int) "cleared" 0 (Window.length w);
  (* After clear, earlier times are acceptable again. *)
  Window.push w ~time:0.0 ~value:2.0;
  Alcotest.(check int) "usable after clear" 1 (Window.length w)

let test_window_latest () =
  let w = Window.create ~span:100.0 in
  Window.push w ~time:1.0 ~value:5.0;
  Window.push w ~time:2.0 ~value:6.0;
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "latest" (Some (2.0, 6.0)) (Window.latest w)

(* --- Running_means -------------------------------------------------------- *)

let test_running_means_fresh () =
  let rm = Running_means.create () in
  Alcotest.(check bool) "no view before data" true (Running_means.view rm = None)

let test_running_means_horizons () =
  let rm = Running_means.create () in
  (* 16 minutes of 1.0, then a burst of 10.0 in the last 30 s. *)
  let t = ref 0.0 in
  while !t < 960.0 do
    Running_means.push rm ~time:!t ~value:1.0;
    t := !t +. 10.0
  done;
  Running_means.push rm ~time:965.0 ~value:10.0;
  Running_means.push rm ~time:970.0 ~value:10.0;
  match Running_means.view rm with
  | None -> Alcotest.fail "expected view"
  | Some v ->
    Alcotest.(check bool) "m1 reacts fastest" true
      (v.Running_means.m1 > v.Running_means.m5
      && v.Running_means.m5 > v.Running_means.m15);
    check_float "instant" 10.0 v.Running_means.instant

let test_running_means_blend () =
  let v = { Running_means.instant = 0.0; m1 = 1.0; m5 = 2.0; m15 = 3.0 } in
  check_float "blend equal" 2.0 (Running_means.blend v ~w1:1.0 ~w5:1.0 ~w15:1.0);
  check_float "blend m1 only" 1.0 (Running_means.blend v ~w1:1.0 ~w5:0.0 ~w15:0.0)

let test_running_means_view_default () =
  let rm = Running_means.create () in
  let v = Running_means.view_default rm ~default:5.0 in
  check_float "default view" 5.0 v.Running_means.m15

(* --- Timeseries ------------------------------------------------------------ *)

let test_timeseries_append_get () =
  let ts = Timeseries.create ~name:"x" () in
  Timeseries.append ts ~time:1.0 ~value:10.0;
  Timeseries.append ts ~time:2.0 ~value:20.0;
  Alcotest.(check int) "length" 2 (Timeseries.length ts);
  let t, v = Timeseries.get ts 1 in
  check_float "time" 2.0 t;
  check_float "value" 20.0 v

let test_timeseries_monotonic () =
  let ts = Timeseries.create () in
  Timeseries.append ts ~time:5.0 ~value:0.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeseries.append: time went backwards") (fun () ->
      Timeseries.append ts ~time:4.0 ~value:0.0)

let test_timeseries_growth () =
  let ts = Timeseries.create () in
  for i = 0 to 999 do
    Timeseries.append ts ~time:(float_of_int i) ~value:(float_of_int (i * 2))
  done;
  Alcotest.(check int) "1000 points" 1000 (Timeseries.length ts);
  let _, v = Timeseries.get ts 999 in
  check_float "last value" 1998.0 v

let test_timeseries_resample () =
  let ts = Timeseries.create () in
  List.iter
    (fun (t, v) -> Timeseries.append ts ~time:t ~value:v)
    [ (0.0, 1.0); (1.0, 3.0); (10.0, 5.0); (11.0, 7.0) ];
  let r = Timeseries.resample ts ~period:10.0 in
  Alcotest.(check int) "two buckets" 2 (Timeseries.length r);
  let _, v0 = Timeseries.get r 0 in
  let _, v1 = Timeseries.get r 1 in
  check_float "bucket 0 mean" 2.0 v0;
  check_float "bucket 1 mean" 6.0 v1

let test_timeseries_average () =
  let mk vs =
    let ts = Timeseries.create () in
    List.iteri (fun i v -> Timeseries.append ts ~time:(float_of_int i) ~value:v) vs;
    ts
  in
  let avg = Timeseries.average [ mk [ 1.0; 2.0 ]; mk [ 3.0; 4.0 ] ] in
  let _, v0 = Timeseries.get avg 0 in
  let _, v1 = Timeseries.get avg 1 in
  check_float "avg0" 2.0 v0;
  check_float "avg1" 3.0 v1

let test_timeseries_average_mismatch () =
  let mk vs =
    let ts = Timeseries.create () in
    List.iteri (fun i v -> Timeseries.append ts ~time:(float_of_int i) ~value:v) vs;
    ts
  in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Timeseries.average: length mismatch") (fun () ->
      ignore (Timeseries.average [ mk [ 1.0 ]; mk [ 1.0; 2.0 ] ]))

(* --- Matrix ----------------------------------------------------------------- *)

let test_matrix_get_set () =
  let m = Matrix.create ~rows:2 ~cols:3 ~init:0.0 in
  Matrix.set m 1 2 5.0;
  check_float "set/get" 5.0 (Matrix.get m 1 2);
  check_float "untouched" 0.0 (Matrix.get m 0 0)

let test_matrix_bounds () =
  let m = Matrix.square 2 ~init:0.0 in
  Alcotest.check_raises "oob" (Invalid_argument "Matrix: index out of bounds")
    (fun () -> ignore (Matrix.get m 2 0))

let test_matrix_off_diagonal_mean () =
  let m = Matrix.square 2 ~init:0.0 in
  Matrix.set m 0 1 4.0;
  Matrix.set m 1 0 6.0;
  Matrix.set m 0 0 100.0;
  check_float "off-diag mean ignores diagonal" 5.0 (Matrix.off_diagonal_mean m)

let test_matrix_symmetrize () =
  let m = Matrix.square 2 ~init:0.0 in
  Matrix.set m 0 1 2.0;
  Matrix.set m 1 0 4.0;
  Matrix.symmetrize m;
  check_float "upper" 3.0 (Matrix.get m 0 1);
  check_float "lower" 3.0 (Matrix.get m 1 0)

let test_matrix_submatrix () =
  let m = Matrix.square 3 ~init:0.0 in
  Matrix.iteri m ~f:(fun ~row ~col _ ->
      Matrix.set m row col (float_of_int ((row * 3) + col)));
  let s = Matrix.submatrix m ~indices:[ 0; 2 ] in
  check_float "s(0,1) = m(0,2)" 2.0 (Matrix.get s 0 1);
  check_float "s(1,0) = m(2,0)" 6.0 (Matrix.get s 1 0)

let test_matrix_scale_add () =
  let a = Matrix.square 2 ~init:1.0 in
  let b = Matrix.square 2 ~init:2.0 in
  let c = Matrix.add_pointwise (Matrix.scale a 3.0) b in
  check_float "3*1+2" 5.0 (Matrix.get c 1 1)

(* --- qcheck properties -------------------------------------------------- *)

let qcheck = QCheck_alcotest.to_alcotest

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min..max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = D.percentile a ~p in
      v >= D.min a -. 1e-9 && v <= D.max a +. 1e-9)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let a = Array.of_list xs in
      let m = D.mean a in
      m >= D.min a -. 1e-9 && m <= D.max a +. 1e-9)

let prop_window_mean_of_retained =
  QCheck.Test.make ~name:"window mean = mean of retained samples" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40)
              (pair (float_bound_inclusive 10.0) (float_bound_inclusive 100.0)))
    (fun steps ->
      let w = Window.create ~span:15.0 in
      let t = ref 0.0 in
      let samples = ref [] in
      List.iter
        (fun (dt, v) ->
          t := !t +. dt;
          Window.push w ~time:!t ~value:v;
          samples := (!t, v) :: !samples)
        steps;
      let retained =
        List.filter (fun (time, _) -> time > !t -. 15.0) !samples
      in
      match Window.mean w with
      | None -> retained = []
      | Some m ->
        let expect =
          List.fold_left (fun acc (_, v) -> acc +. v) 0.0 retained
          /. float_of_int (List.length retained)
        in
        Float.abs (m -. expect) < 1e-6)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(0 -- 30) small_int))
    (fun (seed, xs) ->
      let g = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let suites =
  [
    ( "stats.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "float mean" `Quick test_rng_float_mean;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample without replacement" `Quick
          test_rng_sample_without_replacement;
        Alcotest.test_case "pareto positive" `Quick test_rng_pareto_positive;
        qcheck prop_shuffle_preserves_multiset;
      ] );
    ( "stats.descriptive",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "median odd" `Quick test_median_odd;
        Alcotest.test_case "median even" `Quick test_median_even;
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
        Alcotest.test_case "coefficient of variation" `Quick test_cov;
        Alcotest.test_case "percentile interpolation" `Quick
          test_percentile_interpolation;
        Alcotest.test_case "percent gain" `Quick test_percent_gain;
        Alcotest.test_case "empty raises" `Quick test_empty_inputs_raise;
        Alcotest.test_case "summary" `Quick test_summary;
        qcheck prop_percentile_bounded;
        qcheck prop_mean_within_bounds;
      ] );
    ( "stats.window",
      [
        Alcotest.test_case "basic mean" `Quick test_window_basic_mean;
        Alcotest.test_case "eviction" `Quick test_window_eviction;
        Alcotest.test_case "boundary eviction" `Quick test_window_boundary_eviction;
        Alcotest.test_case "empty" `Quick test_window_empty;
        Alcotest.test_case "monotonic time" `Quick test_window_monotonic_time;
        Alcotest.test_case "clear" `Quick test_window_clear;
        Alcotest.test_case "latest" `Quick test_window_latest;
        qcheck prop_window_mean_of_retained;
      ] );
    ( "stats.running_means",
      [
        Alcotest.test_case "fresh" `Quick test_running_means_fresh;
        Alcotest.test_case "horizons" `Quick test_running_means_horizons;
        Alcotest.test_case "blend" `Quick test_running_means_blend;
        Alcotest.test_case "view default" `Quick test_running_means_view_default;
      ] );
    ( "stats.timeseries",
      [
        Alcotest.test_case "append/get" `Quick test_timeseries_append_get;
        Alcotest.test_case "monotonic" `Quick test_timeseries_monotonic;
        Alcotest.test_case "growth" `Quick test_timeseries_growth;
        Alcotest.test_case "resample" `Quick test_timeseries_resample;
        Alcotest.test_case "average" `Quick test_timeseries_average;
        Alcotest.test_case "average mismatch" `Quick test_timeseries_average_mismatch;
      ] );
    ( "stats.matrix",
      [
        Alcotest.test_case "get/set" `Quick test_matrix_get_set;
        Alcotest.test_case "bounds" `Quick test_matrix_bounds;
        Alcotest.test_case "off-diagonal mean" `Quick test_matrix_off_diagonal_mean;
        Alcotest.test_case "symmetrize" `Quick test_matrix_symmetrize;
        Alcotest.test_case "submatrix" `Quick test_matrix_submatrix;
        Alcotest.test_case "scale/add" `Quick test_matrix_scale_add;
      ] );
  ]

(* Tests for Rm_apps.Synthetic and the ablation harness entry points. *)

module App = Rm_mpisim.App
module Synthetic = Rm_apps.Synthetic

let phase app = app.App.phase ~iter:0

let count_messages app = List.length (phase app).App.messages

let total_bytes app =
  List.fold_left (fun acc (_, _, b) -> acc +. b) 0.0 (phase app).App.messages

let test_ring_shape () =
  let app = Synthetic.ring ~ranks:6 ~iterations:10 ~bytes:100.0 () in
  Alcotest.(check int) "one message per rank" 6 (count_messages app);
  Alcotest.(check (float 1e-9)) "bytes" 600.0 (total_bytes app);
  App.validate_phase app (phase app)

let test_ring_single_rank () =
  let app = Synthetic.ring ~ranks:1 ~iterations:5 () in
  Alcotest.(check int) "no self messages" 0 (count_messages app)

let test_nearest_neighbor_shape () =
  let app = Synthetic.nearest_neighbor ~ranks:5 ~iterations:3 () in
  Alcotest.(check int) "two messages per rank" 10 (count_messages app);
  Alcotest.(check bool) "has allreduce" true ((phase app).App.allreduce_bytes > 0.0);
  App.validate_phase app (phase app)

let test_stencil2d_grid () =
  (* 12 ranks -> 3x4 grid: every rank has 4 distinct neighbours. *)
  let app = Synthetic.stencil2d ~ranks:12 ~iterations:2 () in
  App.validate_phase app (phase app);
  let per_rank = Hashtbl.create 12 in
  List.iter
    (fun (src, _, _) ->
      Hashtbl.replace per_rank src
        (1 + Option.value (Hashtbl.find_opt per_rank src) ~default:0))
    (phase app).App.messages;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check int) "4 neighbours" 4 n)
    per_rank;
  Alcotest.(check int) "all ranks" 12 (Hashtbl.length per_rank)

let test_stencil2d_small_grids () =
  (* Degenerate grids (1xN) still validate and dedupe wraps. *)
  List.iter
    (fun ranks ->
      let app = Synthetic.stencil2d ~ranks ~iterations:1 () in
      App.validate_phase app (phase app))
    [ 1; 2; 3; 4; 7 ]

let test_alltoall_count () =
  let app = Synthetic.alltoall ~ranks:5 ~iterations:1 ~bytes_per_pair:10.0 () in
  Alcotest.(check int) "n(n-1) messages" 20 (count_messages app);
  Alcotest.(check (float 1e-9)) "bytes" 200.0 (total_bytes app)

let test_compute_only () =
  let app = Synthetic.compute_only ~ranks:4 ~iterations:1 () in
  Alcotest.(check int) "silent" 0 (count_messages app);
  Alcotest.(check (float 1e-9)) "no allreduce" 0.0 (phase app).App.allreduce_bytes

let test_synthetic_runs_on_executor () =
  let cluster =
    Rm_cluster.Cluster.homogeneous ~cores:8 ~nodes_per_switch:[ 2; 2 ] ()
  in
  let world =
    Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.quiet ~seed:3
  in
  let allocation =
    Rm_core.Allocation.make ~policy:"t"
      ~entries:(List.init 4 (fun i -> { Rm_core.Allocation.node = i; procs = 2 }))
  in
  List.iter
    (fun app ->
      let stats = Rm_mpisim.Executor.run ~world ~allocation ~app () in
      Alcotest.(check bool) "positive time" true
        (stats.Rm_mpisim.Executor.total_time_s > 0.0))
    [
      Synthetic.ring ~ranks:8 ~iterations:5 ();
      Synthetic.stencil2d ~ranks:8 ~iterations:5 ();
      Synthetic.alltoall ~ranks:8 ~iterations:5 ();
      Synthetic.compute_only ~ranks:8 ~iterations:5 ();
    ]

(* --- Ablation entry points (smoke, trimmed parameters) -------------------- *)

module Ablations = Rm_experiments.Ablations

let test_ablation_optimality_structure () =
  let o = Ablations.optimality_gap ~trials:4 () in
  Alcotest.(check bool) "ran trials" true (o.Ablations.trials > 0);
  Alcotest.(check bool) "ratios >= 1" true (o.Ablations.mean_ratio >= 1.0 -. 1e-9);
  Alcotest.(check bool) "max >= mean" true
    (o.Ablations.max_ratio >= o.Ablations.mean_ratio -. 1e-9);
  Alcotest.(check bool) "render mentions trials" true
    (String.length (Ablations.render_optimality o) > 0)

let test_ablation_hierarchical_structure () =
  let points = Ablations.hierarchical_sweep ~cluster_sizes:[ 30 ] () in
  Alcotest.(check int) "one point" 1 (List.length points);
  let p = List.hd points in
  Alcotest.(check bool) "timings positive" true
    (p.Ablations.flat_ms > 0.0 && p.Ablations.hier_ms > 0.0);
  Alcotest.(check bool) "runs finite" true
    (Float.is_finite p.Ablations.flat_time_s && Float.is_finite p.Ablations.hier_time_s)

let test_ablation_madm_structure () =
  let points = Ablations.madm_methods () in
  Alcotest.(check int) "three methods" 3 (List.length points);
  let saw = List.hd points in
  Alcotest.(check (float 1e-9)) "SAW correlates with itself" 1.0
    saw.Ablations.spearman_vs_saw;
  List.iter
    (fun p ->
      Alcotest.(check bool) "correlation bounded" true
        (p.Ablations.spearman_vs_saw >= -1.0 && p.Ablations.spearman_vs_saw <= 1.0);
      Alcotest.(check bool) "overlap bounded" true
        (p.Ablations.top8_overlap >= 0 && p.Ablations.top8_overlap <= 8))
    points

let suites =
  [
    ( "apps.synthetic",
      [
        Alcotest.test_case "ring shape" `Quick test_ring_shape;
        Alcotest.test_case "ring single rank" `Quick test_ring_single_rank;
        Alcotest.test_case "nearest neighbor" `Quick test_nearest_neighbor_shape;
        Alcotest.test_case "stencil2d grid" `Quick test_stencil2d_grid;
        Alcotest.test_case "stencil2d small grids" `Quick test_stencil2d_small_grids;
        Alcotest.test_case "alltoall count" `Quick test_alltoall_count;
        Alcotest.test_case "compute only" `Quick test_compute_only;
        Alcotest.test_case "runs on executor" `Quick test_synthetic_runs_on_executor;
      ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "optimality structure" `Slow
          test_ablation_optimality_structure;
        Alcotest.test_case "hierarchical structure" `Slow
          test_ablation_hierarchical_structure;
        Alcotest.test_case "madm structure" `Slow test_ablation_madm_structure;
      ] );
  ]

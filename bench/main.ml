(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 1, 2, 4, 5, 6, 7; Tables 2, 3, 4), the §3.3.2
   overhead claim (Bechamel micro-benchmarks) and the DESIGN.md
   ablations.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- --quick # trimmed sweeps
     dune exec bench/main.exe -- fig4 table2 micro ...
     dune exec bench/main.exe -- scale --domains 4 --baseline FILE

   Absolute times come from a simulator, not the authors' testbed; the
   point of each section is the *shape* (who wins, by what factor). *)

module Experiments = Rm_experiments

let quick = ref false
let seed = 2020

(* --trace-out / --metrics-out: run every requested section with
   telemetry on and export the accumulated trace / metric registry at
   the end. *)
let trace_out : string option ref = ref None
let metrics_out : string option ref = ref None
let exporting () = !trace_out <> None || !metrics_out <> None

(* The miniMD and miniFE sweeps back several sections each; memoize so
   "all" runs them once. *)
let minimd = lazy (Experiments.Minimd_sweep.run ~quick:!quick ~seed ())
let minife = lazy (Experiments.Minife_sweep.run ~quick:!quick ~seed:(seed + 1) ())
let case_study = lazy (Experiments.Case_study.run ~seed:(seed + 2) ())

let section title body =
  let rule = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n%s\n%!" rule title rule body

(* --- Bechamel micro-benchmarks (§3.3.2: "~1-2 ms, practically nil") --- *)

let micro () =
  let open Bechamel in
  let cluster = Rm_cluster.Cluster.iitk_reference () in
  let world =
    Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.normal
      ~seed:99
  in
  Rm_workload.World.advance world ~now:3600.0;
  let snapshot = Rm_monitor.Snapshot.of_truth ~time:3600.0 ~world in
  let weights = Rm_core.Weights.paper_default in
  let request = Rm_core.Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let loads = Rm_core.Compute_load.of_snapshot snapshot ~weights in
  let net = Rm_core.Network_load.of_snapshot snapshot ~weights in
  let pc = Rm_core.Effective_procs.of_snapshot snapshot ~loads in
  let capacity node =
    Rm_core.Request.capacity_of request
      ~effective:(Rm_core.Effective_procs.get pc ~node)
  in
  let rng = Rm_stats.Rng.create 7 in
  let measure tests =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        rows := (name, ns) :: !rows)
      results;
    List.sort compare !rows
  in
  let full_allocation () =
    ignore
      (Rm_core.Policies.allocate ~policy:Rm_core.Policies.Network_load_aware
         ~snapshot ~weights ~request ~rng ())
  in
  let tests =
    Test.make_grouped ~name:"allocator"
      [
        Test.make ~name:"eq1-compute-load"
          (Staged.stage (fun () ->
               ignore (Rm_core.Compute_load.of_snapshot snapshot ~weights)));
        Test.make ~name:"eq2-network-load"
          (Staged.stage (fun () ->
               ignore (Rm_core.Network_load.of_snapshot snapshot ~weights)));
        Test.make ~name:"alg1-one-candidate"
          (Staged.stage (fun () ->
               ignore
                 (Rm_core.Candidate.generate ~start:0 ~loads ~net ~capacity
                    ~request)));
        Test.make ~name:"alg1+2-all-candidates"
          (Staged.stage (fun () ->
               let candidates =
                 Rm_core.Candidate.generate_all ~loads ~net ~capacity ~request
               in
               ignore (Rm_core.Select.best ~candidates ~loads ~net ~request)));
        Test.make ~name:"full-allocation-from-snapshot"
          (Staged.stage full_allocation);
        Test.make ~name:"telemetry-disabled-counter-op"
          (Staged.stage
             (let c = Rm_telemetry.Metrics.counter "bench.disabled_op" in
              fun () -> Rm_telemetry.Metrics.incr c));
      ]
  in
  (* The instrumented allocator with the telemetry switch off is the
     shipping default; run it again with the switch on (metrics + audit
     ring recording) to price the instrumentation itself. Exports force
     the switch on for the whole run, so save and restore it rather
     than assuming it is off. *)
  let was_enabled = Rm_telemetry.Runtime.is_enabled () in
  Rm_telemetry.Runtime.disable ();
  let rows_off = measure tests in
  Rm_telemetry.Runtime.enable ();
  let rows_on =
    measure
      (Test.make_grouped ~name:"allocator"
         [
           Test.make ~name:"full-allocation-telemetry-on"
             (Staged.stage full_allocation);
         ])
  in
  if not was_enabled then Rm_telemetry.Runtime.disable ();
  (* Millions of timed-loop reps pollute the registry; drop them unless
     the run is exporting (where a wiped registry would lose the other
     sections' metrics too). *)
  if not (exporting ()) then begin
    Rm_telemetry.Metrics.reset ();
    Rm_telemetry.Audit.clear ()
  end;
  let rows = rows_off @ rows_on in
  let buf = Buffer.create 1024 in
  Experiments.Render.table
    ~header:[ "operation (60-node cluster)"; "time" ]
    ~rows:
      (List.map
         (fun (name, ns) -> [ name; Printf.sprintf "%.1f us" (ns /. 1e3) ])
         rows)
    buf;
  Buffer.add_string buf
    "\npaper claim (section 3.3.2): the whole algorithm runs in ~1-2 ms;\n\
     'full-allocation-from-snapshot' above is the comparable number.\n";
  (match
     ( List.assoc_opt "allocator/full-allocation-from-snapshot" rows,
       List.assoc_opt "allocator/full-allocation-telemetry-on" rows,
       List.assoc_opt "allocator/telemetry-disabled-counter-op" rows )
   with
  | Some off, Some on, Some op when Float.is_finite off && off > 0.0 ->
    (* The disabled hot path performs a handful of boolean checks; bound
       it by 8 disabled metric ops per allocation. *)
    let disabled_pct = 100.0 *. (8.0 *. op) /. off in
    let enabled_pct = 100.0 *. (on -. off) /. off in
    Buffer.add_string buf
      (Printf.sprintf
         "\n\
          rm_telemetry overhead on the allocator hot path:\n\
         \  disabled (shipping default): ~%.3f%% (8 gated sites x %.1f ns \
          per no-op, budget < 5%%)\n\
         \  enabled (metrics + decision audit): %+.1f%%\n"
         disabled_pct op enabled_pct);
    (* The 5% budget is a shipping requirement (atomic cells must not
       change it); fail the bench run outright if it is blown. *)
    if disabled_pct >= 5.0 then
      failwith
        (Printf.sprintf
           "telemetry disabled-path overhead %.3f%% blew the 5%% budget"
           disabled_pct)
  | _ -> ());
  Buffer.contents buf

(* --- Allocator scaling sweep (ISSUE: dense fast path + model cache) -----

   Sweeps synthetic snapshots of V nodes and reports allocations/sec per
   policy. The original engines (all four policies, V <= 4096; all
   pinned to the flat sweep so Auto's hierarchical rerouting cannot
   shift them under their committed baselines):
     naive      - Policies.allocate_naive (models rebuilt per call,
                  Candidate/Select list kernels): the pre-fast-path code
     dense-cold - Policies.allocate with the model cache cleared before
                  every call (prices the dense kernels alone)
     dense-warm - Policies.allocate against a warm cache (the steady
                  state inside a scheduler tick)
     dense-parN - dense-warm with the per-start candidate sweep on N
                  OCaml domains (N from --domains, default 4)
   The V=8192/16384 engines (network-load-aware only — the exhaustive
   engines above do not complete there in bench time; K from --topk):
     pruned-warm-kK  - warm cache, Top_k K candidate starts
     pruned-fresh-kK - model cache cleared per call: full O(V^2) model
                       rebuild + pruned sweep (the control incr beats)
     incr-kK         - a monitor-tick loop: each rep re-degrades 4
                       nodes, derives the next snapshot's model
                       incrementally (Model_cache.get_derived, O(tV))
                       and allocates with Top_k K starts
     hier-warm       - the two-level allocator (engine Grouped), warm
   Results go to stdout and BENCH_allocator.json; --baseline FILE
   compares the dense-warm/naive, dense-parN/dense-warm,
   pruned-warm-kK/dense-warm, incr-kK/pruned-fresh-kK and
   hier-warm/pruned-warm-kK speedups per (V, policy) against a
   committed run and fails on a >2x regression. Speedup ratios, not raw
   rates, keep the check machine-portable; engine keys carry the
   starts-mode (and domain count), so runs with a different --topk or
   --domains find no counterpart and are skipped rather than
   mis-compared. --max-rss-mb M fails the run if resident memory
   exceeds M after any size's cells (cache cleared, majors collected) —
   the V=16384 cells must not accumulate retained model bundles. *)

module Json = Rm_telemetry.Json
module Matrix = Rm_stats.Matrix

let baseline_file : string option ref = ref None
let scale_domains = ref 4
let scale_topk = ref 32
let scale_max_rss_mb = ref 65536

(* A monitored view of a busy V-node cluster without simulating one:
   per-node congestion scalars drive both the load views and the
   pairwise bandwidth/latency matrices, so construction is O(V^2) for
   the matrices and O(V) for everything else. *)
let synthetic_snapshot ~v =
  let per_switch = 16 in
  let switches = (v + per_switch - 1) / per_switch in
  let nodes_per_switch =
    List.init switches (fun s ->
        if s = switches - 1 then v - (per_switch * (switches - 1))
        else per_switch)
  in
  let cluster = Rm_cluster.Cluster.homogeneous ~cores:8 ~nodes_per_switch () in
  let rng = Rm_stats.Rng.create (9000 + v) in
  let congestion =
    Array.init v (fun _ -> Rm_stats.Rng.uniform rng ~lo:0.0 ~hi:0.8)
  in
  let time = 3600.0 in
  let mk_view x =
    { Rm_stats.Running_means.instant = x; m1 = x; m5 = 0.9 *. x; m15 = 0.8 *. x }
  in
  let nodes =
    Array.init v (fun i ->
        let load = 8.0 *. congestion.(i) in
        Some
          {
            Rm_monitor.Snapshot.static = Rm_cluster.Cluster.node cluster i;
            users = 1 + (i mod 3);
            load = mk_view load;
            util_pct = mk_view (12.5 *. load);
            nic_mb_s = mk_view (60.0 *. congestion.(i));
            mem_avail_gb = mk_view (15.0 -. (10.0 *. congestion.(i)));
            written_at = time;
          })
  in
  let peak = 125.0 in
  let bw = Matrix.square v ~init:peak in
  let lat = Matrix.square v ~init:50.0 in
  for i = 0 to v - 1 do
    for j = 0 to v - 1 do
      if i <> j then begin
        let c = 0.5 *. (congestion.(i) +. congestion.(j)) in
        Matrix.set bw i j (peak *. (1.0 -. c));
        Matrix.set lat i j (50.0 +. (200.0 *. c))
      end
    done
  done;
  {
    Rm_monitor.Snapshot.time;
    cluster;
    live = List.init v (fun i -> i);
    nodes;
    bw_mb_s = bw;
    peak_bw_mb_s = Matrix.square v ~init:peak;
    lat_us = lat;
  }

type scale_engine =
  | Naive
  | Dense_cold
  | Dense_warm
  | Dense_par
  | Pruned_warm
  | Pruned_fresh
  | Incr
  | Hier_warm

(* The exhaustive engines stop at this size: naive and dense-cold are
   O(V^2) per allocation with list/rebuild constants that blow the
   bench budget well before 8192. *)
let scale_exhaustive_max_v = 4096

let scale_engines = [ Naive; Dense_cold; Dense_warm; Dense_par ]
let scale_incr_engines = [ Pruned_warm; Pruned_fresh; Incr; Hier_warm ]

let engine_name = function
  | Naive -> "naive"
  | Dense_cold -> "dense-cold"
  | Dense_warm -> "dense-warm"
  | Dense_par -> Printf.sprintf "dense-par%d" !scale_domains
  | Pruned_warm -> Printf.sprintf "pruned-warm-k%d" !scale_topk
  | Pruned_fresh -> Printf.sprintf "pruned-fresh-k%d" !scale_topk
  | Incr -> Printf.sprintf "incr-k%d" !scale_topk
  | Hier_warm -> "hier-warm"

let has_prefix prefix e =
  String.length e >= String.length prefix
  && String.sub e 0 (String.length prefix) = prefix

let is_par_engine e = has_prefix "dense-par" e

type scale_row = {
  v : int;
  policy : string;
  engine : string;
  rate : float;  (** allocations per second *)
  reps : int;
}

let measure_cell ~budget_s ~snapshot ~weights ~request ~policy engine =
  (* Every cell starts from a cold cache: a previous cell's retained
     bundle (possibly for this very snapshot) must not leak warmth into
     an engine that is supposed to pay for its own builds. Warm engines
     re-warm explicitly below. *)
  Rm_core.Model_cache.clear ();
  let rng = Rm_stats.Rng.create 42 in
  let topk = Rm_core.Dense_alloc.Top_k !scale_topk in
  let flat = Rm_core.Policies.Flat in
  let run : unit -> unit =
    match engine with
    | Naive ->
      fun () ->
        ignore
          (Rm_core.Policies.allocate_naive ~policy ~snapshot ~weights ~request
             ~rng)
    | Dense_cold ->
      fun () ->
        Rm_core.Model_cache.clear ();
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~policy ~snapshot ~weights
             ~request ~rng ())
    | Dense_warm ->
      fun () ->
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~policy ~snapshot ~weights
             ~request ~rng ())
    | Dense_par ->
      fun () ->
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~ndomains:!scale_domains
             ~policy ~snapshot ~weights ~request ~rng ())
    | Pruned_warm ->
      fun () ->
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~starts:topk ~policy
             ~snapshot ~weights ~request ~rng ())
    | Pruned_fresh ->
      fun () ->
        Rm_core.Model_cache.clear ();
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~starts:topk ~policy
             ~snapshot ~weights ~request ~rng ())
    | Hier_warm ->
      fun () ->
        ignore
          (Rm_core.Policies.allocate ~engine:Rm_core.Policies.Grouped ~policy
             ~snapshot ~weights ~request ~rng ())
    | Incr ->
      (* A monitor-tick loop: each rep re-degrades a rotating window of
         4 nodes (rows + symmetric columns, O(tV)), stamps a new
         snapshot record sharing the mutated matrices, patches the
         cached model forward (get_derived) and allocates pruned. The
         matrices are copied once up front so the mutation never leaks
         into the other engines' shared snapshot. *)
      let v = List.length snapshot.Rm_monitor.Snapshot.live in
      let peak = 125.0 in
      let cur =
        ref
          {
            snapshot with
            Rm_monitor.Snapshot.time = snapshot.Rm_monitor.Snapshot.time +. 1.0;
            bw_mb_s = Matrix.copy snapshot.Rm_monitor.Snapshot.bw_mb_s;
            lat_us = Matrix.copy snapshot.Rm_monitor.Snapshot.lat_us;
          }
      in
      let tick = ref 0 in
      fun () ->
        let prev = !cur in
        incr tick;
        let touched = List.init 4 (fun d -> ((!tick * 4) + d) mod v) in
        let bw = prev.Rm_monitor.Snapshot.bw_mb_s in
        let lat = prev.Rm_monitor.Snapshot.lat_us in
        List.iter
          (fun i ->
            let c = Rm_stats.Rng.uniform rng ~lo:0.0 ~hi:0.8 in
            let b = peak *. (1.0 -. c) in
            let l = 50.0 +. (200.0 *. c) in
            for j = 0 to v - 1 do
              if j <> i then begin
                Matrix.set bw i j b;
                Matrix.set bw j i b;
                Matrix.set lat i j l;
                Matrix.set lat j i l
              end
            done)
          touched;
        let next =
          { prev with Rm_monitor.Snapshot.time = prev.Rm_monitor.Snapshot.time +. 0.01 }
        in
        ignore (Rm_core.Model_cache.get_derived next ~prev ~touched ~weights);
        ignore
          (Rm_core.Policies.allocate ~engine:flat ~starts:topk ~policy
             ~snapshot:next ~weights ~request ~rng ());
        cur := next
  in
  (* Warm the cache (and, for the parallel engine, the domain pool; for
     incr, the initial full model build) outside the timed loop; the
     other engines pay their full cost per call by design. *)
  (match engine with
  | Dense_warm | Dense_par | Pruned_warm | Hier_warm | Incr -> run ()
  | Naive | Dense_cold | Pruned_fresh -> ());
  let t0 = Unix.gettimeofday () in
  let rec loop reps =
    run ();
    let reps = reps + 1 in
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed >= budget_s || reps >= 500_000 then (reps, elapsed)
    else loop reps
  in
  let reps, elapsed = loop 0 in
  (float_of_int reps /. Float.max elapsed 1e-9, reps)

(* Keyed (v, policy, kind): "dense-warm/naive" is the fast-path
   headline, "dense-parN/dense-warm" isolates what the domain sweep
   adds on top of it, "pruned-warm-kK/dense-warm" what start pruning
   adds, "incr-kK/pruned-fresh-kK" what incremental NL maintenance adds
   over a per-call rebuild, and "hier-warm/pruned-warm-kK" where the
   two-level allocator sits relative to the pruned flat sweep. Kinds
   keep the engine's domain count / starts-mode in the key, so a
   --domains 8 or --topk 64 run is never regression-checked against a
   baseline recorded with different knobs — mismatched keys simply find
   no counterpart and are skipped. *)
let scale_speedups rows =
  let find v policy pred =
    List.find_opt (fun r -> r.v = v && r.policy = policy && pred r.engine) rows
  in
  let ratio (r : scale_row) denom_pred kind =
    find r.v r.policy denom_pred
    |> Option.map (fun (d : scale_row) ->
           ((r.v, r.policy, kind), r.rate /. d.rate))
  in
  List.filter_map
    (fun r ->
      if r.engine = "dense-warm" then
        ratio r (String.equal "naive") "dense-warm/naive"
      else if is_par_engine r.engine then
        ratio r (String.equal "dense-warm") (r.engine ^ "/dense-warm")
      else if has_prefix "pruned-warm-k" r.engine then
        ratio r (String.equal "dense-warm") (r.engine ^ "/dense-warm")
      else if has_prefix "incr-k" r.engine then begin
        (* The control with the same starts-mode: incr-kK vs
           pruned-fresh-kK isolates the model-maintenance strategy. *)
        let suffix =
          String.sub r.engine 6 (String.length r.engine - 6)
        in
        let control = "pruned-fresh-k" ^ suffix in
        ratio r (String.equal control) (r.engine ^ "/" ^ control)
      end
      else if r.engine = "hier-warm" then
        find r.v r.policy (has_prefix "pruned-warm-k")
        |> Option.map (fun (d : scale_row) ->
               ((r.v, r.policy, "hier-warm/" ^ d.engine), r.rate /. d.rate))
      else None)
    rows

let scale_rows_of_json j =
  Json.to_list (Json.member "rows" j)
  |> List.map (fun row ->
         {
           v = Json.to_int (Json.member "v" row);
           policy = Json.to_str (Json.member "policy" row);
           engine = Json.to_str (Json.member "engine" row);
           rate = Json.to_float (Json.member "allocs_per_sec" row);
           reps = Json.to_int (Json.member "reps" row);
         })

(* Resident set size in MB from /proc/self/status — the bench's memory
   guard at V=16384, where one leaked model bundle is ~4 GB. *)
let rss_mb () =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
    let rec go () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          Scanf.sscanf
            (String.sub line 6 (String.length line - 6))
            " %d kB"
            (fun kb -> kb / 1024)
        else go ()
      | exception End_of_file -> 0
    in
    let mb = go () in
    close_in ic;
    mb

let scale () =
  let sizes =
    if !quick then [ 60; 240 ]
    else [ 60; 240; 1024; 2048; 4096; 8192; 16384 ]
  in
  let budget_s = if !quick then 0.2 else 1.0 in
  let weights = Rm_core.Weights.paper_default in
  let request = Rm_core.Request.make ~ppn:4 ~alpha:0.5 ~procs:48 () in
  let nl_policy = Rm_core.Policies.Network_load_aware in
  let rows = ref [] in
  let rss_by_size = ref [] in
  List.iter
    (fun v ->
      let snapshot = synthetic_snapshot ~v in
      let cell policy engine =
        let rate, reps =
          measure_cell ~budget_s ~snapshot ~weights ~request ~policy engine
        in
        rows :=
          {
            v;
            policy = Rm_core.Policies.name policy;
            engine = engine_name engine;
            rate;
            reps;
          }
          :: !rows
      in
      if v <= scale_exhaustive_max_v then
        List.iter
          (fun policy -> List.iter (cell policy) scale_engines)
          Rm_core.Policies.all;
      (* The pruned/incremental engines are network-load-aware only:
         the other policies never touch the NL model, so pruning and
         incremental maintenance change nothing for them. *)
      List.iter (cell nl_policy) scale_incr_engines;
      (* Drop the snapshot's cached models before the next (larger)
         size; at V=4096 each retained model is hundreds of MB, at
         V=16384 several GB — then assert the process actually gave the
         memory back. *)
      Rm_core.Model_cache.clear ();
      Gc.full_major ();
      let rss = rss_mb () in
      rss_by_size := (v, rss) :: !rss_by_size;
      if rss > !scale_max_rss_mb then
        failwith
          (Printf.sprintf
             "bench scale: RSS %d MB after V=%d exceeds --max-rss-mb %d \
              (model bundles retained?)"
             rss v !scale_max_rss_mb))
    sizes;
  let rows = List.rev !rows in
  let speedups = scale_speedups rows in
  let rate_of v policy engine =
    List.find_opt
      (fun r -> r.v = v && r.policy = policy && r.engine = engine)
      rows
    |> Option.fold ~none:nan ~some:(fun r -> r.rate)
  in
  let buf = Buffer.create 1024 in
  let par_engine = engine_name Dense_par in
  let speedup_str v p kind =
    (* Sizes past scale_exhaustive_max_v have no dense-warm partner for
       the pruned/warm ratio — render a dash, not "nanx". *)
    match List.assoc_opt (v, p, kind) speedups with
    | Some r -> Printf.sprintf "%.1fx" r
    | None -> "-"
  in
  Experiments.Render.table
    ~header:
      [
        "V"; "policy"; "naive/s"; "dense-cold/s"; "dense-warm/s";
        par_engine ^ "/s"; "speedup"; "par-speedup";
      ]
    ~rows:
      (List.concat_map
         (fun v ->
           List.map
             (fun policy ->
               let p = Rm_core.Policies.name policy in
               [
                 string_of_int v;
                 p;
                 Printf.sprintf "%.1f" (rate_of v p "naive");
                 Printf.sprintf "%.1f" (rate_of v p "dense-cold");
                 Printf.sprintf "%.1f" (rate_of v p "dense-warm");
                 Printf.sprintf "%.1f" (rate_of v p par_engine);
                 speedup_str v p "dense-warm/naive";
                 speedup_str v p (par_engine ^ "/dense-warm");
               ])
             Rm_core.Policies.all)
         (List.filter (fun v -> v <= scale_exhaustive_max_v) sizes))
    buf;
  Buffer.add_string buf "\n";
  let pruned_warm = engine_name Pruned_warm in
  let pruned_fresh = engine_name Pruned_fresh in
  let incr_e = engine_name Incr in
  let nl_name = Rm_core.Policies.name nl_policy in
  Experiments.Render.table
    ~header:
      [
        "V"; pruned_warm ^ "/s"; pruned_fresh ^ "/s"; incr_e ^ "/s";
        "hier-warm/s"; "pruned/warm"; "incr/fresh"; "hier/pruned";
      ]
    ~rows:
      (List.map
         (fun v ->
           [
             string_of_int v;
             Printf.sprintf "%.1f" (rate_of v nl_name pruned_warm);
             Printf.sprintf "%.1f" (rate_of v nl_name pruned_fresh);
             Printf.sprintf "%.1f" (rate_of v nl_name incr_e);
             Printf.sprintf "%.1f" (rate_of v nl_name "hier-warm");
             speedup_str v nl_name (pruned_warm ^ "/dense-warm");
             speedup_str v nl_name (incr_e ^ "/" ^ pruned_fresh);
             speedup_str v nl_name ("hier-warm/" ^ pruned_warm);
           ])
         sizes)
    buf;
  List.iter
    (fun (v, rss) ->
      Buffer.add_string buf
        (Printf.sprintf "rss after V=%d: %d MB (limit %d)\n" v rss
           !scale_max_rss_mb))
    (List.rev !rss_by_size);
  let json =
    Json.Obj
      [
        ("schema", Json.Str "rm-bench-allocator/v1");
        ("quick", Json.Bool !quick);
        ("domains", Json.Num (float_of_int !scale_domains));
        ("topk", Json.Num (float_of_int !scale_topk));
        (* The par-speedup ratio tracks host parallelism; recording the
           core count lets a later --baseline run on different hardware
           skip that comparison instead of failing spuriously. *)
        ( "cores",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ( "request",
          Json.Obj
            [
              ("procs", Json.Num 48.0);
              ("ppn", Json.Num 4.0);
              ("alpha", Json.Num 0.5);
            ] );
        ( "rows",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("v", Json.Num (float_of_int r.v));
                     ("policy", Json.Str r.policy);
                     ("engine", Json.Str r.engine);
                     ("allocs_per_sec", Json.Num r.rate);
                     ("reps", Json.Num (float_of_int r.reps));
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_allocator.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Buffer.add_string buf "\nwrote BENCH_allocator.json\n";
  (match !baseline_file with
  | None -> ()
  | Some file ->
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let base_json = Json.of_string contents in
    let base_speedups = scale_speedups (scale_rows_of_json base_json) in
    (* Par-speedup ratios are sensitive to both the domain count (in
       the key, so mismatches find no counterpart) and the host's core
       count (recorded since schema v1 grew "cores"; absent in older
       baselines). Comparing across either difference produces spurious
       regressions, so those rows are skipped with a notice instead. *)
    let cores = Domain.recommended_domain_count () in
    let base_cores =
      match Json.member "cores" base_json with
      | Json.Null -> None
      | j -> Some (Json.to_int j)
    in
    let is_par_kind kind =
      String.length kind >= 9 && String.sub kind 0 9 = "dense-par"
    in
    let skipped_cores = ref 0 and skipped_domains = ref 0 in
    let regressions =
      List.filter_map
        (fun (((v, p, kind) as key), base) ->
          let par = is_par_kind kind in
          if par && base_cores <> None && base_cores <> Some cores then begin
            incr skipped_cores;
            None
          end
          else
            match List.assoc_opt key speedups with
            | Some cur
              when Float.is_finite base && base > 0.0 && cur < base /. 2.0 ->
              Some (key, base, cur)
            | Some _ -> None
            | None ->
              (* Attribute the miss: a par row measured in this run
                 under a different domain count is a deliberate skip
                 worth a notice; a (v, policy) this run never measured
                 (e.g. --quick vs a full baseline) stays silent, as
                 non-par rows always have. *)
              if
                par
                && List.exists
                     (fun ((v', p', k'), _) ->
                       v' = v && p' = p && is_par_kind k')
                     speedups
              then incr skipped_domains;
              None)
        base_speedups
    in
    if !skipped_cores > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "baseline %s: %d par-speedup rows not compared (baseline host \
            had %d cores, this one %d)\n"
           file !skipped_cores
           (Option.value ~default:0 base_cores)
           cores);
    if !skipped_domains > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "baseline %s: %d par-speedup rows not compared (baseline domain \
            count differs from --domains %d)\n"
           file !skipped_domains !scale_domains);
    if regressions = [] then
      Buffer.add_string buf
        (Printf.sprintf "baseline %s: no policy regressed >2x in speedup\n"
           file)
    else begin
      List.iter
        (fun ((v, p, kind), base, cur) ->
          Buffer.add_string buf
            (Printf.sprintf
               "REGRESSION: V=%d %s %s speedup %.1fx < half of baseline \
                %.1fx\n"
               v p kind cur base))
        regressions;
      print_string (Buffer.contents buf);
      failwith "bench scale: speedup regression against baseline"
    end);
  Buffer.contents buf

(* --- serve: closed-loop load against the resident daemon ---------------- *)

(* Drives N concurrent clients against a brokerd instance and reports
   allocs/sec plus p50/p99 request latency from the daemon's own
   service.request_latency_s histogram (via Slo's bucket percentiles).

   Default is an in-process comparison: the same workload runs once
   against a per-request-snapshot daemon (the cost a one-shot CLI pays
   on every call: fresh monitor capture, cold model cache) and once
   against the per-tick batching daemon, and the ratio is the headline.
   --serve-socket PATH instead drives an externally started daemon (one
   row, no comparison) — the CI smoke path.

   Results go to stdout and BENCH_serve.json; --serve-baseline FILE
   compares batched allocs/sec and the batched/per-request speedup
   against a committed run, skipping with a notice when the host core
   count differs (same convention as the scale gate), and
   --serve-min-speedup X fails the run if batching does not deliver at
   least Xx. *)

module Service = Rm_service

let serve_clients = ref 64
let serve_seconds = ref 3.0
let serve_socket : string option ref = ref None
let serve_baseline : string option ref = ref None
let serve_min_speedup = ref 0.0
let serve_check = ref false
let serve_open_rate : float option ref = ref None

let serve_policy = Rm_core.Policies.Network_load_aware

type serve_row = {
  mode : string;
  requests : int;
  retries : int;
  req_errors : int;
  rejected : int;
  overlaps : int;
  allocs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
}

(* Per-mode latency percentiles without resetting the registry (resets
   would wipe other sections' metrics in --metrics-out runs): snapshot
   the histogram's bucket counts before and after and take the delta. *)
let latency_buckets_now () =
  match
    Rm_telemetry.Metrics.find
      ~labels:[ ("policy", Rm_core.Policies.name serve_policy) ]
      "service.request_latency_s"
  with
  | None -> None
  | Some m -> Some (Rm_telemetry.Metrics.bucket_counts m)

let latency_delta ~before ~after =
  match (before, after) with
  | _, None -> None
  | None, Some after -> Some after
  | Some before, Some after ->
    Some (List.map2 (fun (ub, b) (_, a) -> (ub, a - b)) before after)

let serve_percentiles delta =
  match delta with
  | Some buckets when List.exists (fun (_, n) -> n > 0) buckets ->
    Some (Rm_sched.Slo.percentiles_of_buckets buckets)
  | _ -> None

(* One closed-loop client: allocate as fast as the daemon answers,
   releasing the oldest allocation every 16th success so the active set
   stays bounded without release traffic dominating. --serve-open-rate
   switches to open-ish arrivals with exponential think times.

   Every grant's node set is checked against every other live grant
   across all clients: an intersection means the daemon double-booked a
   node — the contended overlay-on vs bookkeeping-only headline. When
   the daemon rejects for capacity (overlay mode holds granted nodes
   out of the pool, so 64 clients saturate the cluster by design), the
   client frees its oldest grant and keeps churning. *)
let drive_clients ~endpoint ~clients ~seconds =
  let served = Array.make clients 0 in
  let retried = Array.make clients 0 in
  let errored = Array.make clients 0 in
  let rejected = Array.make clients 0 in
  let overlaps = Array.make clients 0 in
  (* alloc_id -> node ids of grants believed live by their client. An
     entry leaves the table before the release RPC is sent, so a
     re-grant of freed nodes racing the release response is never
     miscounted as a simultaneous overlap. *)
  let live : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let live_mu = Mutex.create () in
  let note_grant alloc_id nodes =
    Mutex.lock live_mu;
    let overlap =
      Hashtbl.fold
        (fun _ held acc -> acc || List.exists (fun n -> List.mem n held) nodes)
        live false
    in
    Hashtbl.replace live alloc_id nodes;
    Mutex.unlock live_mu;
    overlap
  in
  let forget_grant alloc_id =
    Mutex.lock live_mu;
    Hashtbl.remove live alloc_id;
    Mutex.unlock live_mu
  in
  let t0 = Unix.gettimeofday () in
  let stop_at = t0 +. seconds in
  let body i =
    match Service.Client.connect endpoint with
    | exception _ -> errored.(i) <- errored.(i) + 1
    | c ->
      let rng = Rm_stats.Rng.create (7000 + i) in
      let active = Queue.create () in
      let release_oldest () =
        let id = Queue.take active in
        forget_grant id;
        ignore (Service.Client.release c ~alloc_id:id)
      in
      (try
         while Unix.gettimeofday () < stop_at do
           (match Service.Client.allocate c ~ppn:4 ~alpha:0.5 ~procs:16 with
           | Service.Wire.Allocated { alloc_id; allocation; _ } ->
             served.(i) <- served.(i) + 1;
             if note_grant alloc_id (Rm_core.Allocation.node_ids allocation)
             then overlaps.(i) <- overlaps.(i) + 1;
             Queue.add alloc_id active;
             if Queue.length active >= 16 then release_oldest ()
           | Service.Wire.Retry { after_s; _ } ->
             retried.(i) <- retried.(i) + 1;
             Thread.delay (Float.min after_s 0.02)
           | Service.Wire.Error
               {
                 code =
                   Service.Wire.Insufficient_capacity
                 | Service.Wire.No_usable_nodes;
                 _;
               } ->
             rejected.(i) <- rejected.(i) + 1;
             if Queue.is_empty active then Thread.delay 0.002
             else release_oldest ()
           | _ -> errored.(i) <- errored.(i) + 1);
           match !serve_open_rate with
           | Some r when r > 0.0 ->
             Thread.delay
               (-.log (Rm_stats.Rng.uniform rng ~lo:1e-9 ~hi:1.0) /. r)
           | _ -> ()
         done;
         while not (Queue.is_empty active) do
           release_oldest ()
         done
       with _ -> errored.(i) <- errored.(i) + 1);
      Service.Client.close c
  in
  let threads = List.init clients (fun i -> Thread.create body i) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let sum a = Array.fold_left ( + ) 0 a in
  (sum served, sum retried, sum errored, sum rejected, sum overlaps, elapsed)

let serve_row_of ~mode ~requests ~retries ~req_errors ~rejected ~overlaps
    ~elapsed ~delta =
  let p50, p99 =
    match serve_percentiles delta with
    | Some p -> (p.Rm_sched.Slo.p50, p.Rm_sched.Slo.p99)
    | None -> (nan, nan)
  in
  {
    mode;
    requests;
    retries;
    req_errors;
    rejected;
    overlaps;
    allocs_per_sec = float_of_int requests /. Float.max elapsed 1e-9;
    p50_ms = 1000.0 *. p50;
    p99_ms = 1000.0 *. p99;
  }

(* One in-process daemon round: start a server on a private unix
   socket, drive the closed loop, read the latency delta, stop.
   per-request and batched run bookkeeping-only (the historical
   comparison whose speedup ratio is the headline and baseline gate);
   batched-overlay holds granted nodes out of the pool and must grant
   disjoint node sets under full contention. *)
let serve_in_process ~batching ~overlay =
  let mode =
    match (batching, overlay) with
    | false, _ -> "per-request"
    | true, false -> "batched"
    | true, true -> "batched-overlay"
  in
  let path =
    Printf.sprintf "/tmp/rm-bench-serve-%d-%s.sock" (Unix.getpid ()) mode
  in
  (* A cold model cache per mode: batched must earn its hits. *)
  Rm_core.Model_cache.clear ();
  let config =
    {
      (Service.Server.default_config
         ~endpoint:(Service.Server.Unix_socket path))
      with
      batching;
      overlay;
      broker = { Rm_core.Broker.default_config with policy = serve_policy };
    }
  in
  let server = Service.Server.create config in
  Service.Server.start server;
  let before = latency_buckets_now () in
  let requests, retries, req_errors, rejected, overlaps, elapsed =
    drive_clients ~endpoint:(`Unix path) ~clients:!serve_clients
      ~seconds:!serve_seconds
  in
  let delta = latency_delta ~before ~after:(latency_buckets_now ()) in
  Service.Server.stop server;
  serve_row_of ~mode ~requests ~retries ~req_errors ~rejected ~overlaps
    ~elapsed ~delta

(* External daemon: the latency delta comes from scraping /metrics
   before and after and de-cumulating the Prometheus buckets. *)
let scrape_latency_buckets endpoint =
  match Service.Client.http_get endpoint ~path:"/metrics" with
  | exception _ -> None
  | 200, body ->
    let samples = Rm_telemetry.Prometheus.parse body in
    let policy = Rm_core.Policies.name serve_policy in
    let cumulative =
      List.filter_map
        (fun s ->
          if
            s.Rm_telemetry.Prometheus.sample_name
            = "service_request_latency_s_bucket"
            && List.assoc_opt "policy" s.sample_labels = Some policy
          then
            Option.map
              (fun le ->
                ( (match le with
                  | "+Inf" -> infinity
                  | le -> float_of_string le),
                  int_of_float s.sample_value ))
              (List.assoc_opt "le" s.sample_labels)
          else None)
        samples
      |> List.sort compare
    in
    if cumulative = [] then None
    else
      (* De-cumulate back to the per-bucket counts Slo expects. *)
      let _, per_bucket =
        List.fold_left
          (fun (prev, acc) (ub, c) -> (c, (ub, c - prev) :: acc))
          (0, []) cumulative
      in
      Some (List.rev per_bucket)
  | _ -> None

let serve_external path =
  let endpoint = `Unix path in
  let before = scrape_latency_buckets endpoint in
  let requests, retries, req_errors, rejected, overlaps, elapsed =
    drive_clients ~endpoint ~clients:!serve_clients ~seconds:!serve_seconds
  in
  let delta = latency_delta ~before ~after:(scrape_latency_buckets endpoint) in
  serve_row_of ~mode:"external" ~requests ~retries ~req_errors ~rejected
    ~overlaps ~elapsed ~delta

let serve_rows_of_json j =
  (* rejected/overlaps default to 0 for pre-overlay baselines. *)
  let int_or_zero row key =
    match Json.member key row with Json.Null -> 0 | j -> Json.to_int j
  in
  Json.to_list (Json.member "rows" j)
  |> List.map (fun row ->
         {
           mode = Json.to_str (Json.member "mode" row);
           requests = Json.to_int (Json.member "requests" row);
           retries = Json.to_int (Json.member "retries" row);
           req_errors = Json.to_int (Json.member "errors" row);
           rejected = int_or_zero row "rejected";
           overlaps = int_or_zero row "overlaps";
           allocs_per_sec = Json.to_float (Json.member "allocs_per_sec" row);
           p50_ms = Json.to_float (Json.member "p50_ms" row);
           p99_ms = Json.to_float (Json.member "p99_ms" row);
         })

let serve () =
  let was_enabled = Rm_telemetry.Runtime.is_enabled () in
  Rm_telemetry.Runtime.enable ();
  Fun.protect
    ~finally:(fun () ->
      if not was_enabled then Rm_telemetry.Runtime.disable ())
  @@ fun () ->
  if !quick && !serve_seconds > 1.0 then serve_seconds := 1.0;
  let rows =
    match !serve_socket with
    | Some path -> [ serve_external path ]
    | None ->
      [
        serve_in_process ~batching:false ~overlay:false;
        serve_in_process ~batching:true ~overlay:false;
        serve_in_process ~batching:true ~overlay:true;
      ]
  in
  let buf = Buffer.create 1024 in
  Experiments.Render.table
    ~header:
      [
        "mode"; "requests"; "retries"; "errors"; "rejected"; "overlaps";
        "allocs/s"; "p50"; "p99";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.mode;
             string_of_int r.requests;
             string_of_int r.retries;
             string_of_int r.req_errors;
             string_of_int r.rejected;
             string_of_int r.overlaps;
             Printf.sprintf "%.1f" r.allocs_per_sec;
             Printf.sprintf "%.2fms" r.p50_ms;
             Printf.sprintf "%.2fms" r.p99_ms;
           ])
         rows)
    buf;
  let find_mode m = List.find_opt (fun r -> r.mode = m) rows in
  let speedup =
    match (find_mode "per-request", find_mode "batched") with
    | Some ctl, Some bat when ctl.allocs_per_sec > 0.0 ->
      Some (bat.allocs_per_sec /. ctl.allocs_per_sec)
    | _ -> None
  in
  Option.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "\nbatched/per-request speedup: %.1fx\n" s))
    speedup;
  let json =
    Json.Obj
      [
        ("schema", Json.Str "rm-bench-serve/v1");
        ("quick", Json.Bool !quick);
        ("clients", Json.Num (float_of_int !serve_clients));
        ("seconds", Json.Num !serve_seconds);
        (* Wall-clock rates track host parallelism and per-core speed;
           a --serve-baseline run on different hardware skips instead
           of failing spuriously (scale-gate convention). *)
        ( "cores",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ( "request",
          Json.Obj
            [
              ("procs", Json.Num 16.0);
              ("ppn", Json.Num 4.0);
              ("alpha", Json.Num 0.5);
              ("policy", Json.Str (Rm_core.Policies.name serve_policy));
            ] );
        ( "speedup",
          match speedup with Some s -> Json.Num s | None -> Json.Null );
        ( "rows",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("mode", Json.Str r.mode);
                     ("requests", Json.Num (float_of_int r.requests));
                     ("retries", Json.Num (float_of_int r.retries));
                     ("errors", Json.Num (float_of_int r.req_errors));
                     ("rejected", Json.Num (float_of_int r.rejected));
                     ("overlaps", Json.Num (float_of_int r.overlaps));
                     ("allocs_per_sec", Json.Num r.allocs_per_sec);
                     ("p50_ms", Json.Num r.p50_ms);
                     ("p99_ms", Json.Num r.p99_ms);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Buffer.add_string buf "wrote BENCH_serve.json\n";
  let failures = ref [] in
  if !serve_check then begin
    List.iter
      (fun r ->
        if r.allocs_per_sec <= 0.0 then
          failures :=
            Printf.sprintf "CHECK FAILED: %s allocs/sec is zero" r.mode
            :: !failures;
        if not (Float.is_finite r.p99_ms) || r.p99_ms <= 0.0 then
          failures :=
            Printf.sprintf "CHECK FAILED: %s p99 not populated" r.mode
            :: !failures)
      rows;
    (* The tentpole guarantee: with grants overlaid, simultaneously
       active allocations never share a node even at full contention. *)
    (match find_mode "batched-overlay" with
    | Some r when r.overlaps > 0 ->
      failures :=
        Printf.sprintf
          "CHECK FAILED: overlay mode double-booked nodes (%d overlapping \
           grants)"
          r.overlaps
        :: !failures
    | Some r ->
      Buffer.add_string buf
        (Printf.sprintf
           "check: overlay mode granted %d allocations with zero \
            overlapping node sets (%d capacity rejections absorbed)\n"
           r.requests r.rejected)
    | None -> ());
    if !failures = [] then
      Buffer.add_string buf
        "check: all modes served requests with populated latency percentiles\n"
  end;
  (match (!serve_min_speedup, speedup) with
  | m, Some s when m > 0.0 && s < m ->
    failures :=
      Printf.sprintf "CHECK FAILED: batched speedup %.1fx < required %.1fx" s
        m
      :: !failures
  | m, None when m > 0.0 && !serve_socket = None ->
    failures := "CHECK FAILED: speedup could not be computed" :: !failures
  | _ -> ());
  (match !serve_baseline with
  | None -> ()
  | Some file ->
    let contents =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let base_json = Json.of_string contents in
    let cores = Domain.recommended_domain_count () in
    let base_cores =
      match Json.member "cores" base_json with
      | Json.Null -> None
      | j -> Some (Json.to_int j)
    in
    if base_cores <> None && base_cores <> Some cores then
      Buffer.add_string buf
        (Printf.sprintf
           "baseline %s: not compared (baseline host had %d cores, this \
            one %d)\n"
           file
           (Option.value ~default:0 base_cores)
           cores)
    else begin
      let base_rows = serve_rows_of_json base_json in
      let compared = ref 0 in
      List.iter
        (fun (base : serve_row) ->
          match find_mode base.mode with
          | Some cur
            when base.allocs_per_sec > 0.0
                 && cur.allocs_per_sec < base.allocs_per_sec /. 2.0 ->
            incr compared;
            failures :=
              Printf.sprintf
                "REGRESSION: %s %.1f allocs/s < half of baseline %.1f"
                base.mode cur.allocs_per_sec base.allocs_per_sec
              :: !failures
          | Some _ -> incr compared
          | None -> ())
        base_rows;
      if !compared > 0 && !failures = [] then
        Buffer.add_string buf
          (Printf.sprintf
             "baseline %s: no mode regressed >2x in allocs/sec\n" file)
    end);
  List.iter
    (fun f -> Buffer.add_string buf (f ^ "\n"))
    (List.rev !failures);
  if !failures <> [] then begin
    print_string (Buffer.contents buf);
    failwith "bench serve: check failed"
  end;
  Buffer.contents buf

(* --- Sections ----------------------------------------------------------- *)

(* --- matrix: the scenario × policy × engine experiment matrix ----------- *)

(* One merged artifact (rm-matrix/v1) plus the rendered dashboard; the
   committed BENCH_matrix.json baseline gates deterministic queue-level
   fields everywhere and allocs/sec ratios when the host core count
   matches (docs/OBSERVABILITY.md §6). *)

let matrix_out = ref "BENCH_matrix.json"
let matrix_html = ref "dashboard.html"
let matrix_md = ref "dashboard.md"
let matrix_ratio = ref 2.0
let matrix_prior : string list ref = ref []

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let matrix () =
  let module M = Experiments.Matrix in
  let module D = Experiments.Dashboard in
  let buf = Buffer.create 4096 in
  let spec = if !quick then M.quick_spec else M.full_spec in
  let artifact = M.run spec in
  write_file !matrix_out (M.to_string artifact ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "wrote %s (%s, %d cells)\n" !matrix_out M.schema_version
       (List.length artifact.M.cells));
  let baseline =
    match !baseline_file with
    | None -> None
    | Some file -> (
      match M.of_string (read_file file) with
      | Ok b -> Some b
      | Error m ->
        Buffer.add_string buf
          (Printf.sprintf "baseline %s not comparable (%s); gate skipped\n"
             file m);
        None)
  in
  let history =
    List.filter_map
      (fun file ->
        match M.of_string (read_file file) with
        | Ok a -> Some (Filename.basename file, a)
        | Error m ->
          Buffer.add_string buf
            (Printf.sprintf "prior artifact %s ignored (%s)\n" file m);
          None)
      (List.rev !matrix_prior)
  in
  let side_json path =
    if Sys.file_exists path then
      match Json.of_string (read_file path) with
      | j -> Some j
      | exception Failure _ -> None
    else None
  in
  let input =
    D.make ~history ?baseline ~ratio:!matrix_ratio
      ?bench_allocator:(side_json "BENCH_allocator.json")
      ?bench_serve:(side_json "BENCH_serve.json")
      ?bench_malleable:(side_json "BENCH_malleable.json")
      ~current:artifact ()
  in
  write_file !matrix_html (D.html input);
  write_file !matrix_md (D.markdown input);
  Buffer.add_string buf
    (Printf.sprintf "wrote %s, %s\n" !matrix_html !matrix_md);
  Buffer.add_string buf (D.markdown input);
  (match baseline with
  | None -> ()
  | Some _ ->
    let gated = D.verdicts input in
    if not (M.gate_ok gated) then begin
      print_string (Buffer.contents buf);
      failwith "bench matrix: cell regression against baseline"
    end);
  Buffer.contents buf

(* --- malleable: rigid vs grow/shrink, requeue vs shrink recovery ------- *)

(* One rm-malleable/v1 artifact; the committed BENCH_malleable.json
   baseline gates the deterministic queue- and chaos-level fields, and
   the study's own improvement claims are re-checked on every run. *)

let malleable_out = ref "BENCH_malleable.json"

let malleable () =
  let module MS = Experiments.Malleable_study in
  let buf = Buffer.create 1024 in
  let artifact = MS.run ~job_count:(if !quick then 6 else 10) () in
  write_file !malleable_out (MS.to_string artifact ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "wrote %s (%s)\n" !malleable_out MS.schema_version);
  Buffer.add_string buf (MS.render artifact);
  (match MS.improvement_failures artifact with
  | [] -> ()
  | fails ->
    print_string (Buffer.contents buf);
    failwith ("bench malleable: " ^ String.concat "; " fails));
  (match !baseline_file with
  | None -> ()
  | Some file -> (
    match MS.of_string (read_file file) with
    | Error m ->
      Buffer.add_string buf
        (Printf.sprintf "baseline %s not comparable (%s); gate skipped\n" file
           m)
    | Ok baseline -> (
      match MS.gate ~baseline ~current:artifact with
      | [] -> Buffer.add_string buf "malleable gate: pass\n"
      | fails ->
        print_string (Buffer.contents buf);
        List.iter (fun m -> Printf.printf "FAIL %s\n" m) fails;
        failwith "bench malleable: regression against baseline")));
  Buffer.contents buf

let sections : (string * (unit -> string)) list =
  [
    ( "fig1",
      fun () ->
        Experiments.Traces.render
          (Experiments.Traces.run
             ~hours:(if !quick then 12.0 else 48.0)
             ~seed ()) );
    ( "fig2",
      fun () ->
        Experiments.Bandwidth_map.render
          (Experiments.Bandwidth_map.run
             ~hours:(if !quick then 6.0 else 24.0)
             ~seed:(seed + 3) ()) );
    ("fig4", fun () -> Experiments.Minimd_sweep.render_fig4 (Lazy.force minimd));
    ("table2", fun () -> Experiments.Minimd_sweep.render_table2 (Lazy.force minimd));
    ("fig5", fun () -> Experiments.Minimd_sweep.render_fig5 (Lazy.force minimd));
    ("fig6", fun () -> Experiments.Minife_sweep.render_fig6 (Lazy.force minife));
    ("table3", fun () -> Experiments.Minife_sweep.render_table3 (Lazy.force minife));
    ("table4", fun () -> Experiments.Case_study.render_table4 (Lazy.force case_study));
    ("fig7", fun () -> Experiments.Case_study.render_fig7 (Lazy.force case_study));
    ("micro", fun () -> micro ());
    ("scale", fun () -> scale ());
    ("serve", fun () -> serve ());
    ("matrix", fun () -> matrix ());
    ("malleable", fun () -> malleable ());
    ( "queue",
      fun () ->
        Experiments.Queue_study.render
          (Experiments.Queue_study.run ~job_count:(if !quick then 4 else 10) ()) );
    ( "slo",
      fun () ->
        match
          Experiments.Queue_study.run_slo
            ~job_count:(if !quick then 4 else 10)
            ()
        with
        | [] -> "no dispatch-wait observations (no job ran)\n"
        | reports -> Rm_sched.Slo.render reports );
    ( "interference",
      fun () ->
        Experiments.Queue_study.render_interference
          (Experiments.Queue_study.interference ()) );
    ( "chaos",
      fun () ->
        Experiments.Chaos_study.render
          (Experiments.Chaos_study.run
             ~job_count:(if !quick then 4 else 10)
             ~intensities:
               (if !quick then Experiments.Chaos_study.[ Off; Heavy ]
                else Experiments.Chaos_study.[ Off; Light; Heavy ])
             ()) );
    ( "ablation-alpha",
      fun () ->
        Experiments.Ablations.render_alpha_sweep
          (Experiments.Ablations.alpha_sweep ~reps:(if !quick then 1 else 3) ()) );
    ( "ablation-netweights",
      fun () ->
        Experiments.Ablations.render_net_weight_sweep
          (Experiments.Ablations.net_weight_sweep
             ~reps:(if !quick then 1 else 3)
             ()) );
    ( "ablation-staleness",
      fun () ->
        Experiments.Ablations.render_staleness_sweep
          (Experiments.Ablations.staleness_sweep
             ~reps:(if !quick then 1 else 3)
             ()) );
    ( "ablation-hierarchical",
      fun () ->
        Experiments.Ablations.render_hierarchical_sweep
          (Experiments.Ablations.hierarchical_sweep ()) );
    ( "ablation-madm",
      fun () ->
        Experiments.Ablations.render_madm (Experiments.Ablations.madm_methods ()) );
    ( "ablation-mapping",
      fun () ->
        Experiments.Ablations.render_rank_mapping
          (Experiments.Ablations.rank_mapping ()) );
    ( "ablation-fidelity",
      fun () ->
        Experiments.Ablations.render_monitor_fidelity
          (Experiments.Ablations.monitor_fidelity
             ~reps:(if !quick then 2 else 4) ()) );
    ( "ablation-predictive",
      fun () ->
        Experiments.Ablations.render_predictive
          (Experiments.Ablations.predictive ~reps:(if !quick then 2 else 4) ()) );
    ( "ablation-multicluster",
      fun () ->
        Experiments.Ablations.render_multicluster
          (Experiments.Ablations.multicluster ~reps:(if !quick then 1 else 3) ()) );
    ( "ablation-optimality",
      fun () ->
        Experiments.Ablations.render_optimality
          (Experiments.Ablations.optimality_gap
             ~trials:(if !quick then 10 else 40)
             ()) );
  ]

(* CSV export: raw data behind the sweep/trace sections, written when
   --csv DIR is given. *)
let csv_sections () : (string * string) list =
  [
    ("fig1.csv",
     Experiments.Traces.to_csv
       (Experiments.Traces.run ~hours:(if !quick then 12.0 else 48.0) ~seed ()));
    ("fig2.csv",
     Experiments.Bandwidth_map.to_csv
       (Experiments.Bandwidth_map.run ~hours:(if !quick then 6.0 else 24.0)
          ~seed:(seed + 3) ()));
    ("minimd_runs.csv", Experiments.Sweep.to_csv (Lazy.force minimd));
    ("minife_runs.csv", Experiments.Sweep.to_csv (Lazy.force minife));
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let csv_dir = ref None in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest ->
      quick := true;
      strip rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      strip rest
    | "--baseline" :: file :: rest ->
      baseline_file := Some file;
      strip rest
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 ->
        (* Clamp here, not just inside the pool: the dense-parN engine
           name and baseline key must reflect the domains actually in
           play, and the clamp should be visible, as in rmctl. *)
        let ceiling = Rm_core.Domain_pool.max_workers in
        if n > ceiling then
          Printf.eprintf "bench: --domains %d clamped to %d (pool ceiling)\n%!"
            n ceiling;
        scale_domains := min n ceiling
      | _ ->
        Printf.eprintf "--domains expects a positive integer, got %S\n%!" n;
        exit 2);
      strip rest
    | "--topk" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> scale_topk := n
      | _ ->
        Printf.eprintf "--topk expects a positive integer, got %S\n%!" n;
        exit 2);
      strip rest
    | "--max-rss-mb" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> scale_max_rss_mb := n
      | _ ->
        Printf.eprintf "--max-rss-mb expects a positive integer, got %S\n%!" n;
        exit 2);
      strip rest
    | "--serve-clients" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> serve_clients := n
      | _ ->
        Printf.eprintf "--serve-clients expects a positive integer, got %S\n%!"
          n;
        exit 2);
      strip rest
    | "--serve-seconds" :: s :: rest ->
      (match float_of_string_opt s with
      | Some s when s > 0.0 -> serve_seconds := s
      | _ ->
        Printf.eprintf "--serve-seconds expects a positive number, got %S\n%!"
          s;
        exit 2);
      strip rest
    | "--serve-socket" :: path :: rest ->
      serve_socket := Some path;
      strip rest
    | "--serve-baseline" :: file :: rest ->
      serve_baseline := Some file;
      strip rest
    | "--serve-min-speedup" :: x :: rest ->
      (match float_of_string_opt x with
      | Some x when x >= 0.0 -> serve_min_speedup := x
      | _ ->
        Printf.eprintf
          "--serve-min-speedup expects a non-negative number, got %S\n%!" x;
        exit 2);
      strip rest
    | "--serve-check" :: rest ->
      serve_check := true;
      strip rest
    | "--serve-open-rate" :: r :: rest ->
      (match float_of_string_opt r with
      | Some r when r > 0.0 -> serve_open_rate := Some r
      | _ ->
        Printf.eprintf
          "--serve-open-rate expects a positive rate per client, got %S\n%!" r;
        exit 2);
      strip rest
    | "--matrix-out" :: file :: rest ->
      matrix_out := file;
      strip rest
    | "--malleable-out" :: file :: rest ->
      malleable_out := file;
      strip rest
    | "--matrix-html" :: file :: rest ->
      matrix_html := file;
      strip rest
    | "--matrix-md" :: file :: rest ->
      matrix_md := file;
      strip rest
    | "--matrix-ratio" :: x :: rest ->
      (match float_of_string_opt x with
      | Some x when x >= 1.0 -> matrix_ratio := x
      | _ ->
        Printf.eprintf "--matrix-ratio expects a number >= 1, got %S\n%!" x;
        exit 2);
      strip rest
    | "--matrix-prior" :: file :: rest ->
      matrix_prior := file :: !matrix_prior;
      strip rest
    | "--trace-out" :: file :: rest ->
      trace_out := Some file;
      strip rest
    | "--metrics-out" :: file :: rest ->
      metrics_out := Some file;
      strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  let wanted = if args = [] then List.map fst sections else args in
  if exporting () then begin
    Rm_telemetry.Runtime.enable ();
    Rm_telemetry.Metrics.reset ();
    Rm_telemetry.Trace.clear ()
  end;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        let body = f () in
        let dt = Unix.gettimeofday () -. t0 in
        section (Printf.sprintf "%s  (generated in %.1fs)" name dt) body
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n%!" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    wanted;
  if exporting () then begin
    Experiments.Harness.dump_telemetry ?trace_out:!trace_out
      ?metrics_out:!metrics_out ();
    Option.iter (Printf.printf "wrote %s (chrome trace_event)\n%!") !trace_out;
    Option.iter
      (Printf.printf "wrote %s (prometheus exposition)\n%!")
      !metrics_out
  end;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    Rm_telemetry.Spill.mkdir_p dir;
    List.iter
      (fun (file, contents) ->
        let path = Filename.concat dir file in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      (csv_sections ())

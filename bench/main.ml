(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 1, 2, 4, 5, 6, 7; Tables 2, 3, 4), the §3.3.2
   overhead claim (Bechamel micro-benchmarks) and the DESIGN.md
   ablations.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- --quick # trimmed sweeps
     dune exec bench/main.exe -- fig4 table2 micro ...

   Absolute times come from a simulator, not the authors' testbed; the
   point of each section is the *shape* (who wins, by what factor). *)

module Experiments = Rm_experiments

let quick = ref false
let seed = 2020

(* The miniMD and miniFE sweeps back several sections each; memoize so
   "all" runs them once. *)
let minimd = lazy (Experiments.Minimd_sweep.run ~quick:!quick ~seed ())
let minife = lazy (Experiments.Minife_sweep.run ~quick:!quick ~seed:(seed + 1) ())
let case_study = lazy (Experiments.Case_study.run ~seed:(seed + 2) ())

let section title body =
  let rule = String.make 72 '=' in
  Printf.printf "%s\n%s\n%s\n%s\n%!" rule title rule body

(* --- Bechamel micro-benchmarks (§3.3.2: "~1-2 ms, practically nil") --- *)

let micro () =
  let open Bechamel in
  let cluster = Rm_cluster.Cluster.iitk_reference () in
  let world =
    Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.normal
      ~seed:99
  in
  Rm_workload.World.advance world ~now:3600.0;
  let snapshot = Rm_monitor.Snapshot.of_truth ~time:3600.0 ~world in
  let weights = Rm_core.Weights.paper_default in
  let request = Rm_core.Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let loads = Rm_core.Compute_load.of_snapshot snapshot ~weights in
  let net = Rm_core.Network_load.of_snapshot snapshot ~weights in
  let pc = Rm_core.Effective_procs.of_snapshot snapshot ~loads in
  let capacity node =
    Rm_core.Request.capacity_of request
      ~effective:(Option.value (List.assoc_opt node pc) ~default:1)
  in
  let rng = Rm_stats.Rng.create 7 in
  let measure tests =
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
    let ols =
      Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        rows := (name, ns) :: !rows)
      results;
    List.sort compare !rows
  in
  let full_allocation () =
    ignore
      (Rm_core.Policies.allocate ~policy:Rm_core.Policies.Network_load_aware
         ~snapshot ~weights ~request ~rng)
  in
  let tests =
    Test.make_grouped ~name:"allocator"
      [
        Test.make ~name:"eq1-compute-load"
          (Staged.stage (fun () ->
               ignore (Rm_core.Compute_load.of_snapshot snapshot ~weights)));
        Test.make ~name:"eq2-network-load"
          (Staged.stage (fun () ->
               ignore (Rm_core.Network_load.of_snapshot snapshot ~weights)));
        Test.make ~name:"alg1-one-candidate"
          (Staged.stage (fun () ->
               ignore
                 (Rm_core.Candidate.generate ~start:0 ~loads ~net ~capacity
                    ~request)));
        Test.make ~name:"alg1+2-all-candidates"
          (Staged.stage (fun () ->
               let candidates =
                 Rm_core.Candidate.generate_all ~loads ~net ~capacity ~request
               in
               ignore (Rm_core.Select.best ~candidates ~loads ~net ~request)));
        Test.make ~name:"full-allocation-from-snapshot"
          (Staged.stage full_allocation);
        Test.make ~name:"telemetry-disabled-counter-op"
          (Staged.stage
             (let c = Rm_telemetry.Metrics.counter "bench.disabled_op" in
              fun () -> Rm_telemetry.Metrics.incr c));
      ]
  in
  (* The instrumented allocator with the telemetry switch off is the
     shipping default; run it again with the switch on (metrics + audit
     ring recording) to price the instrumentation itself. *)
  assert (not (Rm_telemetry.Runtime.is_enabled ()));
  let rows_off = measure tests in
  Rm_telemetry.Runtime.enable ();
  let rows_on =
    measure
      (Test.make_grouped ~name:"allocator"
         [
           Test.make ~name:"full-allocation-telemetry-on"
             (Staged.stage full_allocation);
         ])
  in
  Rm_telemetry.Runtime.disable ();
  Rm_telemetry.Metrics.reset ();
  Rm_telemetry.Audit.clear ();
  let rows = rows_off @ rows_on in
  let buf = Buffer.create 1024 in
  Experiments.Render.table
    ~header:[ "operation (60-node cluster)"; "time" ]
    ~rows:
      (List.map
         (fun (name, ns) -> [ name; Printf.sprintf "%.1f us" (ns /. 1e3) ])
         rows)
    buf;
  Buffer.add_string buf
    "\npaper claim (section 3.3.2): the whole algorithm runs in ~1-2 ms;\n\
     'full-allocation-from-snapshot' above is the comparable number.\n";
  (match
     ( List.assoc_opt "allocator/full-allocation-from-snapshot" rows,
       List.assoc_opt "allocator/full-allocation-telemetry-on" rows,
       List.assoc_opt "allocator/telemetry-disabled-counter-op" rows )
   with
  | Some off, Some on, Some op when Float.is_finite off && off > 0.0 ->
    (* The disabled hot path performs a handful of boolean checks; bound
       it by 8 disabled metric ops per allocation. *)
    let disabled_pct = 100.0 *. (8.0 *. op) /. off in
    let enabled_pct = 100.0 *. (on -. off) /. off in
    Buffer.add_string buf
      (Printf.sprintf
         "\n\
          rm_telemetry overhead on the allocator hot path:\n\
         \  disabled (shipping default): ~%.3f%% (8 gated sites x %.1f ns \
          per no-op, budget < 5%%)\n\
         \  enabled (metrics + decision audit): %+.1f%%\n"
         disabled_pct op enabled_pct)
  | _ -> ());
  Buffer.contents buf

(* --- Sections ----------------------------------------------------------- *)

let sections : (string * (unit -> string)) list =
  [
    ( "fig1",
      fun () ->
        Experiments.Traces.render
          (Experiments.Traces.run
             ~hours:(if !quick then 12.0 else 48.0)
             ~seed ()) );
    ( "fig2",
      fun () ->
        Experiments.Bandwidth_map.render
          (Experiments.Bandwidth_map.run
             ~hours:(if !quick then 6.0 else 24.0)
             ~seed:(seed + 3) ()) );
    ("fig4", fun () -> Experiments.Minimd_sweep.render_fig4 (Lazy.force minimd));
    ("table2", fun () -> Experiments.Minimd_sweep.render_table2 (Lazy.force minimd));
    ("fig5", fun () -> Experiments.Minimd_sweep.render_fig5 (Lazy.force minimd));
    ("fig6", fun () -> Experiments.Minife_sweep.render_fig6 (Lazy.force minife));
    ("table3", fun () -> Experiments.Minife_sweep.render_table3 (Lazy.force minife));
    ("table4", fun () -> Experiments.Case_study.render_table4 (Lazy.force case_study));
    ("fig7", fun () -> Experiments.Case_study.render_fig7 (Lazy.force case_study));
    ("micro", fun () -> micro ());
    ( "queue",
      fun () ->
        Experiments.Queue_study.render
          (Experiments.Queue_study.run ~job_count:(if !quick then 4 else 10) ()) );
    ( "interference",
      fun () ->
        Experiments.Queue_study.render_interference
          (Experiments.Queue_study.interference ()) );
    ( "ablation-alpha",
      fun () ->
        Experiments.Ablations.render_alpha_sweep
          (Experiments.Ablations.alpha_sweep ~reps:(if !quick then 1 else 3) ()) );
    ( "ablation-netweights",
      fun () ->
        Experiments.Ablations.render_net_weight_sweep
          (Experiments.Ablations.net_weight_sweep
             ~reps:(if !quick then 1 else 3)
             ()) );
    ( "ablation-staleness",
      fun () ->
        Experiments.Ablations.render_staleness_sweep
          (Experiments.Ablations.staleness_sweep
             ~reps:(if !quick then 1 else 3)
             ()) );
    ( "ablation-hierarchical",
      fun () ->
        Experiments.Ablations.render_hierarchical_sweep
          (Experiments.Ablations.hierarchical_sweep ()) );
    ( "ablation-madm",
      fun () ->
        Experiments.Ablations.render_madm (Experiments.Ablations.madm_methods ()) );
    ( "ablation-mapping",
      fun () ->
        Experiments.Ablations.render_rank_mapping
          (Experiments.Ablations.rank_mapping ()) );
    ( "ablation-fidelity",
      fun () ->
        Experiments.Ablations.render_monitor_fidelity
          (Experiments.Ablations.monitor_fidelity
             ~reps:(if !quick then 2 else 4) ()) );
    ( "ablation-predictive",
      fun () ->
        Experiments.Ablations.render_predictive
          (Experiments.Ablations.predictive ~reps:(if !quick then 2 else 4) ()) );
    ( "ablation-multicluster",
      fun () ->
        Experiments.Ablations.render_multicluster
          (Experiments.Ablations.multicluster ~reps:(if !quick then 1 else 3) ()) );
    ( "ablation-optimality",
      fun () ->
        Experiments.Ablations.render_optimality
          (Experiments.Ablations.optimality_gap
             ~trials:(if !quick then 10 else 40)
             ()) );
  ]

(* CSV export: raw data behind the sweep/trace sections, written when
   --csv DIR is given. *)
let csv_sections () : (string * string) list =
  [
    ("fig1.csv",
     Experiments.Traces.to_csv
       (Experiments.Traces.run ~hours:(if !quick then 12.0 else 48.0) ~seed ()));
    ("fig2.csv",
     Experiments.Bandwidth_map.to_csv
       (Experiments.Bandwidth_map.run ~hours:(if !quick then 6.0 else 24.0)
          ~seed:(seed + 3) ()));
    ("minimd_runs.csv", Experiments.Sweep.to_csv (Lazy.force minimd));
    ("minife_runs.csv", Experiments.Sweep.to_csv (Lazy.force minife));
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let csv_dir = ref None in
  let rec strip = function
    | [] -> []
    | "--quick" :: rest ->
      quick := true;
      strip rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  let wanted = if args = [] then List.map fst sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        let body = f () in
        let dt = Unix.gettimeofday () -. t0 in
        section (Printf.sprintf "%s  (generated in %.1fs)" name dt) body
      | None ->
        Printf.eprintf "unknown section %S; available: %s\n%!" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    wanted;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (file, contents) ->
        let path = Filename.concat dir file in
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %s\n%!" path)
      (csv_sections ())

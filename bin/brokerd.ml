(* brokerd — the resident allocation daemon, as its own executable.
   `brokerd` and `rmctl serve` share one command definition
   (Serve_cmd); this entry point exists so deployments can ship the
   daemon without the rest of the CLI. *)

let () = exit (Cmdliner.Cmd.eval Serve_cmd.standalone)

(* rmctl — command-line front end to the resource manager on a simulated
   shared cluster.

     rmctl cluster                         describe the reference cluster
     rmctl snapshot   [opts]               monitor view at a point in time
     rmctl allocate   [opts]               one allocation decision
     rmctl compare    [opts]               run one job under all policies
     rmctl run        [opts]               allocate and execute one job
     rmctl forecast   [opts]               NWS-style forecaster demo
     rmctl record     [opts]               record a workload trace to CSV
     rmctl replay     [opts]               allocate against a recorded trace
     rmctl sched      JOBS.csv [opts]      run a job file through the scheduler
     rmctl chaos      [opts]               scheduler vs. a fault plan (node churn, outages)
     rmctl malleable  [opts]               rigid vs. grow/shrink malleability study
     rmctl explain    [opts]               audit one allocation decision
     rmctl metrics    [opts]               run a job with telemetry on, dump metrics
     rmctl serve      [opts]               resident allocation daemon (brokerd)
     rmctl serve-metrics [opts]            write Prometheus expositions on an interval
                                           (deprecated: scrape the daemon instead)
     rmctl slo        [opts]               per-policy scheduler SLO comparison
     rmctl check-export [opts]             validate exported trace / metrics files
     rmctl matrix     [opts]               run the scenario x policy x engine matrix
     rmctl dashboard  MATRIX.json [opts]   render an existing matrix artifact

   Every command simulates from scratch (deterministic in --seed), so
   invocations are reproducible and independent — except `serve`, which
   stays resident and keeps advancing its world until stopped. *)

open Cmdliner

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Weights = Rm_core.Weights
module Compute_load = Rm_core.Compute_load
module Executor = Rm_mpisim.Executor
module Telemetry = Rm_telemetry

(* --- common options -------------------------------------------------- *)

let scenario_arg =
  let parse s =
    match Scenario.by_name s with
    | Some sc -> Ok sc
    | None ->
      Error (`Msg (Printf.sprintf "unknown scenario %S (try: %s)" s
                     (String.concat ", " Scenario.all_names)))
  in
  let print ppf (sc : Scenario.t) = Format.fprintf ppf "%s" sc.Scenario.name in
  Arg.conv (parse, print)

let scenario_t =
  Arg.(value & opt scenario_arg Scenario.normal
       & info [ "scenario" ] ~docv:"NAME" ~doc:"Background workload scenario.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let time_t =
  Arg.(value & opt float 1200.0
       & info [ "time" ] ~docv:"SECONDS"
           ~doc:"Simulated time at which to act (monitor warm-up is ~960s).")

let procs_t =
  Arg.(value & opt int 32 & info [ "procs"; "n" ] ~docv:"N" ~doc:"Process count.")

let ppn_t =
  Arg.(value & opt (some int) (Some 4)
       & info [ "ppn" ] ~docv:"N" ~doc:"Processes per node (omit to use Eq. 3).")

let alpha_t =
  Arg.(value & opt float 0.3
       & info [ "alpha" ] ~docv:"A" ~doc:"Eq. 4 compute weight; beta = 1 - alpha.")

let policy_arg =
  let parse s =
    match Policies.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" (Policies.name p))

let policy_t =
  Arg.(value & opt policy_arg Policies.Network_load_aware
       & info [ "policy" ] ~docv:"NAME"
           ~doc:"random | sequential | load-aware | network-load-aware.")

let app_t =
  Arg.(value & opt (enum [ ("minimd", `Md); ("minife", `Fe) ]) `Md
       & info [ "app" ] ~docv:"APP" ~doc:"minimd or minife.")

let size_t =
  Arg.(value & opt int 16
       & info [ "size" ] ~docv:"S" ~doc:"miniMD box edge s, or miniFE nx.")

(* Evaluates to () after setting the process-wide domain default, so
   commands list it like any other option; the dense candidate sweep
   (and everything built on it: broker, scheduler) picks it up. *)
let domains_t =
  let set = function
    | None -> ()
    | Some n ->
      if n < 1 then begin
        Format.eprintf "--domains must be >= 1 (got %d)@." n;
        exit 2
      end;
      (* set_default_domains clamps silently; surface it so the user is
         not left believing more domains are in play than the pool
         ceiling allows. *)
      if n > Rm_core.Domain_pool.max_workers then
        Format.eprintf "rmctl: --domains %d clamped to %d (pool ceiling)@." n
          Rm_core.Domain_pool.max_workers;
      Rm_core.Domain_pool.set_default_domains n
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some int) None
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "OCaml domains for the dense per-start candidate sweep \
               (default: $(b,RM_ALLOC_DOMAINS) or 1). Allocations are \
               identical for every value; only the wall time changes."))

(* Same shape for the start-pruning default: evaluates to () after
   setting the process-wide Dense_alloc starts mode. *)
let starts_t =
  let set = function
    | None -> ()
    | Some s ->
      (match Rm_core.Dense_alloc.parse_starts s with
      | Ok st -> Rm_core.Dense_alloc.set_default_starts st
      | Error msg ->
        Format.eprintf "--starts: %s (got %S)@." msg s;
        exit 2)
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some string) None
        & info [ "starts" ] ~docv:"K"
            ~doc:
              "Candidate start nodes for the network-load-aware sweep: \
               $(b,all) (exhaustive, the default; also \
               $(b,RM_ALLOC_STARTS)) or a positive count K to expand \
               only the top-K starts by the O(V) CL+degree proxy score. \
               Pruning trades a bounded score regret for an up-to-V/K \
               speedup."))

(* The two allocator knobs ride together on every command. *)
let knobs_t = Term.(const (fun () () -> ()) $ domains_t $ starts_t)

(* --- environment ------------------------------------------------------ *)

let make_env ~scenario ~seed ~time =
  let cluster = Cluster.iitk_reference () in
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario ~seed in
  let rng = Rm_stats.Rng.create (seed + 1) in
  let monitor = System.start ~sim ~world ~rng ~until:(time +. 86_400.0) () in
  Sim.run_until sim time;
  World.advance world ~now:time;
  (cluster, sim, world, monitor, rng)

let app_of kind size ~ranks =
  match kind with
  | `Md -> Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:size) ~ranks
  | `Fe -> Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:size) ~ranks

(* --- cluster ----------------------------------------------------------- *)

let cluster_cmd =
  let run () =
    let cluster = Cluster.iitk_reference () in
    Format.printf "%a@.@." Cluster.pp cluster;
    let topo = Cluster.topology cluster in
    for s = 0 to Topology.switch_count topo - 1 do
      let members = Topology.nodes_of_switch topo s in
      Format.printf "switch %d (%d nodes):@." s (List.length members);
      List.iter
        (fun i -> Format.printf "  %a@." Rm_cluster.Node.pp (Cluster.node cluster i))
        members
    done
  in
  Cmd.v (Cmd.info "cluster" ~doc:"Describe the reference cluster.")
    Term.(const run $ const ())

(* --- snapshot ------------------------------------------------------------ *)

let snapshot_cmd =
  let run scenario seed time =
    let cluster, _sim, _world, monitor, _rng = make_env ~scenario ~seed ~time in
    let snap = System.snapshot monitor ~time in
    let loads = Compute_load.of_snapshot snap ~weights:Weights.paper_default in
    let usable = Compute_load.usable loads in
    Format.printf "t=%.0fs scenario=%s usable=%d/%d staleness=%.0fs@.@." time
      scenario.Scenario.name (List.length usable)
      (Cluster.node_count cluster) (Snapshot.max_staleness snap);
    let ranked =
      List.sort
        (fun a b ->
          Float.compare (Compute_load.get loads ~node:a) (Compute_load.get loads ~node:b))
        usable
    in
    let show n =
      match Snapshot.node_info snap n with
      | Some info ->
        Format.printf "  %-9s CL=%.4f load1m=%.2f util=%.0f%% nic=%.1fMB/s users=%d@."
          info.Snapshot.static.Rm_cluster.Node.hostname
          (Compute_load.get loads ~node:n)
          info.Snapshot.load.Rm_stats.Running_means.m1
          info.Snapshot.util_pct.Rm_stats.Running_means.m1
          info.Snapshot.nic_mb_s.Rm_stats.Running_means.m1 info.Snapshot.users
      | None -> ()
    in
    let rec take k = function [] -> [] | x :: r -> if k = 0 then [] else x :: take (k - 1) r in
    Format.printf "best nodes by compute load (Eq. 1):@.";
    List.iter show (take 5 ranked);
    Format.printf "worst nodes:@.";
    List.iter show (take 5 (List.rev ranked));
    Format.printf "@.mean load/core across cluster: %.2f@."
      (Broker.mean_load_per_core snap ~weights:Weights.paper_default)
  in
  Cmd.v (Cmd.info "snapshot" ~doc:"Show the monitor's view of the cluster.")
    Term.(const run $ scenario_t $ seed_t $ time_t)

(* --- allocate --------------------------------------------------------------- *)

let allocate_cmd =
  let run () scenario seed time procs ppn alpha policy wait =
    let _cluster, _sim, _world, monitor, rng = make_env ~scenario ~seed ~time in
    let snap = System.snapshot monitor ~time in
    let request = Request.make ?ppn ~alpha ~procs () in
    let config =
      { Broker.default_config with Broker.policy; wait_threshold = wait }
    in
    Format.printf "%a via %s@." Request.pp request (Policies.name policy);
    match Broker.decide ~config ~snapshot:snap ~request ~rng with
    | Error e -> Format.printf "error: %a@." Allocation.pp_error e
    | Ok (Broker.Wait _ as d) -> Format.printf "%a@." Broker.pp_decision d
    | Ok (Broker.Allocated a) ->
      Format.printf "%a@.@.machinefile:@.%s@.%s@." Allocation.pp a
        (Rm_core.Hostfile.machinefile ~allocation:a ~cluster:_cluster)
        (Rm_core.Hostfile.mpirun_command ~allocation:a ~cluster:_cluster
           ~program:"./app")
  in
  let wait_t =
    Arg.(value & opt (some float) None
         & info [ "wait-threshold" ] ~docv:"LOAD"
             ~doc:"Recommend waiting above this mean load per core.")
  in
  Cmd.v (Cmd.info "allocate" ~doc:"Make one allocation decision.")
    Term.(const run $ knobs_t $ scenario_t $ seed_t $ time_t $ procs_t
          $ ppn_t $ alpha_t $ policy_t $ wait_t)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let run () scenario seed time procs ppn alpha policy app size use_mapping =
    let _cluster, _sim, world, monitor, rng = make_env ~scenario ~seed ~time in
    let snap = System.snapshot monitor ~time in
    let request = Request.make ?ppn ~alpha ~procs () in
    match
      Policies.allocate ~policy ~snapshot:snap ~weights:Weights.paper_default
        ~request ~rng ()
    with
    | Error e -> Format.printf "error: %a@." Allocation.pp_error e
    | Ok allocation ->
      Format.printf "%a@." Allocation.pp allocation;
      let app = app_of app size ~ranks:(Allocation.total_procs allocation) in
      let placement =
        if not use_mapping then None
        else begin
          let m = Rm_mpisim.Mapping.optimize ~app ~allocation in
          Format.printf
            "rank mapping: %.2f -> %.2f inter-node MB/iteration@."
            (m.Rm_mpisim.Mapping.default_inter_bytes /. 1e6)
            (m.Rm_mpisim.Mapping.mapped_inter_bytes /. 1e6);
          Some m.Rm_mpisim.Mapping.placement
        end
      in
      let stats = Executor.run ~world ~allocation ~app ?placement () in
      Format.printf "%a@." Executor.pp_stats stats
  in
  let map_t =
    Arg.(value & flag
         & info [ "map" ] ~doc:"Apply Treematch-style rank mapping before running.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Allocate and execute one MPI job.")
    Term.(const run $ knobs_t $ scenario_t $ seed_t $ time_t $ procs_t
          $ ppn_t $ alpha_t $ policy_t $ app_t $ size_t $ map_t)

(* --- compare ----------------------------------------------------------------- *)

let compare_cmd =
  let run () scenario seed time procs ppn alpha app size =
    let _cluster, sim, world, monitor, rng = make_env ~scenario ~seed ~time in
    Format.printf "%-20s %10s %8s %10s@." "policy" "time (s)" "comm%" "load/core";
    List.iter
      (fun policy ->
        Sim.run_until sim (World.now world);
        let snap = System.snapshot monitor ~time:(World.now world) in
        let request = Request.make ?ppn ~alpha ~procs () in
        match
          Policies.allocate ~policy ~snapshot:snap
            ~weights:Weights.paper_default ~request ~rng ()
        with
        | Error e -> Format.printf "%a@." Allocation.pp_error e
        | Ok allocation ->
          let app = app_of app size ~ranks:(Allocation.total_procs allocation) in
          let stats = Executor.run ~world ~allocation ~app () in
          Format.printf "%-20s %10.3f %8.0f %10.2f@." (Policies.name policy)
            stats.Executor.total_time_s
            (100.0 *. stats.Executor.comm_fraction)
            stats.Executor.mean_load_per_core)
      Policies.all
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run the same job under all four policies in sequence.")
    Term.(const run $ knobs_t $ scenario_t $ seed_t $ time_t $ procs_t
          $ ppn_t $ alpha_t $ app_t $ size_t)

(* --- forecast ----------------------------------------------------------------- *)

let forecast_cmd =
  let run scenario seed node hours =
    let cluster = Cluster.iitk_reference () in
    let world = World.create ~cluster ~scenario ~seed in
    let forecaster = Rm_forecast.Forecaster.create () in
    let period = 60.0 in
    let steps = int_of_float (hours *. 3600.0 /. period) in
    let abs_err = ref 0.0 and scored = ref 0 in
    for i = 1 to steps do
      let now = float_of_int i *. period in
      (match Rm_forecast.Forecaster.predict forecaster with
      | Some p ->
        World.advance world ~now;
        let truth = World.cpu_load world ~node in
        abs_err := !abs_err +. Float.abs (p -. truth);
        incr scored
      | None -> World.advance world ~now);
      Rm_forecast.Forecaster.observe forecaster (World.cpu_load world ~node)
    done;
    Format.printf "node %d CPU load, %d one-minute samples@." node steps;
    (match Rm_forecast.Forecaster.best_model forecaster with
    | Some m ->
      Format.printf "winning model: %s@." (Rm_forecast.Predictor.name m)
    | None -> ());
    Format.printf "adaptive forecaster MAE: %.3f@."
      (!abs_err /. float_of_int (max 1 !scored));
    Format.printf "per-model MAE:@.";
    List.iter
      (fun (m, e) ->
        Format.printf "  %-16s %.3f@." (Rm_forecast.Predictor.name m) e)
      (List.sort
         (fun (_, a) (_, b) -> Float.compare a b)
         (Rm_forecast.Forecaster.errors forecaster))
  in
  let node_t =
    Arg.(value & opt int 0 & info [ "node" ] ~docv:"N" ~doc:"Node to forecast.")
  in
  let hours_t =
    Arg.(value & opt float 6.0 & info [ "hours" ] ~docv:"H" ~doc:"Trace length.")
  in
  Cmd.v
    (Cmd.info "forecast"
       ~doc:"Demo the NWS-style adaptive forecaster on a node's CPU load.")
    Term.(const run $ scenario_t $ seed_t $ node_t $ hours_t)

(* --- record / replay ---------------------------------------------------------- *)

let record_cmd =
  let run scenario seed hours period out =
    let cluster = Cluster.iitk_reference () in
    let world = World.create ~cluster ~scenario ~seed in
    let traces = World.record_traces world ~hours ~period_s:period in
    let csv = Rm_workload.Trace_replay.to_csv traces in
    (match out with
    | None -> print_string csv
    | Some path ->
      let oc = open_out path in
      output_string oc csv;
      close_out oc;
      Format.printf "wrote %s (%d nodes, %.1f h at %.0f s)@." path
        (List.length traces) hours period)
  in
  let hours_t =
    Arg.(value & opt float 2.0 & info [ "hours" ] ~docv:"H" ~doc:"Trace length.")
  in
  let period_t =
    Arg.(value & opt float 60.0 & info [ "period" ] ~docv:"S" ~doc:"Sample period.")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV (default stdout).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Record a node-attribute trace of the simulated cluster to CSV.")
    Term.(const run $ scenario_t $ seed_t $ hours_t $ period_t $ out_t)

let replay_cmd =
  let run file time procs ppn alpha policy =
    let ic = open_in file in
    let len = in_channel_length ic in
    let csv = really_input_string ic len in
    close_in ic;
    let traces = Rm_workload.Trace_replay.of_csv csv in
    let cluster = Cluster.iitk_reference () in
    if List.length traces <> Cluster.node_count cluster then
      Format.printf
        "note: trace has %d nodes; the reference cluster has %d - aborting@."
        (List.length traces) (Cluster.node_count cluster)
    else begin
      let world = World.create_replay ~cluster ~traces ~seed:1 () in
      World.advance world ~now:time;
      let snap = Snapshot.of_truth ~time ~world in
      let request = Request.make ?ppn ~alpha ~procs () in
      match
        Policies.allocate ~policy ~snapshot:snap ~weights:Weights.paper_default
          ~request ~rng:(Rm_stats.Rng.create 1) ()
      with
      | Error e -> Format.printf "error: %a@." Allocation.pp_error e
      | Ok a ->
        Format.printf "%a@.%s@." Allocation.pp a
          (Rm_core.Hostfile.machinefile ~allocation:a ~cluster)
    end
  in
  let file_t =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE.csv" ~doc:"Recorded trace.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Allocate against a recorded trace instead of the live models.")
    Term.(const run $ file_t $ time_t $ procs_t $ ppn_t $ alpha_t $ policy_t)

(* --- explain ----------------------------------------------------------------- *)

let read_whole_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let explain_cmd =
  let run () scenario seed time procs ppn alpha beta policy wait json replay =
    let beta = match beta with Some b -> b | None -> 1.0 -. alpha in
    match replay with
    | Some file ->
      (* What-if replay: re-score saved audit candidates under new
         weights — no simulation at all. *)
      let records = Telemetry.Audit.of_jsonl (read_whole_file file) in
      if records = [] then begin
        Format.printf "%s: no audit records@." file;
        exit 1
      end;
      List.iteri
        (fun i record ->
          if i > 0 then Format.printf "@.";
          Format.printf "%a"
            Telemetry.Audit.pp_rescore
            (Telemetry.Audit.rescore record ~alpha ~beta))
        records
    | None ->
      Telemetry.Runtime.enable ();
      let _cluster, _sim, _world, monitor, rng = make_env ~scenario ~seed ~time in
      let snap = System.snapshot monitor ~time in
      let request = Request.make ?ppn ~alpha ~procs () in
      let config =
        { Broker.default_config with Broker.policy; wait_threshold = wait }
      in
      (match Broker.decide ~config ~snapshot:snap ~request ~rng with
      | Error e -> Format.printf "error: %a@." Allocation.pp_error e
      | Ok d -> Format.printf "%a@.@." Broker.pp_decision d);
      (match Telemetry.Audit.last () with
      | None -> Format.printf "no audit record captured@."
      | Some a ->
        if json then print_endline (Telemetry.Audit.to_json a)
        else Format.printf "%a" Telemetry.Audit.pp_explain a)
  in
  let wait_t =
    Arg.(value & opt (some float) None
         & info [ "wait-threshold" ] ~docv:"LOAD"
             ~doc:"Recommend waiting above this mean load per core.")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the raw audit record as one JSON line.")
  in
  let beta_t =
    Arg.(value & opt (some float) None
         & info [ "beta" ] ~docv:"B"
             ~doc:"Eq. 4 network weight for --replay (default 1 - alpha).")
  in
  let replay_t =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"AUDIT.jsonl"
             ~doc:"Re-score the saved audit records (as written by --json) \
                   under --alpha/--beta instead of simulating; prints an \
                   old-vs-new Eq. 4 table per record.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Make one allocation decision and explain it: per-node CL/pc, every \
          candidate's Eq. 4 score, and the chosen sub-graph's Algorithm 1 \
          growth order. With --replay, re-score a saved decision under new \
          Eq. 4 weights instead.")
    Term.(const run $ knobs_t $ scenario_t $ seed_t $ time_t $ procs_t
          $ ppn_t $ alpha_t $ beta_t $ policy_t $ wait_t $ json_t $ replay_t)

(* --- metrics ----------------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let metrics_cmd =
  let run () scenario seed time procs ppn alpha policy app size trace_out
      trace_format metrics_out =
    Telemetry.Runtime.enable ();
    let _cluster, _sim, world, monitor, rng = make_env ~scenario ~seed ~time in
    let snap = System.snapshot monitor ~time in
    let request = Request.make ?ppn ~alpha ~procs () in
    (match
       Policies.allocate ~policy ~snapshot:snap ~weights:Weights.paper_default
         ~request ~rng ()
     with
    | Error e -> Format.printf "error: %a@." Allocation.pp_error e
    | Ok allocation ->
      Format.printf "%a@." Allocation.pp allocation;
      let app = app_of app size ~ranks:(Allocation.total_procs allocation) in
      let stats = Executor.run ~world ~allocation ~app () in
      Format.printf "%a@." Executor.pp_stats stats);
    Format.printf "@.=== metrics ===@.%s" (Rm_telemetry.Metrics.render ());
    Format.printf "@.=== trace ===@.%d events in buffer@."
      (Telemetry.Trace.length ());
    (match trace_out with
    | None -> ()
    | Some path ->
      let contents =
        match trace_format with
        | `Jsonl -> Telemetry.Trace.to_jsonl ()
        | `Chrome -> Telemetry.Trace_event.export_buffer ()
      in
      write_file path contents;
      Format.printf "wrote %s@." path);
    match metrics_out with
    | None -> ()
    | Some path ->
      write_file path (Telemetry.Prometheus.render_registry ());
      Format.printf "wrote %s@." path
  in
  let trace_out_t =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the virtual-time trace (see --trace-format).")
  in
  let trace_format_t =
    Arg.(value & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
         & info [ "trace-format" ] ~docv:"FMT"
             ~doc:"Trace file format: jsonl (one event per line) or chrome \
                   (trace_event JSON array, opens in Perfetto).")
  in
  let metrics_out_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the metric registry as a Prometheus text exposition.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one job end to end with telemetry enabled, then dump the \
          metrics registry and trace-buffer summary.")
    Term.(const run $ knobs_t $ scenario_t $ seed_t $ time_t $ procs_t
          $ ppn_t $ alpha_t $ policy_t $ app_t $ size_t $ trace_out_t
          $ trace_format_t $ metrics_out_t)

(* --- serve-metrics ------------------------------------------------------------ *)

let serve_metrics_cmd =
  let run scenario seed time procs ppn alpha policy app size interval count out =
    Telemetry.Runtime.enable ();
    let _cluster, sim, world, monitor, rng = make_env ~scenario ~seed ~time in
    let snap = System.snapshot monitor ~time in
    let request = Request.make ?ppn ~alpha ~procs () in
    (match
       Policies.allocate ~policy ~snapshot:snap ~weights:Weights.paper_default
         ~request ~rng ()
     with
    | Error e -> Format.printf "error: %a@." Allocation.pp_error e
    | Ok allocation ->
      let app = app_of app size ~ranks:(Allocation.total_procs allocation) in
      ignore (Executor.run ~world ~allocation ~app ()));
    (* One exposition per interval of virtual time; the file is
       overwritten in place each round, like a scrape target. *)
    for i = 1 to count do
      let exposition = Telemetry.Prometheus.render_registry () in
      (match out with
      | Some path ->
        write_file path exposition;
        Format.printf "t=%.0fs wrote %s (%d bytes)@." (Sim.now sim) path
          (String.length exposition)
      | None ->
        Format.printf "# t=%.0fs virtual@.%s" (Sim.now sim) exposition);
      if i < count then begin
        let target = Float.max (Sim.now sim) (World.now world) +. interval in
        Sim.run_until sim target;
        World.advance world ~now:target
      end
    done
  in
  let interval_t =
    Arg.(value & opt float 300.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Virtual seconds between expositions.")
  in
  let count_t =
    Arg.(value & opt int 1
         & info [ "count" ] ~docv:"N"
             ~doc:"Expositions to write (1 = one-shot).")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Exposition file, overwritten each interval (default \
                   stdout).")
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~deprecated:
         "use 'rmctl serve' and scrape GET /metrics on its socket; the \
          interval-file mode remains as a fallback for file-based scrape \
          targets only."
       ~doc:
         "Run one job with telemetry on, then write the metric registry as \
          a Prometheus text exposition every --interval virtual seconds, \
          --count times, to a file or stdout. Deprecated in favour of the \
          resident daemon's /metrics endpoint (same renderer, no drift).")
    Term.(const run $ scenario_t $ seed_t $ time_t $ procs_t $ ppn_t $ alpha_t
          $ policy_t $ app_t $ size_t $ interval_t $ count_t $ out_t)

(* --- slo ---------------------------------------------------------------------- *)

let slo_cmd =
  let run () seed jobs =
    match Rm_experiments.Queue_study.run_slo ~seed ~job_count:jobs () with
    | [] ->
      print_endline
        "no dispatch-wait observations (no job ran); nothing to report"
    | reports -> print_string (Rm_sched.Slo.render reports)
  in
  let jobs_t =
    Arg.(value & opt int 10
         & info [ "jobs" ] ~docv:"N" ~doc:"Jobs in the synthetic afternoon.")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Scheduler service levels per broker policy: the same job arrival \
          trace runs once per policy, and dispatch-wait p50/p90/p99 (from \
          the sched.dispatch_wait_s histogram) plus queue-depth statistics \
          are compared side by side.")
    Term.(const run $ knobs_t $ seed_t $ jobs_t)

(* --- check-export ------------------------------------------------------------- *)

let check_export_cmd =
  let check_trace path =
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    match Telemetry.Json.of_string (read_whole_file path) with
    | exception Failure m -> fail "%s: not valid JSON: %s" path m
    | Telemetry.Json.Arr entries ->
      let metadata = ref 0 and events = ref 0 in
      let check_entry i entry =
        let str field =
          match Telemetry.Json.member field entry with
          | Telemetry.Json.Str s -> s
          | _ -> failwith (Printf.sprintf "entry %d: missing %s" i field)
        in
        let num field =
          match Telemetry.Json.member field entry with
          | Telemetry.Json.Num n -> n
          | _ -> failwith (Printf.sprintf "entry %d: missing %s" i field)
        in
        ignore (str "name");
        ignore (num "pid");
        match str "ph" with
        | "M" -> incr metadata
        | "B" | "E" | "i" ->
          ignore (num "ts");
          ignore (num "tid");
          incr events
        | ph -> failwith (Printf.sprintf "entry %d: unknown phase %S" i ph)
      in
      (try
         List.iteri check_entry entries;
         Ok (Printf.sprintf "%s: valid trace_event JSON (%d events, %d lanes)"
               path !events !metadata)
       with Failure m -> fail "%s: %s" path m)
    | _ -> fail "%s: top level is not a JSON array" path
  in
  let check_metrics path =
    match Telemetry.Prometheus.parse (read_whole_file path) with
    | exception Failure m -> Error (Printf.sprintf "%s: %s" path m)
    | [] -> Error (Printf.sprintf "%s: exposition has no samples" path)
    | samples ->
      Ok (Printf.sprintf "%s: valid exposition (%d samples)" path
            (List.length samples))
  in
  let run trace metrics =
    if trace = None && metrics = None then begin
      prerr_endline "check-export: nothing to check (need --trace/--metrics)";
      exit 2
    end;
    let results =
      List.filter_map Fun.id
        [
          Option.map check_trace trace;
          Option.map check_metrics metrics;
        ]
    in
    let failed = ref false in
    List.iter
      (function
        | Ok m -> print_endline m
        | Error m ->
          failed := true;
          prerr_endline ("check-export: " ^ m))
      results;
    if !failed then exit 1
  in
  let trace_t =
    Arg.(value & opt (some file) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Chrome trace_event JSON file to validate.")
  in
  let metrics_t =
    Arg.(value & opt (some file) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Prometheus text exposition to validate.")
  in
  Cmd.v
    (Cmd.info "check-export"
       ~doc:
         "Validate exported telemetry: --trace must be a trace_event JSON \
          array whose entries carry name/ph/ts/pid, --metrics must parse \
          as a Prometheus exposition with at least one sample. Exits \
          non-zero on any failure (used by CI).")
    Term.(const run $ trace_t $ metrics_t)

(* --- chaos ------------------------------------------------------------------- *)

let chaos_cmd =
  let module Chaos = Rm_experiments.Chaos_study in
  let module Scheduler = Rm_sched.Scheduler in
  let run () plan_file intensity policy minutes seed jobs check show_log
      trace_out metrics_out =
    if trace_out <> None || metrics_out <> None then Telemetry.Runtime.enable ();
    let cluster = Cluster.iitk_reference () in
    let warm = System.warm_up_s System.default_cadence in
    let window = float_of_int minutes *. 60.0 in
    (* [--minutes] bounds the arrival/fault window; the drain slack lets
       requeue backoffs and repairs play out so jobs reach a terminal
       state instead of being cut off mid-recovery. *)
    let horizon = warm +. window +. 7200.0 in
    let job_count =
      match jobs with Some j -> j | None -> max 1 (minutes * 60 / 600)
    in
    let plan =
      match plan_file with
      | Some file ->
        let p = Rm_faults.Fault_plan.of_json (read_whole_file file) in
        Rm_faults.Fault_plan.validate ~cluster p;
        Some p
      | None ->
        Chaos.plan_of_intensity ~cluster ~first_after_s:warm ~seed:(seed + 17)
          intensity
    in
    (match plan with
    | Some p -> Format.printf "%a@." Rm_faults.Fault_plan.pp p
    | None -> Format.printf "no faults (intensity off)@.");
    let sched, injector = Chaos.run_sched ~seed ~job_count ~horizon ?plan ~policy () in
    let finished = Scheduler.finished sched in
    List.iter
      (fun (o : Scheduler.outcome) ->
        Format.printf "%-12s waited %6.0fs ran %8.2fs on %d nodes, %d requeue(s)@."
          o.Scheduler.name
          (o.Scheduler.started_at -. o.Scheduler.submitted_at)
          (o.Scheduler.finished_at -. o.Scheduler.started_at)
          (List.length o.Scheduler.nodes) o.Scheduler.requeues)
      finished;
    List.iter
      (fun id ->
        match Scheduler.state sched id with
        | Scheduler.Rejected reason ->
          Format.printf "job %d rejected: %s@." id reason
        | _ -> ())
      (Scheduler.rejected sched);
    (match injector with
    | Some i when show_log -> Format.printf "@.%a@." Rm_faults.Injector.pp_log i
    | _ -> ());
    Format.printf
      "@.finished %d  rejected %d  requeues %d  wasted %.0f node-s  faults \
       %d injected / %d recovered@."
      (List.length finished)
      (List.length (Scheduler.rejected sched))
      (Scheduler.requeue_count sched)
      (Scheduler.wasted_node_seconds sched)
      (match injector with Some i -> Rm_faults.Injector.injected i | None -> 0)
      (match injector with Some i -> Rm_faults.Injector.recovered i | None -> 0);
    (match trace_out with
    | None -> ()
    | Some path ->
      write_file path (Telemetry.Trace_event.export_buffer ());
      Format.printf "wrote %s@." path);
    (match metrics_out with
    | None -> ()
    | Some path ->
      write_file path (Telemetry.Prometheus.render_registry ());
      Format.printf "wrote %s@." path);
    if check then begin
      let hung =
        Scheduler.queued sched @ Scheduler.running sched
        @ Scheduler.failed sched
      in
      if hung <> [] then begin
        Printf.eprintf "chaos: %d job(s) never reached a terminal state: %s\n%!"
          (List.length hung)
          (String.concat ", " (List.map string_of_int hung));
        exit 1
      end;
      Format.printf "chaos: all %d job(s) reached a terminal state@." job_count
    end
  in
  let intensity_arg =
    let parse s =
      match Chaos.intensity_of_name s with
      | Some i -> Ok i
      | None -> Error (`Msg (Printf.sprintf "unknown intensity %S" s))
    in
    Arg.conv (parse, fun ppf i -> Format.fprintf ppf "%s" (Chaos.intensity_name i))
  in
  let plan_t =
    Arg.(value & opt (some file) None
         & info [ "plan" ] ~docv:"PLAN.json"
             ~doc:"Fault plan to execute (overrides --intensity).")
  in
  let intensity_t =
    Arg.(value & opt intensity_arg Chaos.Heavy
         & info [ "intensity" ] ~docv:"LEVEL"
             ~doc:"Built-in plan when no --plan: off, light or heavy.")
  in
  let minutes_t =
    Arg.(value & opt int 30
         & info [ "minutes" ] ~docv:"N"
             ~doc:"Virtual minutes of job arrivals and faults after monitor \
                   warm-up (the run then drains until every job is terminal).")
  in
  let jobs_t =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Jobs to submit (default: one per 600s of --minutes).")
  in
  let check_t =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every job finished or was rejected \
                   (no job left queued, running or failed).")
  in
  let log_t =
    Arg.(value & flag
         & info [ "log" ] ~doc:"Print the chronological fault occurrence log.")
  in
  let trace_out_t =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the run's Chrome trace_event JSON (enables telemetry).")
  in
  let metrics_out_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the metric registry as a Prometheus text exposition \
                   (enables telemetry).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the scheduler's job mix under a fault plan — node churn, \
          switch outages, NIC degradation, daemon kills — with failure \
          detection, requeue backoff and virtual checkpointing enabled, \
          then report what the faults cost.")
    Term.(const run $ knobs_t $ plan_t $ intensity_t $ policy_t $ minutes_t
          $ seed_t
          $ jobs_t $ check_t $ log_t $ trace_out_t $ metrics_out_t)

(* --- malleable --------------------------------------------------------------- *)

let malleable_cmd =
  let module MS = Rm_experiments.Malleable_study in
  let run () seed jobs policy out check =
    let artifact = MS.run ~seed ?job_count:jobs ~policy () in
    print_string (MS.render artifact);
    (match out with
    | None -> ()
    | Some path ->
      write_file path (MS.to_string artifact);
      Format.printf "wrote %s@." path);
    if check then begin
      match MS.improvement_failures artifact with
      | [] -> Format.printf "malleable: every claim holds@."
      | failures ->
        List.iter (fun m -> prerr_endline ("malleable: " ^ m)) failures;
        exit 1
    end
  in
  let jobs_t =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Jobs per scheduler pass (default: the study's 10).")
  in
  let out_t =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the study artifact JSON (the BENCH_malleable.json \
                   schema).")
  in
  let check_t =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every study claim holds (malleable \
                   beats rigid; shrink-recovery beats requeue-recovery).")
  in
  Cmd.v
    (Cmd.info "malleable"
       ~doc:
         "Run the malleability study: the hour-scale job mix through the \
          scheduler rigid vs. with grow/shrink bands, then under light node \
          churn with requeue-recovery vs. shrink-recovery, reporting \
          makespan, wait, goodput and the accepted/rejected directives.")
    Term.(const run $ knobs_t $ seed_t $ jobs_t $ policy_t $ out_t $ check_t)

(* --- sched ------------------------------------------------------------------- *)

let sched_cmd =
  let run () file scenario seed policy exclusive =
    let ic = open_in file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    (* name,at_s,procs,ppn,alpha,app,size[,priority] — header optional. *)
    let parse_row lineno row =
      match String.split_on_char ',' (String.trim row) with
      | name :: at :: procs :: ppn :: alpha :: app :: size :: rest ->
        (try
           let kind =
             match String.trim app with
             | "minimd" -> `Md
             | "minife" -> `Fe
             | other -> failwith ("unknown app " ^ other)
           in
           Some
             ( String.trim name,
               float_of_string at,
               int_of_string procs,
               int_of_string ppn,
               float_of_string alpha,
               kind,
               int_of_string size,
               match rest with [ p ] -> int_of_string p | _ -> 0 )
         with Failure msg ->
           raise
             (Failure (Printf.sprintf "%s: line %d: %s" file lineno msg)))
      | [ "" ] | [] -> None
      | _ -> raise (Failure (Printf.sprintf "%s: line %d: bad row" file lineno))
    in
    let rows =
      String.split_on_char '\n' text
      |> List.filteri (fun i l ->
             not (i = 0 && String.length l >= 4 && String.sub l 0 4 = "name"))
      |> List.filter (fun l -> String.trim l <> "")
      |> List.mapi (fun i l -> parse_row (i + 1) l)
      |> List.filter_map Fun.id
    in
    let cluster = Cluster.iitk_reference () in
    let sim = Sim.create () in
    let world = World.create ~cluster ~scenario ~seed in
    let rng = Rm_stats.Rng.create (seed + 2) in
    let horizon =
      List.fold_left (fun acc (_, at, _, _, _, _, _, _) -> Float.max acc at)
        0.0 rows
      +. 50_000.0
    in
    let monitor = System.start ~sim ~world ~rng ~until:horizon () in
    let config =
      {
        Rm_sched.Scheduler.default_config with
        Rm_sched.Scheduler.broker = { Broker.default_config with Broker.policy };
        exclusive;
      }
    in
    let sched =
      Rm_sched.Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon ()
    in
    let warm = System.warm_up_s System.default_cadence in
    List.iter
      (fun (name, at, procs, ppn, alpha, kind, size, priority) ->
        ignore
          (Rm_sched.Scheduler.submit sched ~name ~at:(warm +. at) ~priority
             ~request:(Request.make ~ppn ~alpha ~procs ())
             ~app_of:(app_of kind size)
             ()))
      rows;
    let rec drain () =
      if
        List.length (Rm_sched.Scheduler.finished sched) < List.length rows
        && Sim.now sim < horizon
      then begin
        Sim.run_until sim (Sim.now sim +. 600.0);
        drain ()
      end
    in
    drain ();
    List.iter
      (fun (o : Rm_sched.Scheduler.outcome) ->
        Format.printf "%-12s waited %6.0fs ran %8.2fs on %d nodes@."
          o.Rm_sched.Scheduler.name
          (o.Rm_sched.Scheduler.started_at -. o.Rm_sched.Scheduler.submitted_at)
          (o.Rm_sched.Scheduler.finished_at -. o.Rm_sched.Scheduler.started_at)
          (List.length o.Rm_sched.Scheduler.nodes))
      (Rm_sched.Scheduler.finished sched);
    (try
       let s = Rm_sched.Scheduler.summary sched in
       Format.printf
         "@.finished %d; mean wait %.0fs; mean turnaround %.1fs@.@."
         s.Rm_sched.Scheduler.jobs_finished s.Rm_sched.Scheduler.mean_wait_s
         s.Rm_sched.Scheduler.mean_turnaround_s
     with Invalid_argument _ -> Format.printf "nothing finished@.");
    print_string (Rm_sched.Scheduler.render_timeline sched ())
  in
  let file_t =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"JOBS.csv"
             ~doc:"Rows: name,at_s,procs,ppn,alpha,app,size[,priority].")
  in
  let exclusive_t =
    Arg.(value & flag
         & info [ "exclusive" ]
             ~doc:"Space-share: hide busy nodes from the allocator.")
  in
  Cmd.v
    (Cmd.info "sched" ~doc:"Run a job file through the batch scheduler.")
    Term.(const run $ knobs_t $ file_t $ scenario_t $ seed_t $ policy_t
          $ exclusive_t)

(* --- matrix / dashboard: the experiment matrix and its rendering --------- *)

let matrix_load_artifact path =
  match Rm_experiments.Matrix.of_string (read_whole_file path) with
  | Ok a -> Ok a
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let matrix_side_json path =
  if Sys.file_exists path then
    match Telemetry.Json.of_string (read_whole_file path) with
    | j -> Some j
    | exception Failure _ -> None
  else None

let matrix_dashboard_input ~current ~priors ~baseline ~ratio ~bench_allocator
    ~bench_serve ~bench_malleable =
  let history =
    List.filter_map
      (fun file ->
        match matrix_load_artifact file with
        | Ok a -> Some (Filename.basename file, a)
        | Error m ->
          Printf.eprintf "matrix: prior artifact ignored (%s)\n%!" m;
          None)
      priors
  in
  Rm_experiments.Dashboard.make ~history ?baseline ~ratio
    ?bench_allocator:(matrix_side_json bench_allocator)
    ?bench_serve:(matrix_side_json bench_serve)
    ?bench_malleable:(matrix_side_json bench_malleable)
    ~current ()

let matrix_render_and_gate ~input ~html ~md =
  let module D = Rm_experiments.Dashboard in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  in
  Option.iter (fun path -> write path (D.html input)) html;
  (match md with
  | Some path -> write path (D.markdown input)
  | None -> print_string (D.markdown input));
  match input.D.baseline with
  | None -> ()
  | Some _ ->
    let gated = D.verdicts input in
    print_string (Rm_experiments.Matrix.render_gate gated);
    if not (Rm_experiments.Matrix.gate_ok gated) then exit 1

let matrix_prior_t =
  Arg.(value & opt_all file []
       & info [ "prior" ] ~docv:"FILE"
           ~doc:"Prior rm-matrix artifact for trend sparklines (repeatable, \
                 oldest first).")

let matrix_ratio_t =
  Arg.(value & opt float 2.0
       & info [ "ratio" ]
           ~doc:"Throughput gate: fail a cell when its allocs/sec drops \
                 below baseline divided by this.")

let matrix_baseline_t =
  Arg.(value & opt (some file) None
       & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Baseline rm-matrix artifact to gate against (exit 1 on any \
                 cell regression).")

let matrix_html_t =
  Arg.(value & opt (some string) None
       & info [ "html" ] ~docv:"FILE" ~doc:"Write the HTML dashboard here.")

let matrix_md_t =
  Arg.(value & opt (some string) None
       & info [ "md" ] ~docv:"FILE"
           ~doc:"Write the markdown summary here (default: stdout).")

let matrix_bench_allocator_t =
  Arg.(value & opt file "BENCH_allocator.json"
       & info [ "bench-allocator" ] ~docv:"FILE"
           ~doc:"Allocator scaling baseline to ingest for trend rows \
                 (ignored when absent).")

let matrix_bench_serve_t =
  Arg.(value & opt file "BENCH_serve.json"
       & info [ "bench-serve" ] ~docv:"FILE"
           ~doc:"Serve-daemon baseline to ingest for trend rows (ignored \
                 when absent).")

let matrix_bench_malleable_t =
  Arg.(value & opt file "BENCH_malleable.json"
       & info [ "bench-malleable" ] ~docv:"FILE"
           ~doc:"Malleability-study baseline to ingest for trend rows \
                 (ignored when absent).")

let matrix_cmd =
  let module M = Rm_experiments.Matrix in
  let run spec_file full out html md baseline ratio priors bench_allocator
      bench_serve bench_malleable =
    let spec =
      match spec_file with
      | Some file -> (
        match M.spec_of_json (Telemetry.Json.of_string (read_whole_file file))
        with
        | spec -> spec
        | exception Failure m ->
          Printf.eprintf "matrix: bad spec %s: %s\n%!" file m;
          exit 2)
      | None -> if full then M.full_spec else M.quick_spec
    in
    (match M.validate_spec spec with
    | Ok () -> ()
    | Error m ->
      Printf.eprintf "matrix: invalid spec: %s\n%!" m;
      exit 2);
    let artifact = M.run spec in
    (let oc = open_out out in
     output_string oc (M.to_string artifact);
     output_string oc "\n";
     close_out oc);
    Printf.printf "wrote %s (%s, %d cells)\n%!" out M.schema_version
      (List.length artifact.M.cells);
    let baseline =
      Option.map
        (fun file ->
          match matrix_load_artifact file with
          | Ok b -> b
          | Error m ->
            Printf.eprintf "matrix: bad baseline %s\n%!" m;
            exit 2)
        baseline
    in
    let input =
      matrix_dashboard_input ~current:artifact ~priors ~baseline ~ratio
        ~bench_allocator ~bench_serve ~bench_malleable
    in
    matrix_render_and_gate ~input ~html ~md
  in
  let spec_t =
    Arg.(value & opt (some file) None
         & info [ "spec" ] ~docv:"FILE"
             ~doc:"JSON matrix spec (the \"spec\" object of an artifact); \
                   default is the built-in quick spec.")
  in
  let full_t =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Use the built-in full spec (5 scenarios x 3 policies x 5 \
                   engines) instead of the quick one.")
  in
  let out_t =
    Arg.(value & opt string "BENCH_matrix.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the merged artifact.")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run the scenario x policy x engine experiment matrix and write \
          one merged rm-matrix/v1 artifact plus the rendered dashboard. \
          With --baseline, exits 1 when any cell regresses \
          (docs/OBSERVABILITY.md section 6).")
    Term.(const run $ spec_t $ full_t $ out_t $ matrix_html_t $ matrix_md_t
          $ matrix_baseline_t $ matrix_ratio_t $ matrix_prior_t
          $ matrix_bench_allocator_t $ matrix_bench_serve_t
          $ matrix_bench_malleable_t)

let dashboard_cmd =
  let run artifact html md baseline ratio priors bench_allocator bench_serve
      bench_malleable =
    let current =
      match matrix_load_artifact artifact with
      | Ok a -> a
      | Error m ->
        Printf.eprintf "dashboard: %s\n%!" m;
        exit 2
    in
    let baseline =
      Option.map
        (fun file ->
          match matrix_load_artifact file with
          | Ok b -> b
          | Error m ->
            Printf.eprintf "dashboard: bad baseline %s\n%!" m;
            exit 2)
        baseline
    in
    let input =
      matrix_dashboard_input ~current ~priors ~baseline ~ratio
        ~bench_allocator ~bench_serve ~bench_malleable
    in
    matrix_render_and_gate ~input ~html ~md
  in
  let artifact_t =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"MATRIX.json"
             ~doc:"The rm-matrix artifact to render.")
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:
         "Render an existing rm-matrix artifact into the HTML/markdown \
          dashboard without re-running anything; with --baseline, also \
          gates (exit 1 on regression).")
    Term.(const run $ artifact_t $ matrix_html_t $ matrix_md_t
          $ matrix_baseline_t $ matrix_ratio_t $ matrix_prior_t
          $ matrix_bench_allocator_t $ matrix_bench_serve_t
          $ matrix_bench_malleable_t)

let () =
  let info =
    Cmd.info "rmctl" ~version:"1.0.0"
      ~doc:"Network and load-aware resource manager for MPI programs (simulated)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ cluster_cmd; snapshot_cmd; allocate_cmd; run_cmd; compare_cmd;
            forecast_cmd; record_cmd; replay_cmd; sched_cmd; chaos_cmd;
            malleable_cmd;
            explain_cmd; metrics_cmd; Serve_cmd.cmd; serve_metrics_cmd;
            slo_cmd; check_export_cmd; matrix_cmd; dashboard_cmd ]))

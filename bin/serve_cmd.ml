(* The `serve` command — shared between `rmctl serve` and the
   standalone `brokerd` executable (same term, different command
   names). Builds a `Rm_service.Server`, prints where it is listening,
   and runs it in the foreground until SIGINT/SIGTERM. *)

open Cmdliner

module Scenario = Rm_workload.Scenario
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Server = Rm_service.Server
module Telemetry = Rm_telemetry

let scenario_arg =
  let parse s =
    match Scenario.by_name s with
    | Some sc -> Ok sc
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown scenario %S (try: %s)" s
              (String.concat ", " Scenario.all_names)))
  in
  let print ppf (sc : Scenario.t) = Format.fprintf ppf "%s" sc.Scenario.name in
  Arg.conv (parse, print)

let policy_arg =
  let parse s =
    match Policies.of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" (Policies.name p))

let socket_t =
  Arg.(value & opt string "/tmp/brokerd.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (ignored with --port).")

let port_t =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen on loopback TCP instead of the unix socket.")

let scenario_t =
  Arg.(value & opt scenario_arg Scenario.normal
       & info [ "scenario" ] ~docv:"NAME" ~doc:"Background workload scenario.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let time_t =
  Arg.(value & opt float 1200.0
       & info [ "time" ] ~docv:"SECONDS"
           ~doc:"Virtual start time (monitor warm-up is ~960s).")

let nodes_t =
  Arg.(value & opt (some int) None
       & info [ "nodes" ] ~docv:"N"
           ~doc:"Homogeneous N-node cluster instead of the IIT-K reference.")

let tick_ms_t =
  Arg.(value & opt float 10.0
       & info [ "tick-ms" ] ~docv:"MS"
           ~doc:"Wall-clock snapshot refresh period; requests arriving \
                 within one tick share a snapshot (and its model cache \
                 entry).")

let virtual_tick_t =
  Arg.(value & opt float 0.01
       & info [ "virtual-tick" ] ~docv:"SECONDS"
           ~doc:"Virtual seconds the simulated world advances per refresh.")

let max_pending_t =
  Arg.(value & opt int 1024
       & info [ "max-pending" ] ~docv:"N"
           ~doc:"Admission queue bound; beyond it clients get retry \
                 (queue_full).")

let max_batch_t =
  Arg.(value & opt int 256
       & info [ "max-batch" ] ~docv:"N"
           ~doc:"Most requests served from one queue take.")

let no_batch_t =
  Arg.(value & flag
       & info [ "no-batch" ]
           ~doc:"Per-request snapshot control mode: every request pays a \
                 fresh monitor capture (for comparison runs; slow).")

let policy_t =
  Arg.(value & opt policy_arg Policies.Network_load_aware
       & info [ "policy" ] ~docv:"NAME"
           ~doc:"Default policy for requests that do not pick their own.")

let starts_arg =
  let parse s =
    match Rm_core.Dense_alloc.parse_starts s with
    | Ok st -> Ok st
    | Error msg -> Error (`Msg msg)
  in
  let print ppf st =
    Format.fprintf ppf "%s" (Rm_core.Dense_alloc.starts_label st)
  in
  Arg.conv (parse, print)

let starts_t =
  Arg.(value & opt (some starts_arg) None
       & info [ "starts" ] ~docv:"K"
           ~doc:"Candidate start nodes for the network-load-aware sweep: \
                 $(b,all) (exhaustive; also $(b,RM_ALLOC_STARTS)) or a \
                 positive count K to expand only the top-K starts by the \
                 O(V) CL+degree proxy score.")

let wait_threshold_t =
  Arg.(value & opt (some float) None
       & info [ "wait-threshold" ] ~docv:"LOAD"
           ~doc:"Mean load per core above which requests get a retry hint \
                 instead of an allocation.")

let max_staleness_t =
  Arg.(value & opt (some float) None
       & info [ "max-staleness" ] ~docv:"SECONDS"
           ~doc:"Exclude nodes whose monitor record is older than this.")

let retry_after_t =
  Arg.(value & opt float 0.05
       & info [ "retry-after" ] ~docv:"SECONDS"
           ~doc:"Hint attached to retry responses.")

let metrics_out_t =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a final Prometheus exposition here on shutdown.")

let spill_dir_t =
  Arg.(value & opt (some string) None
       & info [ "spill-dir" ] ~docv:"DIR"
           ~doc:"Spill trace events to segment files in DIR; flushed on \
                 shutdown.")

let no_overlay_t =
  Arg.(value & flag
       & info [ "no-overlay" ]
           ~doc:"Bookkeeping-only grants: active allocations neither \
                 overlay load/traffic onto the decision snapshot nor hold \
                 their nodes out of the grantable pool (the pre-overlay \
                 daemon behavior; concurrent grants may overlap).")

let lease_t =
  Arg.(value & opt (some float) None
       & info [ "lease" ] ~docv:"SECONDS"
           ~doc:"Default lease for grants that do not request their own \
                 lease_s: expired allocations are swept and their overlay \
                 removed, so a crashed client cannot pin capacity. \
                 Unset means grants never expire.")

let overlay_load_t =
  Arg.(value & opt float 1.0
       & info [ "overlay-load-per-proc" ] ~docv:"LOAD"
           ~doc:"Default compute load each granted rank overlays on its \
                 node (overridden per request by load_per_proc).")

let overlay_traffic_t =
  Arg.(value & opt float 8.0
       & info [ "overlay-traffic" ] ~docv:"MB_S"
           ~doc:"Default MB/s each granted rank pushes to its ring \
                 neighbour (overridden per request by \
                 traffic_mb_s_per_proc).")

let serve socket port scenario seed time nodes tick_ms virtual_tick max_pending
    max_batch no_batch policy starts wait_threshold max_staleness retry_after
    metrics_out spill_dir no_overlay lease overlay_load overlay_traffic =
  Telemetry.Runtime.enable ();
  let endpoint =
    match port with
    | Some p -> Server.Tcp p
    | None -> Server.Unix_socket socket
  in
  let broker =
    {
      Broker.default_config with
      policy;
      starts;
      wait_threshold;
      max_staleness_s = Option.value max_staleness ~default:infinity;
    }
  in
  let config =
    {
      (Server.default_config ~endpoint) with
      scenario;
      seed;
      start_time = time;
      nodes;
      tick_s = tick_ms /. 1000.0;
      virtual_tick_s = virtual_tick;
      max_pending;
      max_batch;
      batching = not no_batch;
      broker;
      retry_after_s = retry_after;
      metrics_out;
      spill_dir;
      overlay = not no_overlay;
      default_lease_s = lease;
      overlay_load_per_proc = overlay_load;
      overlay_traffic_mb_s_per_proc = overlay_traffic;
    }
  in
  let t = Server.create config in
  (match endpoint with
  | Server.Unix_socket path ->
    Format.printf "brokerd: listening on %s (scenario %s, seed %d)@." path
      scenario.Scenario.name seed
  | Server.Tcp p ->
    Format.printf "brokerd: listening on 127.0.0.1:%d (scenario %s, seed %d)@."
      p scenario.Scenario.name seed);
  Format.printf
    "brokerd: policy %s, %s, tick %.0fms, %s; scrape GET /metrics on the \
     same socket; stop with SIGINT/SIGTERM@."
    (Policies.name policy)
    (if no_batch then "per-request snapshots" else "per-tick batching")
    tick_ms
    (if no_overlay then "grants bookkeeping-only"
     else
       match lease with
       | Some l -> Printf.sprintf "grant overlay on (lease %.0fs)" l
       | None -> "grant overlay on");
  Server.run t;
  Format.printf "brokerd: drained and stopped@."

let term =
  Term.(const serve $ socket_t $ port_t $ scenario_t $ seed_t $ time_t
        $ nodes_t $ tick_ms_t $ virtual_tick_t $ max_pending_t $ max_batch_t
        $ no_batch_t $ policy_t $ starts_t $ wait_threshold_t
        $ max_staleness_t $ retry_after_t $ metrics_out_t $ spill_dir_t
        $ no_overlay_t $ lease_t $ overlay_load_t $ overlay_traffic_t)

let doc =
  "Resident allocation daemon: accepts allocate/release/status/metrics \
   requests over a versioned JSON line protocol, batches each tick's \
   pending requests against one monitor snapshot, and serves Prometheus \
   text on GET /metrics."

(* `rmctl serve` *)
let cmd = Cmd.v (Cmd.info "serve" ~doc) term

(* Standalone `brokerd`. *)
let standalone =
  Cmd.v (Cmd.info "brokerd" ~version:"1.0.0" ~doc) term

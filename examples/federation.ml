(* Multi-cluster federation (§6 future work): two departmental clusters
   joined by a slow campus backbone. The aware allocator keeps jobs
   inside one site; we then force a cross-site placement to show what
   the WAN costs, and grow the job until one site cannot hold it.

     dune exec examples/federation.exe *)

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Allocation = Rm_core.Allocation
module Executor = Rm_mpisim.Executor

let sites_of cluster allocation =
  let topo = Cluster.topology cluster in
  Allocation.node_ids allocation
  |> List.map (Topology.site_of_node topo)
  |> List.sort_uniq compare

let () =
  (* Two sites: "cse" (2 switches x 8 nodes) and "ee" (2 x 8). *)
  let cluster =
    Cluster.federated ~cores:12 ~freq_ghz:3.4
      ~sites:[ ("cse", [ 8; 8 ]); ("ee", [ 8; 8 ]) ]
      ()
  in
  Format.printf "federation: %a over %d sites@." Cluster.pp cluster
    (Topology.site_count (Cluster.topology cluster));
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed:7 in
  let rng = Rm_stats.Rng.create 9 in
  let monitor = System.start ~sim ~world ~rng ~until:20_000.0 () in
  Sim.run_until sim (System.warm_up_s System.default_cadence);
  let snapshot = System.snapshot monitor ~time:(Sim.now sim) in
  let weights = Weights.paper_default in

  (* 1. A 32-process job fits in one site; the broker must keep it there. *)
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  (match
     Policies.allocate ~policy:Policies.Network_load_aware ~snapshot ~weights
       ~request ~rng ()
   with
  | Error _ -> Format.printf "allocation failed@."
  | Ok allocation ->
    Format.printf "@.32 procs -> sites %s: %a@."
      (String.concat "," (List.map string_of_int (sites_of cluster allocation)))
      Allocation.pp allocation;
    let app ranks =
      Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:16) ~ranks
    in
    let stats = Executor.run ~world ~allocation ~app:(app 32) () in
    Format.printf "confined run:   %.3f s@." stats.Executor.total_time_s;

    (* 2. Force a WAN-spanning placement of the same job for contrast. *)
    let forced =
      Allocation.make ~policy:"forced-cross-site"
        ~entries:
          (List.init 8 (fun i ->
               (* alternate: 4 nodes of site 0, 4 of site 1 *)
               let node = if i < 4 then i else 16 + i in
               { Allocation.node; procs = 4 }))
    in
    Format.printf "@.forced cross-site placement -> sites %s@."
      (String.concat "," (List.map string_of_int (sites_of cluster forced)));
    let stats = Executor.run ~world ~allocation:forced ~app:(app 32) () in
    Format.printf "cross-site run: %.3f s (the WAN bill)@."
      stats.Executor.total_time_s);

  (* 3. A job too big for either site must span — and the broker still
        minimizes the damage by taking whole sites, not slices. *)
  Sim.run_until sim (World.now world);
  let snapshot = System.snapshot monitor ~time:(World.now world) in
  let big = Request.make ~ppn:4 ~alpha:0.3 ~procs:96 () in
  match
    Policies.allocate ~policy:Policies.Network_load_aware ~snapshot ~weights
      ~request:big ~rng ()
  with
  | Error _ -> Format.printf "big allocation failed@."
  | Ok allocation ->
    Format.printf "@.96 procs cannot fit one site -> sites %s (%d nodes)@."
      (String.concat "," (List.map string_of_int (sites_of cluster allocation)))
      (Allocation.node_count allocation)

module Snapshot = Rm_monitor.Snapshot
module Telemetry = Rm_telemetry

type config = {
  weights : Weights.t;
  policy : Policies.policy;
  wait_threshold : float option;
  max_staleness_s : float;
  starts : Dense_alloc.starts option;
}

let default_config =
  {
    weights = Weights.paper_default;
    policy = Policies.Network_load_aware;
    wait_threshold = None;
    max_staleness_s = infinity;
    starts = None;
  }

type decision =
  | Allocated of Allocation.t
  | Wait of { mean_load_per_core : float; threshold : float }

(* Reads Compute_load through Model_cache: when a wait threshold is set,
   the subsequent Policies.allocate for the same snapshot reuses the
   model instead of rebuilding it (previously two full Eq. 1 builds per
   decision). *)
let mean_load_per_core snapshot ~weights =
  let loads = Model_cache.loads (Model_cache.get snapshot ~weights) in
  let ids = Compute_load.dense_ids loads in
  let load_1m = Compute_load.dense_load_1m loads in
  let total_load = ref 0.0 and total_cores = ref 0 in
  Array.iteri
    (fun i node ->
      let info =
        match Snapshot.node_info snapshot node with
        | Some i -> i
        | None -> assert false
      in
      total_load := !total_load +. load_1m.(i);
      total_cores := !total_cores + info.Snapshot.static.Rm_cluster.Node.cores)
    ids;
  if !total_cores = 0 then 0.0
  else !total_load /. float_of_int !total_cores

let m_wait = Telemetry.Metrics.counter "core.broker.wait"
let m_allocated = Telemetry.Metrics.counter "core.broker.allocated"
let m_errors = Telemetry.Metrics.counter "core.broker.errors"
let m_stale = Telemetry.Metrics.counter "core.broker.stale_excluded"

(* Nodes whose record is older than the gate allows: dead-daemon hosts,
   store-outage victims — anything the monitor has stopped refreshing. *)
let stale_nodes snapshot ~max_staleness_s =
  if max_staleness_s = infinity then []
  else
    List.filter
      (fun node ->
        match Snapshot.node_info snapshot node with
        | None -> false
        | Some info ->
          snapshot.Snapshot.time -. info.Snapshot.written_at > max_staleness_s)
      (Snapshot.usable snapshot)

let decide ~config ~snapshot ~request ~rng =
  let stale = stale_nodes snapshot ~max_staleness_s:config.max_staleness_s in
  let snapshot =
    if stale = [] then snapshot else Snapshot.restrict snapshot ~exclude:stale
  in
  if stale <> [] && Telemetry.Runtime.is_enabled () then
    Telemetry.Metrics.add m_stale (float_of_int (List.length stale));
  let overloaded =
    match config.wait_threshold with
    | None -> None
    | Some threshold ->
      let m = mean_load_per_core snapshot ~weights:config.weights in
      if m > threshold then Some (m, threshold) else None
  in
  match overloaded with
  | Some (mean_load_per_core, threshold) ->
    if Telemetry.Runtime.is_enabled () then begin
      Telemetry.Metrics.incr m_wait;
      Telemetry.Audit.record
        {
          Telemetry.Audit.time = snapshot.Snapshot.time;
          policy = Policies.name config.policy;
          procs = request.Request.procs;
          ppn = request.Request.ppn;
          alpha = request.Request.alpha;
          beta = request.Request.beta;
          staleness_s = Snapshot.max_staleness snapshot;
          usable = List.length (Snapshot.usable snapshot);
          stale_excluded = stale;
          nodes = [];
          candidates = [];
          chosen = None;
          decision = Telemetry.Audit.Wait { mean_load_per_core; threshold };
        }
    end;
    Ok (Wait { mean_load_per_core; threshold })
  | None ->
    let result =
      Result.map
        (fun allocation -> Allocated allocation)
        (Policies.allocate_audited ?starts:config.starts ~stale_excluded:stale
           ~policy:config.policy ~snapshot ~weights:config.weights ~request
           ~rng ())
    in
    (match result with
    | Ok (Allocated _) -> Telemetry.Metrics.incr m_allocated
    | Ok (Wait _) -> ()
    | Error _ -> Telemetry.Metrics.incr m_errors);
    result

let pp_decision ppf = function
  | Allocated a -> Allocation.pp ppf a
  | Wait { mean_load_per_core; threshold } ->
    Format.fprintf ppf
      "wait (cluster mean load/core %.2f exceeds threshold %.2f)"
      mean_load_per_core threshold

module Snapshot = Rm_monitor.Snapshot
module Telemetry = Rm_telemetry

type config = {
  weights : Weights.t;
  policy : Policies.policy;
  wait_threshold : float option;
}

let default_config =
  {
    weights = Weights.paper_default;
    policy = Policies.Network_load_aware;
    wait_threshold = None;
  }

type decision =
  | Allocated of Allocation.t
  | Wait of { mean_load_per_core : float; threshold : float }

let mean_load_per_core snapshot ~weights =
  let loads = Compute_load.of_snapshot snapshot ~weights in
  let usable = Compute_load.usable loads in
  let total_load, total_cores =
    List.fold_left
      (fun (l, c) node ->
        let info =
          match Snapshot.node_info snapshot node with
          | Some i -> i
          | None -> assert false
        in
        ( l +. Compute_load.cpu_load_1m loads ~node,
          c + info.Snapshot.static.Rm_cluster.Node.cores ))
      (0.0, 0) usable
  in
  if total_cores = 0 then 0.0 else total_load /. float_of_int total_cores

let m_wait = Telemetry.Metrics.counter "core.broker.wait"
let m_allocated = Telemetry.Metrics.counter "core.broker.allocated"
let m_errors = Telemetry.Metrics.counter "core.broker.errors"

let decide ~config ~snapshot ~request ~rng =
  let overloaded =
    match config.wait_threshold with
    | None -> None
    | Some threshold ->
      let m = mean_load_per_core snapshot ~weights:config.weights in
      if m > threshold then Some (m, threshold) else None
  in
  match overloaded with
  | Some (mean_load_per_core, threshold) ->
    if Telemetry.Runtime.is_enabled () then begin
      Telemetry.Metrics.incr m_wait;
      Telemetry.Audit.record
        {
          Telemetry.Audit.time = snapshot.Snapshot.time;
          policy = Policies.name config.policy;
          procs = request.Request.procs;
          ppn = request.Request.ppn;
          alpha = request.Request.alpha;
          beta = request.Request.beta;
          staleness_s = Snapshot.max_staleness snapshot;
          usable = List.length (Snapshot.usable snapshot);
          nodes = [];
          candidates = [];
          chosen = None;
          decision = Telemetry.Audit.Wait { mean_load_per_core; threshold };
        }
    end;
    Ok (Wait { mean_load_per_core; threshold })
  | None ->
    let result =
      Result.map
        (fun allocation -> Allocated allocation)
        (Policies.allocate ~policy:config.policy ~snapshot
           ~weights:config.weights ~request ~rng)
    in
    (match result with
    | Ok (Allocated _) -> Telemetry.Metrics.incr m_allocated
    | Ok (Wait _) -> ()
    | Error _ -> Telemetry.Metrics.incr m_errors);
    result

let pp_decision ppf = function
  | Allocated a -> Allocation.pp ppf a
  | Wait { mean_load_per_core; threshold } ->
    Format.fprintf ppf
      "wait (cluster mean load/core %.2f exceeds threshold %.2f)"
      mean_load_per_core threshold

(** The resource broker façade: snapshot in, decision out.

    Wraps {!Policies.allocate} with the §6 extension: "if the overall
    load on the cluster is extremely high … our tool should recommend
    waiting rather than allocating right away". The broker computes the
    cluster-wide mean 1-minute load per logical core and declines when
    it exceeds the configured threshold. *)

type config = {
  weights : Weights.t;
  policy : Policies.policy;
  wait_threshold : float option;
      (** mean load per core above which the broker recommends waiting;
          [None] (default) always allocates, like the paper's evaluation *)
  max_staleness_s : float;
      (** drop usable nodes whose store record is older than this before
          deciding — a node the monitor stopped refreshing is probably
          dead or partitioned. Excluded nodes are counted in
          [core.broker.stale_excluded] and listed in the audit record.
          [infinity] (default) keeps the historical behavior *)
  starts : Dense_alloc.starts option;
      (** candidate-start pruning mode forwarded to
          {!Policies.allocate_audited}; [None] (default) defers to the
          process-wide {!Dense_alloc.default_starts} knob *)
}

val default_config : config
(** Paper-default weights, network-and-load-aware policy, no waiting. *)

type decision =
  | Allocated of Allocation.t
  | Wait of { mean_load_per_core : float; threshold : float }

val mean_load_per_core : Rm_monitor.Snapshot.t -> weights:Weights.t -> float
(** Σ 1-minute loads / Σ logical cores over usable nodes; 0 when no
    node is usable. *)

val decide :
  config:config ->
  snapshot:Rm_monitor.Snapshot.t ->
  request:Request.t ->
  rng:Rm_stats.Rng.t ->
  (decision, Allocation.error) result

val pp_decision : Format.formatter -> decision -> unit

module Snapshot = Rm_monitor.Snapshot
module Running_means = Rm_stats.Running_means

type t = {
  usable : int array;
  values_arr : float array;  (* aligned with usable *)
  load_1m_arr : float array;  (* aligned with usable *)
  values : (int, float) Hashtbl.t;
  load_1m : (int, float) Hashtbl.t;
}

let blend (w : Weights.t) view =
  Running_means.blend view ~w1:w.blend_m1 ~w5:w.blend_m5 ~w15:w.blend_m15

let usable_infos snapshot =
  let usable = Array.of_list (Snapshot.usable snapshot) in
  let infos =
    Array.map
      (fun node ->
        match Snapshot.node_info snapshot node with
        | Some info -> info
        | None -> assert false (* usable implies a record *))
      usable
  in
  (usable, infos)

(* Table 1's attribute columns, raw (pre-normalization). *)
let columns snapshot ~weights =
  Weights.validate weights;
  let _, infos = usable_infos snapshot in
  let col f = Array.map f infos in
  let static (i : Snapshot.node_info) = i.static in
  let w = weights in
  [
    { Madm.name = "core-count"; criterion = Saw.Maximize; weight = w.Weights.w_core_count;
      values = col (fun i -> float_of_int (static i).Rm_cluster.Node.cores) };
    { Madm.name = "cpu-frequency"; criterion = Saw.Maximize; weight = w.w_freq;
      values = col (fun i -> (static i).Rm_cluster.Node.freq_ghz) };
    { Madm.name = "total-memory"; criterion = Saw.Maximize; weight = w.w_total_mem;
      values = col (fun i -> (static i).Rm_cluster.Node.mem_gb) };
    { Madm.name = "current-users"; criterion = Saw.Minimize; weight = w.w_users;
      values = col (fun i -> float_of_int i.users) };
    { Madm.name = "cpu-load"; criterion = Saw.Minimize; weight = w.w_load;
      values = col (fun i -> blend w i.load) };
    { Madm.name = "cpu-utilization"; criterion = Saw.Minimize; weight = w.w_util;
      values = col (fun i -> blend w i.util_pct) };
    { Madm.name = "data-flow-rate"; criterion = Saw.Minimize; weight = w.w_nic;
      values = col (fun i -> blend w i.nic_mb_s) };
    { Madm.name = "available-memory"; criterion = Saw.Maximize; weight = w.w_mem_avail;
      values = col (fun i -> blend w i.mem_avail_gb) };
  ]

let of_snapshot snapshot ~weights =
  Weights.validate weights;
  let usable, infos = usable_infos snapshot in
  let combined =
    if Array.length usable = 0 then [||]
    else Madm.saw_scores (columns snapshot ~weights)
  in
  let load_1m_arr =
    Array.map (fun (i : Snapshot.node_info) -> i.load.Running_means.m1) infos
  in
  let values = Hashtbl.create (Array.length usable) in
  let load_1m = Hashtbl.create (Array.length usable) in
  Array.iteri
    (fun k node ->
      Hashtbl.replace values node combined.(k);
      Hashtbl.replace load_1m node load_1m_arr.(k))
    usable;
  { usable; values_arr = combined; load_1m_arr; values; load_1m }

let usable t = Array.to_list t.usable

let dense_ids t = t.usable
let dense_values t = t.values_arr
let dense_load_1m t = t.load_1m_arr

let get t ~node =
  match Hashtbl.find_opt t.values node with
  | Some v -> v
  | None -> invalid_arg "Compute_load.get: node not usable"

let cpu_load_1m t ~node =
  match Hashtbl.find_opt t.load_1m node with
  | Some v -> v
  | None -> invalid_arg "Compute_load.cpu_load_1m: node not usable"

let total t ~nodes = List.fold_left (fun acc n -> acc +. get t ~node:n) 0.0 nodes

let pp ppf t =
  Array.iter
    (fun node -> Format.fprintf ppf "n%d=%.4f@ " node (get t ~node))
    t.usable

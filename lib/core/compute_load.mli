(** Compute load CL_v — Eq. 1.

    For every usable node of a snapshot, blend each dynamic attribute's
    1/5/15-minute means into a scalar, run the SAW pipeline over the
    attribute columns of Table 1, and weight-sum them. Lower is better
    (all attributes are minimization-directed after {!Saw.prepare}). *)

type t

val of_snapshot : Rm_monitor.Snapshot.t -> weights:Weights.t -> t
(** Considers exactly [Snapshot.usable] nodes. *)

val columns : Rm_monitor.Snapshot.t -> weights:Weights.t -> Madm.column list
(** The raw Table 1 attribute columns over the usable nodes (running
    means blended per [weights]), exposed so alternative MADM methods
    ({!Madm}) can rank the same data. Column order is Table 1's; values
    are positionally aligned with [Snapshot.usable]. *)

val usable : t -> int list
(** Node ids with a compute load, ascending. *)

(** {2 Dense views} — for the allocator fast path ({!Dense_alloc}).
    All three arrays are positionally aligned: index [i] describes the
    [i]-th usable node in ascending-id order (the same order
    {!Network_load} uses, both being derived from [Snapshot.usable]).
    Callers must treat them as read-only. *)

val dense_ids : t -> int array
val dense_values : t -> float array
(** CL_v per node, aligned with {!dense_ids}. *)

val dense_load_1m : t -> float array
(** Raw 1-minute load means, aligned with {!dense_ids}. *)

val get : t -> node:int -> float
(** Raises [Invalid_argument] for a node outside {!usable}. *)

val cpu_load_1m : t -> node:int -> float
(** The raw 1-minute CPU load mean, needed by Eq. 3 and by the
    load-per-core accounting of Fig. 5. *)

val total : t -> nodes:int list -> float
(** Σ CL over a node set — the C_{G_v} term of Algorithm 2. *)

val pp : Format.formatter -> t -> unit

(* Dense-array fast path for Algorithm 1 + Algorithm 2.

   The naive pipeline (Candidate.generate_all + Select.score) pays two
   hashtable lookups behind every NL(v,u)/CL(u) read, a full
   O(V log V) sort per start node, and re-walks the k² node pairs of
   each candidate through Network_load.get — O(V² log V) total with
   heavy constant factors. This module computes the identical scored
   candidate set from flat float arrays:

   - node ids are mapped to dense indices once (the ascending usable
     order shared by Compute_load and Network_load);
   - the α·CL(u) vector and per-node capacities are precomputed and
     shared across all V starts;
   - the per-start full sort is replaced by heap-based partial
     selection — only the prefix actually covering [procs] processes is
     ever popped, so a start costs O(V + k log V) instead of
     O(V log V);
   - Eq. 4 candidate totals accumulate over dense matrix reads instead
     of hashtable-indexed pair walks;
   - the V starts are independent greedy expansions over read-only
     inputs (Algorithm 1 grows one candidate per start), so they are
     swept in parallel across OCaml domains: contiguous chunks of
     starts go to a reusable {!Domain_pool}, each worker ranks its
     starts with private scratch buffers, and results land at
     per-start slots of one output array — merged in ascending start
     order, Eq. 4 normalization and the argmin (ties included) see
     exactly the sequential ordering. Below {!par_v_threshold} usable
     nodes the sweep is always sequential: at small V the pool
     hand-off costs more than the whole sweep.

   Pruned starts ([~starts:(Top_k k)]) cut the other V factor: start
   nodes are ranked by a cheap O(V) α·CL + β·mean-NL-degree score and
   only the best k expand. The expansion arithmetic per start is the
   shared [one_start] code, so each surviving candidate's raw Eq. 4
   costs are bit-identical to its exhaustive counterpart; only the
   per-candidate-set normalization (and therefore possibly the argmin)
   sees fewer candidates. NL reads go through the factored
   {!Network_load.raw} form unless a materialized matrix already
   exists, so pruned allocation never forces the O(V²) matrix.

   Equivalence of the exhaustive path is bit-exact, not just semantic:
   every float expression below reproduces the naive code's operation
   order (same operands, same association), and each start's
   arithmetic is confined to one worker, so candidate costs, Eq. 4
   totals and therefore the argmin — including ties broken on start id
   — are byte-identical for every domain count. test_core.ml holds
   qcheck properties against the retained naive reference, across
   ndomains ∈ {1, 2, 4}, and for the pruned path's subset/regret
   contracts. *)

module Matrix = Rm_stats.Matrix
module Telemetry = Rm_telemetry

let m_pruned_starts = Telemetry.Metrics.counter "core.alloc.pruned_starts"

type starts = All | Top_k of int

let starts_label = function All -> "all" | Top_k k -> string_of_int k

let parse_starts s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> Ok All
  | t ->
    (match int_of_string_opt t with
    | Some k when k >= 1 -> Ok (Top_k k)
    | Some _ | None ->
      Error "starts must be \"all\" or a positive candidate count")

let validate_starts = function
  | All -> ()
  | Top_k k ->
    if k < 1 then invalid_arg "Dense_alloc: Top_k starts must be >= 1"

(* Process-wide default for the start-pruning mode, mirroring
   Domain_pool's RM_ALLOC_DOMAINS knob. An unparseable env value falls
   back to exhaustive (never silently prunes). *)
let default_starts_ref =
  ref
    (match Sys.getenv_opt "RM_ALLOC_STARTS" with
    | Some s -> (match parse_starts s with Ok st -> st | Error _ -> All)
    | None -> All)

let default_starts () = !default_starts_ref

let set_default_starts st =
  validate_starts st;
  default_starts_ref := st

(* Below this many usable nodes the parallel sweep loses to the
   sequential one (pool hand-off + per-worker scratch dominate the
   V=60 sweep: dense-par4 measured ~0.73x dense-warm), so [ndomains]
   is ignored and the sweep runs sequentially. *)
let par_v_threshold = 128

let domains_for ~v ~requested =
  if requested < 1 then
    invalid_arg "Dense_alloc.scored_all: ndomains must be >= 1";
  if v < par_v_threshold then 1 else min requested v

(* Binary min-heap over dense indices ordered by (cost, id). Dense
   order is ascending node id, so comparing indices breaks cost ties
   exactly like the naive sort's (cost, node id) comparator. Float
   [<]/[=] are only total over finite values — a NaN cost would make
   both sides false and silently corrupt the heap order — which is why
   [scored_all] rejects non-finite CL/NL at entry. *)
let heap_less cost a b = cost.(a) < cost.(b) || (cost.(a) = cost.(b) && a < b)

let sift_down cost heap size i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && heap_less cost heap.(l) heap.(!smallest) then smallest := l;
    if r < size && heap_less cost heap.(r) heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = heap.(!i) in
      heap.(!i) <- heap.(!smallest);
      heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

(* Per-worker scratch: the heap-selection buffers are written across
   the whole [0, v) range by every start, so parallel workers must not
   share them (the sequential code reused one quadruple for all V
   starts — safe only because the starts ran one after another). *)
type scratch = {
  cost : float array;
  heap : int array;
  sel : int array;
  sel_procs : int array;
}

let make_scratch v =
  {
    cost = Array.make v 0.0;
    heap = Array.make v 0;
    sel = Array.make v 0;
    sel_procs = Array.make v 0;
  }

(* The O(V²) NL scan must not be paid on every allocation: in the warm
   steady state the model cache hands back the same physical matrix
   call after call, so remembering the last matrix that passed makes
   the scan once-per-model instead of once-per-call (a single slot
   covers the dominant pattern; an alternating pair of snapshots merely
   re-scans). The slot only ever holds a matrix that validated clean,
   so a stale hit can never skip a matrix that would have failed —
   this leans on Network_load.nl_matrix's contract that the matrix is
   never mutated in place after construction (Network_load.apply_delta
   replaces the materialized matrix rather than patching it, so a
   patched model presents a fresh physical matrix here). The slot is
   weak so it extends no lifetime: once Model_cache evicts a model,
   its O(V²) matrix stays collectable (at V=4096 a pinned snapshot
   would hold hundreds of MB). *)
let last_valid_nl : Matrix.t Weak.t = Weak.create 1

let validate_cl ~ids ~cl =
  let v = Array.length ids in
  for i = 0 to v - 1 do
    if not (Float.is_finite cl.(i)) then
      invalid_arg
        (Printf.sprintf "Dense_alloc.scored_all: non-finite CL for node %d"
           ids.(i))
  done

let validate_nl ~ids ~nl =
  let v = Array.length ids in
  match Weak.get last_valid_nl 0 with
  | Some m when m == nl -> ()
  | _ ->
    (* The NL diagonal is 0 by construction; scanning it too keeps the
       loop branch-free. *)
    for i = 0 to v - 1 do
      for j = 0 to v - 1 do
        if not (Float.is_finite (Matrix.get nl i j)) then
          invalid_arg
            (Printf.sprintf
               "Dense_alloc.scored_all: non-finite NL for pair (%d, %d)"
               ids.(i) ids.(j))
      done
    done;
    Weak.set last_valid_nl 0 (Some nl)

let scored_all ?ndomains ?starts ~loads ~net ~capacity ~request () =
  let ids = Compute_load.dense_ids loads in
  let v = Array.length ids in
  if v = 0 then invalid_arg "Dense_alloc.scored_all: no usable nodes";
  (* Both models come from one snapshot, so their dense orders coincide;
     verify once instead of translating ids on every matrix read. *)
  let net_usable = Network_load.usable net in
  if List.length net_usable <> v then
    invalid_arg "Dense_alloc.scored_all: loads/net usable sets differ";
  List.iteri
    (fun i n ->
      if i >= v || ids.(i) <> n then
        invalid_arg "Dense_alloc.scored_all: loads/net usable sets differ")
    net_usable;
  let procs = request.Request.procs in
  if procs <= 0 then
    invalid_arg "Dense_alloc.scored_all: request.procs must be positive";
  let alpha = request.Request.alpha and beta = request.Request.beta in
  if not (Float.is_finite alpha && Float.is_finite beta) then
    invalid_arg "Dense_alloc.scored_all: non-finite alpha/beta";
  let starts = match starts with Some s -> s | None -> default_starts () in
  validate_starts starts;
  (* Shared read-only inputs, hoisted out of the start loop (and built
     before any domain is involved — [capacity] may touch hashtables). *)
  let cl = Compute_load.dense_values loads in
  let alpha_cl = Array.map (fun c -> alpha *. c) cl in
  let caps = Array.map (fun node -> max 1 (capacity node)) ids in
  (* One greedy expansion (Algorithm 1) for start [s]. [fill_costs] is
     called once per start and must write every [cost.(i)]; [pair_nl]
     reads NL over dense indices for the Eq. 4 candidate total. Both
     paths below funnel through this function, which is what makes a
     pruned candidate's raw costs bit-identical to its exhaustive
     counterpart. *)
  let one_start ~fill_costs ~pair_nl scratch s =
    let cost = scratch.cost
    and heap = scratch.heap
    and sel = scratch.sel
    and sel_procs = scratch.sel_procs in
    (* A_s(u) = α·CL(u) + β·NL(s,u); the start itself costs 0. *)
    fill_costs cost s;
    for i = 0 to v - 1 do
      heap.(i) <- i
    done;
    cost.(s) <- 0.0;
    for i = (v / 2) - 1 downto 0 do
      sift_down cost heap v i
    done;
    (* Partial selection: pop ranked nodes only until the request is
       covered — the tail of the ranking is never materialized. *)
    let size = ref v and allocated = ref 0 and k = ref 0 in
    while !allocated < procs && !size > 0 do
      let i = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      sift_down cost heap !size 0;
      let cap = caps.(i) in
      let p = min cap (procs - !allocated) in
      sel.(!k) <- i;
      sel_procs.(!k) <- p;
      allocated := !allocated + p;
      incr k
    done;
    let k = !k in
    (* Whole cluster in, request still unsatisfied: deal the remaining
       processes round-robin over the selected nodes (Alg. 1 ll. 12-13).
       [caps] entries are >= 1, so k >= 1 whenever procs > 0. *)
    if !allocated < procs then begin
      let remaining = ref (procs - !allocated) in
      let i = ref 0 in
      while !remaining > 0 do
        sel_procs.(!i) <- sel_procs.(!i) + 1;
        decr remaining;
        i := (!i + 1) mod k
      done
    end;
    (* Eq. 4 raw totals, dense. Accumulation order matches
       Compute_load.total / Network_load.total_edges exactly. *)
    let compute = ref 0.0 in
    for a = 0 to k - 1 do
      compute := !compute +. cl.(sel.(a))
    done;
    let network = ref 0.0 in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        network := !network +. pair_nl sel.(a) sel.(b)
      done
    done;
    let assignment = List.init k (fun a -> (ids.(sel.(a)), sel_procs.(a))) in
    let candidate =
      { Candidate.start = ids.(s); nodes = List.map fst assignment; assignment }
    in
    (candidate, !compute, !network)
  in
  (* Algorithm 2's per-candidate-set normalization, verbatim from
     Select.score; summing the merged array in its (ascending start)
     order reproduces the sequential fold bit-for-bit. *)
  let finalize results =
    let c_sum = ref 0.0 and n_sum = ref 0.0 in
    Array.iter
      (fun (_, c, n) ->
        c_sum := !c_sum +. c;
        n_sum := !n_sum +. n)
      results;
    let c_sum = !c_sum and n_sum = !n_sum in
    let norm sum x = if sum > 0.0 then x /. sum else 0.0 in
    List.init (Array.length results) (fun i ->
        let candidate, compute_cost, network_cost = results.(i) in
        let total =
          (alpha *. norm c_sum compute_cost) +. (beta *. norm n_sum network_cost)
        in
        { Select.candidate; compute_cost; network_cost; total })
  in
  match starts with
  | Top_k k when k < v ->
    (* Pruned path: rank starts by the O(V) proxy score and expand the
       best k sequentially (k is small; the parallel sweep's hand-off
       would dominate). NL reads stay in factored form unless a
       materialized matrix already exists — never force O(V²) here. *)
    validate_cl ~ids ~cl;
    let pair_nl =
      let read =
        match Network_load.nl_cached net with
        | Some m -> fun a b -> Matrix.get m a b
        | None ->
          let r = Network_load.raw net in
          fun a b -> Network_load.raw_get r a b
      in
      fun a b ->
        let x = read a b in
        if not (Float.is_finite x) then
          invalid_arg
            (Printf.sprintf
               "Dense_alloc.scored_all: non-finite NL for pair (%d, %d)"
               ids.(a) ids.(b));
        x
    in
    let deg = Network_load.dense_degrees net in
    Array.iteri
      (fun i d ->
        if not (Float.is_finite d) then
          invalid_arg
            (Printf.sprintf
               "Dense_alloc.scored_all: non-finite NL degree for node %d"
               ids.(i)))
      deg;
    let score = Array.init v (fun i -> alpha_cl.(i) +. (beta *. deg.(i))) in
    let order = Array.init v (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = Float.compare score.(a) score.(b) in
        if c <> 0 then c else compare a b)
      order;
    let picked = Array.sub order 0 k in
    Array.sort compare picked;
    let fill_costs cost s =
      for i = 0 to v - 1 do
        cost.(i) <- alpha_cl.(i) +. (beta *. pair_nl s i)
      done
    in
    let scratch = make_scratch v in
    let results =
      Array.map (fun s -> one_start ~fill_costs ~pair_nl scratch s) picked
    in
    Telemetry.Metrics.incr m_pruned_starts;
    finalize results
  | All | Top_k _ ->
    (* Exhaustive sweep (Top_k k >= v degenerates to it). *)
    let nl = Network_load.nl_matrix net in
    validate_cl ~ids ~cl;
    validate_nl ~ids ~nl;
    let fill_costs cost s =
      for i = 0 to v - 1 do
        cost.(i) <- alpha_cl.(i) +. (beta *. Matrix.get nl s i)
      done
    in
    let pair_nl a b = Matrix.get nl a b in
    let nd =
      let requested =
        match ndomains with
        | Some n -> n
        | None -> Domain_pool.default_domains ()
      in
      domains_for ~v ~requested
    in
    let raw = Array.make v None in
    if nd = 1 then begin
      let scratch = make_scratch v in
      for s = 0 to v - 1 do
        raw.(s) <- Some (one_start ~fill_costs ~pair_nl scratch s)
      done
    end
    else begin
      (* Contiguous chunks keep each worker's NL row reads streaming and
         make the output slots worker-disjoint. The pool silently clamps
         oversized requests ([Domain_pool.max_workers]), so the chunk
         size must come from the pool's actual worker count — chunking
         over the requested [nd] would leave every start beyond
         [size * chunk] uncomputed. *)
      let pool = Domain_pool.get nd in
      let nd = Domain_pool.size pool in
      let chunk = (v + nd - 1) / nd in
      Domain_pool.run pool (fun w ->
          let lo = w * chunk in
          let hi = min v (lo + chunk) in
          if lo < hi then begin
            let scratch = make_scratch v in
            for s = lo to hi - 1 do
              raw.(s) <- Some (one_start ~fill_costs ~pair_nl scratch s)
            done
          end)
    end;
    finalize
      (Array.init v (fun s ->
           match raw.(s) with Some r -> r | None -> assert false))

let best ?ndomains ?starts ~loads ~net ~capacity ~request () =
  Select.best_scored (scored_all ?ndomains ?starts ~loads ~net ~capacity ~request ())

(* Dense-array fast path for Algorithm 1 + Algorithm 2.

   The naive pipeline (Candidate.generate_all + Select.score) pays two
   hashtable lookups behind every NL(v,u)/CL(u) read, a full
   O(V log V) sort per start node, and re-walks the k² node pairs of
   each candidate through Network_load.get — O(V² log V) total with
   heavy constant factors. This module computes the identical scored
   candidate set from flat float arrays:

   - node ids are mapped to dense indices once (the ascending usable
     order shared by Compute_load and Network_load);
   - the α·CL(u) vector and per-node capacities are precomputed and
     shared across all V starts;
   - the per-start full sort is replaced by heap-based partial
     selection — only the prefix actually covering [procs] processes is
     ever popped, so a start costs O(V + k log V) instead of
     O(V log V);
   - Eq. 4 candidate totals accumulate over dense matrix reads instead
     of hashtable-indexed pair walks.

   Equivalence is bit-exact, not just semantic: every float expression
   below reproduces the naive code's operation order (same operands,
   same association), so candidate costs, Eq. 4 totals and therefore
   the argmin — including ties broken on start id — are byte-identical.
   test_core.ml holds a qcheck property against the retained naive
   reference. *)

module Matrix = Rm_stats.Matrix

(* Binary min-heap over dense indices ordered by (cost, id). Dense
   order is ascending node id, so comparing indices breaks cost ties
   exactly like the naive sort's (cost, node id) comparator. *)
let heap_less cost a b = cost.(a) < cost.(b) || (cost.(a) = cost.(b) && a < b)

let sift_down cost heap size i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < size && heap_less cost heap.(l) heap.(!smallest) then smallest := l;
    if r < size && heap_less cost heap.(r) heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = heap.(!i) in
      heap.(!i) <- heap.(!smallest);
      heap.(!smallest) <- tmp;
      i := !smallest
    end
  done

let scored_all ~loads ~net ~capacity ~request =
  let ids = Compute_load.dense_ids loads in
  let v = Array.length ids in
  if v = 0 then invalid_arg "Dense_alloc.scored_all: no usable nodes";
  (* Both models come from one snapshot, so their dense orders coincide;
     verify once instead of translating ids on every matrix read. *)
  let net_usable = Network_load.usable net in
  if List.length net_usable <> v then
    invalid_arg "Dense_alloc.scored_all: loads/net usable sets differ";
  List.iteri
    (fun i n ->
      if i >= v || ids.(i) <> n then
        invalid_arg "Dense_alloc.scored_all: loads/net usable sets differ")
    net_usable;
  let cl = Compute_load.dense_values loads in
  let nl = Network_load.nl_matrix net in
  let alpha = request.Request.alpha and beta = request.Request.beta in
  let alpha_cl = Array.map (fun c -> alpha *. c) cl in
  let caps = Array.map (fun node -> max 1 (capacity node)) ids in
  let procs = request.Request.procs in
  (* Buffers reused across starts. *)
  let cost = Array.make v 0.0 in
  let heap = Array.make v 0 in
  let sel = Array.make v 0 in
  let sel_procs = Array.make v 0 in
  let one_start s =
    (* A_s(u) = α·CL(u) + β·NL(s,u); the start itself costs 0. *)
    for i = 0 to v - 1 do
      cost.(i) <- alpha_cl.(i) +. (beta *. Matrix.get nl s i);
      heap.(i) <- i
    done;
    cost.(s) <- 0.0;
    for i = (v / 2) - 1 downto 0 do
      sift_down cost heap v i
    done;
    (* Partial selection: pop ranked nodes only until the request is
       covered — the tail of the ranking is never materialized. *)
    let size = ref v and allocated = ref 0 and k = ref 0 in
    while !allocated < procs && !size > 0 do
      let i = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      sift_down cost heap !size 0;
      let cap = caps.(i) in
      let p = min cap (procs - !allocated) in
      sel.(!k) <- i;
      sel_procs.(!k) <- p;
      allocated := !allocated + p;
      incr k
    done;
    let k = !k in
    (* Whole cluster in, request still unsatisfied: deal the remaining
       processes round-robin over the selected nodes (Alg. 1 ll. 12-13). *)
    if !allocated < procs then begin
      let remaining = ref (procs - !allocated) in
      let i = ref 0 in
      while !remaining > 0 do
        sel_procs.(!i) <- sel_procs.(!i) + 1;
        decr remaining;
        i := (!i + 1) mod k
      done
    end;
    (* Eq. 4 raw totals, dense. Accumulation order matches
       Compute_load.total / Network_load.total_edges exactly. *)
    let compute = ref 0.0 in
    for a = 0 to k - 1 do
      compute := !compute +. cl.(sel.(a))
    done;
    let network = ref 0.0 in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        network := !network +. Matrix.get nl sel.(a) sel.(b)
      done
    done;
    let assignment =
      List.init k (fun a -> (ids.(sel.(a)), sel_procs.(a)))
    in
    let candidate =
      { Candidate.start = ids.(s); nodes = List.map fst assignment; assignment }
    in
    (candidate, !compute, !network)
  in
  let raw = List.init v one_start in
  (* Algorithm 2's per-candidate-set normalization, verbatim from
     Select.score so totals stay bit-identical. *)
  let c_sum = List.fold_left (fun acc (_, c, _) -> acc +. c) 0.0 raw in
  let n_sum = List.fold_left (fun acc (_, _, n) -> acc +. n) 0.0 raw in
  let norm sum x = if sum > 0.0 then x /. sum else 0.0 in
  List.map
    (fun (candidate, compute_cost, network_cost) ->
      let total =
        (alpha *. norm c_sum compute_cost) +. (beta *. norm n_sum network_cost)
      in
      { Select.candidate; compute_cost; network_cost; total })
    raw

let best ~loads ~net ~capacity ~request =
  Select.best_scored (scored_all ~loads ~net ~capacity ~request)

(** Dense-array fast path for Algorithm 1 + Algorithm 2.

    Produces exactly what [Select.score] over [Candidate.generate_all]
    produces — same candidates in the same (ascending start id) order,
    bit-identical costs and Eq. 4 totals, hence the identical chosen
    allocation — but from flat float arrays: the α·CL vector and
    per-node capacities are computed once and shared across all V
    starts, each start's ranking uses heap-based partial selection (only
    the prefix covering the request is popped) and Eq. 4 totals read the
    dense NL matrix directly instead of going through two hashtable
    lookups per pair. O(V·(V + k log V)) instead of O(V² log V), with
    far smaller constants.

    The naive pipeline is retained as the reference implementation; a
    qcheck property in test_core.ml asserts equivalence across random
    snapshots, weights and requests. *)

val scored_all :
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  Select.scored list
(** [loads] and [net] must come from the same snapshot (their usable
    sets must coincide). Raises [Invalid_argument] when no node is
    usable or the models disagree. *)

val best :
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  Select.scored
(** [Select.best_scored] over {!scored_all}. *)

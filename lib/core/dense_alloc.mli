(** Dense-array fast path for Algorithm 1 + Algorithm 2.

    Produces exactly what [Select.score] over [Candidate.generate_all]
    produces — same candidates in the same (ascending start id) order,
    bit-identical costs and Eq. 4 totals, hence the identical chosen
    allocation — but from flat float arrays: the α·CL vector and
    per-node capacities are computed once and shared across all V
    starts, each start's ranking uses heap-based partial selection (only
    the prefix covering the request is popped) and Eq. 4 totals read the
    dense NL matrix directly instead of going through two hashtable
    lookups per pair. O(V·(V + k log V)) instead of O(V² log V), with
    far smaller constants.

    The V starts are independent (Algorithm 1 grows one candidate per
    start over read-only models), so they are additionally swept in
    parallel across OCaml domains: contiguous chunks of starts run on a
    reusable {!Domain_pool}, each worker with private scratch buffers,
    and per-start results merge in ascending start order — output is
    bit-identical for every domain count.

    The naive pipeline is retained as the reference implementation;
    qcheck properties in test_core.ml assert equivalence across random
    snapshots, weights and requests, and across ndomains ∈ {1, 2, 4}. *)

val scored_all :
  ?ndomains:int ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  unit ->
  Select.scored list
(** [loads] and [net] must come from the same snapshot (their usable
    sets must coincide). [ndomains] defaults to
    {!Domain_pool.default_domains} (the [RM_ALLOC_DOMAINS] /
    [--domains] knob) and is capped at the number of usable nodes.
    Raises [Invalid_argument] when no node is usable, the models
    disagree, [ndomains < 1], the request's process count is not
    positive, or any CL/NL model value is non-finite (a NaN cost would
    silently corrupt the heap order and diverge from the naive
    compare-based sort). *)

val best :
  ?ndomains:int ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  unit ->
  Select.scored
(** [Select.best_scored] over {!scored_all}. *)

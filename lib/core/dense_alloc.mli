(** Dense-array fast path for Algorithm 1 + Algorithm 2.

    Produces exactly what [Select.score] over [Candidate.generate_all]
    produces — same candidates in the same (ascending start id) order,
    bit-identical costs and Eq. 4 totals, hence the identical chosen
    allocation — but from flat float arrays: the α·CL vector and
    per-node capacities are computed once and shared across all V
    starts, each start's ranking uses heap-based partial selection (only
    the prefix covering the request is popped) and Eq. 4 totals read the
    dense NL matrix directly instead of going through two hashtable
    lookups per pair. O(V·(V + k log V)) instead of O(V² log V), with
    far smaller constants.

    The V starts are independent (Algorithm 1 grows one candidate per
    start over read-only models), so they are additionally swept in
    parallel across OCaml domains: contiguous chunks of starts run on a
    reusable {!Domain_pool}, each worker with private scratch buffers,
    and per-start results merge in ascending start order — output is
    bit-identical for every domain count. Below {!par_v_threshold}
    usable nodes the sweep always runs sequentially (the pool hand-off
    costs more than the sweep itself at small V).

    [~starts:(Top_k k)] additionally prunes the start sweep: candidate
    starts are ranked by a cheap O(V) α·CL + β·mean-NL-degree proxy and
    only the best [k] expand (sequentially — k is small). Each
    surviving candidate's raw Eq. 4 costs are bit-identical to its
    exhaustive counterpart; only the per-candidate-set normalization
    sees fewer candidates, so the chosen start can differ — the qcheck
    regret property in test_core.ml bounds how much. The pruned path
    reads NL in factored form and never materializes the O(V²) matrix.

    The naive pipeline is retained as the reference implementation;
    qcheck properties in test_core.ml assert equivalence across random
    snapshots, weights and requests, and across ndomains ∈ {1, 2, 4}. *)

type starts =
  | All  (** exhaustive sweep: every usable node starts a candidate *)
  | Top_k of int
      (** expand only the [k] best starts by the O(V) proxy score;
          [k >= V] degenerates to [All] *)

val parse_starts : string -> (starts, string) result
(** ["all"] (case-insensitive) or a positive integer. *)

val starts_label : starts -> string
(** ["all"] or the candidate count — stable, parseable by
    {!parse_starts}; used in bench baseline keys and CLI printers. *)

val default_starts : unit -> starts
(** Process-wide default start mode, initialized from the
    [RM_ALLOC_STARTS] environment variable ([All] when unset or
    unparseable) and overridable via {!set_default_starts} (the
    [--starts] CLI knob). *)

val set_default_starts : starts -> unit
(** Raises [Invalid_argument] for [Top_k k] with [k < 1]. *)

val par_v_threshold : int
(** Usable-node count below which the start sweep ignores [ndomains]
    and runs sequentially — at small V the domain-pool hand-off costs
    more than the whole sweep (dense-par4 measured slower than
    dense-warm at V=60). *)

val domains_for : v:int -> requested:int -> int
(** The worker count the exhaustive sweep will actually use for [v]
    usable nodes: 1 below {!par_v_threshold}, else [min requested v]
    (the pool may clamp further). Raises [Invalid_argument] when
    [requested < 1]. Exposed so tests can pin the fallback. *)

val scored_all :
  ?ndomains:int ->
  ?starts:starts ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  unit ->
  Select.scored list
(** [loads] and [net] must come from the same snapshot (their usable
    sets must coincide). [ndomains] defaults to
    {!Domain_pool.default_domains} (the [RM_ALLOC_DOMAINS] /
    [--domains] knob) and is capped at the number of usable nodes;
    it only applies to the exhaustive path ({!domains_for}).
    [starts] defaults to {!default_starts}; with [Top_k k < V] the
    result lists only the [k] expanded candidates (still in ascending
    start-id order). Raises [Invalid_argument] when no node is usable,
    the models disagree, [ndomains < 1], [Top_k k < 1], the request's
    process count is not positive, or any CL/NL model value consulted
    is non-finite (a NaN cost would silently corrupt the heap order
    and diverge from the naive compare-based sort). *)

val best :
  ?ndomains:int ->
  ?starts:starts ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  capacity:(int -> int) ->
  request:Request.t ->
  unit ->
  Select.scored
(** [Select.best_scored] over {!scored_all}. *)

(* A small reusable pool of OCaml 5 domains for data-parallel sweeps.

   Spawning a domain costs far more than one allocator call, so the
   pool keeps its workers alive between [run]s, parked on a condition
   variable. Pools are memoized per size ([get]) and shut down by an
   [at_exit] hook — the main domain must outlive every spawned domain,
   so leaving parked workers behind at exit would hang the runtime.

   Concurrency contract: one [run] at a time per pool, issued from the
   main domain (the allocator call sites are all single-threaded). The
   job closure is published and the completion count read under the
   pool mutex, so writes a worker makes into caller-provided buffers
   are visible to the caller once [run] returns. *)

type t = {
  workers : int;  (** total parallelism, including the calling domain *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable generation : int;  (** bumped once per [run]; workers track it *)
  mutable pending : int;  (** spawned workers still inside the current job *)
  mutable first_error : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

(* More workers than cores only adds scheduling noise, and each domain
   costs a minor heap; clamp requests to a small ceiling. *)
let max_workers = 16

let size t = t.workers

let record_error t exn bt =
  Mutex.lock t.mutex;
  if t.first_error = None then t.first_error <- Some (exn, bt);
  Mutex.unlock t.mutex

let worker_loop t w =
  let seen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    while t.generation = !seen && not t.stopped do
      Condition.wait t.work_ready t.mutex
    done;
    if not t.stopped then begin
      seen := t.generation;
      let job = match t.job with Some f -> f | None -> assert false in
      Mutex.unlock t.mutex;
      (try job w
       with exn -> record_error t exn (Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.work_done;
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.mutex

let create workers =
  let workers = max 1 (min workers max_workers) in
  let t =
    {
      workers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      pending = 0;
      first_error = None;
      stopped = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let run t f =
  if t.workers = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    t.job <- Some f;
    t.first_error <- None;
    t.generation <- t.generation + 1;
    t.pending <- t.workers - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (* The caller is worker 0: it pulls its own share of the work
       instead of blocking while the spawned domains do everything. *)
    let caller_error =
      try
        f 0;
        None
      with exn -> Some (exn, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    let worker_error = t.first_error in
    t.first_error <- None;
    Mutex.unlock t.mutex;
    match caller_error, worker_error with
    | Some (exn, bt), _ | None, Some (exn, bt) ->
      Printexc.raise_with_backtrace exn bt
    | None, None -> ()
  end

(* --- memoized pools + process-wide default ---------------------------- *)

let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mutex = Mutex.create ()
let exit_hook_installed = ref false

let get workers =
  let workers = max 1 (min workers max_workers) in
  Mutex.lock pools_mutex;
  let t =
    match Hashtbl.find_opt pools workers with
    | Some t -> t
    | None ->
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit (fun () ->
            Mutex.lock pools_mutex;
            let all = Hashtbl.fold (fun _ t acc -> t :: acc) pools [] in
            Hashtbl.reset pools;
            Mutex.unlock pools_mutex;
            List.iter shutdown all)
      end;
      let t = create workers in
      Hashtbl.replace pools workers t;
      t
  in
  Mutex.unlock pools_mutex;
  t

(* RM_ALLOC_DOMAINS is the deployment/CI knob: `RM_ALLOC_DOMAINS=4 dune
   runtest` exercises every dense allocation in the suite through the
   4-domain path without touching call sites. *)
let default =
  ref
    (match Sys.getenv_opt "RM_ALLOC_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> min n max_workers | _ -> 1)
    | None -> 1)

let default_domains () = !default

let set_default_domains n =
  if n < 1 then invalid_arg "Domain_pool.set_default_domains: need n >= 1";
  default := min n max_workers

(** A small reusable pool of OCaml 5 domains for data-parallel sweeps
    over flat arrays (the per-start candidate loop in {!Dense_alloc}).

    Workers are spawned once and parked between jobs, so a [run] costs
    two condition-variable handshakes instead of domain spawns. Pools
    are memoized per size and joined by an [at_exit] hook.

    Contract: issue one [run] at a time per pool, from the main domain.
    The job must confine its writes to caller-provided buffers at
    worker-disjoint indices; the completion handshake makes those
    writes visible to the caller. *)

type t

val max_workers : int
(** Hard ceiling on pool parallelism; [get], [create] and
    [set_default_domains] all clamp requests above it. Callers that
    partition work by a requested domain count must re-read the actual
    count from {!size} (or compare against this ceiling) — the clamp is
    silent. *)

val get : int -> t
(** Memoized pool with the given total parallelism (calling domain
    included, so [get 1] spawns nothing and [run] degenerates to a
    plain call). Values are clamped to \[1, {!max_workers}\]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t f] invokes [f w] once per worker index [w] in
    [0 .. size t - 1]; the caller executes [f 0] itself while the
    spawned domains run the rest, and [run] returns only when every
    invocation has finished. If any invocation raises, the first
    exception observed is re-raised after all workers are done. *)

val shutdown : t -> unit
(** Join the pool's domains. Only needed for pools built with
    {!create}; memoized pools are shut down at exit. *)

val create : int -> t
(** A private (non-memoized) pool; the caller owns its lifetime and
    must call {!shutdown} before the process exits. *)

val default_domains : unit -> int
(** Process-wide default parallelism for allocator sweeps, initialized
    from the [RM_ALLOC_DOMAINS] environment variable (1 when unset or
    invalid) — the CI matrix knob. *)

val set_default_domains : int -> unit
(** Override the default (e.g. from a [--domains] flag). Raises
    [Invalid_argument] when [n < 1]. *)

module Snapshot = Rm_monitor.Snapshot

let of_load ~cores ~load =
  if cores <= 0 then invalid_arg "Effective_procs.of_load: no cores";
  if load < 0.0 then invalid_arg "Effective_procs.of_load: negative load";
  cores - (int_of_float (Float.ceil load) mod cores)

type t = {
  order : int array;  (** usable node ids, ascending *)
  procs : int array;  (** pc_v, aligned with [order] *)
  table : (int, int) Hashtbl.t;
}

let of_snapshot snapshot ~loads =
  let order = Array.of_list (Compute_load.usable loads) in
  let procs =
    Array.map
      (fun node ->
        let info =
          match Snapshot.node_info snapshot node with
          | Some i -> i
          | None -> assert false
        in
        let cores = info.Snapshot.static.Rm_cluster.Node.cores in
        let load = Compute_load.cpu_load_1m loads ~node in
        of_load ~cores ~load)
      order
  in
  let table = Hashtbl.create (max 1 (Array.length order)) in
  Array.iteri (fun i node -> Hashtbl.replace table node procs.(i)) order;
  { order; procs; table }

let get t ~node =
  match Hashtbl.find_opt t.table node with Some p -> p | None -> 1

let to_list t =
  Array.to_list (Array.mapi (fun i node -> (node, t.procs.(i))) t.order)

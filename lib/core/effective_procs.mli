(** Effective processor count pc_v — Eq. 3.

    pc_v = coreCount_v − ⌈Load_v⌉ mod coreCount_v: the processes worth
    of capacity left after discounting the runnable processes other
    users already keep busy. The paper's formula uses the modulo, so a
    node loaded beyond its core count wraps — we reproduce it verbatim
    (and test the consequences). Result is always in [1, coreCount]. *)

val of_load : cores:int -> load:float -> int
(** Requires [cores > 0] and [load >= 0]. *)

type t
(** pc_v for every usable node of one snapshot, with O(1) lookup. The
    allocator's capacity closure reads this once per visited node per
    candidate, so the former assoc-list representation put an O(V) scan
    behind every read on the hot path. *)

val of_snapshot : Rm_monitor.Snapshot.t -> loads:Compute_load.t -> t
(** One pc_v per usable node, using the 1-minute load mean (what
    `uptime` reports first). *)

val get : t -> node:int -> int
(** O(1). Defaults to 1 for a node outside the usable set, matching the
    allocator's historical fallback for unknown nodes. *)

val to_list : t -> (int * int) list
(** [(node, pc_v)] in ascending node order — for audit records, tables
    and tests. *)

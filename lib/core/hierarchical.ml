module Snapshot = Rm_monitor.Snapshot
module Topology = Rm_cluster.Topology
module Cluster = Rm_cluster.Cluster

type group = {
  switch : int;
  members : int list;
  capacity : int;
  mean_compute_load : float;
}

let groups ~snapshot ~loads ~capacity =
  let topo = Cluster.topology snapshot.Snapshot.cluster in
  let by_switch = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let s = Topology.switch_of_node topo node in
      Hashtbl.replace by_switch s
        (node :: Option.value (Hashtbl.find_opt by_switch s) ~default:[]))
    (Compute_load.usable loads);
  Hashtbl.fold
    (fun switch members acc ->
      let members = List.sort compare members in
      let capacity =
        List.fold_left (fun acc n -> acc + max 1 (capacity n)) 0 members
      in
      let mean_compute_load =
        Compute_load.total loads ~nodes:members
        /. float_of_int (List.length members)
      in
      { switch; members; capacity; mean_compute_load } :: acc)
    by_switch []
  |> List.sort (fun a b -> compare a.switch b.switch)

let mean_cross_pairs net xs ys =
  let acc = ref 0.0 and n = ref 0 in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u <> v then begin
            acc := !acc +. Network_load.get net ~u ~v;
            incr n
          end)
        ys)
    xs;
  if !n = 0 then 0.0 else !acc /. float_of_int !n

let group_network_load net a b =
  if a.switch = b.switch then begin
    match a.members with
    | [] | [ _ ] -> 0.0
    | members -> Network_load.mean_edges net ~nodes:members
  end
  else mean_cross_pairs net a.members b.members

(* Memoized group-pair network loads: the V²-sized averaging happens
   once, after which the group-level algorithm touches only G² values.
   The averaging itself is one factored O(V²) pass
   (Network_load.block_mean_table) rather than G² hashtable-indexed
   pair walks — at V=16384 the walk through Network_load.get was the
   dominant cost of a hierarchical allocation, and the factored pass
   also never materializes the NL matrix. *)
let group_nl_table net all_groups =
  let arr = Array.of_list all_groups in
  let g = Array.length arr in
  let block_of_switch = Hashtbl.create g in
  Array.iteri (fun i grp -> Hashtbl.replace block_of_switch grp.switch i) arr;
  let block_of_node = Hashtbl.create 64 in
  Array.iteri
    (fun i grp ->
      List.iter (fun n -> Hashtbl.replace block_of_node n i) grp.members)
    arr;
  let block_of_dense =
    Array.of_list
      (List.map
         (fun n -> Option.value (Hashtbl.find_opt block_of_node n) ~default:(-1))
         (Network_load.usable net))
  in
  let means = Network_load.block_mean_table net ~block_of_dense ~nblocks:g in
  fun a b ->
    match
      ( Hashtbl.find_opt block_of_switch a.switch,
        Hashtbl.find_opt block_of_switch b.switch )
    with
    | Some ba, Some bb -> means.((min ba bb * g) + max ba bb)
    | _ -> 0.0

(* Group-level Algorithm 1: greedy accretion of groups from a starting
   group, ranked by alpha * mean CL + beta * inter-group NL. *)
let group_candidate ~gnl ~request ~all_groups start =
  let alpha = request.Request.alpha and beta = request.Request.beta in
  let cost g =
    if g.switch = start.switch then 0.0
    else (alpha *. g.mean_compute_load) +. (beta *. gnl start g)
  in
  let ranked =
    List.sort
      (fun a b ->
        match Float.compare (cost a) (cost b) with
        | 0 -> compare a.switch b.switch
        | c -> c)
      all_groups
  in
  let rec take acc cap = function
    | [] -> List.rev acc
    | g :: rest ->
      if cap >= request.Request.procs then List.rev acc
      else take (g :: acc) (cap + g.capacity) rest
  in
  take [] 0 ranked

(* Group-level Eq. 4 over a candidate group set. *)
let group_score ~gnl ~request selected =
  let alpha = request.Request.alpha and beta = request.Request.beta in
  let compute =
    List.fold_left (fun acc g -> acc +. g.mean_compute_load) 0.0 selected
  in
  let rec pairs acc = function
    | [] -> acc
    | g :: rest ->
      pairs (List.fold_left (fun a h -> a +. gnl g h) acc rest) rest
  in
  let network =
    pairs 0.0 selected
    +. List.fold_left (fun acc g -> acc +. gnl g g) 0.0 selected
  in
  (alpha *. compute) +. (beta *. network)

let allocate ?(dense = true) ?ndomains ?starts ?(policy_label = "hierarchical")
    ~snapshot ~weights ~request () =
  let models = if dense then Some (Model_cache.get snapshot ~weights) else None in
  let loads =
    match models with
    | Some m -> Model_cache.loads m
    | None -> Compute_load.of_snapshot snapshot ~weights
  in
  let usable = Compute_load.usable loads in
  if usable = [] then Error Allocation.No_usable_nodes
  else begin
    let net =
      match models with
      | Some m -> Model_cache.net m
      | None -> Network_load.of_snapshot snapshot ~weights
    in
    let pc =
      match models with
      | Some m -> Model_cache.pc m
      | None -> Effective_procs.of_snapshot snapshot ~loads
    in
    let capacity node =
      Request.capacity_of request ~effective:(Effective_procs.get pc ~node)
    in
    let all_groups = groups ~snapshot ~loads ~capacity in
    let flat_within members =
      (* Restricted snapshots are one-shot derivations; build their
         models directly rather than churning the cache slots. *)
      let restricted = { snapshot with Snapshot.live = members } in
      let loads = Compute_load.of_snapshot restricted ~weights in
      let net = Network_load.of_snapshot restricted ~weights in
      let best =
        if dense then
          Dense_alloc.best ?ndomains ?starts ~loads ~net ~capacity ~request ()
        else
          let candidates =
            Candidate.generate_all ~loads ~net ~capacity ~request
          in
          Select.best ~candidates ~loads ~net ~request
      in
      Ok
        (Allocation.make ~policy:policy_label
           ~entries:
             (List.map
                (fun (node, procs) -> { Allocation.node; procs })
                best.Select.candidate.Candidate.assignment))
    in
    match all_groups with
    | [] -> Error Allocation.No_usable_nodes
    | [ only ] -> flat_within only.members
    | _ ->
      (* One candidate group set per starting group; Eq. 4 picks. *)
      let gnl = group_nl_table net all_groups in
      let best_set =
        List.fold_left
          (fun acc start ->
            let selected = group_candidate ~gnl ~request ~all_groups start in
            let score = group_score ~gnl ~request selected in
            match acc with
            | Some (_, best) when best <= score -> acc
            | Some _ | None -> Some (selected, score))
          None all_groups
      in
      (match best_set with
      | None -> Error Allocation.No_usable_nodes
      | Some (selected, _) ->
        flat_within (List.concat_map (fun g -> g.members) selected))
  end

(** Scalable two-level variant of the allocator.

    §3.3.2 notes the flat algorithm "may need to be adapted for larger
    scale by grouping the nodes based on cluster topology and
    calculating inter-group bandwidth/latency". This module implements
    that adaptation: nodes are grouped by edge switch, Algorithms 1–2
    run over *groups* using group-mean compute loads and group-mean
    inter/intra network loads, and the flat algorithm then runs only on
    the members of the winning group set.

    Complexity drops from O(V² log V) to O(G² log G + W² log W), where
    G is the switch count and W the size of the selected group union. *)

type group = {
  switch : int;
  members : int list;  (** usable nodes on the switch *)
  capacity : int;  (** Σ per-node capacity *)
  mean_compute_load : float;
}

val groups :
  snapshot:Rm_monitor.Snapshot.t ->
  loads:Compute_load.t ->
  capacity:(int -> int) ->
  group list
(** One group per switch that has at least one usable node. *)

val group_network_load : Network_load.t -> group -> group -> float
(** Mean NL over member pairs; for a group with itself, the mean over
    its internal pairs (0 for singletons). *)

val allocate :
  ?dense:bool ->
  ?ndomains:int ->
  ?starts:Dense_alloc.starts ->
  ?policy_label:string ->
  snapshot:Rm_monitor.Snapshot.t ->
  weights:Weights.t ->
  request:Request.t ->
  unit ->
  (Allocation.t, Allocation.error) result
(** Group-level Algorithm 1+2 to choose switches, then the flat
    allocator restricted to their members. Falls back to the flat
    algorithm when the cluster has a single switch.

    [dense] (default true) routes the top-level models through
    {!Model_cache} and the flat stage through the {!Dense_alloc}
    kernels; [~dense:false] is the retained naive reference. Both paths
    return identical allocations. [ndomains] and [starts] are forwarded
    to the flat {!Dense_alloc} stage (the naive reference stays
    exhaustive). [policy_label] (default ["hierarchical"]) names the
    resulting allocation's policy — {!Policies.allocate} passes the
    requesting policy's name when it auto-routes large clusters here. *)

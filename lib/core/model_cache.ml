(* Memoized Eq. 1/Eq. 2/Eq. 3 models.

   Every Broker.decide used to rebuild Compute_load (O(V) SAW pipeline),
   Network_load (O(V²) matrix construction) and Effective_procs from
   scratch — and a broker with a wait threshold built Compute_load
   twice per decision. The cache shares one model bundle per
   (snapshot, weights) pair across Broker.mean_load_per_core,
   Policies.allocate, Hierarchical.allocate and every pending job scored
   against the same snapshot in one scheduler tick.

   Keying: a snapshot is matched physically (the same record), which
   subsumes the documented identity (time + usable set) because
   Snapshot.t's fields are immutable — deriving a snapshot with a new
   time or live set allocates a new record and therefore misses.
   Weights are compared structurally (a flat float record). The models
   are pure functions of (snapshot, weights), so hits are observably
   identical to rebuilding.

   The hit/miss counters are Atomic so concurrent readers in a
   domain-parallel sweep never tear them; the slot array itself is
   still effectively single-writer (the scheduler/broker tick), as in
   the rest of rm_core — snapshots must not be mutated in place after
   first being scored. *)

module Snapshot = Rm_monitor.Snapshot
module Telemetry = Rm_telemetry

type t = {
  snapshot : Snapshot.t;
  weights : Weights.t;
  loads : Compute_load.t Lazy.t;
  net : Network_load.t Lazy.t;
  pc : Effective_procs.t Lazy.t;
}

(* A handful of slots, replaced round-robin: a scheduler tick touches
   one or two snapshots (shared + exclusive-restricted), sweeps a few
   weight settings at most. *)
let slot_count = 8

let slots : t option array = Array.make slot_count None
let next = ref 0
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0

let m_hits = Telemetry.Metrics.counter "core.model_cache.hits"
let m_misses = Telemetry.Metrics.counter "core.model_cache.misses"

let build snapshot ~weights =
  let loads = lazy (Compute_load.of_snapshot snapshot ~weights) in
  {
    snapshot;
    weights;
    loads;
    net = lazy (Network_load.of_snapshot snapshot ~weights);
    pc = lazy (Effective_procs.of_snapshot snapshot ~loads:(Lazy.force loads));
  }

let find_slot snapshot ~weights =
  let found = ref None in
  for i = 0 to slot_count - 1 do
    match slots.(i) with
    | Some e when e.snapshot == snapshot && e.weights = weights ->
      found := Some (i, e)
    | Some _ | None -> ()
  done;
  !found

let insert e =
  slots.(!next) <- Some e;
  next := (!next + 1) mod slot_count;
  e

let get snapshot ~weights =
  match find_slot snapshot ~weights with
  | Some (_, e) ->
    Atomic.incr hit_count;
    Telemetry.Metrics.incr m_hits;
    e
  | None ->
    Atomic.incr miss_count;
    Telemetry.Metrics.incr m_misses;
    insert (build snapshot ~weights)

let get_derived snapshot ~prev ~touched ~weights =
  match find_slot snapshot ~weights with
  | Some (_, e) ->
    Atomic.incr hit_count;
    Telemetry.Metrics.incr m_hits;
    e
  | None ->
    Atomic.incr miss_count;
    Telemetry.Metrics.incr m_misses;
    let patched =
      match find_slot prev ~weights with
      | Some (i, pe) when Lazy.is_val pe.net ->
        (match
           Nl_delta.derive ~next:snapshot ~weights ~touched
             (Lazy.force pe.net)
         with
        | Some net ->
          (* derive consumed the predecessor's network model in place;
             the old bundle must not stay reachable under its own
             snapshot key with a now-wrong model. *)
          slots.(i) <- None;
          (* Compute_load and Effective_procs are pure functions of
             (live, nodes, weights) — Snapshot.usable never reads the
             clock — so a derived snapshot that shares both arrays
             physically (the monitor-tick shape: same node records, new
             network readings) can carry the predecessor's models
             forward instead of paying the O(V) SAW pipeline again. *)
          let loads, pc =
            if
              snapshot.Snapshot.nodes == prev.Snapshot.nodes
              && snapshot.Snapshot.live == prev.Snapshot.live
            then (pe.loads, pe.pc)
            else
              let loads =
                lazy (Compute_load.of_snapshot snapshot ~weights)
              in
              ( loads,
                lazy
                  (Effective_procs.of_snapshot snapshot
                     ~loads:(Lazy.force loads)) )
          in
          Some { snapshot; weights; loads; net = Lazy.from_val net; pc }
        | None -> None)
      | Some _ | None -> None
    in
    insert (match patched with Some e -> e | None -> build snapshot ~weights)

let prime_derived snapshot ~prev ~weights =
  match find_slot snapshot ~weights with
  | Some _ -> ()
  | None when snapshot == prev -> ()
  | None ->
    (match find_slot prev ~weights with
    | Some (_, pe) when Lazy.is_val pe.net ->
      (match Nl_delta.touched_of ~prev:(Lazy.force pe.net) ~next:snapshot with
      | Some touched -> ignore (get_derived snapshot ~prev ~touched ~weights)
      | None -> ())
    | Some _ | None -> ())

let loads t = Lazy.force t.loads
let net t = Lazy.force t.net
let pc t = Lazy.force t.pc

let hits () = Atomic.get hit_count
let misses () = Atomic.get miss_count

let clear () =
  Array.fill slots 0 slot_count None;
  next := 0

(* Memoized Eq. 1/Eq. 2/Eq. 3 models.

   Every Broker.decide used to rebuild Compute_load (O(V) SAW pipeline),
   Network_load (O(V²) matrix construction) and Effective_procs from
   scratch — and a broker with a wait threshold built Compute_load
   twice per decision. The cache shares one model bundle per
   (snapshot, weights) pair across Broker.mean_load_per_core,
   Policies.allocate, Hierarchical.allocate and every pending job scored
   against the same snapshot in one scheduler tick.

   Keying: a snapshot is matched physically (the same record), which
   subsumes the documented identity (time + usable set) because
   Snapshot.t's fields are immutable — deriving a snapshot with a new
   time or live set allocates a new record and therefore misses.
   Weights are compared structurally (a flat float record). The models
   are pure functions of (snapshot, weights), so hits are observably
   identical to rebuilding.

   Like the rest of rm_core, the cache assumes a single domain and that
   snapshots are not mutated in place after first being scored. *)

module Snapshot = Rm_monitor.Snapshot
module Telemetry = Rm_telemetry

type t = {
  snapshot : Snapshot.t;
  weights : Weights.t;
  loads : Compute_load.t Lazy.t;
  net : Network_load.t Lazy.t;
  pc : Effective_procs.t Lazy.t;
}

(* A handful of slots, replaced round-robin: a scheduler tick touches
   one or two snapshots (shared + exclusive-restricted), sweeps a few
   weight settings at most. *)
let slot_count = 8

let slots : t option array = Array.make slot_count None
let next = ref 0
let hit_count = ref 0
let miss_count = ref 0

let m_hits = Telemetry.Metrics.counter "core.model_cache.hits"
let m_misses = Telemetry.Metrics.counter "core.model_cache.misses"

let build snapshot ~weights =
  let loads = lazy (Compute_load.of_snapshot snapshot ~weights) in
  {
    snapshot;
    weights;
    loads;
    net = lazy (Network_load.of_snapshot snapshot ~weights);
    pc = lazy (Effective_procs.of_snapshot snapshot ~loads:(Lazy.force loads));
  }

let get snapshot ~weights =
  let found = ref None in
  for i = 0 to slot_count - 1 do
    match slots.(i) with
    | Some e when e.snapshot == snapshot && e.weights = weights ->
      found := Some e
    | Some _ | None -> ()
  done;
  match !found with
  | Some e ->
    incr hit_count;
    Telemetry.Metrics.incr m_hits;
    e
  | None ->
    incr miss_count;
    Telemetry.Metrics.incr m_misses;
    let e = build snapshot ~weights in
    slots.(!next) <- Some e;
    next := (!next + 1) mod slot_count;
    e

let loads t = Lazy.force t.loads
let net t = Lazy.force t.net
let pc t = Lazy.force t.pc

let hits () = !hit_count
let misses () = !miss_count

let clear () =
  Array.fill slots 0 slot_count None;
  next := 0

(** Memoized allocation models — one Eq. 1/Eq. 2/Eq. 3 bundle per
    (snapshot, weights) pair.

    [get] returns a cached bundle when called again with the {e same}
    snapshot record and equal weights; the broker's wait check, every
    policy and all jobs scored against one snapshot in a scheduler tick
    then share a single model build instead of each reconstructing the
    O(V²) matrices. Deriving a snapshot with a different time or live
    set yields a new record and therefore a cache miss, so staleness
    can never leak across monitor updates. Models build lazily: a
    policy that never reads Network_load never pays for it. *)

type t

val get : Rm_monitor.Snapshot.t -> weights:Weights.t -> t
(** Cached bundle for this exact snapshot record (a few most recent
    pairs are retained). The models are pure in (snapshot, weights), so
    a hit is observably identical to rebuilding. *)

val loads : t -> Compute_load.t
val net : t -> Network_load.t
val pc : t -> Effective_procs.t

val hits : unit -> int
(** Process-wide hit counter (monotone; compare deltas in tests). *)

val misses : unit -> int

val clear : unit -> unit
(** Drop all cached bundles — used by benchmarks to control warmth and
    release the snapshots the slots keep alive. *)

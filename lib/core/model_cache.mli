(** Memoized allocation models — one Eq. 1/Eq. 2/Eq. 3 bundle per
    (snapshot, weights) pair.

    [get] returns a cached bundle when called again with the {e same}
    snapshot record and equal weights; the broker's wait check, every
    policy and all jobs scored against one snapshot in a scheduler tick
    then share a single model build instead of each reconstructing the
    O(V²) matrices. Deriving a snapshot with a different time or live
    set yields a new record and therefore a cache miss, so staleness
    can never leak across monitor updates. Models build lazily: a
    policy that never reads Network_load never pays for it. *)

type t

val get : Rm_monitor.Snapshot.t -> weights:Weights.t -> t
(** Cached bundle for this exact snapshot record (a few most recent
    pairs are retained). The models are pure in (snapshot, weights), so
    a hit is observably identical to rebuilding. *)

val get_derived :
  Rm_monitor.Snapshot.t ->
  prev:Rm_monitor.Snapshot.t ->
  touched:int list ->
  weights:Weights.t ->
  t
(** Like [get], but on a miss tries to patch the cached bundle for
    [prev] (same weights, forced network model) via {!Nl_delta.derive}
    with the given touched node ids — O(touched·V) instead of the
    O(V²) rebuild — before falling back to a full build. On a
    successful patch the predecessor's slot is evicted (its network
    model was consumed in place) and the new bundle carries the
    patched model plus compute-load/procs for [snapshot] — the
    predecessor's own models when [snapshot] shares its [nodes] and
    [live] arrays physically (they are pure functions of those plus
    weights, so the reuse is exact), fresh lazies otherwise.
    Counted as a miss either way; a hit behaves exactly like [get]. *)

val prime_derived :
  Rm_monitor.Snapshot.t -> prev:Rm_monitor.Snapshot.t -> weights:Weights.t -> unit
(** Opportunistic warm-up for a monitor tick: when [snapshot] is not
    yet cached but [prev]'s bundle is (with its network model already
    forced), diff the readings ({!Nl_delta.touched_of}) and patch
    forward. A no-op when [snapshot == prev], the usable set changed,
    or there is nothing to patch from — never slower than the rebuild
    the next [get] would do anyway. *)

val loads : t -> Compute_load.t
val net : t -> Network_load.t
val pc : t -> Effective_procs.t

val hits : unit -> int
(** Process-wide hit counter (monotone; compare deltas in tests).
    Atomic: safe to read/bump across domains. *)

val misses : unit -> int

val clear : unit -> unit
(** Drop all cached bundles — used by benchmarks to control warmth and
    release the snapshots the slots keep alive. *)

module Snapshot = Rm_monitor.Snapshot
module Matrix = Rm_stats.Matrix

type t = {
  usable : int list;
  index : (int, int) Hashtbl.t;  (** node id -> dense index *)
  nl : Matrix.t;  (** dense, over usable nodes *)
  lat : Matrix.t;
  bw_comp : Matrix.t;
}

let of_snapshot snapshot ~weights =
  Weights.validate weights;
  let usable = Snapshot.usable snapshot in
  let k = List.length usable in
  let index = Hashtbl.create k in
  List.iteri (fun i node -> Hashtbl.replace index node i) usable;
  let ids = Array.of_list usable in
  let lat = Matrix.square (max k 1) ~init:0.0 in
  let bw_comp = Matrix.square (max k 1) ~init:0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then begin
        let u = ids.(i) and v = ids.(j) in
        Matrix.set lat i j (Matrix.get snapshot.Snapshot.lat_us u v);
        let peak = Matrix.get snapshot.Snapshot.peak_bw_mb_s u v in
        let avail = Matrix.get snapshot.Snapshot.bw_mb_s u v in
        (* Available bandwidth can exceed nominal peak under measurement
           noise; the complement is clamped at 0 (no negative load). *)
        let comp =
          if Float.is_finite peak then Float.max 0.0 (peak -. Float.min peak avail)
          else 0.0
        in
        Matrix.set bw_comp i j comp
      end
    done
  done;
  (* Normalize by the sum over all (ordered) pairs; symmetric matrices
     make this equivalent to the unordered-pair sum up to a factor that
     cancels in rankings. *)
  let sum m =
    let acc = ref 0.0 in
    Matrix.iteri m ~f:(fun ~row ~col v -> if row <> col then acc := !acc +. v);
    !acc
  in
  let lat_sum = sum lat and bw_sum = sum bw_comp in
  (* Scale commensurability: sum-normalizing CL over V nodes makes a CL
     entry ~1/V, while sum-normalizing NL over V(V-1) pairs makes an NL
     entry ~1/V². Algorithm 1's addition cost α·CL(u) + β·NL(v,u) mixes
     one entry of each, so without rescaling the network term would be
     V times too weak and the allocator degenerates to load-aware —
     contradicting the paper's observed network-dominant selection at
     β = 0.7. We rescale NL by V so both terms live on the same 1/V
     scale. (Algorithm 2 re-normalizes per candidate set, so this factor
     is harmless there.) *)
  let scale = float_of_int (max 1 k) in
  let nl = Matrix.square (max k 1) ~init:0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then begin
        let lt = if lat_sum > 0.0 then Matrix.get lat i j /. lat_sum else 0.0 in
        let bw = if bw_sum > 0.0 then Matrix.get bw_comp i j /. bw_sum else 0.0 in
        Matrix.set nl i j
          (scale *. ((weights.Weights.w_lt *. lt) +. (weights.Weights.w_bw *. bw)))
      end
    done
  done;
  { usable; index; nl; lat; bw_comp }

let dense t node =
  match Hashtbl.find_opt t.index node with
  | Some i -> i
  | None -> invalid_arg "Network_load: node not usable"

let dense_index t ~node = dense t node
let nl_matrix t = t.nl

let get t ~u ~v = if u = v then 0.0 else Matrix.get t.nl (dense t u) (dense t v)

let latency_us t ~u ~v =
  if u = v then 0.0 else Matrix.get t.lat (dense t u) (dense t v)

let bw_complement_mb_s t ~u ~v =
  if u = v then 0.0 else Matrix.get t.bw_comp (dense t u) (dense t v)

let fold_pairs t ~nodes ~f ~init =
  let rec outer acc = function
    | [] -> acc
    | u :: rest ->
      let acc = List.fold_left (fun acc v -> f acc u v) acc rest in
      outer acc rest
  in
  ignore t;
  outer init nodes

let total_edges t ~nodes =
  fold_pairs t ~nodes ~init:0.0 ~f:(fun acc u v -> acc +. get t ~u ~v)

let mean_edges t ~nodes =
  let k = List.length nodes in
  if k < 2 then 0.0
  else total_edges t ~nodes /. float_of_int (k * (k - 1) / 2)

let usable t = t.usable

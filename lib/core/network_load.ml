module Snapshot = Rm_monitor.Snapshot
module Matrix = Rm_stats.Matrix

type t = {
  usable : int list;
  ids : int array;  (** dense index -> node id *)
  index : (int, int) Hashtbl.t;  (** node id -> dense index *)
  weights : Weights.t;
  lat : Matrix.t;  (** raw latencies over dense indices *)
  bw_comp : Matrix.t;  (** raw bandwidth complements over dense indices *)
  row_lat : float array;  (** per-row off-diagonal sums of [lat] *)
  row_bw : float array;  (** per-row off-diagonal sums of [bw_comp] *)
  mutable lat_sum : float;
  mutable bw_sum : float;
  scale : float;
  mutable nl : Matrix.t option;  (** materialized NL, built on demand *)
  mutable touched_rows : int;
      (** rows patched in place since the last exact renormalization *)
  mutable block_cache : (int array * int * float array) option;
}

let bw_complement_of ~peak ~avail =
  (* Available bandwidth can exceed nominal peak under measurement
     noise; the complement is clamped at 0 (no negative load). *)
  if Float.is_finite peak then Float.max 0.0 (peak -. Float.min peak avail)
  else 0.0

(* Row sums are the unit of incremental maintenance: [apply_delta]
   recomputes them exactly for patched rows and adjusts the rest, and
   the normalization totals are always a fold over the row-sum arrays.
   Both the full build and the patch path go through these two
   functions, which is what makes them bit-identical after an exact
   renormalization. *)
let recompute_row_sums t =
  let k = Array.length t.ids in
  for i = 0 to k - 1 do
    let sl = ref 0.0 and sb = ref 0.0 in
    for j = 0 to k - 1 do
      if j <> i then begin
        sl := !sl +. Matrix.get t.lat i j;
        sb := !sb +. Matrix.get t.bw_comp i j
      end
    done;
    t.row_lat.(i) <- !sl;
    t.row_bw.(i) <- !sb
  done

let refresh_totals t =
  t.lat_sum <- Array.fold_left ( +. ) 0.0 t.row_lat;
  t.bw_sum <- Array.fold_left ( +. ) 0.0 t.row_bw

let of_snapshot snapshot ~weights =
  Weights.validate weights;
  let usable = Snapshot.usable snapshot in
  let k = List.length usable in
  let index = Hashtbl.create (max k 1) in
  List.iteri (fun i node -> Hashtbl.replace index node i) usable;
  let ids = Array.of_list usable in
  let lat = Matrix.square (max k 1) ~init:0.0 in
  let bw_comp = Matrix.square (max k 1) ~init:0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then begin
        let u = ids.(i) and v = ids.(j) in
        Matrix.set lat i j (Matrix.get snapshot.Snapshot.lat_us u v);
        let peak = Matrix.get snapshot.Snapshot.peak_bw_mb_s u v in
        let avail = Matrix.get snapshot.Snapshot.bw_mb_s u v in
        Matrix.set bw_comp i j (bw_complement_of ~peak ~avail)
      end
    done
  done;
  (* Scale commensurability: sum-normalizing CL over V nodes makes a CL
     entry ~1/V, while sum-normalizing NL over V(V-1) pairs makes an NL
     entry ~1/V². Algorithm 1's addition cost α·CL(u) + β·NL(v,u) mixes
     one entry of each, so without rescaling the network term would be
     V times too weak and the allocator degenerates to load-aware —
     contradicting the paper's observed network-dominant selection at
     β = 0.7. We rescale NL by V so both terms live on the same 1/V
     scale. (Algorithm 2 re-normalizes per candidate set, so this factor
     is harmless there.) *)
  let scale = float_of_int (max 1 k) in
  let t =
    { usable; ids; index; weights; lat; bw_comp;
      row_lat = Array.make (max k 1) 0.0; row_bw = Array.make (max k 1) 0.0;
      lat_sum = 0.0; bw_sum = 0.0; scale; nl = None; touched_rows = 0;
      block_cache = None }
  in
  recompute_row_sums t;
  refresh_totals t;
  t

let dense t node =
  match Hashtbl.find_opt t.index node with
  | Some i -> i
  | None -> invalid_arg "Network_load: node not usable"

let dense_index t ~node = dense t node

(* The NL entry in factored form. [nl_matrix] materializes exactly this
   expression, and [raw_get] below repeats it verbatim over captured
   fields, so all three read paths are bit-equal. *)
let entry t i j =
  if i = j then 0.0
  else begin
    let lt = if t.lat_sum > 0.0 then Matrix.get t.lat i j /. t.lat_sum else 0.0 in
    let bw =
      if t.bw_sum > 0.0 then Matrix.get t.bw_comp i j /. t.bw_sum else 0.0
    in
    t.scale
    *. ((t.weights.Weights.w_lt *. lt) +. (t.weights.Weights.w_bw *. bw))
  end

let nl_matrix t =
  match t.nl with
  | Some m -> m
  | None ->
    let k = Array.length t.ids in
    let m = Matrix.square (max k 1) ~init:0.0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if i <> j then Matrix.set m i j (entry t i j)
      done
    done;
    t.nl <- Some m;
    m

let nl_cached t = t.nl

type raw = {
  r_lat : Matrix.t;
  r_bw_comp : Matrix.t;
  r_lat_sum : float;
  r_bw_sum : float;
  r_scale : float;
  r_w_lt : float;
  r_w_bw : float;
}

let raw t =
  { r_lat = t.lat; r_bw_comp = t.bw_comp; r_lat_sum = t.lat_sum;
    r_bw_sum = t.bw_sum; r_scale = t.scale;
    r_w_lt = t.weights.Weights.w_lt; r_w_bw = t.weights.Weights.w_bw }

let raw_get r i j =
  if i = j then 0.0
  else begin
    let lt =
      if r.r_lat_sum > 0.0 then Matrix.get r.r_lat i j /. r.r_lat_sum else 0.0
    in
    let bw =
      if r.r_bw_sum > 0.0 then Matrix.get r.r_bw_comp i j /. r.r_bw_sum
      else 0.0
    in
    r.r_scale *. ((r.r_w_lt *. lt) +. (r.r_w_bw *. bw))
  end

let weights t = t.weights

let dense_degrees t =
  let k = Array.length t.ids in
  Array.init k (fun i ->
      if k <= 1 then 0.0
      else begin
        let lt = if t.lat_sum > 0.0 then t.row_lat.(i) /. t.lat_sum else 0.0 in
        let bw = if t.bw_sum > 0.0 then t.row_bw.(i) /. t.bw_sum else 0.0 in
        t.scale
        *. ((t.weights.Weights.w_lt *. lt) +. (t.weights.Weights.w_bw *. bw))
        /. float_of_int (k - 1)
      end)

let get t ~u ~v = if u = v then 0.0 else entry t (dense t u) (dense t v)

let latency_us t ~u ~v =
  if u = v then 0.0 else Matrix.get t.lat (dense t u) (dense t v)

let bw_complement_mb_s t ~u ~v =
  if u = v then 0.0 else Matrix.get t.bw_comp (dense t u) (dense t v)

let fold_pairs t ~nodes ~f ~init =
  let rec outer acc = function
    | [] -> acc
    | u :: rest ->
      let acc = List.fold_left (fun acc v -> f acc u v) acc rest in
      outer acc rest
  in
  ignore t;
  outer init nodes

let total_edges t ~nodes =
  fold_pairs t ~nodes ~init:0.0 ~f:(fun acc u v -> acc +. get t ~u ~v)

let mean_edges t ~nodes =
  let k = List.length nodes in
  if k < 2 then 0.0
  else total_edges t ~nodes /. float_of_int (k * (k - 1) / 2)

let usable t = t.usable

let block_mean_table t ~block_of_dense ~nblocks =
  let cached =
    match t.block_cache with
    | Some (b, n, means) when n = nblocks && b = block_of_dense -> Some means
    | _ -> None
  in
  match cached with
  | Some means -> means
  | None ->
    let k = Array.length t.ids in
    if Array.length block_of_dense < k then
      invalid_arg "Network_load.block_mean_table: block map too small";
    let g = nblocks in
    let sums = Array.make (g * g) 0.0 in
    let counts = Array.make (g * g) 0 in
    for i = 0 to k - 1 do
      let ba = block_of_dense.(i) in
      if ba >= 0 then
        for j = i + 1 to k - 1 do
          let bb = block_of_dense.(j) in
          if bb >= 0 then begin
            let cell = (min ba bb * g) + max ba bb in
            sums.(cell) <- sums.(cell) +. entry t i j;
            counts.(cell) <- counts.(cell) + 1
          end
        done
    done;
    let means =
      Array.init (g * g) (fun c ->
          if counts.(c) = 0 then 0.0 else sums.(c) /. float_of_int counts.(c))
    in
    t.block_cache <- Some (Array.copy block_of_dense, nblocks, means);
    means

let apply_delta t ~next ~touched_dense ~renorm_threshold =
  let k = Array.length t.ids in
  let touched = Array.make (max k 1) false in
  let n_touched = ref 0 in
  List.iter
    (fun i ->
      if i < 0 || i >= k then
        invalid_arg "Network_load.apply_delta: dense index out of range";
      if not touched.(i) then begin
        touched.(i) <- true;
        incr n_touched
      end)
    touched_dense;
  if !n_touched = 0 then false
  else begin
    let tl = Array.make !n_touched 0 in
    let p = ref 0 in
    for i = 0 to k - 1 do
      if touched.(i) then begin
        tl.(!p) <- i;
        incr p
      end
    done;
    (* Untouched rows change only in the touched columns: read each old
       value before overwriting it and fold the difference into the row
       sum. This is the only place incremental float drift can enter;
       the renormalization below bounds it. *)
    for j = 0 to k - 1 do
      if not touched.(j) then begin
        let dl = ref 0.0 and db = ref 0.0 in
        Array.iter
          (fun i ->
            let u = t.ids.(j) and v = t.ids.(i) in
            let l = Matrix.get next.Snapshot.lat_us u v in
            let peak = Matrix.get next.Snapshot.peak_bw_mb_s u v in
            let avail = Matrix.get next.Snapshot.bw_mb_s u v in
            let b = bw_complement_of ~peak ~avail in
            dl := !dl +. (l -. Matrix.get t.lat j i);
            db := !db +. (b -. Matrix.get t.bw_comp j i);
            Matrix.set t.lat j i l;
            Matrix.set t.bw_comp j i b)
          tl;
        t.row_lat.(j) <- t.row_lat.(j) +. !dl;
        t.row_bw.(j) <- t.row_bw.(j) +. !db
      end
    done;
    (* Touched rows are rewritten wholesale and their sums recomputed
       exactly, in the same order [recompute_row_sums] uses. *)
    Array.iter
      (fun i ->
        let u = t.ids.(i) in
        let sl = ref 0.0 and sb = ref 0.0 in
        for j = 0 to k - 1 do
          if j <> i then begin
            let v = t.ids.(j) in
            let l = Matrix.get next.Snapshot.lat_us u v in
            let peak = Matrix.get next.Snapshot.peak_bw_mb_s u v in
            let avail = Matrix.get next.Snapshot.bw_mb_s u v in
            let b = bw_complement_of ~peak ~avail in
            Matrix.set t.lat i j l;
            Matrix.set t.bw_comp i j b;
            sl := !sl +. l;
            sb := !sb +. b
          end
        done;
        t.row_lat.(i) <- sl.contents;
        t.row_bw.(i) <- sb.contents)
      tl;
    t.touched_rows <- t.touched_rows + !n_touched;
    let renormed =
      float_of_int t.touched_rows > renorm_threshold *. float_of_int (max 1 k)
    in
    if renormed then begin
      recompute_row_sums t;
      t.touched_rows <- 0
    end;
    refresh_totals t;
    t.nl <- None;
    t.block_cache <- None;
    renormed
  end

(* A changed node reading shows up as a whole changed row AND column
   (monitor updates are symmetric), so "every row that differs
   anywhere" would be the full vertex set — useless as a touched set,
   since Nl_delta invalidates past V/2 rows. What apply_delta actually
   needs is a set of rows covering every differing entry (touched rows
   are rewritten, their symmetric columns patched into the rest):
   a vertex cover of the diff graph. Greedy max-degree is exact for
   the union-of-stars structure real deltas have and recovers the
   changed nodes themselves. O(V² + |cover|·V). *)
let changed_rows t ~next =
  let k = Array.length t.ids in
  let diff i j =
    let u = t.ids.(i) and v = t.ids.(j) in
    let l = Matrix.get next.Snapshot.lat_us u v in
    let peak = Matrix.get next.Snapshot.peak_bw_mb_s u v in
    let avail = Matrix.get next.Snapshot.bw_mb_s u v in
    let b = bw_complement_of ~peak ~avail in
    (not (Float.equal (Matrix.get t.lat i j) l))
    || not (Float.equal (Matrix.get t.bw_comp i j) b)
  in
  (* d.(i) = differing entries of row i not yet covered by a column in
     the cover; maintained with one O(V) column re-diff per pick. *)
  let d = Array.make k 0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if j <> i && diff i j then d.(i) <- d.(i) + 1
    done
  done;
  let in_cover = Array.make k false in
  let out = ref [] in
  let rec loop () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if (not in_cover.(i)) && d.(i) > 0 && (!best < 0 || d.(i) > d.(!best))
      then best := i
    done;
    if !best >= 0 then begin
      let x = !best in
      in_cover.(x) <- true;
      out := x :: !out;
      for i = 0 to k - 1 do
        if (not in_cover.(i)) && d.(i) > 0 && diff i x then d.(i) <- d.(i) - 1
      done;
      d.(x) <- 0;
      loop ()
    end
  in
  loop ();
  List.sort compare !out

(** Network load NL_(u,v) — Eq. 2.

    NL = w_lt · LT' + w_bw · BW‾', where LT is measured P2P latency, BW‾
    is the complement of available bandwidth (peak − available, §3.2.2)
    and both are normalized by their sum over all usable pairs, exactly
    as the compute-load attributes are. Lower is better.

    One deliberate deviation, documented in DESIGN.md: after sum-
    normalization an NL entry is ~V× smaller than a CL entry (V² pairs
    vs V nodes), which would make Algorithm 1's addition cost
    effectively network-blind; NL is therefore rescaled by the usable
    node count so α/β weight commensurate quantities.

    The model is stored in factored form — raw latency / bandwidth-
    complement matrices plus per-row sums and normalization totals — so
    reads never require the O(V²) NL matrix to exist. [nl_matrix]
    materializes it on demand (and caches it); [raw]/[raw_get] read the
    same values without materializing, bit-equal to materialized
    entries. [apply_delta] patches the factored form in place when only
    a few monitor rows changed ({!Nl_delta} is the validating
    front-end). *)

type t

val of_snapshot : Rm_monitor.Snapshot.t -> weights:Weights.t -> t

val get : t -> u:int -> v:int -> float
(** Symmetric; 0 when [u = v]. Raises [Invalid_argument] when either
    node is not usable. Reads the factored form — never materializes
    the NL matrix. *)

val total_edges : t -> nodes:int list -> float
(** Σ NL over all unordered pairs inside the node set — the N_{G_v}
    term of Algorithm 2 (the candidate sub-graph is fully connected). *)

val mean_edges : t -> nodes:int list -> float
(** Average NL over unordered pairs — "we take the average of network
    load between all pairs of nodes to compute the network load of a
    group" (§3.2.2). 0 for singleton sets. *)

val usable : t -> int list

val weights : t -> Weights.t
(** The structural weights this model was built with. *)

(** {2 Dense views} — for the allocator fast path ({!Dense_alloc}).
    Dense index [i] is the [i]-th usable node in ascending-id order,
    matching [Compute_load.dense_ids] for the same snapshot. *)

val dense_index : t -> node:int -> int
(** Raises [Invalid_argument] when the node is not usable. *)

val nl_matrix : t -> Rm_stats.Matrix.t
(** The NL matrix over dense indices (0 on the diagonal), materialized
    on first call and cached until the next [apply_delta]. Read-only:
    callers must never mutate it in place, even though [Matrix.set]
    and friends are public. {!Dense_alloc} memoizes its non-finite
    validation per physical matrix on the strength of this invariant
    — an in-place write would silently bypass the NaN check (and the
    model cache shares one matrix across every caller scoring the same
    snapshot). *)

val nl_cached : t -> Rm_stats.Matrix.t option
(** The materialized NL matrix if a caller already paid for it,
    without forcing materialization. *)

type raw = private {
  r_lat : Rm_stats.Matrix.t;
  r_bw_comp : Rm_stats.Matrix.t;
  r_lat_sum : float;
  r_bw_sum : float;
  r_scale : float;
  r_w_lt : float;
  r_w_bw : float;
}
(** Factored-form read handle: the normalization state captured at
    [raw] time. Valid until the next [apply_delta] on the source model
    (the matrices are shared, not copied). *)

val raw : t -> raw

val raw_get : raw -> int -> int -> float
(** [raw_get r i j] over dense indices — bit-equal to
    [Matrix.get (nl_matrix t) i j] for the same model state. *)

val dense_degrees : t -> float array
(** Per-dense-index mean NL to every other usable node, computed from
    the factored row sums in O(V). Used to rank candidate start nodes
    cheaply ({!Dense_alloc} pruned starts). *)

val block_mean_table :
  t -> block_of_dense:int array -> nblocks:int -> float array
(** [block_mean_table t ~block_of_dense ~nblocks] groups dense indices
    into blocks ([block_of_dense.(i) = -1] excludes index [i]) and
    returns a [nblocks × nblocks] row-major table whose cell
    [(min a b) * nblocks + max a b] is the mean NL over unordered
    dense pairs spanning blocks [a] and [b] (diagonal cells: pairs
    within a block; cells with no pairs are 0). One O(V²) factored
    pass, cached per model instance until the block map, [nblocks], or
    the underlying model changes. Cells with [a > b] are unspecified. *)

(** {2 Incremental maintenance} — used via {!Nl_delta}. *)

val apply_delta :
  t ->
  next:Rm_monitor.Snapshot.t ->
  touched_dense:int list ->
  renorm_threshold:float ->
  bool
(** Patch the model in place so it describes [next], assuming the
    usable-node set is unchanged and only the given dense rows (and
    their symmetric columns) differ — {!Nl_delta.derive} validates
    both. Touched rows are rewritten and their sums recomputed
    exactly; untouched row sums are adjusted incrementally (± the
    entry deltas). When the rows touched since the last exact pass
    exceed [renorm_threshold × V], every row sum is recomputed exactly
    — at that point the model is bit-identical to
    [of_snapshot next ~weights]; between renormalizations the
    incremental adjustments can drift by a few ulps (≲1e-9 relative).
    [renorm_threshold = 0.0] renormalizes on every call. Invalidates
    any materialized NL matrix, outstanding [raw] handles, and the
    block-mean cache. Returns whether a renormalization ran. *)

val changed_rows : t -> next:Rm_monitor.Snapshot.t -> int list
(** A small set of dense row indices (ascending) covering every raw
    latency / bandwidth-complement entry that differs between the model
    and [next], assuming the same usable set — i.e. the nodes whose
    readings changed, not every row brushed by their symmetric columns
    (greedy vertex cover of the diff graph; exact for the
    union-of-stars structure real monitor deltas have). O(V²) plus
    O(V) per covered row. *)

(** {2 Raw terms (for Table 4 and diagnostics)} *)

val latency_us : t -> u:int -> v:int -> float
val bw_complement_mb_s : t -> u:int -> v:int -> float

(** Network load NL_(u,v) — Eq. 2.

    NL = w_lt · LT' + w_bw · BW‾', where LT is measured P2P latency, BW‾
    is the complement of available bandwidth (peak − available, §3.2.2)
    and both are normalized by their sum over all usable pairs, exactly
    as the compute-load attributes are. Lower is better.

    One deliberate deviation, documented in DESIGN.md: after sum-
    normalization an NL entry is ~V× smaller than a CL entry (V² pairs
    vs V nodes), which would make Algorithm 1's addition cost
    effectively network-blind; NL is therefore rescaled by the usable
    node count so α/β weight commensurate quantities. *)

type t

val of_snapshot : Rm_monitor.Snapshot.t -> weights:Weights.t -> t

val get : t -> u:int -> v:int -> float
(** Symmetric; 0 when [u = v]. Raises [Invalid_argument] when either
    node is not usable. *)

val total_edges : t -> nodes:int list -> float
(** Σ NL over all unordered pairs inside the node set — the N_{G_v}
    term of Algorithm 2 (the candidate sub-graph is fully connected). *)

val mean_edges : t -> nodes:int list -> float
(** Average NL over unordered pairs — "we take the average of network
    load between all pairs of nodes to compute the network load of a
    group" (§3.2.2). 0 for singleton sets. *)

val usable : t -> int list

(** {2 Dense views} — for the allocator fast path ({!Dense_alloc}).
    Dense index [i] is the [i]-th usable node in ascending-id order,
    matching [Compute_load.dense_ids] for the same snapshot. *)

val dense_index : t -> node:int -> int
(** Raises [Invalid_argument] when the node is not usable. *)

val nl_matrix : t -> Rm_stats.Matrix.t
(** The NL matrix over dense indices (0 on the diagonal). Read-only:
    callers must never mutate it in place, even though [Matrix.set]
    and friends are public. {!Dense_alloc} memoizes its non-finite
    validation per physical matrix on the strength of this invariant
    — an in-place write would silently bypass the NaN check (and the
    model cache shares one matrix across every caller scoring the same
    snapshot). *)

(** {2 Raw terms (for Table 4 and diagnostics)} *)

val latency_us : t -> u:int -> v:int -> float
val bw_complement_mb_s : t -> u:int -> v:int -> float

(* Incremental NL maintenance — the validating front-end over
   Network_load.apply_delta.

   A monitor tick usually changes a handful of node readings, but the
   NL model is O(V²) to rebuild. When a new snapshot derives from a
   model we already hold and the usable set is unchanged, patching the
   touched rows (and their symmetric columns) in place is O(t·V)
   instead. This module owns the safety checks: weights must match,
   node up/down transitions must invalidate rather than patch, and a
   patch that would touch more than half the rows falls back to a full
   rebuild (the rebuild is cheaper and drift-free).

   derive CONSUMES its [prev] model: on success the returned model is
   the same mutated record, so the caller must drop every other
   reference to it (Model_cache.get_derived evicts the source slot for
   exactly this reason). *)

module Snapshot = Rm_monitor.Snapshot
module Telemetry = Rm_telemetry

let m_applied = Telemetry.Metrics.counter "core.nl.delta_applied"
let m_invalidated = Telemetry.Metrics.counter "core.nl.delta_invalidated"
let m_renormalized = Telemetry.Metrics.counter "core.nl.delta_renormalized"
let m_rows = Telemetry.Metrics.counter "core.nl.delta_rows"

let default_renorm_threshold = 0.25

let touched_of ~prev ~next =
  if Network_load.usable prev <> Snapshot.usable next then None
  else begin
    let ids = Array.of_list (Network_load.usable prev) in
    Some (List.map (fun i -> ids.(i)) (Network_load.changed_rows prev ~next))
  end

let derive ?(renorm_threshold = default_renorm_threshold) ~next ~weights
    ~touched prev =
  if
    Network_load.weights prev <> weights
    || Network_load.usable prev <> Snapshot.usable next
  then begin
    Telemetry.Metrics.incr m_invalidated;
    None
  end
  else begin
    let k = List.length (Network_load.usable prev) in
    let touched_dense =
      List.filter_map
        (fun node ->
          match Network_load.dense_index prev ~node with
          | i -> Some i
          | exception Invalid_argument _ -> None)
        touched
      |> List.sort_uniq compare
    in
    let nt = List.length touched_dense in
    if nt = 0 then Some prev
    else if 2 * nt > k then begin
      (* Patching rewrites touched rows and scans every untouched row
         once per touched column; past half the rows a full rebuild
         does strictly less work and resets drift. *)
      Telemetry.Metrics.incr m_invalidated;
      None
    end
    else begin
      let renormed =
        Network_load.apply_delta prev ~next ~touched_dense ~renorm_threshold
      in
      Telemetry.Metrics.incr m_applied;
      Telemetry.Metrics.add m_rows (float_of_int nt);
      if renormed then Telemetry.Metrics.incr m_renormalized;
      Some prev
    end
  end

(** Incremental NL-model maintenance.

    When a snapshot derives from a cached predecessor with the same
    usable-node set, [derive] patches the predecessor's
    {!Network_load.t} in place — O(touched·V) instead of the O(V²)
    rebuild — and validates everything that must force a rebuild
    instead: weight changes, node up/down transitions (membership
    change), and deltas so wide a rebuild is cheaper.

    Counters (see docs/OBSERVABILITY.md): [core.nl.delta_applied],
    [core.nl.delta_invalidated], [core.nl.delta_renormalized],
    [core.nl.delta_rows]. *)

val default_renorm_threshold : float
(** 0.25 — fraction of rows patched since the last exact pass above
    which {!Network_load.apply_delta} renormalizes every row sum
    exactly (restoring bit-identity with a from-scratch build). *)

val derive :
  ?renorm_threshold:float ->
  next:Rm_monitor.Snapshot.t ->
  weights:Weights.t ->
  touched:int list ->
  Network_load.t ->
  Network_load.t option
(** [derive ~next ~weights ~touched prev] patches [prev] so it
    describes [next], given that only the nodes in [touched] (node
    ids; non-usable ids are ignored, duplicates deduped) changed their
    latency/bandwidth readings. Returns [None] — rebuild from scratch
    — when [weights] differ from [prev]'s, the usable sets differ
    (node up/down must invalidate, never patch), or more than half the
    rows are touched. An empty effective delta returns [prev]
    untouched.

    On success the result IS [prev], mutated in place: the caller must
    treat [prev] as consumed and drop any other handle to it
    (materialized NL matrices and {!Network_load.raw} handles from
    before the call are stale). *)

val touched_of :
  prev:Network_load.t -> next:Rm_monitor.Snapshot.t -> int list option
(** Node ids whose readings differ between the model and [next]
    ({!Network_load.changed_rows} — a cover of the differing entries,
    not every row their symmetric columns brush), or [None] when the
    usable sets differ (membership change). O(V²). *)

module Snapshot = Rm_monitor.Snapshot
module Rng = Rm_stats.Rng
module Telemetry = Rm_telemetry

type policy =
  | Random
  | Sequential
  | Load_aware
  | Network_load_aware
  | Hierarchical

let name = function
  | Random -> "random"
  | Sequential -> "sequential"
  | Load_aware -> "load-aware"
  | Network_load_aware -> "network-load-aware"
  | Hierarchical -> "hierarchical"

let all = [ Random; Sequential; Load_aware; Network_load_aware ]

let of_name = function
  | "random" -> Some Random
  | "sequential" -> Some Sequential
  | "load-aware" -> Some Load_aware
  | "network-load-aware" -> Some Network_load_aware
  | "hierarchical" -> Some Hierarchical
  | _ -> None

type engine = Auto | Flat | Grouped

(* Above this many usable nodes, [Auto] routes Network_load_aware
   through the two-level Hierarchical.allocate: the flat sweep's
   O(V²) work per decision stops being interactive around a few
   thousand nodes even pruned, while the grouped path stays O(G²) at
   the top level. Overridable for tests/operators via the setter or
   RM_ALLOC_HIER_THRESHOLD. *)
let auto_hier_threshold =
  ref
    (match
       Option.bind
         (Sys.getenv_opt "RM_ALLOC_HIER_THRESHOLD")
         int_of_string_opt
     with
    | Some n when n >= 1 -> n
    | Some _ | None -> 2048)

let auto_hierarchical_threshold () = !auto_hier_threshold

let set_auto_hierarchical_threshold n =
  if n < 1 then
    invalid_arg "Policies.set_auto_hierarchical_threshold: must be >= 1";
  auto_hier_threshold := n

(* Fill an ordered node list with processes: each node takes up to its
   capacity; leftover demand is dealt round-robin (matching Algorithm 1's
   overflow behaviour so all policies remain comparable). *)
let fill ~ordered ~capacity ~procs =
  let rec take acc allocated = function
    | [] -> (List.rev acc, allocated)
    | u :: rest ->
      if allocated >= procs then (List.rev acc, allocated)
      else begin
        let cap = max 1 (capacity u) in
        let p = min cap (procs - allocated) in
        take ((u, p) :: acc) (allocated + p) rest
      end
  in
  let assignment, allocated = take [] 0 ordered in
  if allocated >= procs then assignment
  else begin
    let arr = Array.of_list assignment in
    let k = Array.length arr in
    let remaining = ref (procs - allocated) in
    let i = ref 0 in
    while !remaining > 0 do
      let node, p = arr.(!i) in
      arr.(!i) <- (node, p + 1);
      decr remaining;
      i := (!i + 1) mod k
    done;
    Array.to_list arr
  end

let to_allocation ~policy assignment =
  Allocation.make ~policy:(name policy)
    ~entries:(List.map (fun (node, procs) -> { Allocation.node; procs }) assignment)

(* --- instrumentation (active only under Rm_telemetry.Runtime) --------- *)

let m_errors = Telemetry.Metrics.counter "core.allocate.errors"
let m_wall_s = Telemetry.Metrics.histogram "core.allocate.wall_s"
let m_staleness = Telemetry.Metrics.histogram "core.snapshot.staleness_s"
let m_candidates = Telemetry.Metrics.counter "core.candidates.generated"

let audit_candidate ~loads ~net ~request (s : Select.scored) =
  let c = s.Select.candidate in
  {
    Telemetry.Audit.start = c.Candidate.start;
    steps =
      List.map
        (fun (node, procs) ->
          {
            Telemetry.Audit.node;
            procs;
            cost =
              Candidate.addition_cost ~loads ~net ~request
                ~start:c.Candidate.start node;
          })
        c.Candidate.assignment;
    compute_cost = s.Select.compute_cost;
    network_cost = s.Select.network_cost;
    total = s.Select.total;
  }

let record_audit ~snapshot ~policy ~request ~loads ~pc ~scored ~chosen ~result
    ~stale_excluded =
  let module A = Telemetry.Audit in
  let nodes =
    List.map
      (fun node ->
        {
          A.node;
          cl = Compute_load.get loads ~node;
          pc = Effective_procs.get pc ~node;
          load_1m = Compute_load.cpu_load_1m loads ~node;
        })
      (Compute_load.usable loads)
  in
  let decision =
    match result with
    | Ok (a : Allocation.t) ->
      A.Allocated
        (List.map
           (fun (e : Allocation.entry) -> (e.Allocation.node, e.Allocation.procs))
           a.Allocation.entries)
    | Error e -> A.Rejected (Format.asprintf "%a" Allocation.pp_error e)
  in
  A.record
    {
      A.time = snapshot.Snapshot.time;
      policy = name policy;
      procs = request.Request.procs;
      ppn = request.Request.ppn;
      alpha = request.Request.alpha;
      beta = request.Request.beta;
      staleness_s = Snapshot.max_staleness snapshot;
      usable = List.length nodes;
      stale_excluded;
      nodes;
      candidates = scored;
      chosen;
      decision;
    }

let allocate_impl ?(stale_excluded = []) ?ndomains ?starts ?(engine = Auto)
    ~dense ~policy ~snapshot ~weights ~request ~rng () =
  let instrumented = Telemetry.Runtime.is_enabled () in
  let wall0 = if instrumented then Sys.time () else 0.0 in
  let models = if dense then Some (Model_cache.get snapshot ~weights) else None in
  let loads =
    match models with
    | Some m -> Model_cache.loads m
    | None -> Compute_load.of_snapshot snapshot ~weights
  in
  let usable = Compute_load.usable loads in
  if usable = [] then begin
    Telemetry.Metrics.incr m_errors;
    Error Allocation.No_usable_nodes
  end
  else begin
    let pc =
      match models with
      | Some m -> Model_cache.pc m
      | None -> Effective_procs.of_snapshot snapshot ~loads
    in
    let capacity node =
      Request.capacity_of request ~effective:(Effective_procs.get pc ~node)
    in
    let procs = request.Request.procs in
    let result, scored, chosen =
      match policy with
      | Random ->
        let arr = Array.of_list usable in
        Rng.shuffle rng arr;
        ( Ok (to_allocation ~policy (fill ~ordered:(Array.to_list arr) ~capacity ~procs)),
          [], None )
      | Sequential ->
        (* Random start, then ids in ascending order with wrap-around:
           hostname numbering tracks physical proximity (§1). *)
        let arr = Array.of_list usable in
        let k = Array.length arr in
        let start = Rng.int rng k in
        let ordered = List.init k (fun i -> arr.((start + i) mod k)) in
        (Ok (to_allocation ~policy (fill ~ordered ~capacity ~procs)), [], None)
      | Load_aware ->
        let ordered =
          List.sort
            (fun a b ->
              match
                Float.compare (Compute_load.get loads ~node:a)
                  (Compute_load.get loads ~node:b)
              with
              | 0 -> compare a b
              | c -> c)
            usable
        in
        (Ok (to_allocation ~policy (fill ~ordered ~capacity ~procs)), [], None)
      | Network_load_aware
        when dense
             && (match engine with
                | Grouped -> true
                | Flat -> false
                | Auto -> List.length usable > !auto_hier_threshold) ->
        (* Large clusters route through the two-level allocator, under
           the requesting policy's label (the naive reference never
           reroutes, so equivalence properties compare like with
           like). No flat candidate sweep runs, so there is no scored
           table to audit. *)
        ( Hierarchical.allocate ~dense ?ndomains ?starts
            ~policy_label:(name policy) ~snapshot ~weights ~request (),
          [],
          None )
      | Network_load_aware ->
        let net =
          match models with
          | Some m -> Model_cache.net m
          | None -> Network_load.of_snapshot snapshot ~weights
        in
        let scored =
          if dense then
            Dense_alloc.scored_all ?ndomains ?starts ~loads ~net ~capacity
              ~request ()
          else
            let candidates =
              Candidate.generate_all ~loads ~net ~capacity ~request
            in
            Select.score ~candidates ~loads ~net ~request
        in
        let best = Select.best_scored scored in
        let audit_scored =
          if instrumented then
            List.map (audit_candidate ~loads ~net ~request) scored
          else []
        in
        ( Ok (to_allocation ~policy best.Select.candidate.Candidate.assignment),
          audit_scored,
          Some best.Select.candidate.Candidate.start )
      | Hierarchical ->
        ( Hierarchical.allocate ~dense ?ndomains ?starts ~snapshot ~weights
            ~request (),
          [],
          None )
    in
    if instrumented then begin
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter "core.allocations"
           ~labels:[ ("policy", name policy) ]);
      Telemetry.Metrics.add m_candidates (float_of_int (List.length scored));
      Telemetry.Metrics.observe m_staleness (Snapshot.max_staleness snapshot);
      (match result with
      | Error _ -> Telemetry.Metrics.incr m_errors
      | Ok _ -> ());
      record_audit ~snapshot ~policy ~request ~loads ~pc ~scored ~chosen ~result
        ~stale_excluded;
      Telemetry.Metrics.observe m_wall_s (Sys.time () -. wall0)
    end;
    result
  end

let allocate_audited ?ndomains ?starts ?engine ~stale_excluded ~policy
    ~snapshot ~weights ~request ~rng () =
  allocate_impl ~stale_excluded ?ndomains ?starts ?engine ~dense:true ~policy
    ~snapshot ~weights ~request ~rng ()

let allocate ?ndomains ?starts ?engine ~policy ~snapshot ~weights ~request ~rng
    () =
  allocate_impl ?ndomains ?starts ?engine ~dense:true ~policy ~snapshot
    ~weights ~request ~rng ()

let allocate_naive ~policy ~snapshot ~weights ~request ~rng =
  allocate_impl ~dense:false ~policy ~snapshot ~weights ~request ~rng ()

(** The four allocation policies of the evaluation (§5).

    - {e Random}: the required number of nodes drawn uniformly from the
      usable set (a user picking hosts blindly).
    - {e Sequential}: a random start node, then topologically consecutive
      hostnames ("users often tend to select consecutive nodes").
    - {e Load-aware}: the usable nodes with minimal compute load CL.
    - {e Network-and-load-aware}: the paper's contribution —
      Algorithm 1 candidates scored by Algorithm 2.

    Every policy fills nodes up to their per-node capacity ({!Request.capacity_of})
    and falls back to round-robin oversubscription when the whole
    cluster cannot cover the request, so results stay comparable. *)

type policy =
  | Random
  | Sequential
  | Load_aware
  | Network_load_aware
  | Hierarchical
      (** the §3.3.2/§6 two-level variant; not part of the paper's
          evaluated four (see {!all}) but selectable everywhere *)

val name : policy -> string
val all : policy list
(** The paper's four, in its reporting order: random, sequential,
    load-aware, network-and-load-aware. [Hierarchical] is deliberately
    not included so the reproduction tables stay faithful. *)

val of_name : string -> policy option

type engine =
  | Auto
      (** flat below {!auto_hierarchical_threshold} usable nodes,
          grouped above it *)
  | Flat  (** always the flat (single-level) candidate sweep *)
  | Grouped  (** always the two-level {!Hierarchical.allocate} *)

val auto_hierarchical_threshold : unit -> int
(** Usable-node count above which [Auto] routes the
    network-and-load-aware policy through {!Hierarchical.allocate}
    (default 2048; initial value overridable via the
    [RM_ALLOC_HIER_THRESHOLD] environment variable). *)

val set_auto_hierarchical_threshold : int -> unit
(** Raises [Invalid_argument] below 1. *)

val allocate :
  ?ndomains:int ->
  ?starts:Dense_alloc.starts ->
  ?engine:engine ->
  policy:policy ->
  snapshot:Rm_monitor.Snapshot.t ->
  weights:Weights.t ->
  request:Request.t ->
  rng:Rm_stats.Rng.t ->
  unit ->
  (Allocation.t, Allocation.error) result
(** [Error No_usable_nodes] when the snapshot has no usable node;
    otherwise always succeeds (oversubscribing if needed). Randomized
    policies draw from [rng]; the two aware policies are deterministic
    given the snapshot.

    Models (Eq. 1/2/3) come from {!Model_cache} — repeated calls
    against the same snapshot and weights share one build — and the
    network-and-load-aware policy runs on the {!Dense_alloc} kernels,
    sweeping its per-start candidate loop across [ndomains] OCaml
    domains (default {!Domain_pool.default_domains}, the
    [RM_ALLOC_DOMAINS] / [--domains] knob). Output is byte-identical
    to {!allocate_naive} for every domain count.

    [starts] (default {!Dense_alloc.default_starts}, the
    [RM_ALLOC_STARTS] / [--starts] knob) prunes the candidate-start
    sweep; [engine] (default [Auto]) picks between the flat sweep and
    the two-level allocator for the network-and-load-aware policy —
    with [Auto], clusters above {!auto_hierarchical_threshold} usable
    nodes route through {!Hierarchical.allocate} under the
    ["network-load-aware"] policy label. Both knobs only affect the
    network-and-load-aware and hierarchical policies. *)

val allocate_audited :
  ?ndomains:int ->
  ?starts:Dense_alloc.starts ->
  ?engine:engine ->
  stale_excluded:int list ->
  policy:policy ->
  snapshot:Rm_monitor.Snapshot.t ->
  weights:Weights.t ->
  request:Request.t ->
  rng:Rm_stats.Rng.t ->
  unit ->
  (Allocation.t, Allocation.error) result
(** {!allocate}, with the audit record annotated: when the broker has
    already dropped stale nodes from the snapshot it passes their ids
    here so [rmctl explain] can say why they are missing. *)

val allocate_naive :
  policy:policy ->
  snapshot:Rm_monitor.Snapshot.t ->
  weights:Weights.t ->
  request:Request.t ->
  rng:Rm_stats.Rng.t ->
  (Allocation.t, Allocation.error) result
(** The pre-fast-path reference implementation: models rebuilt from the
    snapshot on every call, Algorithm 1/2 via [Candidate.generate_all]
    and [Select.score]. Retained for the equivalence property test and
    the before/after rows of [bench scale]; allocations are identical
    to {!allocate} by construction (and by test). *)

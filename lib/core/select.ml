type scored = {
  candidate : Candidate.t;
  compute_cost : float;
  network_cost : float;
  total : float;
}

let score ~candidates ~loads ~net ~request =
  if candidates = [] then invalid_arg "Select.score: no candidates";
  let raw =
    List.map
      (fun (c : Candidate.t) ->
        let compute = Compute_load.total loads ~nodes:c.nodes in
        let network = Network_load.total_edges net ~nodes:c.nodes in
        (c, compute, network))
      candidates
  in
  let c_sum = List.fold_left (fun acc (_, c, _) -> acc +. c) 0.0 raw in
  let n_sum = List.fold_left (fun acc (_, _, n) -> acc +. n) 0.0 raw in
  let norm sum v = if sum > 0.0 then v /. sum else 0.0 in
  List.map
    (fun (candidate, compute_cost, network_cost) ->
      let total =
        (request.Request.alpha *. norm c_sum compute_cost)
        +. (request.Request.beta *. norm n_sum network_cost)
      in
      { candidate; compute_cost; network_cost; total })
    raw

let best_scored scored =
  match scored with
  | [] -> invalid_arg "Select.best_scored: no candidates"
  | first :: rest ->
    List.fold_left
      (fun acc s ->
        if
          s.total < acc.total
          || (s.total = acc.total && s.candidate.Candidate.start < acc.candidate.Candidate.start)
        then s
        else acc)
      first rest

let best ~candidates ~loads ~net ~request =
  best_scored (score ~candidates ~loads ~net ~request)

(** Best-candidate selection — Algorithm 2 / Eq. 4.

    For each candidate sub-graph G_v: total compute cost C = Σ_u CL_u,
    total network cost N = Σ_{(x,y)∈E} NL_(x,y) over all unordered node
    pairs (the sub-graph is fully connected). Both are normalized by
    their sums over the candidate set, and the winner minimizes
    T = α·C̄ + β·N̄. Ties break on start-node id. *)

type scored = {
  candidate : Candidate.t;
  compute_cost : float;  (** C_{G_v}, un-normalized *)
  network_cost : float;  (** N_{G_v}, un-normalized *)
  total : float;  (** T_{G_v} *)
}

val score :
  candidates:Candidate.t list ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  request:Request.t ->
  scored list
(** Same order as the input. Raises [Invalid_argument] on an empty
    candidate list. *)

val best :
  candidates:Candidate.t list ->
  loads:Compute_load.t ->
  net:Network_load.t ->
  request:Request.t ->
  scored

val best_scored : scored list -> scored
(** Algorithm 2's argmin over an already-scored candidate set — lets a
    caller that needs the full score table (e.g. the decision audit
    log) avoid scoring twice. Raises [Invalid_argument] on []. *)

module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Candidate = Rm_core.Candidate
module Select = Rm_core.Select
module Brute_force = Rm_core.Brute_force
module Compute_load = Rm_core.Compute_load
module Network_load = Rm_core.Network_load
module Effective_procs = Rm_core.Effective_procs
module Snapshot = Rm_monitor.Snapshot
module Descriptive = Rm_stats.Descriptive

let minimd_app ~ranks =
  Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:16) ~ranks

(* --- α/β sweep --------------------------------------------------------- *)

let alpha_sweep ?(seed = 11) ?(alphas = [ 0.0; 0.2; 0.3; 0.5; 0.7; 0.9; 1.0 ])
    ?(reps = 3) () =
  List.map
    (fun alpha ->
      let env =
        Harness.make_env ~scenario:Rm_workload.Scenario.normal
          ~seed:(seed + int_of_float (alpha *. 1000.0))
          ~horizon:100_000.0 ()
      in
      Harness.warm env;
      let request = Request.make ~ppn:4 ~alpha ~procs:32 () in
      let times =
        Array.init reps (fun _ ->
            let r =
              Harness.run_app env ~policy:Policies.Network_load_aware
                ~weights:Weights.paper_default ~request ~app_of:minimd_app
            in
            Harness.idle env ~seconds:30.0;
            r.Harness.stats.Rm_mpisim.Executor.total_time_s)
      in
      (alpha, Descriptive.mean times))
    alphas

let render_alpha_sweep points =
  let header = [ "alpha"; "beta"; "miniMD time (s)" ] in
  let rows =
    List.map
      (fun (a, t) ->
        [ Render.f2 a; Render.f2 (1.0 -. a); Printf.sprintf "%.3f" t ])
      points
  in
  "Ablation — Eq. 4 weighting (miniMD 32p s=16; the paper picked α=0.3\n\
   empirically for this communication-heavy app)\n\n"
  ^ Render.table_str ~header ~rows

(* --- w_lt / w_bw sweep -------------------------------------------------- *)

type net_weight_point = {
  w_lt : float;
  w_bw : float;
  chatty_time_s : float;
  bulky_time_s : float;
}

(* Latency-bound: a ring of tiny messages every step. Bandwidth-bound:
   few steps, fat ring messages. *)
let chatty_app ~ranks =
  Rm_apps.Synthetic.nearest_neighbor ~ranks ~iterations:400
    ~flops_per_rank:5e4 ~bytes:256.0 ()

let bulky_app ~ranks =
  Rm_apps.Synthetic.ring ~ranks ~iterations:30 ~flops_per_rank:1e6
    ~bytes:4.0e6 ()

let net_weight_sweep ?(seed = 23) ?(reps = 3) () =
  let settings = [ (1.0, 0.0); (0.75, 0.25); (0.5, 0.5); (0.25, 0.75); (0.0, 1.0) ] in
  List.map
    (fun (w_lt, w_bw) ->
      let weights = { Weights.paper_default with w_lt; w_bw } in
      let mean_time ~app_of ~salt =
        let env =
          Harness.make_env ~scenario:Rm_workload.Scenario.normal
            ~seed:(seed + salt + int_of_float (w_lt *. 100.0))
            ~horizon:100_000.0 ()
        in
        Harness.warm env;
        let request = Request.make ~ppn:4 ~alpha:0.2 ~procs:16 () in
        let times =
          Array.init reps (fun _ ->
              let r =
                Harness.run_app env ~policy:Policies.Network_load_aware ~weights
                  ~request ~app_of
              in
              Harness.idle env ~seconds:30.0;
              r.Harness.stats.Rm_mpisim.Executor.total_time_s)
        in
        Descriptive.mean times
      in
      {
        w_lt;
        w_bw;
        chatty_time_s = mean_time ~app_of:chatty_app ~salt:0;
        bulky_time_s = mean_time ~app_of:bulky_app ~salt:1000;
      })
    settings

let render_net_weight_sweep points =
  let header = [ "w_lt"; "w_bw"; "chatty job (s)"; "bulky job (s)" ] in
  let rows =
    List.map
      (fun p ->
        [
          Render.f2 p.w_lt;
          Render.f2 p.w_bw;
          Printf.sprintf "%.3f" p.chatty_time_s;
          Printf.sprintf "%.3f" p.bulky_time_s;
        ])
      points
  in
  "Ablation — Eq. 2 weighting (§3.2.2: chatty jobs want w_lt high, bulky\n\
   jobs want w_bw high)\n\n"
  ^ Render.table_str ~header ~rows

(* --- Probe staleness ----------------------------------------------------- *)

let staleness_sweep ?(seed = 31) ?(periods = [ 60.0; 300.0; 900.0; 3600.0 ])
    ?(reps = 3) () =
  List.map
    (fun period ->
      let cadence =
        { Rm_monitor.System.default_cadence with
          bandwidth_period = period;
          latency_period = Float.min period 300.0 }
      in
      let env =
        Harness.make_env ~cadence ~scenario:Rm_workload.Scenario.normal
          ~seed:(seed + int_of_float period) ~horizon:200_000.0 ()
      in
      Harness.idle env ~seconds:(period +. 960.0);
      let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
      let gains =
        Array.init reps (fun _ ->
            let ours =
              Harness.run_app env ~policy:Policies.Network_load_aware
                ~weights:Weights.paper_default ~request ~app_of:minimd_app
            in
            Harness.idle env ~seconds:30.0;
            let random =
              Harness.run_app env ~policy:Policies.Random
                ~weights:Weights.paper_default ~request ~app_of:minimd_app
            in
            Harness.idle env ~seconds:30.0;
            Descriptive.percent_gain
              ~baseline:random.Harness.stats.Rm_mpisim.Executor.total_time_s
              ~ours:ours.Harness.stats.Rm_mpisim.Executor.total_time_s)
      in
      (period, Descriptive.mean gains))
    periods

let render_staleness_sweep points =
  let header = [ "bandwidth-probe period (s)"; "gain vs random" ] in
  let rows =
    List.map (fun (p, g) -> [ Printf.sprintf "%.0f" p; Render.pct g ]) points
  in
  "Ablation — monitor staleness (why §4 probes bandwidth every 5 min):\n\
   gains should erode as the probe period grows\n\n"
  ^ Render.table_str ~header ~rows

(* --- Hierarchical vs flat ------------------------------------------------- *)

type hierarchy_point = {
  nodes : int;
  flat_ms : float;
  hier_ms : float;
  flat_time_s : float;
  hier_time_s : float;
}

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

let hierarchical_sweep ?(seed = 19) ?(cluster_sizes = [ 60; 120; 240; 480 ]) () =
  List.map
    (fun nodes ->
      let switches = max 2 (nodes / 15) in
      let per = nodes / switches in
      let cluster =
        Rm_cluster.Cluster.homogeneous ~prefix:"n" ~cores:12 ~freq_ghz:3.4
          ~nodes_per_switch:(List.init switches (fun _ -> per))
          ()
      in
      let world =
        Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.normal
          ~seed:(seed + nodes)
      in
      Rm_workload.World.advance world ~now:3600.0;
      let snapshot = Snapshot.of_truth ~time:3600.0 ~world in
      let weights = Weights.paper_default in
      let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
      let rng = Rm_stats.Rng.create seed in
      let flat_alloc, flat_ms =
        wall_ms (fun () ->
            Policies.allocate ~policy:Policies.Network_load_aware ~snapshot
              ~weights ~request ~rng ())
      in
      let hier_alloc, hier_ms =
        wall_ms (fun () ->
            Rm_core.Hierarchical.allocate ~snapshot ~weights ~request ())
      in
      let run alloc =
        match alloc with
        | Error _ -> nan
        | Ok allocation ->
          (* Fresh but identically-seeded world so both run under the
             same conditions. *)
          let world =
            Rm_workload.World.create ~cluster
              ~scenario:Rm_workload.Scenario.normal ~seed:(seed + nodes)
          in
          Rm_workload.World.advance world ~now:3600.0;
          let app = minimd_app ~ranks:32 in
          (Rm_mpisim.Executor.run ~world ~allocation ~app ())
            .Rm_mpisim.Executor.total_time_s
      in
      {
        nodes;
        flat_ms;
        hier_ms;
        flat_time_s = run flat_alloc;
        hier_time_s = run hier_alloc;
      })
    cluster_sizes

let render_hierarchical_sweep points =
  let header =
    [ "cluster nodes"; "flat alloc (ms)"; "hier alloc (ms)";
      "flat miniMD (s)"; "hier miniMD (s)" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.nodes;
          Render.f2 p.flat_ms;
          Render.f2 p.hier_ms;
          Printf.sprintf "%.3f" p.flat_time_s;
          Printf.sprintf "%.3f" p.hier_time_s;
        ])
      points
  in
  "Ablation — flat O(V^2 log V) allocator vs the two-level (group by\n\
   switch) variant of section 3.3.2: allocation wall-clock should scale\n\
   much better while job quality stays comparable\n\n"
  ^ Render.table_str ~header ~rows

(* --- Monitor fidelity -------------------------------------------------------- *)

let monitor_fidelity ?(seed = 71) ?(reps = 4) () =
  let env =
    Harness.make_env ~scenario:Rm_workload.Scenario.normal ~seed
      ~horizon:200_000.0 ()
  in
  Harness.warm env;
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let weights = Weights.paper_default in
  let run snapshot =
    match
      Policies.allocate ~policy:Policies.Network_load_aware ~snapshot ~weights
        ~request ~rng:(Rm_stats.Rng.create seed) ()
    with
    | Error _ -> nan
    | Ok allocation ->
      let app = minimd_app ~ranks:32 in
      (Rm_mpisim.Executor.run ~world:(Harness.world env) ~allocation ~app ())
        .Rm_mpisim.Executor.total_time_s
  in
  let monitor = ref [] and oracle = ref [] in
  for _ = 1 to reps do
    Harness.sync env;
    monitor := run (Harness.snapshot env) :: !monitor;
    Harness.idle env ~seconds:30.0;
    Harness.sync env;
    oracle :=
      run
        (Snapshot.of_truth
           ~time:(Rm_workload.World.now (Harness.world env))
           ~world:(Harness.world env))
      :: !oracle;
    Harness.idle env ~seconds:30.0
  done;
  [
    ("monitor", Descriptive.mean (Array.of_list !monitor));
    ("oracle", Descriptive.mean (Array.of_list !oracle));
  ]

let render_monitor_fidelity points =
  let header = [ "allocator input"; "mean miniMD time (s)" ] in
  let rows = List.map (fun (n, t) -> [ n; Printf.sprintf "%.3f" t ]) points in
  "Ablation — monitor fidelity: allocations from the real monitor (noisy
   samples, 5-min-old bandwidth probes, running-mean lag) vs an oracle
   reading ground truth directly; the gap is the price of §4's
   light-weight monitoring

"
  ^ Render.table_str ~header ~rows

(* --- Predictive (forecast-enhanced) allocation ----------------------------- *)

let predictive ?(seed = 53) ?(reps = 4) () =
  let env =
    Harness.make_env ~scenario:Rm_workload.Scenario.busy ~seed
      ~horizon:300_000.0 ()
  in
  Harness.warm env;
  let cluster = Harness.cluster env in
  let mf =
    Rm_forecast.Monitor_forecast.create
      ~node_count:(Rm_cluster.Cluster.node_count cluster)
  in
  (* Train the per-node forecasters on one monitor sweep per minute. *)
  let train minutes =
    for _ = 1 to minutes do
      Harness.idle env ~seconds:60.0;
      Rm_forecast.Monitor_forecast.observe mf (Harness.snapshot env)
    done
  in
  train 45;
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let weights = Weights.paper_default in
  let run snapshot =
    match
      Policies.allocate ~policy:Policies.Network_load_aware ~snapshot ~weights
        ~request ~rng:(Rm_stats.Rng.create seed) ()
    with
    | Error _ -> nan
    | Ok allocation ->
      let app = minimd_app ~ranks:32 in
      (Rm_mpisim.Executor.run ~world:(Harness.world env) ~allocation ~app ())
        .Rm_mpisim.Executor.total_time_s
  in
  let reactive = ref [] and predicted = ref [] in
  for _ = 1 to reps do
    train 5;
    let snap = Harness.snapshot env in
    reactive := run snap :: !reactive;
    Harness.idle env ~seconds:30.0;
    let snap = Harness.snapshot env in
    predicted := run (Rm_forecast.Monitor_forecast.predict_snapshot mf snap)
                 :: !predicted;
    Harness.idle env ~seconds:30.0
  done;
  [
    ("reactive", Descriptive.mean (Array.of_list !reactive));
    ("predictive", Descriptive.mean (Array.of_list !predicted));
  ]

let render_predictive points =
  let header = [ "allocator input"; "mean miniMD time (s)" ] in
  let rows =
    List.map (fun (n, t) -> [ n; Printf.sprintf "%.3f" t ]) points
  in
  "Ablation — forecast-enhanced allocation: the aware allocator fed
   one-step-ahead load predictions (per-node adaptive NWS forecasters)
   instead of the last measured running means, on a spiky busy cluster

"
  ^ Render.table_str ~header ~rows

(* --- Multi-cluster federation (§6) ---------------------------------------- *)

type multicluster_point = {
  policy : string;
  spans_sites : bool;
  time_s : float;
}

let multicluster ?(seed = 47) ?(reps = 3) () =
  let cluster =
    Rm_cluster.Cluster.federated ~cores:12 ~freq_ghz:3.4
      ~sites:[ ("cse", [ 8; 8 ]); ("ee", [ 8; 8 ]) ]
      ()
  in
  let topo = Rm_cluster.Cluster.topology cluster in
  let env =
    Harness.make_env ~cluster ~scenario:Rm_workload.Scenario.normal ~seed
      ~horizon:100_000.0 ()
  in
  Harness.warm env;
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let results =
    List.init reps (fun _ ->
        Harness.compare_policies env ~weights:Weights.paper_default ~request
          ~app_of:minimd_app ())
  in
  List.map
    (fun policy ->
      let mine =
        List.concat_map
          (fun runs ->
            List.filter_map
              (fun (p, r) -> if p = policy then Some r else None)
              runs)
          results
      in
      let spans (r : Harness.run_result) =
        let sites =
          List.sort_uniq compare
            (List.map
               (Rm_cluster.Topology.site_of_node topo)
               (Rm_core.Allocation.node_ids r.Harness.allocation))
        in
        List.length sites > 1
      in
      {
        policy = Policies.name policy;
        spans_sites = List.exists spans mine;
        time_s =
          Descriptive.mean
            (Array.of_list
               (List.map
                  (fun (r : Harness.run_result) ->
                    r.Harness.stats.Rm_mpisim.Executor.total_time_s)
                  mine));
      })
    Policies.all

let render_multicluster points =
  let header = [ "policy"; "spans WAN?"; "mean miniMD time (s)" ] in
  let rows =
    List.map
      (fun p ->
        [ p.policy; (if p.spans_sites then "yes" else "no");
          Printf.sprintf "%.3f" p.time_s ])
      points
  in
  "Ablation — multi-cluster federation (§6): two 16-node sites joined by\n\
   a 60 MB/s, ~1 ms campus backbone; a 32-process job fits in either\n\
   site. The aware allocator should stay on one site; placements that\n\
   span the WAN pay its latency and shared bandwidth\n\n"
  ^ Render.table_str ~header ~rows

(* --- MADM method comparison (related work [12]) ------------------------------ *)

type madm_point = {
  method_name : string;
  spearman_vs_saw : float;
  top8_overlap : int;
  minimd_time_s : float;
}

let madm_methods ?(seed = 67) () =
  let env =
    Harness.make_env ~scenario:Rm_workload.Scenario.normal ~seed
      ~horizon:100_000.0 ()
  in
  Harness.warm env;
  let snap = Harness.snapshot env in
  let weights = Weights.paper_default in
  let columns = Compute_load.columns snap ~weights in
  let usable = Array.of_list (Snapshot.usable snap) in
  let saw = Rm_core.Madm.saw_scores columns in
  (* AHP: a consistent comparison matrix derived from the paper's SAW
     weights (w_i / w_j), zero-weight attributes floored. *)
  let ws =
    Array.of_list
      (List.map (fun (c : Rm_core.Madm.column) -> Float.max 0.01 c.Rm_core.Madm.weight) columns)
  in
  let comparisons =
    Array.init (Array.length ws) (fun i ->
        Array.init (Array.length ws) (fun j -> ws.(i) /. ws.(j)))
  in
  let methods =
    [
      ("SAW (paper)", saw, false);
      ("PROMETHEE-II", Rm_core.Madm.promethee_net_flows columns, true);
      ("AHP-weighted", Rm_core.Madm.ahp_scores ~comparisons ~columns, false);
    ]
  in
  let saw_rank = Rm_core.Madm.ranking ~scores:saw ~higher_is_better:false in
  let rec take k = function
    | [] -> []
    | x :: r -> if k = 0 then [] else x :: take (k - 1) r
  in
  let saw_top = take 8 saw_rank in
  List.map
    (fun (method_name, scores, higher_is_better) ->
      (* Spearman against SAW on a common lower-is-better orientation. *)
      let oriented =
        if higher_is_better then Array.map (fun v -> -.v) scores else scores
      in
      let spearman_vs_saw = Descriptive.spearman oriented saw in
      let rank = Rm_core.Madm.ranking ~scores ~higher_is_better in
      let top = take 8 rank in
      let top8_overlap =
        List.length (List.filter (fun i -> List.mem i saw_top) top)
      in
      (* Allocate the 8 best-ranked nodes (load-aware style) and run. *)
      let allocation =
        Rm_core.Allocation.make ~policy:method_name
          ~entries:(List.map (fun i -> { Rm_core.Allocation.node = usable.(i); procs = 4 }) top)
      in
      let app = minimd_app ~ranks:32 in
      let minimd_time_s =
        (Rm_mpisim.Executor.run ~world:(Harness.world env) ~allocation ~app ())
          .Rm_mpisim.Executor.total_time_s
      in
      Harness.idle env ~seconds:30.0;
      { method_name; spearman_vs_saw; top8_overlap; minimd_time_s })
    methods

let render_madm points =
  let header =
    [ "method"; "Spearman vs SAW"; "top-8 overlap"; "miniMD time (s)" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          p.method_name;
          Printf.sprintf "%.3f" p.spearman_vs_saw;
          Printf.sprintf "%d/8" p.top8_overlap;
          Printf.sprintf "%.3f" p.minimd_time_s;
        ])
      points
  in
  "Ablation — MADM method choice (related work [12] uses PROMETHEE-II and
   AHP where the paper uses SAW): node rankings largely agree, so the
   paper's simpler method loses little

"
  ^ Render.table_str ~header ~rows

(* --- Rank mapping (Treematch-style, related work [11]) --------------------- *)

type mapping_point = {
  app : string;
  default_mb_per_iter : float;
  mapped_mb_per_iter : float;
  default_time_s : float;
  mapped_time_s : float;
}

let rank_mapping ?(seed = 61) () =
  let env =
    Harness.make_env ~scenario:Rm_workload.Scenario.normal ~seed
      ~horizon:100_000.0 ()
  in
  Harness.warm env;
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:32 () in
  let apps =
    [
      ("miniMD(s=16)", minimd_app);
      ( "miniFE(nx=96)",
        fun ~ranks ->
          Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:96) ~ranks );
    ]
  in
  List.map
    (fun (name, app_of) ->
      Harness.sync env;
      let snap = Harness.snapshot env in
      match
        Policies.allocate ~policy:Policies.Network_load_aware ~snapshot:snap
          ~weights:Weights.paper_default ~request ~rng:(Rm_stats.Rng.create seed) ()
      with
      | Error _ -> failwith "allocation failed"
      | Ok allocation ->
        let app = app_of ~ranks:32 in
        let m = Rm_mpisim.Mapping.optimize ~app ~allocation in
        let world = Harness.world env in
        let default_time_s =
          (Rm_mpisim.Executor.run ~world ~allocation ~app ())
            .Rm_mpisim.Executor.total_time_s
        in
        Harness.idle env ~seconds:30.0;
        let mapped_time_s =
          (Rm_mpisim.Executor.run ~world ~allocation ~app
             ~placement:m.Rm_mpisim.Mapping.placement ())
            .Rm_mpisim.Executor.total_time_s
        in
        Harness.idle env ~seconds:30.0;
        {
          app = name;
          default_mb_per_iter = m.Rm_mpisim.Mapping.default_inter_bytes /. 1e6;
          mapped_mb_per_iter = m.Rm_mpisim.Mapping.mapped_inter_bytes /. 1e6;
          default_time_s;
          mapped_time_s;
        })
    apps

let render_rank_mapping points =
  let header =
    [ "app"; "inter-node MB/iter (block)"; "(mapped)"; "time block (s)";
      "time mapped (s)" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          p.app;
          Render.f2 p.default_mb_per_iter;
          Render.f2 p.mapped_mb_per_iter;
          Printf.sprintf "%.3f" p.default_time_s;
          Printf.sprintf "%.3f" p.mapped_time_s;
        ])
      points
  in
  "Ablation — Treematch-style rank mapping within the aware allocation
   (related work [11]): co-locating heavy communicators cuts inter-node
   traffic per iteration; runtimes move with it

"
  ^ Render.table_str ~header ~rows

(* --- Greedy vs brute force ---------------------------------------------- *)

type optimality = {
  trials : int;
  mean_ratio : float;
  max_ratio : float;
  optimal_found : int;
}

let optimality_gap ?(seed = 5) ?(trials = 40) () =
  let ratios = ref [] in
  let hits = ref 0 in
  for trial = 0 to trials - 1 do
    let cluster =
      Rm_cluster.Cluster.homogeneous ~cores:8 ~freq_ghz:3.0
        ~nodes_per_switch:[ 4; 4 ] ()
    in
    let world =
      Rm_workload.World.create ~cluster ~scenario:Rm_workload.Scenario.normal
        ~seed:(seed + (trial * 17))
    in
    Rm_workload.World.advance world ~now:3600.0;
    let snap = Snapshot.of_truth ~time:3600.0 ~world in
    let weights = Weights.paper_default in
    let loads = Compute_load.of_snapshot snap ~weights in
    let net = Network_load.of_snapshot snap ~weights in
    let request = Request.make ~ppn:4 ~alpha:0.4 ~procs:12 () in
    let pc = Effective_procs.of_snapshot snap ~loads in
    let capacity node =
      Request.capacity_of request
        ~effective:(Rm_core.Effective_procs.get pc ~node)
    in
    let candidates = Candidate.generate_all ~loads ~net ~capacity ~request in
    let greedy = Select.best ~candidates ~loads ~net ~request in
    let greedy_obj =
      Brute_force.objective ~loads ~net ~request
        ~nodes:greedy.Select.candidate.Candidate.nodes
    in
    match Brute_force.best_subset ~loads ~net ~capacity ~request ~max_nodes:8 with
    | None -> ()
    | Some (_, opt_obj) ->
      let ratio = if opt_obj > 0.0 then greedy_obj /. opt_obj else 1.0 in
      ratios := ratio :: !ratios;
      if ratio <= 1.0 +. 1e-9 then incr hits
  done;
  let arr = Array.of_list !ratios in
  {
    trials = Array.length arr;
    mean_ratio = Descriptive.mean arr;
    max_ratio = Descriptive.max arr;
    optimal_found = !hits;
  }

let render_optimality o =
  Printf.sprintf
    "Ablation — greedy (Algorithms 1+2) vs brute-force optimum on 8-node\n\
     clusters, objective α·ΣCL + β·ΣNL:\n\n\
    \  trials:            %d\n\
    \  mean obj ratio:    %.4f (1.0 = optimal)\n\
    \  worst obj ratio:   %.4f\n\
    \  optimum matched:   %d/%d trials\n"
    o.trials o.mean_ratio o.max_ratio o.optimal_found o.trials

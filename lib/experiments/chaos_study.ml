module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Scheduler = Rm_sched.Scheduler
module Fault_plan = Rm_faults.Fault_plan
module Injector = Rm_faults.Injector

type intensity = Off | Light | Heavy

let intensity_name = function Off -> "off" | Light -> "light" | Heavy -> "heavy"

let intensity_of_name = function
  | "off" | "none" -> Some Off
  | "light" -> Some Light
  | "heavy" -> Some Heavy
  | _ -> None

let plan_of_intensity ~cluster ~first_after_s ~seed intensity =
  let n = Cluster.node_count cluster in
  let every k = List.filter (fun i -> i mod k = 0) (List.init n Fun.id) in
  match intensity with
  | Off -> None
  | Light ->
    Some
      (Fault_plan.node_churn ~nodes:(every 4) ~mtbf_s:7200.0 ~mttr_s:300.0
         ~first_after_s ~seed "light-churn")
  | Heavy ->
    (* Node churn alone rarely lands mid-run (the queue's duty cycle is
       tiny: seconds of work every 600 s), so heavy adds a switch-outage
       storm aligned with the arrival cadence — each outage opens just
       after a job dispatches and out-lives its run, forcing the
       detection → requeue → restart path the study is measuring. *)
    let sw = Rm_cluster.Topology.switch_count (Cluster.topology cluster) in
    let storms =
      List.init 8 (fun i ->
          let i = i + 1 in
          Fault_plan.one_shot
            ~label:(Printf.sprintf "storm-%d" i)
            ~at:(first_after_s +. (600.0 *. float_of_int i) +. 0.5)
            ~duration_s:10.0
            (Fault_plan.Switch_outage { switch = i mod sw }))
    in
    let churn =
      Fault_plan.node_churn ~nodes:(every 2) ~mtbf_s:2400.0 ~mttr_s:600.0
        ~first_after_s ~seed "heavy-churn"
    in
    Some { churn with Fault_plan.events = churn.Fault_plan.events @ storms }

let resilient_config policy =
  {
    Scheduler.default_config with
    Scheduler.broker =
      { Broker.default_config with Broker.policy; max_staleness_s = 120.0 };
    node_check_period_s = Some 30.0;
    max_requeues = 3;
    backoff_base_s = 30.0;
    backoff_cap_s = 1800.0;
    checkpoint_interval_s = Some 600.0;
    restart_overhead_s = 60.0;
  }

(* Same substrate and job mix as Queue_study.run_policy_sched, so the
   no-plan run is its bit-for-bit twin (the liveness poll and the
   resilience knobs only act when a fault actually fires). *)
let run_sched ?(seed = 83) ?(job_count = 10) ?(horizon = 100_000.0) ?plan
    ~policy () =
  let sim = Sim.create () in
  let world =
    World.create ~cluster:(Cluster.iitk_reference ()) ~scenario:Scenario.normal
      ~seed
  in
  let rng = Rng.create (seed + 5) in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let config = resilient_config policy in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let injector =
    Option.map
      (fun plan -> Injector.inject ~sim ~world ~system:monitor ~until:horizon plan)
      plan
  in
  let warm = System.warm_up_s System.default_cadence in
  let ids =
    List.map
      (fun (name, kind, procs, at) ->
        Scheduler.submit sched ~name ~at
          ~request:(Request.make ~ppn:4 ~alpha:0.35 ~procs ())
          ~app_of:(Queue_study.app_of_kind kind) ())
      (Queue_study.job_mix ~job_count ~warm)
  in
  let terminal id =
    match Scheduler.state sched id with
    (* the submission event has not fired yet *)
    | exception Invalid_argument _ -> false
    | Scheduler.Finished _ | Scheduler.Rejected _ -> true
    | Scheduler.Queued | Scheduler.Running _ | Scheduler.Failed _ -> false
  in
  let rec drain () =
    if (not (List.for_all terminal ids)) && Sim.now sim < horizon then begin
      Sim.run_until sim (Sim.now sim +. 600.0);
      drain ()
    end
  in
  drain ();
  (sched, injector)

type row = {
  policy : Policies.policy;
  intensity : intensity;
  finished : int;
  rejected : int;
  requeues : int;
  faults_injected : int;
  wasted_node_s : float;
  goodput : float;
  mean_turnaround_s : float;
}

let row_of ~policy ~intensity ~sched ~injector =
  let outcomes = Scheduler.finished sched in
  let useful_node_s =
    List.fold_left
      (fun acc (o : Scheduler.outcome) ->
        acc
        +. ((o.Scheduler.finished_at -. o.Scheduler.started_at)
           *. float_of_int (List.length o.Scheduler.nodes)))
      0.0 outcomes
  in
  let wasted = Scheduler.wasted_node_seconds sched in
  {
    policy;
    intensity;
    finished = List.length outcomes;
    rejected = List.length (Scheduler.rejected sched);
    requeues = Scheduler.requeue_count sched;
    faults_injected =
      (match injector with Some i -> Injector.injected i | None -> 0);
    wasted_node_s = wasted;
    goodput =
      (if useful_node_s +. wasted <= 0.0 then 1.0
       else useful_node_s /. (useful_node_s +. wasted));
    mean_turnaround_s =
      (if outcomes = [] then 0.0
       else
         List.fold_left
           (fun acc (o : Scheduler.outcome) ->
             acc +. (o.Scheduler.finished_at -. o.Scheduler.submitted_at))
           0.0 outcomes
         /. float_of_int (List.length outcomes));
  }

let run ?(seed = 83) ?(job_count = 10) ?(intensities = [ Off; Light; Heavy ])
    () =
  List.concat_map
    (fun intensity ->
      List.map
        (fun policy ->
          let plan =
            plan_of_intensity ~cluster:(Cluster.iitk_reference ())
              ~first_after_s:(System.warm_up_s System.default_cadence)
              ~seed:(seed + 17) intensity
          in
          let sched, injector = run_sched ~seed ~job_count ?plan ~policy () in
          row_of ~policy ~intensity ~sched ~injector)
        Policies.all)
    intensities

let render rows =
  let header =
    [
      "intensity"; "broker policy"; "finished"; "rejected"; "requeues";
      "faults"; "wasted node-s"; "goodput"; "turnaround (s)";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          intensity_name r.intensity;
          Policies.name r.policy;
          string_of_int r.finished;
          string_of_int r.rejected;
          string_of_int r.requeues;
          string_of_int r.faults_injected;
          Printf.sprintf "%.0f" r.wasted_node_s;
          Printf.sprintf "%.3f" r.goodput;
          Printf.sprintf "%.1f" r.mean_turnaround_s;
        ])
      rows
  in
  "Chaos study — the queue-study job mix under seeded node churn: failure\n\
   detection requeues jobs that lose a node; goodput is useful node-seconds\n\
   over useful plus wasted\n\n"
  ^ Render.table_str ~header ~rows:body

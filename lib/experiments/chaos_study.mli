(** Resilience study: fault intensity × allocation policy.

    Replays the {!Queue_study} job mix under a seeded node-churn fault
    plan while the scheduler runs with failure detection, requeue
    backoff and virtual checkpointing enabled, and reports what the
    churn cost: finished/rejected counts, requeues, wasted
    node-seconds and goodput (useful node-seconds over useful+wasted).

    The fault RNG is the plan's own ({!Rm_faults.Injector}); the
    workload and scheduler draw exactly the same streams as the
    baseline, so an [Off]-intensity run reproduces
    {!Queue_study.run_policy_sched} outcomes bit-for-bit. *)

type intensity = Off | Light | Heavy

val intensity_of_name : string -> intensity option
val intensity_name : intensity -> string

val plan_of_intensity :
  cluster:Rm_cluster.Cluster.t ->
  first_after_s:float ->
  seed:int ->
  intensity ->
  Rm_faults.Fault_plan.t option
(** [Off] is [None]. [Light] crash-loops a quarter of the nodes with a
    2-hour MTBF; [Heavy] half the nodes with a 40-minute MTBF. Faults
    start after [first_after_s] (the monitor warm-up, typically). *)

val resilient_config : Rm_core.Policies.policy -> Rm_sched.Scheduler.config
(** The scheduler configuration the study runs with: 30 s liveness
    polling, 3 requeues with 30 s → 1800 s backoff, 600 s virtual
    checkpoints, 60 s restart overhead. *)

val run_sched :
  ?seed:int ->
  ?job_count:int ->
  ?horizon:float ->
  ?plan:Rm_faults.Fault_plan.t ->
  policy:Rm_core.Policies.policy ->
  unit ->
  Rm_sched.Scheduler.t * Rm_faults.Injector.t option
(** One policy under one (optional) fault plan: runs the simulation
    until every submitted job is [Finished] or [Rejected] (or the
    horizon passes) and returns the drained scheduler plus the
    injector's occurrence log. *)

type row = {
  policy : Rm_core.Policies.policy;
  intensity : intensity;
  finished : int;
  rejected : int;
  requeues : int;
  faults_injected : int;
  wasted_node_s : float;
  goodput : float;  (** useful node-seconds / (useful + wasted); 1 without faults *)
  mean_turnaround_s : float;
}

val run :
  ?seed:int ->
  ?job_count:int ->
  ?intensities:intensity list ->
  unit ->
  row list
(** The full sweep (default intensities: [Off; Light; Heavy]) over
    {!Rm_core.Policies.all}. *)

val render : row list -> string

module Json = Rm_telemetry.Json
module Mat = Rm_stats.Matrix

type input = {
  current : Matrix.artifact;
  history : (string * Matrix.artifact) list;
  baseline : Matrix.artifact option;
  ratio : float;
  bench_allocator : Json.t option;
  bench_serve : Json.t option;
  bench_malleable : Json.t option;
}

let make ?(history = []) ?baseline ?(ratio = 2.0) ?bench_allocator ?bench_serve
    ?bench_malleable ~current () =
  {
    current;
    history;
    baseline;
    ratio;
    bench_allocator;
    bench_serve;
    bench_malleable;
  }

let verdicts input =
  match input.baseline with
  | None -> []
  | Some baseline ->
    Matrix.gate ~ratio:input.ratio ~baseline ~current:input.current ()

(* --- shared extraction ------------------------------------------------- *)

let cell_key (c : Matrix.cell) =
  Printf.sprintf "%s/%s/%s" c.Matrix.scenario c.Matrix.policy c.Matrix.engine

let verdict_for gated (c : Matrix.cell) =
  List.find_opt
    (fun (g : Matrix.gated) ->
      g.Matrix.g_scenario = c.Matrix.scenario
      && g.Matrix.g_policy = c.Matrix.policy
      && g.Matrix.g_engine = c.Matrix.engine)
    gated

let verdict_label = function
  | None -> "-"
  | Some (g : Matrix.gated) -> (
    match g.Matrix.verdict with
    | Matrix.Pass -> "pass"
    | Matrix.Fail m -> "FAIL: " ^ m
    | Matrix.Skip_gate m -> "skip: " ^ m)

let rate_str = function
  | None -> "-"
  | Some r -> Printf.sprintf "%.0f" r

let cell_table_header =
  [
    "scenario"; "policy"; "engine"; "status"; "allocs/s"; "reps"; "finished";
    "requeues"; "faults"; "makespan (s)"; "goodput"; "p99 wait (s)"; "verdict";
  ]

let cell_table_row gated (c : Matrix.cell) =
  let sched f d = match c.Matrix.sched with None -> d | Some s -> f s in
  [
    c.Matrix.scenario;
    c.Matrix.policy;
    c.Matrix.engine;
    (match c.Matrix.status with
    | Matrix.Ran -> "ran"
    | Matrix.Skipped reason -> "skipped: " ^ reason);
    rate_str c.Matrix.allocs_per_sec;
    string_of_int c.Matrix.reps;
    sched (fun s -> string_of_int s.Matrix.jobs_finished) "-";
    sched (fun s -> string_of_int s.Matrix.requeues) "-";
    sched (fun s -> string_of_int s.Matrix.faults_injected) "-";
    sched (fun s -> Printf.sprintf "%.0f" s.Matrix.makespan_s) "-";
    sched (fun s -> Printf.sprintf "%.3f" s.Matrix.goodput) "-";
    sched
      (fun s ->
        match s.Matrix.slo with
        | None -> "-"
        | Some slo -> Printf.sprintf "%.1f" slo.Matrix.wait_p99)
      "-";
    verdict_label (verdict_for gated c);
  ]

(* Per-policy scenario × engine grid of allocs/sec; [infinity] marks
   holes (skipped cells, zero budgets), which the ramp renderer prints
   as blanks. *)
let rate_grid (a : Matrix.artifact) policy =
  let scenarios = a.Matrix.spec.Matrix.scenarios in
  let engines = a.Matrix.spec.Matrix.engines in
  let m =
    Mat.create ~rows:(List.length scenarios) ~cols:(List.length engines)
      ~init:infinity
  in
  let any = ref false in
  List.iteri
    (fun i sc ->
      List.iteri
        (fun j en ->
          match
            List.find_opt
              (fun (c : Matrix.cell) ->
                c.Matrix.scenario = sc && c.Matrix.policy = policy
                && c.Matrix.engine = en)
              a.Matrix.cells
          with
          | Some { Matrix.allocs_per_sec = Some r; _ } ->
            any := true;
            Mat.set m i j r
          | _ -> ())
        engines)
    scenarios;
  if !any then Some (Array.of_list scenarios, Array.of_list engines, m)
  else None

(* Sparkline points for one cell across history runs plus current. *)
let trend_points input extract (c : Matrix.cell) =
  let of_artifact (a : Matrix.artifact) =
    Option.bind
      (List.find_opt
         (fun (h : Matrix.cell) ->
           h.Matrix.scenario = c.Matrix.scenario
           && h.Matrix.policy = c.Matrix.policy
           && h.Matrix.engine = c.Matrix.engine)
         a.Matrix.cells)
      extract
  in
  List.filter_map of_artifact
    (List.map snd input.history @ [ input.current ])

(* --- BENCH_*.json ingestion ------------------------------------------- *)

(* rm-bench-allocator/v1: network-load-aware rows per engine across
   cluster sizes V — the scaling trend the scale bench gates on. *)
let allocator_trends j =
  match
    let rows = Json.to_list (Json.member "rows" j) in
    let parsed =
      List.filter_map
        (fun r ->
          match
            ( Json.to_int (Json.member "v" r),
              Json.to_str (Json.member "policy" r),
              Json.to_str (Json.member "engine" r),
              Json.to_float (Json.member "allocs_per_sec" r) )
          with
          | row -> Some row
          | exception Failure _ -> None)
        rows
    in
    let nl =
      List.filter (fun (_, p, _, _) -> p = "network-load-aware") parsed
    in
    let engines =
      List.sort_uniq compare (List.map (fun (_, _, e, _) -> e) nl)
    in
    List.filter_map
      (fun engine ->
        let pts =
          List.sort
            (fun (v1, _, _, _) (v2, _, _, _) -> compare v1 v2)
            (List.filter (fun (_, _, e, _) -> e = engine) nl)
        in
        match pts with
        | [] -> None
        | _ ->
          let vs = List.map (fun (v, _, _, _) -> v) pts in
          let rates = Array.of_list (List.map (fun (_, _, _, r) -> r) pts) in
          Some (engine, vs, rates))
      engines
  with
  | trends -> trends
  | exception Failure _ -> []

(* rm-bench-serve/v1: per-mode daemon rows plus the batched speedup.
   overlaps (double-booked grants) defaults to 0 for pre-overlay
   artifacts. *)
let serve_rows j =
  match
    ( Json.to_list (Json.member "rows" j)
      |> List.filter_map (fun r ->
             match
               ( Json.to_str (Json.member "mode" r),
                 Json.to_float (Json.member "allocs_per_sec" r),
                 Json.to_float (Json.member "p50_ms" r),
                 Json.to_float (Json.member "p99_ms" r),
                 match Json.member "overlaps" r with
                 | Json.Null -> 0
                 | o -> Json.to_int o )
             with
             | row -> Some row
             | exception Failure _ -> None),
      match Json.member "speedup" j with
      | Json.Num s -> Some s
      | _ -> None )
  with
  | rows -> rows
  | exception Failure _ -> ([], None)

(* rm-malleable/v1: one trend row per study arm — rigid/malleable
   makespans, then the two recovery arms' goodput. *)
let malleable_rows j =
  let num section field =
    match Json.member field (Json.member section j) with
    | Json.Num n -> Some n
    | _ -> None
  in
  let arm section fields =
    let vs = List.map (fun f -> num section f) fields in
    if List.for_all Option.is_some vs then
      Some (section, List.map Option.get vs)
    else None
  in
  match
    List.filter_map Fun.id
      [
        arm "rigid" [ "finished"; "makespan_s"; "mean_turnaround_s" ];
        arm "malleable" [ "finished"; "makespan_s"; "mean_turnaround_s" ];
        arm "requeue_recovery" [ "finished"; "goodput"; "wasted_node_s" ];
        arm "shrink_recovery" [ "finished"; "goodput"; "wasted_node_s" ];
      ]
  with
  | rows -> rows
  | exception Failure _ -> []

(* Render one malleable arm as table cells; the field mix differs
   between the study arms and the recovery arms, so label per arm. *)
let malleable_cells (section, vs) =
  match (section, vs) with
  | ("rigid" | "malleable"), [ finished; makespan; turnaround ] ->
    [
      section;
      Printf.sprintf "%.0f" finished;
      Printf.sprintf "makespan %.0fs" makespan;
      Printf.sprintf "turnaround %.0fs" turnaround;
    ]
  | _, [ finished; goodput; wasted ] ->
    [
      section;
      Printf.sprintf "%.0f" finished;
      Printf.sprintf "goodput %.2f" goodput;
      Printf.sprintf "wasted %.0f node-s" wasted;
    ]
  | _, _ -> [ section; "-"; "-"; "-" ]

(* --- markdown ---------------------------------------------------------- *)

let count_status (a : Matrix.artifact) =
  List.fold_left
    (fun (ran, skipped) (c : Matrix.cell) ->
      match c.Matrix.status with
      | Matrix.Ran -> (ran + 1, skipped)
      | Matrix.Skipped _ -> (ran, skipped + 1))
    (0, 0) a.Matrix.cells

let markdown input =
  let a = input.current in
  let gated = verdicts input in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ran, skipped = count_status a in
  add "# RM perf dashboard — spec `%s`\n\n" a.Matrix.spec.Matrix.spec_name;
  add "%d cells (%d ran, %d skipped), seed %d, %d cores, schema `%s`\n\n"
    (List.length a.Matrix.cells) ran skipped a.Matrix.spec.Matrix.seed
    a.Matrix.cores a.Matrix.schema;
  add "## Cells\n\n```\n%s```\n\n"
    (Render.table_str ~header:cell_table_header
       ~rows:(List.map (cell_table_row gated) a.Matrix.cells));
  let grids =
    List.filter_map
      (fun p -> Option.map (fun g -> (p, g)) (rate_grid a p))
      a.Matrix.spec.Matrix.policies
  in
  if grids <> [] then begin
    add "## Heatmaps — allocs/sec (ramp ` .:-=+*#%%@`, dark = fast)\n\n";
    List.iter
      (fun (policy, (row_labels, col_labels, values)) ->
        add "### %s\n\n```\n%s```\n\n" policy
          (Render.heatmap_str ~row_labels ~col_labels ~values ()))
      grids
  end;
  add "## Baseline gate\n\n";
  (match input.baseline with
  | None -> add "no baseline artifact provided — nothing gated\n\n"
  | Some b ->
    if b.Matrix.cores <> a.Matrix.cores then
      add
        "note: baseline ran on %d cores, this run on %d — allocs/sec \
         ratios not compared (deterministic fields still gate)\n\n"
        b.Matrix.cores a.Matrix.cores;
    add "ratio %.1f\n\n```\n%s```\n\n" input.ratio (Matrix.render_gate gated));
  if input.history <> [] then begin
    add "## Trends across runs (%s → current)\n\n"
      (String.concat ", " (List.map fst input.history));
    let rows =
      List.filter_map
        (fun (c : Matrix.cell) ->
          let rates =
            trend_points input (fun h -> h.Matrix.allocs_per_sec) c
          in
          let makespans =
            trend_points input
              (fun h ->
                Option.map (fun s -> s.Matrix.makespan_s) h.Matrix.sched)
              c
          in
          if List.length rates < 2 && List.length makespans < 2 then None
          else
            let spark = function
              | [] | [ _ ] -> "-"
              | pts -> Render.sparkline (Array.of_list pts)
            in
            let last = function
              | [] -> "-"
              | pts -> Printf.sprintf "%.0f" (List.nth pts (List.length pts - 1))
            in
            Some
              [
                cell_key c; spark rates; last rates; spark makespans;
                last makespans;
              ])
        a.Matrix.cells
    in
    if rows = [] then add "not enough overlapping cells to draw trends\n\n"
    else
      add "```\n%s```\n\n"
        (Render.table_str
           ~header:
             [
               "cell"; "allocs/s trend"; "latest"; "makespan trend";
               "latest (s)";
             ]
           ~rows)
  end;
  (match input.bench_allocator with
  | None -> ()
  | Some j -> (
    match allocator_trends j with
    | [] -> ()
    | trends ->
      add
        "## Allocator scaling (BENCH_allocator.json, network-load-aware)\n\n\
         ```\n\
         %s```\n\n"
        (Render.table_str
           ~header:[ "engine"; "allocs/s across V"; "V range"; "at max V" ]
           ~rows:
             (List.map
                (fun (engine, vs, rates) ->
                  [
                    engine;
                    Render.sparkline rates;
                    Printf.sprintf "%d..%d" (List.hd vs)
                      (List.nth vs (List.length vs - 1));
                    Printf.sprintf "%.0f" rates.(Array.length rates - 1);
                  ])
                trends))));
  (match input.bench_serve with
  | None -> ()
  | Some j -> (
    match serve_rows j with
    | [], _ -> ()
    | rows, speedup ->
      add "## Serve daemon (BENCH_serve.json)\n\n```\n%s```\n\n"
        (Render.table_str
           ~header:
             [ "mode"; "allocs/s"; "p50 (ms)"; "p99 (ms)"; "overlaps" ]
           ~rows:
             (List.map
                (fun (mode, rate, p50, p99, overlaps) ->
                  [
                    mode;
                    Printf.sprintf "%.0f" rate;
                    Printf.sprintf "%.1f" p50;
                    Printf.sprintf "%.1f" p99;
                    string_of_int overlaps;
                  ])
                rows));
      match speedup with
      | Some s -> add "batched speedup: %.2fx\n\n" s
      | None -> ()));
  (match input.bench_malleable with
  | None -> ()
  | Some j -> (
    match malleable_rows j with
    | [] -> ()
    | rows ->
      add "## Malleability study (BENCH_malleable.json)\n\n```\n%s```\n\n"
        (Render.table_str
           ~header:[ "arm"; "finished"; "headline"; "detail" ]
           ~rows:(List.map malleable_cells rows))));
  add "## Cells CSV\n\n```\n%s```\n"
    (Render.csv ~header:cell_table_header
       ~rows:(List.map (cell_table_row gated) a.Matrix.cells));
  Buffer.contents buf

(* --- html -------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {css|
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .25rem .55rem; text-align: right; }
th { background: #f2f2f2; }
td.l, th.l { text-align: left; }
.badge { border-radius: .6rem; padding: .1rem .5rem; font-size: .8rem; white-space: nowrap; }
.pass { background: #d4edda; color: #155724; }
.fail { background: #f8d7da; color: #721c24; }
.skip { background: #e2e3e5; color: #41464b; }
.spark { font-family: monospace; letter-spacing: .05em; }
.note { color: #666; font-size: .9rem; }
pre { background: #f7f7f7; padding: .6rem; overflow-x: auto; }
|css}

let verdict_badge = function
  | None -> "<span class=\"badge skip\">-</span>"
  | Some (g : Matrix.gated) -> (
    match g.Matrix.verdict with
    | Matrix.Pass -> "<span class=\"badge pass\">pass</span>"
    | Matrix.Fail m ->
      Printf.sprintf "<span class=\"badge fail\">FAIL: %s</span>" (escape m)
    | Matrix.Skip_gate m ->
      Printf.sprintf "<span class=\"badge skip\">skip: %s</span>" (escape m))

(* Background shade for a heatmap cell: light → saturated blue across
   the grid's finite range, white text once it gets dark. *)
let shade ~lo ~hi v =
  if not (Float.is_finite v) then ""
  else
    let t = if hi <= lo then 1.0 else (v -. lo) /. (hi -. lo) in
    let light = 95.0 -. (55.0 *. t) in
    Printf.sprintf " style=\"background:hsl(210,65%%,%.0f%%);color:%s\"" light
      (if t > 0.55 then "#fff" else "#000")

let html_table ?(first_col_left = true) ~header ~rows () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<table><tr>";
  List.iteri
    (fun i h ->
      Buffer.add_string buf
        (Printf.sprintf "<th%s>%s</th>"
           (if first_col_left && i = 0 then " class=\"l\"" else "")
           (escape h)))
    header;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun row ->
      Buffer.add_string buf "<tr>";
      List.iteri
        (fun i cell ->
          Buffer.add_string buf
            (Printf.sprintf "<td%s>%s</td>"
               (if first_col_left && i = 0 then " class=\"l\"" else "")
               cell))
        row;
      Buffer.add_string buf "</tr>\n")
    rows;
  Buffer.add_string buf "</table>\n";
  Buffer.contents buf

let html input =
  let a = input.current in
  let gated = verdicts input in
  let buf = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ran, skipped = count_status a in
  add
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\">\n\
     <title>RM perf dashboard — %s</title>\n\
     <style>%s</style></head><body>\n"
    (escape a.Matrix.spec.Matrix.spec_name)
    style;
  add "<h1>RM perf dashboard — spec <code>%s</code></h1>\n"
    (escape a.Matrix.spec.Matrix.spec_name);
  add
    "<p class=\"note\">%d cells (%d ran, %d skipped) · seed %d · %d cores · \
     schema <code>%s</code></p>\n"
    (List.length a.Matrix.cells) ran skipped a.Matrix.spec.Matrix.seed
    a.Matrix.cores (escape a.Matrix.schema);
  (* gate banner first: the page's one-glance answer *)
  (match input.baseline with
  | None ->
    add "<p class=\"note\">no baseline artifact — nothing gated</p>\n"
  | Some b ->
    let fails =
      List.filter
        (fun (g : Matrix.gated) ->
          match g.Matrix.verdict with Matrix.Fail _ -> true | _ -> false)
        gated
    in
    if fails = [] then
      add
        "<p><span class=\"badge pass\">gate: all %d compared cells pass \
         (ratio %.1f)</span></p>\n"
        (List.length gated) input.ratio
    else
      add
        "<p><span class=\"badge fail\">gate: %d of %d compared cells FAIL \
         (ratio %.1f)</span></p>\n"
        (List.length fails) (List.length gated) input.ratio;
    if b.Matrix.cores <> a.Matrix.cores then
      add
        "<p class=\"note\">baseline ran on %d cores, this run on %d — \
         allocs/sec ratios not compared (deterministic fields still \
         gate)</p>\n"
        b.Matrix.cores a.Matrix.cores);
  add "<h2>Cells</h2>\n";
  let rows =
    List.map
      (fun (c : Matrix.cell) ->
        let plain = cell_table_row gated c in
        (* replace the trailing plain-text verdict with a badge *)
        List.mapi
          (fun i v ->
            if i = List.length plain - 1 then
              verdict_badge (verdict_for gated c)
            else escape v)
          plain)
      a.Matrix.cells
  in
  Buffer.add_string buf (html_table ~header:cell_table_header ~rows ());
  let grids =
    List.filter_map
      (fun p -> Option.map (fun g -> (p, g)) (rate_grid a p))
      a.Matrix.spec.Matrix.policies
  in
  if grids <> [] then begin
    add "<h2>Heatmaps — allocs/sec</h2>\n";
    List.iter
      (fun (policy, (row_labels, col_labels, values)) ->
        add "<h3>%s</h3>\n<table><tr><th class=\"l\">scenario</th>"
          (escape policy);
        Array.iter (fun c -> add "<th>%s</th>" (escape c)) col_labels;
        add "</tr>\n";
        let lo = ref infinity and hi = ref neg_infinity in
        for i = 0 to Mat.rows values - 1 do
          for j = 0 to Mat.cols values - 1 do
            let v = Mat.get values i j in
            if Float.is_finite v then begin
              lo := Float.min !lo v;
              hi := Float.max !hi v
            end
          done
        done;
        Array.iteri
          (fun i r ->
            add "<tr><td class=\"l\">%s</td>" (escape r);
            for j = 0 to Mat.cols values - 1 do
              let v = Mat.get values i j in
              if Float.is_finite v then
                add "<td%s>%.0f</td>" (shade ~lo:!lo ~hi:!hi v) v
              else add "<td></td>"
            done;
            add "</tr>\n")
          row_labels;
        add "</table>\n")
      grids
  end;
  if input.history <> [] then begin
    add "<h2>Trends across runs (%s → current)</h2>\n"
      (escape (String.concat ", " (List.map fst input.history)));
    let rows =
      List.filter_map
        (fun (c : Matrix.cell) ->
          let rates =
            trend_points input (fun h -> h.Matrix.allocs_per_sec) c
          in
          let makespans =
            trend_points input
              (fun h ->
                Option.map (fun s -> s.Matrix.makespan_s) h.Matrix.sched)
              c
          in
          if List.length rates < 2 && List.length makespans < 2 then None
          else
            let spark = function
              | [] | [ _ ] -> "-"
              | pts ->
                Printf.sprintf "<span class=\"spark\">%s</span>"
                  (escape (Render.sparkline (Array.of_list pts)))
            in
            let last = function
              | [] -> "-"
              | pts ->
                Printf.sprintf "%.0f" (List.nth pts (List.length pts - 1))
            in
            Some
              [
                escape (cell_key c); spark rates; last rates; spark makespans;
                last makespans;
              ])
        a.Matrix.cells
    in
    if rows = [] then
      add "<p class=\"note\">not enough overlapping cells to draw trends</p>\n"
    else
      Buffer.add_string buf
        (html_table
           ~header:
             [
               "cell"; "allocs/s trend"; "latest"; "makespan trend";
               "latest (s)";
             ]
           ~rows ())
  end;
  (match input.bench_allocator with
  | None -> ()
  | Some j -> (
    match allocator_trends j with
    | [] -> ()
    | trends ->
      add
        "<h2>Allocator scaling (BENCH_allocator.json, \
         network-load-aware)</h2>\n";
      Buffer.add_string buf
        (html_table
           ~header:[ "engine"; "allocs/s across V"; "V range"; "at max V" ]
           ~rows:
             (List.map
                (fun (engine, vs, rates) ->
                  [
                    escape engine;
                    Printf.sprintf "<span class=\"spark\">%s</span>"
                      (escape (Render.sparkline rates));
                    Printf.sprintf "%d..%d" (List.hd vs)
                      (List.nth vs (List.length vs - 1));
                    Printf.sprintf "%.0f" rates.(Array.length rates - 1);
                  ])
                trends)
           ())));
  (match input.bench_serve with
  | None -> ()
  | Some j -> (
    match serve_rows j with
    | [], _ -> ()
    | rows, speedup ->
      add "<h2>Serve daemon (BENCH_serve.json)</h2>\n";
      Buffer.add_string buf
        (html_table
           ~header:
             [ "mode"; "allocs/s"; "p50 (ms)"; "p99 (ms)"; "overlaps" ]
           ~rows:
             (List.map
                (fun (mode, rate, p50, p99, overlaps) ->
                  [
                    escape mode;
                    Printf.sprintf "%.0f" rate;
                    Printf.sprintf "%.1f" p50;
                    Printf.sprintf "%.1f" p99;
                    string_of_int overlaps;
                  ])
                rows)
           ());
      match speedup with
      | Some s -> add "<p>batched speedup: %.2fx</p>\n" s
      | None -> ()));
  (match input.bench_malleable with
  | None -> ()
  | Some j -> (
    match malleable_rows j with
    | [] -> ()
    | rows ->
      add "<h2>Malleability study (BENCH_malleable.json)</h2>\n";
      Buffer.add_string buf
        (html_table
           ~header:[ "arm"; "finished"; "headline"; "detail" ]
           ~rows:(List.map (fun r -> List.map escape (malleable_cells r)) rows)
           ())));
  add "<h2>Cells CSV</h2>\n<pre>%s</pre>\n"
    (escape
       (Render.csv ~header:cell_table_header
          ~rows:(List.map (cell_table_row gated) a.Matrix.cells)));
  add "</body></html>\n";
  Buffer.contents buf

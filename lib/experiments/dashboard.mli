(** Render a {!Matrix.artifact} (plus prior artifacts and the standalone
    bench baselines) into a markdown summary and a self-contained HTML
    page — the single pane of glass for perf evidence.

    Both renderers show the same content: the per-cell result table
    with baseline verdicts, per-policy allocs/sec heatmaps over the
    scenario × engine grid, trend sparklines across prior artifacts,
    trend rows ingested from [BENCH_allocator.json]
    (network-load-aware rows per engine across cluster sizes),
    [BENCH_serve.json] (per-mode daemon throughput, latency and
    double-booked grants) and [BENCH_malleable.json] (rigid vs
    malleable and requeue vs shrink recovery), and a CSV appendix. The markdown goes to CI logs and commit comments; the
    HTML is a no-dependency artifact viewable straight from an uploads
    tab. *)

type input = {
  current : Matrix.artifact;
  history : (string * Matrix.artifact) list;
      (** prior runs as (label, artifact), oldest first — sparklines
          append [current] as the last point *)
  baseline : Matrix.artifact option;  (** gate target, if any *)
  ratio : float;  (** throughput gate ratio, see {!Matrix.gate} *)
  bench_allocator : Rm_telemetry.Json.t option;
      (** parsed [BENCH_allocator.json] ([rm-bench-allocator/v1]) *)
  bench_serve : Rm_telemetry.Json.t option;
      (** parsed [BENCH_serve.json] ([rm-bench-serve/v1]) *)
  bench_malleable : Rm_telemetry.Json.t option;
      (** parsed [BENCH_malleable.json] ([rm-malleable/v1]) *)
}

val make :
  ?history:(string * Matrix.artifact) list ->
  ?baseline:Matrix.artifact ->
  ?ratio:float ->
  ?bench_allocator:Rm_telemetry.Json.t ->
  ?bench_serve:Rm_telemetry.Json.t ->
  ?bench_malleable:Rm_telemetry.Json.t ->
  current:Matrix.artifact ->
  unit ->
  input
(** [ratio] defaults to 2.0; everything else to absent. *)

val verdicts : input -> Matrix.gated list
(** The gate result the renderers annotate cells with — empty when
    [baseline] is [None]. *)

val markdown : input -> string
val html : input -> string

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Policies = Rm_core.Policies
module Allocation = Rm_core.Allocation
module Compute_load = Rm_core.Compute_load
module Network_load = Rm_core.Network_load
module Executor = Rm_mpisim.Executor

type env = {
  sim : Sim.t;
  world : World.t;
  monitor : System.t;
  rng : Rng.t;
  horizon : float;
  cadence : System.cadence;
}

let make_env ?cluster ?cadence ~scenario ~seed ~horizon () =
  let cluster =
    match cluster with Some c -> c | None -> Cluster.iitk_reference ()
  in
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario ~seed in
  let rng = Rng.create (seed + 7919) in
  let cadence = Option.value cadence ~default:System.default_cadence in
  let monitor = System.start ~sim ~world ~rng ~cadence ~until:horizon () in
  { sim; world; monitor; rng; horizon; cadence }

let world e = e.world
let cluster e = World.cluster e.world
let rng e = e.rng
let monitor e = e.monitor

let warm e =
  let target = System.warm_up_s e.cadence in
  Sim.run_until e.sim target;
  World.advance e.world ~now:target

let idle e ~seconds =
  let target = Float.max (Sim.now e.sim) (World.now e.world) +. seconds in
  Sim.run_until e.sim target;
  World.advance e.world ~now:target

let sync e =
  Sim.run_until e.sim (World.now e.world)

let snapshot e =
  System.snapshot e.monitor ~time:(Float.max (Sim.now e.sim) (World.now e.world))

type run_result = {
  stats : Executor.stats;
  allocation : Allocation.t;
  group_load : float;
  group_bw_complement : float;
  group_latency_us : float;
}

(* Table 4 columns: the state of the chosen group at allocation time,
   read from the same snapshot the allocator used. *)
let group_metrics ~snap ~weights ~allocation =
  let loads = Compute_load.of_snapshot snap ~weights in
  let net = Network_load.of_snapshot snap ~weights in
  let nodes = Allocation.node_ids allocation in
  let usable = Compute_load.usable loads in
  let known = List.filter (fun n -> List.mem n usable) nodes in
  let load =
    match known with
    | [] -> 0.0
    | _ ->
      List.fold_left
        (fun acc n -> acc +. Compute_load.cpu_load_1m loads ~node:n)
        0.0 known
      /. float_of_int (List.length known)
  in
  let rec pairs acc = function
    | [] -> acc
    | u :: rest -> pairs (List.fold_left (fun a v -> (u, v) :: a) acc rest) rest
  in
  let ps = pairs [] known in
  let avg f =
    match ps with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc (u, v) -> acc +. f u v) 0.0 ps
      /. float_of_int (List.length ps)
  in
  ( load,
    avg (fun u v -> Network_load.bw_complement_mb_s net ~u ~v),
    avg (fun u v -> Network_load.latency_us net ~u ~v) )

let run_app e ~policy ~weights ~request ~app_of =
  sync e;
  let snap = snapshot e in
  match Policies.allocate ~policy ~snapshot:snap ~weights ~request ~rng:e.rng () with
  | Error err -> Fmt.failwith "allocation failed: %a" Allocation.pp_error err
  | Ok allocation ->
    let group_load, group_bw_complement, group_latency_us =
      group_metrics ~snap ~weights ~allocation
    in
    let app = app_of ~ranks:(Allocation.total_procs allocation) in
    let stats = Executor.run ~world:e.world ~allocation ~app () in
    sync e;
    { stats; allocation; group_load; group_bw_complement; group_latency_us }

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let dump_telemetry ?trace_out ?metrics_out () =
  Option.iter
    (fun path -> write_file path (Rm_telemetry.Trace_event.export_buffer ()))
    trace_out;
  Option.iter
    (fun path -> write_file path (Rm_telemetry.Prometheus.render_registry ()))
    metrics_out

let compare_policies e ~weights ~request ~app_of ?(gap_s = 20.0) () =
  List.map
    (fun policy ->
      let result = run_app e ~policy ~weights ~request ~app_of in
      idle e ~seconds:gap_s;
      (policy, result))
    Policies.all

type gain_summary = { average : float; median : float; maximum : float }

let gains_vs ~baseline_times ~ours_times =
  Rm_stats.Descriptive.percent_gain
    ~baseline:(Rm_stats.Descriptive.mean baseline_times)
    ~ours:(Rm_stats.Descriptive.mean ours_times)

let summarize_gains gains =
  {
    average = Rm_stats.Descriptive.mean gains;
    median = Rm_stats.Descriptive.median gains;
    maximum = Rm_stats.Descriptive.max gains;
  }

let pp_gain_summary ppf g =
  Format.fprintf ppf "avg %.1f%% / median %.1f%% / max %.1f%%" g.average
    g.median g.maximum

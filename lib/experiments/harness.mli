(** Shared experiment machinery: a warmed-up simulated cluster with its
    monitor, and the paper's measurement protocol (allocate with each
    policy in sequence, run the job, let the cluster breathe, repeat). *)

type env

val make_env :
  ?cluster:Rm_cluster.Cluster.t ->
  ?cadence:Rm_monitor.System.cadence ->
  scenario:Rm_workload.Scenario.t ->
  seed:int ->
  horizon:float ->
  unit ->
  env
(** [cluster] defaults to {!Rm_cluster.Cluster.iitk_reference}; [cadence]
    to the paper's monitor cadences. [horizon] bounds all daemon
    scheduling (simulated seconds). *)

val world : env -> Rm_workload.World.t
val cluster : env -> Rm_cluster.Cluster.t
val rng : env -> Rm_stats.Rng.t
val monitor : env -> Rm_monitor.System.t

val warm : env -> unit
(** Run the simulation until the monitor has full data (one bandwidth
    sweep + the 15-minute mean horizon). *)

val idle : env -> seconds:float -> unit
(** Let simulated time pass (daemons keep ticking, workload evolves). *)

val sync : env -> unit
(** Catch the monitor's clock up to the world clock (after an MPI run
    advanced the world). *)

val snapshot : env -> Rm_monitor.Snapshot.t

(** {2 Single measured run} *)

type run_result = {
  stats : Rm_mpisim.Executor.stats;
  allocation : Rm_core.Allocation.t;
  group_load : float;
      (** mean 1-min CPU load over allocated nodes at allocation time
          (Table 4 column 2) *)
  group_bw_complement : float;
      (** mean complement of available bandwidth over the group's P2P
          links, MB/s (Table 4 column 3) *)
  group_latency_us : float;  (** mean P2P latency, µs (Table 4 column 4) *)
}

val run_app :
  env ->
  policy:Rm_core.Policies.policy ->
  weights:Rm_core.Weights.t ->
  request:Rm_core.Request.t ->
  app_of:(ranks:int -> Rm_mpisim.App.t) ->
  run_result
(** Snapshot → allocate → execute → sync. Raises [Failure] if the policy
    cannot allocate (no usable nodes). *)

val dump_telemetry : ?trace_out:string -> ?metrics_out:string -> unit -> unit
(** Write the telemetry accumulated so far: [trace_out] gets the trace
    ring as Chrome [trace_event] JSON ({!Rm_telemetry.Trace_event},
    loadable in Perfetto), [metrics_out] a Prometheus text exposition of
    the metric registry ({!Rm_telemetry.Prometheus}). Either may be
    omitted. Useful only when the run happened with
    {!Rm_telemetry.Runtime} enabled. *)

val compare_policies :
  env ->
  weights:Rm_core.Weights.t ->
  request:Rm_core.Request.t ->
  app_of:(ranks:int -> Rm_mpisim.App.t) ->
  ?gap_s:float ->
  unit ->
  (Rm_core.Policies.policy * run_result) list
(** The paper's protocol (§5.1): "ran all four approaches in sequence".
    [gap_s] (default 20 s) of idle time separates consecutive runs. *)

(** {2 Gain accounting (Tables 2 and 3)} *)

type gain_summary = { average : float; median : float; maximum : float }

val gains_vs :
  baseline_times:float array -> ours_times:float array -> float
(** Percent gain of the mean of [ours] over the mean of [baseline]. *)

val summarize_gains : float array -> gain_summary
val pp_gain_summary : Format.formatter -> gain_summary -> unit

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Scheduler = Rm_sched.Scheduler
module Malleable = Rm_malleable.Malleable
module Injector = Rm_faults.Injector
module Json = Rm_telemetry.Json

type queue_row = {
  finished : int;
  makespan_s : float;
  mean_wait_s : float;
  mean_turnaround_s : float;
  grows : int;
  shrinks : int;
  rejected_directives : int;
}

type chaos_row = {
  c_finished : int;
  requeues : int;
  shrink_recoveries : int;
  wasted_node_s : float;
  goodput : float;
  c_mean_turnaround_s : float;
}

type artifact = {
  schema : string;
  seed : int;
  job_count : int;
  cores : int;
  policy : string;
  rigid : queue_row;
  malleable : queue_row;
  requeue_recovery : chaos_row;
  shrink_recovery : chaos_row;
}

let schema_version = "rm-malleable/v1"

(* Every job gets a half-to-double band around its preferred count;
   small jobs keep a floor of 4 so a shrink cannot leave a token rank. *)
let band_of procs =
  Malleable.spec ~min_procs:(max 4 (procs / 2)) ~max_procs:(procs * 2) ()

(* Strong-scaling BSP job: fixed total work split across however many
   ranks the job currently has, so more ranks finish sooner — the
   regime where growing pays. Sized to run for roughly an hour at the
   preferred count: the second-scale miniMD/miniFE runs of Queue_study
   never outlive a negotiation period, so no reconfiguration point can
   land inside them. *)
let synthetic_app ~total_tflops ~name ~ranks =
  let iterations = 40 in
  let flops_per_rank =
    total_tflops *. 1e12 /. float_of_int ranks /. float_of_int iterations
  in
  let bytes = 2e6 in
  let messages =
    if ranks <= 1 then []
    else List.init ranks (fun i -> (i, (i + 1) mod ranks, bytes))
  in
  Rm_mpisim.App.make ~name ~ranks ~iterations
    ~phase:(fun ~iter:_ ->
      {
        Rm_mpisim.App.flops_per_rank = (fun _ -> flops_per_rank);
        messages;
        allreduce_bytes = 64.0;
      })
    ()

(* The Queue_study afternoon's shape — same arrival cadence and procs
   cycle — with hour-scale strong-scaling jobs instead. *)
let job_mix ~job_count ~warm =
  List.init job_count (fun i ->
      let procs = [| 16; 32; 24; 48 |].(i mod 4) in
      let tflops = [| 120.0; 360.0; 200.0; 480.0 |].(i mod 4) in
      let at = warm +. (float_of_int i *. 600.0) in
      (Printf.sprintf "mjob%02d" i, tflops, procs, at))

(* Recovery-only knobs for the chaos comparison: with grow and
   shrink-to-admit off, the two passes differ solely in what happens
   when a running job loses a node. *)
let recovery_only =
  { Malleable.default_config with grow_when_idle = false; shrink_to_admit = false }

let drain ~sim ~sched ~ids ~horizon =
  let terminal id =
    match Scheduler.state sched id with
    | exception Invalid_argument _ -> false
    | Scheduler.Finished _ | Scheduler.Rejected _ -> true
    | Scheduler.Queued | Scheduler.Running _ | Scheduler.Failed _ -> false
  in
  let rec loop () =
    if (not (List.for_all terminal ids)) && Sim.now sim < horizon then begin
      Sim.run_until sim (Sim.now sim +. 600.0);
      loop ()
    end
  in
  loop ()

let directive_counts sched =
  List.fold_left
    (fun (g, s, r) (d : Malleable.record) ->
      match (d.Malleable.verdict, d.Malleable.kind) with
      | Malleable.Accepted, Malleable.Grow -> (g + 1, s, r)
      | Malleable.Accepted, (Malleable.Shrink_admit | Malleable.Shrink_failure)
        -> (g, s + 1, r)
      | Malleable.Rejected _, _ -> (g, s, r + 1))
    (0, 0, 0) (Scheduler.malleable_log sched)

let makespan_of ~warm outcomes =
  if outcomes = [] then 0.0
  else
    List.fold_left
      (fun acc (o : Scheduler.outcome) -> Float.max acc o.Scheduler.finished_at)
      0.0 outcomes
    -. warm

let mean_turnaround outcomes =
  if outcomes = [] then 0.0
  else
    List.fold_left
      (fun acc (o : Scheduler.outcome) ->
        acc +. (o.Scheduler.finished_at -. o.Scheduler.submitted_at))
      0.0 outcomes
    /. float_of_int (List.length outcomes)

(* One queue pass: the hour-scale mix on the normal-scenario world,
   with or without the malleability phase. Same substrate (cluster,
   scenario, seeds, cadence) as Queue_study.run_policy_sched. *)
let run_queue ~seed ~job_count ~policy ~malleable () =
  let sim = Sim.create () in
  let world =
    World.create ~cluster:(Cluster.iitk_reference ()) ~scenario:Scenario.normal
      ~seed
  in
  let rng = Rng.create (seed + 5) in
  let horizon = 100_000.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let config =
    {
      Scheduler.default_config with
      Scheduler.broker = { Broker.default_config with Broker.policy };
      malleable = (if malleable then Some Malleable.default_config else None);
    }
  in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let warm = System.warm_up_s System.default_cadence in
  let ids =
    List.map
      (fun (name, tflops, procs, at) ->
        Scheduler.submit sched ~name ~at
          ?malleable:(if malleable then Some (band_of procs) else None)
          ~request:(Request.make ~ppn:4 ~alpha:0.35 ~procs ())
          ~app_of:(synthetic_app ~total_tflops:tflops ~name) ())
      (job_mix ~job_count ~warm)
  in
  drain ~sim ~sched ~ids ~horizon;
  let outcomes = Scheduler.finished sched in
  let grows, shrinks, rejected_directives = directive_counts sched in
  let mean_wait_s =
    if outcomes = [] then 0.0
    else (Scheduler.summary sched).Scheduler.mean_wait_s
  in
  {
    finished = List.length outcomes;
    makespan_s = makespan_of ~warm outcomes;
    mean_wait_s;
    mean_turnaround_s = mean_turnaround outcomes;
    grows;
    shrinks;
    rejected_directives;
  }

(* One chaos pass: the heavy fault plan over the resilient config, with
   recovery by requeue (malleability off) or by shrinking off the dead
   nodes. *)
let run_chaos ~seed ~job_count ~policy ~shrink () =
  let cluster = Cluster.iitk_reference () in
  let sim = Sim.create () in
  let world = World.create ~cluster ~scenario:Scenario.normal ~seed in
  let rng = Rng.create (seed + 5) in
  let horizon = 100_000.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let config =
    {
      (Chaos_study.resilient_config policy) with
      Scheduler.malleable = (if shrink then Some recovery_only else None);
    }
  in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let warm = System.warm_up_s System.default_cadence in
  (* Light node churn, not Heavy: the hour-scale jobs already give the
     churn plenty of surface (Heavy's aligned switch storms kill every
     job 4+ times and nothing finishes under either recovery mode). *)
  let plan =
    Chaos_study.plan_of_intensity ~cluster ~first_after_s:warm
      ~seed:(seed + 17) Chaos_study.Light
  in
  ignore
    (Option.map
       (fun plan ->
         Injector.inject ~sim ~world ~system:monitor ~until:horizon plan)
       plan);
  let ids =
    List.map
      (fun (name, tflops, procs, at) ->
        Scheduler.submit sched ~name ~at
          ?malleable:(if shrink then Some (band_of procs) else None)
          ~request:(Request.make ~ppn:4 ~alpha:0.35 ~procs ())
          ~app_of:(synthetic_app ~total_tflops:tflops ~name) ())
      (job_mix ~job_count ~warm)
  in
  drain ~sim ~sched ~ids ~horizon;
  let outcomes = Scheduler.finished sched in
  let useful_node_s =
    List.fold_left
      (fun acc (o : Scheduler.outcome) ->
        acc
        +. (o.Scheduler.finished_at -. o.Scheduler.started_at)
           *. float_of_int (List.length o.Scheduler.nodes))
      0.0 outcomes
  in
  let wasted = Scheduler.wasted_node_seconds sched in
  let shrink_recoveries =
    List.length
      (List.filter
         (fun (d : Malleable.record) ->
           d.Malleable.kind = Malleable.Shrink_failure
           && d.Malleable.verdict = Malleable.Accepted)
         (Scheduler.malleable_log sched))
  in
  {
    c_finished = List.length outcomes;
    requeues = Scheduler.requeue_count sched;
    shrink_recoveries;
    wasted_node_s = wasted;
    goodput =
      (if useful_node_s +. wasted <= 0.0 then 1.0
       else useful_node_s /. (useful_node_s +. wasted));
    c_mean_turnaround_s = mean_turnaround outcomes;
  }

let run ?(seed = 83) ?(job_count = 10) ?(policy = Policies.Network_load_aware)
    () =
  {
    schema = schema_version;
    seed;
    job_count;
    cores = Domain.recommended_domain_count ();
    policy = Policies.name policy;
    rigid = run_queue ~seed ~job_count ~policy ~malleable:false ();
    malleable = run_queue ~seed ~job_count ~policy ~malleable:true ();
    requeue_recovery = run_chaos ~seed ~job_count ~policy ~shrink:false ();
    shrink_recovery = run_chaos ~seed ~job_count ~policy ~shrink:true ();
  }

(* --- claims ------------------------------------------------------------ *)

let improvement_failures a =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
  if a.malleable.finished < a.rigid.finished then
    fail "malleable finished %d < rigid %d" a.malleable.finished
      a.rigid.finished;
  if a.malleable.makespan_s >= a.rigid.makespan_s then
    fail "malleable makespan %.1f s not better than rigid %.1f s"
      a.malleable.makespan_s a.rigid.makespan_s;
  if a.malleable.mean_wait_s > a.rigid.mean_wait_s +. 1e-6 then
    fail "malleable mean wait %.1f s worse than rigid %.1f s"
      a.malleable.mean_wait_s a.rigid.mean_wait_s;
  if a.malleable.grows + a.malleable.shrinks < 1 then
    fail "no directive was ever accepted";
  if a.shrink_recovery.goodput < a.requeue_recovery.goodput then
    fail "shrink-recovery goodput %.3f < requeue-recovery %.3f"
      a.shrink_recovery.goodput a.requeue_recovery.goodput;
  if a.shrink_recovery.shrink_recoveries < 1 then
    fail "no shrink recovery ever fired under the fault plan";
  List.rev !fails

let gate ~baseline ~current =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
  if
    baseline.seed <> current.seed
    || baseline.job_count <> current.job_count
    || baseline.policy <> current.policy
  then
    fail "coordinates differ: baseline (%d, %d, %s) vs current (%d, %d, %s)"
      baseline.seed baseline.job_count baseline.policy current.seed
      current.job_count current.policy
  else begin
    let finished name b c = if c < b then fail "%s finished %d < baseline %d" name c b in
    finished "rigid" baseline.rigid.finished current.rigid.finished;
    finished "malleable" baseline.malleable.finished current.malleable.finished;
    finished "requeue-recovery" baseline.requeue_recovery.c_finished
      current.requeue_recovery.c_finished;
    finished "shrink-recovery" baseline.shrink_recovery.c_finished
      current.shrink_recovery.c_finished;
    if current.malleable.makespan_s > baseline.malleable.makespan_s *. 1.05 then
      fail "malleable makespan %.1f s > baseline %.1f s + 5%%"
        current.malleable.makespan_s baseline.malleable.makespan_s;
    if
      current.malleable.mean_wait_s
      > (baseline.malleable.mean_wait_s *. 1.05) +. 1.0
    then
      fail "malleable mean wait %.1f s > baseline %.1f s + 5%%"
        current.malleable.mean_wait_s baseline.malleable.mean_wait_s;
    if current.shrink_recovery.goodput < baseline.shrink_recovery.goodput -. 0.05
    then
      fail "shrink-recovery goodput %.3f < baseline %.3f - 0.05"
        current.shrink_recovery.goodput baseline.shrink_recovery.goodput;
    List.iter (fun m -> fails := m :: !fails) (improvement_failures current)
  end;
  List.rev !fails

(* --- codec ------------------------------------------------------------- *)

let num_i n = Json.Num (float_of_int n)

let queue_row_to_json r =
  Json.Obj
    [
      ("finished", num_i r.finished);
      ("makespan_s", Json.Num r.makespan_s);
      ("mean_wait_s", Json.Num r.mean_wait_s);
      ("mean_turnaround_s", Json.Num r.mean_turnaround_s);
      ("grows", num_i r.grows);
      ("shrinks", num_i r.shrinks);
      ("rejected_directives", num_i r.rejected_directives);
    ]

let queue_row_of_json j =
  {
    finished = Json.to_int (Json.member "finished" j);
    makespan_s = Json.to_float (Json.member "makespan_s" j);
    mean_wait_s = Json.to_float (Json.member "mean_wait_s" j);
    mean_turnaround_s = Json.to_float (Json.member "mean_turnaround_s" j);
    grows = Json.to_int (Json.member "grows" j);
    shrinks = Json.to_int (Json.member "shrinks" j);
    rejected_directives = Json.to_int (Json.member "rejected_directives" j);
  }

let chaos_row_to_json r =
  Json.Obj
    [
      ("finished", num_i r.c_finished);
      ("requeues", num_i r.requeues);
      ("shrink_recoveries", num_i r.shrink_recoveries);
      ("wasted_node_s", Json.Num r.wasted_node_s);
      ("goodput", Json.Num r.goodput);
      ("mean_turnaround_s", Json.Num r.c_mean_turnaround_s);
    ]

let chaos_row_of_json j =
  {
    c_finished = Json.to_int (Json.member "finished" j);
    requeues = Json.to_int (Json.member "requeues" j);
    shrink_recoveries = Json.to_int (Json.member "shrink_recoveries" j);
    wasted_node_s = Json.to_float (Json.member "wasted_node_s" j);
    goodput = Json.to_float (Json.member "goodput" j);
    c_mean_turnaround_s = Json.to_float (Json.member "mean_turnaround_s" j);
  }

let to_json a =
  Json.Obj
    [
      ("schema", Json.Str a.schema);
      ("seed", num_i a.seed);
      ("job_count", num_i a.job_count);
      ("cores", num_i a.cores);
      ("policy", Json.Str a.policy);
      ("rigid", queue_row_to_json a.rigid);
      ("malleable", queue_row_to_json a.malleable);
      ("requeue_recovery", chaos_row_to_json a.requeue_recovery);
      ("shrink_recovery", chaos_row_to_json a.shrink_recovery);
    ]

let to_string a = Json.to_string (to_json a)

let of_json j =
  match
    let schema = Json.to_str (Json.member "schema" j) in
    if schema <> schema_version then
      failwith
        (Printf.sprintf "Malleable_study: schema %S, want %S" schema
           schema_version);
    {
      schema;
      seed = Json.to_int (Json.member "seed" j);
      job_count = Json.to_int (Json.member "job_count" j);
      cores = Json.to_int (Json.member "cores" j);
      policy = Json.to_str (Json.member "policy" j);
      rigid = queue_row_of_json (Json.member "rigid" j);
      malleable = queue_row_of_json (Json.member "malleable" j);
      requeue_recovery = chaos_row_of_json (Json.member "requeue_recovery" j);
      shrink_recovery = chaos_row_of_json (Json.member "shrink_recovery" j);
    }
  with
  | a -> Ok a
  | exception Failure m -> Error m

let of_string s =
  match Json.of_string s with
  | exception Failure m -> Error m
  | j -> of_json j

(* --- render ------------------------------------------------------------ *)

let render a =
  let queue_row name (r : queue_row) =
    [
      name;
      string_of_int r.finished;
      Printf.sprintf "%.0f" r.makespan_s;
      Printf.sprintf "%.0f" r.mean_wait_s;
      Printf.sprintf "%.1f" r.mean_turnaround_s;
      string_of_int r.grows;
      string_of_int r.shrinks;
      string_of_int r.rejected_directives;
    ]
  in
  let chaos_row name (r : chaos_row) =
    [
      name;
      string_of_int r.c_finished;
      string_of_int r.requeues;
      string_of_int r.shrink_recoveries;
      Printf.sprintf "%.0f" r.wasted_node_s;
      Printf.sprintf "%.3f" r.goodput;
      Printf.sprintf "%.1f" r.c_mean_turnaround_s;
    ]
  in
  let verdict =
    match improvement_failures a with
    | [] -> "verdict: malleability pays for itself on both comparisons\n"
    | fails ->
      "verdict: CLAIMS VIOLATED\n  "
      ^ String.concat "\n  " fails
      ^ "\n"
  in
  Printf.sprintf
    "Malleable study — an hour-scale afternoon under policy %s, rigid vs\n\
     grow/shrink at reconfiguration points; then light node churn with\n\
     requeue-recovery vs shrink-recovery\n\n%s\n%s\n%s"
    a.policy
    (Render.table_str
       ~header:
         [
           "schedule"; "finished"; "makespan (s)"; "mean wait (s)";
           "turnaround (s)"; "grows"; "shrinks"; "rejected";
         ]
       ~rows:
         [ queue_row "rigid" a.rigid; queue_row "malleable" a.malleable ])
    (Render.table_str
       ~header:
         [
           "recovery"; "finished"; "requeues"; "shrink-recoveries";
           "wasted node-s"; "goodput"; "turnaround (s)";
         ]
       ~rows:
         [
           chaos_row "requeue" a.requeue_recovery;
           chaos_row "shrink" a.shrink_recovery;
         ])
    verdict

(** The malleability study behind [bench malleable]: does letting jobs
    grow/shrink at reconfiguration points beat the rigid scheduler on
    the same workload, and does shrink-recovery beat requeue-recovery
    under faults?

    Two paired comparisons, both fully deterministic (virtual time,
    seeded RNG, no wall clock anywhere):

    - {b queue}: the {!Queue_study} afternoon's shape (same arrival
      cadence and procs cycle) with hour-scale strong-scaling BSP jobs,
      through the batch scheduler twice — once rigid (malleability off)
      and once with every job declaring a [procs/2 .. procs*2] band
      under {!Rm_malleable.Malleable.default_config}. Compared on
      makespan, mean wait and turnaround, with the accepted/rejected
      directive counts from {!Rm_sched.Scheduler.malleable_log};
    - {b chaos}: the same mix under the {!Chaos_study} light node-churn
      plan with the resilient scheduler config, once recovering failed
      jobs by requeue and once by shrinking off the dead nodes
      (grow/shrink-to-admit disabled so the recovery path is the only
      difference). Compared on goodput and wasted node-seconds.

    The artifact serializes under {!schema_version} and is committed as
    BENCH_malleable.json; {!gate} compares a run against that baseline
    in CI. Every gated field is virtual-time deterministic, so the gate
    applies regardless of host speed — [cores] is recorded only so a
    future wall-clock field can be gated host-awarely like the other
    bench baselines (docs/OBSERVABILITY.md §6). *)

type queue_row = {
  finished : int;
  makespan_s : float;  (** last finish minus monitor warm-up *)
  mean_wait_s : float;
  mean_turnaround_s : float;
  grows : int;  (** accepted grow directives *)
  shrinks : int;  (** accepted shrink-to-admit directives *)
  rejected_directives : int;
}

type chaos_row = {
  c_finished : int;
  requeues : int;
  shrink_recoveries : int;  (** accepted shrink-on-failure directives *)
  wasted_node_s : float;
  goodput : float;  (** useful node-s / (useful + wasted) *)
  c_mean_turnaround_s : float;
}

type artifact = {
  schema : string;  (** always {!schema_version} *)
  seed : int;
  job_count : int;
  cores : int;  (** producing host, for future host-aware fields *)
  policy : string;  (** broker policy both comparisons ran under *)
  rigid : queue_row;
  malleable : queue_row;
  requeue_recovery : chaos_row;
  shrink_recovery : chaos_row;
}

val schema_version : string
(** ["rm-malleable/v1"]. *)

val run :
  ?seed:int -> ?job_count:int -> ?policy:Rm_core.Policies.policy -> unit ->
  artifact
(** Runs all four scheduler passes (seed 83, 10 jobs,
    network-load-aware by default). *)

val improvement_failures : artifact -> string list
(** The study's own claims, checked at generation time: the malleable
    pass must finish at least as many jobs with a strictly smaller
    makespan and no worse mean wait than the rigid pass, with at least
    one accepted directive; shrink-recovery goodput must be at least
    requeue-recovery goodput with at least one shrink recovery. Empty
    when every claim holds. *)

val gate : baseline:artifact -> current:artifact -> string list
(** CI regression gate against the committed artifact: same
    [(seed, job_count, policy)] coordinates, no fewer jobs finished in
    any pass, malleable makespan and mean wait within 5% of baseline,
    shrink-recovery goodput within 0.05 of baseline, and
    {!improvement_failures} still empty. Returns failure messages;
    empty means pass. *)

val to_json : artifact -> Rm_telemetry.Json.t
val to_string : artifact -> string

val of_json : Rm_telemetry.Json.t -> (artifact, string) result
val of_string : string -> (artifact, string) result
(** [Error] on parse failure or schema mismatch — never raises. *)

val render : artifact -> string
(** The two comparison tables plus a one-line verdict. *)

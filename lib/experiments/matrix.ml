module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Weights = Rm_core.Weights
module Scheduler = Rm_sched.Scheduler
module Slo = Rm_sched.Slo
module Malleable = Rm_malleable.Malleable
module Injector = Rm_faults.Injector
module Json = Rm_telemetry.Json
module Metrics = Rm_telemetry.Metrics

(* --- spec ------------------------------------------------------------- *)

type family =
  | Background of Scenario.t
  | Replay of { hours : float; period_s : float }
  | Chaos of Chaos_study.intensity
  | Malleable_family of Scenario.t

let family_names =
  [
    "uniform"; "hotspot"; "diurnal"; "trace-replay"; "chaos-off";
    "chaos-light"; "chaos-heavy"; "malleable";
  ]

let family_of_name = function
  | "uniform" -> Some (Background Scenario.normal)
  | "hotspot" -> Some (Background (Scenario.hotspot ~switch:0))
  | "diurnal" -> Some (Background Scenario.nightly)
  | "trace-replay" -> Some (Replay { hours = 2.0; period_s = 60.0 })
  | "chaos-off" -> Some (Chaos Chaos_study.Off)
  | "chaos-light" -> Some (Chaos Chaos_study.Light)
  | "chaos-heavy" -> Some (Chaos Chaos_study.Heavy)
  | "malleable" -> Some (Malleable_family Scenario.normal)
  | other -> Option.map (fun sc -> Background sc) (Scenario.by_name other)

type engine = Naive | Dense | Dense_par of int | Hier | Auto

let engine_name = function
  | Naive -> "naive"
  | Dense -> "dense"
  | Dense_par n -> Printf.sprintf "dense-par%d" n
  | Hier -> "hierarchical"
  | Auto -> "auto"

let dense_par_prefix = "dense-par"

let engine_of_name = function
  | "naive" -> Some Naive
  | "dense" -> Some Dense
  | "hierarchical" -> Some Hier
  | "auto" -> Some Auto
  | s when String.starts_with ~prefix:dense_par_prefix s -> (
    let rest =
      String.sub s
        (String.length dense_par_prefix)
        (String.length s - String.length dense_par_prefix)
    in
    match int_of_string_opt rest with
    | Some n when n >= 1 -> Some (Dense_par n)
    | _ -> None)
  | _ -> None

type budget = { alloc_budget_s : float; job_count : int }
type rule_action = Skip of string | Budget of budget

type rule = {
  on_scenario : string option;
  on_policy : string option;
  on_engine : string option;
  action : rule_action;
}

type spec = {
  spec_name : string;
  seed : int;
  scenarios : string list;
  policies : string list;
  engines : string list;
  budget : budget;
  rules : rule list;
}

let quick_spec =
  {
    spec_name = "quick";
    seed = 83;
    scenarios = [ "uniform"; "hotspot"; "chaos-heavy"; "malleable" ];
    policies = [ "random"; "load-aware"; "network-load-aware" ];
    engines = [ "naive"; "dense"; "hierarchical" ];
    budget = { alloc_budget_s = 0.05; job_count = 3 };
    rules = [];
  }

let full_spec =
  {
    spec_name = "full";
    seed = 83;
    scenarios =
      [
        "uniform"; "hotspot"; "diurnal"; "trace-replay"; "chaos-heavy";
        "malleable";
      ];
    policies = [ "random"; "load-aware"; "network-load-aware" ];
    engines = [ "naive"; "dense"; "dense-par4"; "hierarchical"; "auto" ];
    budget = { alloc_budget_s = 0.5; job_count = 10 };
    rules =
      [
        (* The engine axis only changes the network-load-aware code
           path; other policies take the same path under every engine,
           so sweeping them per engine is pure repetition. *)
        {
          on_scenario = None;
          on_policy = Some "random";
          on_engine = Some "dense-par4";
          action = Skip "engine-invariant policy";
        };
        {
          on_scenario = None;
          on_policy = Some "random";
          on_engine = Some "auto";
          action = Skip "engine-invariant policy";
        };
        {
          on_scenario = None;
          on_policy = Some "load-aware";
          on_engine = Some "dense-par4";
          action = Skip "engine-invariant policy";
        };
        {
          on_scenario = None;
          on_policy = Some "load-aware";
          on_engine = Some "auto";
          action = Skip "engine-invariant policy";
        };
      ];
  }

let validate_budget b =
  if b.job_count < 1 then Error "budget job_count must be >= 1"
  else if not (b.alloc_budget_s >= 0.0) then
    Error "budget alloc_budget_s must be >= 0"
  else Ok ()

let validate_spec spec =
  let ( let* ) = Result.bind in
  let check what resolve names =
    if names = [] then Error (Printf.sprintf "spec has no %ss" what)
    else
      List.fold_left
        (fun acc n ->
          let* () = acc in
          match resolve n with
          | Some _ -> Ok ()
          | None -> Error (Printf.sprintf "unknown %s %S" what n))
        (Ok ()) names
  in
  let* () = check "scenario" family_of_name spec.scenarios in
  let* () = check "policy" Policies.of_name spec.policies in
  let* () = check "engine" engine_of_name spec.engines in
  let* () = validate_budget spec.budget in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      match r.action with Budget b -> validate_budget b | Skip _ -> Ok ())
    (Ok ()) spec.rules

(* --- deterministic seeding -------------------------------------------- *)

let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let cell_seed ~seed ~scenario ~policy ~engine =
  (seed + fnv1a (scenario ^ "|" ^ policy ^ "|" ^ engine)) land 0x3FFFFFFF

(* --- results ---------------------------------------------------------- *)

type slo_summary = {
  wait_p50 : float;
  wait_p90 : float;
  wait_p99 : float;
  mean_wait_s : float;
  max_queue_depth : int;
  mean_queue_depth : float;
}

type sched_result = {
  jobs_finished : int;
  rejected : int;
  requeues : int;
  faults_injected : int;
  makespan_s : float;
  goodput : float;
  mean_turnaround_s : float;
  slo : slo_summary option;
  counters : (string * float) list;
}

type status = Ran | Skipped of string

type cell = {
  scenario : string;
  policy : string;
  engine : string;
  status : status;
  allocs_per_sec : float option;
  reps : int;
  sched : sched_result option;
}

type artifact = { schema : string; spec : spec; cores : int; cells : cell list }

let schema_version = "rm-matrix/v1"

let selected_counters =
  [
    "core.allocations"; "core.broker.allocated"; "core.broker.wait";
    "core.broker.stale_excluded"; "sched.jobs_dispatched"; "sched.requeues";
    "sched.backfill_hits"; "sched.malleable.grows"; "sched.malleable.shrinks";
    "sched.malleable.rejected"; "sched.malleable.shrink_recoveries";
    "faults.injected"; "faults.recovered"; "core.model_cache.hits";
    "core.model_cache.misses";
  ]

(* --- rule application ------------------------------------------------- *)

let rule_matches r ~scenario ~policy ~engine =
  let ok sel v = match sel with None -> true | Some x -> x = v in
  ok r.on_scenario scenario && ok r.on_policy policy && ok r.on_engine engine

let skip_of spec ~scenario ~policy ~engine =
  List.find_map
    (fun r ->
      if rule_matches r ~scenario ~policy ~engine then
        match r.action with Skip reason -> Some reason | Budget _ -> None
      else None)
    spec.rules

let budget_of spec ~scenario ~policy ~engine =
  Option.value ~default:spec.budget
    (List.find_map
       (fun r ->
         if rule_matches r ~scenario ~policy ~engine then
           match r.action with Budget b -> Some b | Skip _ -> None
         else None)
       spec.rules)

(* The scheduler run is shared across the engine axis, so its job_count
   must not depend on the engine: only engine-agnostic budget rules
   apply. *)
let sched_budget_of spec ~scenario ~policy =
  Option.value ~default:spec.budget
    (List.find_map
       (fun r ->
         if r.on_engine = None && rule_matches r ~scenario ~policy ~engine:""
         then match r.action with Budget b -> Some b | Skip _ -> None
         else None)
       spec.rules)

(* --- scheduler-level measurement -------------------------------------- *)

let warm_s () = System.warm_up_s System.default_cadence

let world_of_family ~family ~cluster ~seed =
  match family with
  | Background sc | Malleable_family sc -> World.create ~cluster ~scenario:sc ~seed
  | Chaos _ -> World.create ~cluster ~scenario:Scenario.normal ~seed
  | Replay { hours; period_s } ->
    let source = World.create ~cluster ~scenario:Scenario.normal ~seed in
    let traces = World.record_traces source ~hours ~period_s in
    World.create_replay ~cluster ~traces ~seed ()

let counter_sum views name =
  List.fold_left
    (fun acc (v : Metrics.view) ->
      if v.Metrics.name = name then acc +. v.Metrics.value else acc)
    0.0 views

(* One (scenario, policy) scheduler run: the Queue_study job mix through
   the batch scheduler on the family's world, chaos plans injected when
   the family asks for them. Runs inside its own telemetry window
   (enabled + reset) so the captured counters belong to this cell
   alone. *)
let run_sched_cell ~family ~policy ~seed ~job_count =
  Rm_telemetry.Runtime.with_enabled @@ fun () ->
  Metrics.reset ();
  Rm_core.Model_cache.clear ();
  let cluster = Cluster.iitk_reference () in
  let horizon = 100_000.0 in
  let sim = Sim.create () in
  let world = world_of_family ~family ~cluster ~seed in
  let rng = Rng.create (seed + 5) in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let warm = warm_s () in
  let config =
    match family with
    | Chaos _ -> Chaos_study.resilient_config policy
    | Background _ | Replay _ ->
      {
        Scheduler.default_config with
        Scheduler.broker = { Broker.default_config with Broker.policy };
      }
    | Malleable_family _ ->
      {
        Scheduler.default_config with
        Scheduler.broker = { Broker.default_config with Broker.policy };
        malleable = Some Malleable.default_config;
      }
  in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let injector =
    match family with
    | Chaos intensity ->
      Option.map
        (fun plan ->
          Injector.inject ~sim ~world ~system:monitor ~until:horizon plan)
        (Chaos_study.plan_of_intensity ~cluster ~first_after_s:warm ~seed
           intensity)
    | Background _ | Replay _ | Malleable_family _ -> None
  in
  let malleable_spec procs =
    match family with
    | Malleable_family _ ->
      Some
        (Malleable.spec
           ~min_procs:(max 4 (procs / 2))
           ~max_procs:(procs * 2) ())
    | Background _ | Replay _ | Chaos _ -> None
  in
  let ids =
    List.map
      (fun (name, kind, procs, at) ->
        Scheduler.submit sched ~name ~at
          ?malleable:(malleable_spec procs)
          ~request:(Request.make ~ppn:4 ~alpha:0.35 ~procs ())
          ~app_of:(Queue_study.app_of_kind kind) ())
      (Queue_study.job_mix ~job_count ~warm)
  in
  let terminal id =
    match Scheduler.state sched id with
    | exception Invalid_argument _ -> false
    | Scheduler.Finished _ | Scheduler.Rejected _ -> true
    | Scheduler.Queued | Scheduler.Running _ | Scheduler.Failed _ -> false
  in
  let rec drain () =
    if (not (List.for_all terminal ids)) && Sim.now sim < horizon then begin
      Sim.run_until sim (Sim.now sim +. 600.0);
      drain ()
    end
  in
  drain ();
  let outcomes = Scheduler.finished sched in
  let useful_node_s =
    List.fold_left
      (fun acc (o : Scheduler.outcome) ->
        acc
        +. (o.Scheduler.finished_at -. o.Scheduler.started_at)
           *. float_of_int (List.length o.Scheduler.nodes))
      0.0 outcomes
  in
  let wasted = Scheduler.wasted_node_seconds sched in
  let slo =
    match Slo.report ~sched ~policy:(Policies.name policy) with
    | Ok (r : Slo.report) ->
      Some
        {
          wait_p50 = r.Slo.wait.Slo.p50;
          wait_p90 = r.Slo.wait.Slo.p90;
          wait_p99 = r.Slo.wait.Slo.p99;
          mean_wait_s = r.Slo.mean_wait_s;
          max_queue_depth = r.Slo.max_queue_depth;
          mean_queue_depth = r.Slo.mean_queue_depth;
        }
    | Error `No_wait_data -> None
  in
  let views = Metrics.snapshot () in
  {
    jobs_finished = List.length outcomes;
    rejected = List.length (Scheduler.rejected sched);
    requeues = Scheduler.requeue_count sched;
    faults_injected =
      (match injector with Some i -> Injector.injected i | None -> 0);
    makespan_s =
      (if outcomes = [] then 0.0
       else
         List.fold_left
           (fun acc (o : Scheduler.outcome) ->
             Float.max acc o.Scheduler.finished_at)
           0.0 outcomes
         -. warm);
    goodput =
      (if useful_node_s +. wasted <= 0.0 then 1.0
       else useful_node_s /. (useful_node_s +. wasted));
    mean_turnaround_s =
      (if outcomes = [] then 0.0
       else
         List.fold_left
           (fun acc (o : Scheduler.outcome) ->
             acc +. (o.Scheduler.finished_at -. o.Scheduler.submitted_at))
           0.0 outcomes
         /. float_of_int (List.length outcomes));
    slo;
    counters = List.map (fun n -> (n, counter_sum views n)) selected_counters;
  }

(* --- allocator-throughput measurement --------------------------------- *)

(* An oracle snapshot of the family's world one virtual hour in — the
   allocator input every engine of the scenario's row scores against. *)
let snapshot_of_family ~family ~seed =
  let cluster = Cluster.iitk_reference () in
  let world = world_of_family ~family ~cluster ~seed in
  let time = 3600.0 in
  World.advance world ~now:time;
  Snapshot.of_truth ~time ~world

let allocate_with ~engine ~policy ~snapshot ~weights ~request ~rng =
  match engine with
  | Naive -> Policies.allocate_naive ~policy ~snapshot ~weights ~request ~rng
  | Dense ->
    Policies.allocate ~ndomains:1 ~engine:Policies.Flat ~policy ~snapshot
      ~weights ~request ~rng ()
  | Dense_par n ->
    Policies.allocate ~ndomains:n ~engine:Policies.Flat ~policy ~snapshot
      ~weights ~request ~rng ()
  | Hier ->
    Policies.allocate ~engine:Policies.Grouped ~policy ~snapshot ~weights
      ~request ~rng ()
  | Auto -> Policies.allocate ~policy ~snapshot ~weights ~request ~rng ()

let rep_cap = 200_000

let measure_rate ~snapshot ~policy ~engine ~budget_s =
  if budget_s <= 0.0 then (None, 0)
  else begin
    Rm_core.Model_cache.clear ();
    let rng = Rng.create 42 in
    let weights = Weights.paper_default in
    let request = Request.make ~ppn:4 ~alpha:0.5 ~procs:16 () in
    let call () =
      ignore (allocate_with ~engine ~policy ~snapshot ~weights ~request ~rng)
    in
    (* one warm-up call primes the model cache so the loop measures the
       steady state, like bench scale's warm rows *)
    call ();
    let t0 = Unix.gettimeofday () in
    let rec loop reps =
      call ();
      let reps = reps + 1 in
      if Unix.gettimeofday () -. t0 >= budget_s || reps >= rep_cap then reps
      else loop reps
    in
    let reps = loop 0 in
    let elapsed = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
    (Some (float_of_int reps /. elapsed), reps)
  end

(* --- run -------------------------------------------------------------- *)

let run spec =
  (match validate_spec spec with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "Matrix.run: %s" m));
  let sched_memo : (string * string, sched_result) Hashtbl.t =
    Hashtbl.create 16
  in
  let snap_memo : (string, Snapshot.t) Hashtbl.t = Hashtbl.create 8 in
  let cells =
    List.concat_map
      (fun scenario ->
        let family = Option.get (family_of_name scenario) in
        List.concat_map
          (fun pname ->
            let policy = Option.get (Policies.of_name pname) in
            List.map
              (fun ename ->
                let engine = Option.get (engine_of_name ename) in
                match skip_of spec ~scenario ~policy:pname ~engine:ename with
                | Some reason ->
                  {
                    scenario;
                    policy = pname;
                    engine = ename;
                    status = Skipped reason;
                    allocs_per_sec = None;
                    reps = 0;
                    sched = None;
                  }
                | None ->
                  let sched =
                    match Hashtbl.find_opt sched_memo (scenario, pname) with
                    | Some r -> r
                    | None ->
                      let seed =
                        cell_seed ~seed:spec.seed ~scenario ~policy:pname
                          ~engine:"sched"
                      in
                      let job_count =
                        (sched_budget_of spec ~scenario ~policy:pname)
                          .job_count
                      in
                      let r = run_sched_cell ~family ~policy ~seed ~job_count in
                      Hashtbl.add sched_memo (scenario, pname) r;
                      r
                  in
                  let snapshot =
                    match Hashtbl.find_opt snap_memo scenario with
                    | Some s -> s
                    | None ->
                      let seed =
                        cell_seed ~seed:spec.seed ~scenario ~policy:"*"
                          ~engine:"snapshot"
                      in
                      let s = snapshot_of_family ~family ~seed in
                      Hashtbl.add snap_memo scenario s;
                      s
                  in
                  let budget =
                    budget_of spec ~scenario ~policy:pname ~engine:ename
                  in
                  let rate, reps =
                    measure_rate ~snapshot ~policy ~engine
                      ~budget_s:budget.alloc_budget_s
                  in
                  {
                    scenario;
                    policy = pname;
                    engine = ename;
                    status = Ran;
                    allocs_per_sec = rate;
                    reps;
                    sched = Some sched;
                  })
              spec.engines)
          spec.policies)
      spec.scenarios
  in
  {
    schema = schema_version;
    spec;
    cores = Domain.recommended_domain_count ();
    cells;
  }

(* --- codec ------------------------------------------------------------ *)

let num_i n = Json.Num (float_of_int n)
let strs l = Json.Arr (List.map (fun s -> Json.Str s) l)

let budget_to_json b =
  Json.Obj
    [
      ("alloc_budget_s", Json.Num b.alloc_budget_s);
      ("job_count", num_i b.job_count);
    ]

let budget_of_json j =
  {
    alloc_budget_s = Json.to_float (Json.member "alloc_budget_s" j);
    job_count = Json.to_int (Json.member "job_count" j);
  }

let rule_to_json r =
  let sel name = function
    | None -> []
    | Some v -> [ (name, Json.Str v) ]
  in
  Json.Obj
    (sel "scenario" r.on_scenario
    @ sel "policy" r.on_policy
    @ sel "engine" r.on_engine
    @
    match r.action with
    | Skip reason -> [ ("action", Json.Str "skip"); ("reason", Json.Str reason) ]
    | Budget b -> [ ("action", Json.Str "budget"); ("budget", budget_to_json b) ]
    )

let opt_member name j =
  match Json.member name j with Json.Null -> None | v -> Some v

let rule_of_json j =
  {
    on_scenario = Option.map Json.to_str (opt_member "scenario" j);
    on_policy = Option.map Json.to_str (opt_member "policy" j);
    on_engine = Option.map Json.to_str (opt_member "engine" j);
    action =
      (match Json.to_str (Json.member "action" j) with
      | "skip" -> Skip (Json.to_str (Json.member "reason" j))
      | "budget" -> Budget (budget_of_json (Json.member "budget" j))
      | other -> failwith (Printf.sprintf "Matrix: unknown rule action %S" other));
  }

let spec_to_json spec =
  Json.Obj
    [
      ("name", Json.Str spec.spec_name);
      ("seed", num_i spec.seed);
      ("scenarios", strs spec.scenarios);
      ("policies", strs spec.policies);
      ("engines", strs spec.engines);
      ("budget", budget_to_json spec.budget);
      ("rules", Json.Arr (List.map rule_to_json spec.rules));
    ]

let spec_of_json j =
  {
    spec_name = Json.to_str (Json.member "name" j);
    seed = Json.to_int (Json.member "seed" j);
    scenarios = List.map Json.to_str (Json.to_list (Json.member "scenarios" j));
    policies = List.map Json.to_str (Json.to_list (Json.member "policies" j));
    engines = List.map Json.to_str (Json.to_list (Json.member "engines" j));
    budget = budget_of_json (Json.member "budget" j);
    rules = List.map rule_of_json (Json.to_list (Json.member "rules" j));
  }

let slo_to_json s =
  Json.Obj
    [
      ("wait_p50", Json.Num s.wait_p50);
      ("wait_p90", Json.Num s.wait_p90);
      ("wait_p99", Json.Num s.wait_p99);
      ("mean_wait_s", Json.Num s.mean_wait_s);
      ("max_queue_depth", num_i s.max_queue_depth);
      ("mean_queue_depth", Json.Num s.mean_queue_depth);
    ]

let slo_of_json j =
  {
    wait_p50 = Json.to_float (Json.member "wait_p50" j);
    wait_p90 = Json.to_float (Json.member "wait_p90" j);
    wait_p99 = Json.to_float (Json.member "wait_p99" j);
    mean_wait_s = Json.to_float (Json.member "mean_wait_s" j);
    max_queue_depth = Json.to_int (Json.member "max_queue_depth" j);
    mean_queue_depth = Json.to_float (Json.member "mean_queue_depth" j);
  }

let sched_to_json s =
  Json.Obj
    [
      ("jobs_finished", num_i s.jobs_finished);
      ("rejected", num_i s.rejected);
      ("requeues", num_i s.requeues);
      ("faults_injected", num_i s.faults_injected);
      ("makespan_s", Json.Num s.makespan_s);
      ("goodput", Json.Num s.goodput);
      ("mean_turnaround_s", Json.Num s.mean_turnaround_s);
      ("slo", match s.slo with None -> Json.Null | Some s -> slo_to_json s);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.counters) );
    ]

let sched_of_json j =
  {
    jobs_finished = Json.to_int (Json.member "jobs_finished" j);
    rejected = Json.to_int (Json.member "rejected" j);
    requeues = Json.to_int (Json.member "requeues" j);
    faults_injected = Json.to_int (Json.member "faults_injected" j);
    makespan_s = Json.to_float (Json.member "makespan_s" j);
    goodput = Json.to_float (Json.member "goodput" j);
    mean_turnaround_s = Json.to_float (Json.member "mean_turnaround_s" j);
    slo = Option.map slo_of_json (opt_member "slo" j);
    counters =
      (match Json.member "counters" j with
      | Json.Obj fields -> List.map (fun (k, v) -> (k, Json.to_float v)) fields
      | _ -> failwith "Matrix: counters is not an object");
  }

let cell_to_json c =
  Json.Obj
    ([
       ("scenario", Json.Str c.scenario);
       ("policy", Json.Str c.policy);
       ("engine", Json.Str c.engine);
     ]
    @ (match c.status with
      | Ran -> [ ("status", Json.Str "ran") ]
      | Skipped reason ->
        [ ("status", Json.Str "skipped"); ("skip_reason", Json.Str reason) ])
    @ [
        ( "allocs_per_sec",
          match c.allocs_per_sec with None -> Json.Null | Some r -> Json.Num r
        );
        ("reps", num_i c.reps);
        ("sched", match c.sched with None -> Json.Null | Some s -> sched_to_json s);
      ])

let cell_of_json j =
  {
    scenario = Json.to_str (Json.member "scenario" j);
    policy = Json.to_str (Json.member "policy" j);
    engine = Json.to_str (Json.member "engine" j);
    status =
      (match Json.to_str (Json.member "status" j) with
      | "ran" -> Ran
      | "skipped" -> Skipped (Json.to_str (Json.member "skip_reason" j))
      | other -> failwith (Printf.sprintf "Matrix: unknown status %S" other));
    allocs_per_sec =
      Option.map Json.to_float (opt_member "allocs_per_sec" j);
    reps = Json.to_int (Json.member "reps" j);
    sched = Option.map sched_of_json (opt_member "sched" j);
  }

let to_json a =
  Json.Obj
    [
      ("schema", Json.Str a.schema);
      ("spec", spec_to_json a.spec);
      ("cores", num_i a.cores);
      ("cells", Json.Arr (List.map cell_to_json a.cells));
    ]

let to_string a = Json.to_string (to_json a)

let of_json j =
  match
    let schema = Json.to_str (Json.member "schema" j) in
    if schema <> schema_version then
      failwith
        (Printf.sprintf "Matrix: schema %S, want %S" schema schema_version);
    {
      schema;
      spec = spec_of_json (Json.member "spec" j);
      cores = Json.to_int (Json.member "cores" j);
      cells = List.map cell_of_json (Json.to_list (Json.member "cells" j));
    }
  with
  | a -> Ok a
  | exception Failure m -> Error m

let of_string s =
  match Json.of_string s with
  | exception Failure m -> Error m
  | j -> of_json j

(* --- baseline gate ---------------------------------------------------- *)

type verdict = Pass | Fail of string | Skip_gate of string

type gated = {
  g_scenario : string;
  g_policy : string;
  g_engine : string;
  verdict : verdict;
}

let gate ?(ratio = 2.0) ~baseline ~current () =
  let cores_match = baseline.cores = current.cores in
  let find (bc : cell) =
    List.find_opt
      (fun (cc : cell) ->
        cc.scenario = bc.scenario && cc.policy = bc.policy
        && cc.engine = bc.engine)
      current.cells
  in
  List.filter_map
    (fun (bc : cell) ->
      match bc.status with
      | Skipped _ -> None
      | Ran ->
        let verdict =
          match find bc with
          | None -> Skip_gate "cell absent from this run"
          | Some cc -> (
            match cc.status with
            | Skipped reason -> Skip_gate ("skipped in this run: " ^ reason)
            | Ran ->
              let fails = ref [] in
              let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
              (match (bc.sched, cc.sched) with
              | Some bs, Some cs ->
                if cs.jobs_finished < bs.jobs_finished then
                  fail "finished %d < baseline %d" cs.jobs_finished
                    bs.jobs_finished;
                if cs.goodput < bs.goodput -. 0.1 then
                  fail "goodput %.3f < baseline %.3f - 0.1" cs.goodput
                    bs.goodput
              | _ -> ());
              (match (bc.allocs_per_sec, cc.allocs_per_sec) with
              | Some br, Some cr
                when cores_match && br > 0.0 && cr < br /. ratio ->
                fail "%.0f allocs/s < baseline %.0f / %.1f" cr br ratio
              | _ -> ());
              if !fails = [] then Pass
              else Fail (String.concat "; " (List.rev !fails)))
        in
        Some
          {
            g_scenario = bc.scenario;
            g_policy = bc.policy;
            g_engine = bc.engine;
            verdict;
          })
    baseline.cells

let gate_ok gated =
  List.for_all (fun g -> match g.verdict with Fail _ -> false | _ -> true) gated

let render_gate gated =
  let buf = Buffer.create 256 in
  let pass = ref 0 and fail = ref 0 and skip = ref 0 in
  List.iter
    (fun g ->
      let cellname =
        Printf.sprintf "%s/%s/%s" g.g_scenario g.g_policy g.g_engine
      in
      match g.verdict with
      | Pass -> incr pass
      | Fail m ->
        incr fail;
        Buffer.add_string buf (Printf.sprintf "FAIL %s: %s\n" cellname m)
      | Skip_gate m ->
        incr skip;
        Buffer.add_string buf (Printf.sprintf "skip %s: %s\n" cellname m))
    gated;
  Buffer.add_string buf
    (Printf.sprintf "matrix gate: %d pass, %d fail, %d skipped\n" !pass !fail
       !skip);
  Buffer.contents buf

(** Declarative scenario × policy × engine experiment matrix.

    A {!spec} names the axes (scenario families, broker policies,
    allocator engines), a per-cell measurement budget and skip/budget
    rules; {!run} executes every cell against the existing study
    substrates ({!Queue_study}'s job mix through the batch scheduler,
    {!Chaos_study}'s fault plans, trace replay via
    {!Rm_workload.World.record_traces}) and returns one merged,
    versioned artifact: per cell, allocator throughput, queue-level
    makespan/goodput, SLO percentiles from {!Rm_sched.Slo.report} and a
    selected set of telemetry counters.

    Determinism: every stochastic input is seeded from the cell's
    coordinates via {!cell_seed} (an FNV-1a hash of
    ["scenario|policy|engine"] mixed with the spec seed) — never from
    wall clock — so re-running the same spec with a zero throughput
    budget is bit-identical, chaos plans included. Scheduler-level
    results depend only on (scenario, policy) — the engine axis cannot
    change allocations (engines are output-equivalent by construction)
    — so they are computed once per (scenario, policy) pair and shared
    across the engine axis.

    The artifact serializes through {!Rm_telemetry.Json} under schema
    {!schema_version}; {!gate} compares two artifacts cell-by-cell for
    CI regression gating (see docs/OBSERVABILITY.md §6). *)

(** {2 Spec} *)

type family =
  | Background of Rm_workload.Scenario.t
      (** synthetic background load (uniform/hotspot/diurnal/...) *)
  | Replay of { hours : float; period_s : float }
      (** node attributes replayed from traces recorded off a seeded
          normal-scenario world *)
  | Chaos of Chaos_study.intensity
      (** normal background plus a seeded fault plan and the resilient
          scheduler config *)
  | Malleable_family of Rm_workload.Scenario.t
      (** background load with the malleability negotiation phase
          enabled ({!Rm_malleable.Malleable.default_config}) and every
          job submitted with a [procs/2 .. procs*2] band *)

val family_of_name : string -> family option
(** Resolves the documented scenario-family names: [uniform] (normal
    background), [hotspot], [diurnal] (the nightly scenario),
    [trace-replay], [chaos-light]/[chaos-heavy]/[chaos-off],
    [malleable] (normal background, malleable scheduler), plus any
    name {!Rm_workload.Scenario.by_name} accepts. *)

val family_names : string list
(** The canonical family aliases above, for doc/help output. *)

type engine =
  | Naive  (** {!Rm_core.Policies.allocate_naive}, the reference path *)
  | Dense  (** the flat dense sweep, single domain *)
  | Dense_par of int  (** flat dense sweep across N domains *)
  | Hier  (** always the two-level {!Rm_core.Hierarchical} allocator *)
  | Auto  (** threshold routing, the production default *)

val engine_name : engine -> string
val engine_of_name : string -> engine option
(** [naive], [dense], [dense-parN] (N ≥ 1), [hierarchical], [auto]. *)

type budget = {
  alloc_budget_s : float;
      (** wall-clock seconds of allocator-throughput measurement per
          cell; 0 skips the timed loop entirely (fully deterministic
          artifact) *)
  job_count : int;  (** jobs in the scheduler run per (scenario, policy) *)
}

type rule_action =
  | Skip of string  (** skip matching cells, with a reason *)
  | Budget of budget  (** override the per-cell budget *)

type rule = {
  on_scenario : string option;  (** [None] matches every scenario *)
  on_policy : string option;
  on_engine : string option;
  action : rule_action;
}
(** First matching [Skip] wins; first matching [Budget] wins. A
    [Budget] rule whose [on_engine] is set only affects the throughput
    loop — the shared scheduler run takes its [job_count] from the
    first engine-agnostic match. *)

type spec = {
  spec_name : string;
  seed : int;
  scenarios : string list;  (** family names, see {!family_of_name} *)
  policies : string list;  (** {!Rm_core.Policies.of_name} names *)
  engines : string list;  (** {!engine_of_name} names *)
  budget : budget;  (** default per-cell budget *)
  rules : rule list;
}

val quick_spec : spec
(** The CI matrix: 4 scenarios (uniform, hotspot, chaos-heavy,
    malleable) × 3 policies (random, load-aware, network-load-aware) ×
    3 engines (naive, dense, hierarchical), small budgets. *)

val full_spec : spec
(** The full sweep: 6 scenario families (adds diurnal and
    trace-replay) × 3 policies × 5 engines (adds dense-par4 and auto),
    with skip rules for redundant engine × policy combinations. *)

val validate_spec : spec -> (unit, string) result
(** Non-empty axes, resolvable names, sane budgets. {!run} calls this
    and raises [Invalid_argument] on [Error]. *)

val spec_to_json : spec -> Rm_telemetry.Json.t
val spec_of_json : Rm_telemetry.Json.t -> spec
(** Raises [Failure] on malformed input (the {!Rm_telemetry.Json}
    accessor convention). *)

(** {2 Deterministic seeding} *)

val fnv1a : string -> int
(** 32-bit FNV-1a of the string (always non-negative). *)

val cell_seed :
  seed:int -> scenario:string -> policy:string -> engine:string -> int
(** The seed every stochastic input of a cell derives from:
    [(seed + fnv1a (scenario ^ "|" ^ policy ^ "|" ^ engine)) land
    0x3FFFFFFF]. Exposed so tests can pin the values. *)

(** {2 Results} *)

type slo_summary = {
  wait_p50 : float;
  wait_p90 : float;
  wait_p99 : float;
  mean_wait_s : float;
  max_queue_depth : int;
  mean_queue_depth : float;
}

type sched_result = {
  jobs_finished : int;
  rejected : int;
  requeues : int;
  faults_injected : int;
  makespan_s : float;
      (** last finish time minus the monitor warm-up; 0 when nothing
          finished *)
  goodput : float;  (** useful node-s / (useful + wasted); 1 without faults *)
  mean_turnaround_s : float;
  slo : slo_summary option;
      (** [None] when no dispatch-wait data was recorded *)
  counters : (string * float) list;
      (** {!selected_counters}, summed across label families *)
}

type status = Ran | Skipped of string

type cell = {
  scenario : string;
  policy : string;
  engine : string;
  status : status;
  allocs_per_sec : float option;
      (** [None] when the throughput budget was 0 (or the cell was
          skipped) *)
  reps : int;  (** allocate calls timed by the throughput loop *)
  sched : sched_result option;  (** [None] only for skipped cells *)
}

type artifact = {
  schema : string;  (** always {!schema_version} *)
  spec : spec;
  cores : int;
      (** [Domain.recommended_domain_count] of the producing host —
          throughput gates are skipped across differing core counts *)
  cells : cell list;
}

val schema_version : string
(** ["rm-matrix/v1"]. *)

val selected_counters : string list
(** The telemetry counters each scheduler run captures into
    {!sched_result.counters}. *)

val run : spec -> artifact
(** Executes every cell (see module doc for the substrate per family).
    Raises [Invalid_argument] when {!validate_spec} rejects the spec. *)

(** {2 Artifact codec} *)

val to_json : artifact -> Rm_telemetry.Json.t
val to_string : artifact -> string

val of_json : Rm_telemetry.Json.t -> (artifact, string) result
val of_string : string -> (artifact, string) result
(** [Error] on parse failure, schema mismatch or missing fields — never
    raises. *)

(** {2 Baseline gate} *)

type verdict = Pass | Fail of string | Skip_gate of string

type gated = {
  g_scenario : string;
  g_policy : string;
  g_engine : string;
  verdict : verdict;
}

val gate :
  ?ratio:float -> baseline:artifact -> current:artifact -> unit -> gated list
(** One entry per baseline cell that ran. Deterministic fields always
    gate: fewer [jobs_finished] than baseline, or goodput more than 0.1
    below baseline, is a [Fail]. Throughput gates — current rate below
    baseline / [ratio] (default 2.0) — apply only when both artifacts
    record the same [cores] (the {!Rm_core} bench-baseline convention).
    Cells missing or skipped in [current] yield [Skip_gate]. *)

val gate_ok : gated list -> bool
(** No [Fail] entries. *)

val render_gate : gated list -> string
(** One line per non-[Pass] entry plus a summary line. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Policies = Rm_core.Policies
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Scheduler = Rm_sched.Scheduler
module Executor = Rm_mpisim.Executor

type policy_row = { policy : Policies.policy; summary : Scheduler.summary }

(* A deterministic mixed-job afternoon. *)
let job_mix ~job_count ~warm =
  List.init job_count (fun i ->
      let kind = if i mod 2 = 0 then `Md (16 + (8 * (i mod 3))) else `Fe (48 * (1 + (i mod 3))) in
      let procs = [| 16; 32; 24; 48 |].(i mod 4) in
      let at = warm +. (float_of_int i *. 600.0) in
      (Printf.sprintf "job%02d" i, kind, procs, at))

let app_of_kind kind ~ranks =
  match kind with
  | `Md s -> Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s) ~ranks
  | `Fe nx -> Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx) ~ranks

let run_policy_sched ~seed ~job_count policy =
  let sim = Sim.create () in
  let world =
    World.create ~cluster:(Cluster.iitk_reference ()) ~scenario:Scenario.normal
      ~seed
  in
  let rng = Rng.create (seed + 5) in
  let horizon = 100_000.0 in
  let monitor = System.start ~sim ~world ~rng ~until:horizon () in
  let config =
    { Scheduler.default_config with
      Scheduler.broker = { Broker.default_config with Broker.policy } }
  in
  let sched = Scheduler.create ~sim ~world ~monitor ~config ~rng ~horizon () in
  let warm = System.warm_up_s System.default_cadence in
  List.iter
    (fun (name, kind, procs, at) ->
      ignore
        (Scheduler.submit sched ~name ~at
           ~request:(Request.make ~ppn:4 ~alpha:0.35 ~procs ())
           ~app_of:(app_of_kind kind) ()))
    (job_mix ~job_count ~warm);
  (* Advance in slices until the queue drains (simulating all the way to
     the horizon would run the monitor daemons for nothing). *)
  let rec drain () =
    if
      List.length (Scheduler.finished sched) < job_count
      && Sim.now sim < horizon
    then begin
      Sim.run_until sim (Sim.now sim +. 600.0);
      drain ()
    end
  in
  drain ();
  sched

let run_policy ~seed ~job_count policy =
  Scheduler.summary (run_policy_sched ~seed ~job_count policy)

let run ?(seed = 83) ?(job_count = 10) () =
  List.map
    (fun policy -> { policy; summary = run_policy ~seed ~job_count policy })
    Policies.all

let run_slo ?(seed = 83) ?(job_count = 10) () =
  Rm_telemetry.Runtime.with_enabled (fun () ->
      List.filter_map
        (fun policy ->
          (* Fresh metrics per policy so the dispatch-wait histogram only
             holds this policy's observations. *)
          Rm_telemetry.Metrics.reset ();
          let sched = run_policy_sched ~seed ~job_count policy in
          match Rm_sched.Slo.report ~sched ~policy:(Policies.name policy) with
          | Ok r -> Some r
          | Error `No_wait_data ->
            (* Nothing was ever dispatched (e.g. a zero-job run): there
               is no service level to report for this policy. *)
            None)
        Policies.all)

let render rows =
  let header =
    [ "broker policy"; "finished"; "mean wait (s)"; "mean turnaround (s)" ]
  in
  let body =
    List.map
      (fun r ->
        [
          Policies.name r.policy;
          string_of_int r.summary.Scheduler.jobs_finished;
          Printf.sprintf "%.0f" r.summary.Scheduler.mean_wait_s;
          Printf.sprintf "%.1f" r.summary.Scheduler.mean_turnaround_s;
        ])
      rows
  in
  "Queue study — the same 10-job afternoon scheduled with each broker\n\
   policy: better placement finishes jobs sooner and frees nodes earlier\n\n"
  ^ Render.table_str ~header ~rows:body

type interference = {
  alone_s : float;
  beside_aware_s : float;
  beside_random_s : float;
  aware_overlap : int;
  random_overlap : int;
}

let interference ?(seed = 89) () =
  let fresh () =
    let env =
      Harness.make_env ~scenario:Scenario.quiet ~seed ~horizon:50_000.0 ()
    in
    Harness.warm env;
    env
  in
  let request = Request.make ~ppn:4 ~alpha:0.3 ~procs:24 () in
  let weights = Rm_core.Weights.paper_default in
  let app_b ~ranks =
    Rm_apps.Minimd.app ~config:(Rm_apps.Minimd.default_config ~s:24) ~ranks
  in
  (* Baseline: B alone. *)
  let env = fresh () in
  let alone =
    Harness.run_app env ~policy:Policies.Network_load_aware ~weights ~request
      ~app_of:app_b
  in
  (* B beside a running A, under a given policy for both. *)
  let beside policy =
    let env = fresh () in
    Harness.sync env;
    let snap = Harness.snapshot env in
    match
      Policies.allocate ~policy ~snapshot:snap ~weights ~request
        ~rng:(Rng.create (seed + 1)) ()
    with
    | Error _ -> failwith "interference: A's allocation failed"
    | Ok alloc_a ->
      (* Register A as a running job (its load and steady traffic). *)
      let app_a ~ranks =
        Rm_apps.Minife.app ~config:(Rm_apps.Minife.default_config ~nx:144) ~ranks
      in
      let a = app_a ~ranks:24 in
      let world = Harness.world env in
      let duration =
        Float.max 1.0 (Executor.estimate_duration_s ~world ~allocation:alloc_a ~app:a ())
      in
      let load =
        List.map
          (fun (e : Allocation.entry) -> (e.Allocation.node, float_of_int e.Allocation.procs))
          alloc_a.Allocation.entries
      in
      let flows =
        List.map
          (fun ((src, dst), mb_s) ->
            (src, Rm_netsim.Flow.Node dst, Float.max 0.01 mb_s))
          (Executor.mean_pair_rates_mb_s ~allocation:alloc_a ~app:a
             ~duration_s:duration)
      in
      ignore (World.register_job world ~load ~flows);
      (* Give the monitor a probe cycle to notice A. *)
      Harness.idle env ~seconds:360.0;
      let b = Harness.run_app env ~policy ~weights ~request ~app_of:app_b in
      let overlap =
        List.length
          (List.filter
             (fun n -> List.mem n (Allocation.node_ids alloc_a))
             (Allocation.node_ids b.Harness.allocation))
      in
      (b.Harness.stats.Executor.total_time_s, overlap)
  in
  let beside_aware_s, aware_overlap = beside Policies.Network_load_aware in
  let beside_random_s, random_overlap = beside Policies.Random in
  {
    alone_s = alone.Harness.stats.Executor.total_time_s;
    beside_aware_s;
    beside_random_s;
    aware_overlap;
    random_overlap;
  }

let render_interference i =
  Printf.sprintf
    "Interference study — job B (24-proc miniMD) while job A (24-proc\n\
     miniFE) runs; placement decides whether they collide:\n\n\
    \  B alone:                 %.3f s\n\
    \  B beside A, aware broker: %.3f s (%d shared nodes)\n\
    \  B beside A, random:       %.3f s (%d shared nodes)\n"
    i.alone_s i.beside_aware_s i.aware_overlap i.beside_random_s
    i.random_overlap

(** Queue-level effect of placement quality (the §6 SLURM-integration
    motivation, measured): the same job arrival trace runs through the
    batch scheduler once per broker policy, and queue metrics —
    wait, turnaround — are compared. Placement quality compounds at the
    queue level: faster jobs release their nodes sooner.

    Also includes the interference study: does the broker route a
    second job away from a running one's nodes, and what does that buy? *)

val job_mix :
  job_count:int ->
  warm:float ->
  (string * [ `Md of int | `Fe of int ] * int * float) list
(** [(name, kind, procs, submit_at)] rows — the synthetic afternoon's
    arrival trace, alternating miniMD and miniFE. Exposed so
    {!Chaos_study} can replay the identical mix under faults. *)

val app_of_kind :
  [ `Md of int | `Fe of int ] -> ranks:int -> Rm_mpisim.App.t
(** [`Md s] → miniMD at problem size [s]; [`Fe nx] → miniFE at mesh
    size [nx], at the given rank count. *)

type policy_row = {
  policy : Rm_core.Policies.policy;
  summary : Rm_sched.Scheduler.summary;
}

val run : ?seed:int -> ?job_count:int -> unit -> policy_row list
(** A synthetic afternoon of [job_count] (default 10) mixed miniMD and
    miniFE jobs on the reference cluster, per policy. *)

val render : policy_row list -> string

val run_slo :
  ?seed:int -> ?job_count:int -> unit -> Rm_sched.Slo.report list
(** The same afternoon as {!run}, but with telemetry enabled and metrics
    reset per policy, so each policy gets a full SLO report — dispatch
    wait p50/p90/p99 from the [sched.dispatch_wait_s] histogram plus
    queue-depth statistics. Policies with no dispatch-wait data at all
    (e.g. a zero-job run) are omitted, so the list is empty rather than
    the call crashing. Render with {!Rm_sched.Slo.render}. *)

type interference = {
  alone_s : float;  (** job B's runtime with the cluster to itself *)
  beside_aware_s : float;
      (** B's runtime while A runs, both placed by the aware broker *)
  beside_random_s : float;  (** same but both placed randomly *)
  aware_overlap : int;  (** nodes shared between A and B under the aware broker *)
  random_overlap : int;
}

val interference : ?seed:int -> unit -> interference
val render_interference : interference -> string

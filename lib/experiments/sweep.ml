module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Descriptive = Rm_stats.Descriptive

type spec = {
  label : string;
  size_label : string;
  procs_list : int list;
  sizes : int list;
  reps : int;
  ppn : int;
  alpha : float;
  weights : Rm_core.Weights.t;
  scenario : Rm_workload.Scenario.t;
  seed : int;
  app_of : size:int -> ranks:int -> Rm_mpisim.App.t;
}

type record = {
  procs : int;
  size : int;
  rep : int;
  policy : Policies.policy;
  result : Harness.run_result;
}

type result = { spec : spec; records : record list }

let run ?trace_out ?metrics_out spec =
  let exporting = trace_out <> None || metrics_out <> None in
  let was_enabled = Rm_telemetry.Runtime.is_enabled () in
  if exporting then begin
    Rm_telemetry.Runtime.enable ();
    Rm_telemetry.Metrics.reset ();
    Rm_telemetry.Trace.clear ()
  end;
  let records = ref [] in
  List.iter
    (fun procs ->
      (* One long-lived cluster session per process count: all sizes and
         repetitions happen back to back on the same evolving cluster,
         as they did on the real machine. *)
      let env =
        Harness.make_env ~scenario:spec.scenario ~seed:(spec.seed + (procs * 101))
          ~horizon:500_000.0 ()
      in
      Harness.warm env;
      let request = Request.make ~ppn:spec.ppn ~alpha:spec.alpha ~procs () in
      List.iter
        (fun size ->
          for rep = 0 to spec.reps - 1 do
            let runs =
              Harness.compare_policies env ~weights:spec.weights ~request
                ~app_of:(fun ~ranks -> spec.app_of ~size ~ranks)
                ()
            in
            List.iter
              (fun (policy, result) ->
                records := { procs; size; rep; policy; result } :: !records)
              runs
          done)
        spec.sizes)
    spec.procs_list;
  if exporting then begin
    Harness.dump_telemetry ?trace_out ?metrics_out ();
    if not was_enabled then Rm_telemetry.Runtime.disable ()
  end;
  { spec; records = List.rev !records }

let select result ~f = List.filter f result.records

let cell_times result ~procs ~size ~policy =
  select result ~f:(fun r -> r.procs = procs && r.size = size && r.policy = policy)
  |> List.map (fun r -> r.result.Harness.stats.Rm_mpisim.Executor.total_time_s)
  |> Array.of_list

let mean_time result ~procs ~size ~policy =
  Descriptive.mean (cell_times result ~procs ~size ~policy)

let gains_over result ~baseline =
  let cells =
    List.concat_map
      (fun procs -> List.map (fun size -> (procs, size)) result.spec.sizes)
      result.spec.procs_list
  in
  cells
  |> List.map (fun (procs, size) ->
         Harness.gains_vs
           ~baseline_times:(cell_times result ~procs ~size ~policy:baseline)
           ~ours_times:
             (cell_times result ~procs ~size ~policy:Policies.Network_load_aware))
  |> Array.of_list

let cov_of_policy result ~policy =
  let covs =
    List.concat_map
      (fun procs ->
        List.filter_map
          (fun size ->
            let times = cell_times result ~procs ~size ~policy in
            if Array.length times < 2 then None
            else Some (Descriptive.coefficient_of_variation times))
          result.spec.sizes)
      result.spec.procs_list
  in
  Descriptive.mean (Array.of_list covs)

let mean_over_runs result ~policy ~f =
  let values =
    select result ~f:(fun r -> r.policy = policy) |> List.map f |> Array.of_list
  in
  Descriptive.mean values

let mean_load_per_core result ~policy =
  mean_over_runs result ~policy ~f:(fun r ->
      r.result.Harness.stats.Rm_mpisim.Executor.mean_load_per_core)

let mean_comm_fraction result ~policy =
  mean_over_runs result ~policy ~f:(fun r ->
      r.result.Harness.stats.Rm_mpisim.Executor.comm_fraction)

let to_csv result =
  let header =
    [ "procs"; result.spec.size_label; "rep"; "policy"; "time_s";
      "comm_fraction"; "load_per_core"; "group_load"; "group_bw_complement";
      "group_latency_us" ]
  in
  let rows =
    List.map
      (fun r ->
        let stats = r.result.Harness.stats in
        [
          string_of_int r.procs;
          string_of_int r.size;
          string_of_int r.rep;
          Policies.name r.policy;
          Printf.sprintf "%.6f" stats.Rm_mpisim.Executor.total_time_s;
          Printf.sprintf "%.4f" stats.Rm_mpisim.Executor.comm_fraction;
          Printf.sprintf "%.4f" stats.Rm_mpisim.Executor.mean_load_per_core;
          Printf.sprintf "%.4f" r.result.Harness.group_load;
          Printf.sprintf "%.4f" r.result.Harness.group_bw_complement;
          Printf.sprintf "%.2f" r.result.Harness.group_latency_us;
        ])
      result.records
  in
  Render.csv ~header ~rows

let render_times result ~title =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun procs ->
      Buffer.add_string buf (Printf.sprintf "\n#procs = %d (execution time, s)\n" procs);
      let header =
        result.spec.size_label :: List.map (fun p -> Policies.name p) Policies.all
      in
      let rows =
        List.map
          (fun size ->
            string_of_int size
            :: List.map
                 (fun policy ->
                   Printf.sprintf "%.3f" (mean_time result ~procs ~size ~policy))
                 Policies.all)
          result.spec.sizes
      in
      Render.table ~header ~rows buf)
    result.spec.procs_list;
  Buffer.contents buf

let render_gains result ~title =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n\n");
  let header = [ "Allocation Policy"; "Average Gain"; "Median Gain"; "Maximum Gain" ] in
  let baselines = [ Policies.Random; Policies.Sequential; Policies.Load_aware ] in
  let rows =
    List.map
      (fun baseline ->
        let g = Harness.summarize_gains (gains_over result ~baseline) in
        [
          Policies.name baseline;
          Render.pct g.Harness.average;
          Render.pct g.Harness.median;
          Render.pct g.Harness.maximum;
        ])
      baselines
  in
  Render.table ~header ~rows buf;
  Buffer.add_string buf "\ncoefficient of variation across repetitions:\n";
  List.iter
    (fun policy ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %.3f\n" (Policies.name policy)
           (cov_of_policy result ~policy)))
    Policies.all;
  Buffer.contents buf

let render_load_per_core result ~title =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n\n");
  let header = [ "Allocation Policy"; "Avg CPU load / logical core"; "Comm fraction" ] in
  let rows =
    List.map
      (fun policy ->
        [
          Policies.name policy;
          Render.f2 (mean_load_per_core result ~policy);
          Render.pct (100.0 *. mean_comm_fraction result ~policy);
        ])
      Policies.all
  in
  Render.table ~header ~rows buf;
  Buffer.contents buf

(** Strong-scaling policy sweeps — the engine behind Figures 4–6 and
    Tables 2–3.

    For every (process count, problem size) cell, the four policies run
    in sequence (paper protocol), repeated [reps] times at different
    cluster epochs; execution times, gains of the network-and-load-aware
    policy over each baseline, per-policy run-stability (coefficient of
    variation) and background-load-per-core (Fig. 5) are derived from
    the recorded runs. *)

type spec = {
  label : string;  (** e.g. "miniMD" *)
  size_label : string;  (** e.g. "s" or "nx" *)
  procs_list : int list;
  sizes : int list;
  reps : int;
  ppn : int;
  alpha : float;  (** Eq. 4 weight; β = 1 − α *)
  weights : Rm_core.Weights.t;
  scenario : Rm_workload.Scenario.t;
  seed : int;
  app_of : size:int -> ranks:int -> Rm_mpisim.App.t;
}

type record = {
  procs : int;
  size : int;
  rep : int;
  policy : Rm_core.Policies.policy;
  result : Harness.run_result;
}

type result = { spec : spec; records : record list }

val run : ?trace_out:string -> ?metrics_out:string -> spec -> result
(** When either output path is given, telemetry is enabled (and metrics
    plus trace buffer reset) for the duration of the sweep, and the
    accumulated trace / metric registry are written via
    {!Harness.dump_telemetry} before returning. Without them the sweep
    runs with telemetry in whatever state the caller left it. *)

(** {2 Derived views} *)

val cell_times :
  result -> procs:int -> size:int -> policy:Rm_core.Policies.policy ->
  float array
(** Per-rep execution times, seconds. *)

val mean_time :
  result -> procs:int -> size:int -> policy:Rm_core.Policies.policy -> float

val gains_over :
  result -> baseline:Rm_core.Policies.policy -> float array
(** Per-(procs, size)-cell percent gain of network-and-load-aware over
    the baseline (mean over reps), across every cell. *)

val cov_of_policy : result -> policy:Rm_core.Policies.policy -> float
(** Mean over cells of the coefficient of variation across reps. *)

val mean_load_per_core : result -> policy:Rm_core.Policies.policy -> float
(** Fig. 5: mean background CPU load per logical core on the nodes each
    policy chose, over all runs. *)

val mean_comm_fraction : result -> policy:Rm_core.Policies.policy -> float

(** {2 Rendering} *)

val render_times : result -> title:string -> string
(** The Fig. 4 / Fig. 6 panels: one table per process count, sizes as
    rows, policies as columns. *)

val render_gains : result -> title:string -> string
(** The Table 2 / Table 3 layout: baseline × (average, median, maximum
    gain), plus the CoV line from §5.1/§5.2. *)

val render_load_per_core : result -> title:string -> string
(** Fig. 5. *)

val to_csv : result -> string
(** One row per recorded run: procs, size, rep, policy, execution time,
    comm fraction, load/core, group state at allocation — the raw data
    behind Figures 4/6 and Tables 2/3, for external plotting. *)

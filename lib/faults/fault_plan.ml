module Json = Rm_telemetry.Json
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology

type action =
  | Node_crash of { node : int }
  | Nic_degrade of { node : int; factor : float }
  | Switch_outage of { switch : int }
  | Daemon_kill of { name : string }
  | Store_outage

type schedule =
  | One_shot of { at : float; duration_s : float option }
  | Recurring of { mtbf_s : float; mttr_s : float; first_after_s : float }

type event = { label : string; action : action; schedule : schedule }

type t = { name : string; seed : int; events : event list }

let action_label = function
  | Node_crash { node } -> Printf.sprintf "node-crash:%d" node
  | Nic_degrade { node; factor } ->
    Printf.sprintf "nic-degrade:%d@%.2f" node factor
  | Switch_outage { switch } -> Printf.sprintf "switch-outage:%d" switch
  | Daemon_kill { name } -> Printf.sprintf "daemon-kill:%s" name
  | Store_outage -> "store-outage"

let one_shot ?label ~at ?duration_s action =
  let label = match label with Some l -> l | None -> action_label action in
  { label; action; schedule = One_shot { at; duration_s } }

let recurring ?label ~mtbf_s ~mttr_s ?(first_after_s = 0.0) action =
  let label = match label with Some l -> l | None -> action_label action in
  { label; action; schedule = Recurring { mtbf_s; mttr_s; first_after_s } }

let node_churn ~nodes ~mtbf_s ~mttr_s ?(first_after_s = 0.0) ?(seed = 0) name =
  {
    name;
    seed;
    events =
      List.map
        (fun node -> recurring ~mtbf_s ~mttr_s ~first_after_s (Node_crash { node }))
        nodes;
  }

(* --- validation ----------------------------------------------------- *)

let validate ~cluster t =
  let node_count = Cluster.node_count cluster in
  let switch_count = Topology.switch_count (Cluster.topology cluster) in
  let bad ev msg = invalid_arg (Printf.sprintf "Fault_plan %s: %s" ev.label msg) in
  List.iter
    (fun ev ->
      (match ev.action with
      | Node_crash { node } | Nic_degrade { node; _ } ->
        if node < 0 || node >= node_count then
          bad ev
            (Printf.sprintf "node %d out of range (cluster has nodes 0..%d)"
               node (node_count - 1))
      | Switch_outage { switch } ->
        if switch < 0 || switch >= switch_count then
          bad ev
            (Printf.sprintf
               "switch %d out of range (topology has switches 0..%d)" switch
               (switch_count - 1))
      | Daemon_kill { name } ->
        if String.trim name = "" then bad ev "empty daemon name"
      | Store_outage -> ());
      (match ev.action with
      | Nic_degrade { factor; _ } ->
        if not (Float.is_finite factor) || factor < 0.0 || factor > 1.0 then
          bad ev "factor must be in [0, 1]"
      | _ -> ());
      match ev.schedule with
      | One_shot { at; duration_s } ->
        if not (Float.is_finite at) || at < 0.0 then bad ev "negative time";
        (match duration_s with
        | Some d when (not (Float.is_finite d)) || d < 0.0 ->
          bad ev "negative duration"
        | _ -> ())
      | Recurring { mtbf_s; mttr_s; first_after_s } ->
        if (not (Float.is_finite mtbf_s)) || mtbf_s <= 0.0 then
          bad ev "mtbf must be positive";
        if (not (Float.is_finite mttr_s)) || mttr_s < 0.0 then
          bad ev "negative mttr";
        if (not (Float.is_finite first_after_s)) || first_after_s < 0.0 then
          bad ev "negative first-failure offset")
    t.events

(* --- JSON ----------------------------------------------------------- *)

let fail fmt = Printf.ksprintf failwith fmt

let float_field j key =
  match Json.member key j with
  | Json.Null -> fail "Fault_plan.of_json: missing %S" key
  | v -> Json.to_float v

let opt_float_field j key =
  match Json.member key j with Json.Null -> None | v -> Some (Json.to_float v)

let int_field j key =
  match Json.member key j with
  | Json.Null -> fail "Fault_plan.of_json: missing %S" key
  | v -> Json.to_int v

let action_of_json j =
  match Json.member "action" j with
  | Json.Null -> fail "Fault_plan.of_json: event without \"action\""
  | v -> (
    match Json.to_str v with
    | "node-crash" -> Node_crash { node = int_field j "node" }
    | "nic-degrade" ->
      Nic_degrade { node = int_field j "node"; factor = float_field j "factor" }
    | "switch-outage" -> Switch_outage { switch = int_field j "switch" }
    | "daemon-kill" -> (
      match Json.member "daemon" j with
      | Json.Null -> fail "Fault_plan.of_json: daemon-kill without \"daemon\""
      | d -> Daemon_kill { name = Json.to_str d })
    | "store-outage" -> Store_outage
    | other -> fail "Fault_plan.of_json: unknown action %S" other)

let schedule_of_json j =
  match opt_float_field j "mtbf" with
  | Some mtbf_s ->
    let mttr_s =
      match opt_float_field j "mttr" with
      | Some m -> m
      | None -> fail "Fault_plan.of_json: recurring event without \"mttr\""
    in
    let first_after_s =
      match opt_float_field j "after" with Some a -> a | None -> 0.0
    in
    Recurring { mtbf_s; mttr_s; first_after_s }
  | None ->
    One_shot { at = float_field j "at"; duration_s = opt_float_field j "duration" }

let event_of_json j =
  let action = action_of_json j in
  let schedule = schedule_of_json j in
  let label =
    match Json.member "label" j with
    | Json.Null -> action_label action
    | v -> Json.to_str v
  in
  { label; action; schedule }

let of_json text =
  let j = Json.of_string text in
  let name =
    match Json.member "name" j with Json.Null -> "unnamed" | v -> Json.to_str v
  in
  let seed =
    match Json.member "seed" j with Json.Null -> 0 | v -> Json.to_int v
  in
  let events =
    match Json.member "events" j with
    | Json.Null -> fail "Fault_plan.of_json: missing \"events\""
    | v -> List.map event_of_json (Json.to_list v)
  in
  { name; seed; events }

let action_to_fields = function
  | Node_crash { node } ->
    [ ("action", Json.Str "node-crash"); ("node", Json.Num (float_of_int node)) ]
  | Nic_degrade { node; factor } ->
    [
      ("action", Json.Str "nic-degrade");
      ("node", Json.Num (float_of_int node));
      ("factor", Json.Num factor);
    ]
  | Switch_outage { switch } ->
    [
      ("action", Json.Str "switch-outage");
      ("switch", Json.Num (float_of_int switch));
    ]
  | Daemon_kill { name } ->
    [ ("action", Json.Str "daemon-kill"); ("daemon", Json.Str name) ]
  | Store_outage -> [ ("action", Json.Str "store-outage") ]

let schedule_to_fields = function
  | One_shot { at; duration_s } -> (
    ("at", Json.Num at)
    ::
    (match duration_s with
    | Some d -> [ ("duration", Json.Num d) ]
    | None -> []))
  | Recurring { mtbf_s; mttr_s; first_after_s } ->
    [ ("mtbf", Json.Num mtbf_s); ("mttr", Json.Num mttr_s) ]
    @ (if first_after_s <> 0.0 then [ ("after", Json.Num first_after_s) ] else [])

let event_to_json ev =
  Json.Obj
    (("label", Json.Str ev.label)
    :: (action_to_fields ev.action @ schedule_to_fields ev.schedule))

let to_json t =
  Json.to_string
    (Json.Obj
       [
         ("name", Json.Str t.name);
         ("seed", Json.Num (float_of_int t.seed));
         ("events", Json.Arr (List.map event_to_json t.events));
       ])

let pp ppf t =
  Format.fprintf ppf "fault plan %s (seed %d, %d events)@." t.name t.seed
    (List.length t.events);
  List.iter
    (fun ev ->
      match ev.schedule with
      | One_shot { at; duration_s } ->
        Format.fprintf ppf "  %-28s at %8.1fs%s@." ev.label at
          (match duration_s with
          | Some d -> Printf.sprintf " for %.1fs" d
          | None -> " (permanent)")
      | Recurring { mtbf_s; mttr_s; first_after_s } ->
        Format.fprintf ppf "  %-28s mtbf %.0fs mttr %.0fs%s@." ev.label mtbf_s
          mttr_s
          (if first_after_s > 0.0 then
             Printf.sprintf " after %.0fs" first_after_s
           else ""))
    t.events

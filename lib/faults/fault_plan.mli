(** Declarative fault plans.

    A plan is a named, optionally seeded list of fault events. Each
    event pairs an {!action} (what breaks) with a {!schedule} (when,
    for how long, how often). Plans are plain data: they parse from and
    render to a small JSON spec, validate against a concrete cluster,
    and are executed by {!Injector}, which pre-computes every
    occurrence deterministically from the plan's seed — the workload's
    own RNG streams are never touched, so a run with an empty plan is
    bit-identical to a run with no injector at all. *)

type action =
  | Node_crash of { node : int }
      (** The node drops out of ground truth ({!Rm_workload.World.set_down}):
          LivehostsD stops seeing it, running jobs on it die. *)
  | Nic_degrade of { node : int; factor : float }
      (** The node's access link runs at [factor × nominal] capacity,
          [factor ∈ [0, 1]] — a flaky NIC or cable. Probes observe the
          degraded bandwidth, so Eq. 2 steers the allocator away. *)
  | Switch_outage of { switch : int }
      (** Every node under the switch goes down at once — a partition
          as LivehostsD perceives it. *)
  | Daemon_kill of { name : string }
      (** Crash the named monitor daemon ({!Rm_monitor.Daemon.crash});
          recovery is the Central Monitor's job, not the plan's, so any
          duration on the event is ignored. *)
  | Store_outage
      (** The shared store drops all writes (NFS outage): records keep
          their old timestamps and readers see growing staleness. *)

type schedule =
  | One_shot of { at : float; duration_s : float option }
      (** Fire once at [at] seconds after the injection origin;
          [duration_s = None] means the fault is permanent. *)
  | Recurring of { mtbf_s : float; mttr_s : float; first_after_s : float }
      (** Fail–repair renewal process: time-to-failure is exponential
          with mean [mtbf_s] (drawn from the plan's seed), each outage
          lasts [mttr_s], repeating until the injection horizon. *)

type event = { label : string; action : action; schedule : schedule }

type t = { name : string; seed : int; events : event list }

val validate : cluster:Rm_cluster.Cluster.t -> t -> unit
(** Raises [Invalid_argument] naming the offending event when a node or
    switch index is out of range for the cluster, a degradation factor
    is outside [0, 1], or a schedule has a non-positive MTBF, negative
    time, or negative duration. *)

(** {2 Constructors} *)

val one_shot : ?label:string -> at:float -> ?duration_s:float -> action -> event
val recurring :
  ?label:string -> mtbf_s:float -> mttr_s:float -> ?first_after_s:float ->
  action -> event

val node_churn :
  nodes:int list -> mtbf_s:float -> mttr_s:float -> ?first_after_s:float ->
  ?seed:int -> string -> t
(** A plan that crash-loops each listed node independently (one
    recurring event per node) — the chaos-study workhorse. *)

(** {2 JSON spec}

    [{"name": "demo", "seed": 7, "events": [
       {"action": "node-crash", "node": 3, "at": 600, "duration": 120},
       {"action": "nic-degrade", "node": 1, "factor": 0.25, "at": 300},
       {"action": "switch-outage", "switch": 1, "mtbf": 1800, "mttr": 120},
       {"action": "daemon-kill", "daemon": "livehosts-0", "at": 700},
       {"action": "store-outage", "at": 400, "duration": 300}]}]

    An event with an ["mtbf"] field is recurring (["mttr"] required,
    ["after"] optional); otherwise ["at"] is required and ["duration"]
    optional. ["label"] defaults to a rendering of the action. *)

val of_json : string -> t
(** Raises [Failure] on malformed input. *)

val to_json : t -> string

val pp : Format.formatter -> t -> unit
(** Human-readable event table. *)

module Sim = Rm_engine.Sim
module World = Rm_workload.World
module Cluster = Rm_cluster.Cluster
module Topology = Rm_cluster.Topology
module System = Rm_monitor.System
module Daemon = Rm_monitor.Daemon
module Store = Rm_monitor.Store
module Rng = Rm_stats.Rng
module Telemetry = Rm_telemetry

let m_injected = Telemetry.Metrics.counter "faults.injected"
let m_recovered = Telemetry.Metrics.counter "faults.recovered"
let m_active = Telemetry.Metrics.gauge "faults.active"

type phase = Begin | End

type t = {
  world : World.t;
  system : System.t option;
  (* per-node down refcount: a node is up iff its count is 0 *)
  down_refs : int array;
  (* per-node stack of active NIC degradation factors (product applies) *)
  nic_factors : float list array;
  mutable store_refs : int;
  mutable injected : int;
  mutable recovered : int;
  mutable active : int;
  mutable scheduled : int;
  mutable log_rev : (float * string * phase) list;
}

let note t ~time ~label phase =
  t.log_rev <- (time, label, phase) :: t.log_rev;
  (match phase with
  | Begin ->
    t.injected <- t.injected + 1;
    t.active <- t.active + 1
  | End ->
    t.recovered <- t.recovered + 1;
    t.active <- t.active - 1);
  if Telemetry.Runtime.is_enabled () then begin
    Telemetry.Metrics.incr (match phase with Begin -> m_injected | End -> m_recovered);
    Telemetry.Metrics.set m_active (float_of_int t.active);
    Telemetry.Trace.instant ~time
      ~attrs:[ ("fault", label) ]
      (match phase with Begin -> "fault.begin" | End -> "fault.end")
  end

let down_node t node =
  t.down_refs.(node) <- t.down_refs.(node) + 1;
  if t.down_refs.(node) = 1 then World.set_down t.world ~node

let restore_node t node =
  if t.down_refs.(node) > 0 then begin
    t.down_refs.(node) <- t.down_refs.(node) - 1;
    if t.down_refs.(node) = 0 then World.set_up t.world ~node
  end

let apply_nic t node =
  let product = List.fold_left ( *. ) 1.0 t.nic_factors.(node) in
  World.set_nic_scale t.world ~node product

(* Remove one instance of [factor] from the node's active stack. *)
let remove_factor t node factor =
  let rec drop = function
    | [] -> []
    | f :: rest -> if f = factor then rest else f :: drop rest
  in
  t.nic_factors.(node) <- drop t.nic_factors.(node)

let switch_members t switch =
  Topology.nodes_of_switch (Cluster.topology (World.cluster t.world)) switch

let the_system t label =
  match t.system with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf
         "Injector: event %s needs a monitor system but none was given" label)

let apply t sim label phase (action : Fault_plan.action) =
  let time = Sim.now sim in
  (match (action, phase) with
  | Node_crash { node }, Begin -> down_node t node
  | Node_crash { node }, End -> restore_node t node
  | Nic_degrade { node; factor }, Begin ->
    t.nic_factors.(node) <- factor :: t.nic_factors.(node);
    apply_nic t node
  | Nic_degrade { node; factor }, End ->
    remove_factor t node factor;
    apply_nic t node
  | Switch_outage { switch }, Begin ->
    List.iter (down_node t) (switch_members t switch)
  | Switch_outage { switch }, End ->
    List.iter (restore_node t) (switch_members t switch)
  | Daemon_kill { name }, Begin ->
    let system = the_system t label in
    (match
       List.find_opt (fun d -> Daemon.name d = name) (System.daemons system)
     with
    | Some d -> Daemon.crash d
    | None ->
      invalid_arg
        (Printf.sprintf "Injector: no daemon named %S (have: %s)" name
           (String.concat ", "
              (List.map Daemon.name (System.daemons system)))))
  | Daemon_kill _, End -> ()  (* recovery belongs to the Central Monitor *)
  | Store_outage, Begin ->
    let system = the_system t label in
    t.store_refs <- t.store_refs + 1;
    if t.store_refs = 1 then Store.set_write_loss (System.store system) true
  | Store_outage, End ->
    let system = the_system t label in
    if t.store_refs > 0 then begin
      t.store_refs <- t.store_refs - 1;
      if t.store_refs = 0 then Store.set_write_loss (System.store system) false
    end);
  note t ~time ~label phase

(* Expand an event into (begin, end option) occurrence times relative to
   [origin], entirely from [rng] — deterministic at inject time. *)
let occurrences ~origin ~until rng (ev : Fault_plan.event) =
  match ev.schedule with
  | One_shot { at; duration_s } ->
    let b = origin +. at in
    if b > until then []
    else [ (b, Option.map (fun d -> b +. d) duration_s) ]
  | Recurring { mtbf_s; mttr_s; first_after_s } ->
    let rec go acc from =
      let fail_at = from +. Rng.exponential rng ~rate:(1.0 /. mtbf_s) in
      if fail_at > until then List.rev acc
      else
        let repair_at = fail_at +. mttr_s in
        go ((fail_at, Some repair_at) :: acc) repair_at
    in
    go [] (origin +. first_after_s)

let inject ~sim ~world ?system ~until (plan : Fault_plan.t) =
  Fault_plan.validate ~cluster:(World.cluster world) plan;
  let n = Cluster.node_count (World.cluster world) in
  let t =
    {
      world;
      system;
      down_refs = Array.make n 0;
      nic_factors = Array.make n [];
      store_refs = 0;
      injected = 0;
      recovered = 0;
      active = 0;
      scheduled = 0;
      log_rev = [];
    }
  in
  (* Fail fast on a plan that needs the monitor when none was wired. *)
  List.iter
    (fun (ev : Fault_plan.event) ->
      match ev.action with
      | Daemon_kill _ | Store_outage -> ignore (the_system t ev.label)
      | _ -> ())
    plan.events;
  let origin = Sim.now sim in
  let rng = Rng.create plan.seed in
  List.iter
    (fun (ev : Fault_plan.event) ->
      let ev_rng = Rng.split rng in
      List.iter
        (fun (b, e) ->
          t.scheduled <- t.scheduled + 1;
          ignore
            (Sim.schedule_at sim ~time:(Float.max b (Sim.now sim))
               (fun sim -> apply t sim ev.label Begin ev.action));
          match e with
          | None -> ()
          | Some e ->
            ignore
              (Sim.schedule_at sim ~time:(Float.max e (Sim.now sim)) (fun sim ->
                   apply t sim ev.label End ev.action)))
        (occurrences ~origin ~until ev_rng ev))
    plan.events;
  t

let log t = List.rev t.log_rev
let injected t = t.injected
let recovered t = t.recovered
let active t = t.active
let scheduled t = t.scheduled

let pp_log ppf t =
  List.iter
    (fun (time, label, phase) ->
      Format.fprintf ppf "%10.1fs  %-5s %s@." time
        (match phase with Begin -> "BEGIN" | End -> "END")
        label)
    (log t)

(** Executes a {!Fault_plan} against a simulated cluster.

    All occurrences (failure and repair times) are pre-computed at
    {!inject} time from the plan's own seeded RNG, then scheduled on the
    simulation — the workload's RNG streams are never consumed, so
    adding an injector with an empty plan leaves a run bit-identical.

    Overlapping faults compose: node liveness is reference-counted (a
    node downed by both a switch outage and its own crash comes back
    only when both end), NIC degradations multiply, and store outages
    nest. Daemon kills have no repair action of their own — bringing
    the daemon back is the Central Monitor's job, which is exactly the
    resilience path the plan is meant to exercise. *)

type t

val inject :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  ?system:Rm_monitor.System.t ->
  until:float ->
  Fault_plan.t ->
  t
(** Validates the plan against the world's cluster and schedules every
    occurrence with a begin time at or before [until] (repairs may land
    after). Raises [Invalid_argument] if the plan fails validation, or
    if it contains [Daemon_kill]/[Store_outage] events and no [system]
    was given. Occurrence times are relative to the simulation clock at
    the moment of injection. *)

type phase = Begin | End

val log : t -> (float * string * phase) list
(** Chronological record of every occurrence executed so far. *)

val injected : t -> int
val recovered : t -> int

val active : t -> int
(** Faults currently in effect. *)

val scheduled : t -> int
(** Total occurrences (begin events) the plan expanded to. *)

val pp_log : Format.formatter -> t -> unit

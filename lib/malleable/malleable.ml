(* Pure malleability machinery shared by the scheduler and the service
   daemon: spec/config types, allocation merge/shrink surgery, the
   data-redistribution cost model, and the per-directive audit record.
   Nothing here touches a world, a sim, or randomness — every function
   is a total (or clearly-raising) function of its arguments, which is
   what makes the reconfiguration-point invariants qcheck-able in
   isolation (test_malleable.ml). *)

module Allocation = Rm_core.Allocation
module Json = Rm_telemetry.Json

type spec = { min_procs : int; max_procs : int; data_mb_per_proc : float }

let spec ?(data_mb_per_proc = 64.0) ~min_procs ~max_procs () =
  if min_procs < 1 then invalid_arg "Malleable.spec: min_procs < 1";
  if max_procs < min_procs then
    invalid_arg "Malleable.spec: max_procs < min_procs";
  if not (Float.is_finite data_mb_per_proc) || data_mb_per_proc < 0.0 then
    invalid_arg "Malleable.spec: data_mb_per_proc must be finite and >= 0";
  { min_procs; max_procs; data_mb_per_proc }

let rigid ~procs =
  if procs < 1 then invalid_arg "Malleable.rigid: procs < 1";
  { min_procs = procs; max_procs = procs; data_mb_per_proc = 0.0 }

let is_rigid ~pref s = s.min_procs = pref && s.max_procs = pref

type config = {
  negotiation_period_s : float;
  min_gain_s : float;
  reconfig_overhead_s : float;
  grow_when_idle : bool;
  shrink_to_admit : bool;
  shrink_on_failure : bool;
  max_grow_step : int;
}

let default_config =
  {
    negotiation_period_s = 600.0;
    min_gain_s = 60.0;
    reconfig_overhead_s = 30.0;
    grow_when_idle = true;
    shrink_to_admit = true;
    shrink_on_failure = true;
    max_grow_step = 32;
  }

(* --- allocation surgery ------------------------------------------------- *)

let merge ~(base : Allocation.t) ~(extra : Allocation.t) =
  let totals = Hashtbl.create 8 in
  let order = ref [] in
  let feed (e : Allocation.entry) =
    (match Hashtbl.find_opt totals e.Allocation.node with
    | None ->
      order := e.Allocation.node :: !order;
      Hashtbl.replace totals e.Allocation.node e.Allocation.procs
    | Some p -> Hashtbl.replace totals e.Allocation.node (p + e.Allocation.procs))
  in
  List.iter feed base.Allocation.entries;
  List.iter feed extra.Allocation.entries;
  let entries =
    List.rev_map
      (fun node -> { Allocation.node; procs = Hashtbl.find totals node })
      !order
  in
  Allocation.make ~policy:base.Allocation.policy ~entries

let shrink_to (a : Allocation.t) ~target_procs =
  let total = Allocation.total_procs a in
  if target_procs < 1 || target_procs >= total then None
  else begin
    (* Drop from the tail: the last entries are the allocator's least
       preferred picks, so a shrink retreats in reverse preference
       order. The last surviving entry may shrink partially. *)
    let rec keep budget = function
      | [] -> []
      | (e : Allocation.entry) :: rest ->
        if budget <= 0 then []
        else if e.Allocation.procs <= budget then
          e :: keep (budget - e.Allocation.procs) rest
        else [ { e with Allocation.procs = budget } ]
    in
    let entries = keep target_procs a.Allocation.entries in
    Some (Allocation.make ~policy:a.Allocation.policy ~entries)
  end

let drop_nodes (a : Allocation.t) ~dead =
  let survivors =
    List.filter
      (fun (e : Allocation.entry) -> not (List.mem e.Allocation.node dead))
      a.Allocation.entries
  in
  if survivors = [] || List.length survivors = List.length a.Allocation.entries
  then None
  else Some (Allocation.make ~policy:a.Allocation.policy ~entries:survivors)

(* --- cost model ---------------------------------------------------------- *)

let moved_procs ~(from_ : Allocation.t) ~(to_ : Allocation.t) =
  let per_node = Hashtbl.create 8 in
  List.iter
    (fun (e : Allocation.entry) ->
      Hashtbl.replace per_node e.Allocation.node
        (Option.value (Hashtbl.find_opt per_node e.Allocation.node) ~default:0
        - e.Allocation.procs))
    from_.Allocation.entries;
  List.iter
    (fun (e : Allocation.entry) ->
      Hashtbl.replace per_node e.Allocation.node
        (Option.value (Hashtbl.find_opt per_node e.Allocation.node) ~default:0
        + e.Allocation.procs))
    to_.Allocation.entries;
  let gained, lost =
    Hashtbl.fold
      (fun _ d (g, l) -> if d > 0 then (g + d, l) else (g, l - d))
      per_node (0, 0)
  in
  max gained lost

let redistribution_mb spec ~moved_procs =
  spec.data_mb_per_proc *. float_of_int moved_procs

let transfer_delay_s ~moved_mb ~bandwidth_mb_s ~overhead_s =
  if bandwidth_mb_s <= 0.0 then
    invalid_arg "Malleable.transfer_delay_s: bandwidth must be positive";
  overhead_s +. (moved_mb /. bandwidth_mb_s)

let net_gain_s ~remaining_old_s ~remaining_new_s ~delay_s =
  remaining_old_s -. (remaining_new_s +. delay_s)

(* --- directive audit ----------------------------------------------------- *)

type kind = Grow | Shrink_admit | Shrink_failure

let kind_name = function
  | Grow -> "grow"
  | Shrink_admit -> "shrink_admit"
  | Shrink_failure -> "shrink_failure"

type verdict = Accepted | Rejected of string

type record = {
  time : float;
  job : string;
  kind : kind;
  from_procs : int;
  to_procs : int;
  moved_mb : float;
  delay_s : float;
  gain_s : float;
  verdict : verdict;
}

let record_to_json r =
  Json.Obj
    [
      ("time", Json.Num r.time);
      ("job", Json.Str r.job);
      ("kind", Json.Str (kind_name r.kind));
      ("from_procs", Json.Num (float_of_int r.from_procs));
      ("to_procs", Json.Num (float_of_int r.to_procs));
      ("moved_mb", Json.Num r.moved_mb);
      ("delay_s", Json.Num r.delay_s);
      ("gain_s", Json.Num r.gain_s);
      ( "verdict",
        Json.Str
          (match r.verdict with Accepted -> "accepted" | Rejected _ -> "rejected")
      );
      ( "reason",
        match r.verdict with
        | Accepted -> Json.Null
        | Rejected why -> Json.Str why );
    ]

let pp_record ppf r =
  Format.fprintf ppf "t=%.0fs %s %s %d->%d procs (%.0f MB, %.1fs delay, %+.1fs gain): %s"
    r.time r.job (kind_name r.kind) r.from_procs r.to_procs r.moved_mb
    r.delay_s r.gain_s
    (match r.verdict with
    | Accepted -> "accepted"
    | Rejected why -> "rejected: " ^ why)

(* --- telemetry ------------------------------------------------------------ *)

let m_grows = Rm_telemetry.Metrics.counter "sched.malleable.grows"
let m_shrinks = Rm_telemetry.Metrics.counter "sched.malleable.shrinks"
let m_rejected = Rm_telemetry.Metrics.counter "sched.malleable.rejected"

let m_shrink_recoveries =
  Rm_telemetry.Metrics.counter "sched.malleable.shrink_recoveries"

let m_redistributed_mb =
  Rm_telemetry.Metrics.counter "sched.malleable.redistributed_mb"

(** Malleability: grow/shrink running allocations.

    A malleable job declares a [min_procs .. max_procs] band around its
    preferred (submitted) process count. At reconfiguration points the
    scheduler (or the service daemon) evaluates expand/shrink directives
    against an explicit data-redistribution cost model and accepts a
    directive only when the projected benefit exceeds its cost. This
    module holds everything that is pure and shared between the
    scheduler integration ([lib/sched]) and the service protocol
    ([lib/service]): spec validation, allocation surgery (merge /
    shrink), the redistribution cost model, and the audit record for
    each accepted or rejected directive. The world-aware redistribution
    delay (per-node NIC rates under degradation) lives in
    {!Rm_mpisim.Executor.redistribution_delay_s}; the helpers here only
    need static link capacity. See docs/MALLEABILITY.md. *)

module Allocation = Rm_core.Allocation

(** {1 Job spec} *)

type spec = {
  min_procs : int;  (** never shrink below this *)
  max_procs : int;  (** never grow beyond this *)
  data_mb_per_proc : float;
      (** redistribution payload owned by each moved rank *)
}

val spec : ?data_mb_per_proc:float -> min_procs:int -> max_procs:int -> unit -> spec
(** Validated constructor: requires [1 <= min_procs <= max_procs] and a
    non-negative finite payload (default 64 MB). Raises
    [Invalid_argument] otherwise. *)

val rigid : procs:int -> spec
(** [min = max = procs], zero payload: a spec that can never move. *)

val is_rigid : pref:int -> spec -> bool
(** True when the band pins the job to its preferred size —
    [min_procs = max_procs = pref] — so no directive can ever apply. *)

(** {1 Engine knobs} *)

type config = {
  negotiation_period_s : float;
      (** cadence of the scheduler's periodic reconfiguration point *)
  min_gain_s : float;
      (** a directive must beat its cost by at least this margin *)
  reconfig_overhead_s : float;
      (** fixed per-directive cost (barrier, respawn, rewiring) added on
          top of the data-transfer time *)
  grow_when_idle : bool;  (** expand running jobs when the queue is empty *)
  shrink_to_admit : bool;
      (** shrink a running job to free capacity for the queue head *)
  shrink_on_failure : bool;
      (** on node death, drop the dead node's ranks instead of requeueing
          when the survivors still satisfy [min_procs] and the cost model
          favors it *)
  max_grow_step : int;  (** most procs added by a single grow directive *)
}

val default_config : config
(** 600 s period, 60 s margin, 30 s overhead, all directives enabled,
    grow step 32. *)

(** {1 Allocation surgery} *)

val merge : base:Allocation.t -> extra:Allocation.t -> Allocation.t
(** Per-node sum of the two allocations (policy kept from [base]). *)

val shrink_to : Allocation.t -> target_procs:int -> Allocation.t option
(** Drop procs from the tail entries until exactly [target_procs]
    remain (the last surviving entry may shrink partially). [None] when
    [target_procs] is not in [1 .. total_procs - 1] — shrinking to the
    current size or below zero is not a directive. *)

val drop_nodes : Allocation.t -> dead:int list -> Allocation.t option
(** Remove every entry on a node in [dead]. [None] when nothing
    survives (or nothing was dropped — not a shrink). *)

(** {1 Redistribution cost model} *)

val moved_procs : from_:Allocation.t -> to_:Allocation.t -> int
(** Ranks whose home node changes, computed from per-node deltas: the
    max of procs gained and procs lost across nodes (ranks are not
    tracked individually; a grow moves the new ranks' data in, a shrink
    moves the dropped ranks' data out). *)

val redistribution_mb : spec -> moved_procs:int -> float
(** [data_mb_per_proc * moved_procs]. *)

val transfer_delay_s :
  moved_mb:float -> bandwidth_mb_s:float -> overhead_s:float -> float
(** [overhead + moved_mb / bandwidth]: the flat-capacity estimate used
    on the service path where no world model is available. Raises
    [Invalid_argument] on non-positive bandwidth. *)

val net_gain_s :
  remaining_old_s:float -> remaining_new_s:float -> delay_s:float -> float
(** The directive's projected benefit:
    [remaining_old - (remaining_new + delay)]. Positive means the
    reconfigured job finishes earlier despite paying the
    redistribution. *)

(** {1 Directive audit} *)

type kind = Grow | Shrink_admit | Shrink_failure

val kind_name : kind -> string

type verdict = Accepted | Rejected of string

type record = {
  time : float;  (** virtual time of the reconfiguration point *)
  job : string;
  kind : kind;
  from_procs : int;
  to_procs : int;
  moved_mb : float;
  delay_s : float;  (** redistribution delay charged (0 when rejected) *)
  gain_s : float;  (** projected net gain that drove the verdict *)
  verdict : verdict;
}

val record_to_json : record -> Rm_telemetry.Json.t
val pp_record : Format.formatter -> record -> unit

(** {1 Telemetry}

    Counters under [sched.malleable.*] (documented in
    docs/OBSERVABILITY.md §7), bumped by whoever applies a directive. *)

val m_grows : Rm_telemetry.Metrics.t
val m_shrinks : Rm_telemetry.Metrics.t
val m_rejected : Rm_telemetry.Metrics.t
val m_shrink_recoveries : Rm_telemetry.Metrics.t
val m_redistributed_mb : Rm_telemetry.Metrics.t

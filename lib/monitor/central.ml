module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module World = Rm_workload.World
module Telemetry = Rm_telemetry

let m_relaunches = Telemetry.Metrics.counter "monitor.central.relaunches"
let m_promotions = Telemetry.Metrics.counter "monitor.central.promotions"

type role = Master | Slave

type instance = { daemon : Daemon.t; mutable role : role }

type t = {
  world : World.t;
  rng : Rng.t;
  supervised : Daemon.t list;
  period : float;
  until : float;
  mutable instances : instance list;
  mutable relaunches : int;
  mutable next_id : int;
}

let healthy t inst =
  Daemon.is_alive inst.daemon && World.is_up t.world ~node:(Daemon.node inst.daemon)

let find_role t role =
  List.find_opt (fun i -> i.role = role && healthy t i) t.instances

let pick_node t ~avoid =
  let up = World.up_nodes t.world in
  let candidates = List.filter (fun n -> not (List.mem n avoid)) up in
  match candidates with
  | [] -> List.nth_opt up 0
  | _ ->
    let arr = Array.of_list candidates in
    Some (Rng.choose t.rng arr)

let occupied t =
  List.filter_map
    (fun i -> if healthy t i then Some (Daemon.node i.daemon) else None)
    t.instances

let prune t = t.instances <- List.filter (fun i -> Daemon.is_alive i.daemon) t.instances

let rec spawn t ~sim ~role ~node =
  let inst_ref = ref None in
  let action sim =
    match !inst_ref with Some inst -> run t inst ~sim | None -> ()
  in
  let daemon =
    Daemon.launch ~sim
      ~name:(Printf.sprintf "central-%d" t.next_id)
      ~node ~period:t.period
      ~host_up:(fun n -> World.is_up t.world ~node:n)
      ~until:t.until ~action ()
  in
  t.next_id <- t.next_id + 1;
  let inst = { daemon; role } in
  inst_ref := Some inst;
  t.instances <- inst :: t.instances;
  inst

and run t inst ~sim =
  match inst.role with
  | Master ->
    (* Revive crashed monitoring daemons on live nodes. *)
    List.iter
      (fun d ->
        if not (Daemon.is_alive d) then begin
          match pick_node t ~avoid:[] with
          | Some node ->
            Daemon.relaunch d ~sim ~node;
            t.relaunches <- t.relaunches + 1;
            Telemetry.Metrics.incr m_relaunches
          | None -> ()
        end)
      t.supervised;
    (* Keep a live slave around. *)
    prune t;
    if find_role t Slave = None then begin
      let avoid = occupied t in
      match pick_node t ~avoid with
      | Some node -> ignore (spawn t ~sim ~role:Slave ~node)
      | None -> ()
    end
  | Slave ->
    if find_role t Master = None then begin
      (* Promote; master duties resume on this instance's next tick. *)
      inst.role <- Master;
      Telemetry.Metrics.incr m_promotions;
      Telemetry.Trace.instant ~time:(Sim.now sim)
        ~attrs:[ ("daemon", Daemon.name inst.daemon) ]
        "central.promote";
      run t inst ~sim
    end

let launch ~sim ~world ~rng ~supervised ?(period = 15.0) ~until () =
  let t =
    {
      world;
      rng = Rng.split rng;
      supervised;
      period;
      until;
      instances = [];
      relaunches = 0;
      next_id = 0;
    }
  in
  let up = World.up_nodes world in
  (match up with
  | a :: rest ->
    let b = match rest with b :: _ -> b | [] -> a in
    ignore (spawn t ~sim ~role:Master ~node:a);
    ignore (spawn t ~sim ~role:Slave ~node:b)
  | [] -> invalid_arg "Central.launch: no live nodes");
  t

let master t = Option.map (fun i -> i.daemon) (find_role t Master)
let slave t = Option.map (fun i -> i.daemon) (find_role t Slave)
let instance_count t = List.length (List.filter (healthy t) t.instances)

let crash_role t role =
  match find_role t role with
  | Some inst -> Daemon.crash inst.daemon
  | None -> ()

let crash_master t = crash_role t Master
let crash_slave t = crash_role t Slave
let relaunches t = t.relaunches

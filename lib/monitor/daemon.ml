module Sim = Rm_engine.Sim
module Telemetry = Rm_telemetry

type t = {
  name : string;
  period : float;
  jitter : (unit -> float) option;
  host_up : int -> bool;
  until : float;
  action : Sim.t -> unit;
  tick_metric : Telemetry.Metrics.t;
  mutable node : int;
  mutable alive : bool;
  mutable generation : int;  (* invalidates in-flight ticks on crash *)
  mutable ticks : int;
}

(* One counter family per daemon kind ("nodestate-17" -> "nodestate"),
   not per instance, so the registry stays small on big clusters. *)
let family name =
  match String.index_opt name '-' with
  | Some i -> String.sub name 0 i
  | None -> name

let m_crashes = Telemetry.Metrics.counter "monitor.daemon.crashes"
let m_relaunches = Telemetry.Metrics.counter "monitor.daemon.relaunches"

let name t = t.name
let node t = t.node
let is_alive t = t.alive
let tick_count t = t.ticks

let delay t =
  match t.jitter with
  | None -> t.period
  | Some j -> Float.max 1e-9 (t.period +. j ())

let rec schedule t ~sim ~gen ~first =
  let d = if first then 0.0 else delay t in
  if Sim.now sim +. d <= t.until then
    ignore
      (Sim.schedule_after sim ~delay:d (fun sim ->
           if t.alive && t.generation = gen then begin
             if t.host_up t.node then begin
               t.ticks <- t.ticks + 1;
               Telemetry.Metrics.incr t.tick_metric;
               t.action sim
             end;
             schedule t ~sim ~gen ~first:false
           end))

let launch ~sim ~name ~node ~period ?jitter ?(host_up = fun _ -> true) ~until
    ~action () =
  if period <= 0.0 then invalid_arg "Daemon.launch: period must be positive";
  let t =
    {
      name;
      period;
      jitter;
      host_up;
      until;
      action;
      tick_metric =
        Telemetry.Metrics.counter "monitor.daemon.ticks"
          ~labels:[ ("daemon", family name) ];
      node;
      alive = true;
      generation = 0;
      ticks = 0;
    }
  in
  schedule t ~sim ~gen:0 ~first:true;
  t

let crash t =
  t.alive <- false;
  t.generation <- t.generation + 1;
  Telemetry.Metrics.incr m_crashes

let relaunch t ~sim ~node =
  if not t.alive then begin
    t.alive <- true;
    t.node <- node;
    t.generation <- t.generation + 1;
    Telemetry.Metrics.incr m_relaunches;
    Telemetry.Trace.instant ~time:(Sim.now sim)
      ~attrs:[ ("daemon", t.name); ("node", string_of_int node) ]
      "monitor.daemon.relaunch";
    schedule t ~sim ~gen:t.generation ~first:true
  end

module Matrix = Rm_stats.Matrix
module Running_means = Rm_stats.Running_means
module Metrics = Rm_telemetry.Metrics

type entry = {
  load : (int * float) list;
  traffic : ((int * int) * float) list;
}

type handle = int

type t = {
  node_count : int;
  entries : (handle, entry) Hashtbl.t;
  mutable next : handle;
}

let m_registered = Metrics.counter "service.overlay.registered"
let m_released = Metrics.counter "service.overlay.released"
let m_active = Metrics.gauge "service.overlay.active"
let m_load = Metrics.gauge "service.overlay.load"
let m_traffic = Metrics.gauge "service.overlay.traffic_mb_s"

let create ~node_count =
  if node_count <= 0 then invalid_arg "Overlay.create: node_count must be > 0";
  { node_count; entries = Hashtbl.create 16; next = 1 }

let is_empty t = Hashtbl.length t.entries = 0
let active t = Hashtbl.length t.entries

let entry_load e = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 e.load

let entry_traffic e =
  List.fold_left (fun acc (_, d) -> acc +. d) 0.0 e.traffic

let total_load t =
  Hashtbl.fold (fun _ e acc -> acc +. entry_load e) t.entries 0.0

let total_traffic_mb_s t =
  Hashtbl.fold (fun _ e acc -> acc +. entry_traffic e) t.entries 0.0

let load_on t ~node =
  Hashtbl.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc (n, l) -> if n = node then acc +. l else acc)
        acc e.load)
    t.entries 0.0

let incident_traffic_mb_s t ~node =
  Hashtbl.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc ((a, b), d) -> if a = node || b = node then acc +. d else acc)
        acc e.traffic)
    t.entries 0.0

let nodes t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ e ->
      List.iter (fun (n, _) -> Hashtbl.replace seen n ()) e.load;
      List.iter
        (fun ((a, b), _) ->
          Hashtbl.replace seen a ();
          Hashtbl.replace seen b ())
        e.traffic)
    t.entries;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let refresh_gauges t =
  Metrics.set m_active (float_of_int (active t));
  Metrics.set m_load (total_load t);
  Metrics.set m_traffic (total_traffic_mb_s t)

let validate t ~load ~traffic =
  let check_node what n =
    if n < 0 || n >= t.node_count then
      invalid_arg (Printf.sprintf "Overlay: %s node %d out of range" what n)
  in
  let check_amount what v =
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg (Printf.sprintf "Overlay: %s must be finite and >= 0" what)
  in
  List.iter
    (fun (n, l) ->
      check_node "load" n;
      check_amount "load" l)
    load;
  List.iter
    (fun ((a, b), d) ->
      check_node "traffic" a;
      check_node "traffic" b;
      if a = b then invalid_arg "Overlay: traffic edge must join two nodes";
      check_amount "traffic demand" d)
    traffic

let register t ~load ~traffic =
  validate t ~load ~traffic;
  let h = t.next in
  t.next <- h + 1;
  Hashtbl.replace t.entries h { load; traffic };
  Metrics.incr m_registered;
  refresh_gauges t;
  h

let set t h ~load ~traffic =
  if not (Hashtbl.mem t.entries h) then
    invalid_arg (Printf.sprintf "Overlay.set: handle %d is not live" h);
  validate t ~load ~traffic;
  Hashtbl.replace t.entries h { load; traffic };
  refresh_gauges t

let remove t h =
  if Hashtbl.mem t.entries h then begin
    Hashtbl.remove t.entries h;
    Metrics.incr m_released;
    refresh_gauges t
  end

let bump (v : Running_means.view) extra =
  if extra = 0.0 then v
  else
    {
      Running_means.instant = v.Running_means.instant +. extra;
      m1 = v.Running_means.m1 +. extra;
      m5 = v.Running_means.m5 +. extra;
      m15 = v.Running_means.m15 +. extra;
    }

let apply t (snapshot : Snapshot.t) =
  if is_empty t then snapshot
  else begin
    let n = Array.length snapshot.Snapshot.nodes in
    let load_add = Array.make n 0.0 in
    let inc = Array.make n 0.0 in
    Hashtbl.iter
      (fun _ e ->
        List.iter
          (fun (v, l) -> if v < n then load_add.(v) <- load_add.(v) +. l)
          e.load;
        List.iter
          (fun ((a, b), d) ->
            if a < n then inc.(a) <- inc.(a) +. d;
            if b < n then inc.(b) <- inc.(b) +. d)
          e.traffic)
      t.entries;
    let any_load = Array.exists (fun l -> l > 0.0) load_add in
    let any_traffic = Array.exists (fun d -> d > 0.0) inc in
    (* Share the nodes array physically when no entry adds load — the
       model cache then carries the CL model forward unchanged. *)
    let nodes =
      if not any_load then snapshot.Snapshot.nodes
      else
        Array.mapi
          (fun i info ->
            match info with
            | None -> None
            | Some (info : Snapshot.node_info) ->
              if load_add.(i) = 0.0 then Some info
              else
                Some
                  { info with Snapshot.load = bump info.Snapshot.load load_add.(i) })
          snapshot.Snapshot.nodes
    in
    (* Each touched row is rewritten from the base matrix's values, so
       re-applying over a fresh copy is idempotent and the (i, j) pair
       with both endpoints overlaid is not double-discounted per row. *)
    let bw =
      if not any_traffic then snapshot.Snapshot.bw_mb_s
      else begin
        let bw = Matrix.copy snapshot.Snapshot.bw_mb_s in
        let base = snapshot.Snapshot.bw_mb_s in
        for i = 0 to n - 1 do
          if inc.(i) > 0.0 then
            for j = 0 to n - 1 do
              if j <> i then begin
                let reduced =
                  Float.max 0.0 (Matrix.get base i j -. inc.(i) -. inc.(j))
                in
                Matrix.set bw i j reduced;
                Matrix.set bw j i reduced
              end
            done
        done;
        bw
      end
    in
    { snapshot with Snapshot.nodes; bw_mb_s = bw }
  end

(** Grant overlays: live allocations become first-class load sources.

    The resident daemon's grants used to be bookkeeping only — an
    active allocation left the monitored world untouched, so two
    concurrent clients could be handed overlapping nodes and every
    contention measurement was fiction. An {!t} registry holds one
    entry per live grant (per-node compute load plus per-edge traffic
    demand), and {!apply} composes the registry onto a captured
    {!Snapshot.t}: node loads gain the granted compute load, and the
    measured bandwidth rows of overlaid nodes lose the traffic their
    grants are assumed to push. The broker's CL_v (Eq. 1) and NL
    (Eq. 2) then see prior grants without waiting for the (virtual-
    time-paced) monitor daemons to observe them.

    Composition is snapshot-level on purpose: the daemon advances
    virtual time by ~10 ms per refresh, so a [World]-level job overlay
    would stay invisible to the 6 s/300 s daemon sampling cadences for
    the daemon's whole wall-clock lifetime.

    Invariants (qcheck-gated in [test_service.ml]):
    - an empty registry applies as the physical identity — overlay-off
      servers and scenarios compose nothing and stay bit-identical;
    - the registry is conservative: the sum of overlay load equals the
      sum over live entries, and removal restores exactly what
      registration added (no leaked or negative load). *)

type t

val create : node_count:int -> t
(** A registry for a cluster of [node_count] nodes. Entries are
    validated against this bound at registration time. *)

type handle = int

val register :
  t ->
  load:(int * float) list ->
  traffic:((int * int) * float) list ->
  handle
(** Add one grant's footprint. [load] maps node id to added compute
    load (runnable-queue contribution, typically ranks on that node ×
    a per-rank figure); [traffic] maps undirected node pairs to MB/s
    of assumed demand. Raises [Invalid_argument] on out-of-range
    nodes, self-edges, or negative/non-finite figures. *)

val set :
  t ->
  handle ->
  load:(int * float) list ->
  traffic:((int * int) * float) list ->
  unit
(** Replace a live entry in place — how a v2 grow/shrink/renegotiate
    re-shapes a grant's footprint. Raises [Invalid_argument] if the
    handle is not live (same validation as {!register} otherwise). *)

val remove : t -> handle -> unit
(** Drop an entry. Idempotent: removing a dead handle is a no-op. *)

val is_empty : t -> bool
val active : t -> int

val total_load : t -> float
(** Sum of all per-node load contributions across live entries. *)

val total_traffic_mb_s : t -> float
(** Sum of all per-edge traffic demands across live entries. *)

val load_on : t -> node:int -> float
(** Composed extra load on one node (0 outside any entry). *)

val incident_traffic_mb_s : t -> node:int -> float
(** Sum of traffic demands on edges touching [node]. *)

val nodes : t -> int list
(** Sorted, deduplicated node ids touched by any live entry. *)

val apply : t -> Snapshot.t -> Snapshot.t
(** Compose the registry onto a snapshot. An empty registry returns
    the snapshot itself (physical identity, [==]). Otherwise the
    result shares the cluster, live set, peak and latency matrices
    with its base; [nodes] is rebuilt with the overlay load added to
    every running-means view (a grant is modeled as sustained
    occupancy), and [bw_mb_s] is copied with the rows/columns of
    overlaid nodes reduced by each endpoint's incident traffic,
    clamped at zero. [written_at] is untouched, so the broker's
    staleness gate keeps reflecting real monitor freshness. *)

module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module World = Rm_workload.World
module Network = Rm_netsim.Network
module Telemetry = Rm_telemetry

let m_bw_rounds =
  Telemetry.Metrics.counter "monitor.probe.rounds"
    ~labels:[ ("kind", "bandwidth") ]

let m_lat_rounds =
  Telemetry.Metrics.counter "monitor.probe.rounds" ~labels:[ ("kind", "latency") ]

let live_nodes world store =
  match Store.read_livehosts store with
  | Some (_, nodes) -> nodes
  | None -> World.up_nodes world

let launch_bandwidth ~sim ~world ~store ~rng ~node ?(period = 300.0) ~until () =
  let rng = Rng.split rng in
  let action sim =
    let now = Sim.now sim in
    World.advance world ~now;
    let nodes = live_nodes world store in
    if List.length nodes >= 2 then
      List.iter
        (fun round ->
          (* The whole round measures concurrently: every probe pair
             gets its fair share against the others and background. *)
          Telemetry.Metrics.incr m_bw_rounds;
          Telemetry.Trace.instant ~time:now
            ~attrs:[ ("pairs", string_of_int (List.length round)) ]
            "probe.bandwidth.round";
          let pairs = Array.of_list round in
          let rates = Network.rates_with_extra (World.network world) ~extra:pairs in
          Array.iteri
            (fun i (src, dst) ->
              let noise = 1.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.03 in
              let mb_s = Float.max 0.1 (rates.(i) *. noise) in
              Store.write_bandwidth store ~time:now ~src ~dst ~mb_s)
            pairs)
        (Pair_schedule.rounds nodes)
  in
  Daemon.launch ~sim
    ~name:(Printf.sprintf "bandwidth-%d" node)
    ~node ~period
    ~host_up:(fun n -> World.is_up world ~node:n)
    ~until ~action ()

let launch_latency ~sim ~world ~store ~rng ~node ?(period = 60.0) ~until () =
  let rng = Rng.split rng in
  let action sim =
    let now = Sim.now sim in
    World.advance world ~now;
    let nodes = live_nodes world store in
    if List.length nodes >= 2 then
      List.iter
        (fun round ->
          Telemetry.Metrics.incr m_lat_rounds;
          Telemetry.Trace.instant ~time:now
            ~attrs:[ ("pairs", string_of_int (List.length round)) ]
            "probe.latency.round";
          List.iter
            (fun (src, dst) ->
              let truth = Network.latency_us (World.network world) ~src ~dst in
              let noise = 1.0 +. Rng.gaussian rng ~mu:0.0 ~sigma:0.05 in
              let us = Float.max 1.0 (truth *. noise) in
              Store.write_latency store ~time:now ~src ~dst ~us)
            round)
        (Pair_schedule.rounds nodes)
  in
  Daemon.launch ~sim
    ~name:(Printf.sprintf "latency-%d" node)
    ~node ~period
    ~host_up:(fun n -> World.is_up world ~node:n)
    ~until ~action ()

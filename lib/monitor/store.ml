module Matrix = Rm_stats.Matrix
module Telemetry = Rm_telemetry

let m_node_writes = Telemetry.Metrics.counter "monitor.store.node_writes"
let m_node_reads = Telemetry.Metrics.counter "monitor.store.node_reads"
let m_livehosts_writes = Telemetry.Metrics.counter "monitor.store.livehosts_writes"
let m_pair_writes = Telemetry.Metrics.counter "monitor.store.pair_writes"
let m_pair_reads = Telemetry.Metrics.counter "monitor.store.pair_reads"

type node_record = {
  node : int;
  written_at : float;
  users : int;
  load : Rm_stats.Running_means.view;
  util_pct : Rm_stats.Running_means.view;
  nic_mb_s : Rm_stats.Running_means.view;
  mem_avail_gb : Rm_stats.Running_means.view;
}

type cell = { mutable time : float; mutable value : float; mutable set : bool }

type t = {
  n : int;
  nodes : node_record option array;
  livehosts : (float * int list) option ref;
  bw : cell array array;  (* upper triangle: bw.(min).(max) *)
  lat : cell array array;
  mutable write_loss : bool;  (* NFS outage: drop writes, keep reads *)
}

let fresh_cell () = { time = 0.0; value = 0.0; set = false }

let create ~node_count =
  if node_count <= 0 then invalid_arg "Store.create: no nodes";
  {
    n = node_count;
    nodes = Array.make node_count None;
    livehosts = ref None;
    bw = Array.init node_count (fun _ -> Array.init node_count (fun _ -> fresh_cell ()));
    lat = Array.init node_count (fun _ -> Array.init node_count (fun _ -> fresh_cell ()));
    write_loss = false;
  }

let node_count t = t.n
let set_write_loss t flag = t.write_loss <- flag
let write_loss t = t.write_loss

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Store: node index out of range"

let write_node t record =
  check t record.node;
  if not t.write_loss then begin
    Telemetry.Metrics.incr m_node_writes;
    t.nodes.(record.node) <- Some record
  end

let read_node t ~node =
  check t node;
  Telemetry.Metrics.incr m_node_reads;
  t.nodes.(node)

let write_livehosts t ~time ~nodes =
  List.iter (check t) nodes;
  if not t.write_loss then begin
    Telemetry.Metrics.incr m_livehosts_writes;
    t.livehosts := Some (time, nodes)
  end

let read_livehosts t = !(t.livehosts)

let pair_cell table t src dst =
  check t src;
  check t dst;
  if src = dst then invalid_arg "Store: self pair";
  let a = min src dst and b = max src dst in
  table.(a).(b)

let write_pair table t ~time ~src ~dst ~value =
  let cell = pair_cell table t src dst in
  if not t.write_loss then begin
    Telemetry.Metrics.incr m_pair_writes;
    cell.time <- time;
    cell.value <- value;
    cell.set <- true
  end

let read_pair table t ~src ~dst =
  let cell = pair_cell table t src dst in
  Telemetry.Metrics.incr m_pair_reads;
  if cell.set then Some (cell.time, cell.value) else None

let write_bandwidth t ~time ~src ~dst ~mb_s =
  write_pair t.bw t ~time ~src ~dst ~value:mb_s

let read_bandwidth t ~src ~dst = read_pair t.bw t ~src ~dst

let write_latency t ~time ~src ~dst ~us =
  write_pair t.lat t ~time ~src ~dst ~value:us

let read_latency t ~src ~dst = read_pair t.lat t ~src ~dst

let matrix_of table t ~default ~diagonal =
  let m = Matrix.square t.n ~init:default in
  for i = 0 to t.n - 1 do
    Matrix.set m i i diagonal;
    for j = i + 1 to t.n - 1 do
      if table.(i).(j).set then begin
        Matrix.set m i j table.(i).(j).value;
        Matrix.set m j i table.(i).(j).value
      end
    done
  done;
  m

let bandwidth_matrix t ~default = matrix_of t.bw t ~default ~diagonal:infinity
let latency_matrix t ~default = matrix_of t.lat t ~default ~diagonal:0.0

(* --- persistence ---------------------------------------------------- *)

let view_fields (v : Rm_stats.Running_means.view) =
  Printf.sprintf "%h %h %h %h" v.instant v.m1 v.m5 v.m15

let parse_view = function
  | [ a; b; c; d ] ->
    {
      Rm_stats.Running_means.instant = float_of_string a;
      m1 = float_of_string b;
      m5 = float_of_string c;
      m15 = float_of_string d;
    }
  | _ -> failwith "bad view"

let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "store v1 %d\n" t.n);
  (match !(t.livehosts) with
  | Some (time, nodes) ->
    Buffer.add_string buf
      (Printf.sprintf "livehosts %h %s\n" time
         (String.concat "," (List.map string_of_int nodes)))
  | None -> ());
  Array.iter
    (fun record ->
      match record with
      | Some (r : node_record) ->
        Buffer.add_string buf
          (Printf.sprintf "node %d %h %d %s %s %s %s\n" r.node r.written_at
             r.users (view_fields r.load) (view_fields r.util_pct)
             (view_fields r.nic_mb_s)
             (view_fields r.mem_avail_gb))
      | None -> ())
    t.nodes;
  let dump_pairs kind table =
    for i = 0 to t.n - 1 do
      for j = i + 1 to t.n - 1 do
        if table.(i).(j).set then
          Buffer.add_string buf
            (Printf.sprintf "%s %d %d %h %h\n" kind i j table.(i).(j).time
               table.(i).(j).value)
      done
    done
  in
  dump_pairs "bw" t.bw;
  dump_pairs "lat" t.lat;
  Buffer.contents buf

let load text =
  let fail lineno msg = failwith (Printf.sprintf "Store.load: line %d: %s" lineno msg) in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> failwith "Store.load: empty input"
  | header :: rest ->
    let t =
      match String.split_on_char ' ' header with
      | [ "store"; "v1"; n ] ->
        (try create ~node_count:(int_of_string n)
         with Failure _ | Invalid_argument _ -> fail 1 "bad node count")
      | _ -> fail 1 "bad header"
    in
    List.iteri
      (fun k line ->
        let lineno = k + 2 in
        match String.split_on_char ' ' line with
        | "livehosts" :: time :: nodes ->
          let nodes =
            match nodes with
            | [] | [ "" ] -> []
            | [ csv ] ->
              String.split_on_char ',' csv |> List.map int_of_string
            | _ -> fail lineno "bad livehosts"
          in
          (try write_livehosts t ~time:(float_of_string time) ~nodes
           with Failure _ | Invalid_argument _ -> fail lineno "bad livehosts")
        | "node" :: node :: written :: users :: rest when List.length rest = 16 ->
          (try
             let take4 l = (parse_view [ List.nth l 0; List.nth l 1; List.nth l 2; List.nth l 3 ],
                            List.filteri (fun i _ -> i >= 4) l) in
             let load, rest = take4 rest in
             let util_pct, rest = take4 rest in
             let nic_mb_s, rest = take4 rest in
             let mem_avail_gb, _ = take4 rest in
             write_node t
               {
                 node = int_of_string node;
                 written_at = float_of_string written;
                 users = int_of_string users;
                 load;
                 util_pct;
                 nic_mb_s;
                 mem_avail_gb;
               }
           with Failure _ | Invalid_argument _ -> fail lineno "bad node record")
        | [ "bw"; i; j; time; v ] ->
          (try
             write_bandwidth t ~time:(float_of_string time)
               ~src:(int_of_string i) ~dst:(int_of_string j)
               ~mb_s:(float_of_string v)
           with Failure _ | Invalid_argument _ -> fail lineno "bad bw record")
        | [ "lat"; i; j; time; v ] ->
          (try
             write_latency t ~time:(float_of_string time) ~src:(int_of_string i)
               ~dst:(int_of_string j) ~us:(float_of_string v)
           with Failure _ | Invalid_argument _ -> fail lineno "bad lat record")
        | _ -> fail lineno "unknown record")
      rest;
    t

(** Shared data store — the stand-in for the paper's NFS directory.

    Every daemon writes its observations here; the Node Allocator (and
    nothing else) reads them back. Records carry the virtual timestamp of
    the write, so consumers can reason about staleness exactly as they
    would with mtimes on a shared filesystem. *)

type node_record = {
  node : int;
  written_at : float;
  users : int;
  load : Rm_stats.Running_means.view;
  util_pct : Rm_stats.Running_means.view;
  nic_mb_s : Rm_stats.Running_means.view;
  mem_avail_gb : Rm_stats.Running_means.view;
}

type t

val create : node_count:int -> t
val node_count : t -> int

val set_write_loss : t -> bool -> unit
(** While set, every write is silently dropped — the NFS outage the
    paper's daemons must survive. Existing records keep their old
    timestamps, so readers see a growing staleness window. Reads are
    unaffected. *)

val write_loss : t -> bool

(** {2 Node state (written by NodeStateD)} *)

val write_node : t -> node_record -> unit
val read_node : t -> node:int -> node_record option

(** {2 Liveness (written by LivehostsD)} *)

val write_livehosts : t -> time:float -> nodes:int list -> unit
val read_livehosts : t -> (float * int list) option
(** Most recent livehosts list with its timestamp. *)

(** {2 P2P measurements (written by BandwidthD / LatencyD)} *)

val write_bandwidth : t -> time:float -> src:int -> dst:int -> mb_s:float -> unit
(** Stored symmetrically (links are full duplex but probes measure the
    shared path). *)

val read_bandwidth : t -> src:int -> dst:int -> (float * float) option
(** (written_at, MB/s). *)

val write_latency : t -> time:float -> src:int -> dst:int -> us:float -> unit
val read_latency : t -> src:int -> dst:int -> (float * float) option

val bandwidth_matrix : t -> default:float -> Rm_stats.Matrix.t
(** Latest measured bandwidths as a matrix; unmeasured pairs get
    [default], the diagonal gets [infinity]. *)

val latency_matrix : t -> default:float -> Rm_stats.Matrix.t
(** Diagonal gets [0]. *)

(** {2 Persistence}

    The paper's daemons write to NFS so monitor state survives any
    single process; [save]/[load] give the in-memory stand-in the same
    property (a line-oriented text format, stable across versions of
    this library). *)

val save : t -> string
val load : string -> t
(** Raises [Failure] with a line number on malformed input. *)

module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Rng = Rm_stats.Rng

type cadence = {
  node_state_period : float;
  livehosts_periods : float * float;
  latency_period : float;
  bandwidth_period : float;
}

let default_cadence =
  {
    node_state_period = 6.0;
    livehosts_periods = (5.0, 13.0);
    latency_period = 60.0;
    bandwidth_period = 300.0;
  }

type t = {
  store : Store.t;
  central : Central.t;
  daemons : Daemon.t list;
  cluster : Cluster.t;
}

let start ~sim ~world ~rng ?(cadence = default_cadence) ~until () =
  let cluster = World.cluster world in
  let n = Cluster.node_count cluster in
  let store = Store.create ~node_count:n in
  let node_state =
    List.init n (fun node ->
        Node_state_d.launch ~sim ~world ~store ~rng ~node
          ~period:cadence.node_state_period ~until ())
  in
  let lp1, lp2 = cadence.livehosts_periods in
  let livehosts =
    [
      Livehosts_d.launch ~sim ~world ~store ~node:0 ~period:lp1 ~until ();
      Livehosts_d.launch ~sim ~world ~store ~node:(min 1 (n - 1)) ~period:lp2
        ~until ();
    ]
  in
  let probes =
    [
      Probe_d.launch_bandwidth ~sim ~world ~store ~rng ~node:0
        ~period:cadence.bandwidth_period ~until ();
      Probe_d.launch_latency ~sim ~world ~store ~rng ~node:(min 1 (n - 1))
        ~period:cadence.latency_period ~until ();
    ]
  in
  let daemons = node_state @ livehosts @ probes in
  let central = Central.launch ~sim ~world ~rng ~supervised:daemons ~until () in
  { store; central; daemons; cluster }

let store t = t.store
let central t = t.central
let daemons t = t.daemons

let m_captures = Rm_telemetry.Metrics.counter "monitor.snapshot.captures"
let m_staleness = Rm_telemetry.Metrics.histogram "monitor.snapshot.staleness_s"

let snapshot t ~time =
  let snap = Snapshot.capture ~time ~cluster:t.cluster ~store:t.store in
  if Rm_telemetry.Runtime.is_enabled () then begin
    Rm_telemetry.Metrics.incr m_captures;
    Rm_telemetry.Metrics.observe m_staleness (Snapshot.max_staleness snap)
  end;
  snap

let warm_up_s cadence =
  Float.max 900.0 (cadence.bandwidth_period +. 60.0)

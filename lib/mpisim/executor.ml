module World = Rm_workload.World
module Network = Rm_netsim.Network
module Cluster = Rm_cluster.Cluster
module Allocation = Rm_core.Allocation
module Telemetry = Rm_telemetry

let m_runs = Telemetry.Metrics.counter "mpisim.runs"
let m_iterations = Telemetry.Metrics.counter "mpisim.iterations"
let m_iter_compute_s = Telemetry.Metrics.histogram "mpisim.iter.compute_s"
let m_iter_comm_s = Telemetry.Metrics.histogram "mpisim.iter.comm_s"
let m_compute_s_total = Telemetry.Metrics.counter "mpisim.compute_s_total"
let m_comm_s_total = Telemetry.Metrics.counter "mpisim.comm_s_total"
let m_inter_node_bytes = Telemetry.Metrics.counter "mpisim.inter_node_bytes"

type stats = {
  app : string;
  policy : string;
  total_time_s : float;
  compute_time_s : float;
  comm_time_s : float;
  iterations : int;
  comm_fraction : float;
  inter_node_bytes : float;
  mean_load_per_core : float;
}

let compute_step ~world ~cluster ~placement ~phase =
  (* Critical path of the compute part: the slowest rank. *)
  let ranks = Placement.ranks placement in
  let worst = ref 0.0 in
  for rank = 0 to ranks - 1 do
    let node_id = Placement.node_of_rank placement ~rank in
    let node = Cluster.node cluster node_id in
    let t =
      Cost_model.compute_time_s ~node
        ~background_load:(World.cpu_load world ~node:node_id)
        ~job_ranks_on_node:(Placement.ranks_on placement ~node:node_id)
        ~flops:(phase.App.flops_per_rank rank)
    in
    if t > !worst then worst := t
  done;
  !worst

(* Aggregate rank-to-rank messages into unordered node-pair volumes plus
   per-node intra-node traffic. *)
let aggregate_messages ~placement ~messages =
  let inter = Hashtbl.create 16 in
  let intra = ref 0.0 in
  List.iter
    (fun (src, dst, bytes) ->
      let a = Placement.node_of_rank placement ~rank:src in
      let b = Placement.node_of_rank placement ~rank:dst in
      if a = b then intra := Float.max !intra bytes
      else begin
        let key = (min a b, max a b) in
        Hashtbl.replace inter key
          (bytes +. Option.value (Hashtbl.find_opt inter key) ~default:0.0)
      end)
    messages;
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) inter [] in
  (List.sort compare pairs, !intra)

let p2p_step ~network ~pairs ~intra_bytes =
  let intra_time =
    if intra_bytes > 0.0 then Cost_model.intra_node_time_s ~bytes:intra_bytes
    else 0.0
  in
  match pairs with
  | [] -> (intra_time, 0.0)
  | _ ->
    let extra = Array.of_list (List.map fst pairs) in
    let rates = Network.rates_with_extra network ~extra in
    let bytes_total = List.fold_left (fun acc (_, b) -> acc +. b) 0.0 pairs in
    let worst =
      List.fold_left
        (fun (acc, i) ((u, v), bytes) ->
          let lat = Network.latency_us network ~src:u ~dst:v in
          let bw = Float.max 0.1 rates.(i) in
          let t = Cost_model.message_time_s ~latency_us:lat ~bandwidth_mb_s:bw ~bytes in
          (Float.max acc t, i + 1))
        (intra_time, 0) pairs
    in
    (fst worst, bytes_total)

let link_view network : Collectives.link_view =
  {
    latency_us = (fun ~src ~dst -> Network.latency_us network ~src ~dst);
    bandwidth_mb_s =
      (fun ~src ~dst ->
        let bw = Network.available_bandwidth_mb_s network ~src ~dst in
        Float.max 0.1 (Float.min bw 1e6));
  }

(* Fig. 5's metric: runnable processes per logical core on the allocated
   nodes *during the run* — the job's own ranks count too (4 ranks on 12
   cores alone give 0.33, the floor the paper's load-aware bar sits on). *)
let load_per_core ~world ~cluster ~placement =
  let nodes = Placement.nodes placement in
  let load, cores =
    List.fold_left
      (fun (l, c) node_id ->
        ( l
          +. World.cpu_load world ~node:node_id
          +. float_of_int (Placement.ranks_on placement ~node:node_id),
          c + (Cluster.node cluster node_id).Rm_cluster.Node.cores ))
      (0.0, 0) nodes
  in
  if cores = 0 then 0.0 else load /. float_of_int cores

let run ~world ~allocation ~app ?placement () =
  let placement =
    match placement with
    | Some p -> p
    | None -> Placement.of_allocation allocation
  in
  if Placement.ranks placement <> app.App.ranks then
    invalid_arg "Executor.run: allocation size does not match app ranks";
  let cluster = World.cluster world in
  let network = World.network world in
  let start = World.now world in
  let instrumented = Telemetry.Runtime.is_enabled () in
  let span =
    if instrumented then begin
      Telemetry.Metrics.incr m_runs;
      Some
        (Telemetry.Trace.span_begin ~time:start
           ~attrs:
             [
               ("app", app.App.name);
               ("ranks", string_of_int app.App.ranks);
               ("policy", allocation.Allocation.policy);
             ]
           "mpisim.run")
    end
    else None
  in
  let clock = ref start in
  let compute_total = ref 0.0 in
  let comm_total = ref 0.0 in
  let bytes_total = ref 0.0 in
  let load_samples = ref 0.0 in
  for iter = 0 to app.App.iterations - 1 do
    World.advance world ~now:!clock;
    let phase = app.App.phase ~iter in
    let t_comp = compute_step ~world ~cluster ~placement ~phase in
    let pairs, intra_bytes = aggregate_messages ~placement ~messages:phase.App.messages in
    let t_p2p, step_bytes = p2p_step ~network ~pairs ~intra_bytes in
    let t_coll =
      if phase.App.allreduce_bytes > 0.0 then
        Collectives.allreduce_time_s ~placement ~view:(link_view network)
          ~bytes:phase.App.allreduce_bytes
      else 0.0
    in
    if instrumented then begin
      Telemetry.Metrics.incr m_iterations;
      Telemetry.Metrics.observe m_iter_compute_s t_comp;
      Telemetry.Metrics.observe m_iter_comm_s (t_p2p +. t_coll)
    end;
    compute_total := !compute_total +. t_comp;
    comm_total := !comm_total +. t_p2p +. t_coll;
    bytes_total := !bytes_total +. step_bytes;
    load_samples := !load_samples +. load_per_core ~world ~cluster ~placement;
    clock := !clock +. t_comp +. t_p2p +. t_coll
  done;
  World.advance world ~now:!clock;
  (match span with
  | Some span ->
    Telemetry.Metrics.add m_compute_s_total !compute_total;
    Telemetry.Metrics.add m_comm_s_total !comm_total;
    Telemetry.Metrics.add m_inter_node_bytes !bytes_total;
    Telemetry.Trace.span_end ~time:!clock span
  | None -> ());
  let total = !clock -. start in
  {
    app = app.App.name;
    policy = allocation.Allocation.policy;
    total_time_s = total;
    compute_time_s = !compute_total;
    comm_time_s = !comm_total;
    iterations = app.App.iterations;
    comm_fraction = (if total > 0.0 then !comm_total /. total else 0.0);
    inter_node_bytes = !bytes_total;
    mean_load_per_core = !load_samples /. float_of_int app.App.iterations;
  }

let step_cost ~world ~cluster ~network ~placement ~phase =
  let t_comp = compute_step ~world ~cluster ~placement ~phase in
  let pairs, intra_bytes = aggregate_messages ~placement ~messages:phase.App.messages in
  let t_p2p, _ = p2p_step ~network ~pairs ~intra_bytes in
  let t_coll =
    if phase.App.allreduce_bytes > 0.0 then
      Collectives.allreduce_time_s ~placement ~view:(link_view network)
        ~bytes:phase.App.allreduce_bytes
    else 0.0
  in
  t_comp +. t_p2p +. t_coll

let estimate_duration_s ~world ~allocation ~app ?sample_iterations () =
  let placement = Placement.of_allocation allocation in
  if Placement.ranks placement <> app.App.ranks then
    invalid_arg "Executor.estimate_duration_s: allocation/app rank mismatch";
  let cluster = World.cluster world in
  let network = World.network world in
  let sample =
    match sample_iterations with
    | Some k ->
      if k <= 0 then invalid_arg "Executor.estimate_duration_s: bad sample";
      min k app.App.iterations
    | None -> min 64 app.App.iterations
  in
  let cost = ref 0.0 in
  for iter = 0 to sample - 1 do
    cost :=
      !cost
      +. step_cost ~world ~cluster ~network ~placement ~phase:(app.App.phase ~iter)
  done;
  !cost /. float_of_int sample *. float_of_int app.App.iterations

let mean_pair_rates_mb_s ~allocation ~app ~duration_s =
  if duration_s <= 0.0 then
    invalid_arg "Executor.mean_pair_rates_mb_s: non-positive duration";
  let placement = Placement.of_allocation allocation in
  let totals = Hashtbl.create 16 in
  let sample = min 64 app.App.iterations in
  for iter = 0 to sample - 1 do
    let pairs, _ =
      aggregate_messages ~placement ~messages:(app.App.phase ~iter).App.messages
    in
    List.iter
      (fun (key, bytes) ->
        Hashtbl.replace totals key
          (bytes +. Option.value (Hashtbl.find_opt totals key) ~default:0.0))
      pairs
  done;
  let scale = float_of_int app.App.iterations /. float_of_int sample in
  Hashtbl.fold
    (fun key bytes acc -> (key, bytes *. scale /. duration_s /. 1e6) :: acc)
    totals []
  |> List.sort compare

let redistribution_delay_s ~world ~from_alloc ~to_alloc ~data_mb_per_proc
    ?(overhead_s = 0.0) () =
  if not (Float.is_finite data_mb_per_proc) || data_mb_per_proc < 0.0 then
    invalid_arg "Executor.redistribution_delay_s: bad data_mb_per_proc";
  let topology = Cluster.topology (World.cluster world) in
  let per_node = Hashtbl.create 8 in
  let feed sign (a : Allocation.t) =
    List.iter
      (fun (e : Allocation.entry) ->
        Hashtbl.replace per_node e.Allocation.node
          (Option.value (Hashtbl.find_opt per_node e.Allocation.node) ~default:0
          + (sign * e.Allocation.procs)))
      a.Allocation.entries
  in
  feed (-1) from_alloc;
  feed 1 to_alloc;
  let slowest =
    Hashtbl.fold
      (fun node delta acc ->
        if delta = 0 then acc
        else begin
          let mb = float_of_int (abs delta) *. data_mb_per_proc in
          let link = Rm_cluster.Topology.access_link topology ~node in
          let scale = Float.max 0.01 (World.nic_scale world ~node) in
          Float.max acc (mb /. (link.Rm_cluster.Topology.capacity_mb_s *. scale))
        end)
      per_node 0.0
  in
  overhead_s +. slowest

let pp_stats ppf s =
  Format.fprintf ppf
    "%s/%s: %.3fs (compute %.3fs, comm %.3fs, comm%% %.0f, %.1f MB inter-node)"
    s.app s.policy s.total_time_s s.compute_time_s s.comm_time_s
    (100.0 *. s.comm_fraction)
    (s.inter_node_bytes /. 1e6)

(** BSP execution of an {!App} on an allocation, against the live world.

    Each super-step: (1) every rank computes, slowed by its node's
    current background load and by oversubscription; (2) point-to-point
    messages fly concurrently — inter-node messages are aggregated per
    node pair and contend for links under max-min fairness together
    with the background traffic; (3) the step's collective (if any)
    runs. Virtual time advances by the step's critical path, and the
    world keeps evolving underneath — long runs feel the network
    weather change, which is what makes run-to-run variability (the
    paper's CoV analysis) emerge. *)

type stats = {
  app : string;
  policy : string;
  total_time_s : float;
  compute_time_s : float;  (** critical-path compute component *)
  comm_time_s : float;  (** critical-path communication component *)
  iterations : int;
  comm_fraction : float;  (** comm / total *)
  inter_node_bytes : float;  (** total bytes crossing the network *)
  mean_load_per_core : float;
      (** runnable processes (background load + the job's own ranks) per
          logical core over the allocated nodes, averaged over the run —
          Fig. 5's metric *)
}

val run :
  world:Rm_workload.World.t ->
  allocation:Rm_core.Allocation.t ->
  app:App.t ->
  ?placement:Placement.t ->
  unit ->
  stats
(** Starts at the world's current time and advances it. [placement]
    (default: block placement over the allocation) lets a {!Mapping}
    result override who runs where. Raises [Invalid_argument] when the
    allocation's process count differs from the app's rank count. *)

val pp_stats : Format.formatter -> stats -> unit

val estimate_duration_s :
  world:Rm_workload.World.t ->
  allocation:Rm_core.Allocation.t ->
  app:App.t ->
  ?sample_iterations:int ->
  unit ->
  float
(** Pure runtime estimate against the world's *current* state: costs the
    first [sample_iterations] (default: one full cadence cycle, at most
    64) steps without advancing time and extrapolates linearly. Used by
    the batch scheduler to model running jobs without executing them;
    it neither advances nor mutates the world. *)

val mean_pair_rates_mb_s :
  allocation:Rm_core.Allocation.t ->
  app:App.t ->
  duration_s:float ->
  ((int * int) * float) list
(** Average inter-node traffic per node pair over the whole run, as
    steady MB/s — the flow demands a running job contributes to the
    network while it executes. Requires [duration_s > 0]. *)

val redistribution_delay_s :
  world:Rm_workload.World.t ->
  from_alloc:Rm_core.Allocation.t ->
  to_alloc:Rm_core.Allocation.t ->
  data_mb_per_proc:float ->
  ?overhead_s:float ->
  unit ->
  float
(** Virtual seconds a malleable reconfiguration spends redistributing
    data between the two allocations. Every node whose rank count
    changes pushes or pulls [|Δprocs| * data_mb_per_proc] MB through its
    access link; transfers overlap across nodes, so the delay is the
    slowest node's time (capacity scaled by the world's current NIC
    degradation, floored at 1% so a dead NIC yields a huge-but-finite
    delay) plus the fixed [overhead_s] (default 0 — callers add their
    own reconfiguration overhead). Pure: reads world state, never
    advances it. Zero node deltas cost only the overhead. *)

module Topology = Rm_cluster.Topology

type cache = {
  demands : Fairshare.demand array;
  rates : float array;
  loads : float array;  (** per link id *)
}

type t = {
  topology : Topology.t;
  base_capacities : float array;  (** nominal, from the topology *)
  capacities : float array;  (** effective = base × degradation scale *)
  scales : float array;
  mutable flows : Flow.t list;
  mutable cache : cache option;
}

let create topology =
  let base = Routing.capacities topology in
  {
    topology;
    base_capacities = base;
    capacities = Array.copy base;
    scales = Array.make (Array.length base) 1.0;
    flows = [];
    cache = None;
  }

let topology t = t.topology

let set_capacity_scale t ~link_id scale =
  if link_id < 0 || link_id >= Array.length t.capacities then
    invalid_arg "Network.set_capacity_scale: bad link id";
  if not (Float.is_finite scale) || scale < 0.0 || scale > 1.0 then
    invalid_arg "Network.set_capacity_scale: scale must be in [0, 1]";
  t.scales.(link_id) <- scale;
  t.capacities.(link_id) <- t.base_capacities.(link_id) *. scale;
  t.cache <- None

let capacity_scale t ~link_id =
  if link_id < 0 || link_id >= Array.length t.scales then
    invalid_arg "Network.capacity_scale: bad link id";
  t.scales.(link_id)

let set_flows t flows =
  t.flows <- flows;
  t.cache <- None

let flows t = t.flows
let flow_count t = List.length t.flows

let demand_of_flow t (f : Flow.t) : Fairshare.demand =
  { path = Routing.flow_path t.topology f; demand_mb_s = f.demand_mb_s }

let cache t =
  match t.cache with
  | Some c -> c
  | None ->
    let demands = Array.of_list (List.map (demand_of_flow t) t.flows) in
    let rates = Fairshare.compute ~capacities:t.capacities ~demands in
    let loads = Fairshare.link_loads ~capacities:t.capacities ~demands ~rates in
    let c = { demands; rates; loads } in
    t.cache <- Some c;
    c

let available_bandwidth_mb_s t ~src ~dst =
  if src = dst then infinity
  else begin
    let c = cache t in
    let probe_path = Routing.p2p_path t.topology ~src ~dst in
    Fairshare.probe_rate ~capacities:t.capacities ~demands:c.demands ~probe_path
  end

let link_utilization t ~link_id =
  let c = cache t in
  if link_id < 0 || link_id >= Array.length t.capacities then
    invalid_arg "Network.link_utilization: bad link id";
  Float.min 1.0 (c.loads.(link_id) /. t.capacities.(link_id))

(* Queueing penalty per link: base per-link cost inflated by an M/M/1-ish
   rho/(1-rho) term, capped so a saturated GbE link adds at most ~10x. *)
let queueing_factor rho =
  let rho = Float.min 0.95 (Float.max 0.0 rho) in
  rho /. (1.0 -. rho)

let latency_us t ~src ~dst =
  if src = dst then 0.0
  else begin
    let base = Topology.base_latency_us t.topology src dst in
    let path = Routing.p2p_path t.topology ~src ~dst in
    let extra =
      Array.fold_left
        (fun acc link_id ->
          let rho = link_utilization t ~link_id in
          acc +. (25.0 *. queueing_factor rho))
        0.0 path
    in
    base +. extra
  end

let nic_rate_mb_s t ~node =
  let c = cache t in
  let acc = ref 0.0 in
  List.iteri
    (fun i f -> if Flow.touches_node f node then acc := !acc +. c.rates.(i))
    t.flows;
  !acc

let rates_with_extra t ~extra =
  let c = cache t in
  let extra_demands =
    Array.map
      (fun (src, dst) : Fairshare.demand ->
        {
          path = (if src = dst then [||] else Routing.p2p_path t.topology ~src ~dst);
          demand_mb_s = infinity;
        })
      extra
  in
  let all = Array.append c.demands extra_demands in
  let rates = Fairshare.compute ~capacities:t.capacities ~demands:all in
  Array.sub rates (Array.length c.demands) (Array.length extra_demands)

let peak_bandwidth_mb_s t ~src ~dst =
  if src = dst then infinity
  else begin
    let path = Routing.p2p_path t.topology ~src ~dst in
    Array.fold_left
      (fun acc link_id -> Float.min acc t.capacities.(link_id))
      infinity path
  end

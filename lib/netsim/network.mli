(** The network state: topology + current flow population, answering the
    questions the paper's monitor asks — available P2P bandwidth, P2P
    latency, and per-node data flow rate.

    All answers derive from a max-min fair allocation of the current
    flows over the topology's links ({!Fairshare}), recomputed lazily
    when flows change. *)

type t

val create : Rm_cluster.Topology.t -> t
val topology : t -> Rm_cluster.Topology.t

val set_capacity_scale : t -> link_id:int -> float -> unit
(** Degrade (or restore) a link: effective capacity becomes
    [nominal × scale], [scale ∈ [0, 1]]. Used by fault injection to
    model flaky NICs and congested uplinks; [1.0] restores the nominal
    capacity. Invalidates the fair-share cache. *)

val capacity_scale : t -> link_id:int -> float
(** Current degradation scale of the link (1.0 when healthy). *)

val set_flows : t -> Flow.t list -> unit
val flows : t -> Flow.t list
val flow_count : t -> int

val available_bandwidth_mb_s : t -> src:int -> dst:int -> float
(** Rate a new greedy flow between the nodes would obtain right now
    (the ground truth a bandwidth probe estimates). [infinity] when
    [src = dst]. *)

val latency_us : t -> src:int -> dst:int -> float
(** One-way latency: unloaded base plus an M/M/1-style queueing penalty
    on each loaded link of the path. 0 when [src = dst]. *)

val nic_rate_mb_s : t -> node:int -> float
(** Sum of allocated rates of flows entering or leaving the node — the
    paper's "node data flow rate". *)

val link_utilization : t -> link_id:int -> float
(** Allocated fraction of the link's capacity, in [0, 1]. *)

val peak_bandwidth_mb_s : t -> src:int -> dst:int -> float
(** Capacity bound of the path with no competing traffic (the "peak
    bandwidth" whose complement Eq. 2 uses). *)

val rates_with_extra : t -> extra:(int * int) array -> float array
(** Fair rates that greedy node-to-node flows on the given (src, dst)
    pairs would obtain when *all added simultaneously* on top of the
    background population — unlike {!available_bandwidth_mb_s}, the extra
    flows contend with each other (concurrent MPI messages; a probe round
    of n/2 disjoint pairs). Pairs with [src = dst] get [infinity]. *)

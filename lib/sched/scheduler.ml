module Sim = Rm_engine.Sim
module Rng = Rm_stats.Rng
module World = Rm_workload.World
module System = Rm_monitor.System
module Broker = Rm_core.Broker
module Request = Rm_core.Request
module Allocation = Rm_core.Allocation
module Policies = Rm_core.Policies
module Executor = Rm_mpisim.Executor
module Flow = Rm_netsim.Flow
module Malleable = Rm_malleable.Malleable
module Telemetry = Rm_telemetry

let m_submitted = Telemetry.Metrics.counter "sched.jobs_submitted"
let m_dispatched = Telemetry.Metrics.counter "sched.jobs_dispatched"
let m_completed = Telemetry.Metrics.counter "sched.jobs_completed"
let m_cancelled = Telemetry.Metrics.counter "sched.jobs_cancelled"
let m_backfill = Telemetry.Metrics.counter "sched.backfill_hits"
let m_queue_depth = Telemetry.Metrics.gauge "sched.queue_depth"
let m_failed = Telemetry.Metrics.counter "sched.jobs_failed"
let m_requeues = Telemetry.Metrics.counter "sched.requeues"
let m_wasted = Telemetry.Metrics.counter "sched.wasted_node_s"

(* Virtual seconds between submission and dispatch; jobs on a busy
   cluster can queue for hours, hence the wide buckets. *)
let m_wait_s =
  Telemetry.Metrics.histogram "sched.dispatch_wait_s"
    ~buckets:[| 1.0; 10.0; 60.0; 300.0; 1800.0; 7200.0; 43200.0 |]

type config = {
  broker : Broker.config;
  backfill : bool;
  exclusive : bool;
  min_dispatch_gap_s : float;
  retry_s : float;
  node_check_period_s : float option;
  max_requeues : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  checkpoint_interval_s : float option;
  restart_overhead_s : float;
  malleable : Malleable.config option;
}

let default_config =
  {
    broker = Broker.default_config;
    backfill = true;
    exclusive = false;
    min_dispatch_gap_s = 15.0;
    retry_s = 60.0;
    node_check_period_s = None;
    max_requeues = 3;
    backoff_base_s = 30.0;
    backoff_cap_s = 1800.0;
    checkpoint_interval_s = None;
    restart_overhead_s = 0.0;
    malleable = None;
  }

type job_id = int

type outcome = {
  job : job_id;
  name : string;
  submitted_at : float;
  started_at : float;
  finished_at : float;
  nodes : int list;
  procs : int;
  requeues : int;
}

type state =
  | Queued
  | Running of { started_at : float; nodes : int list }
  | Failed of { at : float; reason : string; requeues : int }
  | Finished of outcome
  | Rejected of string

type job = {
  id : job_id;
  name : string;
  priority : int;
  request : Request.t;
  app_of : ranks:int -> Rm_mpisim.App.t;
  submitted_at : float;
  malleable : Malleable.spec option;
  mutable state : state;
  mutable alloc : Allocation.t option;  (** current allocation while running *)
  mutable overlay : World.job_handle option;
      (** set while running, for cancellation *)
  mutable completion : Rm_engine.Event_queue.handle option;
  mutable requeue_event : Rm_engine.Event_queue.handle option;
      (** pending Failed → Queued transition, for cancellation *)
  mutable span : Telemetry.Trace.span option;  (** open while running *)
  mutable requeues : int;
  mutable preserved_s : float;
      (** virtual work saved at checkpoints, deducted from the next run *)
  (* Segment bookkeeping: each (re)configuration starts a new segment.
     The segment IS the job's remaining work at its current width —
     [seg_duration_s] virtual seconds starting at [seg_started_at], of
     which the first [seg_delay_s] are data redistribution (no useful
     progress). Reconfiguration math scales the unfinished tail of the
     current segment to the new width; rigid jobs live in one segment
     per dispatch, bit-identical to the pre-malleability scheduler. *)
  mutable seg_started_at : float;
  mutable seg_duration_s : float;
  mutable seg_delay_s : float;
  mutable reconfigs : int;
}

type t = {
  sim : Sim.t;
  world : World.t;
  monitor : System.t;
  config : config;
  rng : Rng.t;
  horizon : float;
  jobs : (job_id, job) Hashtbl.t;
  mutable queue : job_id list;  (** submission order *)
  mutable finished_log : outcome list;  (** reverse completion order *)
  mutable last_dispatch : float;
  mutable retry_pending : bool;
  mutable next_id : int;
  mutable wasted_node_s : float;
      (** node-seconds of work lost to node failures (since the last
          checkpoint, per failure) *)
  mutable requeues_total : int;  (** Failed → Queued transitions *)
  mutable last_snapshot : Rm_monitor.Snapshot.t option;
      (** previous dispatch tick's shared snapshot — the incremental-NL
          priming base for the next tick *)
  mutable last_negotiation : float;
      (** virtual time of the last evaluated malleability directive —
          throttles reconfiguration points to one per negotiation period *)
  mutable malleable_log : Malleable.record list;  (** reverse order *)
  depth_series : Rm_stats.Timeseries.t;
      (** queue depth sampled at every dispatch tick (virtual time) *)
}

let job t id =
  match Hashtbl.find_opt t.jobs id with
  | Some j -> j
  | None -> invalid_arg "Scheduler: unknown job id"

let state t id = (job t id).state

(* Queued ids in dispatch order: priority descending, then submission
   (queue) order. List.stable_sort keeps FCFS among equal priorities. *)
let queued t =
  List.filter (fun id -> (job t id).state = Queued) t.queue
  |> List.stable_sort
       (fun a b -> compare (job t b).priority (job t a).priority)

let running t =
  List.filter
    (fun id -> match (job t id).state with Running _ -> true | _ -> false)
    t.queue

let finished t = List.rev t.finished_log

let failed t =
  List.filter
    (fun id -> match (job t id).state with Failed _ -> true | _ -> false)
    t.queue

let rejected t =
  List.filter
    (fun id -> match (job t id).state with Rejected _ -> true | _ -> false)
    t.queue

let requeue_count t = t.requeues_total
let wasted_node_seconds t = t.wasted_node_s
let malleable_log t = List.rev t.malleable_log
let reconfig_count t id = (job t id).reconfigs

let sync_queue_gauge t =
  if Telemetry.Runtime.is_enabled () then
    Telemetry.Metrics.set m_queue_depth (float_of_int (List.length (queued t)))

(* The depth series is scheduler state, not telemetry: it is sampled
   unconditionally (one append per dispatch tick) so SLO views work
   without the telemetry switch and cannot perturb the simulation. *)
let sample_queue_depth t ~now =
  Rm_stats.Timeseries.append t.depth_series ~time:now
    ~value:(float_of_int (List.length (queued t)))

let queue_depth_series t = t.depth_series

(* --- malleability helpers ------------------------------------------------ *)

(* Fraction of the current segment's useful work still ahead at [now].
   The redistribution prefix makes no progress, so it is subtracted
   from both the numerator and the denominator. *)
let seg_frac_left j ~now =
  let seg_work = Float.max 1e-9 (j.seg_duration_s -. j.seg_delay_s) in
  let done_s =
    Float.max 0.0
      (Float.min seg_work (now -. j.seg_started_at -. j.seg_delay_s))
  in
  1.0 -. (done_s /. seg_work)

let seg_remaining_s j ~now =
  Float.max 0.0 (j.seg_started_at +. j.seg_duration_s -. now)

let log_directive t ~now (r : Malleable.record) =
  t.malleable_log <- r :: t.malleable_log;
  (match r.Malleable.verdict with
  | Malleable.Accepted -> (
    Telemetry.Metrics.add Malleable.m_redistributed_mb r.Malleable.moved_mb;
    match r.Malleable.kind with
    | Malleable.Grow -> Telemetry.Metrics.incr Malleable.m_grows
    | Malleable.Shrink_admit -> Telemetry.Metrics.incr Malleable.m_shrinks
    | Malleable.Shrink_failure ->
      Telemetry.Metrics.incr Malleable.m_shrinks;
      Telemetry.Metrics.incr Malleable.m_shrink_recoveries)
  | Malleable.Rejected _ -> Telemetry.Metrics.incr Malleable.m_rejected);
  if Telemetry.Runtime.is_enabled () then
    Telemetry.Trace.instant ~time:now
      ~attrs:
        [
          ("job", r.Malleable.job);
          ("kind", Malleable.kind_name r.Malleable.kind);
          ( "verdict",
            match r.Malleable.verdict with
            | Malleable.Accepted -> "accepted"
            | Malleable.Rejected why -> "rejected: " ^ why );
          ("procs", Printf.sprintf "%d->%d" r.Malleable.from_procs r.Malleable.to_procs);
        ]
      "sched.malleable.directive"

(* Forward declaration dance: dispatch and completion reference each
   other through the event queue. *)
let rec try_dispatch t sim =
  let now = Sim.now sim in
  World.advance t.world ~now;
  if now < t.last_dispatch +. t.config.min_dispatch_gap_s then begin
    sample_queue_depth t ~now;
    schedule_retry t ~delay:(t.last_dispatch +. t.config.min_dispatch_gap_s -. now)
  end
  else begin
    let candidates =
      match queued t with
      | [] -> []
      | head :: rest -> if t.config.backfill then head :: rest else [ head ]
    in
    (* One snapshot per tick, shared by every attempt: the monitor state
       cannot change between attempts at the same virtual time, and the
       busy set only changes when an attempt succeeds (which ends the
       tick) — so all queued jobs are scored against the same snapshot
       record and the broker's model cache turns V²-sized model builds
       into one build per tick. *)
    let snapshot =
      match candidates with
      | [] -> None
      | _ :: _ ->
        let s = System.snapshot t.monitor ~time:now in
        (* Patch the previous tick's cached network model forward to
           this capture when only a few monitor rows changed —
           O(touched·V) instead of the O(V²) rebuild the first decision
           of the tick would otherwise pay. The exclusive-mode
           restricted snapshot changes the usable set, so priming the
           unrestricted capture is the useful (and valid) base. *)
        (match t.last_snapshot with
        | Some prev ->
          Rm_core.Model_cache.prime_derived s ~prev
            ~weights:t.config.broker.Broker.weights
        | None -> ());
        t.last_snapshot <- Some s;
        Some
          (if t.config.exclusive then
             Rm_monitor.Snapshot.restrict s ~exclude:(busy_nodes t)
           else s)
    in
    (* A job starting from any position but the head is a backfill hit:
       the queue head could not be placed but a later job could. *)
    let rec attempt_each pos = function
      | [] -> false
      | id :: rest ->
        if attempt t sim snapshot id then begin
          if pos > 0 then Telemetry.Metrics.incr m_backfill;
          true
        end
        else attempt_each (pos + 1) rest
    in
    let started = attempt_each 0 candidates in
    if started then t.last_dispatch <- now;
    sync_queue_gauge t;
    sample_queue_depth t ~now;
    if queued t <> [] then schedule_retry t ~delay:t.config.retry_s;
    (* Malleability negotiation phase: after the dispatch attempts, so a
       shrink directive reacts to the head that just failed to place and
       a grow only fires on a genuinely empty queue. *)
    negotiate t sim ~queue_blocked:((not started) && queued t <> [])
  end

and schedule_retry t ~delay =
  if (not t.retry_pending) && Sim.now t.sim +. delay <= t.horizon then begin
    t.retry_pending <- true;
    ignore
      (Sim.schedule_after t.sim ~delay (fun sim ->
           t.retry_pending <- false;
           try_dispatch t sim))
  end

and busy_nodes t =
  List.concat_map
    (fun id ->
      match (job t id).state with
      | Running { nodes; _ } -> nodes
      | Queued | Failed _ | Finished _ | Rejected _ -> [])
    t.queue

and attempt t sim snapshot id =
  let j = job t id in
  let snapshot =
    match snapshot with
    | Some s -> s
    | None -> System.snapshot t.monitor ~time:(Sim.now sim)
  in
  match
    Broker.decide ~config:t.config.broker ~snapshot ~request:j.request ~rng:t.rng
  with
  | Error _ | Ok (Broker.Wait _) -> false
  | Ok (Broker.Allocated allocation) ->
    start_job t sim j allocation;
    true

and start_job t sim j allocation =
  let now = Sim.now sim in
  let app = j.app_of ~ranks:(Allocation.total_procs allocation) in
  let duration =
    (* Checkpointed work survives a failure; a restarted job pays a
       restart overhead and re-runs only the unpreserved remainder. *)
    Float.max 1e-3
      (Executor.estimate_duration_s ~world:t.world ~allocation ~app ()
      -. j.preserved_s
      +. (if j.requeues > 0 then t.config.restart_overhead_s else 0.0))
  in
  install_overlay t j ~allocation ~app ~duration;
  let nodes = Allocation.node_ids allocation in
  j.state <- Running { started_at = now; nodes };
  j.alloc <- Some allocation;
  j.seg_started_at <- now;
  j.seg_duration_s <- duration;
  j.seg_delay_s <- 0.0;
  if Telemetry.Runtime.is_enabled () then begin
    Telemetry.Metrics.incr m_dispatched;
    Telemetry.Metrics.observe m_wait_s (now -. j.submitted_at);
    j.span <-
      Some
        (Telemetry.Trace.span_begin ~time:now
           ~attrs:
             [
               ("job", j.name);
               ("nodes", string_of_int (List.length nodes));
               ("procs", string_of_int (Allocation.total_procs allocation));
             ]
           "sched.job")
  end;
  arm_completion t sim j ~delay:duration

and install_overlay t j ~allocation ~app ~duration =
  let load =
    List.map
      (fun (e : Allocation.entry) -> (e.Allocation.node, float_of_int e.Allocation.procs))
      allocation.Allocation.entries
  in
  let flows =
    List.map
      (fun ((src, dst), mb_s) -> (src, Flow.Node dst, Float.max 0.01 mb_s))
      (Executor.mean_pair_rates_mb_s ~allocation ~app ~duration_s:duration)
  in
  j.overlay <- Some (World.register_job t.world ~load ~flows)

and arm_completion t sim j ~delay =
  j.completion <-
    Some
      (Sim.schedule_after sim ~delay (fun sim ->
           j.completion <- None;
           let started_at, nodes =
             match j.state with
             | Running { started_at; nodes } -> (started_at, nodes)
             | _ -> (j.submitted_at, [])
           in
           (* With failure detection on, a completion on a node that is
              currently down is a death the poll has not seen yet. *)
           let dead =
             if t.config.node_check_period_s = None then None
             else
               List.find_opt (fun n -> not (World.is_up t.world ~node:n)) nodes
           in
           match dead with
           | Some node ->
             fail_job t sim j ~reason:(Printf.sprintf "node %d died" node)
           | None ->
             (match j.overlay with
             | Some handle ->
               World.release_job t.world handle;
               j.overlay <- None
             | None -> ());
             let finished_at = Sim.now sim in
             let procs =
               match j.alloc with
               | Some a -> Allocation.total_procs a
               | None -> 0
             in
             let outcome =
               {
                 job = j.id;
                 name = j.name;
                 submitted_at = j.submitted_at;
                 started_at;
                 finished_at;
                 nodes;
                 procs;
                 requeues = j.requeues;
               }
             in
             j.state <- Finished outcome;
             t.finished_log <- outcome :: t.finished_log;
             Telemetry.Metrics.incr m_completed;
             (match j.span with
             | Some span ->
               Telemetry.Trace.span_end ~time:finished_at span;
               j.span <- None
             | None -> ());
             try_dispatch t sim))

(* Replace a running job's allocation in place: release the old overlay
   and completion event, install the new allocation with a fresh
   segment whose first [delay] seconds are redistribution, and re-arm
   completion. The job keeps its original [started_at] and its span. *)
and apply_reconfig t sim j ~to_alloc ~delay ~useful_s =
  let now = Sim.now sim in
  (match j.overlay with
  | Some handle ->
    World.release_job t.world handle;
    j.overlay <- None
  | None -> ());
  (match j.completion with
  | Some handle ->
    Sim.cancel t.sim handle;
    j.completion <- None
  | None -> ());
  let app = j.app_of ~ranks:(Allocation.total_procs to_alloc) in
  let duration = delay +. Float.max 1e-3 useful_s in
  install_overlay t j ~allocation:to_alloc ~app ~duration;
  (match j.state with
  | Running { started_at; _ } ->
    j.state <- Running { started_at; nodes = Allocation.node_ids to_alloc }
  | _ -> ());
  j.alloc <- Some to_alloc;
  j.seg_started_at <- now;
  j.seg_duration_s <- duration;
  j.seg_delay_s <- delay;
  j.reconfigs <- j.reconfigs + 1;
  arm_completion t sim j ~delay:duration

(* One reconfiguration point: evaluate at most one directive. Shrinking
   to admit a blocked queue head takes priority over growing into idle
   capacity. The fast exits draw no randomness and take no snapshot, so
   a schedule whose jobs are all rigid (min = pref = max) is
   bit-identical to one scheduled with [malleable = None]. *)
and negotiate t sim ~queue_blocked =
  match t.config.malleable with
  | None -> ()
  | Some mc ->
    let now = Sim.now sim in
    if now >= t.last_negotiation +. mc.Malleable.negotiation_period_s then begin
      let running_malleable =
        List.filter_map
          (fun id ->
            let j = job t id in
            match (j.state, j.alloc, j.malleable) with
            | Running _, Some alloc, Some spec -> Some (j, alloc, spec)
            | _ -> None)
          t.queue
      in
      if queue_blocked && mc.Malleable.shrink_to_admit then
        negotiate_shrink_admit t ~now mc running_malleable
      else if (not queue_blocked) && queued t = [] && mc.Malleable.grow_when_idle
      then negotiate_grow t sim ~now mc running_malleable
    end

(* Expand the first growable job onto nodes it does not already occupy,
   if the width gain beats the redistribution delay by the margin. *)
and negotiate_grow t sim ~now mc running_malleable =
  match
    List.find_opt
      (fun (_, alloc, spec) ->
        Allocation.total_procs alloc < spec.Malleable.max_procs)
      running_malleable
  with
  | None -> ()
  | Some (j, cur, spec) ->
    t.last_negotiation <- now;
    let cur_procs = Allocation.total_procs cur in
    let delta =
      min (spec.Malleable.max_procs - cur_procs) mc.Malleable.max_grow_step
    in
    let request =
      Request.make ?ppn:j.request.Request.ppn ~alpha:j.request.Request.alpha
        ~procs:delta ()
    in
    let snapshot =
      let s = System.snapshot t.monitor ~time:now in
      let exclude =
        Allocation.node_ids cur
        @ (if t.config.exclusive then busy_nodes t else [])
      in
      Rm_monitor.Snapshot.restrict s ~exclude
    in
    let reject why =
      log_directive t ~now
        {
          Malleable.time = now;
          job = j.name;
          kind = Malleable.Grow;
          from_procs = cur_procs;
          to_procs = cur_procs + delta;
          moved_mb = 0.0;
          delay_s = 0.0;
          gain_s = 0.0;
          verdict = Malleable.Rejected why;
        }
    in
    (match
       Policies.allocate ?starts:t.config.broker.Broker.starts
         ~policy:t.config.broker.Broker.policy ~snapshot
         ~weights:t.config.broker.Broker.weights ~request ~rng:t.rng ()
     with
    | Error e -> reject (Format.asprintf "%a" Allocation.pp_error e)
    | Ok extra ->
      let merged = Malleable.merge ~base:cur ~extra in
      let moved = Malleable.moved_procs ~from_:cur ~to_:merged in
      let moved_mb = Malleable.redistribution_mb spec ~moved_procs:moved in
      let delay =
        Executor.redistribution_delay_s ~world:t.world ~from_alloc:cur
          ~to_alloc:merged ~data_mb_per_proc:spec.Malleable.data_mb_per_proc
          ~overhead_s:mc.Malleable.reconfig_overhead_s ()
      in
      let old_app = j.app_of ~ranks:cur_procs in
      let new_app = j.app_of ~ranks:(Allocation.total_procs merged) in
      let e_old =
        Float.max 1e-9
          (Executor.estimate_duration_s ~world:t.world ~allocation:cur
             ~app:old_app ())
      in
      let e_new =
        Executor.estimate_duration_s ~world:t.world ~allocation:merged
          ~app:new_app ()
      in
      let frac_left = seg_frac_left j ~now in
      let seg_work = j.seg_duration_s -. j.seg_delay_s in
      let useful_s = frac_left *. seg_work *. (e_new /. e_old) in
      let gain =
        Malleable.net_gain_s
          ~remaining_old_s:(seg_remaining_s j ~now)
          ~remaining_new_s:useful_s ~delay_s:delay
      in
      let record verdict delay_s =
        {
          Malleable.time = now;
          job = j.name;
          kind = Malleable.Grow;
          from_procs = cur_procs;
          to_procs = Allocation.total_procs merged;
          moved_mb;
          delay_s;
          gain_s = gain;
          verdict;
        }
      in
      if gain > mc.Malleable.min_gain_s then begin
        log_directive t ~now (record Malleable.Accepted delay);
        apply_reconfig t sim j ~to_alloc:merged ~delay ~useful_s
      end
      else
        log_directive t ~now
          (record
             (Malleable.Rejected
                (Printf.sprintf "gain %.1fs below margin %.1fs" gain
                   mc.Malleable.min_gain_s))
             0.0))

(* Shrink the first shrinkable running job toward its floor to free
   capacity for the blocked queue head. The victim's slowdown (its new
   remaining time plus the redistribution delay, minus what it had
   left) is weighed against how long the head has already waited. *)
and negotiate_shrink_admit t ~now mc running_malleable =
  match queued t with
  | [] -> ()
  | head_id :: _ -> (
    let head = job t head_id in
    match
      List.find_opt
        (fun (_, alloc, spec) ->
          Allocation.total_procs alloc > spec.Malleable.min_procs)
        running_malleable
    with
    | None -> ()
    | Some (j, cur, spec) ->
      t.last_negotiation <- now;
      let cur_procs = Allocation.total_procs cur in
      let target =
        max spec.Malleable.min_procs (cur_procs - head.request.Request.procs)
      in
      (match Malleable.shrink_to cur ~target_procs:target with
      | None -> ()
      | Some small ->
        let moved = Malleable.moved_procs ~from_:cur ~to_:small in
        let moved_mb = Malleable.redistribution_mb spec ~moved_procs:moved in
        let delay =
          Executor.redistribution_delay_s ~world:t.world ~from_alloc:cur
            ~to_alloc:small ~data_mb_per_proc:spec.Malleable.data_mb_per_proc
            ~overhead_s:mc.Malleable.reconfig_overhead_s ()
        in
        let old_app = j.app_of ~ranks:cur_procs in
        let new_app = j.app_of ~ranks:target in
        let e_old =
          Float.max 1e-9
            (Executor.estimate_duration_s ~world:t.world ~allocation:cur
               ~app:old_app ())
        in
        let e_new =
          Executor.estimate_duration_s ~world:t.world ~allocation:small
            ~app:new_app ()
        in
        let frac_left = seg_frac_left j ~now in
        let seg_work = j.seg_duration_s -. j.seg_delay_s in
        let useful_s = frac_left *. seg_work *. (e_new /. e_old) in
        let victim_cost =
          delay +. useful_s -. seg_remaining_s j ~now
        in
        let head_wait = now -. head.submitted_at in
        let gain = head_wait -. victim_cost in
        let record verdict delay_s =
          {
            Malleable.time = now;
            job = j.name;
            kind = Malleable.Shrink_admit;
            from_procs = cur_procs;
            to_procs = target;
            moved_mb;
            delay_s;
            gain_s = gain;
            verdict;
          }
        in
        if gain > mc.Malleable.min_gain_s then begin
          log_directive t ~now (record Malleable.Accepted delay);
          apply_reconfig t t.sim j ~to_alloc:small ~delay ~useful_s;
          (* Freed capacity may admit the head. *)
          schedule_retry t ~delay:0.0
        end
        else
          log_directive t ~now
            (record
               (Malleable.Rejected
                  (Printf.sprintf
                     "victim cost %.1fs not justified by head wait %.1fs"
                     victim_cost head_wait))
               0.0)))

(* A running job lost a node. Try a shrink-recovery first (drop the
   dead node's ranks and keep going on the survivors) when malleability
   allows it and the cost model favors it over the requeue path; else
   account the work lost since the last virtual checkpoint and either
   requeue with capped exponential backoff or give up after
   [max_requeues] attempts. *)
and fail_job t sim j ~reason =
  match j.state with
  | Queued | Failed _ | Finished _ | Rejected _ -> ()
  | Running { started_at; nodes } ->
    let now = Sim.now sim in
    let elapsed = Float.max 0.0 (now -. started_at) in
    let preserved_delta =
      match t.config.checkpoint_interval_s with
      | Some c when c > 0.0 -> Float.of_int (int_of_float (elapsed /. c)) *. c
      | _ -> 0.0
    in
    if shrink_recover t sim j ~now ~preserved_delta then ()
    else begin
      (match j.overlay with
      | Some handle ->
        World.release_job t.world handle;
        j.overlay <- None
      | None -> ());
      (match j.completion with
      | Some handle ->
        Sim.cancel t.sim handle;
        j.completion <- None
      | None -> ());
      (match j.span with
      | Some span ->
        Telemetry.Trace.span_end ~time:now span;
        j.span <- None
      | None -> ());
      let lost_node_s =
        (elapsed -. preserved_delta) *. float_of_int (List.length nodes)
      in
      j.preserved_s <- j.preserved_s +. preserved_delta;
      t.wasted_node_s <- t.wasted_node_s +. lost_node_s;
      j.requeues <- j.requeues + 1;
      j.alloc <- None;
      Telemetry.Metrics.incr m_failed;
      if Telemetry.Runtime.is_enabled () then begin
        Telemetry.Metrics.add m_wasted lost_node_s;
        Telemetry.Trace.instant ~time:now
          ~attrs:[ ("job", j.name); ("reason", reason) ]
          "sched.job_failed"
      end;
      (* Boundary semantics: [max_requeues = N] permits exactly N
         requeues. [j.requeues] was just incremented for THIS failure, so
         the strict [>] rejects only on failure N+1 — a job may fail and
         re-enter the queue N times and still finish on attempt N+1
         (test: "requeue boundary" in test_sched.ml; docs/RESILIENCE.md). *)
      if j.requeues > t.config.max_requeues then begin
        j.state <-
          Rejected
            (Printf.sprintf "%s; gave up after %d requeues" reason
               t.config.max_requeues);
        sync_queue_gauge t
      end
      else begin
        j.state <- Failed { at = now; reason; requeues = j.requeues };
        let backoff =
          Float.min t.config.backoff_cap_s
            (t.config.backoff_base_s *. (2.0 ** float_of_int (j.requeues - 1)))
        in
        j.requeue_event <-
          Some
            (Sim.schedule_after t.sim ~delay:backoff (fun sim ->
                 j.requeue_event <- None;
                 j.state <- Queued;
                 t.requeues_total <- t.requeues_total + 1;
                 Telemetry.Metrics.incr m_requeues;
                 sync_queue_gauge t;
                 (* Record the re-entry before the dispatch attempt, so the
                    requeue shows in the depth series even when the job is
                    re-placed within the same tick. *)
                 sample_queue_depth t ~now:(Sim.now sim);
                 try_dispatch t sim))
      end
    end

(* Shrink-recovery at a failure: when the surviving entries still
   satisfy the job's floor, compare finishing on the survivors (pay the
   redistribution, run the remaining work proportionally slower) with
   the requeue path (backoff + restart overhead + redo the
   un-checkpointed work + the remaining work). Scaling is by proc
   count, not a fresh estimate: the dead node's world state is exactly
   what an estimate must not depend on. Only the dead node's elapsed
   work is wasted — the survivors keep theirs — which is where the
   goodput advantage over requeue comes from. *)
and shrink_recover t sim j ~now ~preserved_delta =
  match (t.config.malleable, j.malleable, j.alloc, j.state) with
  | Some mc, Some spec, Some cur, Running { started_at; nodes }
    when mc.Malleable.shrink_on_failure -> (
    let dead = List.filter (fun n -> not (World.is_up t.world ~node:n)) nodes in
    if dead = [] then false
    else
      match Malleable.drop_nodes cur ~dead with
      | None -> false
      | Some surv when Allocation.total_procs surv < spec.Malleable.min_procs
        ->
        log_directive t ~now
          {
            Malleable.time = now;
            job = j.name;
            kind = Malleable.Shrink_failure;
            from_procs = Allocation.total_procs cur;
            to_procs = Allocation.total_procs surv;
            moved_mb = 0.0;
            delay_s = 0.0;
            gain_s = 0.0;
            verdict = Malleable.Rejected "survivors below min_procs";
          };
        false
      | Some surv ->
        let cur_procs = Allocation.total_procs cur in
        let surv_procs = Allocation.total_procs surv in
        let moved = Malleable.moved_procs ~from_:cur ~to_:surv in
        let moved_mb = Malleable.redistribution_mb spec ~moved_procs:moved in
        let delay =
          Executor.redistribution_delay_s ~world:t.world ~from_alloc:cur
            ~to_alloc:surv ~data_mb_per_proc:spec.Malleable.data_mb_per_proc
            ~overhead_s:mc.Malleable.reconfig_overhead_s ()
        in
        let remaining = seg_remaining_s j ~now in
        let useful_s =
          remaining *. float_of_int cur_procs /. float_of_int surv_procs
        in
        let elapsed = Float.max 0.0 (now -. started_at) in
        let backoff_next =
          Float.min t.config.backoff_cap_s
            (t.config.backoff_base_s *. (2.0 ** float_of_int j.requeues))
        in
        let requeue_total =
          backoff_next +. t.config.restart_overhead_s
          +. (elapsed -. preserved_delta)
          +. remaining
        in
        let shrink_total = delay +. useful_s in
        let gain = requeue_total -. shrink_total in
        let record verdict delay_s =
          {
            Malleable.time = now;
            job = j.name;
            kind = Malleable.Shrink_failure;
            from_procs = cur_procs;
            to_procs = surv_procs;
            moved_mb;
            delay_s;
            gain_s = gain;
            verdict;
          }
        in
        if gain > 0.0 then begin
          (* Only the dead nodes' un-checkpointed work is lost; the
             survivors carry theirs across the reconfiguration. *)
          let lost_node_s =
            (elapsed -. preserved_delta) *. float_of_int (List.length dead)
          in
          t.wasted_node_s <- t.wasted_node_s +. lost_node_s;
          if Telemetry.Runtime.is_enabled () then
            Telemetry.Metrics.add m_wasted lost_node_s;
          log_directive t ~now (record Malleable.Accepted delay);
          apply_reconfig t sim j ~to_alloc:surv ~delay ~useful_s;
          true
        end
        else begin
          log_directive t ~now
            (record (Malleable.Rejected "requeue path is cheaper") 0.0);
          false
        end)
  | _ -> false

(* Poll allocated-node liveness for every running job — reads only
   [World.is_up], never advances the world or draws randomness, so a
   run without faults is bit-identical with or without the check. *)
and check_failures t sim =
  List.iter
    (fun id ->
      let j = job t id in
      match j.state with
      | Running { nodes; _ } -> (
        match
          List.find_opt (fun n -> not (World.is_up t.world ~node:n)) nodes
        with
        | Some node ->
          fail_job t sim j ~reason:(Printf.sprintf "node %d died" node)
        | None -> ())
      | Queued | Failed _ | Finished _ | Rejected _ -> ())
    t.queue

let create ~sim ~world ~monitor ?(config = default_config) ~rng ~horizon () =
  let t =
    {
      sim;
      world;
      monitor;
      config;
      rng = Rng.split rng;
      horizon;
      jobs = Hashtbl.create 32;
      queue = [];
      finished_log = [];
      last_dispatch = neg_infinity;
      retry_pending = false;
      next_id = 0;
      wasted_node_s = 0.0;
      requeues_total = 0;
      last_snapshot = None;
      last_negotiation = neg_infinity;
      malleable_log = [];
      depth_series = Rm_stats.Timeseries.create ~name:"sched.queue_depth" ();
    }
  in
  (match config.node_check_period_s with
  | Some period ->
    Sim.every sim ~period ~until:horizon (fun sim -> check_failures t sim)
  | None -> ());
  (* Periodic reconfiguration points, so grow directives fire even when
     the queue is empty and no dispatch tick is pending. The callback
     never advances the world and fast-exits without touching the rng
     when no running job can move, so it cannot perturb a rigid run. *)
  (match config.malleable with
  | Some mc ->
    Sim.every sim ~period:mc.Malleable.negotiation_period_s ~until:horizon
      (fun sim -> negotiate t sim ~queue_blocked:(queued t <> []))
  | None -> ());
  t

let submit t ~name ~at ?(priority = 0) ?malleable ~request ~app_of () =
  if at < Sim.now t.sim then invalid_arg "Scheduler.submit: time in the past";
  (match malleable with
  | Some (s : Malleable.spec) ->
    if
      s.Malleable.min_procs > request.Request.procs
      || s.Malleable.max_procs < request.Request.procs
    then
      invalid_arg
        "Scheduler.submit: preferred procs outside the malleable band"
  | None -> ());
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  ignore
    (Sim.schedule_at t.sim ~time:at (fun sim ->
         let j =
           { id; name; priority; request; app_of; submitted_at = at;
             malleable; state = Queued; alloc = None; overlay = None;
             completion = None; requeue_event = None; span = None;
             requeues = 0; preserved_s = 0.0; seg_started_at = 0.0;
             seg_duration_s = 0.0; seg_delay_s = 0.0; reconfigs = 0 }
         in
         Hashtbl.replace t.jobs id j;
         t.queue <- t.queue @ [ id ];
         Telemetry.Metrics.incr m_submitted;
         try_dispatch t sim));
  id

let cancel t id =
  let j = job t id in
  match j.state with
  | Finished _ | Rejected _ -> ()
  | Queued ->
    j.state <- Rejected "cancelled";
    Telemetry.Metrics.incr m_cancelled;
    sync_queue_gauge t
  | Failed _ ->
    (match j.requeue_event with
    | Some handle ->
      Sim.cancel t.sim handle;
      j.requeue_event <- None
    | None -> ());
    j.state <- Rejected "cancelled";
    Telemetry.Metrics.incr m_cancelled
  | Running _ ->
    (match j.overlay with
    | Some handle ->
      World.release_job t.world handle;
      j.overlay <- None
    | None -> ());
    (match j.completion with
    | Some handle ->
      Sim.cancel t.sim handle;
      j.completion <- None
    | None -> ());
    (match j.span with
    | Some span ->
      Telemetry.Trace.span_end ~time:(Sim.now t.sim) span;
      j.span <- None
    | None -> ());
    j.state <- Rejected "cancelled";
    j.alloc <- None;
    Telemetry.Metrics.incr m_cancelled;
    (* Freed nodes may unblock the queue. *)
    schedule_retry t ~delay:0.0

type summary = {
  jobs_finished : int;
  mean_wait_s : float;
  max_wait_s : float;
  mean_turnaround_s : float;
}

let render_timeline t ?(width = 60) () =
  match finished t with
  | [] -> ""
  | outcomes ->
    let t0 =
      List.fold_left (fun acc (o : outcome) -> Float.min acc o.submitted_at) infinity outcomes
    in
    let t1 =
      List.fold_left (fun acc (o : outcome) -> Float.max acc o.finished_at) 0.0 outcomes
    in
    let span = Float.max 1e-9 (t1 -. t0) in
    let col time =
      int_of_float (float_of_int (width - 1) *. (time -. t0) /. span)
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "timeline: %.0fs .. %.0fs ('.' queued, '#' running)
" t0 t1);
    List.iter
      (fun (o : outcome) ->
        let row = Bytes.make width ' ' in
        for c = col o.submitted_at to col o.started_at - 1 do
          Bytes.set row c '.'
        done;
        for c = col o.started_at to col o.finished_at do
          Bytes.set row c '#'
        done;
        Buffer.add_string buf
          (Printf.sprintf "%-12s|%s|
" o.name (Bytes.to_string row)))
      outcomes;
    Buffer.contents buf

let summary t =
  let outcomes = finished t in
  if outcomes = [] then invalid_arg "Scheduler.summary: nothing finished";
  let waits = List.map (fun o -> o.started_at -. o.submitted_at) outcomes in
  let turnarounds = List.map (fun o -> o.finished_at -. o.submitted_at) outcomes in
  {
    jobs_finished = List.length outcomes;
    mean_wait_s = Rm_stats.Descriptive.mean_list waits;
    max_wait_s = List.fold_left Float.max 0.0 waits;
    mean_turnaround_s = Rm_stats.Descriptive.mean_list turnarounds;
  }

(** A minimal batch scheduler driving the resource broker — the shape a
    SLURM/Moab plugin integration (§6) would take.

    Jobs are submitted with a process request and an application model;
    the scheduler keeps a FCFS queue (with optional opportunistic
    backfill), asks the {!Rm_core.Broker} for a placement when a job
    reaches the head, and models each running job as a {!Rm_workload.World}
    overlay (CPU load on its nodes plus steady flows between them), so
    the monitor — and therefore later allocations — see it exactly as
    they would see any other tenant. Durations come from
    {!Rm_mpisim.Executor.estimate_duration_s} at dispatch time.

    Dispatches are rate-limited ([min_dispatch_gap_s]) so consecutive
    jobs observe monitor data that already reflects each other — the
    same staleness discipline a production broker needs. *)

type config = {
  broker : Rm_core.Broker.config;
  backfill : bool;  (** try later queued jobs when the head cannot start *)
  exclusive : bool;
      (** hide nodes already running one of this scheduler's jobs from
          the allocator (space sharing instead of time sharing);
          default false — the paper's broker deliberately time-shares *)
  min_dispatch_gap_s : float;  (** default 15 s *)
  retry_s : float;  (** re-examine the queue at least this often *)
  node_check_period_s : float option;
      (** poll allocated-node liveness this often and fail running jobs
          that lost a node; [None] (default) disables failure detection
          entirely, preserving the historical behavior. The poll reads
          only {!Rm_workload.World.is_up} — no world advance, no RNG —
          so enabling it does not perturb a fault-free run *)
  max_requeues : int;
      (** requeues permitted per job: [max_requeues = N] lets a job fail
          and re-enter the queue exactly N times (it may still finish on
          attempt N+1); failure N+1 turns it [Rejected]. Default 3 *)
  backoff_base_s : float;
      (** requeue delay after the first failure, doubling per subsequent
          failure; default 30 s *)
  backoff_cap_s : float;  (** backoff ceiling; default 1800 s *)
  checkpoint_interval_s : float option;
      (** virtual checkpoint cadence: on failure only the work since the
          last multiple of this is lost and re-run. [None] (default)
          means no checkpoints — a failed job restarts from scratch *)
  restart_overhead_s : float;
      (** extra run time added to every post-failure restart (checkpoint
          load, launch); default 0 *)
  malleable : Rm_malleable.Malleable.config option;
      (** enable the malleability negotiation phase: grow running jobs
          into idle capacity, shrink them to admit a blocked queue head,
          and recover from node failures by dropping the dead node's
          ranks instead of requeueing — all subject to the
          data-redistribution cost model in {!Rm_malleable.Malleable}.
          [None] (default) disables every reconfiguration point; a
          schedule whose jobs are all rigid behaves bit-identically
          either way (see docs/MALLEABILITY.md) *)
}

val default_config : config

type job_id = int

type outcome = {
  job : job_id;
  name : string;
  submitted_at : float;
  started_at : float;
  finished_at : float;
  nodes : int list;
  procs : int;
  requeues : int;  (** failures survived on the way to finishing *)
}

type state =
  | Queued
  | Running of { started_at : float; nodes : int list }
  | Failed of { at : float; reason : string; requeues : int }
      (** lost a node mid-run; will re-enter the queue after backoff *)
  | Finished of outcome
  | Rejected of string

type t

val create :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  monitor:Rm_monitor.System.t ->
  ?config:config ->
  rng:Rm_stats.Rng.t ->
  horizon:float ->
  unit ->
  t

val submit :
  t ->
  name:string ->
  at:float ->
  ?priority:int ->
  ?malleable:Rm_malleable.Malleable.spec ->
  request:Rm_core.Request.t ->
  app_of:(ranks:int -> Rm_mpisim.App.t) ->
  unit ->
  job_id
(** Schedules the submission on the sim; raises [Invalid_argument] when
    [at] is in the past. Higher [priority] (default 0) jobs are examined
    first; ties go to the earlier submission (FCFS). [malleable]
    declares the job's [min .. max] procs band around the request's
    preferred count (which must lie inside the band, or
    [Invalid_argument] is raised); directives only fire when the
    scheduler config also sets [malleable]. *)

val cancel : t -> job_id -> unit
(** Remove a queued job, or kill a running one (its world overlay is
    released immediately and it never reaches {!finished}). Cancelling a
    finished or already-cancelled job is a no-op. The job's state
    becomes [Rejected "cancelled"]. *)

val state : t -> job_id -> state
val queued : t -> job_id list
val running : t -> job_id list
val failed : t -> job_id list
(** Jobs waiting out their requeue backoff. *)

val rejected : t -> job_id list
(** Jobs that were cancelled or gave up after [max_requeues]. *)

val finished : t -> outcome list
(** In completion order. *)

val requeue_count : t -> int
(** Total [Failed] → [Queued] transitions so far. *)

val wasted_node_seconds : t -> float
(** Node-seconds of work lost to node failures (work since the last
    virtual checkpoint × nodes, summed over failures). *)

val malleable_log : t -> Rm_malleable.Malleable.record list
(** Every malleability directive evaluated so far, in chronological
    order — the audit trail explaining each accepted/rejected
    grow/shrink with its cost-model numbers. Empty unless the config
    enables malleability. *)

val reconfig_count : t -> job_id -> int
(** Reconfigurations (accepted directives) applied to this job so far. *)

val queue_depth_series : t -> Rm_stats.Timeseries.t
(** Queue depth over virtual time, one sample per dispatch tick
    (submission, retry, completion). Sampled unconditionally — it is
    scheduler state, not gated telemetry — so SLO views work without
    enabling the telemetry runtime. *)

type summary = {
  jobs_finished : int;
  mean_wait_s : float;
  max_wait_s : float;
  mean_turnaround_s : float;
}

val summary : t -> summary
(** Raises [Invalid_argument] when nothing has finished. *)

val render_timeline : t -> ?width:int -> unit -> string
(** ASCII Gantt of finished jobs: one row per job, ['.'] while queued,
    ['#'] while running, over a shared time axis scaled to [width]
    (default 60) columns. Empty string when nothing finished. *)

(** A minimal batch scheduler driving the resource broker — the shape a
    SLURM/Moab plugin integration (§6) would take.

    Jobs are submitted with a process request and an application model;
    the scheduler keeps a FCFS queue (with optional opportunistic
    backfill), asks the {!Rm_core.Broker} for a placement when a job
    reaches the head, and models each running job as a {!Rm_workload.World}
    overlay (CPU load on its nodes plus steady flows between them), so
    the monitor — and therefore later allocations — see it exactly as
    they would see any other tenant. Durations come from
    {!Rm_mpisim.Executor.estimate_duration_s} at dispatch time.

    Dispatches are rate-limited ([min_dispatch_gap_s]) so consecutive
    jobs observe monitor data that already reflects each other — the
    same staleness discipline a production broker needs. *)

type config = {
  broker : Rm_core.Broker.config;
  backfill : bool;  (** try later queued jobs when the head cannot start *)
  exclusive : bool;
      (** hide nodes already running one of this scheduler's jobs from
          the allocator (space sharing instead of time sharing);
          default false — the paper's broker deliberately time-shares *)
  min_dispatch_gap_s : float;  (** default 15 s *)
  retry_s : float;  (** re-examine the queue at least this often *)
}

val default_config : config

type job_id = int

type outcome = {
  job : job_id;
  name : string;
  submitted_at : float;
  started_at : float;
  finished_at : float;
  nodes : int list;
  procs : int;
}

type state =
  | Queued
  | Running of { started_at : float; nodes : int list }
  | Finished of outcome
  | Rejected of string

type t

val create :
  sim:Rm_engine.Sim.t ->
  world:Rm_workload.World.t ->
  monitor:Rm_monitor.System.t ->
  ?config:config ->
  rng:Rm_stats.Rng.t ->
  horizon:float ->
  unit ->
  t

val submit :
  t ->
  name:string ->
  at:float ->
  ?priority:int ->
  request:Rm_core.Request.t ->
  app_of:(ranks:int -> Rm_mpisim.App.t) ->
  unit ->
  job_id
(** Schedules the submission on the sim; raises [Invalid_argument] when
    [at] is in the past. Higher [priority] (default 0) jobs are examined
    first; ties go to the earlier submission (FCFS). *)

val cancel : t -> job_id -> unit
(** Remove a queued job, or kill a running one (its world overlay is
    released immediately and it never reaches {!finished}). Cancelling a
    finished or already-cancelled job is a no-op. The job's state
    becomes [Rejected "cancelled"]. *)

val state : t -> job_id -> state
val queued : t -> job_id list
val running : t -> job_id list
val finished : t -> outcome list
(** In completion order. *)

val queue_depth_series : t -> Rm_stats.Timeseries.t
(** Queue depth over virtual time, one sample per dispatch tick
    (submission, retry, completion). Sampled unconditionally — it is
    scheduler state, not gated telemetry — so SLO views work without
    enabling the telemetry runtime. *)

type summary = {
  jobs_finished : int;
  mean_wait_s : float;
  max_wait_s : float;
  mean_turnaround_s : float;
}

val summary : t -> summary
(** Raises [Invalid_argument] when nothing has finished. *)

val render_timeline : t -> ?width:int -> unit -> string
(** ASCII Gantt of finished jobs: one row per job, ['.'] while queued,
    ['#'] while running, over a shared time axis scaled to [width]
    (default 60) columns. Empty string when nothing finished. *)

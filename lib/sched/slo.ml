module Metrics = Rm_telemetry.Metrics
module Timeseries = Rm_stats.Timeseries

type percentiles = { p50 : float; p90 : float; p99 : float }

let percentile_of_buckets buckets ~p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Slo.percentile_of_buckets: p out of [0, 100]";
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  if total = 0 then invalid_arg "Slo.percentile_of_buckets: empty histogram";
  (* Target rank in [0, total]; walk the cumulative counts and
     interpolate inside the bucket that crosses it. *)
  let rank = p /. 100.0 *. float_of_int total in
  let rec walk lower cumulative last_finite = function
    | [] -> last_finite
    | (ub, n) :: rest ->
      let cumulative' = cumulative + n in
      if float_of_int cumulative' >= rank && n > 0 then
        if Float.is_finite ub then
          (* The interpolation factor is algebraically in [0, 1]
             (cumulative < rank <= cumulative + n holds here), but keep
             the estimate inside its bucket even if float rounding of
             rank or the division nudges it out — a percentile must
             never report a value the bucket bounds exclude. *)
          let est =
            lower
            +. ((ub -. lower)
                *. ((rank -. float_of_int cumulative) /. float_of_int n))
          in
          Float.max lower (Float.min ub est)
        else last_finite  (* overflow bucket: clamp to the last bound *)
      else
        walk
          (if Float.is_finite ub then ub else lower)
          cumulative'
          (if Float.is_finite ub then ub else last_finite)
          rest
  in
  walk 0.0 0 0.0 buckets

let percentiles_of_buckets buckets =
  {
    p50 = percentile_of_buckets buckets ~p:50.0;
    p90 = percentile_of_buckets buckets ~p:90.0;
    p99 = percentile_of_buckets buckets ~p:99.0;
  }

let wait_percentiles () =
  match Metrics.find "sched.dispatch_wait_s" with
  | None -> None
  | Some m ->
    if Metrics.count m = 0 then None
    else Some (percentiles_of_buckets (Metrics.bucket_counts m))

type report = {
  source : string;
      (* which latency a row measures: "sched" = scheduler dispatch
         wait, "service" = daemon request latency. Keeps the two from
         being read as comparable in mixed `rmctl slo` output. *)
  policy : string;
  jobs_finished : int;
  wait : percentiles;
  mean_wait_s : float;
  max_queue_depth : int;
  mean_queue_depth : float;
}

let report ~sched ~policy =
  (* Check the histogram before touching [Scheduler.summary]: with no
     dispatches there is nothing finished either, and summary raises on
     that — the whole point is to return [Error], not to crash. *)
  match wait_percentiles () with
  | None -> Error `No_wait_data
  | Some wait ->
    let summary = Scheduler.summary sched in
    let depths = Timeseries.values (Scheduler.queue_depth_series sched) in
    let max_depth, mean_depth =
      if Array.length depths = 0 then (0, 0.0)
      else
        ( int_of_float (Rm_stats.Descriptive.max depths),
          Rm_stats.Descriptive.mean depths )
    in
    Ok
      {
        source = "sched";
        policy;
        jobs_finished = summary.Scheduler.jobs_finished;
        wait;
        mean_wait_s = summary.Scheduler.mean_wait_s;
        max_queue_depth = max_depth;
        mean_queue_depth = mean_depth;
      }

let service_latency_metric = "service.request_latency_s"

let service_report ?(max_queue_depth = 0) ?(mean_queue_depth = 0.0) ~policy () =
  match Metrics.find ~labels:[ ("policy", policy) ] service_latency_metric with
  | None -> Error `No_wait_data
  | Some m ->
    let count = Metrics.count m in
    if count = 0 then Error `No_wait_data
    else
      Ok
        {
          source = "service";
          policy;
          jobs_finished = count;
          wait = percentiles_of_buckets (Metrics.bucket_counts m);
          mean_wait_s = Metrics.value m /. float_of_int count;
          max_queue_depth;
          mean_queue_depth;
        }

(* Scheduler waits are hundreds of seconds, daemon latencies fractions
   of a millisecond; one fixed precision would render the latter as 0s. *)
let fmt_secs x =
  if Float.abs x >= 100.0 then Printf.sprintf "%8.0fs" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%8.1fs" x
  else Printf.sprintf "%8.4fs" x

let render reports =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %-20s %6s %9s %9s %9s %9s %7s %7s\n" "source"
       "policy" "jobs" "p50 wait" "p90 wait" "p99 wait" "mean" "max qd"
       "mean qd");
  Buffer.add_string buf (String.make 91 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-20s %6d %s %s %s %s %7d %7.2f\n" r.source
           r.policy r.jobs_finished (fmt_secs r.wait.p50) (fmt_secs r.wait.p90)
           (fmt_secs r.wait.p99) (fmt_secs r.mean_wait_s) r.max_queue_depth
           r.mean_queue_depth))
    reports;
  Buffer.contents buf

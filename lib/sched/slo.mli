(** Scheduler service-level objectives derived from the telemetry the
    scheduler already records: dispatch-wait percentiles from the
    [sched.dispatch_wait_s] histogram and queue-depth statistics from
    {!Scheduler.queue_depth_series}.

    Histogram percentiles are estimates — the true sample positions
    inside a bucket are unknown, so values are linearly interpolated
    within the bucket that crosses the target rank (the same estimate
    Prometheus's [histogram_quantile] makes). The error is bounded by
    the bucket width; the tests check the estimate against
    {!Rm_stats.Descriptive.percentile} on the raw samples. *)

type percentiles = { p50 : float; p90 : float; p99 : float }

val percentile_of_buckets : (float * int) list -> p:float -> float
(** [p] in [0, 100] over histogram [(upper_bound, count)] pairs as
    {!Rm_telemetry.Metrics.bucket_counts} returns them (per-bucket
    counts, overflow last as [(infinity, n)]). The first bucket
    interpolates from 0; a rank landing in the overflow bucket returns
    the last finite bound (the histogram cannot see past it). The
    estimate is clamped to the crossing bucket's [lower, upper] bounds,
    so gaps of empty buckets can never push it outside them. Raises
    [Invalid_argument] when the histogram is empty or [p] is out of
    range. *)

val percentiles_of_buckets : (float * int) list -> percentiles
(** p50/p90/p99 via {!percentile_of_buckets} — same input convention,
    same [Invalid_argument] on an empty histogram. *)

val wait_percentiles : unit -> percentiles option
(** p50/p90/p99 of the [sched.dispatch_wait_s] histogram, [None] when
    the metric does not exist or has no observations. *)

(** {2 Per-policy reports} *)

type report = {
  source : string;
      (** what the latency column measures: ["sched"] for scheduler
          dispatch waits, ["service"] for daemon request latency —
          tagged so mixed tables cannot be misread as one population *)
  policy : string;
  jobs_finished : int;
  wait : percentiles;  (** seconds, from the source's latency histogram *)
  mean_wait_s : float;
  max_queue_depth : int;
  mean_queue_depth : float;
}

val report :
  sched:Scheduler.t -> policy:string -> (report, [ `No_wait_data ]) result
(** Reads the wait histogram (so the caller must have run [sched] with
    telemetry enabled, and reset metrics between policies for
    per-policy numbers) and the scheduler's queue-depth series.
    [Error `No_wait_data] when the [sched.dispatch_wait_s] histogram is
    missing or empty — telemetry was off, or no job was ever
    dispatched — so callers can print a notice instead of crashing. *)

val service_report :
  ?max_queue_depth:int ->
  ?mean_queue_depth:float ->
  policy:string ->
  unit ->
  (report, [ `No_wait_data ]) result
(** Daemon-side counterpart of {!report}: reads the per-policy
    [service.request_latency_s] histogram the brokerd tick thread
    populates (label [policy]) and tags the row [source = "service"].
    [jobs_finished] is the number of served requests; queue-depth
    fields default to zero because the daemon's admission queue is
    reported by its own gauges — pass the observed values when the
    caller tracked them. [Error `No_wait_data] when the histogram is
    missing or empty. *)

val render : report list -> string
(** Side-by-side table, one row per source+policy: p50/p90/p99 wait,
    mean wait, max and mean queue depth. Second precision adapts to
    magnitude so sub-millisecond service latencies stay visible next to
    hundred-second scheduler waits. *)

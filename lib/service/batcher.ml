(* Admission queue and per-tick batch serving.

   Two halves, deliberately separable:

   - a generic bounded MPSC queue ([t], [submit], [take], [close]) used
     by the server to hand allocate requests from connection workers to
     the tick thread, with backpressure surfaced to the caller as
     [`Queue_full];

   - pure batch-serving functions ([serve_batch]) that turn a list of
     wire allocate params into broker decisions against ONE snapshot.
     [serve_batch] is, by construction, a [List.map] over
     [Broker.decide] in FIFO order threading a single rng — so a batch
     of N requests is bit-identical to N sequential one-shot decides on
     the same snapshot with the same rng (qcheck-gated in
     test_service.ml). The win is not a different algorithm; it is that
     the whole batch hits one [Model_cache] entry instead of N captures
     rebuilding N model bundles.

   The queue assumes a single consumer (the tick thread): [take]
   returning [] is a reliable "closed and drained" signal only when
   nobody else is also taking. *)

module Broker = Rm_core.Broker
module Request = Rm_core.Request

(* --- bounded admission queue ------------------------------------------- *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  max_pending : int;
  mutable closed : bool;
}

let create ~max_pending =
  if max_pending <= 0 then invalid_arg "Batcher.create: max_pending";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    max_pending;
    closed = false;
  }

let depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let submit t item =
  Mutex.lock t.mutex;
  let outcome =
    if t.closed then `Closed
    else if Queue.length t.items >= t.max_pending then `Queue_full
    else begin
      Queue.add item t.items;
      Condition.signal t.nonempty;
      `Queued
    end
  in
  Mutex.unlock t.mutex;
  outcome

(* Blocks until at least one item is available (or the queue is closed),
   then drains up to [max] items in FIFO order. After [close], keeps
   returning whatever remains, then [] forever — the consumer's natural
   drain-then-stop loop is [match take q with [] -> stop | batch -> ...]. *)
let take t ~max =
  if max <= 0 then invalid_arg "Batcher.take: max";
  Mutex.lock t.mutex;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let batch = ref [] in
  let n = ref 0 in
  while !n < max && not (Queue.is_empty t.items) do
    batch := Queue.take t.items :: !batch;
    incr n
  done;
  Mutex.unlock t.mutex;
  List.rev !batch

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

(* --- batch serving ------------------------------------------------------ *)

(* Per-request config: the wire request may pick its own policy and pin
   its own wait threshold; everything else (weights, staleness gate,
   default threshold) comes from the daemon's base config. *)
let broker_config ~base (a : Wire.allocate) =
  {
    base with
    Broker.policy = Option.value a.Wire.policy ~default:base.Broker.policy;
    wait_threshold =
      (match a.Wire.wait_threshold with
      | Some _ as w -> w
      | None -> base.Broker.wait_threshold);
  }

let request_of (a : Wire.allocate) =
  Request.make ?ppn:a.Wire.ppn ~alpha:a.Wire.alpha ~procs:a.Wire.procs ()

type outcome = (Broker.decision, Rm_core.Allocation.error) result

let serve_one ~base ~snapshot ~rng (a : Wire.allocate) : outcome =
  Broker.decide ~config:(broker_config ~base a) ~snapshot
    ~request:(request_of a) ~rng

(* FIFO over one snapshot, one rng threaded through — the determinism
   invariant the service's throughput claim rests on. *)
let serve_batch ~base ~snapshot ~rng params =
  List.map (serve_one ~base ~snapshot ~rng) params

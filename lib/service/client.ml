(* Minimal blocking client for the brokerd wire protocol — used by the
   CLI, the `bench serve` load generator, and the e2e tests. One
   request in flight per call; ids are assigned by the client and the
   response id is checked against the request id. *)

module Policies = Rm_core.Policies

type endpoint = [ `Unix of string | `Tcp of int ]

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let sockaddr_of = function
  | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | `Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let connect (endpoint : endpoint) =
  let domain, addr = sockaddr_of endpoint in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t request =
  let req_id = t.next_id in
  t.next_id <- req_id + 1;
  output_string t.oc (Wire.encode_request { Wire.req_id; request });
  output_char t.oc '\n';
  flush t.oc;
  let line = input_line t.ic in
  match Wire.decode_response line with
  | Error m -> failwith ("Client.rpc: bad response: " ^ m)
  | Ok { resp_id; response } ->
    if resp_id <> req_id && resp_id <> 0 then
      failwith
        (Printf.sprintf "Client.rpc: response id %d for request %d" resp_id
           req_id);
    response

let allocate ?ppn ?(alpha = 0.5) ?policy ?wait_threshold ?lease_s ?load_per_proc
    ?traffic_mb_s_per_proc t ~procs =
  rpc t
    (Wire.Allocate
       {
         procs;
         ppn;
         alpha;
         policy;
         wait_threshold;
         lease_s;
         load_per_proc;
         traffic_mb_s_per_proc;
       })

let grow ?ppn ?(alpha = 0.5) ?policy t ~alloc_id ~delta_procs =
  rpc t
    (Wire.Grow
       {
         alloc_id;
         delta_procs;
         grow_ppn = ppn;
         grow_alpha = alpha;
         grow_policy = policy;
       })

let shrink t ~alloc_id ~delta_procs = rpc t (Wire.Shrink { alloc_id; delta_procs })

let renegotiate ?ppn ?(alpha = 0.5) ?policy t ~alloc_id ~min_procs ~pref_procs
    ~max_procs =
  rpc t
    (Wire.Renegotiate
       {
         ren_alloc_id = alloc_id;
         min_procs;
         pref_procs;
         max_procs;
         ren_ppn = ppn;
         ren_alpha = alpha;
         ren_policy = policy;
       })

let release t ~alloc_id = rpc t (Wire.Release { alloc_id })
let status t = rpc t Wire.Status
let metrics t = rpc t Wire.Metrics

(* One-shot HTTP GET against the same endpoint, for /metrics scrapes.
   Returns (status-code, body). *)
let http_get (endpoint : endpoint) ~path =
  let domain, addr = sockaddr_of endpoint in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: brokerd\r\n\r\n" path);
      flush oc;
      let status_line = input_line ic in
      let code =
        match String.split_on_char ' ' (String.trim status_line) with
        | _ :: code :: _ -> (
          match int_of_string_opt code with
          | Some c -> c
          | None -> failwith ("Client.http_get: bad status " ^ status_line))
        | _ -> failwith ("Client.http_get: bad status " ^ status_line)
      in
      let content_length = ref None in
      (try
         let rec headers () =
           let line = String.trim (input_line ic) in
           if line <> "" then begin
             (match String.index_opt line ':' with
             | Some i
               when String.lowercase_ascii (String.sub line 0 i)
                    = "content-length" ->
               content_length :=
                 int_of_string_opt
                   (String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)))
             | _ -> ());
             headers ()
           end
         in
         headers ()
       with End_of_file -> ());
      let body =
        match !content_length with
        | Some n -> really_input_string ic n
        | None ->
          let buf = Buffer.create 1024 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          Buffer.contents buf
      in
      (code, body))

(* Resident allocation daemon: accept loop, connection workers, and the
   tick thread that owns all broker decisions.

   Thread layout (systhreads — one runtime lock, so these interleave on
   a single domain, which is exactly what `Model_cache` requires):

   - accept thread: `Unix.select` with a short timeout so it can notice
     the stop flag, then `accept` and hand the connection to a fresh
     worker thread;
   - worker threads: speak the `Wire` line protocol (or answer a
     one-shot HTTP GET for /metrics scrapes). Allocate requests are
     *submitted* to the admission queue and the worker blocks on an
     ivar; release/status/metrics are answered inline under the state
     mutex. Workers never call `Broker.decide`;
   - tick thread: sole consumer of the admission queue and sole caller
     of `Broker.decide`. In batched mode the whole batch is served from
     one snapshot, refreshed only when it is older than `tick_s` of
     wall time; in the per-request control mode every request pays a
     fresh `System.snapshot` capture (and therefore a `Model_cache`
     miss), which is what a one-shot CLI invocation pays.

   Virtual time: the daemon embeds the same simulated world the CLI
   commands build (`Sim` + `World` + monitor `System`). Wall time and
   virtual time advance on different clocks; each snapshot refresh
   advances virtual time by `virtual_tick_s` so the monitored state
   keeps evolving under sustained load.

   Shutdown: signal handlers only set an atomic flag; `run` polls it
   and calls `stop`, which (1) marks the server draining so new
   allocates get `shutting_down`, (2) stops the accept loop, (3) closes
   the admission queue and joins the tick thread — which by
   construction serves every already-admitted request first — then
   (4) grace-waits for workers, flushes the `Spill` sink and writes a
   final metrics exposition. *)

module Sim = Rm_engine.Sim
module Cluster = Rm_cluster.Cluster
module World = Rm_workload.World
module Scenario = Rm_workload.Scenario
module System = Rm_monitor.System
module Snapshot = Rm_monitor.Snapshot
module Overlay = Rm_monitor.Overlay
module Broker = Rm_core.Broker
module Model_cache = Rm_core.Model_cache
module Allocation = Rm_core.Allocation
module Policies = Rm_core.Policies
module Request = Rm_core.Request
module Malleable = Rm_malleable.Malleable
module Executor = Rm_mpisim.Executor
module Telemetry = Rm_telemetry
module Metrics = Rm_telemetry.Metrics

type endpoint = Unix_socket of string | Tcp of int

type config = {
  endpoint : endpoint;
  scenario : Scenario.t;
  seed : int;
  start_time : float;  (** virtual seconds; keep past [System.warm_up_s] *)
  nodes : int option;
      (** [Some n]: homogeneous n-node cluster instead of the IIT-K
          reference — smaller for tests, larger for load studies. *)
  tick_s : float;  (** wall-clock snapshot refresh period *)
  virtual_tick_s : float;  (** virtual seconds added per refresh *)
  max_pending : int;  (** admission queue bound (backpressure) *)
  max_batch : int;  (** most requests served from one queue take *)
  batching : bool;  (** false = per-request snapshot control mode *)
  broker : Broker.config;
  retry_after_s : float;  (** hint attached to retry responses *)
  metrics_out : string option;  (** final exposition written on stop *)
  spill_dir : string option;  (** trace spill sink, flushed on stop *)
  horizon_s : float;  (** monitor daemons scheduled this far ahead *)
  reconfig_data_mb_per_proc : float;
      (** redistribution payload assumed per moved rank when answering
          v2 grow/shrink/renegotiate — the daemon has no per-job data
          model, so the delay it reports uses this flat figure *)
  reconfig_overhead_s : float;
      (** fixed cost added to every reported reconfiguration delay *)
  overlay : bool;
      (** grants are first-class load sources: each active allocation
          overlays compute load and traffic onto the decision snapshot
          and holds its nodes out of the grantable pool until released
          (or its lease expires). [false] restores the pre-overlay
          bookkeeping-only daemon, bit-identical to its decisions. *)
  default_lease_s : float option;
      (** lease applied when an allocate carries no [lease_s]; [None]
          grants without expiry (a crashed client then pins overlayed
          capacity until an operator releases it). *)
  overlay_load_per_proc : float;
      (** default compute load each granted rank overlays on its node *)
  overlay_traffic_mb_s_per_proc : float;
      (** default MB/s each rank pushes to its ring neighbour *)
}

let default_config ~endpoint =
  {
    endpoint;
    scenario = Scenario.normal;
    seed = 42;
    start_time = 1200.0;
    nodes = None;
    tick_s = 0.01;
    virtual_tick_s = 0.01;
    max_pending = 1024;
    max_batch = 256;
    batching = true;
    broker = Broker.default_config;
    retry_after_s = 0.05;
    metrics_out = None;
    spill_dir = None;
    horizon_s = 2_592_000.0;
    reconfig_data_mb_per_proc = 64.0;
    reconfig_overhead_s = 30.0;
    overlay = true;
    default_lease_s = None;
    overlay_load_per_proc = 1.0;
    overlay_traffic_mb_s_per_proc = 8.0;
  }

(* --- one-shot synchronisation cell -------------------------------------- *)

module Ivar = struct
  type 'a t = { m : Mutex.t; c : Condition.t; mutable v : 'a option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.signal t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

(* Admission-queue payload. Reconfiguration directives ride the same
   queue as allocates so the tick thread stays the sole caller of
   `Broker.decide` / `Policies.allocate` (and therefore the sole
   `Model_cache` user) — workers never touch the allocator. The reply
   is the finished wire response: building it (including the alloc
   table update) happens on the tick thread too. *)
type work =
  | Alloc_work of Wire.allocate
  | Grow_work of Wire.grow
  | Shrink_work of { alloc_id : int; delta_procs : int }
  | Renegotiate_work of Wire.renegotiate
  | Release_work of { alloc_id : int }
      (** overlay mode only: the release recomposes the world, which
          must happen on the tick thread (sole [Model_cache] user) *)

type pending = {
  work : work;
  enqueued_at : float;  (* wall clock, for the latency histogram *)
  reply : Wire.response Ivar.t;
}

(* Everything the daemon knows about one live grant. The overlay
   handle ties the allocation to its load/traffic footprint in the
   registry; the lease (wall clock) bounds how long a silent client
   can hold it. *)
type alloc_state = {
  allocation : Allocation.t;
  handle : Overlay.handle option;  (* None when overlays are off *)
  expires_at : float option;  (* wall clock; None = no lease *)
  lease_s : float option;  (* duration granted, echoed on the wire *)
  load_per_proc : float;
  traffic_mb_s_per_proc : float;
}

type t = {
  config : config;
  sim : Sim.t;
  world : World.t;
  monitor : System.t;
  rng : Rm_stats.Rng.t;  (* decision rng; tick thread only *)
  queue : pending Batcher.t;
  state_mutex : Mutex.t;
      (* guards: snapshot, composed, decide, snapshot_taken_at,
         virtual_time, allocs, tombstones, overlays, next_alloc_id,
         served, batches, sim/world/monitor advancement *)
  mutable snapshot : Snapshot.t;  (* raw monitor capture *)
  mutable composed : Snapshot.t;
      (* snapshot with grant overlays applied; == snapshot when
         overlays are off or no grant is live *)
  mutable decide : Snapshot.t;
      (* what the broker sees: [composed], additionally restricted by
         the held-node set when overlays are on. Physically == snapshot
         when overlays are off (the bookkeeping-only decision path). *)
  overlays : Overlay.t;
  mutable snapshot_taken_at : float;  (* wall clock *)
  mutable virtual_time : float;
  allocs : (int, alloc_state) Hashtbl.t;
  tombstones : (int, [ `Released | `Expired ]) Hashtbl.t;
      (* every id that was ever live and is no more — distinguishes a
         double release from a never-granted id. Ids are never reused,
         so this grows with the grant count; at daemon request rates
         that is cheap bookkeeping. *)
  mutable next_alloc_id : int;
  mutable served : int;
  mutable batches : int;
  started_at : float;
  stop_requested : bool Atomic.t;
  draining : bool Atomic.t;
  stopped : bool Atomic.t;
  workers : int Atomic.t;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  mutable tick_thread : Thread.t option;
  spill : Telemetry.Spill.t option;
}

(* --- metrics ------------------------------------------------------------ *)

let m_requests = Metrics.counter "core.service.requests"
let m_batches = Metrics.counter "core.service.batches"

let m_batch_size =
  Metrics.histogram
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]
    "core.service.batch_size"

let m_queue_depth = Metrics.gauge "core.service.queue_depth"
let m_retry = Metrics.counter "core.service.retry_after"
let m_rejected = Metrics.counter "core.service.rejected"
let m_active = Metrics.gauge "core.service.active_allocations"
let m_connections = Metrics.gauge "core.service.connections"
let m_snapshots = Metrics.counter "core.service.snapshots"
let m_reconfigs = Metrics.counter "core.service.reconfigs"
let m_lease_granted = Metrics.counter "service.lease.granted"
let m_lease_expired = Metrics.counter "service.lease.expired"
let m_lease_active = Metrics.gauge "service.lease.active"

let latency_metric_name = "service.request_latency_s"

(* Decade-spaced default buckets cannot separate a 2 ms p50 from an
   8 ms p99; use a 1-2.5-5 ladder from 100 µs to 10 s instead. *)
let latency_buckets =
  [|
    1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25;
    0.5; 1.0; 2.5; 5.0; 10.0;
  |]

let latency_histogram ~policy =
  Metrics.histogram ~buckets:latency_buckets
    ~labels:[ ("policy", Policies.name policy) ]
    latency_metric_name

(* --- environment -------------------------------------------------------- *)

(* Same shape as rmctl's make_env, but the cluster size is overridable
   and the monitor horizon is the daemon's lifetime, not one day. *)
let make_cluster = function
  | None -> Cluster.iitk_reference ()
  | Some n ->
    if n <= 0 then invalid_arg "Server: nodes must be positive";
    let rec switches n = if n <= 10 then [ n ] else 10 :: switches (n - 10) in
    Cluster.homogeneous ~nodes_per_switch:(switches n) ()

let open_endpoint = function
  | Unix_socket path ->
    if String.length path > 100 then
      invalid_arg "Server: unix socket path too long";
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    fd

let create config =
  let cluster = make_cluster config.nodes in
  let sim = Sim.create () in
  let world =
    World.create ~cluster ~scenario:config.scenario ~seed:config.seed
  in
  let rng = Rm_stats.Rng.create (config.seed + 1) in
  let monitor =
    System.start ~sim ~world ~rng
      ~until:(config.start_time +. config.horizon_s)
      ()
  in
  Sim.run_until sim config.start_time;
  World.advance world ~now:config.start_time;
  let snapshot = System.snapshot monitor ~time:config.start_time in
  let spill =
    Option.map
      (fun dir ->
        let s = Telemetry.Spill.create ~dir () in
        Telemetry.Spill.install s;
        s)
      config.spill_dir
  in
  {
    config;
    sim;
    world;
    monitor;
    rng;
    queue = Batcher.create ~max_pending:config.max_pending;
    state_mutex = Mutex.create ();
    snapshot;
    composed = snapshot;
    decide = snapshot;
    overlays = Overlay.create ~node_count:(Cluster.node_count cluster);
    snapshot_taken_at = Unix.gettimeofday ();
    virtual_time = config.start_time;
    allocs = Hashtbl.create 64;
    tombstones = Hashtbl.create 64;
    next_alloc_id = 1;
    served = 0;
    batches = 0;
    started_at = Unix.gettimeofday ();
    stop_requested = Atomic.make false;
    draining = Atomic.make false;
    stopped = Atomic.make false;
    workers = Atomic.make 0;
    listen_fd = open_endpoint config.endpoint;
    accept_thread = None;
    tick_thread = None;
    spill;
  }

(* --- allocation table & overlay composition ------------------------------ *)

(* The assumed footprint of one grant: every granted rank contributes
   [load_per_proc] runnable load on its node, and pushes
   [traffic_mb_s_per_proc] to its ring neighbour — a halo-exchange-
   shaped demand over the allocation's nodes in placement order
   (single-node allocations push nothing onto the network). *)
let footprint (st : alloc_state) =
  let entries = st.allocation.Allocation.entries in
  let load =
    if st.load_per_proc <= 0.0 then []
    else
      List.map
        (fun (e : Allocation.entry) ->
          ( e.Allocation.node,
            float_of_int e.Allocation.procs *. st.load_per_proc ))
        entries
  in
  let ring = Array.of_list entries in
  let k = Array.length ring in
  let traffic =
    if k < 2 || st.traffic_mb_s_per_proc <= 0.0 then []
    else
      List.init
        (if k = 2 then 1 else k)
        (fun i ->
          let src = ring.(i) and dst = ring.((i + 1) mod k) in
          ( (src.Allocation.node, dst.Allocation.node),
            float_of_int src.Allocation.procs *. st.traffic_mb_s_per_proc ))
  in
  (load, traffic)

let held_nodes_locked t =
  Hashtbl.fold
    (fun _ st acc -> Allocation.node_ids st.allocation @ acc)
    t.allocs []

(* Rebuild [composed]/[decide] after a registry or table change.
   [touched] lists the nodes whose load/traffic footprint moved, so
   the new composed snapshot's network model rides the O(touched·V)
   incremental patch (PR 7) from the previous composed snapshot
   instead of a full O(V²) re-derivation. Caller holds state_mutex;
   overlay mode only; tick thread only (Model_cache discipline). *)
let recompose_locked t ~touched =
  let prev = t.composed in
  let composed = Overlay.apply t.overlays t.snapshot in
  t.composed <- composed;
  if composed != prev then
    ignore
      (Model_cache.get_derived composed ~prev ~touched
         ~weights:t.config.broker.Broker.weights
        : Model_cache.t);
  let held = held_nodes_locked t in
  t.decide <-
    (if held = [] then composed else Snapshot.restrict composed ~exclude:held)

let leased_count_locked t =
  Hashtbl.fold
    (fun _ st n -> if st.expires_at <> None then n + 1 else n)
    t.allocs 0

let refresh_alloc_gauges_locked t =
  Metrics.set m_active (float_of_int (Hashtbl.length t.allocs));
  Metrics.set m_lease_active (float_of_int (leased_count_locked t))

(* Runs on the tick thread (decisions and their table updates live
   there). Returns the fresh id plus the lease actually granted. *)
let register_allocation t allocation ~(params : Wire.allocate) =
  let wall = Unix.gettimeofday () in
  Mutex.lock t.state_mutex;
  let id = t.next_alloc_id in
  t.next_alloc_id <- id + 1;
  let lease_s =
    match params.Wire.lease_s with
    | Some _ as l -> l
    | None -> t.config.default_lease_s
  in
  let st =
    {
      allocation;
      handle = None;
      expires_at = Option.map (fun l -> wall +. l) lease_s;
      lease_s;
      load_per_proc =
        Option.value params.Wire.load_per_proc
          ~default:t.config.overlay_load_per_proc;
      traffic_mb_s_per_proc =
        Option.value params.Wire.traffic_mb_s_per_proc
          ~default:t.config.overlay_traffic_mb_s_per_proc;
    }
  in
  let st =
    if not t.config.overlay then st
    else begin
      let load, traffic = footprint st in
      { st with handle = Some (Overlay.register t.overlays ~load ~traffic) }
    end
  in
  Hashtbl.replace t.allocs id st;
  if t.config.overlay then
    recompose_locked t ~touched:(Allocation.node_ids allocation);
  if st.expires_at <> None then Metrics.incr m_lease_granted;
  refresh_alloc_gauges_locked t;
  Mutex.unlock t.state_mutex;
  (id, lease_s)

(* Caller holds state_mutex. Removes the grant and its overlay entry
   but does not recompose — callers batch removals and recompose once. *)
let drop_allocation_locked t ~alloc_id ~reason =
  match Hashtbl.find_opt t.allocs alloc_id with
  | None -> None
  | Some st ->
    Hashtbl.remove t.allocs alloc_id;
    Hashtbl.replace t.tombstones alloc_id reason;
    Option.iter (Overlay.remove t.overlays) st.handle;
    refresh_alloc_gauges_locked t;
    Some st

(* Overlay mode routes releases through the tick thread (the overlay
   recomposition touches `Model_cache`); bookkeeping-only mode answers
   inline on the worker like it always did. *)
let release_allocation t ~alloc_id =
  Mutex.lock t.state_mutex;
  let outcome =
    match drop_allocation_locked t ~alloc_id ~reason:`Released with
    | Some st ->
      if t.config.overlay then
        recompose_locked t ~touched:(Allocation.node_ids st.allocation);
      `Released
    | None -> (
      match Hashtbl.find_opt t.tombstones alloc_id with
      | Some reason -> `Already_released reason
      | None -> `Unknown)
  in
  Mutex.unlock t.state_mutex;
  outcome

let lookup_allocation t ~alloc_id =
  Mutex.lock t.state_mutex;
  let a = Hashtbl.find_opt t.allocs alloc_id in
  Mutex.unlock t.state_mutex;
  a

(* Only replace a registered id — a concurrent release wins over a
   reconfiguration still in flight for the same allocation. The
   overlay footprint is re-shaped to the new allocation, so a shrink
   that empties a node returns it to the grantable pool immediately. *)
let replace_allocation t ~alloc_id allocation =
  Mutex.lock t.state_mutex;
  (match Hashtbl.find_opt t.allocs alloc_id with
  | None -> ()
  | Some st ->
    let old_nodes = Allocation.node_ids st.allocation in
    let st = { st with allocation } in
    Hashtbl.replace t.allocs alloc_id st;
    (match st.handle with
    | Some h ->
      let load, traffic = footprint st in
      Overlay.set t.overlays h ~load ~traffic
    | None -> ());
    if t.config.overlay then
      recompose_locked t
        ~touched:
          (List.sort_uniq compare (old_nodes @ Allocation.node_ids allocation)));
  Mutex.unlock t.state_mutex

(* Lease sweep — tick thread, before each batch. Expired grants are
   dropped in one pass and the world recomposed once, so a crashed
   client cannot pin overlayed capacity past its lease. *)
let sweep_leases t ~wall =
  Mutex.lock t.state_mutex;
  let expired =
    Hashtbl.fold
      (fun id st acc ->
        match st.expires_at with
        | Some at when at <= wall -> (id, st) :: acc
        | _ -> acc)
      t.allocs []
  in
  if expired <> [] then begin
    let touched = ref [] in
    List.iter
      (fun (id, st) ->
        ignore (drop_allocation_locked t ~alloc_id:id ~reason:`Expired);
        Metrics.incr m_lease_expired;
        touched := Allocation.node_ids st.allocation @ !touched)
      expired;
    if t.config.overlay then
      recompose_locked t ~touched:(List.sort_uniq compare !touched)
  end;
  Mutex.unlock t.state_mutex

(* --- tick thread -------------------------------------------------------- *)

(* Advance virtual time one tick and recapture. Caller holds state_mutex. *)
let refresh_snapshot_locked t ~wall =
  let prev = t.snapshot in
  let prev_composed = t.composed in
  t.virtual_time <- t.virtual_time +. t.config.virtual_tick_s;
  Sim.run_until t.sim t.virtual_time;
  World.advance t.world ~now:t.virtual_time;
  t.snapshot <- System.snapshot t.monitor ~time:t.virtual_time;
  t.snapshot_taken_at <- wall;
  (* If the previous tick's network model is cached and the usable set
     held, patch it forward to the new snapshot (O(touched·V)) instead
     of letting the next decision rebuild O(V²) from scratch. The
     no-batch control mode takes per-request snapshots on purpose and
     never primes. In overlay mode the decision path reads the
     *composed* snapshot, so that is the chain the priming follows. *)
  if t.config.overlay then begin
    let composed = Overlay.apply t.overlays t.snapshot in
    t.composed <- composed;
    Rm_core.Model_cache.prime_derived composed ~prev:prev_composed
      ~weights:t.config.broker.Broker.weights;
    let held = held_nodes_locked t in
    t.decide <-
      (if held = [] then composed else Snapshot.restrict composed ~exclude:held)
  end
  else begin
    t.composed <- t.snapshot;
    t.decide <- t.snapshot;
    Rm_core.Model_cache.prime_derived t.snapshot ~prev
      ~weights:t.config.broker.Broker.weights
  end;
  Metrics.incr m_snapshots

(* --- tick-thread response construction -----------------------------------

   Everything below runs on the tick thread: allocator calls, table
   updates and wire-response assembly. A worker only submits the work
   item and blocks on its ivar for the finished response. *)

let alloc_error_response e =
  let code =
    match e with
    | Allocation.Insufficient_capacity _ -> Wire.Insufficient_capacity
    | Allocation.No_usable_nodes -> Wire.No_usable_nodes
  in
  Wire.Error { code; message = Format.asprintf "%a" Allocation.pp_error e }

let unknown_alloc alloc_id =
  Wire.Error
    {
      code = Wire.Unknown_alloc;
      message = Printf.sprintf "no active allocation #%d" alloc_id;
    }

let already_released alloc_id reason =
  Wire.Error
    {
      code = Wire.Already_released;
      message =
        Printf.sprintf "allocation #%d was already %s" alloc_id
          (match reason with
          | `Released -> "released"
          | `Expired -> "dropped (lease expired)");
    }

(* An id that is not in the live table: tombstoned ids get the typed
   already-released error, never-granted ids stay unknown_alloc. *)
let missing_alloc t ~alloc_id =
  Mutex.lock t.state_mutex;
  let tomb = Hashtbl.find_opt t.tombstones alloc_id in
  Mutex.unlock t.state_mutex;
  match tomb with
  | Some reason -> already_released alloc_id reason
  | None -> unknown_alloc alloc_id

let release_response t ~alloc_id =
  match release_allocation t ~alloc_id with
  | `Released -> Wire.Released { alloc_id }
  | `Already_released reason -> already_released alloc_id reason
  | `Unknown -> unknown_alloc alloc_id

let reconfig_rejected message =
  Wire.Error { code = Wire.Reconfig_rejected; message }

let serve_alloc t ~snapshot (params : Wire.allocate) =
  let outcome =
    try Batcher.serve_one ~base:t.config.broker ~snapshot ~rng:t.rng params
    with exn ->
      Printf.eprintf "brokerd: decision failed: %s\n%!" (Printexc.to_string exn);
      Error Allocation.No_usable_nodes
  in
  match outcome with
  | Ok (Broker.Allocated allocation) ->
    let alloc_id, lease_s = register_allocation t allocation ~params in
    Wire.Allocated { alloc_id; allocation; expires_s = lease_s }
  | Ok (Broker.Wait { mean_load_per_core; threshold }) ->
    Metrics.incr m_retry;
    Wire.Retry
      {
        after_s = t.config.retry_after_s;
        reason = Wire.Overloaded { mean_load_per_core; threshold };
      }
  | Error e -> alloc_error_response e

(* Price a transition with the live world model (per-node NIC rates
   under degradation), charging the daemon's flat per-rank payload —
   the service has no per-job data model. *)
let reconfig_delay_s t ~from_alloc ~to_alloc =
  Executor.redistribution_delay_s ~world:t.world ~from_alloc ~to_alloc
    ~data_mb_per_proc:t.config.reconfig_data_mb_per_proc
    ~overhead_s:t.config.reconfig_overhead_s ()

let finish_reconfig t ~alloc_id ~cur merged =
  let moved_procs = Malleable.moved_procs ~from_:cur ~to_:merged in
  let delay_s = reconfig_delay_s t ~from_alloc:cur ~to_alloc:merged in
  replace_allocation t ~alloc_id merged;
  Metrics.incr m_reconfigs;
  Wire.Reconfigured { alloc_id; allocation = merged; moved_procs; delay_s }

(* Grow [cur] by [delta] ranks: place the extra ranks with the job's
   current nodes hidden (the delta must land elsewhere — growing in
   place is not a redistribution), then merge and price the move. *)
let grow_allocation t ~snapshot ~alloc_id ~cur ~delta ~ppn ~alpha ~policy =
  let request = Request.make ?ppn ~alpha ~procs:delta () in
  let snapshot = Snapshot.restrict snapshot ~exclude:(Allocation.node_ids cur) in
  match
    Policies.allocate ?starts:t.config.broker.Broker.starts ~policy ~snapshot
      ~weights:t.config.broker.Broker.weights ~request ~rng:t.rng ()
  with
  | Error e -> alloc_error_response e
  | Ok extra -> finish_reconfig t ~alloc_id ~cur (Malleable.merge ~base:cur ~extra)

let shrink_allocation t ~alloc_id ~cur ~target =
  match Malleable.shrink_to cur ~target_procs:target with
  | None ->
    reconfig_rejected
      (Printf.sprintf
         "cannot shrink allocation #%d from %d to %d procs (at least one must \
          remain)"
         alloc_id (Allocation.total_procs cur) target)
  | Some small -> finish_reconfig t ~alloc_id ~cur small

let serve_work t ~snapshot = function
  | Alloc_work params -> serve_alloc t ~snapshot params
  | Release_work { alloc_id } -> release_response t ~alloc_id
  | Grow_work (g : Wire.grow) -> (
    match lookup_allocation t ~alloc_id:g.Wire.alloc_id with
    | None -> missing_alloc t ~alloc_id:g.Wire.alloc_id
    | Some st ->
      let cur = st.allocation in
      let policy =
        Option.value g.Wire.grow_policy ~default:t.config.broker.Broker.policy
      in
      grow_allocation t ~snapshot ~alloc_id:g.Wire.alloc_id ~cur
        ~delta:g.Wire.delta_procs ~ppn:g.Wire.grow_ppn ~alpha:g.Wire.grow_alpha
        ~policy)
  | Shrink_work { alloc_id; delta_procs } -> (
    match lookup_allocation t ~alloc_id with
    | None -> missing_alloc t ~alloc_id
    | Some st ->
      let cur = st.allocation in
      shrink_allocation t ~alloc_id ~cur
        ~target:(Allocation.total_procs cur - delta_procs))
  | Renegotiate_work (r : Wire.renegotiate) -> (
    match lookup_allocation t ~alloc_id:r.Wire.ren_alloc_id with
    | None -> missing_alloc t ~alloc_id:r.Wire.ren_alloc_id
    | Some st ->
      let cur = st.allocation in
      (* The decoder guarantees min <= pref <= max; resize to pref. *)
      let total = Allocation.total_procs cur in
      let target = r.Wire.pref_procs in
      if target = total then
        Wire.Reconfigured
          {
            alloc_id = r.Wire.ren_alloc_id;
            allocation = cur;
            moved_procs = 0;
            delay_s = 0.0;
          }
      else if target > total then
        let policy =
          Option.value r.Wire.ren_policy ~default:t.config.broker.Broker.policy
        in
        grow_allocation t ~snapshot ~alloc_id:r.Wire.ren_alloc_id ~cur
          ~delta:(target - total) ~ppn:r.Wire.ren_ppn ~alpha:r.Wire.ren_alpha
          ~policy
      else shrink_allocation t ~alloc_id:r.Wire.ren_alloc_id ~cur ~target)

let work_policy t = function
  | Alloc_work (params : Wire.allocate) ->
    Option.value params.Wire.policy ~default:t.config.broker.Broker.policy
  | Grow_work g ->
    Option.value g.Wire.grow_policy ~default:t.config.broker.Broker.policy
  | Renegotiate_work r ->
    Option.value r.Wire.ren_policy ~default:t.config.broker.Broker.policy
  | Shrink_work _ | Release_work _ -> t.config.broker.Broker.policy

let serve_batch t batch =
  let wall = Unix.gettimeofday () in
  sweep_leases t ~wall;
  Mutex.lock t.state_mutex;
  if wall -. t.snapshot_taken_at >= t.config.tick_s then
    refresh_snapshot_locked t ~wall;
  let snapshot = t.decide in
  Mutex.unlock t.state_mutex;
  let n = List.length batch in
  Metrics.incr m_batches;
  Metrics.observe m_batch_size (float_of_int n);
  Metrics.set m_queue_depth (float_of_int (Batcher.depth t.queue));
  List.iter
    (fun p ->
      (* Control mode: a fresh capture per request — new physical
         snapshot, so the model cache misses and every Eq. 1/2/3 bundle
         is rebuilt, like a one-shot CLI call. *)
      let snapshot =
        if not t.config.batching then begin
          Mutex.lock t.state_mutex;
          let s = System.snapshot t.monitor ~time:t.virtual_time in
          let s =
            if not t.config.overlay then s
            else begin
              (* Control mode composes and restricts the fresh capture
                 too — same semantics, full-rebuild cost by design. *)
              let s = Overlay.apply t.overlays s in
              match held_nodes_locked t with
              | [] -> s
              | held -> Snapshot.restrict s ~exclude:held
            end
          in
          Mutex.unlock t.state_mutex;
          s
        end
        else if t.config.overlay then begin
          (* A grant earlier in this batch re-shaped the world; read
             the recomposed decision snapshot. With no grants in
             between this is the same physical record, so the model
             cache still hits. *)
          Mutex.lock t.state_mutex;
          let s = t.decide in
          Mutex.unlock t.state_mutex;
          s
        end
        else snapshot
      in
      let response =
        try serve_work t ~snapshot p.work
        with exn ->
          Printf.eprintf "brokerd: request failed: %s\n%!"
            (Printexc.to_string exn);
          Wire.Error
            {
              code = Wire.Bad_request;
              message = "internal error: " ^ Printexc.to_string exn;
            }
      in
      Metrics.observe
        (latency_histogram ~policy:(work_policy t p.work))
        (Unix.gettimeofday () -. p.enqueued_at);
      Mutex.lock t.state_mutex;
      t.served <- t.served + 1;
      if not t.config.batching then t.batches <- t.batches + 1;
      Mutex.unlock t.state_mutex;
      Ivar.fill p.reply response)
    batch;
  if t.config.batching then begin
    Mutex.lock t.state_mutex;
    t.batches <- t.batches + 1;
    Mutex.unlock t.state_mutex
  end

let tick_loop t =
  let rec loop () =
    match Batcher.take t.queue ~max:t.config.max_batch with
    | [] -> ()  (* queue closed and drained *)
    | batch ->
      serve_batch t batch;
      loop ()
  in
  loop ()

(* --- request handling (workers) ----------------------------------------- *)

let status_info t =
  Mutex.lock t.state_mutex;
  let info =
    {
      Wire.daemon_version = Wire.version;
      uptime_s = Unix.gettimeofday () -. t.started_at;
      virtual_time = t.virtual_time;
      active_allocations = Hashtbl.length t.allocs;
      queue_depth = Batcher.depth t.queue;
      served = t.served;
      batches = t.batches;
      batching = t.config.batching;
      draining = Atomic.get t.draining;
      cache_hits = Model_cache.hits ();
      cache_misses = Model_cache.misses ();
      overlay = t.config.overlay;
      active_leases = leased_count_locked t;
    }
  in
  Mutex.unlock t.state_mutex;
  info

(* Submit a work item to the admission queue and block on the finished
   response. Used for every op the tick thread must serve. *)
let submit_work t work =
  if Atomic.get t.draining then
    Wire.Error { code = Wire.Shutting_down; message = "daemon is draining" }
  else begin
    let p =
      { work; enqueued_at = Unix.gettimeofday (); reply = Ivar.create () }
    in
    match Batcher.submit t.queue p with
    | `Queue_full ->
      Metrics.incr m_rejected;
      Wire.Retry { after_s = t.config.retry_after_s; reason = Wire.Queue_full }
    | `Closed ->
      Wire.Error { code = Wire.Shutting_down; message = "daemon is draining" }
    | `Queued -> Ivar.read p.reply
  end

let handle_request t = function
  | Wire.Allocate params -> submit_work t (Alloc_work params)
  | Wire.Grow g -> submit_work t (Grow_work g)
  | Wire.Shrink { alloc_id; delta_procs } ->
    submit_work t (Shrink_work { alloc_id; delta_procs })
  | Wire.Renegotiate r -> submit_work t (Renegotiate_work r)
  | Wire.Release { alloc_id } ->
    (* Overlay mode: the release re-shapes the decision snapshot, so it
       rides the admission queue to the tick thread like every other
       world-changing op. Bookkeeping-only mode answers inline. *)
    if t.config.overlay then submit_work t (Release_work { alloc_id })
    else release_response t ~alloc_id
  | Wire.Status -> Wire.Status_info (status_info t)
  | Wire.Metrics -> Wire.Metrics_text (Telemetry.Prometheus.render_registry ())

let handle_line t line =
  Metrics.incr m_requests;
  match Wire.decode_request line with
  | Ok { req_id; request } ->
    Wire.encode_response { resp_id = req_id; response = handle_request t request }
  | Error { err_id; code; message } ->
    Wire.encode_response
      {
        resp_id = Option.value err_id ~default:0;
        response = Wire.Error { code; message };
      }

(* --- HTTP scrape path ---------------------------------------------------- *)

let is_http_line line =
  List.exists
    (fun m -> String.length line > String.length m && String.sub line 0 (String.length m) = m)
    [ "GET "; "HEAD "; "POST "; "PUT " ]

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let serve_http t ic oc first_line =
  (* Drain request headers so the peer's write side is not reset. *)
  (try
     while String.trim (input_line ic) <> "" do
       ()
     done
   with End_of_file -> ());
  let path =
    match String.split_on_char ' ' first_line with
    | _ :: path :: _ -> path
    | _ -> "/"
  in
  let response =
    match path with
    | "/metrics" ->
      http_response ~status:"200 OK"
        ~content_type:Telemetry.Prometheus.content_type
        (Telemetry.Prometheus.render_registry ())
    | "/status" ->
      http_response ~status:"200 OK" ~content_type:"application/json"
        (Rm_telemetry.Json.to_string (Wire.status_to_json (status_info t)) ^ "\n")
    | _ ->
      http_response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n"
  in
  output_string oc response;
  flush oc

(* --- connection workers -------------------------------------------------- *)

let worker t fd =
  Atomic.incr t.workers;
  Metrics.set m_connections (float_of_int (Atomic.get t.workers));
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.workers;
      Metrics.set m_connections (float_of_int (Atomic.get t.workers));
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      try
        match input_line ic with
        | first when is_http_line first -> serve_http t ic oc first
        | first ->
          let rec loop line =
            output_string oc (handle_line t line);
            output_char oc '\n';
            flush oc;
            loop (input_line ic)
          in
          loop first
      with End_of_file | Sys_error _ | Unix.Unix_error _ -> ())

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop_requested then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> ignore (Thread.create (worker t) fd)
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let start t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  t.tick_thread <- Some (Thread.create tick_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t)

let request_stop t = Atomic.set t.stop_requested true

let write_final_exposition t =
  match t.config.metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Telemetry.Prometheus.render_registry ());
    close_out oc

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.draining true;
    Atomic.set t.stop_requested true;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.config.endpoint with
    | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* Closing the queue lets the tick thread drain every admitted
       request (each worker gets its ivar filled) and then exit. *)
    Batcher.close t.queue;
    Option.iter Thread.join t.tick_thread;
    (* Grace period for workers still writing their last response. *)
    let deadline = Unix.gettimeofday () +. 2.0 in
    while Atomic.get t.workers > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    Option.iter
      (fun s ->
        Telemetry.Trace.set_sink None;
        Telemetry.Spill.close s)
      t.spill;
    write_final_exposition t
  end

(* Foreground entry point for `rmctl serve` / `brokerd`: installs signal
   handlers that only flip an atomic (no allocation, no locking in the
   handler), then polls until asked to stop and shuts down cleanly. *)
let run t =
  let on_signal _ = Atomic.set t.stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  start t;
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.1
  done;
  stop t

(* Versioned JSON wire protocol for the resident allocation daemon
   (`brokerd` / `rmctl serve`).

   Transport framing is one JSON object per line in both directions.
   Every request carries the protocol version and a client-chosen
   request id; the matching response echoes that id, so a client may
   pipeline requests on one connection and correlate the replies.

     {"v":1,"id":7,"op":"allocate","procs":32,"ppn":4,"alpha":0.3,
      "policy":"network-load-aware"}
     {"v":1,"id":7,"ok":"allocated","alloc":3,"policy":"network-load-aware",
      "entries":[{"node":12,"procs":4}, ...]}

   Decisions the broker cannot satisfy *right now* but could later come
   back as `retry` responses with an `after_s` hint (broker Wait under a
   load threshold, admission-queue backpressure); hard failures come
   back as `error` responses with a machine-readable code. The codec
   validates on decode — a request that decodes `Ok` is safe to hand to
   `Request.make` / `Broker.decide` without re-checking. Numbers are
   emitted with `Json`'s round-trip-exact float format, so encode/decode
   is the identity on every well-formed message (qcheck-gated in
   `test_service.ml`). *)

module Json = Rm_telemetry.Json
module Policies = Rm_core.Policies
module Allocation = Rm_core.Allocation

(* v1: allocate/release/status/metrics. v2 adds the malleability ops —
   grow/shrink/renegotiate — and the `reconfigured` response. v3 adds
   the overlay/lease hints: optional `lease_s` / `load_per_proc` /
   `traffic_mb_s_per_proc` on allocate, `expires_s` on the allocated
   response, the `already_released` error code, and the overlay/lease
   fields in status. The codec still accepts v1 envelopes (decoding a
   v2-only op under a v1 envelope is an [Unsupported_version] error,
   so an old client can never trip into semantics it does not know),
   and always emits the current version. The v3 allocate hints are
   plain additive fields — older daemons ignored unknown keys, so they
   are accepted under any envelope version rather than gated. *)
let version = 3
let min_version = 1

(* --- requests ---------------------------------------------------------- *)

type allocate = {
  procs : int;
  ppn : int option;
  alpha : float;  (* Eq. 4 compute weight; beta = 1 - alpha *)
  policy : Policies.policy option;
      (** [None] inherits the daemon's default policy. *)
  wait_threshold : float option;
      (** [None] inherits the daemon's default broker threshold. *)
  lease_s : float option;
      (** v3: requested lease duration. [None] inherits the daemon's
          default lease (which may be unlimited). *)
  load_per_proc : float option;
      (** v3: overlay compute load each granted rank contributes.
          [None] inherits the daemon's profile default. *)
  traffic_mb_s_per_proc : float option;
      (** v3: overlay traffic each rank pushes to its ring neighbour.
          [None] inherits the daemon's profile default. *)
}

type grow = {
  alloc_id : int;
  delta_procs : int;  (* >= 1 *)
  grow_ppn : int option;
  grow_alpha : float;
  grow_policy : Policies.policy option;
      (** policy for placing the added procs; [None] inherits *)
}

type renegotiate = {
  ren_alloc_id : int;
  min_procs : int;
  pref_procs : int;  (* decode guarantees min <= pref <= max *)
  max_procs : int;
  ren_ppn : int option;
  ren_alpha : float;
  ren_policy : Policies.policy option;
}

type request =
  | Allocate of allocate
  | Release of { alloc_id : int }
  | Grow of grow  (** v2: add [delta_procs] to a live allocation *)
  | Shrink of { alloc_id : int; delta_procs : int }
      (** v2: retreat [delta_procs] from the allocation's tail entries *)
  | Renegotiate of renegotiate
      (** v2: resize a live allocation to its preferred count *)
  | Status
  | Metrics

type req = { req_id : int; request : request }

(* --- responses --------------------------------------------------------- *)

type retry_reason =
  | Overloaded of { mean_load_per_core : float; threshold : float }
  | Queue_full

type error_code =
  | Bad_request
  | Unsupported_version
  | Shutting_down
  | Insufficient_capacity
  | No_usable_nodes
  | Unknown_alloc
  | Already_released
  | Reconfig_rejected

let error_code_name = function
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Shutting_down -> "shutting_down"
  | Insufficient_capacity -> "insufficient_capacity"
  | No_usable_nodes -> "no_usable_nodes"
  | Unknown_alloc -> "unknown_alloc"
  | Already_released -> "already_released"
  | Reconfig_rejected -> "reconfig_rejected"

let error_code_of_name = function
  | "bad_request" -> Some Bad_request
  | "unsupported_version" -> Some Unsupported_version
  | "shutting_down" -> Some Shutting_down
  | "insufficient_capacity" -> Some Insufficient_capacity
  | "no_usable_nodes" -> Some No_usable_nodes
  | "unknown_alloc" -> Some Unknown_alloc
  | "already_released" -> Some Already_released
  | "reconfig_rejected" -> Some Reconfig_rejected
  | _ -> None

type status_info = {
  daemon_version : int;
  uptime_s : float;
  virtual_time : float;
  active_allocations : int;
  queue_depth : int;
  served : int;
  batches : int;
  batching : bool;
  draining : bool;
  cache_hits : int;
  cache_misses : int;
  overlay : bool;  (** v3: grants overlay load/traffic and hold nodes *)
  active_leases : int;  (** v3: live allocations with an expiry *)
}

type response =
  | Allocated of {
      alloc_id : int;
      allocation : Allocation.t;
      expires_s : float option;
          (** v3: lease duration granted, [None] = no expiry *)
    }
  | Reconfigured of {
      alloc_id : int;
      allocation : Allocation.t;  (** the new shape, post-directive *)
      moved_procs : int;  (** ranks whose home node changed *)
      delay_s : float;  (** modeled data-redistribution delay *)
    }  (** v2: a grow/shrink/renegotiate directive was applied *)
  | Retry of { after_s : float; reason : retry_reason }
  | Released of { alloc_id : int }
  | Status_info of status_info
  | Metrics_text of string
  | Error of { code : error_code; message : string }

type resp = { resp_id : int; response : response }

(* --- encoding ---------------------------------------------------------- *)

let envelope id fields =
  Json.Obj
    (("v", Json.Num (float_of_int version))
    :: ("id", Json.Num (float_of_int id))
    :: fields)

let encode_request { req_id; request } =
  let fields =
    match request with
    | Allocate a ->
      [ ("op", Json.Str "allocate");
        ("procs", Json.Num (float_of_int a.procs)) ]
      @ (match a.ppn with
        | Some p -> [ ("ppn", Json.Num (float_of_int p)) ]
        | None -> [])
      @ [ ("alpha", Json.Num a.alpha) ]
      @ (match a.policy with
        | Some p -> [ ("policy", Json.Str (Policies.name p)) ]
        | None -> [])
      @ (match a.wait_threshold with
        | Some w -> [ ("wait_threshold", Json.Num w) ]
        | None -> [])
      @ (match a.lease_s with
        | Some l -> [ ("lease_s", Json.Num l) ]
        | None -> [])
      @ (match a.load_per_proc with
        | Some l -> [ ("load_per_proc", Json.Num l) ]
        | None -> [])
      @
      (match a.traffic_mb_s_per_proc with
      | Some tr -> [ ("traffic_mb_s_per_proc", Json.Num tr) ]
      | None -> [])
    | Release { alloc_id } ->
      [ ("op", Json.Str "release"); ("alloc", Json.Num (float_of_int alloc_id)) ]
    | Grow g ->
      [ ("op", Json.Str "grow");
        ("alloc", Json.Num (float_of_int g.alloc_id));
        ("delta", Json.Num (float_of_int g.delta_procs)) ]
      @ (match g.grow_ppn with
        | Some p -> [ ("ppn", Json.Num (float_of_int p)) ]
        | None -> [])
      @ [ ("alpha", Json.Num g.grow_alpha) ]
      @
      (match g.grow_policy with
      | Some p -> [ ("policy", Json.Str (Policies.name p)) ]
      | None -> [])
    | Shrink { alloc_id; delta_procs } ->
      [
        ("op", Json.Str "shrink");
        ("alloc", Json.Num (float_of_int alloc_id));
        ("delta", Json.Num (float_of_int delta_procs));
      ]
    | Renegotiate r ->
      [ ("op", Json.Str "renegotiate");
        ("alloc", Json.Num (float_of_int r.ren_alloc_id));
        ("min", Json.Num (float_of_int r.min_procs));
        ("pref", Json.Num (float_of_int r.pref_procs));
        ("max", Json.Num (float_of_int r.max_procs)) ]
      @ (match r.ren_ppn with
        | Some p -> [ ("ppn", Json.Num (float_of_int p)) ]
        | None -> [])
      @ [ ("alpha", Json.Num r.ren_alpha) ]
      @
      (match r.ren_policy with
      | Some p -> [ ("policy", Json.Str (Policies.name p)) ]
      | None -> [])
    | Status -> [ ("op", Json.Str "status") ]
    | Metrics -> [ ("op", Json.Str "metrics") ]
  in
  Json.to_string (envelope req_id fields)

let entries_to_json entries =
  Json.Arr
    (List.map
       (fun (e : Allocation.entry) ->
         Json.Obj
           [
             ("node", Json.Num (float_of_int e.Allocation.node));
             ("procs", Json.Num (float_of_int e.Allocation.procs));
           ])
       entries)

let status_to_json (s : status_info) =
  Json.Obj
    [
      ("daemon_version", Json.Num (float_of_int s.daemon_version));
      ("uptime_s", Json.Num s.uptime_s);
      ("virtual_time", Json.Num s.virtual_time);
      ("active_allocations", Json.Num (float_of_int s.active_allocations));
      ("queue_depth", Json.Num (float_of_int s.queue_depth));
      ("served", Json.Num (float_of_int s.served));
      ("batches", Json.Num (float_of_int s.batches));
      ("batching", Json.Bool s.batching);
      ("draining", Json.Bool s.draining);
      ("cache_hits", Json.Num (float_of_int s.cache_hits));
      ("cache_misses", Json.Num (float_of_int s.cache_misses));
      ("overlay", Json.Bool s.overlay);
      ("active_leases", Json.Num (float_of_int s.active_leases));
    ]

let encode_response { resp_id; response } =
  let fields =
    match response with
    | Allocated { alloc_id; allocation; expires_s } ->
      [
        ("ok", Json.Str "allocated");
        ("alloc", Json.Num (float_of_int alloc_id));
        ("policy", Json.Str allocation.Allocation.policy);
        ("entries", entries_to_json allocation.Allocation.entries);
      ]
      @
      (match expires_s with
      | Some e -> [ ("expires_s", Json.Num e) ]
      | None -> [])
    | Reconfigured { alloc_id; allocation; moved_procs; delay_s } ->
      [
        ("ok", Json.Str "reconfigured");
        ("alloc", Json.Num (float_of_int alloc_id));
        ("policy", Json.Str allocation.Allocation.policy);
        ("entries", entries_to_json allocation.Allocation.entries);
        ("moved", Json.Num (float_of_int moved_procs));
        ("delay_s", Json.Num delay_s);
      ]
    | Retry { after_s; reason } ->
      [ ("ok", Json.Str "retry"); ("after_s", Json.Num after_s) ]
      @ (match reason with
        | Queue_full -> [ ("reason", Json.Str "queue_full") ]
        | Overloaded { mean_load_per_core; threshold } ->
          [
            ("reason", Json.Str "overloaded");
            ("mean_load_per_core", Json.Num mean_load_per_core);
            ("threshold", Json.Num threshold);
          ])
    | Released { alloc_id } ->
      [ ("ok", Json.Str "released"); ("alloc", Json.Num (float_of_int alloc_id)) ]
    | Status_info s -> [ ("ok", Json.Str "status"); ("status", status_to_json s) ]
    | Metrics_text text ->
      [ ("ok", Json.Str "metrics"); ("exposition", Json.Str text) ]
    | Error { code; message } ->
      [
        ("error", Json.Str (error_code_name code));
        ("message", Json.Str message);
      ]
  in
  Json.to_string (envelope resp_id fields)

(* --- decoding ---------------------------------------------------------- *)

type decode_error = { err_id : int option; code : error_code; message : string }

exception Reject of error_code * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let as_int ~what = function
  | Json.Num n when Float.is_integer n && Float.abs n < 1e9 -> int_of_float n
  | Json.Null -> reject Bad_request "missing %s" what
  | _ -> reject Bad_request "%s must be an integer" what

let as_finite ~what = function
  | Json.Num n when Float.is_finite n -> n
  | Json.Null -> reject Bad_request "missing %s" what
  | _ -> reject Bad_request "%s must be a finite number" what

let as_string ~what = function
  | Json.Str s -> s
  | Json.Null -> reject Bad_request "missing %s" what
  | _ -> reject Bad_request "%s must be a string" what

let as_bool ~what = function
  | Json.Bool b -> b
  | _ -> reject Bad_request "%s must be a boolean" what

let decode_allocate j =
  let procs = as_int ~what:"procs" (Json.member "procs" j) in
  if procs <= 0 then reject Bad_request "procs must be positive";
  let ppn =
    match Json.member "ppn" j with
    | Json.Null -> None
    | v ->
      let p = as_int ~what:"ppn" v in
      if p <= 0 then reject Bad_request "ppn must be positive";
      Some p
  in
  let alpha =
    match Json.member "alpha" j with
    | Json.Null -> 0.5
    | v -> as_finite ~what:"alpha" v
  in
  if alpha < 0.0 || alpha > 1.0 then
    reject Bad_request "alpha must be in [0, 1]";
  let policy =
    match Json.member "policy" j with
    | Json.Null -> None
    | v -> (
      let name = as_string ~what:"policy" v in
      match Policies.of_name name with
      | Some p -> Some p
      | None -> reject Bad_request "unknown policy %S" name)
  in
  let wait_threshold =
    match Json.member "wait_threshold" j with
    | Json.Null -> None
    | v -> Some (as_finite ~what:"wait_threshold" v)
  in
  let lease_s =
    match Json.member "lease_s" j with
    | Json.Null -> None
    | v ->
      let l = as_finite ~what:"lease_s" v in
      if l <= 0.0 then reject Bad_request "lease_s must be positive";
      Some l
  in
  let nonneg what =
    match Json.member what j with
    | Json.Null -> None
    | v ->
      let x = as_finite ~what v in
      if x < 0.0 then reject Bad_request "%s must be >= 0" what;
      Some x
  in
  let load_per_proc = nonneg "load_per_proc" in
  let traffic_mb_s_per_proc = nonneg "traffic_mb_s_per_proc" in
  Allocate
    {
      procs;
      ppn;
      alpha;
      policy;
      wait_threshold;
      lease_s;
      load_per_proc;
      traffic_mb_s_per_proc;
    }

let decode_ppn_alpha_policy j =
  let ppn =
    match Json.member "ppn" j with
    | Json.Null -> None
    | v ->
      let p = as_int ~what:"ppn" v in
      if p <= 0 then reject Bad_request "ppn must be positive";
      Some p
  in
  let alpha =
    match Json.member "alpha" j with
    | Json.Null -> 0.5
    | v -> as_finite ~what:"alpha" v
  in
  if alpha < 0.0 || alpha > 1.0 then
    reject Bad_request "alpha must be in [0, 1]";
  let policy =
    match Json.member "policy" j with
    | Json.Null -> None
    | v -> (
      let name = as_string ~what:"policy" v in
      match Policies.of_name name with
      | Some p -> Some p
      | None -> reject Bad_request "unknown policy %S" name)
  in
  (ppn, alpha, policy)

let decode_delta j =
  let delta = as_int ~what:"delta" (Json.member "delta" j) in
  if delta <= 0 then reject Bad_request "delta must be positive";
  delta

let decode_grow j =
  let alloc_id = as_int ~what:"alloc" (Json.member "alloc" j) in
  let delta_procs = decode_delta j in
  let grow_ppn, grow_alpha, grow_policy = decode_ppn_alpha_policy j in
  Grow { alloc_id; delta_procs; grow_ppn; grow_alpha; grow_policy }

let decode_renegotiate j =
  let ren_alloc_id = as_int ~what:"alloc" (Json.member "alloc" j) in
  let min_procs = as_int ~what:"min" (Json.member "min" j) in
  let pref_procs = as_int ~what:"pref" (Json.member "pref" j) in
  let max_procs = as_int ~what:"max" (Json.member "max" j) in
  if min_procs < 1 || pref_procs < min_procs || max_procs < pref_procs then
    reject Bad_request "renegotiate requires 1 <= min <= pref <= max";
  let ren_ppn, ren_alpha, ren_policy = decode_ppn_alpha_policy j in
  Renegotiate
    { ren_alloc_id; min_procs; pref_procs; max_procs; ren_ppn; ren_alpha;
      ren_policy }

(* Shared by request and response decoding: parse the line, check the
   version, pull the id.  The id is extracted before the version check
   so even an unsupported-version error can be correlated. Returns the
   envelope's version so v2-only ops can be gated. *)
let decode_envelope ?(seen_id = ref None) line =
  match Json.of_string line with
  | exception Failure m -> raise (Reject (Bad_request, m))
  | Json.Obj _ as j ->
    let id =
      match Json.member "id" j with
      | Json.Num n when Float.is_integer n && Float.abs n < 1e9 ->
        Some (int_of_float n)
      | _ -> None
    in
    seen_id := id;
    let v =
      match Json.member "v" j with
      | Json.Num n
        when Float.is_integer n
             && int_of_float n >= min_version
             && int_of_float n <= version ->
        int_of_float n
      | Json.Null -> reject Bad_request "missing protocol version"
      | Json.Num n -> reject Unsupported_version "unsupported version %.0f" n
      | _ -> reject Bad_request "version must be a number"
    in
    (match id with
    | Some id -> (id, v, j)
    | None -> reject Bad_request "missing request id")
  | _ -> raise (Reject (Bad_request, "top level is not a JSON object"))

let decode_request line : (req, decode_error) result =
  let id = ref None in
  try
    let req_id, v, j = decode_envelope ~seen_id:id line in
    let v2_only op =
      if v < 2 then
        reject Unsupported_version "op %S requires protocol v2 (got v%d)" op v
    in
    let request =
      match as_string ~what:"op" (Json.member "op" j) with
      | "allocate" -> decode_allocate j
      | "release" ->
        Release { alloc_id = as_int ~what:"alloc" (Json.member "alloc" j) }
      | "grow" ->
        v2_only "grow";
        decode_grow j
      | "shrink" ->
        v2_only "shrink";
        Shrink
          {
            alloc_id = as_int ~what:"alloc" (Json.member "alloc" j);
            delta_procs = decode_delta j;
          }
      | "renegotiate" ->
        v2_only "renegotiate";
        decode_renegotiate j
      | "status" -> Status
      | "metrics" -> Metrics
      | op -> reject Bad_request "unknown op %S" op
    in
    Ok { req_id; request }
  with Reject (code, message) -> Error { err_id = !id; code; message }

let decode_entries j =
  match j with
  | Json.Arr items ->
    List.map
      (fun e ->
        {
          Allocation.node = as_int ~what:"entry node" (Json.member "node" e);
          procs = as_int ~what:"entry procs" (Json.member "procs" e);
        })
      items
  | _ -> reject Bad_request "entries must be an array"

let decode_status j =
  {
    daemon_version = as_int ~what:"daemon_version" (Json.member "daemon_version" j);
    uptime_s = as_finite ~what:"uptime_s" (Json.member "uptime_s" j);
    virtual_time = as_finite ~what:"virtual_time" (Json.member "virtual_time" j);
    active_allocations =
      as_int ~what:"active_allocations" (Json.member "active_allocations" j);
    queue_depth = as_int ~what:"queue_depth" (Json.member "queue_depth" j);
    served = as_int ~what:"served" (Json.member "served" j);
    batches = as_int ~what:"batches" (Json.member "batches" j);
    batching = as_bool ~what:"batching" (Json.member "batching" j);
    draining = as_bool ~what:"draining" (Json.member "draining" j);
    cache_hits = as_int ~what:"cache_hits" (Json.member "cache_hits" j);
    cache_misses = as_int ~what:"cache_misses" (Json.member "cache_misses" j);
    overlay = as_bool ~what:"overlay" (Json.member "overlay" j);
    active_leases = as_int ~what:"active_leases" (Json.member "active_leases" j);
  }

let decode_response line : (resp, string) result =
  try
    let resp_id, _v, j = decode_envelope line in
    let response =
      match Json.member "error" j with
      | Json.Str name ->
        let code =
          match error_code_of_name name with
          | Some c -> c
          | None -> reject Bad_request "unknown error code %S" name
        in
        Error
          { code; message = as_string ~what:"message" (Json.member "message" j) }
      | Json.Null -> (
        match as_string ~what:"ok" (Json.member "ok" j) with
        | "allocated" ->
          let policy = as_string ~what:"policy" (Json.member "policy" j) in
          let entries = decode_entries (Json.member "entries" j) in
          let allocation =
            try Allocation.make ~policy ~entries
            with Invalid_argument m -> reject Bad_request "%s" m
          in
          let expires_s =
            match Json.member "expires_s" j with
            | Json.Null -> None
            | v ->
              let e = as_finite ~what:"expires_s" v in
              if e <= 0.0 then reject Bad_request "expires_s must be positive";
              Some e
          in
          Allocated
            {
              alloc_id = as_int ~what:"alloc" (Json.member "alloc" j);
              allocation;
              expires_s;
            }
        | "reconfigured" ->
          let policy = as_string ~what:"policy" (Json.member "policy" j) in
          let entries = decode_entries (Json.member "entries" j) in
          let allocation =
            try Allocation.make ~policy ~entries
            with Invalid_argument m -> reject Bad_request "%s" m
          in
          let moved_procs = as_int ~what:"moved" (Json.member "moved" j) in
          if moved_procs < 0 then reject Bad_request "moved must be >= 0";
          let delay_s = as_finite ~what:"delay_s" (Json.member "delay_s" j) in
          Reconfigured
            {
              alloc_id = as_int ~what:"alloc" (Json.member "alloc" j);
              allocation;
              moved_procs;
              delay_s;
            }
        | "retry" ->
          let after_s = as_finite ~what:"after_s" (Json.member "after_s" j) in
          let reason =
            match as_string ~what:"reason" (Json.member "reason" j) with
            | "queue_full" -> Queue_full
            | "overloaded" ->
              Overloaded
                {
                  mean_load_per_core =
                    as_finite ~what:"mean_load_per_core"
                      (Json.member "mean_load_per_core" j);
                  threshold =
                    as_finite ~what:"threshold" (Json.member "threshold" j);
                }
            | r -> reject Bad_request "unknown retry reason %S" r
          in
          Retry { after_s; reason }
        | "released" ->
          Released { alloc_id = as_int ~what:"alloc" (Json.member "alloc" j) }
        | "status" -> Status_info (decode_status (Json.member "status" j))
        | "metrics" ->
          Metrics_text (as_string ~what:"exposition" (Json.member "exposition" j))
        | ok -> reject Bad_request "unknown response kind %S" ok)
      | _ -> reject Bad_request "error must be a string code"
    in
    Ok { resp_id; response }
  with Reject (_, message) -> Result.Error message

(* --- pretty-printing ---------------------------------------------------- *)

let pp_response ppf = function
  | Allocated { alloc_id; allocation; expires_s } ->
    Format.fprintf ppf "allocated #%d %a%t" alloc_id Allocation.pp allocation
      (fun ppf ->
        match expires_s with
        | Some e -> Format.fprintf ppf " (lease %.0fs)" e
        | None -> ())
  | Reconfigured { alloc_id; allocation; moved_procs; delay_s } ->
    Format.fprintf ppf "reconfigured #%d %a (%d procs moved, %.1fs delay)"
      alloc_id Allocation.pp allocation moved_procs delay_s
  | Retry { after_s; reason } ->
    Format.fprintf ppf "retry in %.3fs (%s)" after_s
      (match reason with
      | Queue_full -> "queue full"
      | Overloaded { mean_load_per_core; threshold } ->
        Printf.sprintf "overloaded: mean load/core %.2f > %.2f"
          mean_load_per_core threshold)
  | Released { alloc_id } -> Format.fprintf ppf "released #%d" alloc_id
  | Status_info s ->
    Format.fprintf ppf
      "status: up %.1fs vt=%.0fs active=%d leased=%d depth=%d served=%d \
       batches=%d%s%s%s"
      s.uptime_s s.virtual_time s.active_allocations s.active_leases
      s.queue_depth s.served s.batches
      (if s.overlay then "" else " (bookkeeping only)")
      (if s.batching then "" else " (per-request snapshots)")
      (if s.draining then " draining" else "")
  | Metrics_text text ->
    Format.fprintf ppf "metrics exposition (%d bytes)" (String.length text)
  | Error { code; message } ->
    Format.fprintf ppf "error %s: %s" (error_code_name code) message

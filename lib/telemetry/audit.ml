type node_stat = { node : int; cl : float; pc : int; load_1m : float }

type step = { node : int; cost : float; procs : int }

type candidate = {
  start : int;
  steps : step list;
  compute_cost : float;
  network_cost : float;
  total : float;
}

type decision =
  | Allocated of (int * int) list
  | Wait of { mean_load_per_core : float; threshold : float }
  | Rejected of string

type t = {
  time : float;
  policy : string;
  procs : int;
  ppn : int option;
  alpha : float;
  beta : float;
  staleness_s : float;
  usable : int;
  stale_excluded : int list;
  nodes : node_stat list;
  candidates : candidate list;
  chosen : int option;
  decision : decision;
}

(* --- sink ------------------------------------------------------------ *)

let capacity = ref 256
let buffer : t list ref = ref []  (* newest first, length ≤ capacity *)
let buffered = ref 0

let rec truncate n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: truncate (n - 1) rest

let record r =
  if Runtime.is_enabled () then begin
    buffer := r :: truncate (!capacity - 1) !buffer;
    buffered := min !capacity (!buffered + 1)
  end

let last () = match !buffer with [] -> None | r :: _ -> Some r

let recent ?n () =
  let all = List.rev !buffer in
  match n with
  | None -> all
  | Some n ->
    let len = List.length all in
    List.filteri (fun i _ -> i >= len - n) all

let clear () =
  buffer := [];
  buffered := 0

let set_capacity n =
  if n <= 0 then invalid_arg "Audit.set_capacity: capacity must be positive";
  capacity := n;
  clear ()

(* --- JSON ------------------------------------------------------------ *)

let json_of_node (s : node_stat) =
  Json.Obj
    [
      ("node", Json.Num (float_of_int s.node));
      ("cl", Json.Num s.cl);
      ("pc", Json.Num (float_of_int s.pc));
      ("load_1m", Json.Num s.load_1m);
    ]

let json_of_step (s : step) =
  Json.Obj
    [
      ("node", Json.Num (float_of_int s.node));
      ("cost", Json.Num s.cost);
      ("procs", Json.Num (float_of_int s.procs));
    ]

let json_of_candidate (c : candidate) =
  Json.Obj
    [
      ("start", Json.Num (float_of_int c.start));
      ("steps", Json.Arr (List.map json_of_step c.steps));
      ("compute_cost", Json.Num c.compute_cost);
      ("network_cost", Json.Num c.network_cost);
      ("total", Json.Num c.total);
    ]

let json_of_decision = function
  | Allocated entries ->
    Json.Obj
      [
        ("kind", Json.Str "allocated");
        ( "entries",
          Json.Arr
            (List.map
               (fun (node, procs) ->
                 Json.Arr
                   [ Json.Num (float_of_int node); Json.Num (float_of_int procs) ])
               entries) );
      ]
  | Wait { mean_load_per_core; threshold } ->
    Json.Obj
      [
        ("kind", Json.Str "wait");
        ("mean_load_per_core", Json.Num mean_load_per_core);
        ("threshold", Json.Num threshold);
      ]
  | Rejected reason ->
    Json.Obj [ ("kind", Json.Str "rejected"); ("reason", Json.Str reason) ]

let to_json r =
  Json.to_string
    (Json.Obj
       [
         ("time", Json.Num r.time);
         ("policy", Json.Str r.policy);
         ("procs", Json.Num (float_of_int r.procs));
         ( "ppn",
           match r.ppn with
           | Some p -> Json.Num (float_of_int p)
           | None -> Json.Null );
         ("alpha", Json.Num r.alpha);
         ("beta", Json.Num r.beta);
         ("staleness_s", Json.Num r.staleness_s);
         ("usable", Json.Num (float_of_int r.usable));
         ( "stale_excluded",
           Json.Arr
             (List.map (fun n -> Json.Num (float_of_int n)) r.stale_excluded) );
         ("nodes", Json.Arr (List.map json_of_node r.nodes));
         ("candidates", Json.Arr (List.map json_of_candidate r.candidates));
         ( "chosen",
           match r.chosen with
           | Some s -> Json.Num (float_of_int s)
           | None -> Json.Null );
         ("decision", json_of_decision r.decision);
       ])

let node_of_json j =
  {
    node = Json.to_int (Json.member "node" j);
    cl = Json.to_float (Json.member "cl" j);
    pc = Json.to_int (Json.member "pc" j);
    load_1m = Json.to_float (Json.member "load_1m" j);
  }

let step_of_json j =
  {
    node = Json.to_int (Json.member "node" j);
    cost = Json.to_float (Json.member "cost" j);
    procs = Json.to_int (Json.member "procs" j);
  }

let candidate_of_json j =
  {
    start = Json.to_int (Json.member "start" j);
    steps = List.map step_of_json (Json.to_list (Json.member "steps" j));
    compute_cost = Json.to_float (Json.member "compute_cost" j);
    network_cost = Json.to_float (Json.member "network_cost" j);
    total = Json.to_float (Json.member "total" j);
  }

let decision_of_json j =
  match Json.to_str (Json.member "kind" j) with
  | "allocated" ->
    Allocated
      (List.map
         (fun pair ->
           match Json.to_list pair with
           | [ n; p ] -> (Json.to_int n, Json.to_int p)
           | _ -> failwith "Audit.of_json: bad entry")
         (Json.to_list (Json.member "entries" j)))
  | "wait" ->
    Wait
      {
        mean_load_per_core = Json.to_float (Json.member "mean_load_per_core" j);
        threshold = Json.to_float (Json.member "threshold" j);
      }
  | "rejected" -> Rejected (Json.to_str (Json.member "reason" j))
  | other -> failwith ("Audit.of_json: unknown decision kind " ^ other)

let of_json line =
  let j = Json.of_string line in
  {
    time = Json.to_float (Json.member "time" j);
    policy = Json.to_str (Json.member "policy" j);
    procs = Json.to_int (Json.member "procs" j);
    ppn =
      (match Json.member "ppn" j with
      | Json.Null -> None
      | v -> Some (Json.to_int v));
    alpha = Json.to_float (Json.member "alpha" j);
    beta = Json.to_float (Json.member "beta" j);
    staleness_s = Json.to_float (Json.member "staleness_s" j);
    usable = Json.to_int (Json.member "usable" j);
    stale_excluded =
      (* Absent in records written before the staleness gate existed. *)
      (match Json.member "stale_excluded" j with
      | Json.Null -> []
      | v -> List.map Json.to_int (Json.to_list v));
    nodes = List.map node_of_json (Json.to_list (Json.member "nodes" j));
    candidates =
      List.map candidate_of_json (Json.to_list (Json.member "candidates" j));
    chosen =
      (match Json.member "chosen" j with
      | Json.Null -> None
      | v -> Some (Json.to_int v));
    decision = decision_of_json (Json.member "decision" j);
  }

let to_jsonl records =
  String.concat "" (List.map (fun r -> to_json r ^ "\n") records)

let of_jsonl text =
  (* `rmctl explain --json` prints a one-line human summary before the
     record, so a redirected capture is not pure JSONL; keep only the
     object lines. *)
  String.split_on_char '\n' text
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if String.length l > 0 && l.[0] = '{' then Some (of_json l) else None)

(* --- what-if replay --------------------------------------------------- *)

type rescored_candidate = {
  cand : candidate;
  old_total : float;
  new_total : float;
}

type rescored = {
  original : t;
  new_alpha : float;
  new_beta : float;
  rescored : rescored_candidate list;
  new_chosen : int option;
}

(* Eq. 4 over the saved un-normalized costs: the record carries each
   candidate's C_{G_v} and N_{G_v}, and normalization is by the sums
   across candidates (mirroring Select.score), so new weights re-rank
   the same decision without re-running the monitor or Algorithm 1. *)
let rescore r ~alpha ~beta =
  let c_sum = List.fold_left (fun acc c -> acc +. c.compute_cost) 0.0 r.candidates in
  let n_sum = List.fold_left (fun acc c -> acc +. c.network_cost) 0.0 r.candidates in
  let norm sum v = if sum > 0.0 then v /. sum else 0.0 in
  let rescored =
    List.map
      (fun c ->
        {
          cand = c;
          old_total = c.total;
          new_total =
            (alpha *. norm c_sum c.compute_cost)
            +. (beta *. norm n_sum c.network_cost);
        })
      r.candidates
  in
  let new_chosen =
    match rescored with
    | [] -> None
    | first :: rest ->
      (* Same tie-break as Select.best_scored: lower start wins. *)
      let best =
        List.fold_left
          (fun acc s ->
            if
              s.new_total < acc.new_total
              || (s.new_total = acc.new_total && s.cand.start < acc.cand.start)
            then s
            else acc)
          first rest
      in
      Some best.cand.start
  in
  { original = r; new_alpha = alpha; new_beta = beta; rescored; new_chosen }

let pp_rescore ppf r =
  let o = r.original in
  Format.fprintf ppf
    "what-if replay of allocation at t=%.0fs policy=%s procs=%d@." o.time
    o.policy o.procs;
  Format.fprintf ppf "weights: α=%.2f β=%.2f  ->  α=%.2f β=%.2f@." o.alpha
    o.beta r.new_alpha r.new_beta;
  if r.rescored = [] then
    Format.fprintf ppf
      "no candidates in the record (non-Algorithm-2 policy); nothing to \
       re-score@."
  else begin
    Format.fprintf ppf "@.candidates (Eq. 4, lower total wins):@.";
    Format.fprintf ppf "  %6s %12s %12s %12s %12s  %s@." "start" "C_G" "N_G"
      "old T" "new T" "";
    List.iter
      (fun s ->
        let marks =
          (if o.chosen = Some s.cand.start then [ "old choice" ] else [])
          @ if r.new_chosen = Some s.cand.start then [ "<- new choice" ] else []
        in
        Format.fprintf ppf "  %6d %12.5f %12.5f %12.5f %12.5f  %s@."
          s.cand.start s.cand.compute_cost s.cand.network_cost s.old_total
          s.new_total
          (String.concat ", " marks))
      (List.sort (fun a b -> Float.compare a.new_total b.new_total) r.rescored);
    match (o.chosen, r.new_chosen) with
    | Some old_start, Some new_start when old_start <> new_start ->
      Format.fprintf ppf
        "@.the new weights flip the decision: node %d -> node %d@." old_start
        new_start
    | Some _, Some _ ->
      Format.fprintf ppf "@.the decision is unchanged under the new weights@."
    | _ -> ()
  end

(* --- explain rendering ------------------------------------------------ *)

let pp_explain ppf r =
  Format.fprintf ppf
    "allocation at t=%.0fs policy=%s procs=%d%s α=%.2f β=%.2f@." r.time
    r.policy r.procs
    (match r.ppn with Some p -> Printf.sprintf " ppn=%d" p | None -> "")
    r.alpha r.beta;
  Format.fprintf ppf "snapshot: %d usable nodes, staleness %.1fs@."
    r.usable r.staleness_s;
  if r.stale_excluded <> [] then
    Format.fprintf ppf "excluded as stale: [%s]@."
      (String.concat "; " (List.map string_of_int r.stale_excluded));
  (match r.decision with
  | Wait { mean_load_per_core; threshold } ->
    Format.fprintf ppf
      "decision: WAIT (mean load/core %.2f exceeds threshold %.2f)@."
      mean_load_per_core threshold
  | Rejected reason -> Format.fprintf ppf "decision: REJECTED (%s)@." reason
  | Allocated entries ->
    Format.fprintf ppf "decision: allocated [%s]@."
      (String.concat "; "
         (List.map (fun (n, p) -> Printf.sprintf "n%d×%d" n p) entries)));
  if r.nodes <> [] then begin
    Format.fprintf ppf "@.per-node state (Eq. 1 / Eq. 3):@.";
    Format.fprintf ppf "  %6s %10s %6s %9s@." "node" "CL_v" "pc_v" "load1m";
    List.iter
      (fun (s : node_stat) ->
        Format.fprintf ppf "  %6d %10.5f %6d %9.2f@." s.node s.cl s.pc
          s.load_1m)
      r.nodes
  end;
  if r.candidates <> [] then begin
    Format.fprintf ppf "@.candidates (Eq. 4, lower total wins):@.";
    Format.fprintf ppf "  %6s %12s %12s %12s  %s@." "start" "C_G" "N_G"
      "T" "";
    List.iter
      (fun (c : candidate) ->
        Format.fprintf ppf "  %6d %12.5f %12.5f %12.5f  %s@." c.start
          c.compute_cost c.network_cost c.total
          (if r.chosen = Some c.start then "<- chosen" else ""))
      (List.sort (fun a b -> Float.compare a.total b.total) r.candidates);
    match
      List.find_opt (fun c -> r.chosen = Some c.start) r.candidates
    with
    | None -> ()
    | Some c ->
      Format.fprintf ppf
        "@.chosen sub-graph growth order (Algorithm 1, A_v(u)):@.";
      List.iteri
        (fun i (s : step) ->
          Format.fprintf ppf "  %2d. node %-4d cost %.6f  +%d procs%s@."
            (i + 1) s.node s.cost s.procs
            (if i = 0 then "  (start)" else ""))
        c.steps
  end

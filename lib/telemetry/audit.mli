(** The allocation decision audit log.

    For every broker decision the instrumented allocator records what
    Algorithm 2 actually saw and did: the snapshot's staleness, every
    usable node's compute load CL_v and effective processor count pc_v,
    each candidate sub-graph's Algorithm 1 growth order with addition
    costs A_v(u), the final Eq. 4 scores, and the outcome — enough to
    replay and explain a placement node by node ([rmctl explain]).

    Records are plain data (ints, floats, strings) so this library
    stays below [rm_core] in the layering; the allocator fills them in.
    Recording is a no-op while {!Runtime.is_enabled} is false. Records
    live in a bounded ring (newest kept) and round-trip through JSONL. *)

type node_stat = {
  node : int;
  cl : float;  (** compute load CL_v, Eq. 1 *)
  pc : int;  (** effective processor count pc_v, Eq. 3 *)
  load_1m : float;  (** raw 1-minute load mean behind pc_v *)
}

type step = {
  node : int;
  cost : float;  (** addition cost A_v(u); 0 for the start node *)
  procs : int;  (** processes Algorithm 1 placed there *)
}

type candidate = {
  start : int;
  steps : step list;  (** Algorithm 1 growth order, start first *)
  compute_cost : float;  (** C_{G_v}, un-normalized *)
  network_cost : float;  (** N_{G_v}, un-normalized *)
  total : float;  (** T_{G_v}, Eq. 4 *)
}

type decision =
  | Allocated of (int * int) list  (** (node, procs) *)
  | Wait of { mean_load_per_core : float; threshold : float }
  | Rejected of string

type t = {
  time : float;  (** snapshot capture time (virtual seconds) *)
  policy : string;
  procs : int;
  ppn : int option;
  alpha : float;
  beta : float;
  staleness_s : float;  (** oldest usable node record's age *)
  usable : int;
  stale_excluded : int list;
      (** nodes the broker dropped because their records were older than
          its [max_staleness_s] gate (empty when the gate is off) *)
  nodes : node_stat list;
  candidates : candidate list;  (** empty for non-Algorithm-2 policies *)
  chosen : int option;  (** winning candidate's start node *)
  decision : decision;
}

val record : t -> unit
val last : unit -> t option

val recent : ?n:int -> unit -> t list
(** Up to [n] (default all buffered) most recent records, oldest
    first. *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Bound on buffered records (default 256); resizing clears. *)

(** {2 JSONL round-trip} *)

val to_json : t -> string
(** One line, no trailing newline. *)

val of_json : string -> t
(** Raises [Failure] on malformed input. *)

val to_jsonl : t list -> string

val of_jsonl : string -> t list
(** Non-object lines (e.g. the summary line [rmctl explain --json]
    prints before the record) are skipped. *)

(** {2 What-if replay}

    A saved record carries every candidate's un-normalized C_{G_v} and
    N_{G_v}, so Eq. 4 can be re-evaluated under different weights
    without re-running the monitor or Algorithm 1 — the
    [rmctl explain --replay] what-if analysis. *)

type rescored_candidate = {
  cand : candidate;
  old_total : float;  (** T_{G_v} as recorded *)
  new_total : float;  (** T_{G_v} under the new weights *)
}

type rescored = {
  original : t;
  new_alpha : float;
  new_beta : float;
  rescored : rescored_candidate list;
  new_chosen : int option;
      (** winner under the new weights (Select's tie-break: lower
          start); [None] when the record has no candidates *)
}

val rescore : t -> alpha:float -> beta:float -> rescored

val pp_rescore : Format.formatter -> rescored -> unit
(** Old-vs-new Eq. 4 table, sorted by new total, with both winners
    marked and a closing line saying whether the decision flips. *)

val pp_explain : Format.formatter -> t -> unit
(** The [rmctl explain] rendering: request and snapshot header, the
    per-node CL_v/pc_v table, every candidate's Eq. 4 scores, and the
    chosen sub-graph's growth order with addition costs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- emitter --------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s -> add_escaped buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parser ---------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let fail c msg = failwith (Printf.sprintf "Json.of_string: at %d: %s" c.pos msg)

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
        let hex = String.sub c.text c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> fail c "bad \\u escape"
        in
        (* Only the BMP subset our emitter writes (control chars). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else fail c "unsupported \\u escape";
        c.pos <- c.pos + 4
      | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when numeric ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some x -> x
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ]"
      in
      Arr (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> fail c "expected , or }"
      in
      Obj (fields [])
    end
  | Some _ -> Num (parse_number c)

let of_string text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail c "trailing input";
  v

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> failwith "Json.member: not an object"

let to_float = function Num x -> x | _ -> failwith "Json.to_float"
let to_int = function Num x -> int_of_float x | _ -> failwith "Json.to_int"
let to_str = function Str s -> s | _ -> failwith "Json.to_str"
let to_list = function Arr l -> l | _ -> failwith "Json.to_list"

(** A minimal JSON value type with emitter and parser.

    Just enough for the exporters in this library (JSONL trace dumps,
    audit-log round-trips) without adding a dependency. Numbers are
    emitted with ["%.17g"] so finite floats round-trip exactly; the
    parser accepts the subset this emitter produces plus ordinary
    whitespace. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single line, no trailing newline. Non-finite numbers are emitted as
    [null] (JSON has no representation for them). *)

val of_string : string -> t
(** Raises [Failure] with a position on malformed input. *)

(** {2 Accessors} — all raise [Failure] on a type mismatch. *)

val member : string -> t -> t
(** Field of an object; [Null] when absent. *)

val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list

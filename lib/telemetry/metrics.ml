type kind = Counter | Gauge | Histogram

(* Cells are [Atomic.t] and the registry is mutex-guarded so metrics
   stay coherent when future code mutates them from several domains
   (ROADMAP: domain-parallel sweeps). Contended float adds go through a
   CAS loop on the boxed value; the disabled path is still a single
   [Runtime.is_enabled] load per site. *)
type t = {
  name : string;
  labels : (string * string) list;  (* sorted *)
  kind : kind;
  buckets : float array;  (* upper bounds, strictly increasing *)
  counts : int Atomic.t array;  (* length = Array.length buckets + 1 *)
  value : float Atomic.t;
  observations : int Atomic.t;
}

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0; 1000.0 |]

let registry : (string * (string * string) list, t) Hashtbl.t =
  Hashtbl.create 64

let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

(* Retry until no concurrent writer slipped in between the read and the
   CAS; the CAS compares the boxed float physically, so re-reading the
   same box guarantees progress detection. *)
let rec atomic_add_float cell delta =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. delta)) then
    atomic_add_float cell delta

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let register ~name ~labels ~kind ~buckets =
  let labels = normalize_labels labels in
  let key = (name, labels) in
  with_registry (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m ->
        if m.kind <> kind then
          invalid_arg
            (Printf.sprintf "Metrics: %s re-registered as a different kind" name);
        m
      | None ->
        let m =
          {
            name;
            labels;
            kind;
            buckets;
            counts =
              (match kind with
              | Histogram ->
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0)
              | Counter | Gauge -> [||]);
            value = Atomic.make 0.0;
            observations = Atomic.make 0;
          }
        in
        Hashtbl.replace registry key m;
        m)

let counter ?(labels = []) name =
  register ~name ~labels ~kind:Counter ~buckets:[||]

let gauge ?(labels = []) name =
  register ~name ~labels ~kind:Gauge ~buckets:[||]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be non-empty and increasing";
  register ~name ~labels ~kind:Histogram ~buckets

let incr m =
  if Runtime.is_enabled () then begin
    match m.kind with
    | Counter -> atomic_add_float m.value 1.0
    | Gauge | Histogram -> invalid_arg "Metrics.incr: not a counter"
  end

let add m delta =
  if Runtime.is_enabled () then begin
    match m.kind with
    | Counter ->
      if delta < 0.0 then invalid_arg "Metrics.add: negative counter delta";
      atomic_add_float m.value delta
    | Gauge -> atomic_add_float m.value delta
    | Histogram -> invalid_arg "Metrics.add: not a counter or gauge"
  end

let set m v =
  if Runtime.is_enabled () then begin
    match m.kind with
    | Gauge -> Atomic.set m.value v
    | Counter | Histogram -> invalid_arg "Metrics.set: not a gauge"
  end

let observe m v =
  if Runtime.is_enabled () then begin
    match m.kind with
    | Histogram ->
      let k = Array.length m.buckets in
      let rec slot i = if i >= k || v <= m.buckets.(i) then i else slot (i + 1) in
      let i = slot 0 in
      Atomic.incr m.counts.(i);
      atomic_add_float m.value v;
      Atomic.incr m.observations
    | Counter | Gauge -> invalid_arg "Metrics.observe: not a histogram"
  end

let value m = Atomic.get m.value
let count m = Atomic.get m.observations

let bucket_counts m =
  match m.kind with
  | Histogram ->
    List.init
      (Array.length m.counts)
      (fun i ->
        ( (if i < Array.length m.buckets then m.buckets.(i) else infinity),
          Atomic.get m.counts.(i) ))
  | Counter | Gauge -> []

type view = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  value : float;
  count : int;
  buckets : (float * int) list;
}

let view_of (m : t) =
  {
    name = m.name;
    labels = m.labels;
    kind = m.kind;
    value = Atomic.get m.value;
    count = Atomic.get m.observations;
    buckets = bucket_counts m;
  }

(* A histogram's sum, count and buckets are separate atomics; a writer
   can land between any two reads. Re-read until the observation count
   is stable across the whole view (bounded retries — under sustained
   contention the last attempt wins, which is no worse than the
   one-shot read). *)
let consistent_view_of (m : t) =
  match m.kind with
  | Counter | Gauge -> view_of m
  | Histogram ->
    let rec go tries =
      let before = Atomic.get m.observations in
      let v = view_of m in
      if
        (v.count = before && Atomic.get m.observations = before) || tries >= 8
      then v
      else go (tries + 1)
    in
    go 0

let snapshot ?(consistent = false) () =
  let read = if consistent then consistent_view_of else view_of in
  with_registry (fun () ->
      Hashtbl.fold (fun _ (m : t) acc -> read m :: acc) registry [])
  |> List.sort (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.labels b.labels
         | c -> c)

let find ?(labels = []) name =
  with_registry (fun () ->
      Hashtbl.find_opt registry (name, normalize_labels labels))

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ (m : t) ->
          Atomic.set m.value 0.0;
          Atomic.set m.observations 0;
          Array.iter (fun c -> Atomic.set c 0) m.counts)
        registry)

let label_string labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

let render () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      match v.kind with
      | Counter ->
        Buffer.add_string buf
          (Printf.sprintf "counter   %s%s %.6g\n" v.name
             (label_string v.labels) v.value)
      | Gauge ->
        Buffer.add_string buf
          (Printf.sprintf "gauge     %s%s %.6g\n" v.name
             (label_string v.labels) v.value)
      | Histogram ->
        Buffer.add_string buf
          (Printf.sprintf "histogram %s%s count=%d sum=%.6g%s\n" v.name
             (label_string v.labels) v.count v.value
             (if v.count = 0 then ""
              else
                " | "
                ^ String.concat " "
                    (List.filter_map
                       (fun (ub, n) ->
                         if n = 0 then None
                         else if Float.is_finite ub then
                           Some (Printf.sprintf "le%.3g:%d" ub n)
                         else Some (Printf.sprintf "inf:%d" n))
                       v.buckets))))
    (snapshot ());
  Buffer.contents buf

(** A process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms with label families.

    Designed for hot paths: handles are registered once (typically at
    module initialization) and every mutation first checks
    {!Runtime.is_enabled}, so disabled instrumentation costs one
    boolean load per site. Metrics measure *this process* — counts and
    wall-clock timings — never simulated results, so leaving them on or
    off cannot change an experiment's outcome.

    The registry is safe to use from multiple domains: registration and
    whole-registry operations ({!snapshot}, {!find}, {!reset}) are
    mutex-guarded, and every cell is an [Atomic.t] (float adds use a
    CAS retry loop), so concurrent {!incr}/{!add}/{!observe} never lose
    updates. Reads are lock-free and see a consistent per-cell value;
    {!snapshot} is not a point-in-time cut across metrics (its
    [~consistent] flag makes each histogram internally coherent).

    A metric's identity is its name plus its (sorted) label set:
    [counter "core.allocations" ~labels:[("policy", "random")]] and the
    same name with [("policy", "load-aware")] are two members of one
    family. Registering the same identity twice returns the same
    handle; re-registering it as a different kind raises
    [Invalid_argument]. *)

type t
(** A handle to one registered metric. *)

val counter : ?labels:(string * string) list -> string -> t
(** Monotonically increasing value; {!incr} and {!add} apply. *)

val gauge : ?labels:(string * string) list -> string -> t
(** A value that goes up and down; {!set} and {!add} apply. *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string -> t
(** Fixed cumulative-style buckets given as strictly increasing upper
    bounds; an implicit overflow bucket catches the rest. The default
    buckets suit durations in seconds (1 µs … 1000 s). [buckets] is
    only consulted on first registration. *)

val default_buckets : float array

(** {2 Mutation} — all no-ops while telemetry is disabled. Raises
    [Invalid_argument] when the operation does not fit the metric's
    kind (counter: incr/add with non-negative delta; gauge: set/add;
    histogram: observe). *)

val incr : t -> unit
val add : t -> float -> unit
val set : t -> float -> unit
val observe : t -> float -> unit

(** {2 Reading} *)

val value : t -> float
(** Counter total or current gauge value; histogram sum. *)

val count : t -> int
(** Histogram observation count; 0 for other kinds. *)

val bucket_counts : t -> (float * int) list
(** Histogram [(upper_bound, count)] pairs, the overflow bucket last as
    [(infinity, n)]. Empty for other kinds. *)

type kind = Counter | Gauge | Histogram

type view = {
  name : string;
  labels : (string * string) list;
  kind : kind;
  value : float;  (** counter/gauge value; histogram sum *)
  count : int;  (** histogram observations *)
  buckets : (float * int) list;
}

val snapshot : ?consistent:bool -> unit -> view list
(** Every registered metric, sorted by name then labels. The default
    read is lock-free per cell but not a point-in-time cut: a
    histogram's sum, count and buckets are separate atomics, so a
    concurrent observe can land between them. [~consistent:true]
    re-reads each histogram until its observation count is stable
    across the whole view (bounded retries), so exported series are
    internally coherent — the exporters use this. *)

val find : ?labels:(string * string) list -> string -> t option

val reset : unit -> unit
(** Zero every metric, keeping registrations (handles stay valid). *)

val render : unit -> string
(** Human-readable dump of the whole registry, one metric per line,
    zero-valued metrics included. *)

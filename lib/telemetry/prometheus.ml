(* Exposition format 0.0.4 — the Content-Type every scrape endpoint
   (daemon /metrics path, interval-file fallback) must advertise. *)
let content_type = "text/plain; version=0.0.4; charset=utf-8"

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_value : float;
}

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name name =
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if i = 0 && c >= '0' && c <= '9' then Buffer.add_char buf '_';
      Buffer.add_char buf (if is_name_char c then c else '_'))
    name;
  Buffer.contents buf

(* Same emission policy as Json.add_num so finite values round-trip
   exactly, but with Prometheus's spellings for the non-finite ones. *)
let value_string x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_block labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (metric_name k) (escape_label_value v))
           labels)
    ^ "}"

let add_sample buf name labels value =
  Buffer.add_string buf name;
  Buffer.add_string buf (label_block labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (value_string value);
  Buffer.add_char buf '\n'

let type_string = function
  | Metrics.Counter -> "counter"
  | Metrics.Gauge -> "gauge"
  | Metrics.Histogram -> "histogram"

let add_view buf (v : Metrics.view) =
  let name = metric_name v.name in
  match v.kind with
  | Metrics.Counter | Metrics.Gauge -> add_sample buf name v.labels v.value
  | Metrics.Histogram ->
    (* Prometheus buckets are cumulative; ours are per-bucket counts
       with the overflow bucket last as (infinity, n). *)
    let cumulative = ref 0 in
    List.iter
      (fun (ub, n) ->
        cumulative := !cumulative + n;
        let le =
          if Float.is_finite ub then value_string ub else "+Inf"
        in
        add_sample buf (name ^ "_bucket")
          (v.labels @ [ ("le", le) ])
          (float_of_int !cumulative))
      v.buckets;
    add_sample buf (name ^ "_sum") v.labels v.value;
    add_sample buf (name ^ "_count") v.labels (float_of_int v.count)

let render views =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun (v : Metrics.view) ->
      let name = metric_name v.name in
      (* One TYPE line per family; members differing only in labels
         share it (views arrive sorted by name). *)
      if name <> !last_family then begin
        last_family := name;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (type_string v.kind))
      end;
      add_view buf v)
    views;
  Buffer.contents buf

let render_registry () = render (Metrics.snapshot ~consistent:true ())

(* --- golden parser ---------------------------------------------------- *)

let fail lineno msg =
  failwith (Printf.sprintf "Prometheus.parse: line %d: %s" lineno msg)

let parse_value lineno text =
  match text with
  | "+Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | _ -> (
    match float_of_string_opt text with
    | Some x -> x
    | None -> fail lineno ("bad value " ^ text))

(* Label block: comma-separated key=value pairs, values double-quoted
   with backslash escapes for backslash, quote and newline. *)
let parse_labels lineno text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let expect c =
    if peek () = Some c then incr pos
    else fail lineno (Printf.sprintf "expected %c in label block" c)
  in
  let name () =
    let start = !pos in
    while !pos < n && is_name_char text.[!pos] do
      incr pos
    done;
    if !pos = start then fail lineno "expected label name";
    String.sub text start (!pos - start)
  in
  let quoted () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail lineno "unterminated label value"
      | Some '"' -> incr pos
      | Some '\\' ->
        incr pos;
        (match peek () with
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some 'n' -> Buffer.add_char buf '\n'
        | _ -> fail lineno "bad escape in label value");
        incr pos;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec pairs acc =
    let k = name () in
    expect '=';
    let v = quoted () in
    match peek () with
    | Some ',' ->
      incr pos;
      pairs ((k, v) :: acc)
    | Some '}' ->
      incr pos;
      if !pos <> n then fail lineno "trailing input after label block";
      List.rev ((k, v) :: acc)
    | _ -> fail lineno "expected , or } in label block"
  in
  expect '{';
  if peek () = Some '}' then []
  else pairs []

let parse_line lineno line =
  match String.index_opt line ' ' with
  | None -> fail lineno "expected 'name value'"
  | Some _ ->
    (* The name may carry a label block containing spaces inside quoted
       values; split at the first space outside quotes instead. *)
    let n = String.length line in
    let rec split i in_quotes =
      if i >= n then fail lineno "expected 'name value'"
      else
        match line.[i] with
        | '"' -> split (i + 1) (not in_quotes)
        | '\\' when in_quotes -> split (i + 2) in_quotes
        | ' ' when not in_quotes -> i
        | _ -> split (i + 1) in_quotes
    in
    let cut = split 0 false in
    let head = String.sub line 0 cut in
    let value =
      String.trim (String.sub line (cut + 1) (n - cut - 1))
    in
    let name, labels =
      match String.index_opt head '{' with
      | None ->
        if head = "" || not (String.for_all is_name_char head) then
          fail lineno ("bad metric name " ^ head);
        (head, [])
      | Some brace ->
        let name = String.sub head 0 brace in
        if name = "" || not (String.for_all is_name_char name) then
          fail lineno ("bad metric name " ^ name);
        ( name,
          parse_labels lineno
            (String.sub head brace (String.length head - brace)) )
    in
    {
      sample_name = name;
      sample_labels = List.sort (fun (a, _) (b, _) -> compare a b) labels;
      sample_value = parse_value lineno value;
    }

let parse text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (lineno, line) ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else Some (parse_line lineno line))

(** Prometheus text exposition (format version 0.0.4) over
    {!Metrics.view} lists.

    Pure functions: render a registry snapshot to the scrapeable text
    format, and parse that format back into samples for validation.
    Metric names are sanitized ([.] and other illegal characters become
    [_]); each histogram becomes the conventional
    [_bucket{le="..."}] / [_sum] / [_count] family with cumulative
    bucket counts and an explicit [le="+Inf"] bucket.

    The parser accepts exactly what the renderer emits (plus blank
    lines and arbitrary comments) — it is the golden check that an
    exposition round-trips, used by the tests and [rmctl check-export],
    not a general Prometheus client. *)

type sample = {
  sample_name : string;  (** sanitized, with any [_bucket]/[_sum]/[_count] suffix *)
  sample_labels : (string * string) list;  (** sorted by key *)
  sample_value : float;
}

val content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"] — the Content-Type
    every scrape endpoint serving this exposition must advertise. *)

val metric_name : string -> string
(** Sanitize to [[a-zA-Z_:][a-zA-Z0-9_:]*]: every other character
    (notably the [.] separating registry components) becomes [_]; a
    leading digit gets a [_] prefix. *)

val render : Metrics.view list -> string
(** One [# TYPE] comment per metric family followed by its samples,
    families in snapshot order. Counters and gauges are one sample
    each; histograms follow the [_bucket]/[_sum]/[_count] convention.
    Finite values round-trip exactly; infinities render as [+Inf] /
    [-Inf] and NaN as [NaN]. *)

val render_registry : unit -> string
(** [render (Metrics.snapshot ~consistent:true ())]. *)

val parse : string -> sample list
(** Samples in file order, comments and blank lines skipped. Raises
    [Failure] with a line number on anything malformed. *)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

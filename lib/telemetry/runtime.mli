(** The master instrumentation switch.

    All of [rm_telemetry] is disabled by default so instrumented hot
    paths (the allocator, the MPI executor's iteration loop, daemon
    ticks) pay only one boolean load per site. Front ends ([rmctl
    metrics], [rmctl explain], tests) enable it for the duration of a
    run. *)

val enable : unit -> unit
val disable : unit -> unit

val is_enabled : unit -> bool
(** False at program start. *)

val with_enabled : (unit -> 'a) -> 'a
(** Run with telemetry on, restoring the previous state afterwards
    (also on exceptions). *)
